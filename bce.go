// Package bce is a from-scratch reproduction of "Perceptron-Based
// Branch Confidence Estimation" (Akkary, Srinivasan, Koltur, Patil,
// Refaai — HPCA 2004): a perceptron confidence estimator trained on
// correct/incorrect prediction outcomes, the pipeline-gating and
// branch-reversal mechanisms built on it, every baseline estimator the
// paper compares against, and the out-of-order superscalar timing
// substrate the experiments run on.
//
// # Quick start
//
//	gen := bce.NewGenerator("gzip")              // synthetic SPECint-like workload
//	sim := bce.NewSimulation(bce.SimConfig{
//		Bench:     "gzip",
//		Estimator: bce.NewCIC(0),                // the paper's estimator, λ=0
//		Gating:    bce.PL(1),                    // gate fetch behind 1 low-confidence branch
//	})
//	sim.Run(50_000)                              // warmup
//	run := sim.Run(200_000)                      // measure
//	fmt.Println(run.IPC(), run.Confusion.PVN())
//	_ = gen
//
// Every table and figure of the paper's evaluation can be regenerated
// through the Reproduce* functions (or the bcetables command).
//
// The implementation lives in internal/ packages; this package is the
// stable public surface.
package bce

import (
	"io"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/core"
	"bce/internal/gating"
	"bce/internal/metrics"
	"bce/internal/pipeline"
	"bce/internal/predictor"
	"bce/internal/telemetry"
	"bce/internal/trace"
	"bce/internal/workload"
)

// Re-exported core types. See the internal package docs for details.
type (
	// Estimator assigns confidence to conditional branch predictions.
	Estimator = confidence.Estimator
	// Token is one confidence estimate (made at fetch, trained at
	// retire).
	Token = confidence.Token
	// Class is the confidence band (High, WeakLow, StrongLow).
	Class = confidence.Class
	// CICConfig parameterizes the perceptron confidence estimator.
	CICConfig = confidence.CICConfig
	// JRSConfig parameterizes the JRS estimator.
	JRSConfig = confidence.JRSConfig
	// TNTConfig parameterizes the perceptron_tnt baseline.
	TNTConfig = confidence.TNTConfig

	// Predictor is a dynamic branch direction predictor.
	Predictor = predictor.Predictor

	// Machine is a timing-model configuration (Table 1).
	Machine = config.Machine
	// GatingPolicy configures pipeline gating (threshold + latency).
	GatingPolicy = gating.Policy
	// Run holds one timing simulation's measured counters.
	Run = metrics.Run
	// Confusion is the confidence confusion matrix (PVN/Spec/…).
	Confusion = metrics.Confusion
	// Histogram is a fixed-bin histogram (density figures).
	Histogram = metrics.Histogram

	// Uop is one micro-operation of the trace format.
	Uop = trace.Uop
	// Profile describes a synthetic benchmark.
	Profile = workload.Profile
	// Generator produces a benchmark's uop stream.
	Generator = workload.Generator

	// Sizes sets experiment run lengths.
	Sizes = core.Sizes

	// TelemetrySink receives per-cycle pipeline and confidence events
	// (see internal/telemetry). Nil disables telemetry at zero cost.
	TelemetrySink = telemetry.Sink
	// TelemetryEvent is one emitted pipeline/confidence event.
	TelemetryEvent = telemetry.Event
	// TelemetrySnapshot is a point-in-time copy of a simulation's
	// counter/histogram registry.
	TelemetrySnapshot = telemetry.Snapshot
)

// Telemetry sink constructors.
var (
	// NewChromeTrace returns a sink writing a Chrome trace_event JSON
	// timeline (chrome://tracing, Perfetto). Call Close to flush.
	NewChromeTrace = telemetry.NewChromeTrace
	// NewAudit returns a sink building the per-branch-PC confidence
	// audit (WriteCSV renders it).
	NewAudit = telemetry.NewAudit
	// MultiSink fans events out to several sinks (nils dropped).
	MultiSink = telemetry.Multi
)

// Confidence bands.
const (
	High      = confidence.High
	WeakLow   = confidence.WeakLow
	StrongLow = confidence.StrongLow
)

// DisableReversal as CICConfig.Reversal turns branch reversal off.
const DisableReversal = confidence.DisableReversal

// Confidence estimator constructors.
var (
	// NewCIC returns the paper's 4 KB perceptron estimator (128
	// entries × 32-bit history × 8-bit weights) trained on
	// correct/incorrect outcomes, with low-confidence threshold λ.
	NewCIC = confidence.NewCIC
	// NewCICWith returns a CIC estimator with explicit geometry.
	NewCICWith = confidence.NewCICWith
	// NewEnhancedJRS returns the enhanced JRS estimator (8K 4-bit
	// resetting counters) with high-confidence threshold λ.
	NewEnhancedJRS = confidence.NewEnhancedJRS
	// NewJRS returns a JRS estimator with explicit configuration.
	NewJRS = confidence.NewJRS
	// NewTNT returns the perceptron_tnt baseline (Jimenez-style,
	// trained on taken/not-taken; |y| <= λ means low confidence).
	NewTNT = confidence.NewTNT
	// NewTNTWith returns a TNT estimator with explicit configuration.
	NewTNTWith = confidence.NewTNTWith
	// NewPattern returns Tyson's pattern-history estimator.
	NewPattern = confidence.NewPattern
	// NewConfidenceOracle returns a perfect estimator (bounding).
	NewConfidenceOracle = confidence.NewOracle
)

// Branch predictor constructors.
var (
	// NewBaselinePredictor returns the Table 1 bimodal/gshare/meta
	// hybrid.
	NewBaselinePredictor = predictor.NewBaselineHybrid
	// NewGsharePerceptronPredictor returns the §5.2 hybrid.
	NewGsharePerceptronPredictor = predictor.NewGsharePerceptronHybrid
	// NewPerceptronPredictor returns a Jimenez/Lin perceptron
	// predictor with the given geometry.
	NewPerceptronPredictor = predictor.NewPerceptron
)

// Machine models.
var (
	// Baseline40x4 is the paper's 4-wide, 40-cycle baseline machine.
	Baseline40x4 = config.Baseline40x4
	// Mid20x4 is the 4-wide, 20-cycle machine.
	Mid20x4 = config.Mid20x4
	// Wide20x8 is the 8-wide, 20-cycle machine of §5.5.
	Wide20x8 = config.Wide20x8
	// MachineByName resolves "40c4w", "20c4w" or "20c8w".
	MachineByName = config.ByName
)

// PL returns a gating policy with the given low-confidence branch
// counter threshold (the paper's PL1/PL2/PL3).
func PL(threshold int) GatingPolicy { return gating.PL(threshold) }

// Benchmarks returns the 12 synthetic SPECint 2000 benchmark names in
// Table 2 order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkProfile returns the named benchmark's workload profile.
func BenchmarkProfile(name string) (Profile, error) { return workload.ByName(name) }

// NewGenerator builds the named benchmark's trace generator. It
// panics on unknown names (use BenchmarkProfile to check first).
func NewGenerator(name string) *Generator {
	p, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return workload.New(p)
}

// SimConfig configures a timing simulation.
type SimConfig struct {
	// Bench is the benchmark name (required).
	Bench string
	// Machine is the timing model; zero value means Baseline40x4.
	Machine Machine
	// Predictor is the branch predictor; nil means the baseline
	// hybrid.
	Predictor Predictor
	// Estimator is the confidence estimator; nil disables confidence
	// machinery.
	Estimator Estimator
	// Gating is the pipeline-gating policy; zero disables gating.
	Gating GatingPolicy
	// Reversal reverses strongly-low-confidence branches (§5.5).
	Reversal bool
	// Perfect uses oracle prediction (no mispredictions).
	Perfect bool
	// Sink receives telemetry events; nil (the default) disables
	// telemetry entirely — the simulator then never constructs an
	// event.
	Sink TelemetrySink
}

// Simulation is a cycle-accurate out-of-order timing simulation.
type Simulation struct {
	sim *pipeline.Sim
}

// NewSimulation builds a simulation. It panics on unknown benchmarks
// or invalid machine configurations.
func NewSimulation(cfg SimConfig) *Simulation {
	prof, err := workload.ByName(cfg.Bench)
	if err != nil {
		panic(err)
	}
	return &Simulation{sim: pipeline.New(pipeline.Options{
		Machine:   cfg.Machine,
		Predictor: cfg.Predictor,
		Estimator: cfg.Estimator,
		Gating:    cfg.Gating,
		Reversal:  cfg.Reversal,
		Perfect:   cfg.Perfect,
		Sink:      cfg.Sink,
	}, workload.New(prof))}
}

// Run advances the simulation until n more uops retire and returns
// the statistics for exactly that span. Call once for warmup (discard
// the result), then for measurement.
func (s *Simulation) Run(n uint64) Run { return s.sim.Run(n) }

// Machine returns the simulated machine model.
func (s *Simulation) Machine() Machine { return s.sim.Machine() }

// Cycle returns the current simulated cycle.
func (s *Simulation) Cycle() uint64 { return s.sim.Cycle() }

// Telemetry returns a snapshot of the simulation's internal counter
// and histogram registry (richer than the Run summary: squash-depth
// and resolve-latency histograms, gate-episode lengths, ...).
func (s *Simulation) Telemetry() TelemetrySnapshot { return s.sim.Telemetry() }

// Experiment regeneration: one entry point per paper table/figure.
// All accept a Sizes (use DefaultSizes for paper-scale fidelity or
// QuickSizes for smoke runs) and return printable result structs.
var (
	// DefaultSizes returns the standard experiment run lengths.
	DefaultSizes = core.DefaultSizes
	// QuickSizes returns reduced run lengths for smoke tests.
	QuickSizes = core.QuickSizes
	// ReproduceTable2 regenerates Table 2 (speculation waste).
	ReproduceTable2 = core.Table2
	// ReproduceTable3 regenerates Table 3 (JRS vs CIC metrics).
	ReproduceTable3 = core.Table3
	// ReproduceTable4 regenerates Table 4 (gating U/P sweep).
	ReproduceTable4 = core.Table4
	// ReproduceTable5 regenerates Table 5 (better baseline predictor).
	ReproduceTable5 = core.Table5
	// ReproduceTable6 regenerates Table 6 (size sensitivity).
	ReproduceTable6 = core.Table6
	// ReproduceDensity regenerates Figures 4-7 data ("cic" or "tnt").
	ReproduceDensity = core.Density
	// ReproduceCombined regenerates Figures 8-9 (gating + reversal).
	ReproduceCombined = core.Combined
	// ReproduceLatency regenerates the §5.4.2 latency study.
	ReproduceLatency = core.Latency
)

// AverageConfusion runs a functional confidence experiment over every
// benchmark with a fresh estimator each (built by mkEst) and merges
// the confusion matrices — the aggregation the paper's Table 3
// reports. Zero warmup/measure take the standard sizes.
func AverageConfusion(mkEst func() Estimator, warmup, measure uint64) (Confusion, error) {
	return core.AverageConfusion(nil, func() confidence.Estimator { return mkEst() }, warmup, measure)
}

// Trace recording and replay. Traces written with NewTraceWriter (or
// the bcetrace command) can be replayed through the full timing model
// with NewReplaySimulation — the path for running workloads other than
// the built-in synthetic benchmarks.
type (
	// TraceReader decodes .bcet binary traces.
	TraceReader = trace.Reader
	// TraceWriter encodes .bcet binary traces.
	TraceWriter = trace.Writer
	// TraceSource is any uop stream (generators, readers, replays).
	TraceSource = trace.Source
)

// NewTraceReader returns a reader decoding the BCET binary format.
func NewTraceReader(r io.Reader) *TraceReader { return trace.NewReader(r) }

// NewTraceWriter returns a writer encoding the BCET binary format.
// Call its Close method when the trace is complete: it seals the
// stream with a CRC32 integrity footer that lets readers distinguish
// a whole trace from a truncated one.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// NewReplaySimulation builds a timing simulation over a recorded
// trace: the recording supplies the correct path (looping if shorter
// than the run), and wrong-path instructions are re-served from the
// recorded code at the mispredicted target when possible. Bench is
// ignored; all other SimConfig fields apply.
func NewReplaySimulation(cfg SimConfig, src TraceSource) *Simulation {
	replay := workload.NewReplay(src)
	return &Simulation{sim: pipeline.NewFromSource(pipeline.Options{
		Machine:   cfg.Machine,
		Predictor: cfg.Predictor,
		Estimator: cfg.Estimator,
		Gating:    cfg.Gating,
		Reversal:  cfg.Reversal,
		Perfect:   cfg.Perfect,
		Sink:      cfg.Sink,
	}, replay, replay.WrongPath(1))}
}
