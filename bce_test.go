package bce

import (
	"bytes"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	gen := NewGenerator("gzip")
	pred := NewBaselinePredictor()
	est := NewCIC(0)
	var conf Confusion
	for i := 0; i < 60_000; i++ {
		u, ok := gen.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		if !u.Kind.IsConditional() {
			continue
		}
		p := pred.Predict(u.PC)
		tok := est.Estimate(u.PC, p)
		misp := p != u.Taken
		pred.Update(u.PC, u.Taken)
		est.Train(u.PC, tok, misp, u.Taken)
		conf.Add(misp, tok.Class().Low())
	}
	if conf.Branches() == 0 {
		t.Fatal("no branches observed")
	}
}

func TestFacadeSimulation(t *testing.T) {
	sim := NewSimulation(SimConfig{
		Bench:     "vpr",
		Estimator: NewCIC(0),
		Gating:    PL(1),
	})
	sim.Run(5_000)
	r := sim.Run(20_000)
	if r.Retired < 20_000 || r.IPC() <= 0 {
		t.Fatalf("run: %+v", r)
	}
	if sim.Machine().Name != "40c4w" {
		t.Error("default machine")
	}
	if sim.Cycle() == 0 {
		t.Error("cycle")
	}
}

func TestFacadeMachines(t *testing.T) {
	for _, m := range []Machine{Baseline40x4(), Mid20x4(), Wide20x8()} {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := MachineByName("40c4w"); err != nil {
		t.Error(err)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(Benchmarks()) != 12 {
		t.Fatal("benchmark count")
	}
	if _, err := BenchmarkProfile("mcf"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkProfile("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadePanicsOnUnknownBench(t *testing.T) {
	for _, f := range []func(){
		func() { NewGenerator("nope") },
		func() { NewSimulation(SimConfig{Bench: "nope"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for unknown benchmark")
				}
			}()
			f()
		}()
	}
}

func TestFacadeEstimators(t *testing.T) {
	for _, e := range []Estimator{
		NewCIC(0),
		NewCICWith(CICConfig{Lambda: -75, Reversal: 50}),
		NewEnhancedJRS(15),
		NewJRS(JRSConfig{Lambda: 7}),
		NewTNT(75),
		NewTNTWith(TNTConfig{Lambda: 50}),
		NewPattern(0, 0),
		NewConfidenceOracle(),
	} {
		tok := e.Estimate(0x4000, true)
		e.Train(0x4000, tok, false, true)
		if e.Name() == "" {
			t.Errorf("%T name", e)
		}
	}
}

func TestFacadeAverageConfusion(t *testing.T) {
	c, err := AverageConfusion(func() Estimator { return NewEnhancedJRS(15) }, 5_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Branches() == 0 {
		t.Fatal("no branches")
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	if High == WeakLow || WeakLow == StrongLow {
		t.Fatal("confidence bands collide")
	}
	if !WeakLow.Low() || High.Low() {
		t.Fatal("Low()")
	}
}

func TestFacadeReplaySimulation(t *testing.T) {
	// Record a short trace into memory, then replay it.
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	g := NewGenerator("gzip")
	for i := 0; i < 40_000; i++ {
		u, _ := g.Next()
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	sim := NewReplaySimulation(SimConfig{
		Estimator: NewCIC(0),
		Gating:    PL(1),
	}, NewTraceReader(bytes.NewReader(buf.Bytes())))
	sim.Run(10_000)
	r := sim.Run(20_000)
	if r.Retired < 20_000 || r.RetiredBranches == 0 {
		t.Fatalf("replay run: %+v", r)
	}
}
