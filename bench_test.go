package bce

import (
	"testing"

	"bce/internal/config"
	"bce/internal/core"
)

// The benchmarks below are the regeneration harness: one per paper
// table/figure. Each iteration regenerates the experiment at reduced
// (Quick) sizes and reports the headline numbers as custom metrics, so
// `go test -bench .` both exercises and summarizes the reproduction.
// For paper-scale output use `go run ./cmd/bcetables -exp all`.

func benchSizes() core.Sizes { return core.QuickSizes() }

// BenchmarkTable2 regenerates Table 2 (speculation waste per machine).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := core.Table2(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.AvgWaste20x4, "waste20c4w_%")
		b.ReportMetric(t.AvgWaste20x8, "waste20c8w_%")
		b.ReportMetric(t.AvgWaste40x4, "waste40c4w_%")
		b.ReportMetric(t.AvgMispPer1K, "misp/Kuop")
	}
}

// BenchmarkTable3 regenerates Table 3 (JRS vs perceptron PVN/Spec).
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := core.Table3(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.JRS[3].PVN, "jrs_pvn_%")
		b.ReportMetric(t.JRS[3].Spec, "jrs_spec_%")
		b.ReportMetric(t.Perceptron[1].PVN, "cic_pvn_%")
		b.ReportMetric(t.Perceptron[1].Spec, "cic_spec_%")
	}
}

// BenchmarkTable4 regenerates Table 4 (gating U/P sweep, 40c4w).
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := core.Table4(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		// The paper's headline comparison: perceptron λ=25 vs JRS λ=7 PL2.
		b.ReportMetric(t.Perceptron[0].U, "cic_U_%")
		b.ReportMetric(t.Perceptron[0].P, "cic_P_%")
		b.ReportMetric(t.JRS[5].U, "jrs7pl2_U_%")
		b.ReportMetric(t.JRS[5].P, "jrs7pl2_P_%")
	}
}

// BenchmarkTable5 regenerates Table 5 (better baseline predictor).
func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := core.Table5(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.BimodalGshare[1].U, "bg_U_%")
		b.ReportMetric(t.GsharePerceptron[0].U, "gp_U_%")
	}
}

// BenchmarkTable6 regenerates Table 6 (estimator size sensitivity).
func BenchmarkTable6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := core.Table6(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[0].U, "4KB_U_%")
		b.ReportMetric(t.Rows[5].U, "2KB_w4_U_%")
		b.ReportMetric(t.Rows[6].U, "2KB_h16_U_%")
	}
}

// BenchmarkFig4 regenerates Figures 4-5 (CIC output density on gcc).
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := core.Density("gcc", "cic", benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Regions[0].MB), "topregion_MB")
		b.ReportMetric(float64(d.Regions[0].CB), "topregion_CB")
	}
}

// BenchmarkFig6 regenerates Figures 6-7 (TNT output density on gcc).
func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := core.Density("gcc", "tnt", benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.CB.Total()), "cb_branches")
		b.ReportMetric(float64(d.MB.Total()), "mb_branches")
	}
}

// BenchmarkFig8 regenerates Figure 8 (gating+reversal, 40c4w).
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := core.Combined(config.Baseline40x4(), benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.AvgUopReduction, "uop_red_%")
		b.ReportMetric(c.AvgSpeedupPct, "speedup_%")
	}
}

// BenchmarkFig9 regenerates Figure 9 (gating+reversal, 20c8w).
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := core.Combined(config.Wide20x8(), benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.AvgUopReduction, "uop_red_%")
		b.ReportMetric(c.AvgSpeedupPct, "speedup_%")
	}
}

// BenchmarkLatency regenerates the §5.4.2 estimator-latency study.
func BenchmarkLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, err := core.Latency(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(l.Ideal.U, "U1cyc_%")
		b.ReportMetric(l.Pipelined.U, "U9cyc_%")
	}
}

// BenchmarkSimulatorThroughput measures raw timing-simulator speed
// (uops simulated per wall second are nsec/op's inverse).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	sim := NewSimulation(SimConfig{Bench: "gzip", Estimator: NewCIC(0), Gating: PL(1)})
	sim.Run(20_000)
	b.ResetTimer()
	sim.Run(uint64(b.N))
}

// BenchmarkAblateReversal regenerates the reversal-source ablation
// (why only the multi-valued CIC output supports reversal).
func BenchmarkAblateReversal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := core.AblateReversalSource(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[0].P, "cic_P_%")
		b.ReportMetric(a.Rows[1].P, "jrsrev_P_%")
	}
}

// BenchmarkAblateSignal regenerates the training-signal ablation
// (correct/incorrect vs taken/not-taken training).
func BenchmarkAblateSignal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := core.AblateTrainingSignal(benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.Rows[0].PVN, "cic_pvn_%")
		b.ReportMetric(a.Rows[2].PVN, "tnt_pvn_%")
	}
}

// BenchmarkVariability regenerates the per-benchmark spread report.
func BenchmarkVariability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := core.Variability(0, 1, benchSizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.USummary.Mean, "U_mean_%")
		b.ReportMetric(v.USummary.Std, "U_std_%")
	}
}
