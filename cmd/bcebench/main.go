// Command bcebench is the benchmark harness mode: it runs the repo's
// benchmark suites via `go test -bench`, writes a machine-readable
// trajectory file (BENCH_*.json), and compares two such files
// benchstat-style so CI can gate on performance regressions.
//
// Examples:
//
//	bcebench -suite kernel -count 5 -out BENCH_pr3.json
//	bcebench -suite all -progress -out BENCH_pr3.json
//	bcebench -suite kernel -min-speedup 2.0          # kernel vs reference gate
//	bcebench -compare old.json -against new.json -max-regress 10
//
// With -profile-dir, every suite's `go test -bench` run also captures
// a CPU profile into the content-addressed profile ring and records
// its digest in the report; a later -compare that trips the
// regression gate then prints a per-function attribution table naming
// the symbols the time moved into (see docs/observability.md).
//
// See docs/performance.md for the profiling and trajectory workflow.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"bce/internal/bench"
	"bce/internal/manifest"
	"bce/internal/prof"
	"bce/internal/runner"
	"bce/internal/telemetry"
)

func main() {
	var (
		suite      = flag.String("suite", "kernel", "suite to run: kernel, pipeline, table, all")
		count      = flag.Int("count", 1, "benchmark repetitions (-count); means are reported")
		benchtime  = flag.String("benchtime", "", "override -benchtime for every suite (e.g. 100ms, 10x)")
		out        = flag.String("out", "", "write the JSON report to this file (default BENCH_<short-git-rev>.json)")
		minSpeedup = flag.Float64("min-speedup", 0, "fail unless every kernel-vs-reference speedup is at least this ratio (0 disables)")
		compare    = flag.String("compare", "", "baseline JSON report; compare-only mode unless -suite also runs")
		against    = flag.String("against", "", "candidate JSON report to compare against the -compare baseline (default: this run's results)")
		maxRegress = flag.Float64("max-regress", 10, "fail the comparison when any shared benchmark slows down by more than this percent")
		profFlags  = prof.RegisterFlags(nil)
		profileTop = flag.Int("profile-top", 10, "symbols per suite in the regression attribution table")
		progress   = flag.Bool("progress", false, "report per-suite progress on stderr")
		verbose    = flag.Bool("v", false, "stream raw go test output to stderr")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		version    = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()
	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcebench:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger.With("bin", "bcebench"))
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("bench_schema", fmt.Sprint(bench.ReportSchema))
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}
	// First SIGINT/SIGTERM cancels remaining suites (the in-flight
	// `go test -bench` child sees its context die); a second kills.
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	if err := run(ctx, *suite, *count, *benchtime, *out, *minSpeedup,
		*compare, *against, *maxRegress, *profFlags.Dir, *profileTop, *progress, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "bcebench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, suite string, count int, benchtime, out string, minSpeedup float64,
	compare, against string, maxRegress float64, profileDir string, profileTop int,
	progress, verbose bool) error {
	if out == "" && !(compare != "" && against != "") {
		// Default the trajectory file name to the revision it measures,
		// so successive runs on different commits never clobber each
		// other.
		out = "BENCH_" + manifest.ShortRevision() + ".json"
	}

	var ring *prof.Ring
	if profileDir != "" {
		var err error
		if ring, err = prof.OpenRing(profileDir, 0, 0); err != nil {
			return err
		}
	}

	// Pure compare mode: two existing reports, no benchmarks run.
	if compare != "" && against != "" {
		old, err := load(compare)
		if err != nil {
			return err
		}
		cand, err := load(against)
		if err != nil {
			return err
		}
		return gate(old, cand, maxRegress, ring, profileTop)
	}

	suites, err := bench.Suites(suite)
	if err != nil {
		return err
	}
	var profTmp string
	if ring != nil {
		profTmp, err = os.MkdirTemp("", "bcebench-prof-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(profTmp)
	}
	report := bench.NewReport()
	pool := runner.New(runner.Options{
		// Benchmarks are timing-sensitive; never run suites concurrently.
		Workers: 1,
		Progress: func(p runner.Progress) {
			if progress {
				fmt.Fprintf(os.Stderr, "bcebench: %d/%d suites done (%.0fs elapsed)\n",
					p.Done, p.Total, p.Elapsed.Seconds())
			}
		},
	})
	err = runner.ForEach(ctx, pool, suites, func(ctx context.Context, i int, s bench.Suite) error {
		if progress {
			fmt.Fprintf(os.Stderr, "bcebench: running suite %q (%s -bench %s)\n", s.Name, s.Pkg, s.Pattern)
		}
		start := time.Now()
		var cpuProfile string
		if ring != nil {
			cpuProfile = filepath.Join(profTmp, s.Name+".cpu.pb.gz")
		}
		results, raw, err := bench.Run(ctx, ".", s, count, benchtime, cpuProfile)
		if verbose {
			os.Stderr.Write(raw)
		}
		if err != nil {
			return err
		}
		report.Results = append(report.Results, results...)
		if cpuProfile != "" {
			// Best-effort: a missing/empty profile degrades attribution,
			// never the benchmark run itself.
			if data, err := os.ReadFile(cpuProfile); err == nil && len(data) > 0 {
				if digest, err := ring.Put(data); err == nil {
					report.Profiles = append(report.Profiles, bench.ProfileRef{
						Suite: s.Name, Kind: "cpu", Digest: digest, Bytes: int64(len(data)),
					})
				} else {
					slog.Warn("profile store failed", "suite", s.Name, "err", err)
				}
			} else {
				slog.Warn("suite produced no CPU profile", "suite", s.Name)
			}
		}
		if progress {
			fmt.Fprintf(os.Stderr, "bcebench: suite %q: %d benchmarks in %.1fs\n",
				s.Name, len(results), time.Since(start).Seconds())
		}
		return nil
	})
	if err != nil {
		return err
	}

	for _, r := range report.Results {
		fmt.Printf("%-10s %-24s %12.2f ns/op %10.0f allocs/op", r.Suite, r.Name, r.NsPerOp, r.AllocsPerOp)
		for unit, v := range r.Metrics {
			fmt.Printf("  %.4g %s", v, unit)
		}
		fmt.Println()
	}
	for _, sp := range bench.KernelSpeedups(report) {
		fmt.Printf("speedup    %-24s %12.2fx vs %s\n", sp.Name, sp.Ratio, sp.Against)
		if minSpeedup > 0 && sp.Ratio < minSpeedup {
			return fmt.Errorf("%s is only %.2fx faster than %s, need >= %.2fx",
				sp.Name, sp.Ratio, sp.Against, minSpeedup)
		}
	}

	if out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bcebench: wrote %s (%d results)\n", out, len(report.Results))
	}

	// -compare without -against gates this fresh run against a
	// committed baseline.
	if compare != "" {
		old, err := load(compare)
		if err != nil {
			return err
		}
		return gate(old, report, maxRegress, ring, profileTop)
	}
	return nil
}

func load(path string) (*bench.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func gate(old, cand *bench.Report, maxRegress float64, ring *prof.Ring, top int) error {
	cmps := bench.Compare(old, cand)
	if len(cmps) == 0 {
		return fmt.Errorf("no benchmarks in either report")
	}
	fmt.Print(bench.FormatComparisons(cmps, maxRegress))
	if bad := bench.Regressions(cmps, maxRegress); len(bad) > 0 {
		attribute(os.Stdout, bad, old, cand, ring, top)
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", len(bad), maxRegress)
	}
	// Benchmarks on only one side are reported above as new/removed;
	// they have nothing to regress from, so the gate passes on the
	// shared set (possibly empty, e.g. across a benchmark rename).
	if shared := bench.Shared(cmps); shared == 0 {
		fmt.Println("ok: no shared benchmarks to gate on (all entries new or removed)")
	} else {
		fmt.Printf("ok: no benchmark regressed more than %.0f%% (%d shared)\n", maxRegress, shared)
	}
	return nil
}

// attribute prints a per-function CPU delta table for every suite
// with a regressed benchmark, when both reports carry a cpu profile
// ref for the suite and the ring holds the bytes. Diagnostics go to
// stderr: attribution is advisory and must never turn a clear gate
// verdict into an error.
func attribute(w *os.File, bad []bench.Comparison, old, cand *bench.Report, ring *prof.Ring, top int) {
	suites := map[string]bool{}
	var order []string
	for _, c := range bad {
		if !suites[c.Suite] {
			suites[c.Suite] = true
			order = append(order, c.Suite)
		}
	}
	if ring == nil {
		fmt.Fprintln(os.Stderr, "bcebench: no -profile-dir; rerun both sides with -profile-dir to attribute regressions")
		return
	}
	for _, suite := range order {
		oldRef, candRef := old.FindProfile(suite, "cpu"), cand.FindProfile(suite, "cpu")
		if oldRef == nil || candRef == nil {
			fmt.Fprintf(os.Stderr, "bcebench: suite %q: missing profile ref (base: %v, cand: %v); run both sides with -profile-dir\n",
				suite, oldRef != nil, candRef != nil)
			continue
		}
		d, err := diffRefs(ring, oldRef, candRef)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcebench: suite %q: %v\n", suite, err)
			continue
		}
		fmt.Fprintf(w, "\nattribution for suite %q:\n%s", suite, d.Table(top))
	}
}

func diffRefs(ring *prof.Ring, oldRef, candRef *bench.ProfileRef) (*prof.Delta, error) {
	oldData, err := ring.Get(oldRef.Digest)
	if err != nil {
		return nil, err
	}
	candData, err := ring.Get(candRef.Digest)
	if err != nil {
		return nil, err
	}
	oldProf, err := prof.Parse(oldData)
	if err != nil {
		return nil, err
	}
	candProf, err := prof.Parse(candData)
	if err != nil {
		return nil, err
	}
	return prof.Diff(oldProf, candProf)
}
