// Command bcecal reports the synthetic-workload calibration against
// the paper's Table 2 targets: per-benchmark misprediction rates under
// the baseline hybrid predictor, with per-behavior-class attribution —
// the tooling used to tune internal/workload/profiles.go.
//
// Usage:
//
//	bcecal                  # rates vs targets for all benchmarks
//	bcecal -bench mcf       # per-class attribution for one benchmark
//	bcecal -uops 1000000    # longer measurement
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"bce/internal/predictor"
	"bce/internal/telemetry"
	"bce/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "", "show per-class attribution for one benchmark")
		uops      = flag.Int("uops", 400_000, "measured uops (after 100k warmup)")
		debugAddr = flag.String("debug-addr", "", "serve pprof + expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcecal:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bcecal: debug endpoint on http://%s/debug/\n", srv.Addr())
	}
	if err := run(*bench, *uops); err != nil {
		fmt.Fprintln(os.Stderr, "bcecal:", err)
		os.Exit(1)
	}
}

func run(bench string, uops int) error {
	if bench != "" {
		return attribute(bench, uops)
	}
	fmt.Printf("%-9s %10s %10s %8s\n", "bench", "misp/Kuop", "target", "ratio")
	var worst float64 = 1
	for _, name := range workload.Names() {
		rate, err := mispRate(name, uops)
		if err != nil {
			return err
		}
		target := workload.Table2Target[name]
		ratio := rate / target
		if ratio > worst {
			worst = ratio
		}
		if 1/ratio > worst {
			worst = 1 / ratio
		}
		fmt.Printf("%-9s %10.2f %10.2f %7.2fx\n", name, rate, target, ratio)
	}
	fmt.Printf("\nworst deviation: %.2fx (calibration keeps every benchmark within 2x)\n", worst)
	return nil
}

func mispRate(name string, uops int) (float64, error) {
	prof, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	g := workload.New(prof)
	pred := predictor.NewBaselineHybrid()
	const warm = 100_000
	var measured, misp int
	for i := 0; i < warm+uops; i++ {
		u, _ := g.Next()
		if i >= warm {
			measured++
		}
		if !u.Kind.IsConditional() {
			continue
		}
		pt := pred.Predict(u.PC)
		pred.Update(u.PC, u.Taken)
		if i >= warm && pt != u.Taken {
			misp++
		}
	}
	return 1000 * float64(misp) / float64(measured), nil
}

func attribute(name string, uops int) error {
	prof, err := workload.ByName(name)
	if err != nil {
		return err
	}
	g := workload.New(prof)
	kinds := g.BranchKinds()
	pred := predictor.NewBaselineHybrid()
	type agg struct{ n, miss int }
	byClass := map[string]*agg{}
	const warm = 100_000
	for i := 0; i < warm+uops; i++ {
		u, _ := g.Next()
		if !u.Kind.IsConditional() {
			continue
		}
		pt := pred.Predict(u.PC)
		pred.Update(u.PC, u.Taken)
		if i < warm {
			continue
		}
		k := kinds[u.PC]
		if j := strings.IndexByte(k, '('); j > 0 {
			k = k[:j]
		}
		a := byClass[k]
		if a == nil {
			a = &agg{}
			byClass[k] = a
		}
		a.n++
		if pt != u.Taken {
			a.miss++
		}
	}
	var ks []string
	for k := range byClass {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	fmt.Printf("benchmark %s: misprediction attribution by behavior class\n", name)
	fmt.Printf("%-10s %10s %10s %10s %12s\n", "class", "dynamic", "share", "missrate", "contribution")
	total, totalMiss := 0, 0
	for _, a := range byClass {
		total += a.n
		totalMiss += a.miss
	}
	for _, k := range ks {
		a := byClass[k]
		fmt.Printf("%-10s %10d %9.1f%% %9.1f%% %11.1f%%\n",
			k, a.n,
			100*float64(a.n)/float64(total),
			100*float64(a.miss)/float64(a.n),
			100*float64(a.miss)/float64(totalMiss))
	}
	fmt.Printf("%-10s %10d %9s %9.1f%%\n", "TOTAL", total, "",
		100*float64(totalMiss)/float64(total))
	return nil
}
