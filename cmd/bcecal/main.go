// Command bcecal reports the synthetic-workload calibration against
// the paper's Table 2 targets: per-benchmark misprediction rates under
// the baseline hybrid predictor, with per-behavior-class attribution —
// the tooling used to tune internal/workload/profiles.go.
//
// Usage:
//
//	bcecal                  # rates vs targets for all benchmarks
//	bcecal -bench mcf       # per-class attribution for one benchmark
//	bcecal -uops 1000000    # longer measurement
//	bcecal -manifest cal.json  # also write a run manifest
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bce/internal/manifest"
	"bce/internal/predictor"
	"bce/internal/prof"
	"bce/internal/runner"
	"bce/internal/telemetry"
	"bce/internal/workload"
)

func main() {
	var (
		bench      = flag.String("bench", "", "show per-class attribution for one benchmark")
		uops       = flag.Int("uops", 400_000, "measured uops (after 100k warmup)")
		workers    = flag.Int("workers", 0, "parallel calibration runs (0 = GOMAXPROCS); results are identical under any setting")
		cacheDir   = flag.String("cache", "", "directory for the on-disk calibration cache (empty = no persistence)")
		resume     = flag.Bool("resume", false, "replay the checkpoint journal from a killed run (needs -cache)")
		debugAddr  = flag.String("debug-addr", "", "serve pprof + expvar on this address (e.g. localhost:6060); Prometheus text format on /metrics")
		manifestTo = flag.String("manifest", "", "write a run manifest (provenance + per-benchmark rates) to this file")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		profFlags  = prof.RegisterFlags(nil)
		version    = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()
	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcecal:", err)
		os.Exit(2)
	}
	logger = logger.With("bin", "bcecal")
	slog.SetDefault(logger)
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("manifest_schema", fmt.Sprint(manifest.SchemaVersion))
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}
	profOpts := profFlags.Options()
	profOpts.Sweeps = true
	profOpts.Logger = logger
	capturer, stopProf, err := prof.Enable(profOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcecal:", err)
		os.Exit(1)
	}
	defer stopProf()
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, map[string]func() any{
			"bce_runner": func() any { return runner.LiveSnapshot() },
			"bce_prof":   capturer.DebugVar(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcecal:", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("debug endpoint up", "url", "http://"+srv.Addr()+"/debug/")
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "bcecal: -resume needs -cache (the journal lives next to the result store)")
		os.Exit(2)
	}
	var mb *manifest.Builder
	if *manifestTo != "" {
		mb = manifest.NewBuilder("bcecal", os.Args[1:])
		mb.SetConfig("bench", *bench)
		mb.SetConfig("uops", fmt.Sprint(*uops))
		seeds := make(map[string]int64)
		for _, name := range workload.Names() {
			if wl, err := workload.ByName(name); err == nil {
				seeds[name] = wl.Seed
			}
		}
		mb.SetSeeds(seeds)
	}
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	if err := run(ctx, *bench, *uops, *workers, *cacheDir, *resume, mb); err != nil {
		if errors.Is(err, context.Canceled) {
			ls := runner.LiveSnapshot()
			fmt.Fprintf(os.Stderr, "bcecal: interrupted: %d calibration runs finished before shutdown", ls.JobsDone)
			if *cacheDir != "" {
				fmt.Fprintf(os.Stderr, "; rerun with -resume to continue")
			}
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintln(os.Stderr, "bcecal:", err)
		os.Exit(1)
	}
	if mb != nil {
		mb.AddProfiles(capturer.Records()...)
		if err := mb.WriteFile(*manifestTo, 0, 0); err != nil {
			fmt.Fprintln(os.Stderr, "bcecal:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bcecal: run manifest written to %s\n", *manifestTo)
	}
}

// openStore builds the checkpointed store stack for -cache/-resume:
// a crash-safe journal tiered in front of the DirStore. The cleanup
// removes the journal on success (results all merged into the store)
// and keeps it for -resume otherwise.
func openStore(cacheDir string, resume bool) (runner.Store, func(ok bool), error) {
	if cacheDir == "" {
		return nil, func(bool) {}, nil
	}
	ds, err := runner.NewDirStore(cacheDir)
	if err != nil {
		return nil, nil, err
	}
	jpath := filepath.Join(ds.Dir(), "sweep.journal")
	if !resume {
		os.Remove(jpath)
	}
	j, err := runner.OpenJournal(jpath)
	if err != nil {
		return nil, nil, err
	}
	if resume {
		fmt.Fprintf(os.Stderr, "bcecal: resumed from %s (%d checkpointed runs)\n", jpath, j.Replayed())
	}
	cleanup := func(ok bool) {
		if ok {
			j.Remove()
		} else {
			j.Close()
		}
	}
	return runner.Tiered(j, ds), cleanup, nil
}

func run(ctx context.Context, bench string, uops, workers int, cacheDir string, resume bool, mb *manifest.Builder) error {
	if bench != "" {
		return attribute(bench, uops)
	}
	store, cleanup, err := openStore(cacheDir, resume)
	if err != nil {
		return err
	}
	cache := runner.NewCache[float64]()
	if store != nil {
		cache.SetStore(store,
			func(v float64) ([]byte, error) { return json.Marshal(v) },
			func(b []byte) (float64, error) { var v float64; err := json.Unmarshal(b, &v); return v, err })
	}
	// The fan-out: one deterministic calibration run per benchmark,
	// results assembled in workload.Names() order so output is
	// identical under any worker count and across resumes.
	pool := runner.New(runner.Options{Workers: workers})
	rates, err := runner.Map(ctx, pool, workload.Names(),
		func(ctx context.Context, _ int, name string) (float64, error) {
			return cache.Do(runner.KeyOf("bcecal", 1, name, uops), func() (float64, error) {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				return mispRate(name, uops)
			})
		})
	cleanup(err == nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-9s %10s %10s %8s\n", "bench", "misp/Kuop", "target", "ratio")
	var worst float64 = 1
	type calRow struct {
		Bench             string
		MispPer1K, Target float64
	}
	var calRows []calRow
	for i, name := range workload.Names() {
		rate := rates[i]
		target := workload.Table2Target[name]
		ratio := rate / target
		if ratio > worst {
			worst = ratio
		}
		if 1/ratio > worst {
			worst = 1 / ratio
		}
		fmt.Printf("%-9s %10.2f %10.2f %7.2fx\n", name, rate, target, ratio)
		calRows = append(calRows, calRow{Bench: name, MispPer1K: rate, Target: target})
		if mb != nil {
			mb.AddJob(manifest.Job{
				Key: runner.KeyOf("bcecal", 1, name, uops), Kind: "calibration", Bench: name,
				Extra: map[string]float64{"misp_per_kuop": rate, "target": target},
			})
		}
	}
	fmt.Printf("\nworst deviation: %.2fx (calibration keeps every benchmark within 2x)\n", worst)
	if mb != nil {
		if err := mb.AddResult("calibration", map[string]any{
			"Rows": calRows, "WorstRatio": worst,
		}); err != nil {
			return err
		}
	}
	return nil
}

func mispRate(name string, uops int) (float64, error) {
	wl, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	g := workload.New(wl)
	pred := predictor.NewBaselineHybrid()
	const warm = 100_000
	var measured, misp int
	for i := 0; i < warm+uops; i++ {
		u, _ := g.Next()
		if i >= warm {
			measured++
		}
		if !u.Kind.IsConditional() {
			continue
		}
		pt := pred.Predict(u.PC)
		pred.Update(u.PC, u.Taken)
		if i >= warm && pt != u.Taken {
			misp++
		}
	}
	return 1000 * float64(misp) / float64(measured), nil
}

func attribute(name string, uops int) error {
	wl, err := workload.ByName(name)
	if err != nil {
		return err
	}
	g := workload.New(wl)
	kinds := g.BranchKinds()
	pred := predictor.NewBaselineHybrid()
	type agg struct{ n, miss int }
	byClass := map[string]*agg{}
	const warm = 100_000
	for i := 0; i < warm+uops; i++ {
		u, _ := g.Next()
		if !u.Kind.IsConditional() {
			continue
		}
		pt := pred.Predict(u.PC)
		pred.Update(u.PC, u.Taken)
		if i < warm {
			continue
		}
		k := kinds[u.PC]
		if j := strings.IndexByte(k, '('); j > 0 {
			k = k[:j]
		}
		a := byClass[k]
		if a == nil {
			a = &agg{}
			byClass[k] = a
		}
		a.n++
		if pt != u.Taken {
			a.miss++
		}
	}
	var ks []string
	for k := range byClass {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	fmt.Printf("benchmark %s: misprediction attribution by behavior class\n", name)
	fmt.Printf("%-10s %10s %10s %10s %12s\n", "class", "dynamic", "share", "missrate", "contribution")
	total, totalMiss := 0, 0
	for _, a := range byClass {
		total += a.n
		totalMiss += a.miss
	}
	for _, k := range ks {
		a := byClass[k]
		fmt.Printf("%-10s %10d %9.1f%% %9.1f%% %11.1f%%\n",
			k, a.n,
			100*float64(a.n)/float64(total),
			100*float64(a.miss)/float64(a.n),
			100*float64(a.miss)/float64(totalMiss))
	}
	fmt.Printf("%-10s %10d %9s %9.1f%%\n", "TOTAL", total, "",
		100*float64(totalMiss)/float64(total))
	return nil
}
