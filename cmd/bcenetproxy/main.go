// Command bcenetproxy runs the network chaos proxy standalone: a TCP
// forwarder that degrades the path between a coordinator and one
// worker per a deterministic fault schedule (see
// internal/faults/netproxy and docs/robustness.md).
//
// Usage:
//
//	bcenetproxy -target 127.0.0.1:8371 -schedule chaos.json -addr-file proxy1.addr
//
// The proxy listens on an ephemeral localhost port, writes the chosen
// address to -addr-file (write-then-rename, so a watching script never
// reads a half-written file), and forwards until SIGINT/SIGTERM. On
// shutdown it prints its fault-injection statistics as JSON on stderr.
//
// The schedule file is the netproxy JSON form, e.g.:
//
//	{"seed": 7, "repeat": true, "rules": [
//	  {"for_ms": 200, "latency_ms": 5, "jitter_ms": 10},
//	  {"for_ms": 50, "partition": true},
//	  {"for_ms": 200, "reset_prob": 0.05}
//	]}
//
// Identical seed + schedule + traffic replays identical fault
// decisions, which is what lets CI assert byte-identical sweep output
// under chaos.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"bce/internal/faults/netproxy"
	"bce/internal/manifest"
	"bce/internal/prof"
	"bce/internal/telemetry"
)

func main() {
	var (
		target    = flag.String("target", "", "host:port to forward to (required)")
		schedule  = flag.String("schedule", "", "path to the fault-schedule JSON file (required)")
		addrFile  = flag.String("addr-file", "", "write the proxy's listen address to this file (optional)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		profFlags = prof.RegisterFlags(nil)
		version   = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}
	if *target == "" || *schedule == "" {
		fmt.Fprintln(os.Stderr, "bcenetproxy: -target and -schedule are required")
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bcenetproxy: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// Process-mode profiling: one capture window spanning the proxy's
	// lifetime (the interesting cost here is the forwarding goroutines,
	// not any sweep phase).
	_, stopProf, err := prof.Enable(prof.EnableOptions{
		Dir:           *profFlags.Dir,
		RateHz:        *profFlags.Rate,
		MutexFraction: *profFlags.Mutex,
		BlockRate:     *profFlags.Block,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcenetproxy:", err)
		os.Exit(2)
	}
	defer stopProf()

	f, err := os.Open(*schedule)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcenetproxy:", err)
		os.Exit(1)
	}
	sched, err := netproxy.DecodeSchedule(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcenetproxy: schedule:", err)
		os.Exit(1)
	}

	p, err := netproxy.Start(*target, sched, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcenetproxy:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(p.Addr()), 0o644); err == nil {
			err = os.Rename(tmp, *addrFile)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcenetproxy:", err)
			p.Close()
			os.Exit(1)
		}
	}
	// Greppable by scripts, like bceworker's serving line.
	fmt.Fprintf(os.Stderr, "bcenetproxy: %s proxying for %s\n", p.Addr(), *target)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	p.Close()
	stats, err := json.Marshal(p.Stats())
	if err == nil {
		fmt.Fprintf(os.Stderr, "bcenetproxy: stats %s\n", stats)
	}
}
