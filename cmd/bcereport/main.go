// Command bcereport turns run manifests (bcetables -manifest, bcecal
// -manifest) into the paper-fidelity scorecard and cross-run drift
// reports.
//
// Usage:
//
//	bcereport run.json                      # text scorecard on stdout
//	bcereport -json FIDELITY.json run.json  # canonical scorecard JSON
//	bcereport -html report.html run.json    # self-contained dashboard
//	bcereport -baseline FIDELITY.json run.json  # gate: fail on drift
//	bcereport -compare old.json new.json    # diff two manifests
//
// When comparing two manifests that carry profile records (runs made
// with -profile-dir), adding -profile-dir here attributes wall/CPU
// drift between the runs: matching capture phases are diffed into
// per-function deltas and printed alongside the metric drift table.
//
// Several manifests can be ingested at once (e.g. a bcetables sweep
// plus a bcecal run); later files win where experiments overlap. The
// scorecard JSON is canonical — identical sweeps produce identical
// bytes — so committing it as a baseline and gating on drift in CI is
// exact, not approximate.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"bce/internal/manifest"
	"bce/internal/prof"
	"bce/internal/report"
	"bce/internal/telemetry"
)

func main() {
	var (
		jsonOut    = flag.String("json", "", "write the canonical scorecard JSON to this file")
		htmlOut    = flag.String("html", "", "write the self-contained HTML dashboard to this file")
		baseline   = flag.String("baseline", "", "scorecard JSON to gate against: exit 1 if any metric drifts beyond -tol")
		compare    = flag.Bool("compare", false, "diff two manifests (old new) instead of rendering a scorecard")
		tol        = flag.Float64("tol", 1e-9, "drift tolerance in the metric's own unit (simulations are deterministic, so near-zero is exact)")
		quiet      = flag.Bool("quiet", false, "suppress the text scorecard on stdout")
		profFlags  = prof.RegisterFlags(nil)
		profileTop = flag.Int("profile-top", 10, "symbols per phase in the -compare profile attribution table")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		version    = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()
	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcereport:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger.With("bin", "bcereport"))
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("manifest_schema", fmt.Sprint(manifest.SchemaVersion))
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}
	if err := run(flag.Args(), *jsonOut, *htmlOut, *baseline, *compare, *tol, *quiet,
		*profFlags.Dir, *profileTop); err != nil {
		fmt.Fprintln(os.Stderr, "bcereport:", err)
		os.Exit(1)
	}
}

func run(args []string, jsonOut, htmlOut, baseline string, compare bool, tol float64, quiet bool,
	profileDir string, profileTop int) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare takes exactly two manifests (old new), got %d", len(args))
		}
		old, err := manifest.Load(args[0])
		if err != nil {
			return err
		}
		new, err := manifest.Load(args[1])
		if err != nil {
			return err
		}
		drifts, notes, err := report.CompareManifests(old, new, tol)
		if err != nil {
			return err
		}
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "bcereport: note:", n)
		}
		fmt.Print(report.RenderDrift(drifts, tol))
		attributeDrift(old, new, profileDir, profileTop)
		if len(drifts) > 0 {
			return fmt.Errorf("%d metric(s) drifted", len(drifts))
		}
		return nil
	}

	if len(args) == 0 {
		return fmt.Errorf("no manifests given (usage: bcereport [flags] manifest.json ...)")
	}
	manifests := make([]*manifest.Manifest, len(args))
	for i, path := range args {
		m, err := manifest.Load(path)
		if err != nil {
			return err
		}
		manifests[i] = m
	}
	sc, err := report.Build(manifests...)
	if err != nil {
		return err
	}

	if !quiet {
		fmt.Print(sc.String())
	}
	if jsonOut != "" {
		buf, err := sc.Canonical()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bcereport: scorecard JSON written to %s\n", jsonOut)
	}
	if htmlOut != "" {
		if err := os.WriteFile(htmlOut, []byte(report.WriteHTML(sc, manifests...)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bcereport: dashboard written to %s\n", htmlOut)
	}
	if baseline != "" {
		base, err := report.LoadScorecard(baseline)
		if err != nil {
			return err
		}
		drifts := report.CompareScorecards(base, sc, tol)
		fmt.Print(report.RenderDrift(drifts, tol))
		if len(drifts) > 0 {
			return fmt.Errorf("fidelity gate failed: %d metric(s) drifted from %s", len(drifts), baseline)
		}
		fmt.Fprintf(os.Stderr, "bcereport: fidelity gate passed against %s\n", baseline)
	}
	return nil
}

// attributeDrift explains where wall/CPU time moved between two
// manifests: it prints the headline wall/CPU deltas, then — when both
// manifests carry profile records and -profile-dir holds the bytes —
// a per-function delta table for every capture phase present on both
// sides. Purely advisory: problems degrade to stderr notes, never an
// exit status, because the drift verdict above is authoritative.
func attributeDrift(old, new *manifest.Manifest, profileDir string, top int) {
	if old.WallSeconds > 0 {
		fmt.Printf("wall %.2fs -> %.2fs (%+.1f%%), cpu %.2fs -> %.2fs\n",
			old.WallSeconds, new.WallSeconds,
			100*(new.WallSeconds-old.WallSeconds)/old.WallSeconds,
			old.CPUSeconds, new.CPUSeconds)
	}
	if len(old.Profiles) == 0 || len(new.Profiles) == 0 {
		if profileDir != "" {
			fmt.Fprintln(os.Stderr, "bcereport: note: one or both manifests carry no profile records (rerun the sweeps with -profile-dir)")
		}
		return
	}
	if profileDir == "" {
		fmt.Fprintln(os.Stderr, "bcereport: note: manifests carry profiles; pass -profile-dir to attribute the drift per function")
		return
	}
	ring, err := prof.OpenRing(profileDir, 0, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcereport: note:", err)
		return
	}
	// Match capture windows by (phase, kind): sweep windows are named
	// deterministically ("sweep(jobs=128)#3"), so two runs of the same
	// configuration pair up exactly.
	type key struct{ phase, kind string }
	oldByKey := map[key]prof.Record{}
	for _, r := range old.Profiles {
		oldByKey[key{r.Phase, r.Kind}] = r
	}
	matched := 0
	for _, nr := range new.Profiles {
		or, ok := oldByKey[key{nr.Phase, nr.Kind}]
		if !ok || nr.Kind != "cpu" {
			continue
		}
		d, err := diffDigests(ring, or.Digest, nr.Digest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcereport: note: phase %s: %v\n", nr.Phase, err)
			continue
		}
		matched++
		fmt.Printf("\nattribution for phase %s:\n%s", nr.Phase, d.Table(top))
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "bcereport: note: no cpu capture phase is present in both manifests with bytes in the ring")
	}
}

func diffDigests(ring *prof.Ring, oldDigest, newDigest string) (*prof.Delta, error) {
	oldData, err := ring.Get(oldDigest)
	if err != nil {
		return nil, err
	}
	newData, err := ring.Get(newDigest)
	if err != nil {
		return nil, err
	}
	oldProf, err := prof.Parse(oldData)
	if err != nil {
		return nil, err
	}
	newProf, err := prof.Parse(newData)
	if err != nil {
		return nil, err
	}
	return prof.Diff(oldProf, newProf)
}
