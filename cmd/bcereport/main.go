// Command bcereport turns run manifests (bcetables -manifest, bcecal
// -manifest) into the paper-fidelity scorecard and cross-run drift
// reports.
//
// Usage:
//
//	bcereport run.json                      # text scorecard on stdout
//	bcereport -json FIDELITY.json run.json  # canonical scorecard JSON
//	bcereport -html report.html run.json    # self-contained dashboard
//	bcereport -baseline FIDELITY.json run.json  # gate: fail on drift
//	bcereport -compare old.json new.json    # diff two manifests
//
// Several manifests can be ingested at once (e.g. a bcetables sweep
// plus a bcecal run); later files win where experiments overlap. The
// scorecard JSON is canonical — identical sweeps produce identical
// bytes — so committing it as a baseline and gating on drift in CI is
// exact, not approximate.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"bce/internal/manifest"
	"bce/internal/report"
	"bce/internal/telemetry"
)

func main() {
	var (
		jsonOut   = flag.String("json", "", "write the canonical scorecard JSON to this file")
		htmlOut   = flag.String("html", "", "write the self-contained HTML dashboard to this file")
		baseline  = flag.String("baseline", "", "scorecard JSON to gate against: exit 1 if any metric drifts beyond -tol")
		compare   = flag.Bool("compare", false, "diff two manifests (old new) instead of rendering a scorecard")
		tol       = flag.Float64("tol", 1e-9, "drift tolerance in the metric's own unit (simulations are deterministic, so near-zero is exact)")
		quiet     = flag.Bool("quiet", false, "suppress the text scorecard on stdout")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcereport:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger.With("bin", "bcereport"))
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("manifest_schema", fmt.Sprint(manifest.SchemaVersion))
	if err := run(flag.Args(), *jsonOut, *htmlOut, *baseline, *compare, *tol, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bcereport:", err)
		os.Exit(1)
	}
}

func run(args []string, jsonOut, htmlOut, baseline string, compare bool, tol float64, quiet bool) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare takes exactly two manifests (old new), got %d", len(args))
		}
		old, err := manifest.Load(args[0])
		if err != nil {
			return err
		}
		new, err := manifest.Load(args[1])
		if err != nil {
			return err
		}
		drifts, notes, err := report.CompareManifests(old, new, tol)
		if err != nil {
			return err
		}
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "bcereport: note:", n)
		}
		fmt.Print(report.RenderDrift(drifts, tol))
		if len(drifts) > 0 {
			return fmt.Errorf("%d metric(s) drifted", len(drifts))
		}
		return nil
	}

	if len(args) == 0 {
		return fmt.Errorf("no manifests given (usage: bcereport [flags] manifest.json ...)")
	}
	manifests := make([]*manifest.Manifest, len(args))
	for i, path := range args {
		m, err := manifest.Load(path)
		if err != nil {
			return err
		}
		manifests[i] = m
	}
	sc, err := report.Build(manifests...)
	if err != nil {
		return err
	}

	if !quiet {
		fmt.Print(sc.String())
	}
	if jsonOut != "" {
		buf, err := sc.Canonical()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bcereport: scorecard JSON written to %s\n", jsonOut)
	}
	if htmlOut != "" {
		if err := os.WriteFile(htmlOut, []byte(report.WriteHTML(sc, manifests...)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bcereport: dashboard written to %s\n", htmlOut)
	}
	if baseline != "" {
		base, err := report.LoadScorecard(baseline)
		if err != nil {
			return err
		}
		drifts := report.CompareScorecards(base, sc, tol)
		fmt.Print(report.RenderDrift(drifts, tol))
		if len(drifts) > 0 {
			return fmt.Errorf("fidelity gate failed: %d metric(s) drifted from %s", len(drifts), baseline)
		}
		fmt.Fprintf(os.Stderr, "bcereport: fidelity gate passed against %s\n", baseline)
	}
	return nil
}
