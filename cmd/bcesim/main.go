// Command bcesim runs timing simulations and prints their metrics:
// one or more benchmarks on a machine with a chosen predictor,
// confidence estimator and gating/reversal configuration.
//
// Examples:
//
//	bcesim -bench gzip
//	bcesim -bench all                                  # every benchmark, in parallel
//	bcesim -bench gzip,mcf,twolf -workers 2 -progress
//	bcesim -bench mcf -machine 20c8w -estimator cic -lambda 0 -pl 1
//	bcesim -bench twolf -estimator cic -lambda -75 -reversal 50 -pl 2
//	bcesim -bench gcc -estimator jrs -lambda 15 -pl 2
//	bcesim -bench vpr -perfect
//	bcesim -replay gzip.bcet -estimator cic -pl 1
//
// Observability (see docs/observability.md):
//
//	bcesim -bench gzip -estimator cic -pl 1 -trace out.json -audit out.csv
//	bcesim -bench gzip -stats
//	bcesim -bench all -debug-addr localhost:6060 -progress
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/manifest"
	"bce/internal/pipeline"
	"bce/internal/predictor"
	"bce/internal/prof"
	"bce/internal/runner"
	"bce/internal/telemetry"
	"bce/internal/trace"
	"bce/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "gzip", "benchmark name, comma-separated list, or \"all\" (gzip, vpr, gcc, mcf, crafty, link, eon, perlbmk, gap, vortex, bzip, twolf)")
		replayIn  = flag.String("replay", "", "replay a recorded .bcet trace instead of a synthetic benchmark")
		machine   = flag.String("machine", "40c4w", "machine model (40c4w, 20c4w, 20c8w)")
		predName  = flag.String("predictor", "bimodal-gshare", "branch predictor (bimodal-gshare, gshare-perceptron)")
		estName   = flag.String("estimator", "none", "confidence estimator (none, cic, tnt, jrs, pattern)")
		lambda    = flag.Int("lambda", 0, "estimator low-confidence threshold λ")
		reversal  = flag.Int("reversal", 0, "CIC reversal threshold (0 disables; enables branch reversal when set)")
		pl        = flag.Int("pl", 0, "pipeline gating branch-counter threshold (0 disables)")
		latency   = flag.Int("latency", 0, "estimator latency in cycles (§5.4.2)")
		warmup    = flag.Uint64("warmup", 60_000, "warmup uops")
		measure   = flag.Uint64("measure", 200_000, "measured uops")
		perfect   = flag.Bool("perfect", false, "oracle branch prediction")
		workers   = flag.Int("workers", 0, "parallel simulations for multi-benchmark runs (0 = GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "report multi-benchmark progress and ETA on stderr")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON timeline of the measured span (open in Perfetto or chrome://tracing; single benchmark or -replay only)")
		auditOut  = flag.String("audit", "", "write the per-branch-PC confidence audit CSV (single benchmark or -replay only)")
		stats     = flag.Bool("stats", false, "print the telemetry counter/histogram registry after the run")
		debugAddr = flag.String("debug-addr", "", "serve pprof + expvar + live sweep stats on this address (e.g. localhost:6060)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		profFlags = prof.RegisterFlags(nil)
		version   = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()

	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcesim:", err)
		os.Exit(2)
	}
	logger = logger.With("bin", "bcesim")
	slog.SetDefault(logger)
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("trace_format", fmt.Sprint(trace.FormatVersion))
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}

	// Process-mode profiling: one capture window spanning the whole
	// invocation (a bcesim run is one unit of work, unlike the sweep
	// drivers).
	profOpts := profFlags.Options()
	profOpts.Logger = logger
	capturer, stopProf, err := prof.Enable(profOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcesim:", err)
		os.Exit(2)
	}
	defer stopProf()

	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, map[string]func() any{
			"bce_runner": func() any { return runner.LiveSnapshot() },
			"bce_prof":   capturer.DebugVar(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcesim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("debug endpoint up", "url", "http://"+srv.Addr()+"/debug/")
	}

	cfg := simConfig{
		machine: *machine, predName: *predName, estName: *estName,
		lambda: *lambda, reversal: *reversal, pl: *pl, latency: *latency,
		warmup: *warmup, measure: *measure, perfect: *perfect,
		tracePath: *traceOut, auditPath: *auditOut, stats: *stats,
	}
	// First SIGINT/SIGTERM cancels multi-benchmark fan-outs gracefully;
	// a second kills the process.
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	if err := run(ctx, *bench, *replayIn, cfg, *workers, *progress); err != nil {
		if errors.Is(err, context.Canceled) {
			ls := runner.LiveSnapshot()
			fmt.Fprintf(os.Stderr, "bcesim: interrupted: %d simulations finished before shutdown\n", ls.JobsDone)
		}
		// Close the capture window explicitly: a failed run's profile
		// is the one worth keeping, and os.Exit skips defers.
		stopProf()
		fmt.Fprintln(os.Stderr, "bcesim:", err)
		os.Exit(1)
	}
}

// timeUnit is the rounding granularity for progress timestamps.
const timeUnit = time.Second

// simConfig is the shared simulation configuration; stateful
// components (predictor, estimator) are built fresh per simulation.
type simConfig struct {
	machine, predName, estName string
	lambda, reversal, pl       int
	latency                    int
	warmup, measure            uint64
	perfect                    bool
	tracePath, auditPath       string
	stats                      bool
}

func (c simConfig) wantsSinks() bool { return c.tracePath != "" || c.auditPath != "" }

func run(ctx context.Context, bench, replayIn string, cfg simConfig, workers int, progress bool) error {
	if replayIn != "" {
		report, err := simTrace(replayIn, cfg)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil
	}
	benches, err := parseBenches(bench)
	if err != nil {
		return err
	}
	if len(benches) > 1 && cfg.wantsSinks() {
		return fmt.Errorf("-trace/-audit need a single benchmark or -replay (got %d benchmarks)", len(benches))
	}
	if len(benches) == 1 {
		report, err := simBench(benches[0], cfg)
		if err != nil {
			return err
		}
		fmt.Print(report)
		return nil
	}
	// Multi-benchmark fan-out on the shared runner pool. Each job is a
	// self-contained simulation (workload seeds derive from the
	// benchmark profile), so results are identical under any -workers.
	opts := runner.Options{Workers: workers}
	if progress {
		opts.Progress = func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "bcesim: %d/%d done, elapsed %s, eta %s\n",
				p.Done, p.Total, p.Elapsed.Round(timeUnit), p.ETA.Round(timeUnit))
		}
	}
	reports, err := runner.Map(ctx, runner.New(opts), benches,
		func(_ context.Context, _ int, b string) (string, error) {
			return simBench(b, cfg)
		})
	if err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Print(r)
	}
	return nil
}

func parseBenches(bench string) ([]string, error) {
	if bench == "all" {
		return workload.Names(), nil
	}
	var out []string
	for _, b := range strings.Split(bench, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if _, err := workload.ByName(b); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmarks in %q", bench)
	}
	return out, nil
}

// sinkSet holds the exporters attached to one simulation.
type sinkSet struct {
	sink      telemetry.Sink
	trace     *telemetry.ChromeTrace
	traceFile *os.File
	audit     *telemetry.Audit
	auditPath string
}

// openSinks builds the exporters the configuration asks for; the
// returned set's sink is nil when none are requested, keeping the
// simulator on its zero-cost path.
func openSinks(cfg simConfig) (*sinkSet, error) {
	s := &sinkSet{auditPath: cfg.auditPath}
	var sinks []telemetry.Sink
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return nil, err
		}
		s.traceFile = f
		s.trace = telemetry.NewChromeTrace(f)
		sinks = append(sinks, s.trace)
	}
	if cfg.auditPath != "" {
		s.audit = telemetry.NewAudit()
		sinks = append(sinks, s.audit)
	}
	s.sink = telemetry.Multi(sinks...)
	return s, nil
}

// finish flushes the exporters to their files.
func (s *sinkSet) finish() error {
	if s.trace != nil {
		if err := s.trace.Close(); err != nil {
			return err
		}
		if err := s.traceFile.Close(); err != nil {
			return err
		}
	}
	if s.audit != nil {
		f, err := os.Create(s.auditPath)
		if err != nil {
			return err
		}
		if err := s.audit.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// makeOptions builds pipeline options with fresh stateful components.
func makeOptions(cfg simConfig) (pipeline.Options, bool, error) {
	m, err := config.ByName(cfg.machine)
	if err != nil {
		return pipeline.Options{}, false, err
	}
	opt := pipeline.Options{Machine: m, Perfect: cfg.perfect}

	switch cfg.predName {
	case "bimodal-gshare":
		opt.Predictor = predictor.NewBaselineHybrid()
	case "gshare-perceptron":
		opt.Predictor = predictor.NewGsharePerceptronHybrid()
	default:
		return pipeline.Options{}, false, fmt.Errorf("unknown predictor %q", cfg.predName)
	}

	useReversal := false
	switch cfg.estName {
	case "none":
	case "cic":
		c := confidence.CICConfig{Lambda: cfg.lambda, Reversal: confidence.DisableReversal}
		if cfg.reversal != 0 {
			c.Reversal = cfg.reversal
			useReversal = true
		}
		opt.Estimator = confidence.NewCICWith(c)
	case "tnt":
		opt.Estimator = confidence.NewTNT(cfg.lambda)
	case "jrs":
		opt.Estimator = confidence.NewEnhancedJRS(cfg.lambda)
	case "pattern":
		opt.Estimator = confidence.NewPattern(0, 0)
	default:
		return pipeline.Options{}, false, fmt.Errorf("unknown estimator %q", cfg.estName)
	}
	opt.Reversal = useReversal
	opt.Gating = gating.Policy{Threshold: cfg.pl, Latency: cfg.latency}
	return opt, useReversal, nil
}

func simBench(bench string, cfg simConfig) (string, error) {
	opt, useReversal, err := makeOptions(cfg)
	if err != nil {
		return "", err
	}
	prof, err := workload.ByName(bench)
	if err != nil {
		return "", err
	}
	sinks, err := openSinks(cfg)
	if err != nil {
		return "", err
	}
	opt.Sink = sinks.sink
	sim := pipeline.New(opt, workload.New(prof))
	out, err := report(sim, bench, cfg, useReversal)
	if err != nil {
		return "", err
	}
	return out, sinks.finish()
}

func simTrace(replayIn string, cfg simConfig) (string, error) {
	opt, useReversal, err := makeOptions(cfg)
	if err != nil {
		return "", err
	}
	f, err := os.Open(replayIn)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sinks, err := openSinks(cfg)
	if err != nil {
		return "", err
	}
	opt.Sink = sinks.sink
	replay := workload.NewReplay(trace.NewReader(f))
	sim := pipeline.NewFromSource(opt, replay, replay.WrongPath(1))
	out, err := report(sim, replayIn, cfg, useReversal)
	if err != nil {
		return "", err
	}
	// A corrupt recording ends the reader mid-stream and Replay loops
	// its truncated prefix; the run "succeeds" on garbage. Surface the
	// decode error (with record index and PC context) instead.
	if err := replay.Err(); err != nil {
		return "", fmt.Errorf("replaying %s: %w", replayIn, err)
	}
	return out, sinks.finish()
}

func report(sim *pipeline.Sim, bench string, cfg simConfig, useReversal bool) (string, error) {
	sim.Run(cfg.warmup)
	r := sim.Run(cfg.measure)

	var b strings.Builder
	fmt.Fprintf(&b, "bench=%s machine=%s predictor=%s estimator=%s\n", bench, cfg.machine, cfg.predName, cfg.estName)
	fmt.Fprintf(&b, "  cycles             %12d\n", r.Cycles)
	fmt.Fprintf(&b, "  retired uops       %12d   (IPC %.3f)\n", r.Retired, r.IPC())
	fmt.Fprintf(&b, "  executed uops      %12d   (wrong-path %d)\n", r.Executed, r.WrongPathExecuted)
	fmt.Fprintf(&b, "  fetched uops       %12d\n", r.Fetched)
	fmt.Fprintf(&b, "  branches retired   %12d   (%.2f mispredicts/Kuop)\n", r.RetiredBranches, r.MispredictsPer1KUops())
	if cfg.estName != "none" {
		fmt.Fprintf(&b, "  confidence         PVN %.1f%%  Spec %.1f%%  Sens %.1f%%  PVP %.1f%%\n",
			100*r.Confusion.PVN(), 100*r.Confusion.Spec(),
			100*r.Confusion.Sens(), 100*r.Confusion.PVP())
	}
	if cfg.pl > 0 {
		fmt.Fprintf(&b, "  gating             %d stalled cycles in %d episodes\n", r.GatedCycles, r.GateEvents)
	}
	if useReversal {
		fmt.Fprintf(&b, "  reversals          %d (%d corrected a misprediction)\n", r.Reversals, r.ReversalsGood)
	}
	// Cache statistics.
	h := sim.Hierarchy()
	l1h, l1m := h.L1().Stats()
	l2h, l2m := h.L2().Stats()
	fmt.Fprintf(&b, "  L1D                %.1f%% hit (%d/%d)\n", 100*float64(l1h)/float64(l1h+l1m), l1h, l1h+l1m)
	fmt.Fprintf(&b, "  L2                 %.1f%% hit (%d/%d)\n", 100*float64(l2h)/float64(l2h+l2m), l2h, l2h+l2m)
	if pf := h.Prefetcher(); pf != nil {
		iss, adv := pf.Stats()
		fmt.Fprintf(&b, "  prefetcher         %d fills, %d stream advances\n", iss, adv)
	}
	if cfg.stats {
		b.WriteString("  telemetry registry (measured span):\n")
		for _, line := range strings.Split(strings.TrimRight(sim.Telemetry().String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String(), nil
}
