// Command bcesim runs one timing simulation and prints its metrics:
// a benchmark on a machine with a chosen predictor, confidence
// estimator and gating/reversal configuration.
//
// Examples:
//
//	bcesim -bench gzip
//	bcesim -bench mcf -machine 20c8w -estimator cic -lambda 0 -pl 1
//	bcesim -bench twolf -estimator cic -lambda -75 -reversal 50 -pl 2
//	bcesim -bench gcc -estimator jrs -lambda 15 -pl 2
//	bcesim -bench vpr -perfect
//	bcesim -trace gzip.bcet -estimator cic -pl 1
package main

import (
	"flag"
	"fmt"
	"os"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/pipeline"
	"bce/internal/predictor"
	"bce/internal/trace"
	"bce/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "gzip", "benchmark name (gzip, vpr, gcc, mcf, crafty, link, eon, perlbmk, gap, vortex, bzip, twolf)")
		traceIn  = flag.String("trace", "", "replay a recorded .bcet trace instead of a synthetic benchmark")
		machine  = flag.String("machine", "40c4w", "machine model (40c4w, 20c4w, 20c8w)")
		predName = flag.String("predictor", "bimodal-gshare", "branch predictor (bimodal-gshare, gshare-perceptron)")
		estName  = flag.String("estimator", "none", "confidence estimator (none, cic, tnt, jrs, pattern)")
		lambda   = flag.Int("lambda", 0, "estimator low-confidence threshold λ")
		reversal = flag.Int("reversal", 0, "CIC reversal threshold (0 disables; enables branch reversal when set)")
		pl       = flag.Int("pl", 0, "pipeline gating branch-counter threshold (0 disables)")
		latency  = flag.Int("latency", 0, "estimator latency in cycles (§5.4.2)")
		warmup   = flag.Uint64("warmup", 60_000, "warmup uops")
		measure  = flag.Uint64("measure", 200_000, "measured uops")
		perfect  = flag.Bool("perfect", false, "oracle branch prediction")
	)
	flag.Parse()

	if err := run(*bench, *traceIn, *machine, *predName, *estName, *lambda, *reversal,
		*pl, *latency, *warmup, *measure, *perfect); err != nil {
		fmt.Fprintln(os.Stderr, "bcesim:", err)
		os.Exit(1)
	}
}

func run(bench, traceIn, machine, predName, estName string, lambda, reversal, pl, latency int,
	warmup, measure uint64, perfect bool) error {
	m, err := config.ByName(machine)
	if err != nil {
		return err
	}
	opt := pipeline.Options{Machine: m, Perfect: perfect}

	switch predName {
	case "bimodal-gshare":
		opt.Predictor = predictor.NewBaselineHybrid()
	case "gshare-perceptron":
		opt.Predictor = predictor.NewGsharePerceptronHybrid()
	default:
		return fmt.Errorf("unknown predictor %q", predName)
	}

	useReversal := false
	switch estName {
	case "none":
	case "cic":
		cfg := confidence.CICConfig{Lambda: lambda, Reversal: confidence.DisableReversal}
		if reversal != 0 {
			cfg.Reversal = reversal
			useReversal = true
		}
		opt.Estimator = confidence.NewCICWith(cfg)
	case "tnt":
		opt.Estimator = confidence.NewTNT(lambda)
	case "jrs":
		opt.Estimator = confidence.NewEnhancedJRS(lambda)
	case "pattern":
		opt.Estimator = confidence.NewPattern(0, 0)
	default:
		return fmt.Errorf("unknown estimator %q", estName)
	}
	opt.Reversal = useReversal
	opt.Gating = gating.Policy{Threshold: pl, Latency: latency}

	var sim *pipeline.Sim
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		replay := workload.NewReplay(trace.NewReader(f))
		sim = pipeline.NewFromSource(opt, replay, replay.WrongPath(1))
		bench = traceIn
	} else {
		prof, err := workload.ByName(bench)
		if err != nil {
			return err
		}
		sim = pipeline.New(opt, workload.New(prof))
	}
	sim.Run(warmup)
	r := sim.Run(measure)

	fmt.Printf("bench=%s machine=%s predictor=%s estimator=%s\n", bench, machine, predName, estName)
	fmt.Printf("  cycles             %12d\n", r.Cycles)
	fmt.Printf("  retired uops       %12d   (IPC %.3f)\n", r.Retired, r.IPC())
	fmt.Printf("  executed uops      %12d   (wrong-path %d)\n", r.Executed, r.WrongPathExecuted)
	fmt.Printf("  fetched uops       %12d\n", r.Fetched)
	fmt.Printf("  branches retired   %12d   (%.2f mispredicts/Kuop)\n", r.RetiredBranches, r.MispredictsPer1KUops())
	if estName != "none" {
		fmt.Printf("  confidence         PVN %.1f%%  Spec %.1f%%  Sens %.1f%%  PVP %.1f%%\n",
			100*r.Confusion.PVN(), 100*r.Confusion.Spec(),
			100*r.Confusion.Sens(), 100*r.Confusion.PVP())
	}
	if pl > 0 {
		fmt.Printf("  gating             %d stalled cycles in %d episodes\n", r.GatedCycles, r.GateEvents)
	}
	if useReversal {
		fmt.Printf("  reversals          %d (%d corrected a misprediction)\n", r.Reversals, r.ReversalsGood)
	}
	// Cache statistics.
	h := sim.Hierarchy()
	l1h, l1m := h.L1().Stats()
	l2h, l2m := h.L2().Stats()
	fmt.Printf("  L1D                %.1f%% hit (%d/%d)\n", 100*float64(l1h)/float64(l1h+l1m), l1h, l1h+l1m)
	fmt.Printf("  L2                 %.1f%% hit (%d/%d)\n", 100*float64(l2h)/float64(l2h+l2m), l2h, l2h+l2m)
	if pf := h.Prefetcher(); pf != nil {
		iss, adv := pf.Stats()
		fmt.Printf("  prefetcher         %d fills, %d stream advances\n", iss, adv)
	}
	return nil
}
