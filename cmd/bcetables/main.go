// Command bcetables regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	bcetables -exp table2          # one experiment
//	bcetables -exp all             # everything (minutes)
//	bcetables -exp fig4 -bench gcc # density figures accept -bench
//	bcetables -quick               # reduced run lengths (smoke)
//	bcetables -exp fig5 -csv       # density data as CSV
//	bcetables -exp fidelity -manifest run.json  # scorecard feedstock
//
// Experiments: table2 table3 table4 table5 table6 fig4 fig5 fig6 fig7
// fig8 fig9 latency all — plus the extension studies ablate-signal,
// ablate-reversal, ablate-site, ablate-threshold, ablate-history and
// variability (run with -exp extras for all of those). -exp fidelity
// runs the scorecard core (table2 + table3 + table4 + fig8), the
// composite the CI fidelity gate sweeps.
//
// With -manifest the invocation also writes a run manifest: config
// fingerprint, git revision, per-simulation results and runner/cache
// statistics, the input cmd/bcereport consumes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"bce/internal/config"
	"bce/internal/core"
	"bce/internal/dist"
	"bce/internal/manifest"
	"bce/internal/metrics"
	"bce/internal/prof"
	"bce/internal/runner"
	"bce/internal/telemetry"
	"bce/internal/workload"
)

// fleetMon holds the coordinator-side fleet monitor once a distributed
// sweep starts. The debug server's var map is registered before the
// coordinator exists, so the vars sample through this holder.
var fleetMon atomic.Pointer[dist.Fleet]

// coordMon likewise exposes the live coordinator's shard-latency
// statistics.
var coordMon atomic.Pointer[dist.Coordinator]

// workloadSeeds maps every benchmark to its deterministic base seed,
// recorded in run manifests so a result can be traced to its exact
// input stream.
func workloadSeeds() map[string]int64 {
	seeds := make(map[string]int64)
	for _, name := range workload.Names() {
		if wl, err := workload.ByName(name); err == nil {
			seeds[name] = wl.Seed
		}
	}
	return seeds
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to regenerate (table2..table6, fig4..fig9, latency, all)")
		bench      = flag.String("bench", "gcc", "benchmark for the density figures (fig4-fig7)")
		quick      = flag.Bool("quick", false, "use reduced run lengths")
		segments   = flag.Int("segments", 1, "independent trace segments per benchmark (the paper uses 2)")
		csv        = flag.Bool("csv", false, "emit density data as CSV (fig4-fig7 only)")
		workers    = flag.Int("workers", 0, "parallel simulations per sweep (0 = GOMAXPROCS); results are identical under any setting")
		progress   = flag.Bool("progress", false, "report per-sweep progress and ETA on stderr")
		cacheDir   = flag.String("cache", "", "directory for the on-disk timing-result cache (empty = in-memory only)")
		resume     = flag.Bool("resume", false, "replay the checkpoint journal from a killed run (needs -cache); completed simulations are not re-run and merged output is identical to an uninterrupted run")
		jobTimeout = flag.Duration("job-timeout", 0, "per-simulation deadline (0 = none); timed-out jobs are retried per -retries")
		retries    = flag.Int("retries", 0, "retries per job for transient failures, with exponential backoff")
		debugAddr  = flag.String("debug-addr", "", "serve pprof + expvar + live sweep stats on this address (e.g. localhost:6060); Prometheus text format on /metrics")
		manifestTo = flag.String("manifest", "", "write a run manifest (provenance + per-job results) to this file")
		remote     = flag.String("workers-remote", "", "comma-separated bceworker base URLs (e.g. http://127.0.0.1:8371); shard the sweep's timing simulations across them, then aggregate locally — output is byte-identical to a single-process run")
		distBatch  = flag.Int("dist-batch", 0, "jobs per batch request to remote workers (0 = default)")
		traceSpans = flag.String("trace-spans", "", "write the distributed sweep's merged cross-process span timeline (Chrome trace_event JSON, needs -workers-remote) to this file")
		hedge      = flag.Bool("hedge", true, "speculatively re-issue batches that outlive the adaptive latency threshold to a second worker and take the first result; duplicate executions never merge twice")
		adaptDL    = flag.Bool("adaptive-deadline", false, "derive each worker's per-job deadline from its own batch-latency history (p99 x 4, clamped) instead of the fixed -job-timeout")
		brkFails   = flag.Int("breaker-failures", 0, "consecutive batch failures that trip a worker's circuit breaker (0 = default 2)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "cooldown before the first half-open probe of a tripped worker, doubled per failed probe (0 = derived from retry backoff)")
		brkProbes  = flag.Int("breaker-probes", 0, "failed half-open probes before a tripped worker is declared permanently lost (0 = default 6)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		profFlags  = prof.RegisterFlags(nil)
		version    = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()

	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcetables:", err)
		os.Exit(2)
	}
	logger = logger.With("bin", "bcetables")
	slog.SetDefault(logger)
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("dist_schema", fmt.Sprint(dist.SchemaVersion))
	telemetry.RegisterBuildLabel("manifest_schema", fmt.Sprint(manifest.SchemaVersion))
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}

	// Continuous profiling in sweep mode: every runner.Map sweep
	// becomes a capture window into the -profile-dir ring, and the
	// manifest (if any) records the digests.
	profOpts := profFlags.Options()
	profOpts.Sweeps = true
	profOpts.Logger = logger
	capturer, stopProf, err := prof.Enable(profOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcetables:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *traceSpans != "" && *remote == "" {
		fmt.Fprintln(os.Stderr, "bcetables: -trace-spans needs -workers-remote (spans trace the distributed sweep)")
		os.Exit(2)
	}

	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, map[string]func() any{
			"bce_runner": func() any { return runner.LiveSnapshot() },
			"bce_result_cache": func() any {
				hits, misses := core.ResultCacheStats()
				return map[string]uint64{"hits": hits, "misses": misses}
			},
			"bce_dist": func() any { return dist.Snapshot() },
			"bce_fleet": func() any {
				if f := fleetMon.Load(); f != nil {
					return f.Snapshot()
				}
				return nil
			},
			"bce_dist_coordinator": func() any {
				if c := coordMon.Load(); c != nil {
					return c.Stats()
				}
				return nil
			},
			"bce_breakers": func() any {
				if c := coordMon.Load(); c != nil {
					return c.Breakers()
				}
				return nil
			},
			"bce_prof": capturer.DebugVar(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcetables:", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("debug endpoint up", "url", "http://"+srv.Addr()+"/debug/")
	}

	core.SetParallelism(*workers)
	core.SetJobTimeout(*jobTimeout)
	core.SetRetries(*retries, 100*time.Millisecond)
	if *progress {
		core.SetProgress(func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "bcetables: %d/%d jobs, elapsed %s, eta %s\n",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
		})
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "bcetables: -resume needs -cache (the journal lives next to the result store)")
		os.Exit(2)
	}
	if *cacheDir != "" {
		if err := core.SetResultCacheDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "bcetables:", err)
			os.Exit(1)
		}
		replayed, err := core.SetCheckpoint(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcetables:", err)
			os.Exit(1)
		}
		if *resume {
			logger.Info("resumed from checkpoint",
				"path", core.CheckpointPath(), "simulations", replayed)
		}
	}

	// First SIGINT/SIGTERM cancels the sweep (in-flight jobs finish and
	// checkpoint); a second kills the process.
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	core.SetBaseContext(ctx)

	sz := core.DefaultSizes()
	if *quick {
		sz = core.QuickSizes()
	}
	sz.Segments = *segments

	var mb *manifest.Builder
	if *manifestTo != "" {
		mb = manifest.NewBuilder("bcetables", os.Args[1:])
		mb.SetSizes(manifest.Sizes{
			Warmup: sz.Warmup, Measure: sz.Measure,
			FuncWarmup: sz.FuncWarmup, FuncMeasure: sz.FuncMeasure,
			Segments: *segments,
		})
		mb.SetSeeds(workloadSeeds())
		mb.SetConfig("exp", *exp)
		mb.SetConfig("bench", *bench)
		core.SetJobObserver(func(rec core.JobRecord) {
			mb.AddJob(manifest.Job{
				Key: rec.Key, Kind: rec.Kind, Bench: rec.Bench, Cached: rec.Cached,
				Run: rec.Run, Confusion: rec.Confusion,
			})
		})
	}

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			interrupted()
		}
		core.CloseCheckpoint(false)
		fmt.Fprintln(os.Stderr, "bcetables:", err)
		os.Exit(1)
	}

	// Distributed execution: enumerate the sweep's job space, shard it
	// across the remote workers, and merge every result into the local
	// cache/store. The aggregation pass below then runs fully
	// cache-hit, so its stdout is byte-identical to a single-process
	// sweep by construction.
	if *remote != "" {
		urls := splitList(*remote)
		if len(urls) == 0 {
			fmt.Fprintln(os.Stderr, "bcetables: -workers-remote lists no worker URLs")
			os.Exit(2)
		}
		tuning := distTuning{
			hedge:            *hedge,
			adaptiveDeadline: *adaptDL,
			breakerFailures:  *brkFails,
			breakerCooldown:  *brkCool,
			breakerProbes:    *brkProbes,
		}
		if err := distribute(ctx, urls, *exp, *bench, *csv, sz, mb, *distBatch, *jobTimeout, *retries, *traceSpans, tuning, capturer); err != nil {
			fail(err)
		}
	}

	if err := run(*exp, *bench, *csv, sz, mb, os.Stdout); err != nil {
		fail(err)
	}
	if err := core.CloseCheckpoint(true); err != nil {
		fmt.Fprintln(os.Stderr, "bcetables: checkpoint:", err)
	}
	if mb != nil {
		mb.AddProfiles(capturer.Records()...)
		hits, misses := core.ResultCacheStats()
		if err := mb.WriteFile(*manifestTo, hits, misses); err != nil {
			fmt.Fprintln(os.Stderr, "bcetables:", err)
			os.Exit(1)
		}
		logger.Info("run manifest written", "path", *manifestTo)
	}
	if *progress {
		hits, misses := core.ResultCacheStats()
		logger.Info("result cache summary", "hits", hits, "misses", misses, "avoided", hits)
	}
}

// interrupted prints the partial-results summary after a graceful
// shutdown: what completed, and how to pick the sweep back up.
func interrupted() {
	ls := runner.LiveSnapshot()
	slog.Warn("interrupted before completion",
		"finished", ls.JobsDone, "cached", ls.JobsCached, "retried", ls.JobsRetried)
	if path := core.CheckpointPath(); path != "" {
		slog.Info("completed work is checkpointed; rerun with -resume to continue", "path", path)
	}
}

// splitList parses a comma-separated flag value, trimming whitespace
// and dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// distribute runs the remote leg of a distributed sweep: plan the job
// space with a silent recording pass, ping the workers, shard and
// dispatch, and inject every remote result into the local cache (and
// any attached store/journal) under its cache key. Jobs whose results
// are already stored — a resumed coordinator — are excluded from the
// plan, so only missing work is dispatched.
// distTuning carries the self-healing knobs (-hedge,
// -adaptive-deadline, -breaker-*) from flags into dist.Options.
type distTuning struct {
	hedge            bool
	adaptiveDeadline bool
	breakerFailures  int
	breakerCooldown  time.Duration
	breakerProbes    int
}

func distribute(ctx context.Context, urls []string, exp, bench string, csv bool,
	sz core.Sizes, mb *manifest.Builder, batch int, jobTimeout time.Duration, retries int,
	traceSpans string, tuning distTuning, capturer *prof.Capturer) error {
	log := slog.Default().With("component", "coordinator")
	var tracer *telemetry.Tracer
	if traceSpans != "" {
		tracer = telemetry.NewTracer("coordinator")
	}
	coord, err := dist.NewCoordinator(dist.Options{
		Workers:          urls,
		BatchSize:        batch,
		JobTimeout:       jobTimeout,
		Retries:          retries,
		DisableHedging:   !tuning.hedge,
		AdaptiveDeadline: tuning.adaptiveDeadline,
		Breaker: dist.BreakerOptions{
			ConsecutiveFailures: tuning.breakerFailures,
			Cooldown:            tuning.breakerCooldown,
			MaxProbeFailures:    tuning.breakerProbes,
		},
		Logger: log,
		Tracer: tracer,
		OnResult: func(worker string, job dist.Job, run metrics.Run) {
			core.InjectResult(job.Key, run)
			if mb != nil {
				r := run
				mb.AddJob(manifest.Job{
					Key: job.Key, Kind: "timing", Bench: job.Spec.Bench,
					Worker: worker, Run: &r,
				})
			}
		},
	})
	if err != nil {
		return err
	}
	coordMon.Store(coord)
	defer coordMon.Store(nil)
	if err := coord.Ping(ctx); err != nil {
		return err
	}

	// The fleet monitor is observational: it polls worker /metrics and
	// /readyz for the debug endpoint's bce_fleet var and stops when the
	// sweep ends. Its failures never affect job routing.
	fleetCtx, stopFleet := context.WithCancel(ctx)
	fleet := dist.NewFleet(dist.FleetOptions{Workers: urls, Logger: log})
	fleet.SetBreakerSource(coord.Breakers)
	fleet.Start(fleetCtx)
	fleetMon.Store(fleet)
	defer func() {
		fleetMon.Store(nil)
		stopFleet()
		fleet.Wait()
	}()

	plan, err := core.CollectJobs(func() error {
		return run(exp, bench, csv, sz, nil, io.Discard)
	})
	if err != nil {
		return err
	}
	log.Info("plan ready",
		"jobs", len(plan.Jobs), "workers", len(urls), "stored", plan.Stored, "local_only", plan.Local)
	if len(plan.Jobs) == 0 {
		return nil
	}
	// Mid-sweep fleet profiling: while batches are in flight, scrape
	// every worker's /debug/pprof/profile and merge the results into
	// one per-worker-labeled bundle in the profile ring. Best-effort
	// by design — a sweep shorter than the scrape window, or a worker
	// that refuses, degrades observability, never the sweep.
	const fleetProfileSeconds = 1
	scrapeDone := make(chan struct{})
	if capturer != nil {
		scrapeCtx, cancelScrape := context.WithTimeout(ctx, 15*time.Second)
		go func() {
			defer close(scrapeDone)
			defer cancelScrape()
			merged, notes, err := dist.FleetProfile(scrapeCtx, nil, urls, fleetProfileSeconds)
			for _, n := range notes {
				log.Warn("fleet profile scrape", "note", n)
			}
			if err != nil {
				log.Warn("fleet profile unavailable", "err", err)
				return
			}
			data, err := merged.Encode()
			if err != nil {
				log.Warn("fleet profile encode failed", "err", err)
				return
			}
			rec, err := capturer.Store("fleet", "cpu", "", fleetProfileSeconds, data)
			if err != nil {
				log.Warn("fleet profile store failed", "err", err)
				return
			}
			log.Info("fleet profile captured",
				"workers", len(urls), "digest", rec.Digest, "bytes", rec.Bytes)
		}()
	} else {
		close(scrapeDone)
	}
	start := time.Now()
	runErr := coord.Run(ctx, plan.Jobs, plan.Keys)
	<-scrapeDone
	if tracer != nil {
		// Write whatever spans were collected even on failure — a partial
		// timeline is exactly what debugs a failed sweep.
		if werr := writeSpanFile(traceSpans, tracer); werr != nil {
			log.Warn("span trace not written", "path", traceSpans, "err", werr)
		} else {
			started, ended := tracer.Counts()
			log.Info("span trace written", "path", traceSpans, "spans", ended, "started", started)
		}
	}
	if runErr != nil {
		return runErr
	}
	log.Info("remote simulations merged",
		"jobs", len(plan.Jobs), "elapsed", time.Since(start).Round(100*time.Millisecond).String())
	return nil
}

// writeSpanFile drains the tracer and writes the merged cross-process
// Chrome trace (coordinator + worker spans in one timeline).
func writeSpanFile(path string, tracer *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteSpanTrace(f, tracer.Drain()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp, bench string, csv bool, sz core.Sizes, mb *manifest.Builder, out io.Writer) error {
	// A planning pass (distribute) runs this function against
	// io.Discard purely to enumerate jobs; keep its stderr decoration
	// quiet too.
	errOut := io.Writer(os.Stderr)
	if out == io.Discard {
		errOut = io.Discard
	}
	// record stores an experiment's structured result in the manifest;
	// a nil builder (no -manifest, or the planning pass) makes it a
	// no-op.
	record := func(name string, v any) error {
		if mb == nil {
			return nil
		}
		return mb.AddResult(name, v)
	}
	density := func(scheme, figs string) error {
		d, err := core.Density(bench, scheme, sz)
		if err != nil {
			return err
		}
		if err := record("density-"+scheme, d); err != nil {
			return err
		}
		fmt.Fprintf(out, "== %s (%s estimator output density, benchmark %s)\n", figs, scheme, bench)
		if csv {
			fmt.Fprint(out, d.CSV())
		} else {
			fmt.Fprint(out, d.String())
		}
		return nil
	}
	all := exp == "all"
	// fidelity is the scorecard composite: the experiments the paper
	// fidelity gate scores, at one flag.
	fid := exp == "fidelity"
	ran := false
	timed := func(name string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		// Wall-clock decoration goes to stderr so stdout carries only
		// the deterministic results — a resumed run's stdout is
		// byte-identical to an uninterrupted one.
		fmt.Fprintf(errOut, "[%s regenerated in %.1fs]\n", name, time.Since(start).Seconds())
		fmt.Fprintln(out)
		ran = true
		return nil
	}

	if all || fid || exp == "table2" {
		if err := timed("table2", func() error {
			t, err := core.Table2(sz)
			if err != nil {
				return err
			}
			if err := record("table2", t); err != nil {
				return err
			}
			fmt.Fprint(out, t)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || fid || exp == "table3" {
		if err := timed("table3", func() error {
			t, err := core.Table3(sz)
			if err != nil {
				return err
			}
			if err := record("table3", t); err != nil {
				return err
			}
			fmt.Fprint(out, t)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || fid || exp == "table4" {
		if err := timed("table4", func() error {
			t, err := core.Table4(sz)
			if err != nil {
				return err
			}
			if err := record("table4", t); err != nil {
				return err
			}
			fmt.Fprint(out, t)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "table5" {
		if err := timed("table5", func() error {
			t, err := core.Table5(sz)
			if err != nil {
				return err
			}
			if err := record("table5", t); err != nil {
				return err
			}
			fmt.Fprint(out, t)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "table6" {
		if err := timed("table6", func() error {
			t, err := core.Table6(sz)
			if err != nil {
				return err
			}
			if err := record("table6", t); err != nil {
				return err
			}
			fmt.Fprint(out, t)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig4" || exp == "fig5" {
		if err := timed("fig4/5", func() error { return density("cic", "Figures 4-5") }); err != nil {
			return err
		}
	}
	if all || exp == "fig6" || exp == "fig7" {
		if err := timed("fig6/7", func() error { return density("tnt", "Figures 6-7") }); err != nil {
			return err
		}
	}
	if all || fid || exp == "fig8" {
		if err := timed("fig8", func() error {
			c, err := core.Combined(config.Baseline40x4(), sz)
			if err != nil {
				return err
			}
			if err := record("fig8", c); err != nil {
				return err
			}
			fmt.Fprint(out, c)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "fig9" {
		if err := timed("fig9", func() error {
			c, err := core.Combined(config.Wide20x8(), sz)
			if err != nil {
				return err
			}
			if err := record("fig9", c); err != nil {
				return err
			}
			fmt.Fprint(out, c)
			return nil
		}); err != nil {
			return err
		}
	}
	if all || exp == "latency" {
		if err := timed("latency", func() error {
			l, err := core.Latency(sz)
			if err != nil {
				return err
			}
			if err := record("latency", l); err != nil {
				return err
			}
			fmt.Fprint(out, l)
			return nil
		}); err != nil {
			return err
		}
	}
	extras := exp == "extras"
	if extras || exp == "ablate-signal" {
		if err := timed("ablate-signal", func() error {
			a, err := core.AblateTrainingSignal(sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, a)
			return nil
		}); err != nil {
			return err
		}
	}
	if extras || exp == "ablate-reversal" {
		if err := timed("ablate-reversal", func() error {
			a, err := core.AblateReversalSource(sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, a)
			return nil
		}); err != nil {
			return err
		}
	}
	if extras || exp == "ablate-site" {
		if err := timed("ablate-site", func() error {
			a, err := core.AblateTrainingSite(sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, a)
			return nil
		}); err != nil {
			return err
		}
	}
	if extras || exp == "ablate-threshold" {
		if err := timed("ablate-threshold", func() error {
			a, err := core.AblateTrainThreshold(sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, a)
			return nil
		}); err != nil {
			return err
		}
	}
	if extras || exp == "ablate-history" {
		if err := timed("ablate-history", func() error {
			a, err := core.AblateHistoryLength(sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, a)
			return nil
		}); err != nil {
			return err
		}
	}
	if extras || exp == "ablate-jrs" {
		if err := timed("ablate-jrs", func() error {
			a, err := core.AblateJRSIndexing(sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, a)
			return nil
		}); err != nil {
			return err
		}
	}
	if extras || exp == "variability" {
		if err := timed("variability", func() error {
			v, err := core.Variability(0, 1, sz)
			if err != nil {
				return err
			}
			fmt.Fprint(out, v)
			return nil
		}); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want table2..table6, fig4..fig9, latency, all, fidelity, extras, ablate-*, variability)", exp)
	}
	return nil
}
