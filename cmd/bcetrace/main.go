// Command bcetrace generates, inspects and summarizes trace files in
// the BCET binary format.
//
// Examples:
//
//	bcetrace gen -bench gzip -n 1000000 -o gzip.bcet
//	bcetrace dump -i gzip.bcet -n 20
//	bcetrace stat -i gzip.bcet
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"bce/internal/manifest"
	"bce/internal/prof"
	"bce/internal/runner"
	"bce/internal/telemetry"
	"bce/internal/trace"
	"bce/internal/workload"
)

func main() {
	args := os.Args[1:]
	// Global options, before the subcommand: -debug-addr <addr>,
	// -log-level <level>, -log-format <format>, -profile-dir <dir>,
	// -profile-rate <hz>, and the zero-operand -version.
	debugAddr, logLevel, logFormat := "", "info", "text"
	profileDir, profileRate, version := "", 0, false
globals:
	for len(args) >= 1 {
		if args[0] == "-version" {
			version = true
			args = args[1:]
			continue
		}
		if len(args) < 2 {
			break
		}
		switch args[0] {
		case "-debug-addr":
			debugAddr = args[1]
		case "-log-level":
			logLevel = args[1]
		case "-log-format":
			logFormat = args[1]
		case "-profile-dir":
			profileDir = args[1]
		case "-profile-rate":
			if _, err := fmt.Sscanf(args[1], "%d", &profileRate); err != nil {
				fmt.Fprintf(os.Stderr, "bcetrace: bad -profile-rate %q\n", args[1])
				os.Exit(2)
			}
		default:
			break globals
		}
		args = args[2:]
	}
	logger, err := telemetry.InitLogging(logLevel, logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcetrace:", err)
		os.Exit(2)
	}
	logger = logger.With("bin", "bcetrace")
	slog.SetDefault(logger)
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("trace_format", fmt.Sprint(trace.FormatVersion))
	if version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}
	// Process-mode profiling: one window around whichever subcommand
	// runs.
	capturer, stopProf, err := prof.Enable(prof.EnableOptions{
		Dir: profileDir, RateHz: profileRate, Logger: logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcetrace:", err)
		os.Exit(2)
	}
	defer stopProf()
	if debugAddr != "" {
		srv, err := telemetry.StartDebug(debugAddr, map[string]func() any{
			"bce_prof": capturer.DebugVar(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcetrace:", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("debug endpoint up", "url", "http://"+srv.Addr()+"/debug/")
	}
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	// A SIGINT during gen stops generation at a record boundary and
	// removes the partial (footerless, hence unreadable) output file.
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	switch args[0] {
	case "gen":
		err = cmdGen(ctx, args[1:])
	case "dump":
		err = cmdDump(args[1:])
	case "stat":
		err = cmdStat(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcetrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bcetrace [-debug-addr <addr>] [-log-level <level>] [-log-format <fmt>]
           [-profile-dir <dir>] [-profile-rate <hz>] [-version] <command>
  bcetrace gen  -bench <name> -n <uops> -o <file>   generate a trace
  bcetrace dump -i <file> [-n <uops>] [-skip <uops>] print uops
  bcetrace stat -i <file>                            summarize a trace`)
}

func cmdGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "gzip", "benchmark name")
	n := fs.Uint64("n", 1_000_000, "uops to generate")
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	wl, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	gen := workload.New(wl)
	for i := uint64(0); i < *n; i++ {
		if i%65536 == 0 && ctx.Err() != nil {
			f.Close()
			os.Remove(*out)
			return fmt.Errorf("gen: interrupted after %d uops; removed partial %s", i, *out)
		}
		u, _ := gen.Next()
		if err := w.WriteUop(u); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d uops to %s (%d bytes, %.2f bytes/uop)\n",
		w.Count(), *out, info.Size(), float64(info.Size())/float64(w.Count()))
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "", "input file (required)")
	n := fs.Int("n", 32, "uops to print")
	skip := fs.Int("skip", 0, "uops to skip first")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("dump: -i is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	for i := 0; i < *skip; i++ {
		if _, err := r.ReadUop(); err != nil {
			return fmt.Errorf("skipping: %w", err)
		}
	}
	for i := 0; i < *n; i++ {
		u, err := r.ReadUop()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Println(u)
	}
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stat: -i is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var total, branches, taken, loads, stores, fp uint64
	pcs := map[uint64]struct{}{}
	for {
		u, err := r.ReadUop()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		switch {
		case u.Kind.IsConditional():
			branches++
			pcs[u.PC] = struct{}{}
			if u.Taken {
				taken++
			}
		case u.Kind == trace.Load:
			loads++
		case u.Kind == trace.Store:
			stores++
		case u.Kind.IsFP():
			fp++
		}
	}
	if total == 0 {
		return fmt.Errorf("empty trace")
	}
	fmt.Printf("uops                %12d\n", total)
	fmt.Printf("cond branches       %12d   (%.1f%% of uops, %.1f%% taken, %d static)\n",
		branches, 100*float64(branches)/float64(total), 100*float64(taken)/float64(branches), len(pcs))
	fmt.Printf("loads               %12d   (%.1f%%)\n", loads, 100*float64(loads)/float64(total))
	fmt.Printf("stores              %12d   (%.1f%%)\n", stores, 100*float64(stores)/float64(total))
	fmt.Printf("fp                  %12d   (%.1f%%)\n", fp, 100*float64(fp)/float64(total))
	return nil
}
