// Command bceworker is the worker half of a distributed sweep: it
// serves batches of timing simulations over HTTP for a coordinating
// bcetables -workers-remote invocation (see docs/distributed.md).
//
// Usage:
//
//	bceworker -addr 127.0.0.1:8371                  # serve
//	bceworker -addr 127.0.0.1:8371 -cache .cache/w1 # with a persistent result cache
//	bceworker -addr 127.0.0.1:8371 -debug-addr localhost:6061
//
// A worker is stateless between batches apart from its result cache:
// killing one mid-sweep loses only in-flight work, and the coordinator
// reassigns the unfinished batches to surviving workers. Re-delivered
// jobs whose results are already in the worker's cache are served, not
// re-simulated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"bce/internal/core"
	"bce/internal/dist"
	"bce/internal/runner"
	"bce/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8371", "address to serve the worker API on (host:port; port 0 picks a free one, printed on stderr)")
		name      = flag.String("name", "", "worker name stamped on replies and manifests (default: the listen address)")
		workers   = flag.Int("workers", 0, "parallel simulations per batch (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache", "", "directory for this worker's on-disk timing-result cache (empty = in-memory only)")
		debugAddr = flag.String("debug-addr", "", "serve pprof + expvar + live stats on this address; Prometheus text format on /metrics")
	)
	flag.Parse()

	if *cacheDir != "" {
		if err := core.SetResultCacheDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "bceworker:", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, map[string]func() any{
			"bce_runner": func() any { return runner.LiveSnapshot() },
			"bce_dist":   func() any { return dist.Snapshot() },
			"bce_result_cache": func() any {
				hits, misses := core.ResultCacheStats()
				return map[string]uint64{"hits": hits, "misses": misses}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bceworker:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bceworker: debug endpoint on http://%s/debug/\n", srv.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bceworker:", err)
		os.Exit(1)
	}
	if *name == "" {
		*name = ln.Addr().String()
	}
	w := dist.NewWorker(dist.WorkerOptions{
		Name: *name,
		Pool: runner.New(runner.Options{Workers: *workers}),
	})
	srv := &http.Server{Handler: w.Handler()}

	// First SIGINT/SIGTERM drains in-flight batches and exits; a second
	// kills the process (runner.ShutdownContext semantics).
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	go func() {
		<-ctx.Done()
		srv.Shutdown(context.Background()) //nolint:errcheck // exiting anyway
	}()

	fmt.Fprintf(os.Stderr, "bceworker: %q serving on http://%s (schema v%d)\n",
		*name, ln.Addr(), dist.SchemaVersion)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bceworker:", err)
		os.Exit(1)
	}
}
