// Command bceworker is the worker half of a distributed sweep: it
// serves batches of timing simulations over HTTP for a coordinating
// bcetables -workers-remote invocation (see docs/distributed.md).
//
// Usage:
//
//	bceworker -addr 127.0.0.1:8371                  # serve
//	bceworker -addr 127.0.0.1:8371 -cache .cache/w1 # with a persistent result cache
//	bceworker -addr 127.0.0.1:8371 -debug-addr localhost:6061
//
// A worker is stateless between batches apart from its result cache:
// killing one mid-sweep loses only in-flight work, and the coordinator
// reassigns the unfinished batches to surviving workers. Re-delivered
// jobs whose results are already in the worker's cache are served, not
// re-simulated.
//
// The API port also answers /healthz (liveness), /readyz (flips to 503
// once shutdown begins, so fleet monitors stop routing to a draining
// worker), and /metrics (Prometheus text format).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"bce/internal/core"
	"bce/internal/dist"
	"bce/internal/manifest"
	"bce/internal/prof"
	"bce/internal/runner"
	"bce/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8371", "address to serve the worker API on (host:port; port 0 picks a free one, printed on stderr)")
		name      = flag.String("name", "", "worker name stamped on replies and manifests (default: the listen address)")
		workers   = flag.Int("workers", 0, "parallel simulations per batch (0 = GOMAXPROCS)")
		cacheDir  = flag.String("cache", "", "directory for this worker's on-disk timing-result cache (empty = in-memory only)")
		debugAddr = flag.String("debug-addr", "", "serve pprof + expvar + live stats on this address; Prometheus text format on /metrics")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		profFlags = prof.RegisterFlags(nil)
		version   = flag.Bool("version", false, "print the bce_build_info identity line and exit")
	)
	flag.Parse()

	logger, err := telemetry.InitLogging(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bceworker:", err)
		os.Exit(2)
	}
	logger = logger.With("bin", "bceworker")
	slog.SetDefault(logger)
	telemetry.RegisterBuildLabel("revision", manifest.ShortRevision())
	telemetry.RegisterBuildLabel("dist_schema", fmt.Sprint(dist.SchemaVersion))
	if *version {
		fmt.Println(telemetry.BuildInfoLine())
		return
	}

	// Sweep-mode profiling: each batch's runner.Map becomes a capture
	// window. With an empty -profile-dir this still applies
	// -profile-mutex/-profile-block process-wide, which is what
	// populates /debug/pprof/mutex and /debug/pprof/block for remote
	// scrapers.
	profOpts := profFlags.Options()
	profOpts.Sweeps = true
	profOpts.Logger = logger
	capturer, stopProf, err := prof.Enable(profOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bceworker:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *cacheDir != "" {
		if err := core.SetResultCacheDir(*cacheDir); err != nil {
			logger.Error("result cache setup failed", "err", err)
			os.Exit(1)
		}
	}
	if *debugAddr != "" {
		srv, err := telemetry.StartDebug(*debugAddr, map[string]func() any{
			"bce_runner": func() any { return runner.LiveSnapshot() },
			"bce_dist":   func() any { return dist.Snapshot() },
			"bce_result_cache": func() any {
				hits, misses := core.ResultCacheStats()
				return map[string]uint64{"hits": hits, "misses": misses}
			},
			"bce_prof": capturer.DebugVar(),
		})
		if err != nil {
			logger.Error("debug endpoint failed", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("debug endpoint up", "url", "http://"+srv.Addr()+"/debug/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	if *name == "" {
		*name = ln.Addr().String()
	}
	logger = logger.With("worker", *name)
	w := dist.NewWorker(dist.WorkerOptions{
		Name:   *name,
		Pool:   runner.New(runner.Options{Workers: *workers}),
		Logger: logger,
	})
	srv := &http.Server{Handler: w.Handler()}
	start := time.Now()

	// First SIGINT/SIGTERM drains in-flight batches and exits; a second
	// kills the process (runner.ShutdownContext semantics).
	ctx, stop := runner.ShutdownContext(context.Background())
	defer stop()
	go func() {
		<-ctx.Done()
		// Fail /readyz first so fleet monitors and load balancers stop
		// routing here while in-flight batches drain.
		w.SetReady(false)
		logger.Info("shutdown requested; draining in-flight batches")
		srv.Shutdown(context.Background()) //nolint:errcheck // exiting anyway
	}()

	logger.Info("serving", "url", "http://"+ln.Addr().String(), "schema", dist.SchemaVersion)
	// The plain-print line below keeps the startup address greppable in
	// smoke scripts regardless of -log-format.
	fmt.Fprintf(os.Stderr, "bceworker: %q serving on http://%s (schema v%d)\n",
		*name, ln.Addr(), dist.SchemaVersion)
	err = srv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	// Final structured summary: what this worker did over its lifetime.
	snap := dist.Snapshot()
	hits, misses := core.ResultCacheStats()
	logger.Info("worker shutdown complete",
		"batches_served", snap.BatchesServed,
		"jobs_received", snap.JobsReceived,
		"jobs_ok", snap.JobsOK,
		"jobs_failed", snap.JobsFailed,
		"cache_hits", hits,
		"cache_misses", misses,
		"uptime", time.Since(start).Round(time.Second).String())
}
