package bce_test

import (
	"fmt"

	"bce"
)

// ExampleNewCIC shows the estimate/train protocol on a hand-driven
// branch: a branch that is always mispredicted drives the perceptron
// output positive, into the low-confidence bands.
func ExampleNewCIC() {
	est := bce.NewCIC(0)
	pc := uint64(0x4000)
	for i := 0; i < 40; i++ {
		tok := est.Estimate(pc, true)
		est.Train(pc, tok, true /* mispredicted */, true /* taken */)
	}
	tok := est.Estimate(pc, true)
	fmt.Println(tok.Class().Low())
	// Output: true
}

// ExampleNewEnhancedJRS shows the resetting-counter behavior: after
// enough correct predictions the branch becomes high confidence, and a
// single misprediction resets it.
func ExampleNewEnhancedJRS() {
	est := bce.NewEnhancedJRS(15)
	pc := uint64(0x4000)
	drive := func(mispredicted bool, n int) {
		for i := 0; i < n; i++ {
			tok := est.Estimate(pc, true)
			est.Train(pc, tok, mispredicted, true)
		}
	}
	drive(false, 40) // long correct streak
	fmt.Println("after streak:", est.Estimate(pc, true).Class())
	drive(true, 1) // one miss resets the counter
	drive(false, 1)
	fmt.Println("after miss:", est.Estimate(pc, true).Class())
	// Output:
	// after streak: high
	// after miss: weak-low
}

// ExampleNewSimulation runs pipeline gating on the baseline machine
// and reports the executed-uop saving.
func ExampleNewSimulation() {
	base := bce.NewSimulation(bce.SimConfig{Bench: "gzip"})
	base.Run(30_000)
	b := base.Run(100_000)

	gated := bce.NewSimulation(bce.SimConfig{
		Bench:     "gzip",
		Estimator: bce.NewCIC(0),
		Gating:    bce.PL(1),
	})
	gated.Run(30_000)
	g := gated.Run(100_000)

	fmt.Println("saved uops:", g.Executed < b.Executed)
	fmt.Println("work retired:", g.Retired >= 100_000 && b.Retired >= 100_000)
	// Output:
	// saved uops: true
	// work retired: true
}

// ExampleBenchmarks lists the synthetic SPECint 2000 workloads.
func ExampleBenchmarks() {
	names := bce.Benchmarks()
	fmt.Println(len(names), names[0], names[len(names)-1])
	// Output: 12 gzip twolf
}

// ExampleConfusion derives the paper's two metrics from raw counts.
func ExampleConfusion() {
	var c bce.Confusion
	c.Add(true, true)   // mispredicted, flagged     (covered)
	c.Add(true, false)  // mispredicted, not flagged (missed)
	c.Add(false, true)  // correct, flagged          (false alarm)
	c.Add(false, false) // correct, not flagged
	fmt.Printf("PVN %.0f%% Spec %.0f%%\n", 100*c.PVN(), 100*c.Spec())
	// Output: PVN 50% Spec 50%
}
