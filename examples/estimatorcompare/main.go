// Estimatorcompare runs every confidence estimator in the repository —
// the paper's perceptron (CIC), the perceptron_tnt alternative, the
// enhanced JRS baseline, Tyson's pattern estimator and the perfect
// oracle — over all benchmarks and prints the accuracy/coverage
// landscape (§2.3 and §5.3 in one view).
package main

import (
	"fmt"

	"bce"
	"bce/internal/confidence"
	"bce/internal/core"
	"bce/internal/predictor"
)

func main() {
	estimators := []struct {
		name string
		mk   func() bce.Estimator
	}{
		{"perceptron_cic λ=0", func() bce.Estimator { return bce.NewCIC(0) }},
		{"perceptron_cic λ=-50", func() bce.Estimator { return bce.NewCIC(-50) }},
		{"perceptron_tnt λ=75", func() bce.Estimator { return bce.NewTNT(75) }},
		{"enhanced_jrs λ=15", func() bce.Estimator { return bce.NewEnhancedJRS(15) }},
		{"enhanced_jrs λ=7", func() bce.Estimator { return bce.NewEnhancedJRS(7) }},
		{"pattern (Tyson)", func() bce.Estimator { return bce.NewPattern(0, 0) }},
		{"oracle", func() bce.Estimator { return bce.NewConfidenceOracle() }},
	}

	fmt.Printf("%-22s %10s %10s %10s %10s\n", "estimator", "PVN%", "Spec%", "Sens%", "PVP%")
	for _, e := range estimators {
		c, err := bce.AverageConfusion(e.mk, 50_000, 150_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %10.1f %10.1f %10.1f %10.1f\n",
			e.name, 100*c.PVN(), 100*c.Spec(), 100*c.Sens(), 100*c.PVP())
	}
	// Smith's estimator reads the predictor's own counters, so it is
	// built linked to its predictor.
	smith, err := core.AverageConfusionLinked(func() (predictor.Predictor, confidence.Estimator) {
		h := predictor.NewBaselineHybrid()
		return h, confidence.NewSmith(h)
	}, 50_000, 150_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-22s %10.1f %10.1f %10.1f %10.1f\n",
		"smith (self-conf)", 100*smith.PVN(), 100*smith.Spec(), 100*smith.Sens(), 100*smith.PVP())

	fmt.Println("\nPVN = P(mispredicted | flagged low confidence)   — accuracy")
	fmt.Println("Spec = fraction of mispredictions flagged          — coverage")
	fmt.Println("The perceptron trades coverage for much higher accuracy than JRS,")
	fmt.Println("which is what makes it usable for gating on deep pipelines (§5.1).")
}
