// Gatingsweep explores the pipeline-gating design space the paper's
// Table 4 spans: it sweeps the CIC estimator threshold λ and the
// low-confidence branch counter threshold (PL) on one benchmark and
// prints the (uop reduction, performance loss) frontier, so you can
// see the paper's "spectrum of design options" directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"bce"
)

func main() {
	bench := flag.String("bench", "twolf", "benchmark to sweep")
	flag.Parse()

	if _, err := bce.BenchmarkProfile(*bench); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	const warm, meas = 50_000, 150_000
	base := bce.NewSimulation(bce.SimConfig{Bench: *bench})
	base.Run(warm)
	baseRun := base.Run(meas)
	fmt.Printf("benchmark %s, ungated baseline: IPC %.3f, %.1f mispredicts/Kuop\n\n",
		*bench, baseRun.IPC(), baseRun.MispredictsPer1KUops())

	fmt.Printf("%-14s %6s %14s %10s %12s\n", "config", "λ", "PL", "uop red.", "perf loss")
	for _, lam := range []int{25, 0, -25, -50} {
		for _, pl := range []int{1, 2} {
			sim := bce.NewSimulation(bce.SimConfig{
				Bench:     *bench,
				Estimator: bce.NewCIC(lam),
				Gating:    bce.PL(pl),
			})
			sim.Run(warm)
			r := sim.Run(meas)
			fmt.Printf("%-14s %6d %14d %9.1f%% %11.1f%%\n",
				"perceptron", lam, pl,
				r.UopReductionPercent(baseRun), r.PerfLossPercent(baseRun))
		}
	}
	for _, lam := range []int{7, 15} {
		for _, pl := range []int{1, 2, 3} {
			sim := bce.NewSimulation(bce.SimConfig{
				Bench:     *bench,
				Estimator: bce.NewEnhancedJRS(lam),
				Gating:    bce.PL(pl),
			})
			sim.Run(warm)
			r := sim.Run(meas)
			fmt.Printf("%-14s %6d %14d %9.1f%% %11.1f%%\n",
				"enhanced-jrs", lam, pl,
				r.UopReductionPercent(baseRun), r.PerfLossPercent(baseRun))
		}
	}
	fmt.Println("\nHigher λ (perceptron) = more selective gating: less reduction, less loss.")
	fmt.Println("JRS needs PL2-PL3 to keep its false low-confidence flags from stalling fetch.")
}
