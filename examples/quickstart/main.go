// Quickstart: predict branches on one synthetic benchmark, estimate
// confidence with the paper's perceptron estimator, and print the
// accuracy/coverage metrics plus a gated timing run.
package main

import (
	"fmt"

	"bce"
)

func main() {
	// 1. Functional view: walk gzip's branch stream with the baseline
	//    predictor and the CIC confidence estimator, exactly like the
	//    front end of a processor would.
	gen := bce.NewGenerator("gzip")
	pred := bce.NewBaselinePredictor()
	est := bce.NewCIC(0) // λ=0: output >= 0 means "likely mispredicted"

	var conf bce.Confusion
	for i := 0; i < 400_000; i++ {
		u, _ := gen.Next()
		if !u.Kind.IsConditional() {
			continue
		}
		predTaken := pred.Predict(u.PC)
		tok := est.Estimate(u.PC, predTaken)
		mispredicted := predTaken != u.Taken

		pred.Update(u.PC, u.Taken)
		est.Train(u.PC, tok, mispredicted, u.Taken)
		if i > 100_000 { // past warmup
			conf.Add(mispredicted, tok.Class().Low())
		}
	}
	fmt.Println("confidence estimation on gzip:")
	fmt.Printf("  accuracy (PVN) %.1f%%   coverage (Spec) %.1f%%\n",
		100*conf.PVN(), 100*conf.Spec())
	fmt.Printf("  mispredict rate %.2f%%\n\n", 100*conf.MispredictRate())

	// 2. Timing view: the same estimator gating the fetch stage of the
	//    paper's 40-cycle 4-wide baseline machine.
	base := bce.NewSimulation(bce.SimConfig{Bench: "gzip"})
	base.Run(50_000)
	baseRun := base.Run(150_000)

	gated := bce.NewSimulation(bce.SimConfig{
		Bench:     "gzip",
		Estimator: bce.NewCIC(0),
		Gating:    bce.PL(1), // stall fetch behind 1 low-confidence branch
	})
	gated.Run(50_000)
	gatedRun := gated.Run(150_000)

	fmt.Println("pipeline gating on the 40c4w baseline:")
	fmt.Printf("  ungated: IPC %.3f, %d uops executed (%d wrong-path)\n",
		baseRun.IPC(), baseRun.Executed, baseRun.WrongPathExecuted)
	fmt.Printf("  gated:   IPC %.3f, %d uops executed (%d wrong-path)\n",
		gatedRun.IPC(), gatedRun.Executed, gatedRun.WrongPathExecuted)
	fmt.Printf("  => %.1f%% fewer uops executed for %.1f%% performance loss\n",
		gatedRun.UopReductionPercent(baseRun), gatedRun.PerfLossPercent(baseRun))
}
