// Reversal demonstrates §5.5: the multi-valued perceptron output
// splits low-confidence branches into "strongly low confident" (whose
// predictions are reversed) and "weakly low confident" (which gate the
// pipeline), combining a prediction-accuracy gain with speculation
// control — using one hardware structure.
package main

import (
	"fmt"

	"bce"
)

func main() {
	const warm, meas = 50_000, 150_000
	fmt.Printf("%-9s %18s %22s %12s\n", "bench", "speedup vs base", "uop reduction", "reversals")
	var avgSpeed, avgRed float64
	benches := bce.Benchmarks()
	for _, bench := range benches {
		base := bce.NewSimulation(bce.SimConfig{Bench: bench})
		base.Run(warm)
		baseRun := base.Run(meas)

		// Reversal above the MB/CB density crossover (+50 on these
		// workloads), gating in the weakly-low band [-75, 50).
		sim := bce.NewSimulation(bce.SimConfig{
			Bench: bench,
			Estimator: bce.NewCICWith(bce.CICConfig{
				Lambda:   -75,
				Reversal: 50,
			}),
			Gating:   bce.PL(2),
			Reversal: true,
		})
		sim.Run(warm)
		r := sim.Run(meas)

		speed := r.SpeedupPercent(baseRun)
		red := r.UopReductionPercent(baseRun)
		avgSpeed += speed
		avgRed += red
		fmt.Printf("%-9s %16.1f%% %20.1f%% %6d (%d good)\n",
			bench, speed, red, r.Reversals, r.ReversalsGood)
	}
	n := float64(len(benches))
	fmt.Printf("%-9s %16.1f%% %20.1f%%\n", "average", avgSpeed/n, avgRed/n)
	fmt.Println("\nPositive speedups come from reversals that corrected mispredictions;")
	fmt.Println("the uop reduction comes from gating the weakly-low-confidence band.")
}
