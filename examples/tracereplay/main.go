// Tracereplay records a benchmark into the BCET binary trace format
// and replays it through the full timing model — the workflow for
// running your own workloads: capture (or convert) a trace once, then
// sweep estimator configurations over the identical instruction
// stream.
package main

import (
	"bytes"
	"fmt"

	"bce"
)

func main() {
	// 1. Record 300k uops of mcf into an in-memory trace (bcetrace gen
	//    writes the same format to disk).
	var buf bytes.Buffer
	w := bce.NewTraceWriter(&buf)
	gen := bce.NewGenerator("mcf")
	for i := 0; i < 300_000; i++ {
		u, _ := gen.Next()
		if err := w.WriteUop(u); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("recorded %d uops (%d bytes, %.2f bytes/uop)\n\n",
		w.Count(), buf.Len(), float64(buf.Len())/float64(w.Count()))

	// 2. Replay the identical stream under three configurations.
	configs := []struct {
		name string
		cfg  bce.SimConfig
	}{
		{"ungated", bce.SimConfig{}},
		{"cic λ=0 PL1", bce.SimConfig{Estimator: bce.NewCIC(0), Gating: bce.PL(1)}},
		{"jrs λ=15 PL2", bce.SimConfig{Estimator: bce.NewEnhancedJRS(15), Gating: bce.PL(2)}},
	}
	var base bce.Run
	for i, c := range configs {
		sim := bce.NewReplaySimulation(c.cfg, bce.NewTraceReader(bytes.NewReader(buf.Bytes())))
		sim.Run(50_000)
		r := sim.Run(150_000)
		if i == 0 {
			base = r
			fmt.Printf("%-14s IPC %.3f, %d uops executed (%d wrong-path)\n",
				c.name, r.IPC(), r.Executed, r.WrongPathExecuted)
			continue
		}
		fmt.Printf("%-14s IPC %.3f, uop reduction %.1f%%, perf loss %.1f%%\n",
			c.name, r.IPC(), r.UopReductionPercent(base), r.PerfLossPercent(base))
	}
	fmt.Println("\nEvery run consumed the same recorded instruction stream;")
	fmt.Println("only the confidence estimator and gating policy differed.")
}
