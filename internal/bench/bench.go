// Package bench is the repo's benchmark harness: it runs the Go
// benchmark suites (kernel microbenchmarks, pipeline throughput, and
// the paper-table regeneration benchmarks in bench_test.go) as `go
// test -bench` subprocesses, parses the standard benchmark output into
// structured results, and compares two result sets benchstat-style so
// CI can gate on regressions without external tooling.
//
// Driving `go test` as a subprocess — rather than linking testing.B
// into production code — keeps the benchmark bodies where they belong
// (in *_test.go files, next to the code they measure, runnable with
// plain `go test -bench`) while still giving cmd/bcebench a single
// machine-readable trajectory file (BENCH_*.json).
package bench

import (
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"runtime"
	"time"
)

// Suite names one `go test -bench` invocation: a package and a
// benchmark pattern, with a suite-appropriate default benchtime.
type Suite struct {
	// Name tags the suite's results in reports ("kernel", "table", ...).
	Name string `json:"name"`
	// Pkg is the package path passed to go test.
	Pkg string `json:"pkg"`
	// Pattern is the -bench regexp.
	Pattern string `json:"pattern"`
	// Benchtime is the -benchtime value; empty means the go test
	// default (1s).
	Benchtime string `json:"benchtime,omitempty"`
}

// Suites resolves a suite selector to its invocations. Selectors:
//
//   - "kernel": perceptron Output/Train/Table microbenchmarks,
//     including the retained branchy reference kernels, so each run
//     carries its own speedup evidence.
//   - "pipeline": whole-simulator throughput (nil-sink vs counting
//     sink, plus the per-cycle pipeline benchmark).
//   - "table": representative paper-table regenerations from
//     bench_test.go at Quick sizes. One iteration each — these run
//     full simulations and take tens of seconds apiece.
//   - "all": all of the above.
func Suites(sel string) ([]Suite, error) {
	kernel := Suite{
		Name:    "kernel",
		Pkg:     "./internal/perceptron",
		Pattern: "^Benchmark(Output32|OutputReference32|Train32|TrainReference32|TableLookup|TableReset|TableOutputSingle8|TableOutputBatch8|TableTrainSingle8|TableTrainBatch8)$",
	}
	pipeline := Suite{
		Name:    "pipeline",
		Pkg:     "./internal/pipeline",
		Pattern: "^Benchmark(RunNilSink|RunCountingSink|Pipeline40c4w)$",
	}
	table := Suite{
		Name:      "table",
		Pkg:       ".",
		Pattern:   "^Benchmark(Table2|Table4|Fig4|SimulatorThroughput)$",
		Benchtime: "1x",
	}
	switch sel {
	case "kernel":
		return []Suite{kernel}, nil
	case "pipeline":
		return []Suite{pipeline}, nil
	case "table":
		return []Suite{table}, nil
	case "all":
		return []Suite{kernel, pipeline, table}, nil
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (kernel, pipeline, table, all)", sel)
	}
}

// Result is one benchmark's aggregated measurement. With -count > 1
// the per-run values are averaged; Samples records how many runs went
// into the mean.
type Result struct {
	Suite   string `json:"suite"`
	Name    string `json:"name"`
	Samples int    `json:"samples"`
	// Iters is the total benchmark iterations across samples.
	Iters int64 `json:"iters"`
	// NsPerOp is the mean ns/op across samples.
	NsPerOp float64 `json:"ns_per_op"`
	// MinNsPerOp is the fastest sample — the low-noise floor.
	MinNsPerOp  float64 `json:"min_ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values by unit
	// (e.g. "sim-cycles/sec", "uop_red_%"), averaged across samples.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ReportSchema is the current trajectory-file schema version. Files
// written before versioning carry no "schema" field and load as
// version 0; loaders accept anything up to the current version.
// Version 2 added the optional per-suite profile references.
const ReportSchema = 2

// ProfileRef points at one captured profile in a content-addressed
// profile ring (internal/prof): which suite it covers, the profile
// kind, and the ring digest of the bytes. With both sides' refs and
// the ring, `bcebench -compare` turns a regression into a
// per-function attribution table.
type ProfileRef struct {
	Suite  string `json:"suite"`
	Kind   string `json:"kind"`
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// Report is the trajectory file written to BENCH_*.json: one harness
// run's environment plus every suite result.
type Report struct {
	Schema  int      `json:"schema,omitempty"`
	Go      string   `json:"go"`
	OS      string   `json:"os"`
	Arch    string   `json:"arch"`
	Date    string   `json:"date"`
	Results []Result `json:"results"`
	// Profiles lists the profiles captured while the suites ran, when
	// the harness was invoked with -profile-dir.
	Profiles []ProfileRef `json:"profiles,omitempty"`
}

// FindProfile returns the profile ref for (suite, kind), or nil.
func (r *Report) FindProfile(suite, kind string) *ProfileRef {
	for i := range r.Profiles {
		if r.Profiles[i].Suite == suite && r.Profiles[i].Kind == kind {
			return &r.Profiles[i]
		}
	}
	return nil
}

// NewReport stamps an empty report with the current environment.
func NewReport() *Report {
	return &Report{
		Schema: ReportSchema,
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
		Date:   time.Now().UTC().Format(time.RFC3339),
	}
}

// Validate checks a loaded trajectory file is usable as a comparison
// baseline: a known schema version (missing = legacy version 0 is
// fine), at least one result, and every result carrying a suite, a
// name, and a positive ns/op. Catches truncated files and JSON that
// merely shares field names before a comparison silently matches
// nothing.
func (r *Report) Validate() error {
	if r.Schema < 0 || r.Schema > ReportSchema {
		return fmt.Errorf("bench: unsupported report schema %d (this build reads <= %d)", r.Schema, ReportSchema)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("bench: report has no results")
	}
	for i, res := range r.Results {
		if res.Suite == "" || res.Name == "" {
			return fmt.Errorf("bench: result %d has empty suite/name (%q/%q)", i, res.Suite, res.Name)
		}
		if !(res.NsPerOp > 0) {
			return fmt.Errorf("bench: result %s/%s has non-positive ns/op %v", res.Suite, res.Name, res.NsPerOp)
		}
	}
	return nil
}

// Find returns the result with the given suite and name, or nil.
func (r *Report) Find(suite, name string) *Result {
	for i := range r.Results {
		if r.Results[i].Suite == suite && r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Run executes one suite with `go test -bench` in dir and returns its
// parsed results. count is the -count value (min 1); benchtime, when
// non-empty, overrides the suite default. cpuProfile, when non-empty,
// is an absolute path the suite's CPU profile is written to via go
// test's -cpuprofile (the test binary goes next to it, keeping the
// repo root clean). The raw go test output is returned alongside the
// results so callers can stream or log it.
func Run(ctx context.Context, dir string, s Suite, count int, benchtime, cpuProfile string) ([]Result, []byte, error) {
	if count < 1 {
		count = 1
	}
	if benchtime == "" {
		benchtime = s.Benchtime
	}
	args := []string{"test", "-run", "^$", "-bench", s.Pattern, "-benchmem",
		"-count", fmt.Sprint(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	if cpuProfile != "" {
		args = append(args, "-cpuprofile", cpuProfile, "-o", cpuProfile+".test")
	}
	args = append(args, s.Pkg)
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, out, fmt.Errorf("bench: go %v: %w\n%s", args, err, bytes.TrimSpace(out))
	}
	results, err := Parse(s.Name, out)
	return results, out, err
}
