package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: bce/internal/perceptron
cpu: some cpu
BenchmarkOutput32-8             	181651112	         6.400 ns/op	       0 B/op	       0 allocs/op
BenchmarkOutput32-8             	180000000	         6.600 ns/op	       0 B/op	       0 allocs/op
BenchmarkOutputReference32-8    	 88234567	        13.50 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunNilSink-8           	     285	   4190000 ns/op	   7500000 sim-cycles/sec	      12 B/op	       0 allocs/op
PASS
ok  	bce/internal/perceptron	5.123s
`

func TestParse(t *testing.T) {
	rs, err := Parse("kernel", []byte(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rs), rs)
	}
	out := rs[0]
	if out.Name != "Output32" || out.Samples != 2 {
		t.Errorf("first result = %+v, want Output32 with 2 samples", out)
	}
	if out.NsPerOp != 6.5 {
		t.Errorf("Output32 mean ns/op = %v, want 6.5", out.NsPerOp)
	}
	if out.MinNsPerOp != 6.4 {
		t.Errorf("Output32 min ns/op = %v, want 6.4", out.MinNsPerOp)
	}
	if out.Iters != 181651112+180000000 {
		t.Errorf("Output32 iters = %d", out.Iters)
	}
	sink := rs[2]
	if sink.Name != "RunNilSink" {
		t.Fatalf("third result = %+v", sink)
	}
	if got := sink.Metrics["sim-cycles/sec"]; got != 7500000 {
		t.Errorf("custom metric = %v, want 7500000", got)
	}
	if sink.BytesPerOp != 12 {
		t.Errorf("B/op = %v, want 12", sink.BytesPerOp)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse("kernel", []byte("PASS\nok x 1s\n")); err == nil {
		t.Fatal("want error for output with no benchmark lines")
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := Parse("kernel", []byte("BenchmarkX-8 notanumber 1 ns/op\n")); err == nil {
		t.Fatal("want error for bad iteration count")
	}
}

func report(results ...Result) *Report {
	r := NewReport()
	r.Results = results
	return r
}

func TestCompareAndRegressions(t *testing.T) {
	old := report(
		Result{Suite: "kernel", Name: "Output32", NsPerOp: 10},
		Result{Suite: "kernel", Name: "Train32", NsPerOp: 20},
		Result{Suite: "kernel", Name: "Removed", NsPerOp: 5},
	)
	new := report(
		Result{Suite: "kernel", Name: "Output32", NsPerOp: 12}, // +20%
		Result{Suite: "kernel", Name: "Train32", NsPerOp: 19},  // -5%
		Result{Suite: "kernel", Name: "Added", NsPerOp: 1},
	)
	cmps := Compare(old, new)
	if len(cmps) != 4 {
		t.Fatalf("got %d comparisons, want 4 (2 shared + new + removed): %+v", len(cmps), cmps)
	}
	if got := Shared(cmps); got != 2 {
		t.Errorf("Shared = %d, want 2", got)
	}
	status := map[string]string{}
	for _, c := range cmps {
		status[c.Name] = c.Status
	}
	if status["Added"] != StatusNew || status["Removed"] != StatusRemoved ||
		status["Output32"] != "" || status["Train32"] != "" {
		t.Errorf("statuses = %v, want Added=new Removed=removed others shared", status)
	}
	bad := Regressions(cmps, 10)
	if len(bad) != 1 || bad[0].Name != "Output32" {
		t.Fatalf("regressions = %+v, want just Output32 (one-sided entries never regress)", bad)
	}
	if got := bad[0].DeltaPct; got < 19.9 || got > 20.1 {
		t.Errorf("delta = %v, want ~20", got)
	}
	tbl := FormatComparisons(cmps, 10)
	if !strings.Contains(tbl, "REGRESSION") {
		t.Errorf("table missing regression flag:\n%s", tbl)
	}
	if !strings.Contains(tbl, "new") || !strings.Contains(tbl, "removed") {
		t.Errorf("table missing new/removed markers:\n%s", tbl)
	}
}

func TestKernelSpeedups(t *testing.T) {
	r := report(
		Result{Suite: "kernel", Name: "Output32", NsPerOp: 6.5},
		Result{Suite: "kernel", Name: "OutputReference32", NsPerOp: 13},
		Result{Suite: "kernel", Name: "Train32", NsPerOp: 10},
		// TrainReference32 missing: pair omitted, not zero.
	)
	sp := KernelSpeedups(r)
	if len(sp) != 1 {
		t.Fatalf("speedups = %+v, want 1", sp)
	}
	if sp[0].Ratio != 2 {
		t.Errorf("ratio = %v, want 2", sp[0].Ratio)
	}
}

func TestSuitesSelector(t *testing.T) {
	all, err := Suites("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("all = %+v", all)
	}
	if _, err := Suites("bogus"); err == nil {
		t.Fatal("want error for unknown selector")
	}
	for _, sel := range []string{"kernel", "pipeline", "table"} {
		ss, err := Suites(sel)
		if err != nil || len(ss) != 1 || ss[0].Name != sel {
			t.Fatalf("Suites(%q) = %+v, %v", sel, ss, err)
		}
	}
}

// TestReportRoundTrip writes a report through JSON and back — the
// path every BENCH_*.json takes — and checks the schema stamp and
// validation survive the trip.
func TestReportRoundTrip(t *testing.T) {
	r := NewReport()
	r.Results = append(r.Results, Result{
		Suite: "kernel", Name: "Output32", Samples: 2, Iters: 100,
		NsPerOp: 6.5, MinNsPerOp: 6.4,
		Metrics: map[string]float64{"sim-cycles/sec": 7.5e6},
	})
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema {
		t.Errorf("schema = %d, want %d", back.Schema, ReportSchema)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped report invalid: %v", err)
	}
	got := back.Find("kernel", "Output32")
	if got == nil || got.NsPerOp != 6.5 || got.Metrics["sim-cycles/sec"] != 7.5e6 {
		t.Errorf("result lost in round trip: %+v", got)
	}
}

func TestValidateReport(t *testing.T) {
	ok := Result{Suite: "kernel", Name: "Output32", NsPerOp: 1}
	cases := []struct {
		name string
		r    Report
		want string // substring of the error; empty = must pass
	}{
		// Pre-versioning trajectory files (e.g. the committed
		// BENCH_pr3.json) have no schema field: version 0 must load.
		{"legacy v0", Report{Results: []Result{ok}}, ""},
		{"current", Report{Schema: ReportSchema, Results: []Result{ok}}, ""},
		{"future schema", Report{Schema: ReportSchema + 1, Results: []Result{ok}}, "schema"},
		{"no results", Report{Schema: ReportSchema}, "no results"},
		{"empty name", Report{Results: []Result{{Suite: "kernel", NsPerOp: 1}}}, "empty suite/name"},
		{"zero ns/op", Report{Results: []Result{{Suite: "kernel", Name: "X"}}}, "non-positive"},
	}
	for _, tc := range cases {
		err := tc.r.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
