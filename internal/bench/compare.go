package bench

import (
	"fmt"
	"strings"
)

// Comparison is the benchstat-style delta between two reports for one
// benchmark present in both.
type Comparison struct {
	Suite, Name    string
	OldNs, NewNs   float64
	DeltaPct       float64 // (new-old)/old * 100; positive = slower
	OldAllocs      float64
	NewAllocs      float64
	AllocRegressed bool // allocs/op grew
}

// Compare matches results by suite+name and computes ns/op deltas.
// Results present in only one report are skipped (new benchmarks are
// not regressions; removed ones cannot be measured).
func Compare(old, new *Report) []Comparison {
	var out []Comparison
	for _, n := range new.Results {
		o := old.Find(n.Suite, n.Name)
		if o == nil || o.NsPerOp <= 0 {
			continue
		}
		out = append(out, Comparison{
			Suite:          n.Suite,
			Name:           n.Name,
			OldNs:          o.NsPerOp,
			NewNs:          n.NsPerOp,
			DeltaPct:       (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100,
			OldAllocs:      o.AllocsPerOp,
			NewAllocs:      n.AllocsPerOp,
			AllocRegressed: n.AllocsPerOp > o.AllocsPerOp,
		})
	}
	return out
}

// FormatComparisons renders a fixed-width delta table, flagging rows
// whose slowdown exceeds maxRegressPct.
func FormatComparisons(cmps []Comparison, maxRegressPct float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %14s %14s %9s\n", "suite", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, c := range cmps {
		flag := ""
		if c.DeltaPct > maxRegressPct {
			flag = "  << REGRESSION"
		}
		fmt.Fprintf(&b, "%-10s %-24s %14.2f %14.2f %+8.1f%%%s\n",
			c.Suite, c.Name, c.OldNs, c.NewNs, c.DeltaPct, flag)
	}
	return b.String()
}

// Regressions returns the comparisons whose slowdown exceeds
// maxRegressPct — the CI gate's failure list.
func Regressions(cmps []Comparison, maxRegressPct float64) []Comparison {
	var bad []Comparison
	for _, c := range cmps {
		if c.DeltaPct > maxRegressPct {
			bad = append(bad, c)
		}
	}
	return bad
}

// Speedup is a measured optimized-vs-reference kernel ratio.
type Speedup struct {
	Name, Against string
	Ratio         float64
}

// KernelSpeedups extracts the optimized-vs-reference ratios the
// kernel suite carries (branchless/SIMD Output and Train against the
// retained branchy reference kernels). A missing pair is simply
// omitted, so the caller can distinguish "not measured" from "slow".
func KernelSpeedups(r *Report) []Speedup {
	var out []Speedup
	for _, pair := range [][2]string{
		{"Output32", "OutputReference32"},
		{"Train32", "TrainReference32"},
	} {
		opt, ref := r.Find("kernel", pair[0]), r.Find("kernel", pair[1])
		if opt == nil || ref == nil || opt.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{Name: pair[0], Against: pair[1], Ratio: ref.NsPerOp / opt.NsPerOp})
	}
	return out
}
