package bench

import (
	"fmt"
	"strings"
)

// Comparison is the benchstat-style delta between two reports for one
// benchmark. Status distinguishes benchmarks shared by both reports
// (empty, a real delta) from ones present on only one side.
type Comparison struct {
	Suite, Name    string
	OldNs, NewNs   float64
	DeltaPct       float64 // (new-old)/old * 100; positive = slower
	OldAllocs      float64
	NewAllocs      float64
	AllocRegressed bool // allocs/op grew
	// Status is "" for a benchmark in both reports, StatusNew for one
	// only in the candidate, StatusRemoved for one only in the
	// baseline. One-sided entries carry only their side's numbers and
	// are never regressions — a new benchmark has no baseline to
	// regress from — but they are reported, not dropped, so a gate run
	// across a benchmark-set change stays informative.
	Status string
}

// Status values for benchmarks present in only one report.
const (
	StatusNew     = "new"
	StatusRemoved = "removed"
)

// Compare matches results by suite+name and computes ns/op deltas.
// Results present in only one report come back with Status set rather
// than being dropped.
func Compare(old, new *Report) []Comparison {
	var out []Comparison
	for _, n := range new.Results {
		o := old.Find(n.Suite, n.Name)
		if o == nil || o.NsPerOp <= 0 {
			out = append(out, Comparison{
				Suite:     n.Suite,
				Name:      n.Name,
				NewNs:     n.NsPerOp,
				NewAllocs: n.AllocsPerOp,
				Status:    StatusNew,
			})
			continue
		}
		out = append(out, Comparison{
			Suite:          n.Suite,
			Name:           n.Name,
			OldNs:          o.NsPerOp,
			NewNs:          n.NsPerOp,
			DeltaPct:       (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100,
			OldAllocs:      o.AllocsPerOp,
			NewAllocs:      n.AllocsPerOp,
			AllocRegressed: n.AllocsPerOp > o.AllocsPerOp,
		})
	}
	for _, o := range old.Results {
		if new.Find(o.Suite, o.Name) == nil {
			out = append(out, Comparison{
				Suite:     o.Suite,
				Name:      o.Name,
				OldNs:     o.NsPerOp,
				OldAllocs: o.AllocsPerOp,
				Status:    StatusRemoved,
			})
		}
	}
	return out
}

// FormatComparisons renders a fixed-width delta table, flagging rows
// whose slowdown exceeds maxRegressPct.
func FormatComparisons(cmps []Comparison, maxRegressPct float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %14s %14s %9s\n", "suite", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, c := range cmps {
		switch c.Status {
		case StatusNew:
			fmt.Fprintf(&b, "%-10s %-24s %14s %14.2f %9s\n",
				c.Suite, c.Name, "-", c.NewNs, StatusNew)
		case StatusRemoved:
			fmt.Fprintf(&b, "%-10s %-24s %14.2f %14s %9s\n",
				c.Suite, c.Name, c.OldNs, "-", StatusRemoved)
		default:
			flag := ""
			if c.DeltaPct > maxRegressPct {
				flag = "  << REGRESSION"
			}
			fmt.Fprintf(&b, "%-10s %-24s %14.2f %14.2f %+8.1f%%%s\n",
				c.Suite, c.Name, c.OldNs, c.NewNs, c.DeltaPct, flag)
		}
	}
	return b.String()
}

// Regressions returns the comparisons whose slowdown exceeds
// maxRegressPct — the CI gate's failure list. One-sided entries are
// never regressions.
func Regressions(cmps []Comparison, maxRegressPct float64) []Comparison {
	var bad []Comparison
	for _, c := range cmps {
		if c.Status == "" && c.DeltaPct > maxRegressPct {
			bad = append(bad, c)
		}
	}
	return bad
}

// Shared counts the comparisons measured on both sides.
func Shared(cmps []Comparison) int {
	n := 0
	for _, c := range cmps {
		if c.Status == "" {
			n++
		}
	}
	return n
}

// Speedup is a measured optimized-vs-reference kernel ratio.
type Speedup struct {
	Name, Against string
	Ratio         float64
}

// KernelSpeedups extracts the speedup ratios the kernel suite carries:
// the branchless/SIMD Output and Train kernels against the retained
// branchy reference kernels, and the batched table calls against the
// same requests issued one call at a time. A missing pair is simply
// omitted, so the caller can distinguish "not measured" from "slow".
func KernelSpeedups(r *Report) []Speedup {
	var out []Speedup
	for _, pair := range [][2]string{
		{"Output32", "OutputReference32"},
		{"Train32", "TrainReference32"},
		{"TableOutputBatch8", "TableOutputSingle8"},
		{"TableTrainBatch8", "TableTrainSingle8"},
	} {
		opt, ref := r.Find("kernel", pair[0]), r.Find("kernel", pair[1])
		if opt == nil || ref == nil || opt.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{Name: pair[0], Against: pair[1], Ratio: ref.NsPerOp / opt.NsPerOp})
	}
	return out
}
