package bench

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads standard `go test -bench` output and aggregates the
// benchmark lines into Results tagged with the given suite name.
// Repeated lines for the same benchmark (from -count) are averaged;
// MinNsPerOp keeps the fastest sample. Lines that are not benchmark
// results (ok/PASS/goos headers) are ignored.
func Parse(suite string, out []byte) ([]Result, error) {
	var order []string
	acc := map[string]*Result{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, iters, pairs, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		r := acc[name]
		if r == nil {
			r = &Result{Suite: suite, Name: name, Metrics: map[string]float64{}}
			acc[name] = r
			order = append(order, name)
		}
		r.Samples++
		r.Iters += iters
		for unit, v := range pairs {
			switch unit {
			case "ns/op":
				r.NsPerOp += v
				if r.MinNsPerOp == 0 || v < r.MinNsPerOp {
					r.MinNsPerOp = v
				}
			case "B/op":
				r.BytesPerOp += v
			case "allocs/op":
				r.AllocsPerOp += v
			default:
				r.Metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: scanning output: %w", err)
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		r := acc[name]
		n := float64(r.Samples)
		r.NsPerOp /= n
		r.BytesPerOp /= n
		r.AllocsPerOp /= n
		for unit := range r.Metrics {
			r.Metrics[unit] /= n
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		results = append(results, *r)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("bench: no benchmark lines in output")
	}
	return results, nil
}

// parseLine splits one benchmark result line:
//
//	BenchmarkOutput32-8  181651112  6.461 ns/op  0 B/op  0 allocs/op
//
// into the bare name (GOMAXPROCS suffix stripped), the iteration
// count, and value/unit pairs.
func parseLine(line string) (name string, iters int64, pairs map[string]float64, err error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", 0, nil, fmt.Errorf("bench: malformed benchmark line %q", line)
	}
	name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, perr := strconv.Atoi(name[i+1:]); perr == nil {
			name = name[:i]
		}
	}
	iters, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", 0, nil, fmt.Errorf("bench: bad iteration count in %q: %w", line, err)
	}
	pairs = make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, verr := strconv.ParseFloat(fields[i], 64)
		if verr != nil {
			return "", 0, nil, fmt.Errorf("bench: bad value %q in %q: %w", fields[i], line, verr)
		}
		pairs[fields[i+1]] = v
	}
	return name, iters, pairs, nil
}
