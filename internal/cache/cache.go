// Package cache implements the memory-side structures of the baseline
// machine (Table 1): set-associative LRU caches, a two-level data
// hierarchy with a stream-based hardware prefetcher, and the trace
// cache used on the fetch side.
package cache

import "fmt"

// Cache is a set-associative cache with true-LRU replacement. It
// tracks presence only (tags, no data), which is all a timing model
// needs.
type Cache struct {
	// tags is one flat backing array, assoc consecutive words per set,
	// each set's ways MRU first; 0 = invalid. A flat layout (rather
	// than a slice of per-set slices) keeps the whole structure in one
	// allocation and makes a lookup a single bounds-checked slice
	// expression off one pointer — the set walk in Access is on the
	// per-uop miss-handling path of the timing model.
	tags     []uint64
	sets     int
	assoc    int
	lineBits uint
	hits     uint64
	misses   uint64
}

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the associativity (ways).
	Assoc int
	// LineBytes is the line size; must be a power of two.
	LineBytes int
}

// New returns a cache. Size, associativity and line size must be
// positive, and SizeBytes must be divisible into at least one set.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("cache: non-positive geometry %+v", cfg))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", cfg.LineBytes))
	}
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	return &Cache{
		tags:     make([]uint64, sets*cfg.Assoc),
		sets:     sets,
		assoc:    cfg.Assoc,
		lineBits: lineBits,
	}
}

// Sets returns the set count.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the way count.
func (c *Cache) Assoc() int { return c.assoc }

// line converts an address to a line-granular tag (nonzero for any
// address: bit 63 is set as a validity marker).
func (c *Cache) line(addr uint64) uint64 {
	return (addr >> c.lineBits) | 1<<63
}

func (c *Cache) set(addr uint64) []uint64 {
	base := int((addr>>c.lineBits)&uint64(c.sets-1)) * c.assoc
	return c.tags[base : base+c.assoc : base+c.assoc]
}

// Access looks up addr, updating LRU state and hit/miss counters. On a
// miss the line is filled (allocate-on-miss), evicting the LRU way.
// It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	set := c.set(addr)
	tag := c.line(addr)
	for i, t := range set {
		if t == tag {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.hits++
			return true
		}
	}
	c.misses++
	copy(set[1:], set[:len(set)-1])
	set[0] = tag
	return false
}

// Probe reports whether addr is present without touching LRU state or
// counters.
func (c *Cache) Probe(addr uint64) bool {
	tag := c.line(addr)
	for _, t := range c.set(addr) {
		if t == tag {
			return true
		}
	}
	return false
}

// Fill inserts addr's line (prefetch path); it does not count as a hit
// or miss. A line already present is promoted to MRU.
func (c *Cache) Fill(addr uint64) {
	set := c.set(addr)
	tag := c.line(addr)
	for i, t := range set {
		if t == tag {
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return
		}
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = tag
}

// Stats returns cumulative demand hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), or 0 for an untouched cache.
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// Reset invalidates all lines and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.hits, c.misses = 0, 0
}
