package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasics(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	if c.Sets() != 8 || c.Assoc() != 2 {
		t.Fatalf("geometry: %d sets × %d ways", c.Sets(), c.Assoc())
	}
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Error("next-line access hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", c.HitRate())
	}
}

func TestCacheLRU(t *testing.T) {
	// 2-way set: A, B, C map to the same set; after A,B,C the LRU
	// victim is A.
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2, LineBytes: 64}) // 1 set
	a, b, x := uint64(0x0000), uint64(0x1000), uint64(0x2000)
	c.Access(a)
	c.Access(b)
	c.Access(x) // evicts a
	if c.Probe(a) {
		t.Error("LRU line not evicted")
	}
	if !c.Probe(b) || !c.Probe(x) {
		t.Error("MRU lines evicted")
	}
	// Touch b, insert a new line: x (now LRU) must go.
	c.Access(b)
	c.Access(a)
	if c.Probe(x) {
		t.Error("x survived; LRU promotion on hit broken")
	}
}

func TestCacheFillAndProbe(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Assoc: 4, LineBytes: 64})
	c.Fill(0x4000)
	if !c.Probe(0x4000) {
		t.Error("filled line not present")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Error("Fill/Probe touched demand counters")
	}
	if !c.Access(0x4000) {
		t.Error("prefetched line missed on demand access")
	}
	c.Fill(0x4000) // refill promotes, no duplicates
	if !c.Access(0x4000) {
		t.Error("refilled line missed")
	}
}

func TestCacheAddressZero(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	if c.Access(0) {
		t.Error("cold access to address 0 hit (invalid-tag collision)")
	}
	if !c.Access(0) {
		t.Error("address 0 not cached")
	}
}

func TestCacheReset(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64})
	c.Access(0x1000)
	c.Reset()
	if c.Probe(0x1000) {
		t.Error("line survived Reset")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("stats survived Reset")
	}
	if c.HitRate() != 0 {
		t.Error("HitRate of reset cache")
	}
}

func TestCachePanics(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 0, Assoc: 1, LineBytes: 64},
		{SizeBytes: 1024, Assoc: 0, LineBytes: 64},
		{SizeBytes: 1024, Assoc: 1, LineBytes: 63},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: a cache never reports more lines present than its
// capacity, and re-accessing the working set of size <= assoc in one
// set always hits after warmup.
func TestCacheWithinAssocAlwaysHits(t *testing.T) {
	f := func(seed int64) bool {
		c := New(Config{SizeBytes: 8 * 64, Assoc: 8, LineBytes: 64}) // 1 set
		r := rand.New(rand.NewSource(seed))
		ws := make([]uint64, 8)
		for i := range ws {
			ws[i] = uint64(i) << 6 << 3 // distinct lines, same set
		}
		for _, a := range ws {
			c.Access(a)
		}
		for i := 0; i < 100; i++ {
			if !c.Access(ws[r.Intn(len(ws))]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherStream(t *testing.T) {
	p := NewPrefetcher(4, 2)
	// First miss allocates a stream, no prefetch.
	if out := p.Miss(100); out != nil {
		t.Errorf("first miss prefetched %v", out)
	}
	// Sequential miss advances the stream and prefetches ahead.
	out := p.Miss(101)
	if len(out) != 2 || out[0] != 102 || out[1] != 103 {
		t.Errorf("ascending prefetch = %v", out)
	}
	out = p.Miss(102)
	if len(out) != 2 || out[0] != 103 {
		t.Errorf("stream continuation = %v", out)
	}
	issued, adv := p.Stats()
	if issued != 4 || adv != 2 {
		t.Errorf("stats = %d issued / %d advances", issued, adv)
	}
}

func TestPrefetcherDescending(t *testing.T) {
	p := NewPrefetcher(4, 2)
	p.Miss(200) // allocates ascending stream expecting 201
	out := p.Miss(199)
	if len(out) != 2 || out[0] != 198 || out[1] != 197 {
		t.Errorf("descending prefetch = %v", out)
	}
	out = p.Miss(198)
	if len(out) != 2 || out[0] != 197 {
		t.Errorf("descending continuation = %v", out)
	}
}

func TestPrefetcherEvictsOldestStream(t *testing.T) {
	p := NewPrefetcher(2, 1)
	p.Miss(100) // stream A
	p.Miss(500) // stream B
	p.Miss(900) // evicts A (oldest)
	if out := p.Miss(101); out != nil {
		t.Errorf("evicted stream still live: %v", out)
	}
	// The newest stream (900) is still live.
	if out := p.Miss(901); len(out) != 1 {
		t.Errorf("surviving stream dead: %v", out)
	}
}

func TestPrefetcherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPrefetcher(0,0) did not panic")
		}
	}()
	NewPrefetcher(0, 0)
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{NoPrefch: true})
	lat := DefaultLatencies()
	// Cold: full miss to memory.
	if got := h.Access(0x10000, 0); got < lat.L1+lat.L2+lat.Memory {
		t.Errorf("cold access latency %d", got)
	}
	// Now in L1.
	if got := h.Access(0x10000, 1000); got != lat.L1 {
		t.Errorf("L1 hit latency %d, want %d", got, lat.L1)
	}
	if h.L1() == nil || h.L2() == nil {
		t.Error("accessors returned nil")
	}
	if h.Prefetcher() != nil {
		t.Error("prefetcher present despite NoPrefch")
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	// Working set bigger than L1 but within L2: L2 hits after warmup.
	h := NewHierarchy(HierarchyConfig{NoPrefch: true})
	lat := DefaultLatencies()
	const lines = 4096 // 256 KB: 8× L1, fits in 1M L2
	for i := 0; i < lines; i++ {
		h.Access(uint64(i)*64, uint64(i))
	}
	got := h.Access(0, uint64(lines+1))
	if got != lat.L1+lat.L2 {
		t.Errorf("L2 hit latency %d, want %d", got, lat.L1+lat.L2)
	}
}

func TestHierarchyPrefetchHidesSequentialMisses(t *testing.T) {
	pf := NewBaselineHierarchy()
	nopf := NewHierarchy(HierarchyConfig{NoPrefch: true})
	var latPF, latNoPF int
	cycle := uint64(0)
	for i := 0; i < 2000; i++ {
		addr := uint64(i) * 64 // pure sequential stream
		latPF += pf.Access(addr, cycle)
		latNoPF += nopf.Access(addr, cycle)
		cycle += 400
	}
	if latPF >= latNoPF {
		t.Errorf("prefetcher did not help: %d >= %d", latPF, latNoPF)
	}
	issued, _ := pf.Prefetcher().Stats()
	if issued == 0 {
		t.Error("no prefetches issued on sequential stream")
	}
}
