package cache

import (
	"fmt"

	"bce/internal/memory"
)

// Prefetcher is the stream-based hardware data prefetcher of the
// baseline machine (Table 1: "Stream-based, 16 streams"). It watches
// demand misses, learns per-stream line strides (ascending,
// descending, or multi-line strides from >64-byte walks), and fills
// ahead into the L2.
type Prefetcher struct {
	streams []stream
	depth   int
	maxStr  int64
	issued  uint64
	useful  uint64 // advanced-stream hits (stream reuse)
	clock   uint64 // LRU allocation clock
	// buf is the reused prefetch-line scratch returned by Miss; the
	// caller consumes it before the next call, so the steady-state
	// access path allocates nothing.
	buf []uint64
}

type stream struct {
	last    uint64 // last miss line
	delta   int64  // learned line stride; 0 while training
	lastUse uint64
	valid   bool
}

// NewPrefetcher returns a prefetcher tracking `streams` concurrent
// streams and prefetching `depth` strides ahead on each stream
// advance. Strides up to ±8 lines are learned.
func NewPrefetcher(streams, depth int) *Prefetcher {
	if streams < 1 || depth < 1 {
		panic(fmt.Sprintf("cache: prefetcher needs positive streams/depth, got %d/%d", streams, depth))
	}
	return &Prefetcher{
		streams: make([]stream, streams),
		depth:   depth,
		maxStr:  8,
		buf:     make([]uint64, 0, depth),
	}
}

// Stats returns the number of prefetch fills issued and the number of
// stream advances (misses that matched a live stream).
func (p *Prefetcher) Stats() (issued, advances uint64) { return p.issued, p.useful }

func (p *Prefetcher) ahead(s *stream) []uint64 {
	out := p.buf[:0]
	l := int64(s.last)
	for d := 1; d <= p.depth; d++ {
		out = append(out, uint64(l+s.delta*int64(d)))
	}
	p.issued += uint64(len(out))
	p.useful++
	return out
}

// Miss notifies the prefetcher of a demand miss at line-granular
// address `line` and returns the lines to prefetch (possibly nil).
// The returned slice is reused by the next call; consume it before
// calling Miss again.
func (p *Prefetcher) Miss(line uint64) []uint64 {
	p.clock++
	// A trained stream advances when the miss lands on its next
	// expected line.
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && s.delta != 0 && line == uint64(int64(s.last)+s.delta) {
			s.last = line
			s.lastUse = p.clock
			return p.ahead(s)
		}
	}
	// A training stream learns its stride from the second nearby miss.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid || s.delta != 0 {
			continue
		}
		d := int64(line) - int64(s.last)
		if d != 0 && d >= -p.maxStr && d <= p.maxStr {
			s.delta = d
			s.last = line
			s.lastUse = p.clock
			return p.ahead(s)
		}
	}
	// Allocate a fresh training stream over the LRU victim.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			victim = i
			break
		}
		if s.lastUse < oldest {
			oldest = s.lastUse
			victim = i
		}
	}
	p.streams[victim] = stream{last: line, lastUse: p.clock, valid: true}
	return nil
}

// Latencies gives the access times of each level of the data
// hierarchy, in cycles.
type Latencies struct {
	L1, L2, Memory int
}

// DefaultLatencies models the baseline machine: 3-cycle L1D, 16-cycle
// L2, 300-cycle memory.
func DefaultLatencies() Latencies { return Latencies{L1: 3, L2: 16, Memory: 300} }

// Hierarchy is the load/store path: L1D backed by a unified L2 backed
// by memory (with bus contention), with the stream prefetcher filling
// L2 (and L1 for depth-1 lines).
type Hierarchy struct {
	l1, l2   *Cache
	pf       *Prefetcher
	bus      *memory.Bus
	lat      Latencies
	lineBits uint
}

// HierarchyConfig sizes the data-side hierarchy; zero-valued fields
// take the baseline machine's parameters.
type HierarchyConfig struct {
	L1       Config
	L2       Config
	Lat      Latencies
	Streams  int
	PFDepth  int
	Bus      memory.BusConfig
	NoPrefch bool
}

// NewBaselineHierarchy returns the Table 1 memory subsystem: 32K 8-way
// L1D, 1M 8-way L2, 64-byte lines, 16-stream prefetcher.
func NewBaselineHierarchy() *Hierarchy {
	return NewHierarchy(HierarchyConfig{})
}

// NewHierarchy builds a hierarchy from cfg, defaulting unset fields to
// the baseline machine.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.L1.SizeBytes == 0 {
		cfg.L1 = Config{SizeBytes: 32 * 1024, Assoc: 8, LineBytes: 64}
	}
	if cfg.L2.SizeBytes == 0 {
		cfg.L2 = Config{SizeBytes: 1024 * 1024, Assoc: 8, LineBytes: 64}
	}
	if cfg.Lat == (Latencies{}) {
		cfg.Lat = DefaultLatencies()
	}
	if cfg.Streams == 0 {
		cfg.Streams = 16
	}
	if cfg.PFDepth == 0 {
		cfg.PFDepth = 2
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.L1.LineBytes {
		lineBits++
	}
	h := &Hierarchy{
		l1:       New(cfg.L1),
		l2:       New(cfg.L2),
		bus:      memory.NewBus(cfg.Bus),
		lat:      cfg.Lat,
		lineBits: lineBits,
	}
	if !cfg.NoPrefch {
		h.pf = NewPrefetcher(cfg.Streams, cfg.PFDepth)
	}
	return h
}

// L1 exposes the first-level data cache for statistics.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the unified second-level cache for statistics.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Prefetcher returns the stream prefetcher, or nil when disabled.
func (h *Hierarchy) Prefetcher() *Prefetcher { return h.pf }

// Access performs a demand access at the given cycle and returns the
// load-to-use latency in cycles. Stores take the same path (the model
// charges them for the fill; store buffering hides the latency at the
// pipeline level).
func (h *Hierarchy) Access(addr uint64, cycle uint64) int {
	if h.l1.Access(addr) {
		return h.lat.L1
	}
	if h.l2.Access(addr) {
		// Streams advance on L2 hits too (prefetched-line use), which
		// keeps a trained stream running ahead of the demand stream
		// instead of stuttering miss-hit-hit-miss.
		h.prefetch(addr)
		return h.lat.L1 + h.lat.L2
	}
	h.prefetch(addr)
	wait := h.bus.Occupy(cycle)
	return h.lat.L1 + h.lat.L2 + h.lat.Memory + wait
}

func (h *Hierarchy) prefetch(addr uint64) {
	if h.pf == nil {
		return
	}
	for _, line := range h.pf.Miss(addr >> h.lineBits) {
		a := line << h.lineBits
		h.l2.Fill(a)
	}
}
