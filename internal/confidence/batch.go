package confidence

// batch.go defines the optional batched estimator protocol. A cycle's
// fetch group (or retire group) of conditional branches can be handed
// to the estimator in one call instead of N; estimators backed by the
// SIMD perceptron table then score or train every branch with a single
// kernel crossing. The batched entry points are contracts of exact
// equivalence: calling EstimateBatch/TrainBatch must leave the
// estimator in the same state and produce the same tokens as the same
// requests issued one at a time through Estimate/Train, in order.

// TrainReq is one deferred Train call: the arguments Train would have
// received for a retiring branch.
type TrainReq struct {
	PC           uint64
	Tok          Token
	Mispredicted bool
	Taken        bool
}

// BatchEstimator is implemented by estimators that can classify a
// group of same-cycle predictions in one call.
type BatchEstimator interface {
	Estimator
	// EstimateBatch is equivalent to toks[i] = Estimate(pcs[i],
	// predTaken[i]) for each i in order. All three slices share a
	// length. Because estimators only advance state in Train, the
	// requests see identical history, exactly as sequential
	// same-cycle Estimate calls would.
	EstimateBatch(pcs []uint64, predTaken []bool, toks []Token)
}

// BatchTrainer is implemented by estimators that can absorb a group of
// retirements in one call.
type BatchTrainer interface {
	Estimator
	// TrainBatch is equivalent to Train(r.PC, r.Tok, r.Mispredicted,
	// r.Taken) for each request in order.
	TrainBatch(reqs []TrainReq)
}

// EstimateBatch implements BatchEstimator: one table kernel call
// scores the whole group against the current history, then each output
// is banded exactly as Estimate bands it.
func (c *PerceptronCIC) EstimateBatch(pcs []uint64, predTaken []bool, toks []Token) {
	c.pb.Reset()
	for _, pc := range pcs {
		c.pb.Add(pc, c.ghr)
	}
	c.tbl.OutputBatch(&c.pb)
	for i, y32 := range c.pb.Out[:len(pcs)] {
		y := int(y32)
		band := High
		switch {
		case y >= c.reversal:
			band = StrongLow
		case y >= c.lambda:
			band = WeakLow
		}
		toks[i] = Token{Output: y, Band: band, Hist: c.ghr, PredTaken: predTaken[i]}
	}
}

// TrainBatch implements BatchTrainer. The update-rule gate and the
// history shift run per request in order, but the table updates they
// admit accumulate into one kernel call. That call applies them in
// request order against each request's own history snapshot — the same
// weights sequential Train calls would write, because Train reads only
// the snapshot (tok.Hist), never the live history register.
func (c *PerceptronCIC) TrainBatch(reqs []TrainReq) {
	c.pb.Reset()
	for i := range reqs {
		r := &reqs[i]
		p := -1
		if r.Mispredicted {
			p = 1
		}
		wrongClass := r.Tok.Band.Low() != r.Mispredicted
		if wrongClass || abs(r.Tok.Output) <= c.trainT {
			c.pb.AddTrain(r.PC, r.Tok.Hist, p)
		}
		c.ghr <<= 1
		if r.Taken {
			c.ghr |= 1
		}
	}
	if c.hlen < 64 {
		c.ghr &= (1 << uint(c.hlen)) - 1
	}
	c.tbl.TrainBatch(&c.pb)
}

var (
	_ BatchEstimator = (*PerceptronCIC)(nil)
	_ BatchTrainer   = (*PerceptronCIC)(nil)
)
