package confidence

import (
	"math/rand"
	"testing"
)

// batch_test.go holds the batched estimator protocol to its contract:
// EstimateBatch/TrainBatch must be observably identical to the same
// requests issued one at a time, across bands, raw outputs, history
// evolution and final weights.

// TestCICBatchMatchesSequential drives two identically-configured
// estimators through the same randomized stream of fetch groups and
// retire groups — one through the batched entry points, one through
// sequential Estimate/Train — and requires identical tokens at every
// step.
func TestCICBatchMatchesSequential(t *testing.T) {
	configs := []CICConfig{
		{Lambda: 0, Reversal: DisableReversal},
		{Lambda: -25, Reversal: 0},
		{Entries: 16, HistoryLen: 13, WeightBits: 5, Lambda: 10, Reversal: 40},
		{Entries: 8, HistoryLen: 64, WeightBits: 4, Lambda: 0, Reversal: DisableReversal},
	}
	for _, cfg := range configs {
		batched := NewCICWith(cfg)
		single := NewCICWith(cfg)
		rng := rand.New(rand.NewSource(int64(cfg.HistoryLen)*101 + int64(cfg.Lambda)))

		pcs := make([]uint64, 0, 8)
		pred := make([]bool, 0, 8)
		toks := make([]Token, 8)
		reqs := make([]TrainReq, 0, 8)

		for step := 0; step < 300; step++ {
			n := 1 + rng.Intn(6)
			pcs, pred, reqs = pcs[:0], pred[:0], reqs[:0]
			for i := 0; i < n; i++ {
				pcs = append(pcs, rng.Uint64()%512<<2)
				pred = append(pred, rng.Intn(2) == 0)
			}
			batched.EstimateBatch(pcs, pred, toks[:n])
			for i := 0; i < n; i++ {
				want := single.Estimate(pcs[i], pred[i])
				if !tokEq(toks[i], want) {
					t.Fatalf("%s step %d: EstimateBatch[%d] = %+v, sequential %+v",
						single.Name(), step, i, toks[i], want)
				}
				reqs = append(reqs, TrainReq{
					PC:           pcs[i],
					Tok:          toks[i],
					Mispredicted: rng.Intn(3) == 0,
					Taken:        rng.Intn(2) == 0,
				})
			}
			batched.TrainBatch(reqs)
			for i := range reqs {
				single.Train(reqs[i].PC, reqs[i].Tok, reqs[i].Mispredicted, reqs[i].Taken)
			}
		}
		// One final estimate proves history registers and weights agree.
		if got, want := batched.Estimate(12<<2, true), single.Estimate(12<<2, true); !tokEq(got, want) {
			t.Fatalf("%s: final Estimate diverged: %+v vs %+v", single.Name(), got, want)
		}
	}
}

// tokEq compares tokens field-wise (Token carries a slice for
// composite estimators, so == does not apply; PerceptronCIC never sets
// it).
func tokEq(a, b Token) bool {
	return a.Output == b.Output && a.Band == b.Band && a.Hist == b.Hist &&
		a.PredTaken == b.PredTaken && a.Sub == nil && b.Sub == nil
}

// TestCICBatchAllocFree pins the batched paths allocation-free after
// warm-up: the scratch block and table backing are reused across
// groups.
func TestCICBatchAllocFree(t *testing.T) {
	c := NewCIC(0)
	pcs := []uint64{0x40, 0x80, 0xC0, 0x100}
	pred := []bool{true, false, true, false}
	toks := make([]Token, len(pcs))
	reqs := make([]TrainReq, len(pcs))
	run := func() {
		c.EstimateBatch(pcs, pred, toks)
		for i := range pcs {
			reqs[i] = TrainReq{PC: pcs[i], Tok: toks[i], Mispredicted: i&1 == 0, Taken: i&2 == 0}
		}
		c.TrainBatch(reqs)
	}
	run() // warm-up materializes the touched rows and scratch columns
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("batched estimate/train cycle allocates %v times per run, want 0", allocs)
	}
}
