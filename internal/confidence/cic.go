package confidence

import (
	"fmt"
	"math"

	"bce/internal/perceptron"
)

// PerceptronCIC is the paper's contribution (§3): a table of
// perceptrons indexed by branch address whose inputs are the global
// branch history and whose training target is whether the branch was
// Correctly or InCorrectly predicted. A positive output predicts the
// execution is likely on the wrong path:
//
//	y >= Reversal  ⇒ strongly low confident (reverse the prediction)
//	y >= Lambda    ⇒ weakly low confident  (pipeline-gating candidate)
//	y <  Lambda    ⇒ high confidence
//
// The default geometry is the paper's 4 KB estimator: 128 perceptrons,
// 32-bit global history, 8-bit weights.
type PerceptronCIC struct {
	tbl      *perceptron.Table
	ghr      uint64
	hlen     int
	lambda   int
	reversal int
	trainT   int
	// pb is the reusable request block behind EstimateBatch/TrainBatch
	// (batch.go); owning it here keeps the batched paths allocation-free.
	pb perceptron.Batch
}

// CICConfig parameterizes a PerceptronCIC.
type CICConfig struct {
	// Entries, HistoryLen, WeightBits set the table geometry; defaults
	// 128, 32, 8 (the paper's P128W8H32).
	Entries    int
	HistoryLen int
	WeightBits int
	// Lambda is the low-confidence threshold λ: output >= Lambda is
	// classified low confidence. The paper sweeps {25, 0, -25, -50}.
	// Default 0. Note zero is a meaningful value here, so Lambda is
	// always honored as given.
	Lambda int
	// Reversal is the strongly-low-confidence threshold; output >=
	// Reversal reverses the branch (§5.5 uses 0 with Lambda = -75).
	// Leave at 0 value DisableReversal (the default from NewCIC) to
	// run gating-only.
	Reversal int
	// TrainThreshold is T in the paper's update rule: train whenever
	// the classification was wrong or |y| <= T. Default 75
	// (Jimenez's θ(32) = ⌊1.93·32+14⌋, a good fit empirically).
	TrainThreshold int
}

// DisableReversal as CICConfig.Reversal turns branch reversal off.
const DisableReversal = math.MaxInt32

// NewCIC returns the paper's default 4 KB estimator with the given
// low-confidence threshold λ and reversal disabled.
func NewCIC(lambda int) *PerceptronCIC {
	return NewCICWith(CICConfig{Lambda: lambda, Reversal: DisableReversal})
}

// NewCICWith returns an estimator with explicit configuration; zero
// geometry fields take the paper defaults.
func NewCICWith(cfg CICConfig) *PerceptronCIC {
	if cfg.Entries == 0 {
		cfg.Entries = 128
	}
	if cfg.HistoryLen == 0 {
		cfg.HistoryLen = 32
	}
	if cfg.WeightBits == 0 {
		cfg.WeightBits = 8
	}
	if cfg.TrainThreshold == 0 {
		cfg.TrainThreshold = 75
	}
	if cfg.HistoryLen > 64 {
		panic(fmt.Sprintf("confidence: CIC history %d > 64", cfg.HistoryLen))
	}
	return &PerceptronCIC{
		tbl:      perceptron.NewTable(cfg.Entries, cfg.HistoryLen, cfg.WeightBits),
		hlen:     cfg.HistoryLen,
		lambda:   cfg.Lambda,
		reversal: cfg.Reversal,
		trainT:   cfg.TrainThreshold,
	}
}

// Lambda returns the low-confidence threshold.
func (c *PerceptronCIC) Lambda() int { return c.lambda }

// Reversal returns the strongly-low-confidence threshold.
func (c *PerceptronCIC) Reversal() int { return c.reversal }

// TrainThreshold returns T.
func (c *PerceptronCIC) TrainThreshold() int { return c.trainT }

// SizeBytes returns the estimator's hardware storage budget.
func (c *PerceptronCIC) SizeBytes() int { return c.tbl.SizeBytes() }

// Geometry returns (entries, historyLen, weightBits), the PiWjHk label
// components of Table 6.
func (c *PerceptronCIC) Geometry() (entries, hlen, bits int) {
	return c.tbl.Entries(), c.tbl.HistoryLen(), c.tbl.WeightBits()
}

// Output returns the raw perceptron output for pc against the current
// history, without classifying. Density studies (Figures 4-7) use it.
func (c *PerceptronCIC) Output(pc uint64) int {
	return c.tbl.Output(pc, c.ghr)
}

// Estimate implements Estimator.
func (c *PerceptronCIC) Estimate(pc uint64, predictedTaken bool) Token {
	y := c.tbl.Output(pc, c.ghr)
	band := High
	switch {
	case y >= c.reversal:
		band = StrongLow
	case y >= c.lambda:
		band = WeakLow
	}
	return Token{Output: y, Band: band, Hist: c.ghr, PredTaken: predictedTaken}
}

// Train implements Estimator, applying the paper's update rule:
//
//	p = +1 if mispredicted else -1
//	c = +1 if classified low-confidence else -1
//	if sign(c) != sign(p) || |y| <= T:  w[i] += p·x[i]  (saturating)
//
// then shifts the resolved direction into the history register. The
// history snapshot from the token is replayed so training sees exactly
// the inputs the estimate saw.
func (c *PerceptronCIC) Train(pc uint64, tok Token, mispredicted, taken bool) {
	p := -1
	if mispredicted {
		p = 1
	}
	lowConf := tok.Band.Low()
	wrongClass := lowConf != mispredicted // sign(c) != sign(p)
	y := tok.Output
	if wrongClass || abs(y) <= c.trainT {
		c.tbl.Train(pc, tok.Hist, p)
	}
	c.ghr <<= 1
	if taken {
		c.ghr |= 1
	}
	if c.hlen < 64 {
		c.ghr &= (1 << uint(c.hlen)) - 1
	}
}

// Name implements Estimator. The name encodes every configuration
// knob that changes behaviour — geometry, λ, the reversal threshold
// and a non-default training threshold T — because result caches key
// simulations by estimator name; two differently-behaving estimators
// must never share one.
func (c *PerceptronCIC) Name() string {
	e, h, b := c.Geometry()
	var opts string
	if c.reversal < DisableReversal {
		opts += fmt.Sprintf(",rev=%d", c.reversal)
	}
	if c.trainT != 75 {
		opts += fmt.Sprintf(",T=%d", c.trainT)
	}
	return fmt.Sprintf("perceptron_cic-P%dW%dH%d(λ=%d%s)", e, b, h, c.lambda, opts)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var _ Estimator = (*PerceptronCIC)(nil)
