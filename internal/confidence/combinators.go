package confidence

import "fmt"

// This file provides estimator combinators used by the ablation
// studies: band remappers (to force reversal behavior onto binary
// estimators, demonstrating why only the multi-valued CIC output
// supports reversal, §5.3/§5.5) and fusion of two estimators.

// PromoteLow wraps an estimator and promotes every low-confidence
// estimate to StrongLow. Wrapping a binary estimator (JRS, TNT) with
// it and enabling reversal reproduces "reverse everything flagged",
// the naive selective-branch-inversion policy the paper's
// sub-classification improves on.
type PromoteLow struct {
	Inner Estimator
}

// Estimate implements Estimator.
func (p PromoteLow) Estimate(pc uint64, predictedTaken bool) Token {
	tok := p.Inner.Estimate(pc, predictedTaken)
	if tok.Band == WeakLow {
		tok.Band = StrongLow
	}
	return tok
}

// Train implements Estimator. The token band may have been promoted;
// inner estimators only test Band.Low(), which promotion preserves.
func (p PromoteLow) Train(pc uint64, tok Token, mispredicted, taken bool) {
	p.Inner.Train(pc, tok, mispredicted, taken)
}

// Name implements Estimator.
func (p PromoteLow) Name() string { return "promote-low(" + p.Inner.Name() + ")" }

var _ Estimator = PromoteLow{}

// DemoteStrong wraps an estimator and demotes StrongLow to WeakLow,
// turning a gating+reversal configuration into gating-only without
// retuning thresholds.
type DemoteStrong struct {
	Inner Estimator
}

// Estimate implements Estimator.
func (d DemoteStrong) Estimate(pc uint64, predictedTaken bool) Token {
	tok := d.Inner.Estimate(pc, predictedTaken)
	if tok.Band == StrongLow {
		tok.Band = WeakLow
	}
	return tok
}

// Train implements Estimator.
func (d DemoteStrong) Train(pc uint64, tok Token, mispredicted, taken bool) {
	d.Inner.Train(pc, tok, mispredicted, taken)
}

// Name implements Estimator.
func (d DemoteStrong) Name() string { return "demote-strong(" + d.Inner.Name() + ")" }

var _ Estimator = DemoteStrong{}

// FuseMode selects how a Fused estimator combines its two members.
type FuseMode uint8

const (
	// FuseBoth flags low confidence only when both members do:
	// higher accuracy, lower coverage.
	FuseBoth FuseMode = iota
	// FuseEither flags low confidence when either member does:
	// higher coverage, lower accuracy.
	FuseEither
)

// String names the mode.
func (m FuseMode) String() string {
	if m == FuseEither {
		return "either"
	}
	return "both"
}

// Fused combines two estimators. The band is the pairwise minimum
// (FuseBoth) or maximum (FuseEither) of the member bands, ordering
// High < WeakLow < StrongLow. Both members train on every branch;
// their estimate-time tokens travel inside the fused Token (its Sub
// field), exactly like hardware carrying both estimates down the
// pipeline with the branch, so wrong-path estimates that are never
// trained cannot desynchronize the members. Fusing CIC with JRS
// explores the accuracy/coverage territory between Table 3's two
// columns.
type Fused struct {
	A, B Estimator
	Mode FuseMode
}

// NewFused returns a fusion of a and b.
func NewFused(a, b Estimator, mode FuseMode) *Fused {
	if a == nil || b == nil {
		panic("confidence: Fused needs two estimators")
	}
	return &Fused{A: a, B: b, Mode: mode}
}

// Estimate implements Estimator.
func (f *Fused) Estimate(pc uint64, predictedTaken bool) Token {
	ta := f.A.Estimate(pc, predictedTaken)
	tb := f.B.Estimate(pc, predictedTaken)
	out := ta
	if f.Mode == FuseBoth {
		out.Band = minBand(ta.Band, tb.Band)
	} else {
		out.Band = maxBand(ta.Band, tb.Band)
	}
	out.Sub = []Token{ta, tb}
	return out
}

// Train implements Estimator: both members train with their own
// estimate-time tokens carried in tok.Sub.
func (f *Fused) Train(pc uint64, tok Token, mispredicted, taken bool) {
	if len(tok.Sub) == 2 {
		f.A.Train(pc, tok.Sub[0], mispredicted, taken)
		f.B.Train(pc, tok.Sub[1], mispredicted, taken)
		return
	}
	// Token without member estimates (hand-built in a test); train
	// both members with the fused token.
	f.A.Train(pc, tok, mispredicted, taken)
	f.B.Train(pc, tok, mispredicted, taken)
}

// Name implements Estimator.
func (f *Fused) Name() string {
	return fmt.Sprintf("fused-%s(%s,%s)", f.Mode, f.A.Name(), f.B.Name())
}

func minBand(a, b Class) Class {
	if a < b {
		return a
	}
	return b
}

func maxBand(a, b Class) Class {
	if a > b {
		return a
	}
	return b
}

var _ Estimator = (*Fused)(nil)
