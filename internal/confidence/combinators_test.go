package confidence

import (
	"strings"
	"testing"

	"bce/internal/metrics"
)

func TestPromoteLow(t *testing.T) {
	p := PromoteLow{Inner: NewEnhancedJRS(15)}
	tok := p.Estimate(0x4000, true) // cold JRS counter: low confidence
	if tok.Band != StrongLow {
		t.Fatalf("band = %v, want StrongLow", tok.Band)
	}
	p.Train(0x4000, tok, true, true)
	if !strings.Contains(p.Name(), "promote-low") {
		t.Error("name")
	}
	// High stays high.
	hi := PromoteLow{Inner: AlwaysHigh{}}
	if hi.Estimate(0x4000, true).Band != High {
		t.Error("promoted a high-confidence estimate")
	}
}

func TestDemoteStrong(t *testing.T) {
	o := NewOracle()
	o.ObserveNext(true)
	d := DemoteStrong{Inner: o}
	o.ObserveNext(true)
	if tok := d.Estimate(0, true); tok.Band != WeakLow {
		t.Fatalf("band = %v, want WeakLow", tok.Band)
	}
	o.ObserveNext(false)
	if tok := d.Estimate(0, true); tok.Band != High {
		t.Fatalf("band = %v, want High", tok.Band)
	}
	d.Train(0, Token{}, false, true)
	if !strings.Contains(d.Name(), "demote-strong") {
		t.Error("name")
	}
}

func TestFusedBands(t *testing.T) {
	mk := func(band Class) Estimator { return fixedBand{band} }
	cases := []struct {
		a, b Class
		both Class
		eith Class
	}{
		{High, High, High, High},
		{High, WeakLow, High, WeakLow},
		{WeakLow, StrongLow, WeakLow, StrongLow},
		{StrongLow, StrongLow, StrongLow, StrongLow},
		{High, StrongLow, High, StrongLow},
	}
	for _, tc := range cases {
		fb := NewFused(mk(tc.a), mk(tc.b), FuseBoth)
		if got := fb.Estimate(0, true).Band; got != tc.both {
			t.Errorf("both(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.both)
		}
		fe := NewFused(mk(tc.a), mk(tc.b), FuseEither)
		if got := fe.Estimate(0, true).Band; got != tc.eith {
			t.Errorf("either(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.eith)
		}
	}
}

type fixedBand struct{ band Class }

func (f fixedBand) Estimate(pc uint64, predictedTaken bool) Token {
	return Token{Band: f.band, PredTaken: predictedTaken}
}
func (f fixedBand) Train(pc uint64, tok Token, mispredicted, taken bool) {}
func (f fixedBand) Name() string                                         { return "fixed" }

// Members must train with their own estimate-time tokens, so a JRS
// member inside a fusion behaves identically to a standalone JRS.
func TestFusedMembersTrainIndependently(t *testing.T) {
	solo := NewEnhancedJRS(15)
	inFusion := NewEnhancedJRS(15)
	fused := NewFused(inFusion, NewCIC(0), FuseEither)
	pc := uint64(0x4000)
	for i := 0; i < 200; i++ {
		taken := i%3 != 0
		st := solo.Estimate(pc, true)
		ft := fused.Estimate(pc, true)
		misp := i%7 == 0
		solo.Train(pc, st, misp, taken)
		fused.Train(pc, ft, misp, taken)
		if st.Band != ft.Sub[0].Band {
			t.Fatalf("step %d: member diverged from solo (solo %v, member %v)",
				i, st.Band, ft.Sub[0].Band)
		}
	}
}

// FuseBoth must have PVN >= both members' PVN-ish behavior; at minimum
// its coverage cannot exceed either member's and FuseEither's coverage
// cannot be below either member's. Verified on a synthetic stream.
func TestFusedCoverageOrdering(t *testing.T) {
	type stats struct{ conf metrics.Confusion }
	runWith := func(mk func() Estimator) metrics.Confusion {
		est := mk()
		var c metrics.Confusion
		for i := 0; i < 5000; i++ {
			pc := uint64(0x4000 + (i%13)<<2)
			misp := i%5 == 0
			taken := i%2 == 0
			tok := est.Estimate(pc, true)
			est.Train(pc, tok, misp, taken)
			if i > 1000 {
				c.Add(misp, tok.Band.Low())
			}
		}
		return c
	}
	jrs := runWith(func() Estimator { return NewEnhancedJRS(15) })
	cic := runWith(func() Estimator { return NewCIC(0) })
	both := runWith(func() Estimator { return NewFused(NewEnhancedJRS(15), NewCIC(0), FuseBoth) })
	either := runWith(func() Estimator { return NewFused(NewEnhancedJRS(15), NewCIC(0), FuseEither) })
	if both.Spec() > jrs.Spec()+1e-9 || both.Spec() > cic.Spec()+1e-9 {
		t.Errorf("FuseBoth Spec %.3f exceeds a member (jrs %.3f cic %.3f)",
			both.Spec(), jrs.Spec(), cic.Spec())
	}
	if either.Spec() < jrs.Spec()-1e-9 || either.Spec() < cic.Spec()-1e-9 {
		t.Errorf("FuseEither Spec %.3f below a member (jrs %.3f cic %.3f)",
			either.Spec(), jrs.Spec(), cic.Spec())
	}
	_ = stats{}
}

func TestFusedFallbackTrain(t *testing.T) {
	f := NewFused(NewEnhancedJRS(15), NewCIC(0), FuseBoth)
	// Hand-built token without Sub: must not panic.
	f.Train(0x4000, Token{Band: WeakLow}, true, true)
}

func TestFusedPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFused(nil,nil) did not panic")
		}
	}()
	NewFused(nil, nil, FuseBoth)
}

func TestFuseModeString(t *testing.T) {
	if FuseBoth.String() != "both" || FuseEither.String() != "either" {
		t.Error("mode names")
	}
}

func TestFusedName(t *testing.T) {
	f := NewFused(NewEnhancedJRS(15), NewCIC(0), FuseEither)
	if !strings.Contains(f.Name(), "fused-either") {
		t.Errorf("name = %q", f.Name())
	}
}
