// Package confidence implements branch confidence estimators: the
// paper's perceptron estimator trained on correct/incorrect outcomes
// (PerceptronCIC, §3), and every baseline it is measured against —
// the enhanced JRS resetting-counter estimator, the perceptron_tnt
// scheme of Jimenez/Lin (§5.3), Smith's self-confidence counters, and
// Tyson's pattern-history estimator (§2.3).
//
// # Protocol
//
// For every dynamic conditional branch, in program order:
//
//	tok := est.Estimate(pc, predictedTaken)   // at fetch
//	...
//	est.Train(pc, tok, mispredicted, taken)   // at retire
//
// Estimate captures everything the estimator needs to train later (the
// history and output it saw at prediction time) in the returned Token,
// mirroring hardware that carries the estimate down the pipeline with
// the branch. Wrong-path branches receive Estimates (they interact with
// pipeline gating) but are never Trained, because they never retire.
//
// # Classification
//
// Token.Class() maps the estimate onto the paper's three bands: high
// confidence, weakly low confidence (pipeline-gating candidates) and
// strongly low confidence (branch-reversal candidates, §5.5). Binary
// estimators only ever produce High and WeakLow.
package confidence

// Class is the confidence band assigned to a branch prediction.
type Class uint8

const (
	// High confidence: the prediction is likely correct.
	High Class = iota
	// WeakLow confidence: likely-enough wrong to gate fetch behind it
	// (paper: output between the gating and reversal thresholds).
	WeakLow
	// StrongLow confidence: likely wrong with enough margin that
	// reversing the prediction wins (paper: output above the reversal
	// threshold).
	StrongLow
)

// String returns the band name.
func (c Class) String() string {
	switch c {
	case High:
		return "high"
	case WeakLow:
		return "weak-low"
	case StrongLow:
		return "strong-low"
	default:
		return "class(?)"
	}
}

// Low reports whether the band is either low-confidence band.
func (c Class) Low() bool { return c != High }

// Token is one confidence estimate, produced at prediction time and
// handed back at training time. It carries the raw multi-valued output
// (for perceptron estimators), the assigned band, and the history
// snapshot training needs.
type Token struct {
	// Output is the estimator's raw output. For perceptron estimators
	// this is the dot product y; for counter estimators it is the
	// counter value. Higher always means *less* confident here? No:
	// the orientation is estimator-specific; use Class for decisions.
	Output int
	// Band is the confidence band assigned at estimate time.
	Band Class
	// Hist is the estimator's history register at estimate time;
	// perceptron training replays it.
	Hist uint64
	// PredTaken is the front-end prediction direction the estimate was
	// made for (enhanced JRS folds it into its index).
	PredTaken bool
	// Sub carries member estimators' tokens through the pipeline for
	// composite estimators (Fused); nil otherwise.
	Sub []Token
}

// Class returns the band assigned at estimate time.
func (t Token) Class() Class { return t.Band }

// Estimator assigns confidence to conditional branch predictions.
type Estimator interface {
	// Estimate classifies the prediction for the branch at pc, made in
	// program order at fetch. predictedTaken is the front-end
	// prediction (after any hybrid selection, before any reversal).
	Estimate(pc uint64, predictedTaken bool) Token
	// Train updates the estimator at retirement. tok must be the Token
	// from this branch's Estimate; mispredicted says whether the
	// original front-end prediction was wrong; taken is the resolved
	// direction (estimators keep their own history registers).
	Train(pc uint64, tok Token, mispredicted, taken bool)
	// Name identifies the estimator in reports.
	Name() string
}

// TraceOracle is implemented by estimators that need ground truth at
// estimate time. The trace-driven pipeline knows each branch's real
// outcome when it fetches it, and calls ObserveNext immediately before
// Estimate for estimators implementing this interface. Only bounding
// experiments and tests use it.
type TraceOracle interface {
	// ObserveNext supplies whether the upcoming prediction is wrong.
	ObserveNext(mispredicted bool)
}

// Oracle is a perfect estimator for bounding experiments and tests: it
// must be told the truth before each Estimate (the pipeline does this
// automatically via the TraceOracle interface).
type Oracle struct {
	nextWrong bool
}

// NewOracle returns a perfect confidence estimator.
func NewOracle() *Oracle { return &Oracle{} }

// ObserveNext implements TraceOracle.
func (o *Oracle) ObserveNext(mispredicted bool) { o.nextWrong = mispredicted }

// Estimate implements Estimator.
func (o *Oracle) Estimate(pc uint64, predictedTaken bool) Token {
	band := High
	out := -1
	if o.nextWrong {
		band = StrongLow
		out = 1
	}
	return Token{Output: out, Band: band, PredTaken: predictedTaken}
}

// Train implements Estimator (nothing to learn).
func (o *Oracle) Train(pc uint64, tok Token, mispredicted, taken bool) {}

// Name implements Estimator.
func (o *Oracle) Name() string { return "oracle" }

var _ Estimator = (*Oracle)(nil)

// AlwaysHigh is a degenerate estimator that never flags low confidence;
// running the gating machinery with it must reproduce the ungated
// baseline exactly (used in tests and as the "gating off" control).
type AlwaysHigh struct{}

// Estimate implements Estimator.
func (AlwaysHigh) Estimate(pc uint64, predictedTaken bool) Token {
	return Token{Output: -1, Band: High, PredTaken: predictedTaken}
}

// Train implements Estimator.
func (AlwaysHigh) Train(pc uint64, tok Token, mispredicted, taken bool) {}

// Name implements Estimator.
func (AlwaysHigh) Name() string { return "always-high" }

var _ Estimator = AlwaysHigh{}
