package confidence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bce/internal/predictor"
)

func TestClass(t *testing.T) {
	if High.Low() || !WeakLow.Low() || !StrongLow.Low() {
		t.Error("Class.Low wrong")
	}
	names := map[Class]string{High: "high", WeakLow: "weak-low", StrongLow: "strong-low", Class(9): "class(?)"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// step runs one estimate/train cycle for a branch whose prediction
// correctness is given.
func step(e Estimator, pc uint64, predTaken, taken bool) Token {
	tok := e.Estimate(pc, predTaken)
	e.Train(pc, tok, predTaken != taken, taken)
	return tok
}

// pinnedJRS returns an enhanced JRS whose 1-bit history makes the
// counter index stable after one all-taken step, so counter dynamics
// can be asserted exactly.
func pinnedJRS(lambda int) *JRS {
	return NewJRS(JRSConfig{Lambda: lambda, HistoryLen: 1, Enhanced: true})
}

func TestJRSBasicDynamics(t *testing.T) {
	j := pinnedJRS(15)
	pc := uint64(0x4000)
	// Fresh counters are 0: low confidence.
	if tok := j.Estimate(pc, true); tok.Band != WeakLow {
		t.Fatalf("fresh JRS band = %v", tok.Band)
	}
	step(j, pc, true, true) // stabilize the 1-bit history
	// After 15 more correct predictions the stable counter reaches
	// λ=15.
	for i := 0; i < 15; i++ {
		if tok := step(j, pc, true, true); tok.Band != WeakLow {
			t.Fatalf("step %d: band = %v before threshold", i, tok.Band)
		}
	}
	if tok := j.Estimate(pc, true); tok.Band != High {
		t.Fatalf("after 15 correct: band = %v", tok.Band)
	}
	// One misprediction resets the counter to zero.
	step(j, pc, true, false)
	step(j, pc, true, true) // restabilize history
	if tok := j.Estimate(pc, true); tok.Band != High {
		// Counter was reset; 1 increment later it is far below λ.
		for i := 0; i < 15; i++ {
			step(j, pc, true, true)
		}
	}
	if tok := j.Estimate(pc, true); tok.Band != High {
		t.Fatal("did not recover high confidence")
	}
}

func TestJRSResetOnMispredict(t *testing.T) {
	j := pinnedJRS(3)
	pc := uint64(0x4000)
	for i := 0; i < 10; i++ {
		step(j, pc, true, true)
	}
	if j.Estimate(pc, true).Band != High {
		t.Fatal("not high before mispredict")
	}
	step(j, pc, true, false) // mispredict resets stable counter
	step(j, pc, true, true)  // restabilize history (counter now 1)
	if tok := j.Estimate(pc, true); tok.Band != WeakLow {
		t.Fatalf("band = %v right after reset (counter %d)", tok.Band, tok.Output)
	}
}

func TestJRSLambdaOrdering(t *testing.T) {
	// Lower λ makes high confidence easier: a branch that has been
	// correct 7 times (after history stabilization) is high-confidence
	// for λ=7 but not λ=15.
	run := func(lambda int) Class {
		j := pinnedJRS(lambda)
		pc := uint64(0x4000)
		step(j, pc, true, true) // stabilize
		for i := 0; i < 7; i++ {
			step(j, pc, true, true)
		}
		return j.Estimate(pc, true).Band
	}
	if run(7) != High {
		t.Error("λ=7 not high after 7 correct")
	}
	if run(15) != WeakLow {
		t.Error("λ=15 high after only 7 correct")
	}
}

func TestJRSEnhancedUsesPrediction(t *testing.T) {
	j := pinnedJRS(3)
	pc := uint64(0x4000)
	for i := 0; i < 10; i++ {
		step(j, pc, true, true)
	}
	// Same PC and history, opposite prediction, must hit a different
	// (cold) counter under the enhanced indexing.
	a := j.Estimate(pc, true)
	b := j.Estimate(pc, false)
	if a.Band != High {
		t.Fatalf("trained index band = %v", a.Band)
	}
	if b.Band != WeakLow {
		t.Fatalf("opposite-prediction index band = %v (enhanced index not separating)", b.Band)
	}
}

func TestJRSConfigValidation(t *testing.T) {
	for _, cfg := range []JRSConfig{
		{CounterBits: 9},
		{Lambda: 16},
		{Lambda: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewJRS(%+v) did not panic", cfg)
				}
			}()
			NewJRS(cfg)
		}()
	}
	j := NewJRS(JRSConfig{})
	if j.Entries() != 8192 || j.Lambda() != 0 {
		t.Errorf("defaults: entries=%d λ=%d", j.Entries(), j.Lambda())
	}
	if j.SizeBytes() != 8192/2 {
		t.Errorf("SizeBytes = %d, want 4096", j.SizeBytes())
	}
}

func TestCICBands(t *testing.T) {
	c := NewCICWith(CICConfig{Lambda: -25, Reversal: 50})
	// Force specific outputs by training.
	pc := uint64(0x4000)
	tok := c.Estimate(pc, true)
	if tok.Output != 0 || tok.Band != WeakLow {
		t.Fatalf("fresh estimate: y=%d band=%v (λ=-25 ⇒ 0 is weak-low)", tok.Output, tok.Band)
	}
	// Train hard toward "mispredicted" with constant history: y grows
	// positive past the reversal threshold.
	for i := 0; i < 40; i++ {
		tok = c.Estimate(pc, true)
		c.Train(pc, tok, true, true)
	}
	if tok = c.Estimate(pc, true); tok.Band != StrongLow {
		t.Fatalf("after misprediction training: y=%d band=%v", tok.Output, tok.Band)
	}
	// Train toward "correct": y sinks below λ.
	for i := 0; i < 120; i++ {
		tok = c.Estimate(pc, true)
		c.Train(pc, tok, false, true)
	}
	if tok = c.Estimate(pc, true); tok.Band != High {
		t.Fatalf("after correct training: y=%d band=%v", tok.Output, tok.Band)
	}
}

func TestCICLearnsHistoryCorrelatedMispredictions(t *testing.T) {
	// A branch that is mispredicted exactly when history bit 4 is set:
	// the CIC estimator must learn to flag those instances.
	c := NewCIC(0)
	r := rand.New(rand.NewSource(11))
	pc := uint64(0x4000)
	var outcomes []bool
	correct := 0
	flagged := 0
	total := 0
	for i := 0; i < 6000; i++ {
		taken := r.Intn(2) == 0
		outcomes = append(outcomes, taken)
		misp := len(outcomes) >= 5 && outcomes[len(outcomes)-5]
		tok := c.Estimate(pc, true)
		if i > 3000 {
			total++
			if tok.Band.Low() == misp {
				correct++
			}
			if misp && tok.Band.Low() {
				flagged++
			}
		}
		c.Train(pc, tok, misp, taken)
	}
	if correct < total*8/10 {
		t.Errorf("CIC classification accuracy %d/%d on linearly separable misprediction pattern", correct, total)
	}
}

func TestCICTrainThresholdKeepsTraining(t *testing.T) {
	// With T large, training continues even when classification is
	// right, pushing |y| outward; with T=1 training stops once
	// classification is stable outside |y|<=1.
	big := NewCICWith(CICConfig{Lambda: 0, Reversal: DisableReversal, TrainThreshold: 100})
	small := NewCICWith(CICConfig{Lambda: 0, Reversal: DisableReversal, TrainThreshold: 1})
	pc := uint64(0x4000)
	for i := 0; i < 50; i++ {
		tb := big.Estimate(pc, true)
		big.Train(pc, tb, false, true)
		ts := small.Estimate(pc, true)
		small.Train(pc, ts, false, true)
	}
	yb := big.Estimate(pc, true).Output
	ys := small.Estimate(pc, true).Output
	if !(yb < ys && ys < 0) {
		t.Errorf("train threshold effect: yb=%d ys=%d (want yb < ys < 0)", yb, ys)
	}
}

func TestCICGeometryAndSize(t *testing.T) {
	c := NewCIC(0)
	e, h, b := c.Geometry()
	if e != 128 || h != 32 || b != 8 {
		t.Fatalf("geometry = %d/%d/%d", e, h, b)
	}
	if c.SizeBytes() != 128*33 {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
	if c.Lambda() != 0 || c.Reversal() != DisableReversal || c.TrainThreshold() != 75 {
		t.Errorf("defaults: λ=%d rev=%d T=%d", c.Lambda(), c.Reversal(), c.TrainThreshold())
	}
}

// Property: CIC training only ever moves weights by ±1 per step, so
// consecutive outputs for a fixed history differ by at most
// inputs+1.
func TestCICOutputLipschitzQuick(t *testing.T) {
	f := func(seed int64) bool {
		c := NewCICWith(CICConfig{HistoryLen: 16, Reversal: DisableReversal})
		r := rand.New(rand.NewSource(seed))
		pc := uint64(0x4000)
		probe := r.Uint64()
		prev := c.tbl.Lookup(pc).Output(probe)
		for i := 0; i < 100; i++ {
			tok := c.Estimate(pc, r.Intn(2) == 0)
			c.Train(pc, tok, r.Intn(2) == 0, r.Intn(2) == 0)
			cur := c.tbl.Lookup(pc).Output(probe)
			if d := cur - prev; d > 17 || d < -17 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTNTBands(t *testing.T) {
	p := NewTNT(20)
	pc := uint64(0x4000)
	if tok := p.Estimate(pc, true); tok.Band != WeakLow {
		t.Fatalf("fresh TNT (y=0) band = %v, want weak-low", tok.Band)
	}
	// Strongly-biased branch drives |y| high: confidence rises.
	for i := 0; i < 60; i++ {
		step(p, pc, true, true)
	}
	tok := p.Estimate(pc, true)
	if tok.Band != High {
		t.Fatalf("after bias training: y=%d band=%v", tok.Output, tok.Band)
	}
	if tok.Output <= 20 {
		t.Fatalf("y=%d not strongly positive", tok.Output)
	}
	if p.Lambda() != 20 {
		t.Errorf("Lambda = %d", p.Lambda())
	}
}

func TestTNTNeverStronglyLow(t *testing.T) {
	p := NewTNT(1000) // everything low-confidence
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		pc := uint64(0x4000 + (r.Intn(8) << 2))
		taken := r.Intn(2) == 0
		tok := step(p, pc, true, taken)
		if tok.Band == StrongLow {
			t.Fatal("TNT produced StrongLow")
		}
	}
}

func TestSmith(t *testing.T) {
	h := predictor.NewBaselineHybrid()
	s := NewSmith(h)
	pc := uint64(0x4000)
	// Train the predictor until its counters are strong.
	for i := 0; i < 30; i++ {
		h.Predict(pc)
		h.Update(pc, true)
	}
	if tok := s.Estimate(pc, true); tok.Band != High {
		t.Fatalf("strong counter band = %v", tok.Band)
	}
	// A cold, different branch: counters at weakly-taken midpoint+1
	// are not strong.
	if tok := s.Estimate(0x9000, true); tok.Band != WeakLow {
		t.Fatalf("cold counter band = %v", tok.Band)
	}
	s.Train(pc, Token{}, false, true) // no-op, must not panic
	if s.Name() != "smith" {
		t.Error("name")
	}
}

func TestSmithNilSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSmith(nil) did not panic")
		}
	}()
	NewSmith(nil)
}

func TestPattern(t *testing.T) {
	p := NewPattern(0, 0) // defaults 1024 x 8
	pc := uint64(0x4000)
	// All-taken local history ⇒ high confidence.
	for i := 0; i < 10; i++ {
		step(p, pc, true, true)
	}
	if tok := p.Estimate(pc, true); tok.Band != High {
		t.Fatalf("all-taken pattern band = %v", tok.Band)
	}
	// One not-taken in 8 ⇒ still "almost always taken" ⇒ high.
	step(p, pc, true, false)
	if tok := p.Estimate(pc, true); tok.Band != High {
		t.Fatalf("7/8-taken pattern band = %v", tok.Band)
	}
	// Alternating pattern ⇒ low confidence.
	for i := 0; i < 8; i++ {
		step(p, pc, true, i%2 == 0)
	}
	if tok := p.Estimate(pc, true); tok.Band != WeakLow {
		t.Fatalf("alternating pattern band = %v", tok.Band)
	}
}

func TestPatternPanics(t *testing.T) {
	for _, hlen := range []int{1, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPattern(0,%d) did not panic", hlen)
				}
			}()
			NewPattern(0, hlen)
		}()
	}
}

func TestOracleEstimator(t *testing.T) {
	o := NewOracle()
	o.ObserveNext(true)
	if tok := o.Estimate(0, true); tok.Band != StrongLow {
		t.Error("oracle did not flag known misprediction")
	}
	o.ObserveNext(false)
	if tok := o.Estimate(0, true); tok.Band != High {
		t.Error("oracle flagged known correct prediction")
	}
	o.Train(0, Token{}, false, true)
}

func TestAlwaysHigh(t *testing.T) {
	var a AlwaysHigh
	if tok := a.Estimate(0, true); tok.Band != High {
		t.Error("AlwaysHigh not high")
	}
	a.Train(0, Token{}, true, true)
	if a.Name() == "" {
		t.Error("name")
	}
}

func TestNamesNonEmpty(t *testing.T) {
	h := predictor.NewBaselineHybrid()
	for _, e := range []Estimator{
		NewEnhancedJRS(15),
		NewJRS(JRSConfig{Enhanced: false, Lambda: 7}),
		NewCIC(0),
		NewCICWith(CICConfig{Lambda: -75, Reversal: 0}),
		NewTNT(50),
		NewSmith(h),
		NewPattern(0, 0),
		NewOracle(),
		AlwaysHigh{},
	} {
		if e.Name() == "" {
			t.Errorf("%T empty name", e)
		}
	}
}

func BenchmarkCICEstimateTrain(b *testing.B) {
	c := NewCIC(0)
	for i := 0; i < b.N; i++ {
		pc := uint64(0x4000 + (i&127)<<2)
		tok := c.Estimate(pc, true)
		c.Train(pc, tok, i&7 == 0, i&3 != 0)
	}
}

func BenchmarkJRSEstimateTrain(b *testing.B) {
	j := NewEnhancedJRS(15)
	for i := 0; i < b.N; i++ {
		pc := uint64(0x4000 + (i&127)<<2)
		tok := j.Estimate(pc, true)
		j.Train(pc, tok, i&7 == 0, i&3 != 0)
	}
}
