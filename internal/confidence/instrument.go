package confidence

import "bce/internal/telemetry"

// instrumented decorates an Estimator so every Estimate and Train
// emits a telemetry event. One hook at the estimator boundary covers
// every caller — the pipeline's retire-time training, the
// speculative-training ablation, and functional (confidence-only)
// experiments alike.
type instrumented struct {
	est  Estimator
	sink telemetry.Sink
	now  func() uint64
}

// Instrument wraps est so estimates and training updates are reported
// to sink, stamped with the cycle returned by now (pass a closure over
// the simulation clock, or a constant func for functional runs). A nil
// sink returns est unchanged. If est needs trace ground truth
// (TraceOracle), the wrapper forwards it.
func Instrument(est Estimator, sink telemetry.Sink, now func() uint64) Estimator {
	if sink == nil || est == nil {
		return est
	}
	if now == nil {
		now = func() uint64 { return 0 }
	}
	in := &instrumented{est: est, sink: sink, now: now}
	if or, ok := est.(TraceOracle); ok {
		return &instrumentedOracle{instrumented: in, oracle: or}
	}
	return in
}

// Estimate implements Estimator.
func (in *instrumented) Estimate(pc uint64, predictedTaken bool) Token {
	tok := in.est.Estimate(pc, predictedTaken)
	in.sink.Emit(telemetry.Event{
		Kind:   telemetry.EvEstimate,
		Cycle:  in.now(),
		PC:     pc,
		Band:   uint8(tok.Band),
		Output: tok.Output,
		Taken:  predictedTaken,
	})
	return tok
}

// Train implements Estimator.
func (in *instrumented) Train(pc uint64, tok Token, mispredicted, taken bool) {
	in.est.Train(pc, tok, mispredicted, taken)
	in.sink.Emit(telemetry.Event{
		Kind:    telemetry.EvTrain,
		Cycle:   in.now(),
		PC:      pc,
		Band:    uint8(tok.Band),
		Output:  tok.Output,
		Taken:   taken,
		Mispred: mispredicted,
	})
}

// Name implements Estimator.
func (in *instrumented) Name() string { return in.est.Name() }

// instrumentedOracle additionally forwards trace ground truth.
type instrumentedOracle struct {
	*instrumented
	oracle TraceOracle
}

// ObserveNext implements TraceOracle.
func (in *instrumentedOracle) ObserveNext(mispredicted bool) { in.oracle.ObserveNext(mispredicted) }

var (
	_ Estimator   = (*instrumented)(nil)
	_ Estimator   = (*instrumentedOracle)(nil)
	_ TraceOracle = (*instrumentedOracle)(nil)
)
