package confidence

import "fmt"

// JRS is the resetting-counter confidence estimator of Jacobson,
// Rotenberg and Smith, in Grunwald et al.'s *enhanced* form: a table of
// miss-distance counters indexed by PC ⊕ global history with the
// current prediction folded into the index. A counter at or above the
// threshold λ means high confidence; counters are incremented on a
// correct prediction and reset to zero on a misprediction.
//
// The paper's configuration (§4) is 8K entries × 4-bit counters = 4 KB,
// matching the perceptron estimator's budget.
type JRS struct {
	ctrs     []uint8
	max      uint8
	lambda   uint8
	ghr      uint64
	hlen     int
	mask     uint64
	enhanced bool
}

// JRSConfig parameterizes a JRS estimator.
type JRSConfig struct {
	// Entries is the counter-table size (rounded up to a power of
	// two). Default 8192.
	Entries int
	// CounterBits is the counter width. Default 4.
	CounterBits int
	// Lambda is the high-confidence threshold: counter >= Lambda means
	// high confidence. The paper sweeps {3, 7, 11, 15}. Default 15.
	Lambda int
	// HistoryLen is the global-history length XORed into the index.
	// Default min(13, log2(Entries)).
	HistoryLen int
	// Enhanced folds the current prediction into the index (Grunwald
	// et al.'s enhanced JRS). Default true via NewEnhancedJRS.
	Enhanced bool
}

// NewEnhancedJRS returns the paper's baseline estimator: enhanced JRS
// with 8K 4-bit resetting counters and threshold lambda.
func NewEnhancedJRS(lambda int) *JRS {
	return NewJRS(JRSConfig{Lambda: lambda, Enhanced: true})
}

// NewJRS returns a JRS estimator with explicit configuration; zero
// fields take defaults.
func NewJRS(cfg JRSConfig) *JRS {
	if cfg.Entries == 0 {
		cfg.Entries = 8192
	}
	if cfg.CounterBits == 0 {
		cfg.CounterBits = 4
	}
	if cfg.CounterBits < 1 || cfg.CounterBits > 8 {
		panic(fmt.Sprintf("confidence: JRS counter bits %d outside [1,8]", cfg.CounterBits))
	}
	size := 1
	for size < cfg.Entries {
		size <<= 1
	}
	logSize := 0
	for 1<<uint(logSize) < size {
		logSize++
	}
	if cfg.HistoryLen == 0 {
		cfg.HistoryLen = logSize
		if cfg.HistoryLen > 13 {
			cfg.HistoryLen = 13
		}
	}
	max := uint8(1<<uint(cfg.CounterBits) - 1)
	if cfg.Lambda < 0 || cfg.Lambda > int(max) {
		panic(fmt.Sprintf("confidence: JRS lambda %d outside [0,%d]", cfg.Lambda, max))
	}
	return &JRS{
		ctrs:     make([]uint8, size),
		max:      max,
		lambda:   uint8(cfg.Lambda),
		hlen:     cfg.HistoryLen,
		mask:     uint64(size - 1),
		enhanced: cfg.Enhanced,
	}
}

// Lambda returns the high-confidence threshold.
func (j *JRS) Lambda() int { return int(j.lambda) }

// Entries returns the counter-table size.
func (j *JRS) Entries() int { return len(j.ctrs) }

// SizeBytes returns the hardware storage budget of the counter table.
func (j *JRS) SizeBytes() int {
	bits := 1
	for 1<<uint(bits) <= int(j.max) {
		bits++
	}
	return (len(j.ctrs)*bits + 7) / 8
}

func (j *JRS) index(pc uint64, predictedTaken bool) uint64 {
	h := j.ghr
	if j.enhanced {
		// Fold the prediction in as the newest history bit, per
		// Grunwald et al.: predict first, then include the predicted
		// direction in the table index.
		h <<= 1
		if predictedTaken {
			h |= 1
		}
	}
	return ((pc >> 2) ^ h) & j.mask
}

// Estimate implements Estimator. Counter >= λ ⇒ high confidence.
func (j *JRS) Estimate(pc uint64, predictedTaken bool) Token {
	c := j.ctrs[j.index(pc, predictedTaken)]
	band := High
	if c < j.lambda {
		band = WeakLow
	}
	return Token{Output: int(c), Band: band, Hist: j.ghr, PredTaken: predictedTaken}
}

// Train implements Estimator: increment the counter saturating on a
// correct prediction, reset to zero on a misprediction, then shift the
// outcome into the history register. Training replays the index from
// the token's history snapshot so that in-flight branches between
// Estimate and Train do not skew the indexing.
func (j *JRS) Train(pc uint64, tok Token, mispredicted, taken bool) {
	h := tok.Hist
	if j.enhanced {
		h <<= 1
		if tok.PredTaken {
			h |= 1
		}
	}
	i := ((pc >> 2) ^ h) & j.mask
	if mispredicted {
		j.ctrs[i] = 0
	} else if j.ctrs[i] < j.max {
		j.ctrs[i]++
	}
	j.ghr <<= 1
	if taken {
		j.ghr |= 1
	}
	j.ghr &= (1 << uint(j.hlen)) - 1
}

// Name implements Estimator.
func (j *JRS) Name() string {
	kind := "jrs"
	if j.enhanced {
		kind = "jrs-enhanced"
	}
	return fmt.Sprintf("%s(λ=%d)", kind, j.lambda)
}

var _ Estimator = (*JRS)(nil)
