package confidence

import (
	"runtime"
	"testing"
)

// allocBytes measures heap bytes allocated by f on this goroutine.
// TotalAlloc is monotonic, so no GC coordination is needed; the
// thresholds below leave room for unrelated background allocation.
func allocBytes(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestConstructionDoesNotMaterializeTable pins the sweep-engine
// contract behind core's timing-run cache keys: constructing an
// estimator and asking its Name()/SizeBytes() — all a cache hit ever
// does — must not allocate the perceptron weight array. The backing
// array (entries × (hlen+1) × 2 bytes, ~34 KB for the default CIC)
// materializes on first Estimate/Train only, so fully cached sweeps
// never pay table allocation per job.
func TestConstructionDoesNotMaterializeTable(t *testing.T) {
	const n = 50
	var sink int
	got := allocBytes(func() {
		for i := 0; i < n; i++ {
			c := NewCICWith(CICConfig{Lambda: -75, Reversal: 50})
			sink += len(c.Name()) + c.SizeBytes()
			p := NewTNT(75)
			sink += len(p.Name())
		}
	})
	_ = sink
	c := NewCIC(0)
	// One materialized table per constructed estimator would cost at
	// least n * SizeBytes; construction metadata is a few hundred
	// bytes. Split the difference with a generous noise margin.
	limit := uint64(n) * uint64(c.SizeBytes()) / 4
	if got > limit {
		t.Errorf("constructing %d estimators allocated %d bytes (> %d): Name/SizeBytes materialize the table",
			2*n, got, limit)
	}

	// And the table does materialize once the estimator is used.
	used := allocBytes(func() {
		est := NewCIC(0)
		est.Estimate(0x1234, true)
	})
	if used < uint64(c.SizeBytes()) {
		t.Errorf("first Estimate allocated only %d bytes, table (%d bytes) not materialized?",
			used, c.SizeBytes())
	}
}
