package confidence

import (
	"fmt"
	"math/bits"

	"bce/internal/predictor"
)

// CounterSource exposes the branch predictor's own saturating counter
// for a branch, which is what Smith's self-confidence estimator reads.
// *predictor.Hybrid implements it via SelectedCounter.
type CounterSource interface {
	SelectedCounter(pc uint64) (predictor.SatCounter, bool)
}

// Smith is the self-confidence estimator of Smith (1981), evaluated by
// Grunwald et al. (§2.3): a branch is high confidence when the
// predictor's own saturating counter sits at an extreme (strongly
// taken or strongly not-taken), low confidence otherwise. It adds no
// storage of its own.
type Smith struct {
	src CounterSource
}

// NewSmith returns a Smith estimator reading counters from src.
func NewSmith(src CounterSource) *Smith {
	if src == nil {
		panic("confidence: Smith needs a counter source")
	}
	return &Smith{src: src}
}

// Estimate implements Estimator.
func (s *Smith) Estimate(pc uint64, predictedTaken bool) Token {
	band := WeakLow
	out := 0
	if ctr, ok := s.src.SelectedCounter(pc); ok {
		out = int(ctr.V)
		if ctr.Strong() {
			band = High
		}
	}
	return Token{Output: out, Band: band, PredTaken: predictedTaken}
}

// Train implements Estimator. The counters belong to the predictor and
// train with it, so there is nothing to do here.
func (s *Smith) Train(pc uint64, tok Token, mispredicted, taken bool) {}

// Name implements Estimator.
func (s *Smith) Name() string { return "smith" }

var _ Estimator = (*Smith)(nil)

// Pattern is Tyson, Lick and Farrens's pattern-history confidence
// estimator (§2.3): per-branch local history, with a fixed set of
// "reliable" patterns classified high confidence — all taken, all
// not-taken, and the almost-always variants (exactly one minority
// outcome) — and everything else low confidence.
type Pattern struct {
	hist    []uint16
	hlen    int
	allOnes uint16
}

// NewPattern returns a pattern estimator with the given local-history
// table size and history length (defaults 1024 and 8 when zero).
func NewPattern(entries, hlen int) *Pattern {
	if entries == 0 {
		entries = 1024
	}
	if hlen == 0 {
		hlen = 8
	}
	if hlen < 2 || hlen > 16 {
		panic(fmt.Sprintf("confidence: pattern history length %d outside [2,16]", hlen))
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	return &Pattern{
		hist:    make([]uint16, size),
		hlen:    hlen,
		allOnes: uint16(1<<uint(hlen)) - 1,
	}
}

func (p *Pattern) index(pc uint64) int { return int((pc >> 2) & uint64(len(p.hist)-1)) }

// Estimate implements Estimator: high confidence only for the fixed
// reliable patterns.
func (p *Pattern) Estimate(pc uint64, predictedTaken bool) Token {
	pat := p.hist[p.index(pc)]
	ones := bits.OnesCount16(pat)
	band := WeakLow
	if ones == 0 || ones == 1 || ones == p.hlen || ones == p.hlen-1 {
		band = High
	}
	return Token{Output: int(pat), Band: band, Hist: uint64(pat), PredTaken: predictedTaken}
}

// Train implements Estimator: shift the outcome into the branch's
// local history.
func (p *Pattern) Train(pc uint64, tok Token, mispredicted, taken bool) {
	i := p.index(pc)
	pat := p.hist[i] << 1
	if taken {
		pat |= 1
	}
	p.hist[i] = pat & p.allOnes
}

// Name implements Estimator.
func (p *Pattern) Name() string { return fmt.Sprintf("pattern-%d/%d", len(p.hist), p.hlen) }

var _ Estimator = (*Pattern)(nil)
