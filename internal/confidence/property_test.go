package confidence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests: every estimator must keep its band assignment
// consistent with its declared thresholds and raw output, no matter
// what branch stream it has seen.

// driveRandom feeds an estimator a deterministic pseudo-random branch
// stream, checking the invariant after every estimate.
func driveRandom(t *testing.T, est Estimator, steps int, seed int64, check func(tok Token) string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		pc := uint64(rng.Intn(512)) * 4
		predTaken := rng.Intn(2) == 0
		tok := est.Estimate(pc, predTaken)
		if msg := check(tok); msg != "" {
			t.Fatalf("%s: step %d: %s (token %+v)", est.Name(), i, msg, tok)
		}
		misp := rng.Intn(4) == 0
		taken := predTaken != misp
		est.Train(pc, tok, misp, taken)
	}
}

// TestCICBandMatchesThresholdsProperty checks that the CIC band is a
// pure function of the raw output and the two thresholds: StrongLow
// iff y >= reversal, WeakLow iff lambda <= y < reversal, High iff
// y < lambda — for arbitrary (λ, reversal) pairs and branch streams.
func TestCICBandMatchesThresholdsProperty(t *testing.T) {
	prop := func(lambdaRaw, revRaw int8, seed int64) bool {
		lambda := int(lambdaRaw)
		rev := int(revRaw)
		if rev <= lambda {
			rev = lambda + 1 // reversal threshold must sit above λ
		}
		est := NewCICWith(CICConfig{Lambda: lambda, Reversal: rev})
		ok := true
		driveRandom(t, est, 400, seed, func(tok Token) string {
			want := High
			switch {
			case tok.Output >= rev:
				want = StrongLow
			case tok.Output >= lambda:
				want = WeakLow
			}
			if tok.Band != want {
				ok = false
				return "band mismatch"
			}
			return ""
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 50,
		Rand:     rand.New(rand.NewSource(11)),
	}); err != nil {
		t.Error(err)
	}
}

// TestCICOutputWithinGeometryBound checks the raw output never exceeds
// the theoretical maximum (hlen+1 weights at full saturation).
func TestCICOutputWithinGeometryBound(t *testing.T) {
	est := NewCIC(0)
	_, hlen, bits := est.Geometry()
	bound := (hlen + 1) * (1 << (bits - 1)) // (n+1)·|min|
	driveRandom(t, est, 3000, 17, func(tok Token) string {
		if tok.Output > bound || tok.Output < -bound {
			return "output outside geometry bound"
		}
		return ""
	})
}

// TestCICReversalDisabledNeverStrongLow checks NewCIC (reversal
// disabled) can never emit the StrongLow band: DisableReversal must be
// unreachable by any perceptron output.
func TestCICReversalDisabledNeverStrongLow(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		est := NewCIC(0)
		driveRandom(t, est, 1000, seed, func(tok Token) string {
			if tok.Band == StrongLow {
				return "StrongLow with reversal disabled"
			}
			return ""
		})
	}
}

// TestBinaryEstimatorsOnlyTwoBands checks the documented protocol
// contract: binary estimators (JRS, Smith, pattern) only ever produce
// High and WeakLow — StrongLow is reserved for multi-valued outputs.
func TestBinaryEstimatorsOnlyTwoBands(t *testing.T) {
	ests := []Estimator{
		NewEnhancedJRS(15),
		NewJRS(JRSConfig{Lambda: 7, Enhanced: false}),
		NewPattern(0, 0),
	}
	for _, est := range ests {
		for seed := int64(0); seed < 3; seed++ {
			driveRandom(t, est, 1000, seed, func(tok Token) string {
				if tok.Band != High && tok.Band != WeakLow {
					return "binary estimator emitted " + tok.Band.String()
				}
				return ""
			})
		}
	}
}

// TestTNTBandMatchesThresholdProperty checks perceptron_tnt classifies
// low-confidence exactly when |y| <= λ (an agreeing-history magnitude
// test, unlike the CIC's signed test).
func TestTNTBandMatchesThresholdProperty(t *testing.T) {
	prop := func(lambdaRaw uint8, seed int64) bool {
		lambda := int(lambdaRaw)
		est := NewTNT(lambda)
		ok := true
		driveRandom(t, est, 400, seed, func(tok Token) string {
			y := tok.Output
			if y < 0 {
				y = -y
			}
			low := y <= lambda
			if low != tok.Band.Low() {
				ok = false
				return "band disagrees with |y| vs λ"
			}
			if tok.Band == StrongLow {
				ok = false
				return "tnt emitted StrongLow"
			}
			return ""
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 50,
		Rand:     rand.New(rand.NewSource(13)),
	}); err != nil {
		t.Error(err)
	}
}
