package confidence

import "fmt"

// Spec is a declarative, JSON-serializable estimator description: the
// wire-expressible counterpart of the constructor closures the
// experiment sweeps traditionally carry. A Spec travels inside
// distributed job batches (internal/dist), so it must round-trip
// through JSON without losing any knob that changes simulated
// behaviour — exactly the knobs Name() encodes into cache keys.
//
// Exactly one of the config pointers matching Kind must be set (none
// for KindNone). Use the Spec* constructors rather than building the
// struct by hand.
type Spec struct {
	// Kind selects the estimator family: "none", "jrs", "cic", "tnt".
	Kind string `json:"kind"`
	// JRS, CIC and TNT carry the family's full configuration. The
	// config structs already default zero fields in their constructors;
	// a Spec freezes the caller's literal values and lets New* apply
	// the same defaulting on every machine, so a Spec built on the
	// coordinator and one decoded on a worker construct byte-identical
	// estimators.
	JRS *JRSConfig `json:"jrs,omitempty"`
	CIC *CICConfig `json:"cic,omitempty"`
	TNT *TNTConfig `json:"tnt,omitempty"`
}

// Spec kinds.
const (
	KindNone = "none"
	KindJRS  = "jrs"
	KindCIC  = "cic"
	KindTNT  = "tnt"
)

// SpecNone describes "no estimator" (the ungated baseline runs).
func SpecNone() *Spec { return &Spec{Kind: KindNone} }

// SpecJRS describes the paper's baseline estimator: enhanced JRS with
// default geometry and threshold lambda (NewEnhancedJRS).
func SpecJRS(lambda int) *Spec {
	return &Spec{Kind: KindJRS, JRS: &JRSConfig{Lambda: lambda, Enhanced: true}}
}

// SpecJRSWith describes a fully configured JRS estimator (NewJRS).
func SpecJRSWith(cfg JRSConfig) *Spec { return &Spec{Kind: KindJRS, JRS: &cfg} }

// SpecCIC describes the paper's default 4 KB perceptron estimator with
// threshold lambda and reversal disabled (NewCIC).
func SpecCIC(lambda int) *Spec {
	return &Spec{Kind: KindCIC, CIC: &CICConfig{Lambda: lambda, Reversal: DisableReversal}}
}

// SpecCICWith describes a fully configured CIC estimator (NewCICWith).
func SpecCICWith(cfg CICConfig) *Spec { return &Spec{Kind: KindCIC, CIC: &cfg} }

// SpecTNT describes a perceptron_tnt estimator with default geometry
// and |y| threshold lambda (NewTNT).
func SpecTNT(lambda int) *Spec {
	return &Spec{Kind: KindTNT, TNT: &TNTConfig{Lambda: lambda}}
}

// SpecTNTWith describes a fully configured TNT estimator (NewTNTWith).
func SpecTNTWith(cfg TNTConfig) *Spec { return &Spec{Kind: KindTNT, TNT: &cfg} }

// Validate checks that the Spec is internally consistent: a known
// kind, the matching config present, and the others absent. A nil Spec
// is valid and means "no estimator".
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	set := 0
	for _, p := range []bool{s.JRS != nil, s.CIC != nil, s.TNT != nil} {
		if p {
			set++
		}
	}
	switch s.Kind {
	case KindNone:
		if set != 0 {
			return fmt.Errorf("confidence: spec kind %q must carry no config", s.Kind)
		}
	case KindJRS:
		if s.JRS == nil || set != 1 {
			return fmt.Errorf("confidence: spec kind %q needs exactly the jrs config", s.Kind)
		}
		if s.JRS.CounterBits < 0 || s.JRS.CounterBits > 8 {
			return fmt.Errorf("confidence: spec jrs counter bits %d outside [0,8]", s.JRS.CounterBits)
		}
		// Lambda must fit the counter range (NewJRS panics otherwise);
		// apply the constructor's zero-means-default before bounding.
		bits := s.JRS.CounterBits
		if bits == 0 {
			bits = 4
		}
		if maxL := 1<<bits - 1; s.JRS.Lambda < 0 || s.JRS.Lambda > maxL {
			return fmt.Errorf("confidence: spec jrs lambda %d outside [0,%d]", s.JRS.Lambda, maxL)
		}
		if err := checkGeometry("jrs", s.JRS.Entries, s.JRS.HistoryLen, 0); err != nil {
			return err
		}
	case KindCIC:
		if s.CIC == nil || set != 1 {
			return fmt.Errorf("confidence: spec kind %q needs exactly the cic config", s.Kind)
		}
		if err := checkGeometry("cic", s.CIC.Entries, s.CIC.HistoryLen, s.CIC.WeightBits); err != nil {
			return err
		}
	case KindTNT:
		if s.TNT == nil || set != 1 {
			return fmt.Errorf("confidence: spec kind %q needs exactly the tnt config", s.Kind)
		}
		if err := checkGeometry("tnt", s.TNT.Entries, s.TNT.HistoryLen, s.TNT.WeightBits); err != nil {
			return err
		}
	default:
		return fmt.Errorf("confidence: unknown spec kind %q", s.Kind)
	}
	return nil
}

// maxSpecEntries bounds table sizes a Spec may request. Specs arrive
// over the wire from distributed batches, so hostile or corrupt values
// must fail validation instead of panicking a constructor or
// allocating an absurd table. The paper's largest geometry is 8K
// entries; a megabyte-scale table is already far beyond any sweep.
const maxSpecEntries = 1 << 20

// checkGeometry validates the table-geometry knobs shared by the
// estimator families. Zero always means "use the constructor default".
func checkGeometry(kind string, entries, histLen, weightBits int) error {
	if entries < 0 || entries > maxSpecEntries {
		return fmt.Errorf("confidence: spec %s entries %d outside [0,%d]", kind, entries, maxSpecEntries)
	}
	if histLen < 0 || histLen > 64 {
		return fmt.Errorf("confidence: spec %s history %d outside [0,64]", kind, histLen)
	}
	if weightBits != 0 && (weightBits < 2 || weightBits > 15) {
		return fmt.Errorf("confidence: spec %s weight bits %d outside [2,15]", kind, weightBits)
	}
	return nil
}

// Build constructs the described estimator. A nil Spec and KindNone
// both return (nil, nil): the caller runs without an estimator.
func (s *Spec) Build() (Estimator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s == nil || s.Kind == KindNone {
		return nil, nil
	}
	switch s.Kind {
	case KindJRS:
		return NewJRS(*s.JRS), nil
	case KindCIC:
		return NewCICWith(*s.CIC), nil
	default: // KindTNT; Validate rejected everything else
		return NewTNTWith(*s.TNT), nil
	}
}
