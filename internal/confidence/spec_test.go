package confidence

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSpecMatchesClosureConstructors pins the property distribution
// depends on: a Spec and the traditional constructor call it describes
// build estimators with identical Name()s — and Name() is what cache
// keys hash, so spec-built and closure-built jobs share keys.
func TestSpecMatchesClosureConstructors(t *testing.T) {
	cases := []struct {
		label string
		spec  *Spec
		want  Estimator
	}{
		{"jrs-enhanced", SpecJRS(14), NewEnhancedJRS(14)},
		{"jrs-custom", SpecJRSWith(JRSConfig{Entries: 512, Lambda: 3}), NewJRS(JRSConfig{Entries: 512, Lambda: 3})},
		{"cic-default", SpecCIC(0), NewCIC(0)},
		{"cic-negative-lambda", SpecCIC(-75), NewCIC(-75)},
		{"cic-custom", SpecCICWith(CICConfig{Entries: 2048, HistoryLen: 20, Lambda: 10, Reversal: 50}),
			NewCICWith(CICConfig{Entries: 2048, HistoryLen: 20, Lambda: 10, Reversal: 50})},
		{"tnt-default", SpecTNT(75), NewTNT(75)},
		{"tnt-custom", SpecTNTWith(TNTConfig{Entries: 1024, Lambda: 30}), NewTNTWith(TNTConfig{Entries: 1024, Lambda: 30})},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			est, err := tc.spec.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if got, want := est.Name(), tc.want.Name(); got != want {
				t.Errorf("spec-built name %q != closure-built name %q", got, want)
			}
		})
	}
}

func TestSpecNoneAndNil(t *testing.T) {
	for _, s := range []*Spec{nil, SpecNone()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%v.Validate() = %v", s, err)
		}
		est, err := s.Build()
		if err != nil || est != nil {
			t.Errorf("%v.Build() = %v, %v; want nil, nil", s, est, err)
		}
	}
}

// TestSpecJSONRoundTrip: a Spec must survive the wire without changing
// the estimator it describes.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range []*Spec{
		SpecJRS(7),
		SpecCICWith(CICConfig{Entries: 4096, HistoryLen: 34, WeightBits: 8, Lambda: -75, Reversal: 50, TrainThreshold: 75}),
		SpecTNT(75),
		SpecNone(),
	} {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Build()
		if err != nil {
			t.Fatalf("round-tripped spec invalid: %v\n%s", err, data)
		}
		switch {
		case a == nil && b == nil:
		case a == nil || b == nil:
			t.Errorf("round trip changed nil-ness: %s", data)
		case a.Name() != b.Name():
			t.Errorf("round trip changed estimator: %q -> %q", a.Name(), b.Name())
		}
	}
}

// TestSpecValidateRejects covers the hostile-input guards: these
// configurations must fail validation, never panic a constructor.
func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		label string
		spec  *Spec
		want  string
	}{
		{"unknown kind", &Spec{Kind: "quantum"}, "unknown"},
		{"kind none with config", &Spec{Kind: KindNone, CIC: &CICConfig{}}, "no config"},
		{"kind cic missing config", &Spec{Kind: KindCIC}, "needs exactly"},
		{"two configs", &Spec{Kind: KindCIC, CIC: &CICConfig{}, TNT: &TNTConfig{}}, "needs exactly"},
		{"negative entries", SpecCICWith(CICConfig{Entries: -1}), "entries"},
		{"huge entries", SpecCICWith(CICConfig{Entries: 1 << 21}), "entries"},
		{"history too long", SpecTNTWith(TNTConfig{HistoryLen: 65}), "history"},
		{"negative history", SpecJRSWith(JRSConfig{HistoryLen: -1}), "history"},
		{"weight bits too small", SpecCICWith(CICConfig{WeightBits: 1}), "weight bits"},
		{"weight bits too big", SpecCICWith(CICConfig{WeightBits: 16}), "weight bits"},
		{"jrs counter bits", SpecJRSWith(JRSConfig{CounterBits: 9}), "counter bits"},
		{"jrs lambda negative", SpecJRSWith(JRSConfig{Lambda: -2}), "lambda"},
		{"jrs lambda over counter range", SpecJRSWith(JRSConfig{CounterBits: 2, Lambda: 4}), "lambda"},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
			if _, err := tc.spec.Build(); err == nil {
				t.Error("Build accepted an invalid spec")
			}
		})
	}
}

// TestSpecBuildDoesNotPanic sweeps the validation boundary: any spec
// that passes Validate must construct without panicking (the
// constructors panic on geometry they reject; Validate must be at
// least as strict).
func TestSpecBuildDoesNotPanic(t *testing.T) {
	for entries := -1; entries <= 2; entries++ {
		for hist := -1; hist <= 2; hist++ {
			for bits := -1; bits <= 3; bits++ {
				spec := SpecCICWith(CICConfig{Entries: entries, HistoryLen: hist, WeightBits: bits})
				if spec.Validate() != nil {
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("Build panicked for validated spec entries=%d hist=%d bits=%d: %v",
								entries, hist, bits, r)
						}
					}()
					spec.Build() //nolint:errcheck // panic is the failure mode under test
				}()
			}
		}
	}
}
