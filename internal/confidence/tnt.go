package confidence

import (
	"fmt"

	"bce/internal/perceptron"
)

// PerceptronTNT is the confidence scheme Jimenez & Lin suggested and
// the paper evaluates as a baseline (§5.3, labeled perceptron_tnt): a
// perceptron *predictor* trained on taken/not-taken outcomes whose
// output magnitude |y| is read as certainty. The closer |y| is to
// zero, the lower the confidence:
//
//	|y| <= Lambda ⇒ low confidence
//	|y| >  Lambda ⇒ high confidence
//
// It has the same default 4 KB geometry as PerceptronCIC so the two
// training schemes are compared at equal budget.
type PerceptronTNT struct {
	tbl    *perceptron.Table
	ghr    uint64
	hlen   int
	lambda int
	theta  int
}

// TNTConfig parameterizes a PerceptronTNT.
type TNTConfig struct {
	// Entries, HistoryLen, WeightBits set the table geometry; defaults
	// 128, 32, 8.
	Entries    int
	HistoryLen int
	WeightBits int
	// Lambda is the confidence threshold on |y|. Default 75.
	Lambda int
	// Theta is the predictor training threshold; default ⌊1.93·h+14⌋.
	Theta int
}

// NewTNT returns a perceptron_tnt estimator with the default geometry
// and the given |y| threshold.
func NewTNT(lambda int) *PerceptronTNT {
	return NewTNTWith(TNTConfig{Lambda: lambda})
}

// NewTNTWith returns an estimator with explicit configuration; zero
// fields take defaults.
func NewTNTWith(cfg TNTConfig) *PerceptronTNT {
	if cfg.Entries == 0 {
		cfg.Entries = 128
	}
	if cfg.HistoryLen == 0 {
		cfg.HistoryLen = 32
	}
	if cfg.WeightBits == 0 {
		cfg.WeightBits = 8
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 75
	}
	if cfg.Theta == 0 {
		cfg.Theta = int(1.93*float64(cfg.HistoryLen) + 14)
	}
	return &PerceptronTNT{
		tbl:    perceptron.NewTable(cfg.Entries, cfg.HistoryLen, cfg.WeightBits),
		hlen:   cfg.HistoryLen,
		lambda: cfg.Lambda,
		theta:  cfg.Theta,
	}
}

// Lambda returns the |y| confidence threshold.
func (p *PerceptronTNT) Lambda() int { return p.lambda }

// Output returns the raw perceptron output for pc against the current
// history (density Figures 6-7).
func (p *PerceptronTNT) Output(pc uint64) int {
	return p.tbl.Output(pc, p.ghr)
}

// Estimate implements Estimator: low confidence iff |y| <= λ. TNT has
// no meaningful strongly-low band — an output near zero carries no
// information about *which* direction is wrong — so it only produces
// High and WeakLow.
func (p *PerceptronTNT) Estimate(pc uint64, predictedTaken bool) Token {
	y := p.tbl.Output(pc, p.ghr)
	band := High
	if abs(y) <= p.lambda {
		band = WeakLow
	}
	return Token{Output: y, Band: band, Hist: p.ghr, PredTaken: predictedTaken}
}

// Train implements Estimator with the standard Jimenez/Lin predictor
// update: train on the branch *direction* when the direction guess was
// wrong or |y| <= θ.
func (p *PerceptronTNT) Train(pc uint64, tok Token, mispredicted, taken bool) {
	y := tok.Output
	wrongDir := (y >= 0) != taken
	if wrongDir || abs(y) <= p.theta {
		t := -1
		if taken {
			t = 1
		}
		p.tbl.Train(pc, tok.Hist, t)
	}
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
	if p.hlen < 64 {
		p.ghr &= (1 << uint(p.hlen)) - 1
	}
}

// Name implements Estimator.
func (p *PerceptronTNT) Name() string {
	return fmt.Sprintf("perceptron_tnt-P%dW%dH%d(λ=%d)",
		p.tbl.Entries(), p.tbl.WeightBits(), p.tbl.HistoryLen(), p.lambda)
}

var _ Estimator = (*PerceptronTNT)(nil)
