// Package config defines the machine models the paper evaluates: the
// baseline 4-wide 40-cycle deep pipeline (Table 1), and the 4-wide and
// 8-wide 20-cycle variants used in Table 2 and §5.5.
package config

import "fmt"

// Machine is the full timing-model parameter set. All fields must be
// positive; Validate checks.
type Machine struct {
	// Name labels the configuration in reports ("40c4w", …).
	Name string
	// Depth is the nominal branch-misprediction pipeline length in
	// cycles (the paper's "20-cycle" / "40-cycle" label).
	Depth int
	// FetchWidth, DispatchWidth, IssueWidth and RetireWidth are the
	// per-cycle stage bandwidths (all 4 on the baseline machine).
	FetchWidth, DispatchWidth, IssueWidth, RetireWidth int
	// FrontendDepth is the fetch-to-dispatch latency in cycles.
	FrontendDepth int
	// BranchResolveExtra is the execute-pipeline depth a conditional
	// branch traverses after issue before it can redirect the front
	// end. FrontendDepth + queueing + BranchResolveExtra + the refill
	// make up the nominal Depth-cycle misprediction penalty; keeping
	// the front end short and the resolution deep is what lets
	// wrong-path work dispatch and execute during the resolution
	// shadow, as on real deep pipelines.
	BranchResolveExtra int
	// BranchPerCycle caps conditional-branch predictions per fetch
	// cycle.
	BranchPerCycle int
	// ROB is the reorder-buffer capacity in uops.
	ROB int
	// LoadBufs and StoreBufs are the load/store buffer sizes.
	LoadBufs, StoreBufs int
	// IntSched, MemSched and FPSched are the scheduling-window sizes
	// per class (Table 1: 48 int, 24 mem, 56 fp).
	IntSched, MemSched, FPSched int
	// IntUnits, MemUnits and FPUnits are execution-unit counts.
	IntUnits, MemUnits, FPUnits int
	// TraceCacheUops is the trace-cache capacity (Table 1: 12K uops);
	// TraceCacheAssoc its associativity; TCMissPenalty the fetch
	// bubble on a trace-cache miss.
	TraceCacheUops  int
	TraceCacheAssoc int
	TCMissPenalty   int
}

// Baseline40x4 is the paper's baseline processor: 4-wide, aggressive
// 40-cycle pipeline, Table 1 resources.
func Baseline40x4() Machine {
	return Machine{
		Name:  "40c4w",
		Depth: 40, FrontendDepth: 10, BranchResolveExtra: 36,
		FetchWidth: 4, DispatchWidth: 4, IssueWidth: 6, RetireWidth: 4,
		BranchPerCycle: 2,
		ROB:            128, LoadBufs: 48, StoreBufs: 32,
		IntSched: 48, MemSched: 24, FPSched: 56,
		IntUnits: 3, MemUnits: 2, FPUnits: 1,
		TraceCacheUops: 12 * 1024, TraceCacheAssoc: 8, TCMissPenalty: 3,
	}
}

// Mid20x4 is the 4-wide 20-cycle machine of Table 2's first column.
func Mid20x4() Machine {
	m := Baseline40x4()
	m.Name = "20c4w"
	m.Depth = 20
	m.FrontendDepth = 6
	m.BranchResolveExtra = 10
	return m
}

// Wide20x8 is the futuristic 8-wide 20-cycle machine of §5.5
// (Figure 9), with resources scaled for the width.
func Wide20x8() Machine {
	return Machine{
		Name:  "20c8w",
		Depth: 20, FrontendDepth: 6, BranchResolveExtra: 10,
		FetchWidth: 8, DispatchWidth: 8, IssueWidth: 12, RetireWidth: 8,
		BranchPerCycle: 3,
		ROB:            256, LoadBufs: 96, StoreBufs: 64,
		IntSched: 96, MemSched: 48, FPSched: 112,
		IntUnits: 6, MemUnits: 4, FPUnits: 2,
		TraceCacheUops: 12 * 1024, TraceCacheAssoc: 8, TCMissPenalty: 3,
	}
}

// ByName returns a machine model by its report label.
func ByName(name string) (Machine, error) {
	switch name {
	case "40c4w":
		return Baseline40x4(), nil
	case "20c4w":
		return Mid20x4(), nil
	case "20c8w":
		return Wide20x8(), nil
	}
	return Machine{}, fmt.Errorf("config: unknown machine %q (have 40c4w, 20c4w, 20c8w)", name)
}

// Validate reports the first invalid field, or nil.
func (m Machine) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"Depth", m.Depth}, {"FetchWidth", m.FetchWidth},
		{"DispatchWidth", m.DispatchWidth}, {"IssueWidth", m.IssueWidth},
		{"RetireWidth", m.RetireWidth}, {"FrontendDepth", m.FrontendDepth},
		{"BranchPerCycle", m.BranchPerCycle}, {"ROB", m.ROB},
		{"LoadBufs", m.LoadBufs}, {"StoreBufs", m.StoreBufs},
		{"IntSched", m.IntSched}, {"MemSched", m.MemSched},
		{"FPSched", m.FPSched}, {"IntUnits", m.IntUnits},
		{"MemUnits", m.MemUnits}, {"FPUnits", m.FPUnits},
		{"TraceCacheUops", m.TraceCacheUops},
		{"TraceCacheAssoc", m.TraceCacheAssoc},
		{"TCMissPenalty", m.TCMissPenalty},
	}
	for _, c := range checks {
		if c.v < 1 {
			return fmt.Errorf("config %q: %s = %d, must be >= 1", m.Name, c.name, c.v)
		}
	}
	if m.BranchResolveExtra < 0 {
		return fmt.Errorf("config %q: BranchResolveExtra = %d, must be >= 0", m.Name, m.BranchResolveExtra)
	}
	if m.FrontendDepth >= m.Depth {
		return fmt.Errorf("config %q: FrontendDepth %d >= Depth %d", m.Name, m.FrontendDepth, m.Depth)
	}
	return nil
}
