package config

import "testing"

func TestMachinesValid(t *testing.T) {
	for _, m := range []Machine{Baseline40x4(), Mid20x4(), Wide20x8()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestBaselineMatchesTable1(t *testing.T) {
	m := Baseline40x4()
	if m.FetchWidth != 4 || m.RetireWidth != 4 {
		t.Error("baseline is not 4-wide")
	}
	if m.ROB != 128 || m.LoadBufs != 48 || m.StoreBufs != 32 {
		t.Error("baseline buffers do not match Table 1")
	}
	if m.IntSched != 48 || m.MemSched != 24 || m.FPSched != 56 {
		t.Error("baseline schedulers do not match Table 1")
	}
	if m.IntUnits != 3 || m.MemUnits != 2 || m.FPUnits != 1 {
		t.Error("baseline units do not match Table 1")
	}
	if m.TraceCacheUops != 12*1024 || m.TraceCacheAssoc != 8 {
		t.Error("baseline trace cache does not match Table 1")
	}
	if m.Depth != 40 {
		t.Error("baseline depth")
	}
}

func TestVariants(t *testing.T) {
	if Mid20x4().Depth != 20 || Mid20x4().FetchWidth != 4 {
		t.Error("20c4w wrong shape")
	}
	w := Wide20x8()
	if w.Depth != 20 || w.FetchWidth != 8 || w.ROB != 256 {
		t.Error("20c8w wrong shape")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"40c4w", "20c4w", "20c8w"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%s): %v %v", name, m.Name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) did not error")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	m := Baseline40x4()
	m.ROB = 0
	if m.Validate() == nil {
		t.Error("zero ROB passed validation")
	}
	m = Baseline40x4()
	m.FrontendDepth = m.Depth
	if m.Validate() == nil {
		t.Error("FrontendDepth >= Depth passed validation")
	}
}
