package core

import (
	"context"
	"fmt"
	"strings"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/runner"
	"bce/internal/stats"
	"bce/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out beyond the
// paper's own tables: which design choices of the CIC estimator
// actually carry its results.

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Label string
	// PVN and Spec are the confidence metrics (functional runs).
	PVN, Spec float64
	// U and P are gating metrics when the ablation is a timing run
	// (zero for functional-only ablations).
	U, P float64
}

// AblationResult is a titled list of rows.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// String renders the ablation table.
func (a *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", a.Title)
	fmt.Fprintf(&b, "%-34s %8s %8s %8s %8s\n", "config", "PVN%", "Spec%", "U%", "P%")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-34s %8.1f %8.1f %8.1f %8.1f\n", r.Label, r.PVN, r.Spec, r.U, r.P)
	}
	return b.String()
}

// AblateTrainingSignal reruns Table 3's comparison with every training
// signal in the repository: CIC (correct/incorrect), TNT
// (taken/not-taken), plus the fused variants — quantifying §5.3's
// claim that the training signal, not the perceptron itself, is what
// makes the estimator work.
func AblateTrainingSignal(sz Sizes) (*AblationResult, error) {
	configs := []struct {
		label string
		mk    func() confidence.Estimator
	}{
		{"cic (correct/incorrect)", func() confidence.Estimator { return confidence.NewCIC(0) }},
		{"tnt λ=25 (taken/not-taken)", func() confidence.Estimator { return confidence.NewTNT(25) }},
		{"tnt λ=75 (taken/not-taken)", func() confidence.Estimator { return confidence.NewTNT(75) }},
		{"tnt λ=150 (taken/not-taken)", func() confidence.Estimator { return confidence.NewTNT(150) }},
		{"fused-both(jrs15, cic0)", func() confidence.Estimator {
			return confidence.NewFused(confidence.NewEnhancedJRS(15), confidence.NewCIC(0), confidence.FuseBoth)
		}},
		{"fused-either(jrs15, cic0)", func() confidence.Estimator {
			return confidence.NewFused(confidence.NewEnhancedJRS(15), confidence.NewCIC(0), confidence.FuseEither)
		}},
	}
	res := &AblationResult{Title: "training signal and estimator fusion (functional)"}
	for _, cfg := range configs {
		c, err := AverageConfusionSized(nil, cfg.mk, sz)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Label: cfg.label, PVN: 100 * c.PVN(), Spec: 100 * c.Spec(),
		})
	}
	return res, nil
}

// AblateReversalSource compares branch reversal driven by the CIC
// strongly-low band against naive "reverse everything flagged"
// policies built from the binary estimators — the experiment behind
// §5.3's conclusion that only the multi-valued CIC output supports
// reversal. Reported as U/P on the baseline machine.
func AblateReversalSource(sz Sizes) (*AblationResult, error) {
	variants := []variant{
		{
			Label: "cic bands (reverse y>=50, gate [-75,50))",
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					Estimator: func() confidence.Estimator {
						return confidence.NewCICWith(confidence.CICConfig{Lambda: -75, Reversal: 50})
					},
					Gating: gating.PL(2), Reversal: true,
				}
			},
		},
		{
			Label: "reverse all low-conf jrs λ=15",
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					Estimator: func() confidence.Estimator {
						return confidence.PromoteLow{Inner: confidence.NewEnhancedJRS(15)}
					},
					Reversal: true,
				}
			},
		},
		{
			Label: "reverse all low-conf tnt λ=75",
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					Estimator: func() confidence.Estimator {
						return confidence.PromoteLow{Inner: confidence.NewTNT(75)}
					},
					Reversal: true,
				}
			},
		},
		{
			Label: "gating-only (demoted cic bands)",
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					Estimator: func() confidence.Estimator {
						return confidence.DemoteStrong{Inner: confidence.NewCICWith(
							confidence.CICConfig{Lambda: -75, Reversal: 50})}
					},
					Gating: gating.PL(2),
				}
			},
		},
	}
	rows, err := gatingSweep(sz, func(bench string) TimingSpec {
		return TimingSpec{Bench: bench, Machine: config.Baseline40x4()}
	}, variants)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "what drives branch reversal (timing, 40c4w)"}
	for _, r := range rows {
		res.Rows = append(res.Rows, AblationRow{Label: r.Label, U: r.U, P: r.P})
	}
	return res, nil
}

// AblateTrainingSite compares retire-time confidence training (the
// paper's §3 choice) against speculative fetch-time training, using
// the same estimator and gating configuration.
func AblateTrainingSite(sz Sizes) (*AblationResult, error) {
	type acc struct {
		u, p, pvn, spec float64
		n               int
	}
	perBench, err := mapBench(func(ctx context.Context, bench string) ([2]acc, error) {
		var out [2]acc
		base, err := runTiming(ctx, TimingSpec{Bench: bench, Machine: config.Baseline40x4()}, sz)
		if err != nil {
			return out, err
		}
		for i, spec := range []bool{false, true} {
			s := TimingSpec{
				Bench: bench, Machine: config.Baseline40x4(),
				Estimator: func() confidence.Estimator { return confidence.NewCIC(0) },
				Gating:    gating.PL(1),
			}
			r, err := runTimingSpecTrain(ctx, s, sz, spec)
			if err != nil {
				return out, err
			}
			out[i] = acc{
				u:    r.UopReductionPercent(base),
				p:    r.PerfLossPercent(base),
				pvn:  100 * r.Confusion.PVN(),
				spec: 100 * r.Confusion.Spec(),
				n:    1,
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var retireAcc, fetchAcc acc
	for _, pair := range perBench {
		for i, a := range []*acc{&retireAcc, &fetchAcc} {
			a.u += pair[i].u
			a.p += pair[i].p
			a.pvn += pair[i].pvn
			a.spec += pair[i].spec
			a.n += pair[i].n
		}
	}
	mk := func(label string, a acc) AblationRow {
		n := float64(a.n)
		return AblationRow{Label: label, PVN: a.pvn / n, Spec: a.spec / n, U: a.u / n, P: a.p / n}
	}
	return &AblationResult{
		Title: "confidence training site (CIC λ=0, PL1, 40c4w)",
		Rows: []AblationRow{
			mk("train at retirement (paper)", retireAcc),
			mk("train speculatively at fetch", fetchAcc),
		},
	}, nil
}

// AblateTrainThreshold sweeps the CIC training threshold T, the one
// free parameter of the paper's update rule.
func AblateTrainThreshold(sz Sizes) (*AblationResult, error) {
	res := &AblationResult{Title: "CIC training threshold T (functional, λ=0)"}
	for _, T := range []int{5, 20, 50, 75, 120, 200} {
		tt := T
		c, err := AverageConfusionSized(nil, func() confidence.Estimator {
			return confidence.NewCICWith(confidence.CICConfig{
				Lambda: 0, Reversal: confidence.DisableReversal, TrainThreshold: tt,
			})
		}, sz)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Label: fmt.Sprintf("T=%d", tt), PVN: 100 * c.PVN(), Spec: 100 * c.Spec(),
		})
	}
	return res, nil
}

// AblateHistoryLength sweeps the CIC history length at fixed table
// budget orientation (complements Table 6, which co-varies size).
func AblateHistoryLength(sz Sizes) (*AblationResult, error) {
	res := &AblationResult{Title: "CIC history length (functional, λ=0, 128 entries, 8-bit weights)"}
	for _, h := range []int{8, 16, 24, 32, 48, 64} {
		hh := h
		c, err := AverageConfusionSized(nil, func() confidence.Estimator {
			return confidence.NewCICWith(confidence.CICConfig{
				HistoryLen: hh, Lambda: 0, Reversal: confidence.DisableReversal,
			})
		}, sz)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Label: fmt.Sprintf("H=%d", hh), PVN: 100 * c.PVN(), Spec: 100 * c.Spec(),
		})
	}
	return res, nil
}

// VariabilityReport quantifies per-benchmark spread for one gating
// configuration: U and P summaries plus bootstrap CIs of the means,
// the honesty check behind every averaged row in Tables 4-6.
type VariabilityReport struct {
	Label        string
	USummary     stats.Summary
	PSummary     stats.Summary
	UCI, PCI     stats.Interval
	PerBenchmark map[string][2]float64 // bench -> {U, P}
}

// Variability measures the per-benchmark distribution of (U, P) for
// CIC gating at the given λ and PL on the baseline machine.
func Variability(lambda, pl int, sz Sizes) (*VariabilityReport, error) {
	rep := &VariabilityReport{
		Label:        fmt.Sprintf("cic λ=%d PL%d, 40c4w", lambda, pl),
		PerBenchmark: make(map[string][2]float64),
	}
	perBench, err := mapBench(func(ctx context.Context, bench string) ([2]float64, error) {
		base, err := runTiming(ctx, TimingSpec{Bench: bench, Machine: config.Baseline40x4()}, sz)
		if err != nil {
			return [2]float64{}, err
		}
		r, err := runTiming(ctx, TimingSpec{
			Bench: bench, Machine: config.Baseline40x4(),
			Estimator: func() confidence.Estimator { return confidence.NewCIC(lambda) },
			Gating:    gating.PL(pl),
		}, sz)
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{r.UopReductionPercent(base), r.PerfLossPercent(base)}, nil
	})
	if err != nil {
		return nil, err
	}
	var us, ps []float64
	for i, name := range workload.Names() {
		rep.PerBenchmark[name] = perBench[i]
		us = append(us, perBench[i][0])
		ps = append(ps, perBench[i][1])
	}
	rep.USummary = stats.Summarize(us)
	rep.PSummary = stats.Summarize(ps)
	// The bootstrap resampling seeds derive from the report label, so
	// the CIs are stable across runs and worker counts but decorrelated
	// between the U and P resamples.
	rep.UCI = stats.BootstrapMeanCI(us, 0.95, 2000, runner.Seed("variability", rep.Label, "u"))
	rep.PCI = stats.BootstrapMeanCI(ps, 0.95, 2000, runner.Seed("variability", rep.Label, "p"))
	return rep, nil
}

// String renders the variability report.
func (v *VariabilityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-benchmark variability for %s\n", v.Label)
	fmt.Fprintf(&b, "  U: %s   95%% CI of mean %s\n", v.USummary, v.UCI)
	fmt.Fprintf(&b, "  P: %s   95%% CI of mean %s\n", v.PSummary, v.PCI)
	for _, name := range workload.Names() {
		uv := v.PerBenchmark[name]
		fmt.Fprintf(&b, "  %-9s U=%6.1f%%  P=%6.1f%%\n", name, uv[0], uv[1])
	}
	return b.String()
}

// AblateJRSIndexing compares the original JRS estimator against
// Grunwald et al.'s enhanced variant (prediction folded into the
// index) — the §2.3 claim that enhancement improves the baseline we
// measure the perceptron against.
func AblateJRSIndexing(sz Sizes) (*AblationResult, error) {
	res := &AblationResult{Title: "JRS indexing: original vs enhanced (functional)"}
	for _, cfg := range []struct {
		label    string
		enhanced bool
		lambda   int
	}{
		{"original λ=7", false, 7},
		{"enhanced λ=7", true, 7},
		{"original λ=15", false, 15},
		{"enhanced λ=15", true, 15},
	} {
		c := cfg
		conf, err := AverageConfusionSized(nil, func() confidence.Estimator {
			return confidence.NewJRS(confidence.JRSConfig{Lambda: c.lambda, Enhanced: c.enhanced})
		}, sz)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Label: c.label, PVN: 100 * conf.PVN(), Spec: 100 * conf.Spec(),
		})
	}
	return res, nil
}
