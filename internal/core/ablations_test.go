package core

import (
	"strings"
	"testing"
)

func TestAblateTrainingSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	res, err := AblateTrainingSignal(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	cic := res.Rows[0]
	// §5.3's claim: the CIC training signal beats every TNT threshold
	// on accuracy.
	for _, r := range res.Rows[1:4] {
		if r.PVN >= cic.PVN {
			t.Errorf("%s PVN %.1f >= cic %.1f; taken/not-taken training should lose", r.Label, r.PVN, cic.PVN)
		}
	}
	// Fusion sanity: both-mode coverage <= either-mode coverage.
	both, either := res.Rows[4], res.Rows[5]
	if both.Spec > either.Spec {
		t.Errorf("fused-both Spec %.1f > fused-either %.1f", both.Spec, either.Spec)
	}
	if !strings.Contains(res.String(), "Ablation") {
		t.Error("render")
	}
}

func TestAblateReversalSource(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	res, err := AblateReversalSource(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	cic := res.Rows[0]
	jrsRev := res.Rows[1]
	// Reversing everything JRS flags must be far worse for performance
	// than reversing only the CIC strongly-low band: JRS flags are
	// mostly correct predictions (PVN ~15%), so most reversals break
	// correct predictions.
	if jrsRev.P <= cic.P {
		t.Errorf("naive JRS reversal P %.1f <= CIC-band reversal P %.1f; expected blowup",
			jrsRev.P, cic.P)
	}
}

func TestAblateTrainingSite(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	res, err := AblateTrainingSite(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Both training sites must produce a working estimator (nonzero
	// coverage); the exact ordering is what the study reports.
	for _, r := range res.Rows {
		if r.Spec <= 0 {
			t.Errorf("%s: zero coverage", r.Label)
		}
	}
}

func TestAblateThresholdAndHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	thr, err := AblateTrainThreshold(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(thr.Rows) != 6 {
		t.Fatalf("%d threshold rows", len(thr.Rows))
	}
	hist, err := AblateHistoryLength(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rows) != 6 {
		t.Fatalf("%d history rows", len(hist.Rows))
	}
	// Longer history must not collapse coverage: H=32 should cover at
	// least as much as H=8 (the deciding context bits live at 16-31).
	var h8, h32 AblationRow
	for _, r := range hist.Rows {
		if r.Label == "H=8" {
			h8 = r
		}
		if r.Label == "H=32" {
			h32 = r
		}
	}
	if h32.Spec < h8.Spec {
		t.Errorf("H=32 Spec %.1f < H=8 Spec %.1f; long history should see the context bits",
			h32.Spec, h8.Spec)
	}
}

func TestVariability(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	rep, err := Variability(0, 1, QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerBenchmark) != 12 {
		t.Fatalf("%d benchmarks", len(rep.PerBenchmark))
	}
	if rep.USummary.N != 12 || rep.PSummary.N != 12 {
		t.Error("summaries incomplete")
	}
	if !rep.UCI.Contains(rep.USummary.Mean) {
		t.Errorf("U CI %v does not contain mean %.2f", rep.UCI, rep.USummary.Mean)
	}
	if rep.String() == "" {
		t.Error("render")
	}
}
