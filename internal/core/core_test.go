package core

import (
	"strings"
	"testing"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/predictor"
	"bce/internal/workload"
)

func TestRunFunctionalBasics(t *testing.T) {
	r, err := RunFunctional(FunctionalConfig{
		Bench: "gzip", Estimator: confidence.NewCIC(0),
		WarmupUops: 20000, MeasureUops: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Uops != 50000 {
		t.Errorf("measured uops = %d", r.Uops)
	}
	if r.Branches == 0 || r.Confusion.Branches() != r.Branches {
		t.Errorf("branches %d vs confusion %d", r.Branches, r.Confusion.Branches())
	}
	if r.MispredictsPer1KUops() <= 0 {
		t.Error("no mispredicts measured")
	}
	if r.CorrectHist != nil {
		t.Error("histograms without request")
	}
}

func TestRunFunctionalUnknownBench(t *testing.T) {
	if _, err := RunFunctional(FunctionalConfig{Bench: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunFunctionalHistograms(t *testing.T) {
	r, err := RunFunctional(FunctionalConfig{
		Bench: "gcc", Estimator: confidence.NewCIC(0),
		WarmupUops: 20000, MeasureUops: 60000,
		HistRange: 300, HistBin: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.CorrectHist == nil || r.WrongHist == nil {
		t.Fatal("histograms missing")
	}
	if r.CorrectHist.Total() == 0 || r.WrongHist.Total() == 0 {
		t.Error("empty histograms")
	}
	if r.CorrectHist.Total()+r.WrongHist.Total() != r.Branches {
		t.Error("histogram totals do not cover all branches")
	}
}

// Calibration invariant: every benchmark's mispredicts/1000 uops lands
// within 2x of its Table 2 target and the extremes are ordered (mcf
// worst, vortex best).
func TestCalibrationWithinBand(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short")
	}
	rates := map[string]float64{}
	for _, name := range workload.Names() {
		r, err := RunFunctional(FunctionalConfig{Bench: name})
		if err != nil {
			t.Fatal(err)
		}
		rates[name] = r.MispredictsPer1KUops()
		target := workload.Table2Target[name]
		if rates[name] < target/2 || rates[name] > target*2 {
			t.Errorf("%s: %.2f mispredicts/Kuop, target %.2f (outside 2x band)",
				name, rates[name], target)
		}
	}
	for name, rate := range rates {
		if name != "mcf" && rate >= rates["mcf"] {
			t.Errorf("%s (%.2f) >= mcf (%.2f); mcf must be worst", name, rate, rates["mcf"])
		}
	}
}

// The headline qualitative claim: the perceptron estimator is at
// least twice as accurate (PVN) as enhanced JRS, while JRS has the
// higher coverage (Spec).
func TestPerceptronTwiceAsAccurateAsJRS(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sz := QuickSizes()
	jrs, err := AverageConfusion(nil, func() confidence.Estimator {
		return confidence.NewEnhancedJRS(15)
	}, sz.FuncWarmup, sz.FuncMeasure)
	if err != nil {
		t.Fatal(err)
	}
	cic, err := AverageConfusion(nil, func() confidence.Estimator {
		return confidence.NewCIC(0)
	}, sz.FuncWarmup, sz.FuncMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if cic.PVN() < 2*jrs.PVN() {
		t.Errorf("CIC PVN %.2f < 2x JRS PVN %.2f", cic.PVN(), jrs.PVN())
	}
	if jrs.Spec() < cic.Spec() {
		t.Errorf("JRS Spec %.2f < CIC Spec %.2f; coverage relation inverted", jrs.Spec(), cic.Spec())
	}
}

func TestAverageConfusionCustomPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	c, err := AverageConfusion(
		func() predictor.Predictor { return predictor.NewGsharePerceptronHybrid() },
		func() confidence.Estimator { return confidence.NewCIC(0) },
		10_000, 20_000,
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Branches() == 0 {
		t.Fatal("no branches")
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	res, err := Table3(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JRS) != 4 || len(res.Perceptron) != 4 {
		t.Fatalf("row counts: %d/%d", len(res.JRS), len(res.Perceptron))
	}
	// Monotone trends: raising JRS λ lowers PVN and raises Spec;
	// lowering CIC λ lowers PVN and raises Spec.
	for i := 1; i < 4; i++ {
		if res.JRS[i].Spec < res.JRS[i-1].Spec-2 {
			t.Errorf("JRS Spec not rising: %v", res.JRS)
		}
		if res.Perceptron[i].Spec < res.Perceptron[i-1].Spec-2 {
			t.Errorf("CIC Spec not rising: %v", res.Perceptron)
		}
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Error("render")
	}
}

func TestDensityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	sz := QuickSizes()
	cic, err := Density("gcc", "cic", sz)
	if err != nil {
		t.Fatal(err)
	}
	if cic.CB.Total() == 0 || cic.MB.Total() == 0 {
		t.Fatal("empty densities")
	}
	// The defining CIC property (Figure 5): in the top region the
	// MB/CB ratio is far higher than in the bottom region.
	top, bottom := cic.Regions[0], cic.Regions[2]
	topRatio := float64(top.MB) / float64(top.CB+1)
	botRatio := float64(bottom.MB) / float64(bottom.CB+1)
	if topRatio <= botRatio {
		t.Errorf("CIC region ratios not separated: top %.3f vs bottom %.3f", topRatio, botRatio)
	}
	tnt, err := Density("gcc", "tnt", sz)
	if err != nil {
		t.Fatal(err)
	}
	if tnt.CB.Total() == 0 {
		t.Fatal("empty tnt density")
	}
	if !strings.Contains(cic.CSV(), "output,cb,mb") {
		t.Error("CSV header")
	}
	if cic.String() == "" || tnt.String() == "" {
		t.Error("render")
	}
	if _, err := Density("gcc", "bogus", sz); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestTable2Quick(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("timing sweep skipped in -short")
	}
	res, err := Table2(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Deep and wide machines must waste more than the 20c4w baseline
	// on average.
	if res.AvgWaste40x4 <= res.AvgWaste20x4 {
		t.Errorf("40c4w waste %.1f <= 20c4w %.1f", res.AvgWaste40x4, res.AvgWaste20x4)
	}
	if res.AvgWaste20x8 <= res.AvgWaste20x4 {
		t.Errorf("20c8w waste %.1f <= 20c4w %.1f", res.AvgWaste20x8, res.AvgWaste20x4)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Error("render")
	}
}

func TestLatencyQuick(t *testing.T) {
	skipHeavyUnderRace(t)
	if testing.Short() {
		t.Skip("timing sweep skipped in -short")
	}
	res, err := Latency(QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	// The 9-cycle estimator cannot save more than the 1-cycle one.
	if res.Pipelined.U > res.Ideal.U+1 {
		t.Errorf("pipelined U %.1f > ideal U %.1f", res.Pipelined.U, res.Ideal.U)
	}
	if res.String() == "" {
		t.Error("render")
	}
}

func TestCombinedQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep skipped in -short")
	}
	res, err := Combined(config.Baseline40x4(), QuickSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.AvgUopReduction <= 0 {
		t.Errorf("combined gating+reversal reduced nothing: %.2f", res.AvgUopReduction)
	}
	if res.String() == "" {
		t.Error("render")
	}
}

func TestPredictorKindString(t *testing.T) {
	if BimodalGshare.String() != "bimodal-gshare" || GsharePerceptron.String() != "gshare-perceptron" {
		t.Error("PredictorKind names")
	}
}
