package core

// exec.go wires the experiment engine onto the shared runner
// subsystem (internal/runner): one bounded worker pool drives every
// benchmark fan-out, and one content-addressed result cache serves
// identical timing runs — most importantly the ungated baseline that
// every gating table, figure and ablation measures against — once per
// suite instead of once per caller.

import (
	"context"
	"encoding/json"
	"fmt"

	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/workload"
)

// Execution settings. These are process-wide knobs meant to be set
// once at startup (or between sweeps in tests); they are not
// synchronized against concurrently running sweeps.
var (
	execWorkers  int // 0 = runtime.GOMAXPROCS
	execProgress func(runner.Progress)
)

// SetParallelism bounds the worker count for experiment fan-outs;
// n < 1 restores the default (GOMAXPROCS). Results are bit-identical
// under any worker count: jobs derive their randomness from stable
// hashes of their own configuration, never from scheduling order.
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	execWorkers = n
}

// SetProgress installs a progress/ETA hook called as sweep jobs
// complete; nil disables. Each table or figure regeneration reports
// Done/Total over its benchmark fan-out.
func SetProgress(fn func(runner.Progress)) { execProgress = fn }

func corePool() *runner.Pool {
	return runner.New(runner.Options{Workers: execWorkers, Progress: execProgress})
}

// mapBench runs fn for every benchmark on the shared pool and returns
// the per-benchmark results in workload.Names() order, regardless of
// completion order. Errors are tagged with the benchmark name; a
// panicking benchmark surfaces its configuration instead of killing
// the sweep. The context carries the job's cache-classification flag
// (runner.MarkCached); pass it down to runTiming so fully cached jobs
// are excluded from progress ETAs.
func mapBench[R any](fn func(ctx context.Context, bench string) (R, error)) ([]R, error) {
	return runner.Map(context.Background(), corePool(), workload.Names(),
		func(ctx context.Context, _ int, name string) (R, error) {
			r, err := fn(ctx, name)
			if err != nil {
				var zero R
				return zero, fmt.Errorf("%s: %w", name, err)
			}
			return r, nil
		})
}

// resultCache memoizes timing runs by their full configuration
// (machine, predictor, estimator, gating, workload, sizes). Timing
// simulations are pure functions of that configuration, so the cache
// is exact, not approximate.
var resultCache = runner.NewCache[metrics.Run]()

// ResetResultCache drops every cached timing result and zeroes the
// hit/miss counters (the on-disk store, if configured, is untouched).
func ResetResultCache() { resultCache.Reset() }

// ResultCacheStats returns the timing-run cache counters: hits are
// runs served from memory or disk, misses are fresh simulations.
func ResultCacheStats() (hits, misses uint64) { return resultCache.Stats() }

// SetResultCacheDir attaches an on-disk result cache rooted at dir,
// persisting timing runs across invocations (bcetables -cache). An
// empty dir detaches.
func SetResultCacheDir(dir string) error {
	if dir == "" {
		resultCache.SetStore(nil, nil, nil)
		return nil
	}
	store, err := runner.NewDirStore(dir)
	if err != nil {
		return err
	}
	resultCache.SetStore(store,
		func(r metrics.Run) ([]byte, error) { return json.Marshal(r) },
		func(b []byte) (metrics.Run, error) {
			var r metrics.Run
			err := json.Unmarshal(b, &r)
			return r, err
		})
	return nil
}

// timingKey canonicalizes a timing run's full configuration into its
// cache key. The estimator is identified by constructing one instance
// and taking its Name(), which encodes geometry and thresholds;
// estimator constructors are cheap next to a timing simulation.
func timingKey(spec TimingSpec, sz Sizes, speculativeTrain bool) string {
	est := "none"
	if spec.Estimator != nil {
		est = spec.Estimator().Name()
	}
	return runner.KeyOf(
		"timing", 1, // schema version: bump when Run or the sim semantics change
		spec.Bench,
		fmt.Sprintf("%+v", spec.Machine),
		spec.Predictor,
		est,
		spec.Gating.Threshold, spec.Gating.Latency,
		spec.Reversal, spec.Perfect, speculativeTrain,
		sz.Warmup, sz.Measure, sz.segments(),
	)
}
