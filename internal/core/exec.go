package core

// exec.go wires the experiment engine onto the shared runner
// subsystem (internal/runner): one bounded worker pool drives every
// benchmark fan-out, and one content-addressed result cache serves
// identical timing runs — most importantly the ungated baseline that
// every gating table, figure and ablation measures against — once per
// suite instead of once per caller.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bce/internal/confidence"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/workload"
)

// Execution settings. These are process-wide knobs meant to be set
// once at startup (or between sweeps in tests); they are not
// synchronized against concurrently running sweeps.
var (
	execWorkers  int // 0 = runtime.GOMAXPROCS
	execProgress func(runner.Progress)
	execCtx      context.Context
	execTimeout  time.Duration
	execRetries  int
	execBackoff  time.Duration

	execDirStore *runner.DirStore
	execJournal  *runner.Journal
)

// SetParallelism bounds the worker count for experiment fan-outs;
// n < 1 restores the default (GOMAXPROCS). Results are bit-identical
// under any worker count: jobs derive their randomness from stable
// hashes of their own configuration, never from scheduling order.
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	execWorkers = n
}

// SetProgress installs a progress/ETA hook called as sweep jobs
// complete; nil disables. Each table or figure regeneration reports
// Done/Total over its benchmark fan-out.
func SetProgress(fn func(runner.Progress)) { execProgress = fn }

// SetBaseContext installs the context every sweep runs under. Cancel
// it (e.g. from a SIGINT handler — see runner.ShutdownContext) and
// in-flight jobs finish, unstarted jobs are skipped, and the sweep
// returns the cancellation error. Nil restores context.Background().
func SetBaseContext(ctx context.Context) { execCtx = ctx }

// SetJobTimeout bounds each simulation job with a per-attempt
// deadline; zero disables. Pair with SetRetries to reclaim and re-run
// wedged jobs.
func SetJobTimeout(d time.Duration) { execTimeout = d }

// SetRetries configures bounded retry with exponential backoff for
// transient job failures (runner.IsTransient). n <= 0 disables.
func SetRetries(n int, backoff time.Duration) {
	if n < 0 {
		n = 0
	}
	execRetries, execBackoff = n, backoff
}

func baseContext() context.Context {
	if execCtx != nil {
		return execCtx
	}
	return context.Background()
}

func corePool() *runner.Pool {
	return runner.New(runner.Options{
		Workers:      execWorkers,
		Progress:     execProgress,
		JobTimeout:   execTimeout,
		Retries:      execRetries,
		RetryBackoff: execBackoff,
	})
}

// JobRecord describes one completed simulation job for manifest
// emission: the cache key identifying its full configuration, which
// benchmark it ran, whether the result came from the cache, and the
// result itself (exactly one of Run/Confusion is set, by Kind).
type JobRecord struct {
	// Key is the content-addressed cache key ("timing" jobs) or an
	// equivalent canonical configuration string ("functional" jobs).
	Key string
	// Kind is "timing" (full pipeline model) or "functional"
	// (predictor+estimator state machines only).
	Kind string
	// Bench is the benchmark name.
	Bench string
	// Cached reports whether the result was served from the result
	// cache rather than freshly simulated.
	Cached bool
	// Run is the timing result (nil for functional jobs).
	Run *metrics.Run
	// Confusion is the functional result (nil for timing jobs).
	Confusion *metrics.Confusion
}

// jobObserver, when set, is called once per completed simulation job.
// Sweeps fan out over the worker pool, so the observer is invoked from
// multiple goroutines concurrently and must synchronize internally
// (manifest.Builder does). Set it once at startup, like the other
// execution knobs.
var jobObserver func(JobRecord)

// SetJobObserver installs the per-job observer manifest emission uses;
// nil disables. The observer must be safe for concurrent use.
func SetJobObserver(fn func(JobRecord)) { jobObserver = fn }

func observeJob(rec JobRecord) {
	if jobObserver != nil {
		jobObserver(rec)
	}
}

// mapBench runs fn for every benchmark on the shared pool and returns
// the per-benchmark results in workload.Names() order, regardless of
// completion order. Errors are tagged with the benchmark name; a
// panicking benchmark surfaces its configuration instead of killing
// the sweep. The context carries the job's cache-classification flag
// (runner.MarkCached); pass it down to runTiming so fully cached jobs
// are excluded from progress ETAs.
func mapBench[R any](fn func(ctx context.Context, bench string) (R, error)) ([]R, error) {
	return runner.Map(baseContext(), corePool(), workload.Names(),
		func(ctx context.Context, _ int, name string) (R, error) {
			r, err := fn(ctx, name)
			if err != nil {
				var zero R
				return zero, fmt.Errorf("%s: %w", name, err)
			}
			return r, nil
		})
}

// resultCache memoizes timing runs by their full configuration
// (machine, predictor, estimator, gating, workload, sizes). Timing
// simulations are pure functions of that configuration, so the cache
// is exact, not approximate.
var resultCache = runner.NewCache[metrics.Run]()

// ResetResultCache drops every cached timing result and zeroes the
// hit/miss counters (the on-disk store, if configured, is untouched).
func ResetResultCache() { resultCache.Reset() }

// ResultCacheStats returns the timing-run cache counters: hits are
// runs served from memory or disk, misses are fresh simulations.
func ResultCacheStats() (hits, misses uint64) { return resultCache.Stats() }

// SetResultCacheDir attaches an on-disk result cache rooted at dir,
// persisting timing runs across invocations (bcetables -cache). An
// empty dir detaches both the store and any checkpoint journal.
func SetResultCacheDir(dir string) error {
	if dir == "" {
		execDirStore = nil
		execJournal = nil
		installResultStore()
		return nil
	}
	store, err := runner.NewDirStore(dir)
	if err != nil {
		return err
	}
	execDirStore = store
	installResultStore()
	return nil
}

// CheckpointPath returns where the sweep checkpoint journal lives for
// the configured cache directory ("" when no cache is attached): an
// append-only JSONL log next to the DirStore's entries.
func CheckpointPath() string {
	if execDirStore == nil {
		return ""
	}
	return filepath.Join(execDirStore.Dir(), "sweep.journal")
}

// SetCheckpoint opens the crash-safe checkpoint journal next to the
// result-cache DirStore and stacks it in front of the store, so every
// finished simulation is fsynced before the sweep moves on. With
// resume true an existing journal's records replay (a killed sweep
// picks up where it stopped); with resume false any stale journal is
// ignored and overwritten. Returns the number of replayed records.
// Requires SetResultCacheDir first.
func SetCheckpoint(resume bool) (int, error) {
	path := CheckpointPath()
	if path == "" {
		return 0, fmt.Errorf("core: checkpointing needs a result-cache directory (SetResultCacheDir)")
	}
	if execJournal != nil {
		execJournal.Close()
		execJournal = nil
	}
	if !resume {
		// Start a fresh journal: drop any leftover from a previous run
		// whose results are already merged into the DirStore.
		os.Remove(path)
	}
	j, err := runner.OpenJournal(path)
	if err != nil {
		return 0, err
	}
	execJournal = j
	installResultStore()
	return j.Replayed(), nil
}

// CloseCheckpoint flushes and closes the checkpoint journal; with
// remove true (a sweep that finished cleanly, its results all in the
// DirStore) the journal file is deleted so the next run starts fresh.
func CloseCheckpoint(remove bool) error {
	if execJournal == nil {
		return nil
	}
	j := execJournal
	execJournal = nil
	installResultStore()
	if remove {
		return j.Remove()
	}
	return j.Close()
}

// installResultStore points the result cache at the current
// journal/DirStore stack (either may be nil).
func installResultStore() {
	store := runner.Tiered(journalStore(), dirStoreOrNil())
	if store == nil {
		resultCache.SetStore(nil, nil, nil)
		return
	}
	resultCache.SetStore(store,
		func(r metrics.Run) ([]byte, error) { return json.Marshal(r) },
		func(b []byte) (metrics.Run, error) {
			var r metrics.Run
			err := json.Unmarshal(b, &r)
			return r, err
		})
}

// haveResult reports whether a timing result for key is already on
// hand — in the in-memory cache, the checkpoint journal, or the
// on-disk store — without computing anything. The distributed planner
// uses it to exclude already-finished simulations from remote
// dispatch, so a resumed coordinator reassigns only missing work.
func haveResult(key string) bool {
	if resultCache.Contains(key) {
		return true
	}
	if store := runner.Tiered(journalStore(), dirStoreOrNil()); store != nil {
		if _, ok := store.Load(key); ok {
			return true
		}
	}
	return false
}

// InjectResult seeds the timing-result cache with an externally
// computed run — a result a remote worker produced — under its cache
// key. The write goes through the normal compute path, so an attached
// store and checkpoint journal persist it exactly as a local
// simulation would be. A key already present keeps its existing value
// (simulations are pure, so both values are identical anyway).
func InjectResult(key string, r metrics.Run) {
	resultCache.Do(key, func() (metrics.Run, error) { return r, nil }) //nolint:errcheck // compute cannot fail
}

// journalStore and dirStoreOrNil exist because a nil *T in an
// interface value is not a nil interface; Tiered drops true nils only.
func journalStore() runner.Store {
	if execJournal == nil {
		return nil
	}
	return execJournal
}

func dirStoreOrNil() runner.Store {
	if execDirStore == nil {
		return nil
	}
	return execDirStore
}

// timingKey canonicalizes a timing run's full configuration into its
// cache key. The estimator is identified by constructing one instance
// and taking its Name(), which encodes geometry and thresholds;
// estimator constructors are cheap next to a timing simulation. mkEst
// is the resolved factory from TimingSpec.makeEstimator, so a
// declarative spec and the equivalent closure produce the same key.
func timingKey(spec TimingSpec, mkEst func() confidence.Estimator, sz Sizes, speculativeTrain bool) string {
	est := "none"
	if mkEst != nil {
		est = mkEst().Name()
	}
	return runner.KeyOf(
		"timing", 2, // schema version: bump when Run or the sim semantics change (2: Run.Segments)
		spec.Bench,
		fmt.Sprintf("%+v", spec.Machine),
		spec.Predictor,
		est,
		spec.Gating.Threshold, spec.Gating.Latency,
		spec.Reversal, spec.Perfect, speculativeTrain,
		sz.Warmup, sz.Measure, sz.segments(),
	)
}
