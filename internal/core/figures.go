package core

import (
	"context"
	"fmt"
	"strings"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
)

// -------------------------------------------------------------------
// Figures 4-7 — perceptron output density functions (§5.3)
// -------------------------------------------------------------------

// DensityResult holds a CB/MB output density pair for one estimator.
type DensityResult struct {
	// Bench is the benchmark (the paper uses gcc as its example).
	Bench string
	// Scheme is "cic" or "tnt".
	Scheme string
	// CB and MB are the output densities for correctly predicted and
	// mispredicted branches.
	CB, MB *metrics.Histogram
	// Regions is the three-region analysis of Figure 5 (for CIC):
	// counts of CB and MB above the reversal threshold, between the
	// thresholds, and below the gating threshold.
	Regions [3]RegionCount
}

// RegionCount tallies CB vs MB within one output region.
type RegionCount struct {
	Label  string
	CB, MB uint64
}

// Density regenerates the data behind Figures 4-7: the estimator
// output density functions for correctly predicted (CB) and
// mispredicted (MB) branches. scheme is "cic" (Figures 4-5) or "tnt"
// (Figures 6-7).
func Density(bench, scheme string, sz Sizes) (*DensityResult, error) {
	var mkEst func() confidence.Estimator
	switch scheme {
	case "cic":
		mkEst = func() confidence.Estimator { return confidence.NewCIC(0) }
	case "tnt":
		mkEst = func() confidence.Estimator { return confidence.NewTNT(75) }
	default:
		return nil, fmt.Errorf("core: unknown density scheme %q (want cic or tnt)", scheme)
	}
	r, err := RunFunctional(FunctionalConfig{
		Bench:         bench,
		MakeEstimator: mkEst,
		WarmupUops:    sz.FuncWarmup,
		MeasureUops:   sz.FuncMeasure,
		Segments:      sz.segments(),
		HistRange:     400,
		HistBin:       10,
	})
	if err != nil {
		return nil, err
	}
	res := &DensityResult{Bench: bench, Scheme: scheme, CB: r.CorrectHist, MB: r.WrongHist}
	// Figure 5's three regions for the CIC output (reversal above 30,
	// gating between -30 and 30, high confidence below -30 in the
	// paper's gcc example).
	lo, hi := -30, 30
	regions := []struct {
		label    string
		lo, hi   int
		haveLow  bool
		haveHigh bool
	}{
		{fmt.Sprintf("y > %d (reversal candidates)", hi), hi, 0, true, false},
		{fmt.Sprintf("%d <= y <= %d (gating candidates)", lo, hi), lo, hi, true, true},
		{fmt.Sprintf("y < %d (high confidence)", lo), 0, lo, false, true},
	}
	for i, reg := range regions {
		cb := countRange(r.CorrectHist, reg.lo, reg.hi, reg.haveLow, reg.haveHigh)
		mb := countRange(r.WrongHist, reg.lo, reg.hi, reg.haveLow, reg.haveHigh)
		res.Regions[i] = RegionCount{Label: reg.label, CB: cb, MB: mb}
	}
	return res, nil
}

func countRange(h *metrics.Histogram, lo, hi int, haveLow, haveHigh bool) uint64 {
	var n uint64
	for i, c := range h.Bins() {
		v := h.BinLo(i)
		if haveLow && v < lo {
			continue
		}
		if haveHigh && v > hi {
			continue
		}
		n += c
	}
	if !haveLow {
		u, _ := h.OutOfRange()
		n += u
	}
	if !haveHigh {
		_, o := h.OutOfRange()
		n += o
	}
	return n
}

// String renders the density data: the zoomed ASCII plots plus the
// three-region analysis and CSV-ready full data.
func (d *DensityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Output density for %s on %s (CB = correctly predicted, MB = mispredicted)\n",
		d.Scheme, d.Bench)
	fmt.Fprintf(&b, "\nRegion analysis:\n")
	for _, r := range d.Regions {
		ratio := "inf"
		if r.CB > 0 {
			ratio = fmt.Sprintf("%.2f", float64(r.MB)/float64(r.CB))
		}
		fmt.Fprintf(&b, "  %-36s CB=%-8d MB=%-8d MB/CB=%s\n", r.Label, r.CB, r.MB, ratio)
	}
	b.WriteString("\nCB density (ASCII, full range):\n")
	b.WriteString(d.CB.ASCII(50))
	b.WriteString("\nMB density (ASCII, full range):\n")
	b.WriteString(d.MB.ASCII(50))
	return b.String()
}

// CSV renders "bin,cb,mb" lines for external plotting.
func (d *DensityResult) CSV() string {
	var b strings.Builder
	b.WriteString("output,cb,mb\n")
	cb, mb := d.CB.Bins(), d.MB.Bins()
	for i := range cb {
		fmt.Fprintf(&b, "%d,%d,%d\n", d.CB.BinLo(i), cb[i], mb[i])
	}
	return b.String()
}

// -------------------------------------------------------------------
// Figures 8-9 — combined pipeline gating and branch reversal (§5.5)
// -------------------------------------------------------------------

// CombinedRow is one benchmark's bars in Figure 8/9.
type CombinedRow struct {
	Bench string
	// SpeedupPct is the performance gain versus the ungated,
	// unreversed baseline (positive = faster).
	SpeedupPct float64
	// UopReductionPct is the reduction in executed uops.
	UopReductionPct float64
}

// CombinedResult is the per-benchmark data of Figure 8 (40c4w) or
// Figure 9 (20c8w) plus the weighted average.
type CombinedResult struct {
	Machine         string
	Rows            []CombinedRow
	AvgSpeedupPct   float64
	AvgUopReduction float64
}

// Combined regenerates Figure 8/9: branch reversal for outputs above
// 0 plus pipeline gating (PL2) for outputs in [-75, 0), per benchmark,
// on the given machine.
func Combined(m config.Machine, sz Sizes) (*CombinedResult, error) {
	// The paper selects its two thresholds "based on empirical data"
	// from the output density functions (§5.5): reversal where the MB
	// curve overtakes CB, gating below that. On our synthetic
	// workloads the MB/CB crossover sits near +50 rather than the
	// paper's 0 (Figure 5 analysis), so the same methodology yields
	// (reversal=50, gate band [-75, 50)).
	estSpec := confidence.SpecCICWith(confidence.CICConfig{
		Lambda:   -75, // weakly-low band starts here (§5.5)
		Reversal: 50,  // strongly-low band: reverse above the MB/CB crossover
	})
	rows, err := mapBench(func(ctx context.Context, bench string) (CombinedRow, error) {
		base, err := runTiming(ctx, TimingSpec{Bench: bench, Machine: m}, sz)
		if err != nil {
			return CombinedRow{}, err
		}
		r, err := runTiming(ctx, TimingSpec{
			Bench: bench, Machine: m,
			EstSpec:  estSpec,
			Gating:   gating.PL(2),
			Reversal: true,
		}, sz)
		if err != nil {
			return CombinedRow{}, err
		}
		return CombinedRow{
			Bench:           bench,
			SpeedupPct:      r.SpeedupPercent(base),
			UopReductionPct: r.UopReductionPercent(base),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &CombinedResult{Machine: m.Name, Rows: rows}
	for _, r := range rows {
		res.AvgSpeedupPct += r.SpeedupPct
		res.AvgUopReduction += r.UopReductionPct
	}
	n := float64(len(res.Rows))
	res.AvgSpeedupPct /= n
	res.AvgUopReduction /= n
	return res, nil
}

// String renders the figure data as a table plus ASCII bars.
func (c *CombinedResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Combined pipeline gating + branch reversal on %s\n", c.Machine)
	fmt.Fprintf(&b, "%-9s %10s %14s\n", "bench", "speedup%", "uop reduction%")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-9s %9.1f%% %13.1f%%  %s\n", r.Bench, r.SpeedupPct, r.UopReductionPct,
			bar(r.UopReductionPct))
	}
	fmt.Fprintf(&b, "%-9s %9.1f%% %13.1f%%\n", "average", c.AvgSpeedupPct, c.AvgUopReduction)
	if c.Machine == "40c4w" {
		b.WriteString("(paper: ~10% average uop reduction at no average performance loss)\n")
	} else {
		b.WriteString("(paper: ~7% average uop reduction at no average performance loss)\n")
	}
	return b.String()
}

func bar(pct float64) string {
	n := int(pct)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

// -------------------------------------------------------------------
// §5.4.2 — estimator latency study
// -------------------------------------------------------------------

// LatencyResult compares gating with an ideal single-cycle estimator
// against the 9-cycle pipelined perceptron estimate.
type LatencyResult struct {
	Ideal, Pipelined GatingResult
}

// Latency regenerates the §5.4.2 study: CIC gating (λ=0, PL1, 40c4w)
// with a 1-cycle versus a 9-cycle confidence-estimation latency.
func Latency(sz Sizes) (*LatencyResult, error) {
	mk := func(latency int) variant {
		return variant{
			Label: fmt.Sprintf("latency=%d", latency),
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					EstSpec: confidence.SpecCIC(0),
					Gating:  gating.Policy{Threshold: 1, Latency: latency},
				}
			},
		}
	}
	rows, err := gatingSweep(sz, func(bench string) TimingSpec {
		return TimingSpec{Bench: bench, Machine: config.Baseline40x4()}
	}, []variant{mk(1), mk(9)})
	if err != nil {
		return nil, err
	}
	return &LatencyResult{Ideal: rows[0], Pipelined: rows[1]}, nil
}

// String renders the study.
func (l *LatencyResult) String() string {
	var b strings.Builder
	b.WriteString("Estimator latency study (CIC λ=0, PL1, 40c4w)\n")
	fmt.Fprintf(&b, "  1-cycle (ideal):     U=%5.1f%%  P=%5.1f%%\n", l.Ideal.U, l.Ideal.P)
	fmt.Fprintf(&b, "  9-cycle (pipelined): U=%5.1f%%  P=%5.1f%%\n", l.Pipelined.U, l.Pipelined.P)
	b.WriteString("(paper: very little drop in uop reduction at similar performance loss)\n")
	return b.String()
}
