// Package core is the experiment engine: it wires workloads,
// predictors, confidence estimators and the timing pipeline together
// and regenerates every table and figure in the paper's evaluation
// (see DESIGN.md §4 for the index).
//
// Two kinds of runs exist. Functional runs drive only the predictor
// and estimator state machines over the correct-path branch stream —
// exact for confidence metrics (Table 3, Figures 4-7) and orders of
// magnitude faster than timing. Timing runs use the full pipeline
// model (Tables 2, 4-6, Figures 8-9, the latency study).
package core

import (
	"context"
	"fmt"

	"bce/internal/confidence"
	"bce/internal/metrics"
	"bce/internal/predictor"
	"bce/internal/runner"
	"bce/internal/workload"
)

// FunctionalResult is what a functional confidence run produces.
type FunctionalResult struct {
	// Confusion is the estimator-vs-outcome confusion matrix over
	// measured branches.
	Confusion metrics.Confusion
	// Uops and Branches count the measured span.
	Uops     uint64
	Branches uint64
	// CorrectHist and WrongHist are the estimator raw-output density
	// functions for correctly predicted (CB) and mispredicted (MB)
	// branches, when histogram collection was requested.
	CorrectHist *metrics.Histogram
	WrongHist   *metrics.Histogram
}

// Merge folds another segment's results into r: counters and the
// confusion matrix add field-wise, histograms merge bin-wise (adopting
// o's histograms when r has none). Merging is commutative on the
// counters, but callers merge in segment order so histogram adoption
// is deterministic too.
func (r *FunctionalResult) Merge(o FunctionalResult) {
	r.Confusion.Merge(o.Confusion)
	r.Uops += o.Uops
	r.Branches += o.Branches
	if o.CorrectHist != nil {
		if r.CorrectHist == nil {
			r.CorrectHist, r.WrongHist = o.CorrectHist, o.WrongHist
		} else {
			r.CorrectHist.Merge(o.CorrectHist)
			r.WrongHist.Merge(o.WrongHist)
		}
	}
}

// MispredictsPer1KUops returns the Table 2 rate over the measured span.
func (r FunctionalResult) MispredictsPer1KUops() float64 {
	if r.Uops == 0 {
		return 0
	}
	return 1000 * float64(r.Confusion.Mispredicted()) / float64(r.Uops)
}

// FunctionalConfig configures a functional run.
type FunctionalConfig struct {
	// Bench is the benchmark name.
	Bench string
	// Predictor supplies the branch predictor; nil means the baseline
	// bimodal-gshare hybrid. With Segments > 1 prefer MakePredictor so
	// each segment gets fresh state.
	Predictor predictor.Predictor
	// Estimator supplies the confidence estimator; nil means
	// AlwaysHigh (useful when only the mispredict rate matters). With
	// Segments > 1 prefer MakeEstimator.
	Estimator confidence.Estimator
	// MakePredictor and MakeEstimator build fresh components per
	// segment; when set they take precedence over the instance fields.
	MakePredictor func() predictor.Predictor
	MakeEstimator func() confidence.Estimator
	// WarmupUops and MeasureUops size the run (defaults 100k / 300k,
	// mirroring the paper's warmup-then-measure discipline §4).
	WarmupUops, MeasureUops uint64
	// HistRange enables output-density collection over [-HistRange,
	// +HistRange] with HistBin-wide bins (Figures 4-7). Zero disables.
	HistRange int
	HistBin   int
	// Segments runs that many independent runtime-randomness segments
	// of the benchmark (fresh predictor and estimator each) and merges
	// the results — the paper's two-segment methodology (§4). Zero
	// means one. Requires Predictor/Estimator to be nil (defaults) or
	// freshly constructed per call; with Segments > 1 and explicit
	// instances the same instances carry over between segments.
	Segments int
}

// RunFunctional drives predictor and estimator over the benchmark's
// correct-path stream: for each conditional branch, predict, estimate,
// then immediately update and train in program order. This matches
// what the timing pipeline converges to for retired branches, without
// timing.
func RunFunctional(cfg FunctionalConfig) (FunctionalResult, error) {
	// A plan-mode (CollectJobs) pass skips functional work entirely:
	// functional runs are cheap, never distributed, and the planner
	// discards every result. Empty histograms stand in for requested
	// densities so downstream shaping code finds the structure it
	// expects.
	if planRecording() {
		var res FunctionalResult
		if cfg.HistRange > 0 {
			bin := cfg.HistBin
			if bin == 0 {
				bin = 10
			}
			res.CorrectHist = metrics.NewHistogram(-cfg.HistRange, cfg.HistRange, bin)
			res.WrongHist = metrics.NewHistogram(-cfg.HistRange, cfg.HistRange, bin)
		}
		return res, nil
	}
	segs := cfg.Segments
	if segs < 1 {
		segs = 1
	}
	if cfg.WarmupUops == 0 {
		cfg.WarmupUops = 100_000
	}
	if cfg.MeasureUops == 0 {
		cfg.MeasureUops = 300_000
	}
	var total FunctionalResult
	for seg := 0; seg < segs; seg++ {
		r, err := runFunctionalSegment(cfg, seg)
		if err != nil {
			return total, err
		}
		total.Merge(r)
	}
	if jobObserver != nil {
		c := total.Confusion
		observeJob(JobRecord{
			Key: functionalKey(cfg, segs), Kind: "functional",
			Bench: cfg.Bench, Confusion: &c,
		})
	}
	return total, nil
}

// functionalKey canonicalizes a functional run's configuration the way
// timingKey does for timing runs. Functional runs are not cached, so
// the key exists purely to identify the job in run manifests; the
// estimator is identified by building one throwaway instance (cheap
// next to the run itself).
func functionalKey(cfg FunctionalConfig, segs int) string {
	est := cfg.Estimator
	if cfg.MakeEstimator != nil {
		est = cfg.MakeEstimator()
	}
	name := "none"
	if est != nil {
		name = est.Name()
	}
	return runner.KeyOf("functional", 1, cfg.Bench, name,
		cfg.WarmupUops, cfg.MeasureUops, segs, cfg.HistRange, cfg.HistBin)
}

func runFunctionalSegment(cfg FunctionalConfig, segment int) (FunctionalResult, error) {
	prof, err := workload.ByName(cfg.Bench)
	if err != nil {
		return FunctionalResult{}, err
	}
	prof.Segment = segment
	pred := cfg.Predictor
	if cfg.MakePredictor != nil {
		pred = cfg.MakePredictor()
	}
	if pred == nil {
		pred = predictor.NewBaselineHybrid()
	}
	est := cfg.Estimator
	if cfg.MakeEstimator != nil {
		est = cfg.MakeEstimator()
	}
	if est == nil {
		est = confidence.AlwaysHigh{}
	}
	gen := workload.New(prof)

	var res FunctionalResult
	if cfg.HistRange > 0 {
		bin := cfg.HistBin
		if bin == 0 {
			bin = 10
		}
		res.CorrectHist = metrics.NewHistogram(-cfg.HistRange, cfg.HistRange, bin)
		res.WrongHist = metrics.NewHistogram(-cfg.HistRange, cfg.HistRange, bin)
	}

	total := cfg.WarmupUops + cfg.MeasureUops
	for n := uint64(0); n < total; n++ {
		u, ok := gen.Next()
		if !ok {
			return res, fmt.Errorf("core: %s stream ended early", cfg.Bench)
		}
		measuring := n >= cfg.WarmupUops
		if measuring {
			res.Uops++
		}
		if !u.Kind.IsConditional() {
			continue
		}
		predTaken := pred.Predict(u.PC)
		misp := predTaken != u.Taken
		if or, isOracle := est.(confidence.TraceOracle); isOracle {
			or.ObserveNext(misp)
		}
		tok := est.Estimate(u.PC, predTaken)
		pred.Update(u.PC, u.Taken)
		est.Train(u.PC, tok, misp, u.Taken)
		if !measuring {
			continue
		}
		res.Branches++
		res.Confusion.Add(misp, tok.Band.Low())
		if res.CorrectHist != nil {
			if misp {
				res.WrongHist.Add(tok.Output)
			} else {
				res.CorrectHist.Add(tok.Output)
			}
		}
	}
	return res, nil
}

// AverageConfusion runs the same functional configuration over every
// benchmark and merges the confusion matrices, the aggregation the
// paper's Table 3 reports. makeEst builds a fresh estimator per
// benchmark (estimator state must not leak across benchmarks);
// makePred likewise (nil means baseline hybrid per benchmark).
func AverageConfusion(
	makePred func() predictor.Predictor,
	makeEst func() confidence.Estimator,
	warmup, measure uint64,
) (metrics.Confusion, error) {
	return mergedConfusion(func(_ context.Context, bench string) (FunctionalResult, error) {
		cfg := FunctionalConfig{
			Bench:       bench,
			Estimator:   makeEst(),
			WarmupUops:  warmup,
			MeasureUops: measure,
		}
		if makePred != nil {
			cfg.Predictor = makePred()
		}
		return RunFunctional(cfg)
	})
}

// mergedConfusion runs one functional job per benchmark in parallel
// and merges the confusion matrices in workload.Names() order, so the
// aggregate is identical under any worker count.
func mergedConfusion(job func(ctx context.Context, bench string) (FunctionalResult, error)) (metrics.Confusion, error) {
	var total metrics.Confusion
	perBench, err := mapBench(job)
	if err != nil {
		return total, err
	}
	for _, r := range perBench {
		total.Merge(r.Confusion)
	}
	return total, nil
}

// AverageConfusionSized is AverageConfusion driven by a Sizes value:
// run lengths and segment count come from sz, and components are
// rebuilt fresh for every (benchmark, segment) pair.
func AverageConfusionSized(
	makePred func() predictor.Predictor,
	makeEst func() confidence.Estimator,
	sz Sizes,
) (metrics.Confusion, error) {
	return mergedConfusion(func(_ context.Context, bench string) (FunctionalResult, error) {
		return RunFunctional(FunctionalConfig{
			Bench:         bench,
			MakeEstimator: makeEst,
			MakePredictor: makePred,
			WarmupUops:    sz.FuncWarmup,
			MeasureUops:   sz.FuncMeasure,
			Segments:      sz.segments(),
		})
	})
}

// AverageConfusionLinked is AverageConfusion for estimators that read
// the predictor's own state (Smith's self-confidence estimator): make
// returns a linked (predictor, estimator) pair per benchmark.
func AverageConfusionLinked(
	make func() (predictor.Predictor, confidence.Estimator),
	warmup, measure uint64,
) (metrics.Confusion, error) {
	return mergedConfusion(func(_ context.Context, bench string) (FunctionalResult, error) {
		pred, est := make()
		return RunFunctional(FunctionalConfig{
			Bench:       bench,
			Predictor:   pred,
			Estimator:   est,
			WarmupUops:  warmup,
			MeasureUops: measure,
		})
	})
}
