package core

// jobspec.go defines the serializable form of a timing simulation: the
// job type the distributed sweep layer (internal/dist) ships to worker
// processes. A JobSpec is a declarative TimingSpec — the estimator is
// a confidence.Spec instead of a constructor closure — plus the run
// sizes, so Key() reproduces exactly the content-addressed cache key
// the in-process path uses. Byte-identity of distributed sweeps rests
// on that equality: a worker files its result under the same key the
// coordinator's final aggregation pass looks up.

import (
	"context"
	"fmt"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
)

// Job-size sanity bounds. JobSpecs arrive over the wire, so hostile or
// corrupt values must fail validation rather than wedge a worker in a
// near-infinite simulation. The paper's full-fidelity runs are 30M
// uops; the cap leaves two orders of magnitude of headroom.
const (
	maxJobUops     = 4 << 30
	maxJobSegments = 1024
)

// JobSizes carries the timing-run lengths a job needs (the functional
// lengths in Sizes never reach a timing key).
type JobSizes struct {
	// Warmup and Measure are uop counts (Sizes.Warmup / Sizes.Measure).
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Segments is the normalized segment count (>= 1).
	Segments int `json:"segments"`
}

// JobSpec is one timing simulation in wire form. Every field is plain
// data; TimingSpec converts back to the executable form.
type JobSpec struct {
	// Bench is the workload name.
	Bench string `json:"bench"`
	// Machine is the full timing-model parameter set, embedded rather
	// than named so coordinator and worker need not agree on a preset
	// registry.
	Machine config.Machine `json:"machine"`
	// Predictor names the baseline predictor kind
	// ("bimodal-gshare" or "gshare-perceptron").
	Predictor string `json:"predictor"`
	// Estimator declaratively describes the confidence estimator; nil
	// means none (the ungated baseline).
	Estimator *confidence.Spec `json:"estimator,omitempty"`
	// GateThreshold and GateLatency mirror gating.Policy.
	GateThreshold int `json:"gate_threshold,omitempty"`
	GateLatency   int `json:"gate_latency,omitempty"`
	// Reversal, Perfect and SpeculativeTrain mirror the TimingSpec
	// flags and the training-site ablation knob.
	Reversal         bool `json:"reversal,omitempty"`
	Perfect          bool `json:"perfect,omitempty"`
	SpeculativeTrain bool `json:"speculative_train,omitempty"`
	// Sizes is the run length.
	Sizes JobSizes `json:"sizes"`
}

// predictorKindFromString is the inverse of PredictorKind.String.
func predictorKindFromString(s string) (PredictorKind, error) {
	switch s {
	case BimodalGshare.String():
		return BimodalGshare, nil
	case GsharePerceptron.String():
		return GsharePerceptron, nil
	}
	return 0, fmt.Errorf("core: unknown predictor kind %q", s)
}

// jobSpecOf converts an in-process timing job to wire form. The second
// return is false when the job is not wire-expressible — its estimator
// exists only as a closure — and must run locally.
func jobSpecOf(spec TimingSpec, sz Sizes, speculativeTrain bool) (JobSpec, bool) {
	if spec.Estimator != nil && spec.EstSpec == nil {
		return JobSpec{}, false
	}
	return JobSpec{
		Bench:            spec.Bench,
		Machine:          spec.Machine,
		Predictor:        spec.Predictor.String(),
		Estimator:        spec.EstSpec,
		GateThreshold:    spec.Gating.Threshold,
		GateLatency:      spec.Gating.Latency,
		Reversal:         spec.Reversal,
		Perfect:          spec.Perfect,
		SpeculativeTrain: speculativeTrain,
		Sizes: JobSizes{
			Warmup:   sz.Warmup,
			Measure:  sz.Measure,
			Segments: sz.segments(),
		},
	}, true
}

// Validate rejects a JobSpec that could not have come from a real
// sweep: unknown predictor, inconsistent estimator spec, negative
// gating, or run sizes outside sanity bounds. Workers validate every
// decoded job before executing it.
func (j JobSpec) Validate() error {
	if j.Bench == "" {
		return fmt.Errorf("core: job spec: empty bench")
	}
	if err := j.Machine.Validate(); err != nil {
		return fmt.Errorf("core: job spec: machine: %w", err)
	}
	if _, err := predictorKindFromString(j.Predictor); err != nil {
		return fmt.Errorf("core: job spec: %w", err)
	}
	if err := j.Estimator.Validate(); err != nil {
		return fmt.Errorf("core: job spec: %w", err)
	}
	if j.GateThreshold < 0 || j.GateLatency < 0 {
		return fmt.Errorf("core: job spec: negative gating policy (%d, %d)", j.GateThreshold, j.GateLatency)
	}
	if j.Sizes.Measure == 0 {
		return fmt.Errorf("core: job spec: zero measure length")
	}
	if j.Sizes.Warmup > maxJobUops || j.Sizes.Measure > maxJobUops {
		return fmt.Errorf("core: job spec: run length %d/%d exceeds %d uops",
			j.Sizes.Warmup, j.Sizes.Measure, uint64(maxJobUops))
	}
	if j.Sizes.Segments < 1 || j.Sizes.Segments > maxJobSegments {
		return fmt.Errorf("core: job spec: segments %d outside [1,%d]", j.Sizes.Segments, maxJobSegments)
	}
	return nil
}

// timingSpec converts back to the executable form.
func (j JobSpec) timingSpec() (TimingSpec, Sizes, error) {
	kind, err := predictorKindFromString(j.Predictor)
	if err != nil {
		return TimingSpec{}, Sizes{}, err
	}
	spec := TimingSpec{
		Bench:     j.Bench,
		Machine:   j.Machine,
		Predictor: kind,
		EstSpec:   j.Estimator,
		Gating:    gating.Policy{Threshold: j.GateThreshold, Latency: j.GateLatency},
		Reversal:  j.Reversal,
		Perfect:   j.Perfect,
	}
	sz := Sizes{Warmup: j.Sizes.Warmup, Measure: j.Sizes.Measure, Segments: j.Sizes.Segments}
	return spec, sz, nil
}

// Key returns the job's content-addressed cache key — identical to the
// key the in-process sweep derives for the same configuration, which
// is what lets remote results merge back byte-identically.
func (j JobSpec) Key() (string, error) {
	if err := j.Validate(); err != nil {
		return "", err
	}
	spec, sz, err := j.timingSpec()
	if err != nil {
		return "", err
	}
	mkEst, err := spec.makeEstimator()
	if err != nil {
		return "", err
	}
	return timingKey(spec, mkEst, sz, j.SpeculativeTrain), nil
}

// ExecJob validates and executes one wire-form job in this process,
// through the normal cached path: the result lands in the local result
// cache (and any attached store), the job observer sees it, and
// repeated execution of the same job is served from cache. This is the
// entry point worker processes call for every job in a batch.
func ExecJob(ctx context.Context, j JobSpec) (metrics.Run, error) {
	if err := j.Validate(); err != nil {
		return metrics.Run{}, err
	}
	spec, sz, err := j.timingSpec()
	if err != nil {
		return metrics.Run{}, err
	}
	return runTimingSpecTrain(ctx, spec, sz, j.SpeculativeTrain)
}
