package core

// plan.go is the sweep planner behind distributed execution. A sweep
// in this package is ordinary Go code — nested loops calling
// runTiming — so the job space is not reified anywhere. CollectJobs
// recovers it: it re-runs the sweep function in a recording mode where
// every timing simulation is intercepted at the cache boundary,
// recorded as a wire-form JobSpec, and answered with a zero result.
// Control flow never branches on simulation results (jobs are
// independent by construction; see internal/runner), so the recording
// pass visits exactly the jobs a real pass would execute, in seconds
// instead of minutes.
//
// The recorded set deliberately excludes two classes of work:
//
//   - jobs whose results are already on hand (in-memory cache,
//     checkpoint journal, or on-disk store) — a resumed coordinator
//     must not re-dispatch finished simulations;
//   - jobs that are not wire-expressible (closure-built estimators,
//     used by some ablations) — these run locally during the final
//     aggregation pass, exactly as before.
//
// Functional (confidence-only) runs are also skipped during recording:
// they are orders of magnitude cheaper than timing runs and are not
// distributed, so the planner must not pay for them twice. They
// execute normally during the aggregation pass.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Plan is the enumerated job space of one sweep.
type Plan struct {
	// Jobs are the wire-form timing jobs to execute, sorted by cache
	// key so sharding is deterministic for any recording schedule.
	Jobs []JobSpec
	// Keys[i] is Jobs[i]'s content-addressed cache key.
	Keys []string
	// Stored counts distinct jobs skipped because a result was already
	// cached, journaled, or stored on disk.
	Stored int
	// Local counts distinct jobs that cannot be expressed in wire form
	// and will run in-process during the aggregation pass.
	Local int
}

// planState is the process-wide recorder. planning is read on the hot
// path of every timing run, so it is an atomic flag; the rest is only
// touched while recording, under the mutex (sweeps fan out across the
// worker pool, so records arrive concurrently).
var planState struct {
	planning atomic.Bool
	mu       sync.Mutex
	seen     map[string]struct{}
	jobs     []JobSpec
	keys     []string
	stored   int
	local    int
}

// planRecording reports whether a CollectJobs pass is active.
func planRecording() bool { return planState.planning.Load() }

// planRecord records one intercepted timing job under its cache key.
func planRecord(spec TimingSpec, sz Sizes, speculativeTrain bool, key string) {
	planState.mu.Lock()
	defer planState.mu.Unlock()
	if _, dup := planState.seen[key]; dup {
		return
	}
	planState.seen[key] = struct{}{}
	if haveResult(key) {
		planState.stored++
		return
	}
	js, ok := jobSpecOf(spec, sz, speculativeTrain)
	if !ok {
		planState.local++
		return
	}
	planState.jobs = append(planState.jobs, js)
	planState.keys = append(planState.keys, key)
}

// CollectJobs runs fn in recording mode and returns the sweep's
// enumerated job space. fn is typically the same closure the caller
// will run again afterwards for real — first against remote workers to
// fill the result store, then locally to aggregate and print.
//
// Only one CollectJobs may be active per process (the execution knobs
// in this package are process-wide; the planner follows suit).
func CollectJobs(fn func() error) (*Plan, error) {
	if !planState.planning.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("core: CollectJobs already active")
	}
	planState.mu.Lock()
	planState.seen = make(map[string]struct{})
	planState.jobs, planState.keys = nil, nil
	planState.stored, planState.local = 0, 0
	planState.mu.Unlock()

	err := fn()

	planState.planning.Store(false)
	planState.mu.Lock()
	p := &Plan{
		Jobs:   planState.jobs,
		Keys:   planState.keys,
		Stored: planState.stored,
		Local:  planState.local,
	}
	planState.seen, planState.jobs, planState.keys = nil, nil, nil
	planState.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("core: job collection: %w", err)
	}

	// Sort by key: recording order depends on worker scheduling, the
	// plan must not.
	order := make([]int, len(p.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return p.Keys[order[a]] < p.Keys[order[b]] })
	jobs := make([]JobSpec, len(order))
	keys := make([]string, len(order))
	for i, o := range order {
		jobs[i], keys[i] = p.Jobs[o], p.Keys[o]
	}
	p.Jobs, p.Keys = jobs, keys
	return p, nil
}
