package core

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
)

// plan_test.go pins the contracts distributed execution rests on:
// JobSpec.Key() must equal the in-process timing key for the same
// configuration (otherwise remote results never merge), and
// CollectJobs must enumerate the job space deterministically while
// excluding stored results and closure-only jobs.

// TestJobSpecKeyMatchesTimingKey is the byte-identity cornerstone: for
// every wire-expressible configuration, the key a worker derives from
// the decoded JobSpec must equal the key the coordinator's in-process
// aggregation pass computes. If these ever diverge, distributed sweeps
// recompute everything (or worse, silently miss the merge).
func TestJobSpecKeyMatchesTimingKey(t *testing.T) {
	base := config.Baseline40x4()
	cases := []struct {
		label string
		spec  TimingSpec
		sz    Sizes
		train bool
	}{
		{"ungated baseline", TimingSpec{Bench: "gzip", Machine: base},
			Sizes{Warmup: 1000, Measure: 3000, Segments: 1}, false},
		{"cic gated", TimingSpec{
			Bench: "gcc", Machine: base,
			EstSpec: confidence.SpecCIC(25), Gating: gating.PL(1),
		}, Sizes{Warmup: 1000, Measure: 3000, Segments: 2}, false},
		{"jrs", TimingSpec{
			Bench: "vortex", Machine: base,
			EstSpec: confidence.SpecJRS(14),
		}, Sizes{Warmup: 1000, Measure: 3000, Segments: 1}, false},
		{"tnt reversal", TimingSpec{
			Bench: "twolf", Machine: base, Predictor: GsharePerceptron,
			EstSpec: confidence.SpecTNT(75), Reversal: true,
		}, Sizes{Warmup: 500, Measure: 2000, Segments: 1}, false},
		{"perfect speculative-train", TimingSpec{
			Bench: "gzip", Machine: base,
			EstSpec: confidence.SpecCIC(0), Perfect: true,
		}, Sizes{Warmup: 1000, Measure: 3000, Segments: 1}, true},
		{"explicit none spec", TimingSpec{
			Bench: "gcc", Machine: base, EstSpec: confidence.SpecNone(),
		}, Sizes{Warmup: 1000, Measure: 3000, Segments: 1}, false},
		// Segments 0 normalizes to 1 on both paths.
		{"zero segments", TimingSpec{Bench: "gzip", Machine: base},
			Sizes{Warmup: 1000, Measure: 3000}, false},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			js, ok := jobSpecOf(tc.spec, tc.sz, tc.train)
			if !ok {
				t.Fatal("configuration unexpectedly not wire-expressible")
			}
			wireKey, err := js.Key()
			if err != nil {
				t.Fatalf("JobSpec.Key: %v", err)
			}
			mkEst, err := tc.spec.makeEstimator()
			if err != nil {
				t.Fatal(err)
			}
			localKey := timingKey(tc.spec, mkEst, tc.sz, tc.train)
			if wireKey != localKey {
				t.Errorf("wire key %q != in-process key %q", wireKey, localKey)
			}
		})
	}
}

// TestJobSpecOfClosureFallback: a closure-built estimator has no wire
// form, so jobSpecOf must decline; when a declarative spec is also
// present it wins and the job ships.
func TestJobSpecOfClosureFallback(t *testing.T) {
	sz := Sizes{Warmup: 1000, Measure: 3000, Segments: 1}
	closureOnly := TimingSpec{
		Bench: "gzip", Machine: config.Baseline40x4(),
		Estimator: func() confidence.Estimator { return confidence.NewCIC(0) },
	}
	if _, ok := jobSpecOf(closureOnly, sz, false); ok {
		t.Error("closure-only estimator reported wire-expressible")
	}
	both := closureOnly
	both.EstSpec = confidence.SpecCIC(0)
	js, ok := jobSpecOf(both, sz, false)
	if !ok {
		t.Fatal("spec+closure configuration must be wire-expressible")
	}
	if _, err := js.Key(); err != nil {
		t.Errorf("Key: %v", err)
	}
}

// TestJobSpecValidateRejects covers the hostile-wire-input guards.
func TestJobSpecValidateRejects(t *testing.T) {
	valid := func() JobSpec {
		return JobSpec{
			Bench:     "gzip",
			Machine:   config.Baseline40x4(),
			Predictor: "bimodal-gshare",
			Sizes:     JobSizes{Warmup: 1000, Measure: 3000, Segments: 1},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline fixture invalid: %v", err)
	}
	cases := []struct {
		label  string
		mutate func(*JobSpec)
		want   string
	}{
		{"empty bench", func(j *JobSpec) { j.Bench = "" }, "bench"},
		{"unknown predictor", func(j *JobSpec) { j.Predictor = "oracle" }, "predictor"},
		{"bad estimator spec", func(j *JobSpec) { j.Estimator = &confidence.Spec{Kind: "quantum"} }, "unknown"},
		{"negative gating", func(j *JobSpec) { j.GateThreshold = -1 }, "gating"},
		{"zero measure", func(j *JobSpec) { j.Sizes.Measure = 0 }, "measure"},
		{"absurd warmup", func(j *JobSpec) { j.Sizes.Warmup = maxJobUops + 1 }, "uops"},
		{"zero segments", func(j *JobSpec) { j.Sizes.Segments = 0 }, "segments"},
		{"absurd segments", func(j *JobSpec) { j.Sizes.Segments = maxJobSegments + 1 }, "segments"},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			j := valid()
			tc.mutate(&j)
			err := j.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
			if _, err := j.Key(); err == nil {
				t.Error("Key accepted an invalid job")
			}
		})
	}
}

// planSweep is a small two-bench sweep used by the CollectJobs tests.
// The benches slice controls iteration order so determinism across
// recording schedules can be pinned.
func planSweep(benches []string, lambdas []int) func() error {
	return func() error {
		for _, bench := range benches {
			for _, lambda := range lambdas {
				spec := TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					EstSpec: confidence.SpecCIC(lambda), Gating: gating.PL(1),
				}
				sz := Sizes{Warmup: 1000, Measure: 3000, Segments: 1}
				if _, err := runTiming(context.Background(), spec, sz); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// TestCollectJobsDeterministic: the same sweep visited in two different
// orders must produce identical plans — sorted keys, same jobs.
func TestCollectJobsDeterministic(t *testing.T) {
	ResetResultCache()
	defer ResetResultCache()
	lambdas := []int{0, 10, 25}
	forward, err := CollectJobs(planSweep([]string{"gzip", "gcc"}, lambdas))
	if err != nil {
		t.Fatal(err)
	}
	backward, err := CollectJobs(planSweep([]string{"gcc", "gzip"}, lambdas))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(lambdas)
	if len(forward.Jobs) != want || len(forward.Keys) != want {
		t.Fatalf("plan has %d jobs / %d keys, want %d", len(forward.Jobs), len(forward.Keys), want)
	}
	if !sort.StringsAreSorted(forward.Keys) {
		t.Error("plan keys not sorted")
	}
	if !reflect.DeepEqual(forward.Keys, backward.Keys) {
		t.Errorf("plans differ across visit order:\n forward:  %v\n backward: %v", forward.Keys, backward.Keys)
	}
	if !reflect.DeepEqual(forward.Jobs, backward.Jobs) {
		t.Error("plan jobs differ across visit order")
	}
	// A recording pass must not leave zero-result garbage in the cache.
	if hits, misses := ResultCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("recording pass touched the result cache: hits=%d misses=%d", hits, misses)
	}
	// Duplicate visits collapse: running the same sweep body twice in
	// one pass records each distinct job once.
	double, err := CollectJobs(func() error {
		if err := planSweep([]string{"gzip"}, lambdas)(); err != nil {
			return err
		}
		return planSweep([]string{"gzip"}, lambdas)()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(double.Jobs) != len(lambdas) {
		t.Errorf("duplicate visits not collapsed: %d jobs, want %d", len(double.Jobs), len(lambdas))
	}
}

// TestCollectJobsExcludesStored: a key with a result already on hand
// must count as Stored and stay out of the dispatch list — the
// resume-without-recomputation guarantee.
func TestCollectJobsExcludesStored(t *testing.T) {
	ResetResultCache()
	defer ResetResultCache()
	sweep := planSweep([]string{"gzip"}, []int{0, 10, 25})
	full, err := CollectJobs(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Jobs) != 3 || full.Stored != 0 {
		t.Fatalf("fresh plan: %d jobs, %d stored; want 3, 0", len(full.Jobs), full.Stored)
	}
	InjectResult(full.Keys[1], metrics.Run{Cycles: 500, Retired: 1234})
	resumed, err := CollectJobs(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stored != 1 {
		t.Errorf("Stored = %d, want 1", resumed.Stored)
	}
	if len(resumed.Jobs) != 2 {
		t.Errorf("resumed plan has %d jobs, want 2", len(resumed.Jobs))
	}
	for _, k := range resumed.Keys {
		if k == full.Keys[1] {
			t.Error("stored key re-dispatched")
		}
	}
}

// TestCollectJobsCountsLocal: closure-only estimators cannot ship, so
// the planner must divert them to the Local count instead of the job
// list.
func TestCollectJobsCountsLocal(t *testing.T) {
	ResetResultCache()
	defer ResetResultCache()
	plan, err := CollectJobs(func() error {
		sz := Sizes{Warmup: 1000, Measure: 3000, Segments: 1}
		local := TimingSpec{
			Bench: "gzip", Machine: config.Baseline40x4(),
			Estimator: func() confidence.Estimator { return confidence.NewCIC(0) },
		}
		if _, err := runTiming(context.Background(), local, sz); err != nil {
			return err
		}
		wire := TimingSpec{
			Bench: "gzip", Machine: config.Baseline40x4(),
			EstSpec: confidence.SpecCIC(25),
		}
		_, err := runTiming(context.Background(), wire, sz)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Local != 1 {
		t.Errorf("Local = %d, want 1", plan.Local)
	}
	if len(plan.Jobs) != 1 {
		t.Errorf("plan has %d wire jobs, want 1", len(plan.Jobs))
	}
}

// TestCollectJobsRejectsConcurrent: the planner is process-wide state,
// so a nested or overlapping CollectJobs must fail fast.
func TestCollectJobsRejectsConcurrent(t *testing.T) {
	_, err := CollectJobs(func() error {
		if _, nested := CollectJobs(func() error { return nil }); nested == nil {
			t.Error("nested CollectJobs accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The flag must be released afterwards.
	if _, err := CollectJobs(func() error { return nil }); err != nil {
		t.Errorf("planner flag leaked: %v", err)
	}
}
