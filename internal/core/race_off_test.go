//go:build !race

package core

// raceDetectorOn is false in regular test builds; see race_on_test.go.
const raceDetectorOn = false
