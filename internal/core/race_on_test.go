//go:build race

package core

// raceDetectorOn reports whether this test binary was built with the
// race detector. The full timing sweeps run 10-15x slower under race
// instrumentation and blow the per-package test timeout, so the
// heaviest paper-shape tests skip themselves; the runner's concurrency
// still gets race coverage from TestDeterministicAcrossWorkerCounts,
// which shrinks its run lengths instead of skipping.
const raceDetectorOn = true
