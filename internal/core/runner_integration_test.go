package core

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
)

// These tests pin the two guarantees the runner migration makes:
// results are bit-identical under any worker count, and identical
// timing configurations are simulated exactly once per suite.

// skipHeavyUnderRace skips full-size timing sweeps in race-detector
// builds: instrumentation slows them 10-15x past the package timeout.
// The sweep machinery still runs under race via
// TestDeterministicAcrossWorkerCounts at reduced run lengths.
func skipHeavyUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorOn {
		t.Skip("full timing sweep skipped under -race")
	}
}

// sweepResults runs a small timing sweep (per-benchmark baseline plus
// one gated configuration) with the given worker count and returns the
// JSON-serialized metrics.Run results in benchmark order.
func sweepResults(t *testing.T, workers int, sz Sizes) []byte {
	t.Helper()
	ResetResultCache()
	SetParallelism(workers)
	defer SetParallelism(0)
	runs, err := mapBench(func(ctx context.Context, bench string) ([2]metrics.Run, error) {
		base, err := runTiming(ctx, TimingSpec{Bench: bench, Machine: config.Baseline40x4()}, sz)
		if err != nil {
			return [2]metrics.Run{}, err
		}
		gated, err := runTiming(ctx, TimingSpec{
			Bench: bench, Machine: config.Baseline40x4(),
			Estimator: func() confidence.Estimator { return confidence.NewCIC(0) },
			Gating:    gating.PL(1),
		}, sz)
		if err != nil {
			return [2]metrics.Run{}, err
		}
		return [2]metrics.Run{base, gated}, nil
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	b, err := json.Marshal(runs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterministicAcrossWorkerCounts is the determinism regression
// test: the same QuickSizes sweep, run serially and at full
// parallelism, must produce byte-identical metrics.Run results.
// Multi-segment runs are included so segment merge order is covered.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep in -short mode")
	}
	sz := QuickSizes()
	if raceDetectorOn {
		// Keep race coverage of the pool/cache concurrency while
		// staying inside the instrumented-build time budget.
		sz = Sizes{Warmup: 2_000, Measure: 6_000}
	}
	sz.Segments = 2
	serial := sweepResults(t, 1, sz)
	parallel := sweepResults(t, runtime.GOMAXPROCS(0), sz)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("results differ between workers=1 and workers=%d:\n serial:   %s\n parallel: %s",
			runtime.GOMAXPROCS(0), serial, parallel)
	}
}

// TestResultCacheServesRepeats checks the cache-hit counter: the
// second identical timing run must be a hit, not a second simulation,
// and must return the identical result.
func TestResultCacheServesRepeats(t *testing.T) {
	ResetResultCache()
	defer ResetResultCache()
	sz := Sizes{Warmup: 2_000, Measure: 5_000}
	spec := TimingSpec{Bench: "gzip", Machine: config.Baseline40x4()}

	first, err := runTiming(context.Background(), spec, sz)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := ResultCacheStats()
	if hits != 0 || misses != 1 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", hits, misses)
	}

	second, err := runTiming(context.Background(), spec, sz)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses = ResultCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("after repeat run: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if first != second {
		t.Errorf("cached result differs from original:\n first:  %+v\n second: %+v", first, second)
	}

	// A different configuration must not collide with the cached one.
	perf := spec
	perf.Perfect = true
	if _, err := runTiming(context.Background(), perf, sz); err != nil {
		t.Fatal(err)
	}
	if _, misses = ResultCacheStats(); misses != 2 {
		t.Errorf("distinct config did not miss: misses=%d, want 2", misses)
	}
}

// TestDistinctTrainThresholdsDistinctKeys pins the cache-key fix for
// the train-threshold ablation: CIC estimators differing only in T
// must hash to different timing keys.
func TestDistinctTrainThresholdsDistinctKeys(t *testing.T) {
	sz := QuickSizes()
	keyFor := func(T int) string {
		spec := TimingSpec{
			Bench: "gzip", Machine: config.Baseline40x4(),
			Estimator: func() confidence.Estimator {
				return confidence.NewCICWith(confidence.CICConfig{
					Lambda: 0, Reversal: confidence.DisableReversal, TrainThreshold: T,
				})
			},
		}
		mkEst, err := spec.makeEstimator()
		if err != nil {
			t.Fatal(err)
		}
		return timingKey(spec, mkEst, sz, false)
	}
	if keyFor(5) == keyFor(200) {
		t.Error("timing keys collide for distinct CIC training thresholds")
	}
	if keyFor(75) != keyFor(75) {
		t.Error("timing key not stable")
	}
}
