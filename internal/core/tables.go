package core

import (
	"context"
	"fmt"
	"strings"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/workload"
)

// -------------------------------------------------------------------
// Table 2 — benchmarks and their speculative execution characteristics
// -------------------------------------------------------------------

// Table2Row is one benchmark's row of Table 2.
type Table2Row struct {
	Bench string
	// MispPer1K is branch mispredicts per 1000 uops (measured on the
	// baseline 40c4w machine, real predictor).
	MispPer1K float64
	// PaperMispPer1K is the paper's value (calibration target).
	PaperMispPer1K float64
	// Waste20x4, Waste20x8, Waste40x4 are the percentage increases in
	// uops executed due to branch mispredictions per machine.
	Waste20x4, Waste20x8, Waste40x4 float64
}

// Table2Result is the full table plus averages.
type Table2Result struct {
	Rows []Table2Row
	// AvgMispPer1K and AvgWaste* mirror the paper's "average" row.
	AvgMispPer1K                             float64
	AvgWaste20x4, AvgWaste20x8, AvgWaste40x4 float64
}

// Table2 regenerates Table 2: per-benchmark misprediction rates and
// the wasted-execution increase on the three machines, each measured
// as executed-uops(real predictor) / executed-uops(perfect prediction)
// − 1.
func Table2(sz Sizes) (*Table2Result, error) {
	machines := []config.Machine{config.Mid20x4(), config.Wide20x8(), config.Baseline40x4()}
	rows, err := mapBench(func(ctx context.Context, bench string) (Table2Row, error) {
		row := Table2Row{Bench: bench, PaperMispPer1K: workload.Table2Target[bench]}
		for i, machine := range machines {
			perfect, err := runTiming(ctx, TimingSpec{Bench: bench, Machine: machine, Perfect: true}, sz)
			if err != nil {
				return row, err
			}
			real, err := runTiming(ctx, TimingSpec{Bench: bench, Machine: machine}, sz)
			if err != nil {
				return row, err
			}
			w := real.WastePercent(perfect.Executed)
			switch i {
			case 0:
				row.Waste20x4 = w
			case 1:
				row.Waste20x8 = w
			case 2:
				row.Waste40x4 = w
				row.MispPer1K = real.MispredictsPer1KUops()
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Rows: rows}
	for _, r := range rows {
		res.AvgMispPer1K += r.MispPer1K
		res.AvgWaste20x4 += r.Waste20x4
		res.AvgWaste20x8 += r.Waste20x8
		res.AvgWaste40x4 += r.Waste40x4
	}
	n := float64(len(res.Rows))
	res.AvgMispPer1K /= n
	res.AvgWaste20x4 /= n
	res.AvgWaste20x8 /= n
	res.AvgWaste40x4 /= n
	return res, nil
}

// String renders the table in the paper's layout.
func (t *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Benchmarks and their speculative execution characteristics\n")
	fmt.Fprintf(&b, "%-9s %11s %8s | %% increase in uops executed\n", "", "misp/Kuop", "(paper)")
	fmt.Fprintf(&b, "%-9s %11s %8s | %8s %8s %8s\n", "bench", "", "", "20c4w", "20c8w", "40c4w")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-9s %11.1f %8.1f | %7.0f%% %7.0f%% %7.0f%%\n",
			r.Bench, r.MispPer1K, r.PaperMispPer1K, r.Waste20x4, r.Waste20x8, r.Waste40x4)
	}
	fmt.Fprintf(&b, "%-9s %11.1f %8.1f | %7.0f%% %7.0f%% %7.0f%%\n",
		"average", t.AvgMispPer1K, 4.1, t.AvgWaste20x4, t.AvgWaste20x8, t.AvgWaste40x4)
	return b.String()
}

// -------------------------------------------------------------------
// Table 3 — Enhanced JRS vs Perceptron (confidence estimation metrics)
// -------------------------------------------------------------------

// Table3Row is one estimator threshold's PVN/Spec pair.
type Table3Row struct {
	Estimator string
	Lambda    int
	PVN, Spec float64 // percentages
}

// Table3Result holds both halves of Table 3.
type Table3Result struct {
	JRS, Perceptron []Table3Row
}

// Table3 regenerates Table 3: PVN and Spec for enhanced JRS at
// λ∈{3,7,11,15} and the perceptron (CIC) estimator at λ∈{25,0,-25,-50},
// aggregated over all benchmarks.
func Table3(sz Sizes) (*Table3Result, error) {
	res := &Table3Result{}
	for _, lam := range []int{3, 7, 11, 15} {
		l := lam
		c, err := AverageConfusionSized(nil, func() confidence.Estimator {
			return confidence.NewEnhancedJRS(l)
		}, sz)
		if err != nil {
			return nil, err
		}
		res.JRS = append(res.JRS, Table3Row{
			Estimator: "jrs", Lambda: l, PVN: 100 * c.PVN(), Spec: 100 * c.Spec(),
		})
	}
	for _, lam := range []int{25, 0, -25, -50} {
		l := lam
		c, err := AverageConfusionSized(nil, func() confidence.Estimator {
			return confidence.NewCIC(l)
		}, sz)
		if err != nil {
			return nil, err
		}
		res.Perceptron = append(res.Perceptron, Table3Row{
			Estimator: "perceptron", Lambda: l, PVN: 100 * c.PVN(), Spec: 100 * c.Spec(),
		})
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (t *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Enhanced JRS vs Perceptron (confidence estimation metrics)\n")
	fmt.Fprintf(&b, "  Enhanced JRS                Perceptron\n")
	fmt.Fprintf(&b, "  %-4s %6s %6s          %-4s %6s %6s\n", "λ", "PVN%", "Spec%", "λ", "PVN%", "Spec%")
	for i := range t.JRS {
		fmt.Fprintf(&b, "  %-4d %6.0f %6.0f          %-4d %6.0f %6.0f\n",
			t.JRS[i].Lambda, t.JRS[i].PVN, t.JRS[i].Spec,
			t.Perceptron[i].Lambda, t.Perceptron[i].PVN, t.Perceptron[i].Spec)
	}
	b.WriteString("  (paper: JRS PVN 36/28/24/22, Spec 85/92/94/96;\n")
	b.WriteString("          perceptron PVN 77/74/69/61, Spec 34/43/54/66)\n")
	return b.String()
}

// -------------------------------------------------------------------
// Table 4 — pipeline gating metrics: JRS (PL1/PL2/PL3) vs CIC (PL1)
// -------------------------------------------------------------------

// Table4Result holds the gating sweep on the baseline machine.
type Table4Result struct {
	// JRS has one row per (λ, PL) pair; Perceptron one per λ at PL1.
	JRS        []GatingResult
	Perceptron []GatingResult
}

// Table4 regenerates Table 4: reduction in executed uops (U) and
// performance loss (P) from pipeline gating on the 40-cycle baseline,
// for enhanced JRS with branch-counter thresholds 1-3 and the
// perceptron estimator with threshold 1.
func Table4(sz Sizes) (*Table4Result, error) {
	baseline := func(bench string) TimingSpec {
		return TimingSpec{Bench: bench, Machine: config.Baseline40x4()}
	}
	var variants []variant
	for _, pl := range []int{1, 2, 3} {
		for _, lam := range []int{3, 7, 11, 15} {
			pl, lam := pl, lam
			variants = append(variants, variant{
				Label: fmt.Sprintf("jrs λ=%d PL%d", lam, pl),
				Of: func(bench string) TimingSpec {
					return TimingSpec{
						Bench: bench, Machine: config.Baseline40x4(),
						EstSpec: confidence.SpecJRS(lam),
						Gating:  gating.PL(pl),
					}
				},
			})
		}
	}
	for _, lam := range []int{25, 0, -25, -50} {
		lam := lam
		variants = append(variants, variant{
			Label: fmt.Sprintf("cic λ=%d PL1", lam),
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					EstSpec: confidence.SpecCIC(lam),
					Gating:  gating.PL(1),
				}
			},
		})
	}
	rows, err := gatingSweep(sz, baseline, variants)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{}
	for _, r := range rows {
		if strings.HasPrefix(r.Label, "jrs") {
			res.JRS = append(res.JRS, r)
		} else {
			res.Perceptron = append(res.Perceptron, r)
		}
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (t *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4. Enhanced JRS vs Perceptron (pipeline gating metrics, 40c4w)\n")
	b.WriteString("U = reduction in executed uops (%), P = performance loss (%)\n\n")
	b.WriteString("        JRS PL1        JRS PL2        JRS PL3        Perceptron PL1\n")
	b.WriteString(" λ      U      P       U      P       U      P   |  λ      U      P\n")
	jlam := []int{3, 7, 11, 15}
	plam := []int{25, 0, -25, -50}
	at := func(pl, li int) GatingResult { return t.JRS[(pl-1)*4+li] }
	for i := range jlam {
		fmt.Fprintf(&b, "%3d %6.1f %6.1f  %6.1f %6.1f  %6.1f %6.1f  | %3d %6.1f %6.1f\n",
			jlam[i], at(1, i).U, at(1, i).P, at(2, i).U, at(2, i).P, at(3, i).U, at(3, i).P,
			plam[i], t.Perceptron[i].U, t.Perceptron[i].P)
	}
	b.WriteString("(paper JRS PL1 U/P: 26/17 29/25 31/29 31/32; PL2: 14/4 19/9 21/12 22/14;\n")
	b.WriteString(" PL3: 9/2 13/4 14/5 15/7; perceptron PL1: 8/0 11/1 14/2 18/3)\n")
	return b.String()
}

// -------------------------------------------------------------------
// Table 5 — effect of a better baseline branch predictor (§5.2)
// -------------------------------------------------------------------

// Table5Result compares gating on the two baseline predictors.
type Table5Result struct {
	BimodalGshare    []GatingResult
	GsharePerceptron []GatingResult
}

// Table5 regenerates Table 5: CIC pipeline gating (PL1) on the
// bimodal-gshare baseline (λ ∈ {25,0,-25,-50}) versus the
// gshare-perceptron baseline (λ ∈ {0,-25,-50,-60}).
func Table5(sz Sizes) (*Table5Result, error) {
	mk := func(kind PredictorKind, lams []int) []variant {
		var out []variant
		for _, lam := range lams {
			lam := lam
			out = append(out, variant{
				Label: fmt.Sprintf("%s λ=%d", kind, lam),
				Of: func(bench string) TimingSpec {
					return TimingSpec{
						Bench: bench, Machine: config.Baseline40x4(), Predictor: kind,
						EstSpec: confidence.SpecCIC(lam),
						Gating:  gating.PL(1),
					}
				},
			})
		}
		return out
	}
	res := &Table5Result{}
	rows, err := gatingSweep(sz, func(bench string) TimingSpec {
		return TimingSpec{Bench: bench, Machine: config.Baseline40x4(), Predictor: BimodalGshare}
	}, mk(BimodalGshare, []int{25, 0, -25, -50}))
	if err != nil {
		return nil, err
	}
	res.BimodalGshare = rows
	rows, err = gatingSweep(sz, func(bench string) TimingSpec {
		return TimingSpec{Bench: bench, Machine: config.Baseline40x4(), Predictor: GsharePerceptron}
	}, mk(GsharePerceptron, []int{0, -25, -50, -60}))
	if err != nil {
		return nil, err
	}
	res.GsharePerceptron = rows
	return res, nil
}

// String renders the table in the paper's layout.
func (t *Table5Result) String() string {
	var b strings.Builder
	b.WriteString("Table 5. Effect of better baseline branch predictor (CIC gating, PL1, 40c4w)\n")
	b.WriteString("  bimodal-gshare            gshare-perceptron\n")
	b.WriteString("  λ      U      P           λ      U      P\n")
	lams1 := []int{25, 0, -25, -50}
	lams2 := []int{0, -25, -50, -60}
	for i := range t.BimodalGshare {
		fmt.Fprintf(&b, "%4d %6.1f %6.1f        %4d %6.1f %6.1f\n",
			lams1[i], t.BimodalGshare[i].U, t.BimodalGshare[i].P,
			lams2[i], t.GsharePerceptron[i].U, t.GsharePerceptron[i].P)
	}
	b.WriteString("(paper: bimodal-gshare U/P 8/0 11/1 14/2 18/3;\n")
	b.WriteString("        gshare-perceptron U/P 4/0 8/1 12/2 14/3)\n")
	return b.String()
}

// -------------------------------------------------------------------
// Table 6 — perceptron size sensitivity (§5.4.1)
// -------------------------------------------------------------------

// Table6Config is one PiWjHk estimator geometry.
type Table6Config struct {
	Label                        string
	Entries, WeightBits, HistLen int
	SizeKB                       float64
}

// Table6Configs returns the paper's seven geometries.
func Table6Configs() []Table6Config {
	return []Table6Config{
		{"P128W8H32", 128, 8, 32, 4},
		{"P96W8H32", 96, 8, 32, 3},
		{"P128W6H32", 128, 6, 32, 3},
		{"P128W8H24", 128, 8, 24, 3},
		{"P64W8H32", 64, 8, 32, 2},
		{"P128W4H32", 128, 4, 32, 2},
		{"P128W8H16", 128, 8, 16, 2},
	}
}

// Table6Result is the size-sensitivity sweep.
type Table6Result struct {
	Rows []GatingResult
}

// Table6 regenerates Table 6: U and P for CIC pipeline gating (λ=0,
// PL1, 40c4w) across estimator geometries from 4 KB down to 2 KB.
func Table6(sz Sizes) (*Table6Result, error) {
	var variants []variant
	for _, cfg := range Table6Configs() {
		cfg := cfg
		variants = append(variants, variant{
			Label: cfg.Label,
			Of: func(bench string) TimingSpec {
				return TimingSpec{
					Bench: bench, Machine: config.Baseline40x4(),
					EstSpec: confidence.SpecCICWith(confidence.CICConfig{
						Entries:    cfg.Entries,
						WeightBits: cfg.WeightBits,
						HistoryLen: cfg.HistLen,
						Lambda:     0,
						Reversal:   confidence.DisableReversal,
					}),
					Gating: gating.PL(1),
				}
			},
		})
	}
	rows, err := gatingSweep(sz, func(bench string) TimingSpec {
		return TimingSpec{Bench: bench, Machine: config.Baseline40x4()}
	}, variants)
	if err != nil {
		return nil, err
	}
	return &Table6Result{Rows: rows}, nil
}

// String renders the table in the paper's layout.
func (t *Table6Result) String() string {
	var b strings.Builder
	b.WriteString("Table 6. Perceptron size sensitivity (CIC λ=0, PL1, 40c4w)\n")
	b.WriteString("size  config       P      U\n")
	cfgs := Table6Configs()
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%3.0fKB %-11s %5.1f %6.1f\n", cfgs[i].SizeKB, r.Label, r.P, r.U)
	}
	b.WriteString("(paper P/U: 1/11, 1/11, 2/10, 1/10, 1/10, 6/8, 1/8)\n")
	return b.String()
}
