package core

import (
	"context"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
	"bce/internal/pipeline"
	"bce/internal/predictor"
	"bce/internal/runner"
	"bce/internal/workload"
)

// Sizes groups the run lengths shared by the timing experiments. The
// paper runs 30M-instruction traces with 10M warmup (§4); the default
// here is scaled down to keep full-suite regeneration in minutes while
// staying well past estimator warmup. Override for higher fidelity.
type Sizes struct {
	// Warmup and Measure are uop counts for timing runs.
	Warmup, Measure uint64
	// FuncWarmup and FuncMeasure are uop counts for functional
	// (confidence-only) runs, which are much cheaper.
	FuncWarmup, FuncMeasure uint64
	// Segments is the number of independent trace segments to run and
	// merge per benchmark (the paper uses two, §4). Zero means one.
	Segments int
}

func (s Sizes) segments() int {
	if s.Segments < 1 {
		return 1
	}
	return s.Segments
}

// DefaultSizes returns the standard experiment sizes.
func DefaultSizes() Sizes {
	return Sizes{
		Warmup: 60_000, Measure: 200_000,
		FuncWarmup: 100_000, FuncMeasure: 400_000,
	}
}

// QuickSizes returns reduced sizes for tests and smoke runs.
func QuickSizes() Sizes {
	return Sizes{
		Warmup: 10_000, Measure: 30_000,
		FuncWarmup: 20_000, FuncMeasure: 60_000,
	}
}

// PredictorKind selects the baseline branch predictor for an
// experiment (§5.2 compares two).
type PredictorKind int

const (
	// BimodalGshare is the Table 1 baseline predictor.
	BimodalGshare PredictorKind = iota
	// GsharePerceptron is the better baseline of §5.2.
	GsharePerceptron
)

// String names the predictor kind.
func (k PredictorKind) String() string {
	if k == GsharePerceptron {
		return "gshare-perceptron"
	}
	return "bimodal-gshare"
}

func (k PredictorKind) make() predictor.Predictor {
	if k == GsharePerceptron {
		return predictor.NewGsharePerceptronHybrid()
	}
	return predictor.NewBaselineHybrid()
}

// TimingSpec is one timing simulation: a benchmark on a machine with a
// predictor, an optional estimator and the gating/reversal settings.
type TimingSpec struct {
	Bench     string
	Machine   config.Machine
	Predictor PredictorKind
	// EstSpec declaratively describes the confidence estimator. It is
	// the preferred form: a spec is JSON-serializable, so the job can
	// cross a process boundary (internal/dist ships sweeps to remote
	// workers). Nil with a nil Estimator means no estimator.
	EstSpec *confidence.Spec
	// Estimator builds the confidence estimator (nil = none). A
	// closure-built estimator cannot be distributed; prefer EstSpec.
	// When both are set, EstSpec wins.
	Estimator func() confidence.Estimator
	Gating    gating.Policy
	Reversal  bool
	Perfect   bool
}

// makeEstimator resolves the spec's estimator factory: the declarative
// EstSpec when present, else the Estimator closure, else none. An
// invalid EstSpec fails here, before any simulation runs.
func (s TimingSpec) makeEstimator() (func() confidence.Estimator, error) {
	if s.EstSpec != nil {
		if _, err := s.EstSpec.Build(); err != nil {
			return nil, err
		}
		if s.EstSpec.Kind == confidence.KindNone {
			return nil, nil
		}
		spec := s.EstSpec
		return func() confidence.Estimator {
			est, err := spec.Build()
			if err != nil {
				// Unreachable: the spec validated above and Build is
				// deterministic.
				panic(err)
			}
			return est
		}, nil
	}
	return s.Estimator, nil
}

// runTiming executes one spec and returns the measured-span counters.
// Results are served through the suite-wide content-addressed cache:
// the ungated baseline a dozen tables share runs once, not once per
// caller. The context classifies the enclosing runner job for
// progress ETAs (cache hit vs fresh simulation).
func runTiming(ctx context.Context, spec TimingSpec, sz Sizes) (metrics.Run, error) {
	return runTimingSpecTrain(ctx, spec, sz, false)
}

// runTimingSpecTrain is runTiming with control over the confidence
// training site (retire vs speculative fetch-time, an ablation knob).
func runTimingSpecTrain(ctx context.Context, spec TimingSpec, sz Sizes, speculativeTrain bool) (metrics.Run, error) {
	mkEst, err := spec.makeEstimator()
	if err != nil {
		return metrics.Run{}, err
	}
	key := timingKey(spec, mkEst, sz, speculativeTrain)
	// A collecting (plan-mode) sweep records the job instead of running
	// it; the zero result it returns feeds aggregation arithmetic whose
	// output the planner discards.
	if planRecording() {
		planRecord(spec, sz, speculativeTrain, key)
		return metrics.Run{}, nil
	}
	fresh := false
	r, err := resultCache.Do(key, func() (metrics.Run, error) {
		fresh = true
		return runTimingUncached(spec, mkEst, sz, speculativeTrain)
	})
	// A job is "cached" only if every simulation it asked for was
	// served from the cache; one fresh run re-latches it as computed.
	if fresh {
		runner.MarkComputed(ctx)
	} else {
		runner.MarkCached(ctx)
	}
	if err == nil {
		run := r
		observeJob(JobRecord{Key: key, Kind: "timing", Bench: spec.Bench, Cached: !fresh, Run: &run})
	}
	return r, err
}

// runTimingUncached executes the simulation itself. When sz requests
// multiple segments, each runs on a fresh machine over an independent
// runtime-randomness stream of the same static program — the segment
// index flows into the workload's seed derivation, so every
// (config, segment) job draws deterministic, order-independent
// randomness — and the counters are merged (the paper's
// two-segments-per-benchmark methodology, §4).
func runTimingUncached(spec TimingSpec, mkEst func() confidence.Estimator, sz Sizes, speculativeTrain bool) (metrics.Run, error) {
	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		return metrics.Run{}, err
	}
	var merged metrics.Run
	for seg := 0; seg < sz.segments(); seg++ {
		p := prof
		p.Segment = seg
		opt := pipeline.Options{
			Machine:  spec.Machine,
			Perfect:  spec.Perfect,
			Reversal: spec.Reversal,
		}
		if !spec.Perfect {
			opt.Predictor = spec.Predictor.make()
		}
		if mkEst != nil {
			opt.Estimator = mkEst()
		}
		opt.Gating = spec.Gating
		opt.SpeculativeCETrain = speculativeTrain
		sim := pipeline.New(opt, workload.New(p))
		sim.Run(sz.Warmup)
		merged.Merge(sim.Run(sz.Measure))
	}
	return merged, nil
}

// GatingResult is one (U, P) measurement: the percentage reduction in
// executed uops and the percentage performance loss versus the ungated
// baseline, averaged across benchmarks as the paper reports.
type GatingResult struct {
	// Label identifies the configuration (e.g. "λ=0 PL1").
	Label string
	// U is the mean percentage reduction in executed uops.
	U float64
	// P is the mean percentage performance loss (negative = speedup).
	P float64
}

// variant pairs a display label with a per-benchmark timing spec.
type variant struct {
	Label string
	Of    func(bench string) TimingSpec
}

// gatingSweep measures U and P for each estimator configuration
// against per-benchmark ungated baselines, averaged across benchmarks
// as the paper reports. baselineOf must yield the ungated spec for a
// benchmark; variants yields the gated specs. Each benchmark is one
// runner job producing its per-variant (U, P) pairs; the average is a
// serial reduction over the ordered job results, so the output is
// bit-identical under any worker count.
func gatingSweep(sz Sizes, baselineOf func(bench string) TimingSpec, variants []variant) ([]GatingResult, error) {
	type up struct{ u, p float64 }
	perBench, err := mapBench(func(ctx context.Context, bench string) ([]up, error) {
		base, err := runTiming(ctx, baselineOf(bench), sz)
		if err != nil {
			return nil, err
		}
		rows := make([]up, len(variants))
		for i, v := range variants {
			r, err := runTiming(ctx, v.Of(bench), sz)
			if err != nil {
				return nil, err
			}
			rows[i] = up{u: r.UopReductionPercent(base), p: r.PerfLossPercent(base)}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]GatingResult, len(variants))
	n := float64(len(perBench))
	for i, v := range variants {
		out[i].Label = v.Label
		for _, rows := range perBench {
			out[i].U += rows[i].u
			out[i].P += rows[i].p
		}
		out[i].U /= n
		out[i].P /= n
	}
	return out, nil
}
