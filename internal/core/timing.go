package core

import (
	"fmt"
	"runtime"
	"sync"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
	"bce/internal/pipeline"
	"bce/internal/predictor"
	"bce/internal/workload"
)

// Sizes groups the run lengths shared by the timing experiments. The
// paper runs 30M-instruction traces with 10M warmup (§4); the default
// here is scaled down to keep full-suite regeneration in minutes while
// staying well past estimator warmup. Override for higher fidelity.
type Sizes struct {
	// Warmup and Measure are uop counts for timing runs.
	Warmup, Measure uint64
	// FuncWarmup and FuncMeasure are uop counts for functional
	// (confidence-only) runs, which are much cheaper.
	FuncWarmup, FuncMeasure uint64
	// Segments is the number of independent trace segments to run and
	// merge per benchmark (the paper uses two, §4). Zero means one.
	Segments int
}

func (s Sizes) segments() int {
	if s.Segments < 1 {
		return 1
	}
	return s.Segments
}

// DefaultSizes returns the standard experiment sizes.
func DefaultSizes() Sizes {
	return Sizes{
		Warmup: 60_000, Measure: 200_000,
		FuncWarmup: 100_000, FuncMeasure: 400_000,
	}
}

// QuickSizes returns reduced sizes for tests and smoke runs.
func QuickSizes() Sizes {
	return Sizes{
		Warmup: 10_000, Measure: 30_000,
		FuncWarmup: 20_000, FuncMeasure: 60_000,
	}
}

// PredictorKind selects the baseline branch predictor for an
// experiment (§5.2 compares two).
type PredictorKind int

const (
	// BimodalGshare is the Table 1 baseline predictor.
	BimodalGshare PredictorKind = iota
	// GsharePerceptron is the better baseline of §5.2.
	GsharePerceptron
)

// String names the predictor kind.
func (k PredictorKind) String() string {
	if k == GsharePerceptron {
		return "gshare-perceptron"
	}
	return "bimodal-gshare"
}

func (k PredictorKind) make() predictor.Predictor {
	if k == GsharePerceptron {
		return predictor.NewGsharePerceptronHybrid()
	}
	return predictor.NewBaselineHybrid()
}

// TimingSpec is one timing simulation: a benchmark on a machine with a
// predictor, an optional estimator and the gating/reversal settings.
type TimingSpec struct {
	Bench     string
	Machine   config.Machine
	Predictor PredictorKind
	// Estimator builds the confidence estimator (nil = none).
	Estimator func() confidence.Estimator
	Gating    gating.Policy
	Reversal  bool
	Perfect   bool
}

// runTiming executes one spec and returns the measured-span counters.
func runTiming(spec TimingSpec, sz Sizes) (metrics.Run, error) {
	return runTimingSpecTrain(spec, sz, false)
}

// runTimingSpecTrain is runTiming with control over the confidence
// training site (retire vs speculative fetch-time, an ablation knob).
// When sz requests multiple segments, each runs on a fresh machine
// over an independent runtime-randomness stream of the same static
// program, and the counters are merged (the paper's two-segments-per-
// benchmark methodology, §4).
func runTimingSpecTrain(spec TimingSpec, sz Sizes, speculativeTrain bool) (metrics.Run, error) {
	prof, err := workload.ByName(spec.Bench)
	if err != nil {
		return metrics.Run{}, err
	}
	var merged metrics.Run
	for seg := 0; seg < sz.segments(); seg++ {
		p := prof
		p.Segment = seg
		opt := pipeline.Options{
			Machine:  spec.Machine,
			Perfect:  spec.Perfect,
			Reversal: spec.Reversal,
		}
		if !spec.Perfect {
			opt.Predictor = spec.Predictor.make()
		}
		if spec.Estimator != nil {
			opt.Estimator = spec.Estimator()
		}
		opt.Gating = spec.Gating
		opt.SpeculativeCETrain = speculativeTrain
		sim := pipeline.New(opt, workload.New(p))
		sim.Run(sz.Warmup)
		merged.Merge(sim.Run(sz.Measure))
	}
	return merged, nil
}

// forEachBench runs fn for every benchmark concurrently (each
// benchmark's simulations are independent and deterministic) and
// returns the first error.
func forEachBench(fn func(bench string) error) error {
	names := workload.Names()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ch := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range ch {
				if err := fn(name); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", name, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, n := range names {
		ch <- n
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// GatingResult is one (U, P) measurement: the percentage reduction in
// executed uops and the percentage performance loss versus the ungated
// baseline, averaged across benchmarks as the paper reports.
type GatingResult struct {
	// Label identifies the configuration (e.g. "λ=0 PL1").
	Label string
	// U is the mean percentage reduction in executed uops.
	U float64
	// P is the mean percentage performance loss (negative = speedup).
	P float64
}

// gatingSweep measures U and P for each estimator configuration
// against per-benchmark ungated baselines. baselineOf must yield the
// ungated spec for a benchmark; variants yields the gated specs.
func gatingSweep(
	sz Sizes,
	baselineOf func(bench string) TimingSpec,
	variants []struct {
		Label string
		Of    func(bench string) TimingSpec
	},
) ([]GatingResult, error) {
	type acc struct {
		u, p float64
		n    int
	}
	accs := make([]acc, len(variants))
	var mu sync.Mutex
	err := forEachBench(func(bench string) error {
		base, err := runTiming(baselineOf(bench), sz)
		if err != nil {
			return err
		}
		for i, v := range variants {
			r, err := runTiming(v.Of(bench), sz)
			if err != nil {
				return err
			}
			mu.Lock()
			accs[i].u += r.UopReductionPercent(base)
			accs[i].p += r.PerfLossPercent(base)
			accs[i].n++
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]GatingResult, len(variants))
	for i, v := range variants {
		out[i] = GatingResult{
			Label: v.Label,
			U:     accs[i].u / float64(accs[i].n),
			P:     accs[i].p / float64(accs[i].n),
		}
	}
	return out, nil
}
