package dist

import (
	"sync"
	"time"
)

// breaker.go is the coordinator's per-worker circuit breaker. Each
// worker URL gets one breaker; batch outcomes feed it, and a worker
// that fails too often is evicted from the shard rotation (its loop
// requeues everything it holds and stops taking work) instead of
// absorbing retries. While open, the breaker schedules half-open
// probes — cheap schema pings, not real batches — with a doubling
// cooldown; a passing probe re-admits the worker, and a worker whose
// probe budget runs dry is declared permanently lost. The breaker is
// advisory state for exactly one worker loop plus read-only snapshots,
// so a single mutex is plenty.

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the worker is healthy and takes batches.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the worker is evicted; a probe is scheduled.
	BreakerOpen
	// BreakerHalfOpen: a probe is in flight deciding re-admission.
	BreakerHalfOpen
)

// String renders the state for logs and fleet snapshots.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerOptions tunes the per-worker circuit breakers. The zero value
// picks defaults sized for the coordinator's retry cadence.
type BreakerOptions struct {
	// ConsecutiveFailures trips the breaker after this many batch
	// failures in a row (default 2 — one failed task's in-place retries
	// are enough evidence against a worker that was healthy moments
	// ago).
	ConsecutiveFailures int
	// ErrorRate trips the breaker when at least Window outcomes have
	// been seen and this fraction of the last Window failed (default
	// 0.5). Catches flaky workers whose successes keep resetting the
	// consecutive counter.
	ErrorRate float64
	// Window is the sliding outcome window for ErrorRate (default 8).
	Window int
	// Cooldown is the wait before the first half-open probe, doubled
	// after every failed probe up to MaxCooldown. Default 1s;
	// NewCoordinator derives a tighter default from RetryBackoff.
	Cooldown time.Duration
	// MaxCooldown caps the doubled cooldown (default 30s).
	MaxCooldown time.Duration
	// MaxProbeFailures is how many consecutive failed probes declare
	// the worker permanently lost (default 6).
	MaxProbeFailures int
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.ConsecutiveFailures <= 0 {
		o.ConsecutiveFailures = 2
	}
	if o.ErrorRate <= 0 || o.ErrorRate > 1 {
		o.ErrorRate = 0.5
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.MaxCooldown <= 0 {
		o.MaxCooldown = 30 * time.Second
	}
	if o.MaxProbeFailures <= 0 {
		o.MaxProbeFailures = 6
	}
	return o
}

// BreakerSnapshot is one breaker's state for stats and fleet views.
type BreakerSnapshot struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               uint64 `json:"trips"`
	Probes              uint64 `json:"probes"`
	Readmissions        uint64 `json:"readmissions"`
	ProbeFailures       int    `json:"probe_failures"`
}

// breaker is one worker's circuit breaker. All methods are safe for
// concurrent use.
type breaker struct {
	opts BreakerOptions

	mu         sync.Mutex
	state      BreakerState
	consec     int    // consecutive failures while closed
	window     []bool // ring of recent outcomes (true = failure)
	wIdx       int
	wFill      int
	openedAt   time.Time
	cooldown   time.Duration
	probeFails int // consecutive failed probes this episode chain
	trips      uint64
	probes     uint64
	readmits   uint64
}

func newBreaker(opts BreakerOptions) *breaker {
	opts = opts.withDefaults()
	return &breaker{
		opts:     opts,
		window:   make([]bool, opts.Window),
		cooldown: opts.Cooldown,
	}
}

// Record feeds one batch outcome (ok = the request succeeded) and
// reports whether this outcome tripped the breaker. Outcomes arriving
// while the breaker is already open (late in-flight requests) are
// ignored.
func (b *breaker) Record(ok bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		return false
	}
	b.window[b.wIdx] = !ok
	b.wIdx = (b.wIdx + 1) % len(b.window)
	if b.wFill < len(b.window) {
		b.wFill++
	}
	if ok {
		b.consec = 0
		return false
	}
	b.consec++
	if b.consec >= b.opts.ConsecutiveFailures {
		b.tripLocked()
		return true
	}
	if b.wFill >= len(b.window) {
		fails := 0
		for _, f := range b.window {
			if f {
				fails++
			}
		}
		if float64(fails) >= b.opts.ErrorRate*float64(len(b.window)) {
			b.tripLocked()
			return true
		}
	}
	return false
}

// Trip forces the breaker open (used when a worker loop gives up on a
// worker for reasons the outcome stream alone did not trip on) and
// reports whether this call did the tripping.
func (b *breaker) Trip() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		return false
	}
	b.tripLocked()
	return true
}

func (b *breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.trips++
}

// Closed reports whether the worker may take batches.
func (b *breaker) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// Exhausted reports whether the probe budget is spent: the worker is
// permanently lost.
func (b *breaker) Exhausted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerClosed && b.probeFails >= b.opts.MaxProbeFailures
}

// ProbeWait returns how long to wait before the next half-open probe
// may begin (zero when it is already due).
func (b *breaker) ProbeWait() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if d := time.Until(b.openedAt.Add(b.cooldown)); d > 0 {
		return d
	}
	return 0
}

// BeginProbe transitions open → half-open when the cooldown has
// elapsed, reserving the probe for the caller. Returns false when no
// probe is due (still cooling down, already half-open, or closed).
func (b *breaker) BeginProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen || time.Now().Before(b.openedAt.Add(b.cooldown)) {
		return false
	}
	b.state = BreakerHalfOpen
	b.probes++
	return true
}

// ProbeResult resolves a half-open probe: success re-admits the worker
// (breaker closes, counters reset) and returns true; failure reopens
// with a doubled cooldown.
func (b *breaker) ProbeResult(ok bool) (readmitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return false
	}
	if ok {
		b.state = BreakerClosed
		b.consec = 0
		b.wFill = 0
		b.wIdx = 0
		b.probeFails = 0
		b.cooldown = b.opts.Cooldown
		b.readmits++
		return true
	}
	b.state = BreakerOpen
	b.openedAt = time.Now()
	b.probeFails++
	b.cooldown *= 2
	if b.cooldown > b.opts.MaxCooldown {
		b.cooldown = b.opts.MaxCooldown
	}
	return false
}

// Snapshot copies the breaker's observable state.
func (b *breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:               b.state.String(),
		ConsecutiveFailures: b.consec,
		Trips:               b.trips,
		Probes:              b.probes,
		Readmissions:        b.readmits,
		ProbeFailures:       b.probeFails,
	}
}
