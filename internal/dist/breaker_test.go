package dist

import (
	"testing"
	"time"
)

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	// Error-rate tripping parked out of reach: this test isolates the
	// consecutive-failure path.
	b := newBreaker(BreakerOptions{ConsecutiveFailures: 3, ErrorRate: 0.99, Window: 64})
	// Successes keep it closed and reset the streak.
	for i := 0; i < 5; i++ {
		if b.Record(true) {
			t.Fatal("success tripped the breaker")
		}
	}
	b.Record(false)
	b.Record(false)
	b.Record(true) // streak broken
	b.Record(false)
	if b.Record(false) {
		t.Fatal("tripped after 2 consecutive failures with threshold 3")
	}
	if !b.Record(false) {
		t.Fatal("did not trip on the 3rd consecutive failure")
	}
	if b.Closed() {
		t.Error("breaker closed after tripping")
	}
	if s := b.Snapshot(); s.State != "open" || s.Trips != 1 {
		t.Errorf("snapshot after trip = %+v", s)
	}
}

func TestBreakerTripsOnErrorRate(t *testing.T) {
	// Consecutive threshold set out of reach: only the sliding-window
	// error rate can trip. Alternating outcomes never build a streak,
	// but half the window failing must.
	b := newBreaker(BreakerOptions{ConsecutiveFailures: 100, Window: 4, ErrorRate: 0.5})
	b.Record(false)
	b.Record(true)
	b.Record(true)
	if !b.Record(false) { // window full: 2/4 failed
		t.Fatal("did not trip at 50% error rate over a full window")
	}
}

func TestBreakerErrorRateNeedsFullWindow(t *testing.T) {
	b := newBreaker(BreakerOptions{ConsecutiveFailures: 100, Window: 8, ErrorRate: 0.25})
	// 3 failures among 5 outcomes would exceed the rate, but the window
	// has not filled yet: no verdict on partial evidence.
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(true)
	if b.Record(false) {
		t.Fatal("tripped before the window filled")
	}
	if !b.Closed() {
		t.Fatal("breaker open before the window filled")
	}
}

func TestBreakerIgnoresOutcomesWhileOpen(t *testing.T) {
	b := newBreaker(BreakerOptions{ConsecutiveFailures: 1})
	b.Record(false)
	if b.Closed() {
		t.Fatal("not tripped")
	}
	// Late in-flight results must not double-trip or re-close.
	if b.Record(false) || b.Record(true) {
		t.Error("open breaker reacted to a late outcome")
	}
	if s := b.Snapshot(); s.Trips != 1 {
		t.Errorf("trips = %d, want 1", s.Trips)
	}
}

func TestBreakerProbeLifecycle(t *testing.T) {
	b := newBreaker(BreakerOptions{ConsecutiveFailures: 1, Cooldown: 5 * time.Millisecond, MaxCooldown: time.Second})
	b.Record(false)
	if b.BeginProbe() {
		t.Fatal("probe began before the cooldown elapsed")
	}
	time.Sleep(6 * time.Millisecond)
	if !b.BeginProbe() {
		t.Fatal("probe refused after the cooldown elapsed")
	}
	if b.BeginProbe() {
		t.Fatal("second probe began while one was in flight")
	}
	// Failed probe: reopen with a doubled cooldown.
	if b.ProbeResult(false) {
		t.Fatal("failed probe re-admitted the worker")
	}
	if s := b.Snapshot(); s.State != "open" || s.ProbeFailures != 1 || s.Probes != 1 {
		t.Errorf("snapshot after failed probe = %+v", s)
	}
	time.Sleep(11 * time.Millisecond) // doubled cooldown
	if !b.BeginProbe() {
		t.Fatal("probe refused after doubled cooldown")
	}
	if !b.ProbeResult(true) {
		t.Fatal("passing probe did not re-admit the worker")
	}
	if !b.Closed() {
		t.Fatal("breaker open after re-admission")
	}
	s := b.Snapshot()
	if s.Readmissions != 1 || s.ProbeFailures != 0 || s.ConsecutiveFailures != 0 {
		t.Errorf("snapshot after re-admission = %+v", s)
	}
	// Re-admission resets the cooldown to its base, not the doubled one.
	b.Record(false)
	if w := b.ProbeWait(); w > 6*time.Millisecond {
		t.Errorf("cooldown after re-admission = %v, want base 5ms", w)
	}
}

func TestBreakerExhaustsProbeBudget(t *testing.T) {
	b := newBreaker(BreakerOptions{ConsecutiveFailures: 1, Cooldown: time.Millisecond, MaxProbeFailures: 2})
	b.Record(false)
	for i := 0; i < 2; i++ {
		if b.Exhausted() {
			t.Fatalf("exhausted after %d failed probes, budget is 2", i)
		}
		time.Sleep(time.Duration(1<<i) * 2 * time.Millisecond)
		if !b.BeginProbe() {
			t.Fatalf("probe %d refused", i)
		}
		b.ProbeResult(false)
	}
	if !b.Exhausted() {
		t.Fatal("probe budget spent but breaker not exhausted")
	}
}

func TestBreakerStateString(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
	} {
		if got := s.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(s), got, want)
		}
	}
	if got := BreakerState(42).String(); got != "unknown" {
		t.Errorf("invalid state string = %q", got)
	}
}
