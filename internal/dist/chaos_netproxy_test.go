package dist

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"bce/internal/faults/netproxy"
)

// chaos_netproxy_test.go drives coordinator↔worker sweeps through the
// in-process TCP chaos proxy: real HTTP over a transport that injects
// latency, resets, byte corruption, and partitions per a deterministic
// schedule. The invariant under every schedule: all jobs merge exactly
// once, or the sweep fails loudly — never silent loss, never
// duplicates.

// proxied starts a chaos proxy in front of a worker URL and returns
// the proxy's URL for the coordinator to dial.
func proxied(t *testing.T, workerURL string, sched netproxy.Schedule) string {
	t.Helper()
	target := strings.TrimPrefix(workerURL, "http://")
	p, err := netproxy.Start(target, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p.URL()
}

// chaosClient bounds each request so a connection stalled by the proxy
// (e.g. corrupted framing leaving the server waiting for bytes) fails
// transiently instead of hanging the sweep.
func chaosClient() *http.Client {
	return &http.Client{Timeout: 2 * time.Second}
}

func runChaosSweep(t *testing.T, n int, opts Options) *mergeSink {
	t.Helper()
	ResetStats()
	jobs, keys := jobSet(t, n)
	sink := newMergeSink()
	opts.OnResult = sink.OnResult
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep through chaos proxy failed: %v", err)
	}
	if sink.len() != n {
		t.Errorf("merged %d of %d jobs: lost work", sink.len(), n)
	}
	if sink.dups != 0 {
		t.Errorf("%d duplicate merges through chaos proxy", sink.dups)
	}
	return sink
}

func TestSweepThroughLatencyJitterProxy(t *testing.T) {
	w1 := testWorkerServer("w1", nil)
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()
	sched := netproxy.Schedule{Seed: 11, Rules: []netproxy.Rule{
		{ForMS: 0, LatencyMS: 3, JitterMS: 5},
	}}
	runChaosSweep(t, 12, Options{
		Workers:      []string{proxied(t, w1.URL, sched), proxied(t, w2.URL, sched)},
		BatchSize:    2,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Client:       chaosClient(),
	})
}

func TestSweepThroughResettingProxy(t *testing.T) {
	w1 := testWorkerServer("w1", nil)
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()
	// Connections die with 20% probability per chunk for 150ms, then
	// the network heals. Deterministic from the seed.
	sched := netproxy.Schedule{Seed: 23, Rules: []netproxy.Rule{
		{ForMS: 150, ResetProb: 0.2},
		{ForMS: 0},
	}}
	runChaosSweep(t, 16, Options{
		Workers:      []string{proxied(t, w1.URL, sched), proxied(t, w2.URL, sched)},
		BatchSize:    2,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		Client:       chaosClient(),
	})
}

func TestSweepThroughCorruptingProxy(t *testing.T) {
	w1 := testWorkerServer("w1", slowExec(2*time.Millisecond))
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()
	// Every chunk takes a bit flip for 80ms — requests arrive mangled
	// (worker answers 409 on digest mismatch, or the HTTP machinery
	// 400s/chokes) and replies come back mangled (digest mismatch at
	// the coordinator). All of it must classify as transient; after the
	// window the sweep completes with no duplicate merges. Only w2's
	// path is corrupted so recovery never depends on probe timing luck.
	sched := netproxy.Schedule{Seed: 37, Rules: []netproxy.Rule{
		{ForMS: 80, CorruptProb: 1},
		{ForMS: 0},
	}}
	clean := netproxy.Schedule{Seed: 5, Rules: []netproxy.Rule{{ForMS: 0}}}
	runChaosSweep(t, 16, Options{
		Workers:      []string{proxied(t, w1.URL, clean), proxied(t, w2.URL, sched)},
		BatchSize:    2,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Client:       chaosClient(),
	})
	if s := Snapshot(); s.DupsSuppressed != 0 {
		// The guard may legally suppress, but with whole-reply
		// validation nothing from a corrupted exchange should ever have
		// merged in the first place.
		t.Logf("note: %d duplicate merges suppressed by the guard", s.DupsSuppressed)
	}
}

func TestSweepThroughFlappingPartition(t *testing.T) {
	w1 := testWorkerServer("steady", slowExec(5*time.Millisecond))
	defer w1.Close()
	w2 := testWorkerServer("flappy", nil)
	defer w2.Close()
	// w2's network partitions for 30ms at sweep start, then heals: its
	// breaker must trip (connections refused/killed), its batches must
	// drain through w1, and once probes get through it must be
	// re-admitted — all while w1 keeps the sweep alive.
	flap := netproxy.Schedule{Seed: 41, Rules: []netproxy.Rule{
		{ForMS: 30, Partition: true},
		{ForMS: 0},
	}}
	clean := netproxy.Schedule{Seed: 6, Rules: []netproxy.Rule{{ForMS: 0}}}
	runChaosSweep(t, 24, Options{
		Workers:      []string{proxied(t, w1.URL, clean), proxied(t, w2.URL, flap)},
		BatchSize:    2,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Client:       chaosClient(),
	})
	s := Snapshot()
	if s.BreakerTrips == 0 {
		t.Error("partition never tripped the breaker")
	}
	if s.BreakerProbes == 0 {
		t.Error("no probes issued against the partitioned worker")
	}
	if s.BreakerReadmits == 0 {
		t.Error("partitioned worker never re-admitted after the network healed")
	}
}
