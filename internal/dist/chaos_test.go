package dist

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"bce/internal/faults"
)

// faultyTransport drops whole responses while its injector has trips
// left: the connection-reset / proxy-glitch class of failure the
// coordinator's in-place retry exists for.
type faultyTransport struct {
	inject *faults.Injector
	next   http.RoundTripper
}

func (f *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, PathExec) && f.inject.Trip() {
		return nil, errors.New("injected: connection reset by peer")
	}
	return f.next.RoundTrip(req)
}

// TestCoordinatorSurvivesTransportFaults drives a sweep through a
// transport that fails several requests outright. Every job must merge
// exactly once and the retry counters must show the faults were
// absorbed, not ignored.
func TestCoordinatorSurvivesTransportFaults(t *testing.T) {
	ResetStats()
	w1 := testWorkerServer("w1", nil)
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()

	jobs, keys := jobSet(t, 10)
	sink := newMergeSink()
	inject := faults.NewInjector(3)
	coord, err := NewCoordinator(Options{
		Workers:      []string{w1.URL, w2.URL},
		BatchSize:    2,
		Retries:      3,
		RetryBackoff: time.Millisecond,
		Client:       &http.Client{Transport: &faultyTransport{inject: inject, next: http.DefaultTransport}},
		OnResult:     sink.OnResult,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep must absorb %d injected transport faults: %v", 3, err)
	}
	if sink.len() != len(jobs) {
		t.Errorf("merged %d of %d jobs", sink.len(), len(jobs))
	}
	if sink.dups != 0 {
		t.Errorf("%d duplicate merges", sink.dups)
	}
	if inject.Remaining() != 0 {
		t.Errorf("only %d of 3 faults fired; the test exercised nothing", 3-inject.Remaining())
	}
	if got := Snapshot().BatchRetries; got == 0 {
		t.Error("BatchRetries counter not bumped despite injected faults")
	}
}
