package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the list of worker base URLs (e.g.
	// "http://127.0.0.1:8371"). Required, at least one.
	Workers []string
	// Client issues the HTTP requests; nil means a default client with
	// no global timeout (batches legitimately run for minutes — the
	// per-job deadline and the Run context bound them instead).
	Client *http.Client
	// BatchSize is the number of jobs per request (default 8). Smaller
	// batches rebalance better when workers are uneven; larger ones
	// amortize request overhead.
	BatchSize int
	// JobTimeout bounds each job's execution on the worker; zero means
	// none. Expiry is a transient failure (runner.Transient semantics):
	// the job is retried, eventually on another worker.
	JobTimeout time.Duration
	// Retries is how many times a failed batch request is retried
	// in place against the same worker before the worker is declared
	// dead (default 2). RetryBackoff is the initial backoff, doubled
	// per retry (default 250ms).
	Retries      int
	RetryBackoff time.Duration
	// OnResult is called once per successful job with the worker's name
	// and the result. Workers execute concurrently, so OnResult must be
	// safe for concurrent use. Required.
	OnResult func(worker string, job Job, run metrics.Run)
	// Logger receives structured progress and rebalancing records
	// (worker death, batch reassignment, retries). Nil means
	// slog.Default(); records inside the sweep trace carry trace_id.
	Logger *slog.Logger
	// Tracer, when set, opens a sweep-level trace: one root span, one
	// span per shard, one per batch request, merged with the spans
	// workers ship back. Nil disables tracing (zero overhead).
	Tracer *telemetry.Tracer
}

// Coordinator shards a planned job space across worker processes and
// merges the results. Failure policy: transport errors and
// worker-reported transient failures are retried — first in place with
// backoff, then by reassigning the work to surviving workers — while
// deterministic job failures (validation, key-recompute mismatch,
// simulation error) abort the sweep, because they would fail
// identically everywhere. A sweep completes when every job has merged
// or errors when jobs remain and no worker can take them.
type Coordinator struct {
	opts        Options
	client      *http.Client
	log         *slog.Logger
	maxAttempts int

	mu       sync.Mutex
	firstErr error

	pending  atomic.Int64
	alive    atomic.Int64
	doneCh   chan struct{}
	doneOnce sync.Once
	cancel   context.CancelFunc

	// Sweep trace state (nil/empty when Options.Tracer is nil).
	sweepSpan *telemetry.Span
	shards    []*shardTrace

	// statsMu guards stats: telemetry histograms are unsynchronized by
	// design, and batch completions observe from many worker loops.
	statsMu sync.Mutex
	stats   *telemetry.Registry
}

// shardTrace tracks one shard's span and how many of its tasks are
// still outstanding; the last task to finish ends the span, wherever
// it ended up executing after rebalancing.
type shardTrace struct {
	span    *telemetry.Span
	pending atomic.Int64
}

func (s *shardTrace) taskDone() {
	if s == nil {
		return
	}
	if s.pending.Add(-1) == 0 {
		s.span.End()
	}
}

// task is one batch plus its delivery-attempt count. Attempts increment
// on every reassignment; a task exceeding the coordinator's attempt
// budget aborts the sweep rather than cycling forever.
type task struct {
	batch    Batch
	attempts int
}

// NewCoordinator validates opts and builds a Coordinator.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker URL")
	}
	for _, w := range opts.Workers {
		if w == "" {
			return nil, errors.New("dist: empty worker URL")
		}
	}
	if opts.OnResult == nil {
		return nil, errors.New("dist: coordinator needs an OnResult sink")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 8
	}
	if opts.Retries <= 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 250 * time.Millisecond
	}
	c := &Coordinator{
		opts:   opts,
		client: opts.Client,
		log:    opts.Logger,
		stats:  telemetry.NewRegistry(),
		// In-place retries plus one reassignment per worker: enough for
		// any survivable failure pattern, finite under total loss.
		maxAttempts: opts.Retries + len(opts.Workers),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.log == nil {
		c.log = slog.Default()
	}
	return c, nil
}

// Stats snapshots the coordinator's sweep statistics (per-shard batch
// latency histograms, in milliseconds). Safe during a running sweep.
func (c *Coordinator) Stats() telemetry.Snapshot {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats.Snapshot()
}

// observeBatch records one completed batch request's latency under its
// shard's histogram.
func (c *Coordinator) observeBatch(shard int, d time.Duration) {
	c.statsMu.Lock()
	c.stats.Histogram(fmt.Sprintf("shard%d.batch_ms", shard)).Observe(uint64(d.Milliseconds()))
	c.statsMu.Unlock()
}

// shardFor returns the trace bookkeeping for a task's shard (nil when
// tracing is off).
func (c *Coordinator) shardFor(t *task) *shardTrace {
	if t.batch.Shard < len(c.shards) {
		return c.shards[t.batch.Shard]
	}
	return nil
}

// Ping checks every worker for liveness and schema agreement. Callers
// run it before a sweep so misconfiguration fails in milliseconds, not
// after the plan executes.
func (c *Coordinator) Ping(ctx context.Context) error {
	for _, w := range c.opts.Workers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+PathPing, nil)
		if err != nil {
			return fmt.Errorf("dist: ping %s: %w", w, err)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("dist: ping %s: %w", w, err)
		}
		body, rerr := readAllLimited(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return fmt.Errorf("dist: ping %s: %w", w, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("dist: ping %s: HTTP %d: %s", w, resp.StatusCode, bytes.TrimSpace(body))
		}
		var reply struct {
			Schema int    `json:"schema"`
			Worker string `json:"worker"`
		}
		if err := decodeStrict(body, &reply); err != nil {
			return fmt.Errorf("dist: ping %s: %w", w, err)
		}
		if reply.Schema != SchemaVersion {
			return fmt.Errorf("dist: ping %s (%s): %w: worker speaks %d, this build speaks %d",
				w, reply.Worker, ErrSchema, reply.Schema, SchemaVersion)
		}
	}
	return nil
}

// Run executes the planned jobs across the workers. jobs and keys are
// parallel slices, sorted by key (core.CollectJobs guarantees this),
// which makes the sharding deterministic: job i goes to shard
// i mod len(Workers), shards are cut into BatchSize batches in order.
// Run returns once every job has been merged through OnResult, or with
// the first deterministic failure, or when undeliverable work remains.
func (c *Coordinator) Run(ctx context.Context, jobs []core.JobSpec, keys []string) error {
	if len(jobs) != len(keys) {
		return fmt.Errorf("dist: %d jobs with %d keys", len(jobs), len(keys))
	}
	if len(jobs) == 0 {
		return nil
	}
	nw := len(c.opts.Workers)

	// Deterministic sharding: round-robin over the key-sorted job list
	// balances every benchmark mix across workers regardless of where
	// the expensive configurations cluster in key order.
	shards := make([][]Job, nw)
	for i := range jobs {
		w := i % nw
		shards[w] = append(shards[w], Job{Key: keys[i], Spec: jobs[i]})
	}
	var tasks [][]*task
	total := 0
	for si, shard := range shards {
		var own []*task
		for seq := 0; len(shard) > 0; seq++ {
			n := min(c.opts.BatchSize, len(shard))
			own = append(own, &task{batch: Batch{
				Schema:       SchemaVersion,
				Shard:        si,
				Seq:          seq,
				JobTimeoutMS: c.opts.JobTimeout.Milliseconds(),
				Jobs:         shard[:n],
			}})
			shard = shard[n:]
			total++
		}
		tasks = append(tasks, own)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.cancel = cancel
	c.doneCh = make(chan struct{})
	c.doneOnce = sync.Once{}
	c.firstErr = nil
	c.pending.Store(int64(total))
	c.alive.Store(int64(nw))
	live.jobsDispatched.Add(uint64(len(jobs)))

	// Open the sweep trace: a root span plus one span per shard. Shard
	// spans end when their last task retires — possibly on a different
	// worker than the shard was cut for — and any span still open when
	// Run returns (abort paths) is closed below; End is idempotent.
	if tr := c.opts.Tracer; tr != nil {
		c.sweepSpan = tr.StartTrace("sweep")
		c.sweepSpan.SetAttr("jobs", fmt.Sprint(len(jobs)))
		c.sweepSpan.SetAttr("workers", fmt.Sprint(nw))
		c.shards = make([]*shardTrace, nw)
		for si := range c.shards {
			st := &shardTrace{span: tr.StartSpan("shard", c.sweepSpan.Context())}
			st.span.SetAttr("shard", fmt.Sprint(si))
			st.span.SetAttr("worker", c.opts.Workers[si])
			st.pending.Store(int64(len(tasks[si])))
			if len(tasks[si]) == 0 {
				st.span.End()
			}
			c.shards[si] = st
		}
		defer func() {
			for _, st := range c.shards {
				st.span.End()
			}
			c.sweepSpan.End()
			c.shards, c.sweepSpan = nil, nil
		}()
	}

	// Orphan queue: batches whose worker died, awaiting reassignment.
	// Sized so every task can be requeued at its full attempt budget
	// without a push ever blocking.
	orphans := make(chan *task, total*(c.maxAttempts+1)+nw)

	var wg sync.WaitGroup
	for wi, url := range c.opts.Workers {
		wg.Add(1)
		go func(url string, own []*task) {
			defer wg.Done()
			c.workerLoop(runCtx, url, own, orphans)
		}(url, tasks[wi])
	}
	wg.Wait()

	c.mu.Lock()
	err := c.firstErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if n := c.pending.Load(); n != 0 {
		return fmt.Errorf("dist: %d batches undelivered: every worker failed", n)
	}
	return nil
}

// abort records the sweep's first fatal error and cancels everything.
func (c *Coordinator) abort(err error) {
	c.mu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.mu.Unlock()
	c.cancel()
}

// finish retires one task; the last one releases every worker loop.
func (c *Coordinator) finish() {
	if c.pending.Add(-1) == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// requeue puts a task back up for grabs by surviving workers, aborting
// if its attempt budget is spent or the queue is impossibly full.
func (c *Coordinator) requeue(t *task, orphans chan *task) bool {
	t.attempts++
	if t.attempts > c.maxAttempts {
		c.abort(fmt.Errorf("dist: shard %d batch %d undeliverable after %d attempts",
			t.batch.Shard, t.batch.Seq, t.attempts))
		return false
	}
	select {
	case orphans <- t:
		live.jobsRequeued.Add(uint64(len(t.batch.Jobs)))
		return true
	default:
		c.abort(fmt.Errorf("dist: orphan queue overflow (shard %d batch %d)", t.batch.Shard, t.batch.Seq))
		return false
	}
}

// workerLoop drains the worker's own shard, then steals orphaned
// batches from dead workers until the sweep completes. On transport
// death it requeues all its unfinished work and exits; the last loop
// to die with work still pending aborts the sweep.
func (c *Coordinator) workerLoop(ctx context.Context, url string, own []*task, orphans chan *task) {
	died := func(t *task, err error) {
		live.workersLost.Add(1)
		c.log.WarnContext(telemetry.ContextWithSpan(ctx, c.sweepSpan), "worker lost; reassigning batches",
			"url", url, "batches", 1+len(own), "err", err)
		c.requeue(t, orphans)
		for _, rest := range own {
			c.requeue(rest, orphans)
		}
		if c.alive.Add(-1) == 0 && c.pending.Load() > 0 {
			c.abort(errors.New("dist: all workers failed"))
		}
	}
	for len(own) > 0 {
		if ctx.Err() != nil {
			return
		}
		t := own[0]
		own = own[1:]
		if !c.handle(ctx, url, t, orphans) {
			died(t, errLastTransport)
			return
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.doneCh:
			return
		case t := <-orphans:
			if !c.handle(ctx, url, t, orphans) {
				died(t, errLastTransport)
				return
			}
		}
	}
}

// errLastTransport is a placeholder for logging; the real error was
// already logged by runTask's retry loop.
var errLastTransport = errors.New("transport failure after retries")

// handle runs one task to completion on this worker. It returns false
// when the worker must be declared dead (the caller requeues t);
// fatal errors abort the whole sweep and return true so the loop winds
// down via context cancellation.
func (c *Coordinator) handle(ctx context.Context, url string, t *task, orphans chan *task) bool {
	requeueJobs, err := c.runTask(ctx, url, t)
	if err != nil {
		if ctx.Err() != nil {
			return true // sweep is being torn down, not a worker problem
		}
		if runner.IsTransient(err) {
			return false // worker unreachable after in-place retries
		}
		c.abort(err)
		return true
	}
	if len(requeueJobs) > 0 {
		// Worker-side transient failures (per-job deadline expiry):
		// spin the survivors into a fresh task before retiring this one
		// so the pending count never momentarily hits zero. The shard's
		// trace pending count moves in lockstep so its span outlives the
		// retried work.
		nt := &task{
			batch: Batch{
				Schema:       SchemaVersion,
				Shard:        t.batch.Shard,
				Seq:          t.batch.Seq,
				JobTimeoutMS: t.batch.JobTimeoutMS,
				Jobs:         requeueJobs,
			},
			attempts: t.attempts,
		}
		c.pending.Add(1)
		if st := c.shardFor(nt); st != nil {
			st.pending.Add(1)
		}
		if c.requeue(nt, orphans) {
			c.log.InfoContext(telemetry.ContextWithSpan(ctx, c.sweepSpan), "transient job failures requeued",
				"jobs", len(requeueJobs), "url", url)
		}
	}
	c.shardFor(t).taskDone()
	c.finish()
	return true
}

// runTask POSTs one batch, retrying transient transport failures in
// place with exponential backoff. On success it merges every job
// result through OnResult and returns the jobs the worker flagged as
// transiently failed. Deterministic failures — malformed batch
// (HTTP 400), schema skew, a job error the worker marked permanent —
// come back as non-transient errors.
func (c *Coordinator) runTask(ctx context.Context, url string, t *task) ([]Job, error) {
	payload, err := EncodeBatch(t.batch)
	if err != nil {
		return nil, fmt.Errorf("dist: encode batch: %w", err)
	}
	// One batch span covers the task on this worker, in-place retries
	// included; its context rides the request headers so the worker's
	// spans become its children.
	var parent telemetry.SpanContext
	if st := c.shardFor(t); st != nil {
		parent = st.span.Context()
	}
	span := c.opts.Tracer.StartSpan("batch", parent)
	span.SetAttr("shard", fmt.Sprint(t.batch.Shard))
	span.SetAttr("seq", fmt.Sprint(t.batch.Seq))
	span.SetAttr("jobs", fmt.Sprint(len(t.batch.Jobs)))
	span.SetAttr("url", url)
	defer span.End()
	logCtx := telemetry.ContextWithSpan(ctx, span)

	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			live.batchRetries.Add(1)
			span.SetAttr("retries", fmt.Sprint(attempt))
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		start := time.Now()
		var reply BatchResult
		reply, lastErr = c.post(ctx, url, payload, span.Context())
		if lastErr == nil {
			c.observeBatch(t.batch.Shard, time.Since(start))
			return c.merge(t, reply)
		}
		if !runner.IsTransient(lastErr) || ctx.Err() != nil {
			return nil, lastErr
		}
		c.log.WarnContext(logCtx, "batch attempt failed",
			"url", url, "attempt", attempt+1, "attempts", c.opts.Retries+1, "err", lastErr)
	}
	return nil, lastErr
}

// post sends one batch request and decodes the reply, classifying
// failures: transport errors and 5xx are transient, HTTP 400 and
// schema mismatches are deterministic.
func (c *Coordinator) post(ctx context.Context, url string, payload []byte, sc telemetry.SpanContext) (BatchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+PathExec, bytes.NewReader(payload))
	if err != nil {
		return BatchResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc.Valid() {
		req.Header.Set(HeaderTraceID, sc.TraceID)
		req.Header.Set(HeaderSpanID, sc.SpanID)
	}
	live.batchesSent.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		return BatchResult{}, runner.Transient(err)
	}
	defer resp.Body.Close()
	body, err := readAllLimited(resp.Body)
	if err != nil {
		return BatchResult{}, runner.Transient(err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode >= 500:
		return BatchResult{}, runner.Transient(fmt.Errorf("dist: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body)))
	default:
		// 4xx: the worker understood us and said no — deterministic.
		return BatchResult{}, fmt.Errorf("dist: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	reply, err := DecodeBatchResult(body)
	if err != nil {
		if errors.Is(err, ErrSchema) {
			return BatchResult{}, err
		}
		// A garbled reply body could be a proxy or truncation artifact;
		// let the in-place retry take another look.
		return BatchResult{}, runner.Transient(err)
	}
	return reply, nil
}

// merge folds a worker's reply into the sweep: successes through
// OnResult, transient job failures into the requeue list, permanent
// job failures into a fatal error. A reply that does not cover the
// batch exactly is treated as transient (retry re-serves cached
// results cheaply on the worker).
func (c *Coordinator) merge(t *task, reply BatchResult) ([]Job, error) {
	// Worker spans merge into the sweep's tracer regardless of job
	// outcomes — a failed batch's timing is exactly what a trace is for.
	c.opts.Tracer.Import(reply.Spans)
	byKey := make(map[string]Job, len(t.batch.Jobs))
	for _, j := range t.batch.Jobs {
		byKey[j.Key] = j
	}
	if len(reply.Results) != len(t.batch.Jobs) {
		return nil, runner.Transient(fmt.Errorf("dist: worker %q answered %d of %d jobs",
			reply.Worker, len(reply.Results), len(t.batch.Jobs)))
	}
	var requeue []Job
	for _, jr := range reply.Results {
		job, ok := byKey[jr.Key]
		if !ok {
			return nil, runner.Transient(fmt.Errorf("dist: worker %q answered unknown key %q", reply.Worker, jr.Key))
		}
		switch {
		case jr.Run != nil:
			c.opts.OnResult(reply.Worker, job, *jr.Run)
			live.jobsMerged.Add(1)
		case jr.Transient:
			requeue = append(requeue, job)
		default:
			return nil, fmt.Errorf("dist: job %s failed on worker %q: %s", jr.Key, reply.Worker, jr.Err)
		}
	}
	return requeue, nil
}
