package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the list of worker base URLs (e.g.
	// "http://127.0.0.1:8371"). Required, at least one.
	Workers []string
	// Client issues the HTTP requests; nil means a default client with
	// no global timeout (batches legitimately run for minutes — the
	// per-job deadline and the Run context bound them instead).
	Client *http.Client
	// BatchSize is the number of jobs per request (default 8). Smaller
	// batches rebalance better when workers are uneven; larger ones
	// amortize request overhead.
	BatchSize int
	// JobTimeout bounds each job's execution on the worker; zero means
	// none. Expiry is a transient failure (runner.Transient semantics):
	// the job is retried, eventually on another worker. With
	// AdaptiveDeadline set, this is only the deadline until enough
	// batch latencies have been observed to derive a per-worker one.
	JobTimeout time.Duration
	// Retries is how many times a failed batch request is retried
	// in place against the same worker before the worker's circuit
	// breaker takes over (default 2). RetryBackoff is the initial
	// backoff, doubled per retry (default 250ms).
	Retries      int
	RetryBackoff time.Duration
	// Breaker tunes the per-worker circuit breakers. The zero value
	// gets defaults; the default probe cooldown is derived from
	// RetryBackoff (4×) so test-speed coordinators probe at test speed.
	Breaker BreakerOptions
	// DisableHedging turns off hedged batch dispatch. Hedging is on by
	// default: when a batch's latency exceeds an adaptive percentile
	// threshold the batch is speculatively re-issued to a second
	// worker, the first result wins, and the loser is cancelled.
	// Exactly-once merging makes the duplicate execution invisible.
	DisableHedging bool
	// HedgePercentile (default 0.95) and HedgeMultiplier (default 2)
	// set the hedge threshold: a batch is hedged once it has been in
	// flight longer than multiplier × the percentile of all observed
	// batch latencies. HedgeMinDelay (default 25ms) and HedgeMaxDelay
	// (default 10s) clamp the threshold.
	HedgePercentile float64
	HedgeMultiplier float64
	HedgeMinDelay   time.Duration
	HedgeMaxDelay   time.Duration
	// AdaptiveDeadline derives each dispatch's worker-side job deadline
	// from that worker's own batch-latency history —
	// DeadlinePercentile (default 0.99) × DeadlineMultiplier (default
	// 4), clamped to [DeadlineFloor, DeadlineCeil] (defaults 1s, 5m) —
	// so slow-but-healthy workers are not killed and stragglers are.
	// Until enough samples exist, JobTimeout applies.
	AdaptiveDeadline   bool
	DeadlinePercentile float64
	DeadlineMultiplier float64
	DeadlineFloor      time.Duration
	DeadlineCeil       time.Duration
	// OnResult is called once per successful job with the worker's name
	// and the result. Workers execute concurrently, so OnResult must be
	// safe for concurrent use. The coordinator guarantees exactly one
	// call per job key, however often the job was re-executed by
	// reassignment or hedging. Required.
	OnResult func(worker string, job Job, run metrics.Run)
	// Logger receives structured progress and rebalancing records
	// (worker eviction, probing, hedging, batch reassignment, retries).
	// Nil means slog.Default(); records inside the sweep trace carry
	// trace_id.
	Logger *slog.Logger
	// Tracer, when set, opens a sweep-level trace: one root span, one
	// span per shard, one per batch request, merged with the spans
	// workers ship back. Nil disables tracing (zero overhead).
	Tracer *telemetry.Tracer
}

// Coordinator shards a planned job space across worker processes and
// merges the results. Failure policy: transport errors and
// worker-reported transient failures are retried — first in place with
// backoff, then by circuit-breaking the sick worker and reassigning
// its work to healthy ones — while deterministic job failures
// (validation, key-recompute mismatch, simulation error) abort the
// sweep, because they would fail identically everywhere. An evicted
// worker is probed on a doubling cooldown and re-admitted when a probe
// passes; a worker whose probe budget runs dry is permanently lost. A
// sweep completes when every job has merged or errors when jobs remain
// and no worker can take them.
type Coordinator struct {
	opts        Options
	client      *http.Client
	log         *slog.Logger
	maxAttempts int
	breakers    []*breaker

	mu       sync.Mutex
	firstErr error

	pending  atomic.Int64
	alive    atomic.Int64
	doneCh   chan struct{}
	doneOnce sync.Once
	cancel   context.CancelFunc

	// merged is the exactly-once merge guard: job keys whose result has
	// been handed to OnResult. Reassignment and hedging can both
	// legally execute a job twice; only the first result merges.
	mergedMu sync.Mutex
	merged   map[string]struct{}

	// Sweep trace state (nil/empty when Options.Tracer is nil).
	sweepSpan *telemetry.Span
	shards    []*shardTrace

	// statsMu guards stats: telemetry histograms are unsynchronized by
	// design, and batch completions observe from many worker loops.
	statsMu sync.Mutex
	stats   *telemetry.Registry
}

// shardTrace tracks one shard's span and how many of its tasks are
// still outstanding; the last task to finish ends the span, wherever
// it ended up executing after rebalancing.
type shardTrace struct {
	span    *telemetry.Span
	pending atomic.Int64
}

func (s *shardTrace) taskDone() {
	if s == nil {
		return
	}
	if s.pending.Add(-1) == 0 {
		s.span.End()
	}
}

// task is one batch plus its delivery-attempt count. Attempts increment
// on every reassignment; a task exceeding the coordinator's attempt
// budget aborts the sweep rather than cycling forever.
type task struct {
	batch    Batch
	attempts int
}

// NewCoordinator validates opts and builds a Coordinator.
func NewCoordinator(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("dist: coordinator needs at least one worker URL")
	}
	for _, w := range opts.Workers {
		if w == "" {
			return nil, errors.New("dist: empty worker URL")
		}
	}
	if opts.OnResult == nil {
		return nil, errors.New("dist: coordinator needs an OnResult sink")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 8
	}
	if opts.Retries <= 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 250 * time.Millisecond
	}
	if opts.Breaker.Cooldown <= 0 {
		// Probe at the coordinator's own retry cadence: a breaker that
		// cools down for seconds under a millisecond-backoff test
		// configuration would stall the suite, and one that probes in
		// milliseconds against production backoffs would hammer a sick
		// worker.
		opts.Breaker.Cooldown = 4 * opts.RetryBackoff
	}
	opts.Breaker = opts.Breaker.withDefaults()
	if opts.HedgePercentile <= 0 || opts.HedgePercentile > 1 {
		opts.HedgePercentile = 0.95
	}
	if opts.HedgeMultiplier <= 0 {
		opts.HedgeMultiplier = 2
	}
	if opts.HedgeMinDelay <= 0 {
		opts.HedgeMinDelay = 25 * time.Millisecond
	}
	if opts.HedgeMaxDelay <= 0 {
		opts.HedgeMaxDelay = 10 * time.Second
	}
	if opts.DeadlinePercentile <= 0 || opts.DeadlinePercentile > 1 {
		opts.DeadlinePercentile = 0.99
	}
	if opts.DeadlineMultiplier <= 0 {
		opts.DeadlineMultiplier = 4
	}
	if opts.DeadlineFloor <= 0 {
		opts.DeadlineFloor = time.Second
	}
	if opts.DeadlineCeil <= 0 {
		opts.DeadlineCeil = 5 * time.Minute
	}
	c := &Coordinator{
		opts:   opts,
		client: opts.Client,
		log:    opts.Logger,
		stats:  telemetry.NewRegistry(),
		// In-place retries per visit, times one visit per worker per
		// probe cycle: finite under total loss, roomy under repeated
		// trip/re-admit flapping.
		maxAttempts: (opts.Retries + 2) * len(opts.Workers) * (opts.Breaker.MaxProbeFailures + 1),
	}
	c.breakers = make([]*breaker, len(opts.Workers))
	for i := range c.breakers {
		c.breakers[i] = newBreaker(opts.Breaker)
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.log == nil {
		c.log = slog.Default()
	}
	return c, nil
}

// Stats snapshots the coordinator's sweep statistics (global, per-shard
// and per-worker batch latency histograms, in milliseconds). Safe
// during a running sweep.
func (c *Coordinator) Stats() telemetry.Snapshot {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats.Snapshot()
}

// Breakers snapshots every worker's circuit breaker, keyed by worker
// URL. Safe during a running sweep; the fleet monitor decorates its
// health view with this.
func (c *Coordinator) Breakers() map[string]BreakerSnapshot {
	out := make(map[string]BreakerSnapshot, len(c.breakers))
	for i, b := range c.breakers {
		out[c.opts.Workers[i]] = b.Snapshot()
	}
	return out
}

// observeBatch records one completed batch request's latency under the
// global, per-shard, and per-worker histograms. The global histogram
// feeds the hedge threshold; the per-worker one feeds that worker's
// adaptive deadline.
func (c *Coordinator) observeBatch(shard, wi int, d time.Duration) {
	ms := uint64(d.Milliseconds())
	c.statsMu.Lock()
	c.stats.Histogram("batch_ms").Observe(ms)
	c.stats.Histogram(fmt.Sprintf("shard%d.batch_ms", shard)).Observe(ms)
	c.stats.Histogram(fmt.Sprintf("worker%d.batch_ms", wi)).Observe(ms)
	c.statsMu.Unlock()
}

// hedgeMinSamples and deadlineMinSamples gate the adaptive thresholds:
// below these observation counts the latency histograms are noise and
// the fixed-configuration behavior applies.
const (
	hedgeMinSamples    = 8
	deadlineMinSamples = 8
)

// hedgeDelay returns how long a batch may be in flight before it is
// hedged to a second worker, or 0 when hedging is off (disabled, a
// single worker, or not enough latency history yet).
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.opts.DisableHedging || len(c.opts.Workers) < 2 {
		return 0
	}
	c.statsMu.Lock()
	h := c.stats.Histogram("batch_ms")
	n := h.Count()
	q := h.Quantile(c.opts.HedgePercentile)
	c.statsMu.Unlock()
	if n < hedgeMinSamples {
		return 0
	}
	d := time.Duration(float64(q)*c.opts.HedgeMultiplier) * time.Millisecond
	if d < c.opts.HedgeMinDelay {
		d = c.opts.HedgeMinDelay
	}
	if d > c.opts.HedgeMaxDelay {
		d = c.opts.HedgeMaxDelay
	}
	return d
}

// deadlineFor returns the worker-side per-job deadline (ms) to stamp
// on a batch dispatched to worker wi: the fixed JobTimeout until
// AdaptiveDeadline has latency history, then pN × multiplier clamped
// to the floor/ceiling.
func (c *Coordinator) deadlineFor(wi int) int64 {
	fixed := c.opts.JobTimeout.Milliseconds()
	if !c.opts.AdaptiveDeadline {
		return fixed
	}
	c.statsMu.Lock()
	h := c.stats.Histogram(fmt.Sprintf("worker%d.batch_ms", wi))
	n := h.Count()
	q := h.Quantile(c.opts.DeadlinePercentile)
	c.statsMu.Unlock()
	if n < deadlineMinSamples {
		return fixed
	}
	d := time.Duration(float64(q)*c.opts.DeadlineMultiplier) * time.Millisecond
	if d < c.opts.DeadlineFloor {
		d = c.opts.DeadlineFloor
	}
	if d > c.opts.DeadlineCeil {
		d = c.opts.DeadlineCeil
	}
	return d.Milliseconds()
}

// pickHedge chooses a healthy worker other than the primary for a
// hedged dispatch, preferring rotation order after the primary.
func (c *Coordinator) pickHedge(primary int) (int, string, bool) {
	nw := len(c.opts.Workers)
	for i := 1; i < nw; i++ {
		wi := (primary + i) % nw
		if c.breakers[wi].Closed() {
			return wi, c.opts.Workers[wi], true
		}
	}
	return 0, "", false
}

// recordOutcome feeds one request outcome to a worker's breaker,
// counting the trip if this outcome caused one. Outcomes from
// cancelled requests (hedge losers, sweep teardown) say nothing about
// worker health and are dropped.
func (c *Coordinator) recordOutcome(ctx context.Context, wi int, ok bool) {
	if ctx.Err() != nil {
		return
	}
	if c.breakers[wi].Record(ok) {
		live.breakerTrips.Add(1)
	}
}

// forceTrip opens a worker's breaker when its loop gives up for
// reasons the outcome stream did not already trip on.
func (c *Coordinator) forceTrip(wi int) {
	if c.breakers[wi].Trip() {
		live.breakerTrips.Add(1)
	}
}

// shardFor returns the trace bookkeeping for a task's shard (nil when
// tracing is off).
func (c *Coordinator) shardFor(t *task) *shardTrace {
	if t.batch.Shard < len(c.shards) {
		return c.shards[t.batch.Shard]
	}
	return nil
}

// Ping checks every worker for liveness and schema agreement. Callers
// run it before a sweep so misconfiguration fails in milliseconds, not
// after the plan executes. Schema disagreement on any worker aborts —
// that is a build mismatch no amount of retrying fixes. A worker that
// is merely unreachable (partition, restart, flaky path) has its
// breaker tripped instead, so the sweep starts without it and the
// half-open probe loop re-admits it when its network heals; only when
// every worker is unreachable does Ping fail.
func (c *Coordinator) Ping(ctx context.Context) error {
	var firstErr error
	reachable := 0
	for i, w := range c.opts.Workers {
		err := c.pingOne(ctx, w)
		switch {
		case err == nil:
			reachable++
		case errors.Is(err, ErrSchema):
			return err
		default:
			if firstErr == nil {
				firstErr = err
			}
			c.forceTrip(i)
			c.log.Warn("worker unreachable at startup; tripping breaker and probing",
				"worker", w, "err", err)
		}
	}
	if reachable == 0 {
		return firstErr
	}
	return nil
}

// pingOne checks one worker for liveness and schema agreement. It
// doubles as the breaker's half-open probe: cheap, side-effect free,
// and it exercises the same HTTP path a batch would.
func (c *Coordinator) pingOne(ctx context.Context, w string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+PathPing, nil)
	if err != nil {
		return fmt.Errorf("dist: ping %s: %w", w, err)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: ping %s: %w", w, err)
	}
	body, rerr := readAllLimited(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return fmt.Errorf("dist: ping %s: %w", w, rerr)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: ping %s: HTTP %d: %s", w, resp.StatusCode, bytes.TrimSpace(body))
	}
	var reply struct {
		Schema int    `json:"schema"`
		Worker string `json:"worker"`
	}
	if err := decodeStrict(body, &reply); err != nil {
		return fmt.Errorf("dist: ping %s: %w", w, err)
	}
	if reply.Schema != SchemaVersion {
		return fmt.Errorf("dist: ping %s (%s): %w: worker speaks %d, this build speaks %d",
			w, reply.Worker, ErrSchema, reply.Schema, SchemaVersion)
	}
	return nil
}

// probeWorker runs one bounded half-open probe against a worker.
func (c *Coordinator) probeWorker(ctx context.Context, url string) bool {
	pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return c.pingOne(pctx, url) == nil
}

// Run executes the planned jobs across the workers. jobs and keys are
// parallel slices, sorted by key (core.CollectJobs guarantees this),
// which makes the sharding deterministic: job i goes to shard
// i mod len(Workers), shards are cut into BatchSize batches in order.
// Run returns once every job has been merged through OnResult, or with
// the first deterministic failure, or when undeliverable work remains.
func (c *Coordinator) Run(ctx context.Context, jobs []core.JobSpec, keys []string) error {
	if len(jobs) != len(keys) {
		return fmt.Errorf("dist: %d jobs with %d keys", len(jobs), len(keys))
	}
	if len(jobs) == 0 {
		return nil
	}
	nw := len(c.opts.Workers)

	// Deterministic sharding: round-robin over the key-sorted job list
	// balances every benchmark mix across workers regardless of where
	// the expensive configurations cluster in key order.
	shards := make([][]Job, nw)
	for i := range jobs {
		w := i % nw
		shards[w] = append(shards[w], Job{Key: keys[i], Spec: jobs[i]})
	}
	var tasks [][]*task
	total := 0
	for si, shard := range shards {
		var own []*task
		for seq := 0; len(shard) > 0; seq++ {
			n := min(c.opts.BatchSize, len(shard))
			own = append(own, &task{batch: Batch{
				Schema:       SchemaVersion,
				Shard:        si,
				Seq:          seq,
				JobTimeoutMS: c.opts.JobTimeout.Milliseconds(),
				Jobs:         shard[:n],
			}})
			shard = shard[n:]
			total++
		}
		tasks = append(tasks, own)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	c.cancel = cancel
	c.doneCh = make(chan struct{})
	c.doneOnce = sync.Once{}
	c.firstErr = nil
	c.pending.Store(int64(total))
	c.alive.Store(int64(nw))
	c.mergedMu.Lock()
	c.merged = make(map[string]struct{}, len(jobs))
	c.mergedMu.Unlock()
	live.jobsDispatched.Add(uint64(len(jobs)))

	// Open the sweep trace: a root span plus one span per shard. Shard
	// spans end when their last task retires — possibly on a different
	// worker than the shard was cut for — and any span still open when
	// Run returns (abort paths) is closed below; End is idempotent.
	if tr := c.opts.Tracer; tr != nil {
		c.sweepSpan = tr.StartTrace("sweep")
		c.sweepSpan.SetAttr("jobs", fmt.Sprint(len(jobs)))
		c.sweepSpan.SetAttr("workers", fmt.Sprint(nw))
		c.shards = make([]*shardTrace, nw)
		for si := range c.shards {
			st := &shardTrace{span: tr.StartSpan("shard", c.sweepSpan.Context())}
			st.span.SetAttr("shard", fmt.Sprint(si))
			st.span.SetAttr("worker", c.opts.Workers[si])
			st.pending.Store(int64(len(tasks[si])))
			if len(tasks[si]) == 0 {
				st.span.End()
			}
			c.shards[si] = st
		}
		defer func() {
			for _, st := range c.shards {
				st.span.End()
			}
			c.sweepSpan.End()
			c.shards, c.sweepSpan = nil, nil
		}()
	}

	// Orphan queue: batches whose worker was evicted, awaiting
	// reassignment. Sized so every task can be requeued at its full
	// attempt budget without a push ever blocking.
	orphans := make(chan *task, total*(c.maxAttempts+1)+nw)

	var wg sync.WaitGroup
	for wi, url := range c.opts.Workers {
		wg.Add(1)
		go func(wi int, url string, own []*task) {
			defer wg.Done()
			c.workerLoop(runCtx, wi, url, own, orphans)
		}(wi, url, tasks[wi])
	}
	wg.Wait()

	c.mu.Lock()
	err := c.firstErr
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if n := c.pending.Load(); n != 0 {
		return fmt.Errorf("dist: %d batches undelivered: every worker failed", n)
	}
	return nil
}

// abort records the sweep's first fatal error and cancels everything.
func (c *Coordinator) abort(err error) {
	c.mu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.mu.Unlock()
	c.cancel()
}

// finish retires one task; the last one releases every worker loop.
func (c *Coordinator) finish() {
	if c.pending.Add(-1) == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// requeue puts a task back up for grabs by healthy workers, aborting
// if its attempt budget is spent or the queue is impossibly full.
func (c *Coordinator) requeue(t *task, orphans chan *task) bool {
	t.attempts++
	if t.attempts > c.maxAttempts {
		c.abort(fmt.Errorf("dist: shard %d batch %d undeliverable after %d attempts",
			t.batch.Shard, t.batch.Seq, t.attempts))
		return false
	}
	select {
	case orphans <- t:
		live.jobsRequeued.Add(uint64(len(t.batch.Jobs)))
		return true
	default:
		c.abort(fmt.Errorf("dist: orphan queue overflow (shard %d batch %d)", t.batch.Shard, t.batch.Seq))
		return false
	}
}

// workerLoop drives one worker: it drains the worker's own shard, then
// steals orphaned batches from evicted workers until the sweep
// completes. When the worker's circuit breaker opens — tripped by the
// outcome stream or forced after a task exhausts its in-place retries
// — the loop requeues everything it holds (so healthy workers pick it
// up immediately) and switches to half-open probing; a passing probe
// re-admits the worker into the rotation, and an exhausted probe
// budget declares it permanently lost. The last loop to die with work
// still pending aborts the sweep.
func (c *Coordinator) workerLoop(ctx context.Context, wi int, url string, own []*task, orphans chan *task) {
	br := c.breakers[wi]
	var failed *task
	for {
		if ctx.Err() != nil {
			return
		}
		if failed != nil || !br.Closed() {
			c.forceTrip(wi)
			n := len(own)
			if failed != nil {
				n++
			}
			live.workersLost.Add(1)
			c.log.WarnContext(telemetry.ContextWithSpan(ctx, c.sweepSpan),
				"worker lost; reassigning batches", "url", url, "batches", n,
				"breaker", br.Snapshot().State)
			if failed != nil {
				c.requeue(failed, orphans)
				failed = nil
			}
			for _, t := range own {
				c.requeue(t, orphans)
			}
			own = nil
			readmitted, lost := c.probeUntilHealthy(ctx, wi, url)
			if lost {
				c.log.ErrorContext(telemetry.ContextWithSpan(ctx, c.sweepSpan),
					"worker permanently lost: probe budget exhausted", "url", url)
				if c.alive.Add(-1) == 0 && c.pending.Load() > 0 {
					c.abort(errors.New("dist: all workers failed"))
				}
				return
			}
			if !readmitted {
				return // sweep finished or cancelled while probing
			}
			c.log.InfoContext(telemetry.ContextWithSpan(ctx, c.sweepSpan),
				"worker re-admitted after successful probe", "url", url)
			continue
		}
		var t *task
		if len(own) > 0 {
			t = own[0]
			own = own[1:]
		} else {
			select {
			case <-ctx.Done():
				return
			case <-c.doneCh:
				return
			case t = <-orphans:
			}
		}
		if !c.handle(ctx, wi, url, t, orphans) {
			failed = t
		}
	}
}

// probeUntilHealthy runs the breaker's half-open probe schedule until
// the worker is re-admitted (readmitted), the probe budget is spent
// (lost), or the sweep ends (neither).
func (c *Coordinator) probeUntilHealthy(ctx context.Context, wi int, url string) (readmitted, lost bool) {
	br := c.breakers[wi]
	for {
		if br.Exhausted() {
			return false, true
		}
		if wait := br.ProbeWait(); wait > 0 {
			select {
			case <-ctx.Done():
				return false, false
			case <-c.doneCh:
				return false, false
			case <-time.After(wait):
			}
		}
		if !br.BeginProbe() {
			if br.Closed() {
				return true, false
			}
			continue
		}
		live.breakerProbes.Add(1)
		ok := c.probeWorker(ctx, url)
		if br.ProbeResult(ok) {
			live.breakerReadmits.Add(1)
			return true, false
		}
		if ctx.Err() != nil {
			return false, false
		}
	}
}

// handle runs one task to completion on this worker. It returns false
// when the worker must be evicted (the caller requeues t and starts
// probing); fatal errors abort the whole sweep and return true so the
// loop winds down via context cancellation.
func (c *Coordinator) handle(ctx context.Context, wi int, url string, t *task, orphans chan *task) bool {
	requeueJobs, err := c.runTask(ctx, wi, url, t)
	if err != nil {
		if ctx.Err() != nil {
			return true // sweep is being torn down, not a worker problem
		}
		if runner.IsTransient(err) {
			return false // worker unreachable after in-place retries
		}
		c.abort(err)
		return true
	}
	if len(requeueJobs) > 0 {
		// Worker-side transient failures (per-job deadline expiry):
		// spin the survivors into a fresh task before retiring this one
		// so the pending count never momentarily hits zero. The shard's
		// trace pending count moves in lockstep so its span outlives the
		// retried work.
		nt := &task{
			batch: Batch{
				Schema:       SchemaVersion,
				Shard:        t.batch.Shard,
				Seq:          t.batch.Seq,
				JobTimeoutMS: t.batch.JobTimeoutMS,
				Jobs:         requeueJobs,
			},
			attempts: t.attempts,
		}
		c.pending.Add(1)
		if st := c.shardFor(nt); st != nil {
			st.pending.Add(1)
		}
		if c.requeue(nt, orphans) {
			c.log.InfoContext(telemetry.ContextWithSpan(ctx, c.sweepSpan), "transient job failures requeued",
				"jobs", len(requeueJobs), "url", url)
		}
	}
	c.shardFor(t).taskDone()
	c.finish()
	return true
}

// postOutcome is one dispatch attempt's terminal result inside
// runTask: the primary's (after its in-place retries) or the hedge's.
type postOutcome struct {
	reply BatchResult
	err   error
	hedge bool
}

// runTask delivers one batch: it dispatches to the primary worker
// (with in-place retries), optionally hedges to a second worker when
// the batch outlives the adaptive latency threshold, merges the first
// successful reply, and cancels the loser. Deterministic failures —
// malformed batch (HTTP 400 from the worker), schema skew, a job error
// the worker marked permanent — come back as non-transient errors.
func (c *Coordinator) runTask(ctx context.Context, wi int, url string, t *task) ([]Job, error) {
	t.batch.JobTimeoutMS = c.deadlineFor(wi)
	payload, err := EncodeBatch(t.batch)
	if err != nil {
		return nil, fmt.Errorf("dist: encode batch: %w", err)
	}
	// One batch span covers the task on this worker, in-place retries
	// and any hedge included; its context rides the request headers so
	// the workers' spans become its children.
	var parent telemetry.SpanContext
	if st := c.shardFor(t); st != nil {
		parent = st.span.Context()
	}
	span := c.opts.Tracer.StartSpan("batch", parent)
	span.SetAttr("shard", fmt.Sprint(t.batch.Shard))
	span.SetAttr("seq", fmt.Sprint(t.batch.Seq))
	span.SetAttr("jobs", fmt.Sprint(len(t.batch.Jobs)))
	span.SetAttr("url", url)
	span.SetAttr("deadline_ms", fmt.Sprint(t.batch.JobTimeoutMS))
	defer span.End()

	resCh := make(chan postOutcome, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		reply, err := c.postRetry(pctx, wi, url, payload, span, t.batch.Shard)
		resCh <- postOutcome{reply: reply, err: err}
	}()

	issued := 1
	var first *postOutcome
	var hcancel context.CancelFunc
	if delay := c.hedgeDelay(); delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case out := <-resCh:
			timer.Stop()
			first = &out
		case <-timer.C:
			if hwi, hurl, ok := c.pickHedge(wi); ok {
				var hctx context.Context
				hctx, hcancel = context.WithCancel(ctx)
				defer hcancel()
				live.hedgesIssued.Add(1)
				span.SetAttr("hedged", "true")
				span.SetAttr("hedge_url", hurl)
				c.log.InfoContext(telemetry.ContextWithSpan(ctx, span), "hedging slow batch",
					"shard", t.batch.Shard, "seq", t.batch.Seq,
					"primary", url, "hedge", hurl, "threshold", delay)
				go func() {
					start := time.Now()
					reply, err := c.post(hctx, hurl, payload, span.Context())
					c.recordOutcome(hctx, hwi, err == nil)
					if err == nil {
						c.observeBatch(t.batch.Shard, hwi, time.Since(start))
					}
					resCh <- postOutcome{reply: reply, err: err, hedge: true}
				}()
				issued = 2
			}
		}
	}

	// Take the first success; cancel the loser, then drain it (fast —
	// its context is gone) so no goroutine outlives the task.
	var win *postOutcome
	var firstErr error
	received := 0
	if first != nil {
		received = 1
		if first.err == nil {
			win = first
		} else {
			firstErr = first.err
		}
	}
	for received < issued {
		out := <-resCh
		received++
		switch {
		case out.err == nil && win == nil:
			win = &out
			if out.hedge {
				live.hedgeWins.Add(1)
				pcancel()
			} else if hcancel != nil {
				hcancel()
			}
		case out.err != nil && win == nil:
			// Keep the most decisive error: deterministic beats
			// transient (it must abort the sweep, not evict a worker).
			if firstErr == nil || (!runner.IsTransient(out.err) && runner.IsTransient(firstErr)) {
				firstErr = out.err
			}
		}
	}
	if issued == 2 && (win == nil || !win.hedge) {
		live.hedgeLosses.Add(1)
	}
	if win == nil {
		return nil, firstErr
	}
	if win.hedge {
		span.SetAttr("winner", "hedge")
	}
	return c.merge(t, win.reply)
}

// postRetry POSTs one batch to one worker, retrying transient
// transport failures in place with capped exponential backoff. Every
// attempt's outcome feeds the worker's breaker; once the breaker
// trips, remaining in-place retries are pointless (the worker is being
// evicted) and the last error returns immediately.
func (c *Coordinator) postRetry(ctx context.Context, wi int, url string, payload []byte, span *telemetry.Span, shard int) (BatchResult, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			live.batchRetries.Add(1)
			span.SetAttr("retries", fmt.Sprint(attempt))
			select {
			case <-ctx.Done():
				return BatchResult{}, ctx.Err()
			case <-time.After(runner.Backoff{Initial: c.opts.RetryBackoff}.Delay(attempt - 1)):
			}
		}
		start := time.Now()
		reply, err := c.post(ctx, url, payload, span.Context())
		c.recordOutcome(ctx, wi, err == nil)
		if err == nil {
			c.observeBatch(shard, wi, time.Since(start))
			return reply, nil
		}
		lastErr = err
		if !runner.IsTransient(err) || ctx.Err() != nil {
			return BatchResult{}, err
		}
		c.log.WarnContext(telemetry.ContextWithSpan(ctx, span), "batch attempt failed",
			"url", url, "attempt", attempt+1, "attempts", c.opts.Retries+1, "err", err)
		if !c.breakers[wi].Closed() {
			break
		}
	}
	return BatchResult{}, lastErr
}

// post sends one batch request and decodes the reply, classifying
// failures: transport errors, 5xx, digest mismatches (HTTP 409 from
// the worker, or a corrupted reply detected here) are transient, while
// a 4xx whose reply carries an intact digest — proof the worker itself
// produced it — is deterministic. A 4xx without a digest could be the
// HTTP server machinery answering a request corrupted in transit, so
// it is retried too.
func (c *Coordinator) post(ctx context.Context, url string, payload []byte, sc telemetry.SpanContext) (BatchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+PathExec, bytes.NewReader(payload))
	if err != nil {
		return BatchResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderDigest, ContentDigest(payload))
	if sc.Valid() {
		req.Header.Set(HeaderTraceID, sc.TraceID)
		req.Header.Set(HeaderSpanID, sc.SpanID)
	}
	live.batchesSent.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		return BatchResult{}, runner.Transient(err)
	}
	defer resp.Body.Close()
	body, err := readAllLimited(resp.Body)
	if err != nil {
		return BatchResult{}, runner.Transient(err)
	}
	digest := resp.Header.Get(HeaderDigest)
	if digest != "" && digest != ContentDigest(body) {
		return BatchResult{}, runner.Transient(fmt.Errorf("dist: %s: reply corrupted in transit (content digest mismatch)", url))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusConflict:
		// The worker detected our request was corrupted in transit.
		return BatchResult{}, runner.Transient(fmt.Errorf("dist: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body)))
	case resp.StatusCode >= 500:
		return BatchResult{}, runner.Transient(fmt.Errorf("dist: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body)))
	case digest != "":
		// 4xx with an intact digest: the worker understood us and said
		// no — deterministic.
		return BatchResult{}, fmt.Errorf("dist: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	default:
		// 4xx without a digest: possibly the server machinery rejecting
		// a request mangled by the network, not our handler. Retry.
		return BatchResult{}, runner.Transient(fmt.Errorf("dist: %s: HTTP %d (no content digest): %s", url, resp.StatusCode, bytes.TrimSpace(body)))
	}
	reply, err := DecodeBatchResult(body)
	if err != nil {
		if errors.Is(err, ErrSchema) {
			return BatchResult{}, err
		}
		// A garbled reply body could be a proxy or truncation artifact;
		// let the in-place retry take another look.
		return BatchResult{}, runner.Transient(err)
	}
	return reply, nil
}

// merge folds a worker's reply into the sweep: successes through
// OnResult, transient job failures into the requeue list, permanent
// job failures into a fatal error. The whole reply is validated before
// anything merges — a replies-then-fails-midway path would otherwise
// merge part of a batch, requeue it, and merge the rest twice. The
// merged-key guard makes every job's merge exactly-once even across
// hedges and reassignment.
func (c *Coordinator) merge(t *task, reply BatchResult) ([]Job, error) {
	// Worker spans merge into the sweep's tracer regardless of job
	// outcomes — a failed batch's timing is exactly what a trace is for.
	c.opts.Tracer.Import(reply.Spans)
	byKey := make(map[string]Job, len(t.batch.Jobs))
	for _, j := range t.batch.Jobs {
		byKey[j.Key] = j
	}
	if len(reply.Results) != len(t.batch.Jobs) {
		return nil, runner.Transient(fmt.Errorf("dist: worker %q answered %d of %d jobs",
			reply.Worker, len(reply.Results), len(t.batch.Jobs)))
	}
	for _, jr := range reply.Results {
		if _, ok := byKey[jr.Key]; !ok {
			return nil, runner.Transient(fmt.Errorf("dist: worker %q answered unknown key %q", reply.Worker, jr.Key))
		}
	}
	var requeue []Job
	for _, jr := range reply.Results {
		job := byKey[jr.Key]
		switch {
		case jr.Run != nil:
			c.mergeOnce(reply.Worker, job, *jr.Run)
		case jr.Transient:
			requeue = append(requeue, job)
		default:
			return nil, fmt.Errorf("dist: job %s failed on worker %q: %s", jr.Key, reply.Worker, jr.Err)
		}
	}
	return requeue, nil
}

// mergeOnce hands one job result to OnResult unless the key already
// merged (a hedge duplicate or a re-executed reassignment), keeping
// manifest recording at exactly one record per job.
func (c *Coordinator) mergeOnce(worker string, job Job, run metrics.Run) {
	c.mergedMu.Lock()
	if _, dup := c.merged[job.Key]; dup {
		c.mergedMu.Unlock()
		live.dupsSuppressed.Add(1)
		return
	}
	c.merged[job.Key] = struct{}{}
	c.mergedMu.Unlock()
	c.opts.OnResult(worker, job, run)
	live.jobsMerged.Add(1)
}
