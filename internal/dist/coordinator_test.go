package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/runner"
)

// jobSet builds n distinct valid jobs (distinct CIC thresholds) plus
// their key slice, sorted the way core.CollectJobs delivers them.
func jobSet(t *testing.T, n int) ([]core.JobSpec, []string) {
	t.Helper()
	type pair struct {
		spec core.JobSpec
		key  string
	}
	pairs := make([]pair, n)
	for i := range pairs {
		spec := core.JobSpec{
			Bench:     "gzip",
			Machine:   config.Baseline40x4(),
			Predictor: "bimodal-gshare",
			Estimator: confidence.SpecCIC(i),
			Sizes:     core.JobSizes{Warmup: 1000, Measure: 3000, Segments: 1},
		}
		key, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = pair{spec, key}
	}
	for i := 0; i < len(pairs); i++ { // insertion sort by key: n is tiny
		for j := i; j > 0 && pairs[j].key < pairs[j-1].key; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	jobs := make([]core.JobSpec, n)
	keys := make([]string, n)
	for i, p := range pairs {
		jobs[i], keys[i] = p.spec, p.key
	}
	return jobs, keys
}

// mergeSink is a concurrency-safe OnResult recorder.
type mergeSink struct {
	mu      sync.Mutex
	byKey   map[string]metrics.Run
	workers map[string]int
	dups    int
}

func newMergeSink() *mergeSink {
	return &mergeSink{byKey: map[string]metrics.Run{}, workers: map[string]int{}}
}

func (s *mergeSink) OnResult(worker string, job Job, run metrics.Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.byKey[job.Key]; seen {
		s.dups++
	}
	s.byKey[job.Key] = run
	s.workers[worker]++
}

func (s *mergeSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

func testWorkerServer(name string, exec func(context.Context, core.JobSpec) (metrics.Run, error)) *httptest.Server {
	if exec == nil {
		exec = stubExec
	}
	return httptest.NewServer(NewWorker(WorkerOptions{Name: name, Exec: exec}).Handler())
}

func fastOpts(urls []string, sink *mergeSink) Options {
	return Options{
		Workers:      urls,
		BatchSize:    2,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		OnResult:     sink.OnResult,
	}
}

func TestCoordinatorMergesEveryJob(t *testing.T) {
	w1 := testWorkerServer("w1", nil)
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()

	jobs, keys := jobSet(t, 11)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{w1.URL, w2.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatal(err)
	}
	if sink.len() != len(jobs) {
		t.Errorf("merged %d of %d jobs", sink.len(), len(jobs))
	}
	if sink.dups != 0 {
		t.Errorf("%d duplicate merges (each key must merge exactly once)", sink.dups)
	}
	// Round-robin sharding: both workers must have done work.
	if sink.workers["w1"] == 0 || sink.workers["w2"] == 0 {
		t.Errorf("sharding skew: %v", sink.workers)
	}
}

func TestCoordinatorReassignsFromDeadWorker(t *testing.T) {
	ResetStats()
	alive := testWorkerServer("alive", nil)
	defer alive.Close()
	dead := testWorkerServer("dead", nil)
	dead.Close() // every request refused: connection error from the start

	jobs, keys := jobSet(t, 9)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{alive.URL, dead.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep must survive one dead worker: %v", err)
	}
	if sink.len() != len(jobs) {
		t.Errorf("merged %d of %d jobs after reassignment", sink.len(), len(jobs))
	}
	if sink.workers["dead"] != 0 {
		t.Errorf("results attributed to the dead worker: %v", sink.workers)
	}
	if got := Snapshot().WorkersLost; got == 0 {
		t.Error("WorkersLost counter not bumped")
	}
}

func TestCoordinatorKilledMidSweep(t *testing.T) {
	// The flaky worker serves its first batch, then drops the
	// connection on every later request — a worker SIGKILLed mid-shard
	// as seen from the coordinator. The sweep must still merge every
	// job exactly once via the survivor.
	var served atomic32
	flakyWorker := NewWorker(WorkerOptions{Name: "flaky", Exec: stubExec})
	flaky := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, PathExec) && served.add(1) > 1 {
			hj, ok := rw.(http.Hijacker)
			if !ok {
				t.Error("no hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close() // mid-request death: no HTTP response at all
			}
			return
		}
		flakyWorker.Handler().ServeHTTP(rw, req)
	}))
	defer flaky.Close()
	survivor := testWorkerServer("survivor", nil)
	defer survivor.Close()

	jobs, keys := jobSet(t, 12)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{flaky.URL, survivor.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep must survive a worker dying mid-shard: %v", err)
	}
	if sink.len() != len(jobs) {
		t.Errorf("merged %d of %d jobs", sink.len(), len(jobs))
	}
	if sink.dups != 0 {
		t.Errorf("%d duplicate merges", sink.dups)
	}
}

func TestCoordinatorAbortsOnDeterministicFailure(t *testing.T) {
	exec := func(_ context.Context, j core.JobSpec) (metrics.Run, error) {
		if j.Estimator != nil && j.Estimator.CIC != nil && j.Estimator.CIC.Lambda == 3 {
			return metrics.Run{}, errors.New("poisoned configuration")
		}
		return stubExec(context.Background(), j)
	}
	w1 := testWorkerServer("w1", exec)
	defer w1.Close()

	jobs, keys := jobSet(t, 6)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{w1.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	err = coord.Run(context.Background(), jobs, keys)
	if err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("deterministic job failure must abort the sweep: err = %v", err)
	}
}

func TestCoordinatorAllWorkersDead(t *testing.T) {
	s := testWorkerServer("gone", nil)
	url := s.URL
	s.Close()
	jobs, keys := jobSet(t, 4)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{url}, sink))
	if err != nil {
		t.Fatal(err)
	}
	err = coord.Run(context.Background(), jobs, keys)
	if err == nil {
		t.Fatal("sweep with zero live workers must fail")
	}
	if sink.len() != 0 {
		t.Errorf("merged %d jobs from a dead cluster", sink.len())
	}
}

func TestCoordinatorRequeuesTransientJobFailures(t *testing.T) {
	ResetStats()
	// Every job fails transiently exactly once, then succeeds: the
	// worker-side deadline-expiry pattern.
	var mu sync.Mutex
	failed := map[string]bool{}
	exec := func(_ context.Context, j core.JobSpec) (metrics.Run, error) {
		key := fmt.Sprintf("%v", j.Estimator.CIC.Lambda)
		mu.Lock()
		first := !failed[key]
		failed[key] = true
		mu.Unlock()
		if first {
			return metrics.Run{}, runner.Transient(errors.New("deadline"))
		}
		return stubExec(context.Background(), j)
	}
	w1 := testWorkerServer("w1", exec)
	defer w1.Close()
	w2 := testWorkerServer("w2", exec)
	defer w2.Close()

	jobs, keys := jobSet(t, 8)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{w1.URL, w2.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("transient job failures must be retried to success: %v", err)
	}
	if sink.len() != len(jobs) {
		t.Errorf("merged %d of %d jobs", sink.len(), len(jobs))
	}
	if got := Snapshot().JobsRequeued; got == 0 {
		t.Error("JobsRequeued counter not bumped")
	}
}

func TestCoordinatorPingRejectsSchemaSkew(t *testing.T) {
	impostor := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(rw, `{"schema":%d,"worker":"future"}`+"\n", SchemaVersion+5)
	}))
	defer impostor.Close()
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{impostor.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ping(context.Background()); !errors.Is(err, ErrSchema) {
		t.Errorf("ping against schema-skewed worker: err = %v, want ErrSchema", err)
	}
}

func TestCoordinatorOptionValidation(t *testing.T) {
	sink := newMergeSink()
	if _, err := NewCoordinator(Options{OnResult: sink.OnResult}); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := NewCoordinator(Options{Workers: []string{"http://x"}}); err == nil {
		t.Error("nil OnResult accepted")
	}
	if _, err := NewCoordinator(Options{Workers: []string{""}, OnResult: sink.OnResult}); err == nil {
		t.Error("empty worker URL accepted")
	}
}

// atomic32 is a tiny counter (sync/atomic with less ceremony).
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n += d
	return a.n
}
