package dist

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"bce/internal/telemetry"
)

// fleet.go is the coordinator-side fleet monitor: a background poller
// that scrapes every worker's /readyz and /metrics (served on the
// worker API port) and aggregates the answers into one fleet view for
// the coordinator's debug endpoint. Purely observational — it shares
// no state with the sweep scheduler and its failure to reach a worker
// never affects job routing (the coordinator's own retry/reassignment
// logic owns that).

// FleetOptions configures a Fleet monitor.
type FleetOptions struct {
	// Workers is the list of worker base URLs, same as Options.Workers.
	Workers []string
	// Client issues the poll requests; nil means a 5s-timeout client
	// (polls must not hang behind a stuck worker).
	Client *http.Client
	// Interval is the poll period (default 2s).
	Interval time.Duration
	// Logger receives up/down transition records; nil means
	// slog.Default().
	Logger *slog.Logger
}

// WorkerHealth is one worker's last-polled state.
type WorkerHealth struct {
	// Up means the last /metrics scrape succeeded.
	Up bool `json:"up"`
	// Ready mirrors the worker's /readyz probe.
	Ready bool `json:"ready"`
	// JobsInFlight is the worker's busy simulation slots right now.
	JobsInFlight uint64 `json:"jobs_in_flight"`
	// Counters scraped from the worker's bce_dist / bce_result_cache
	// metrics.
	BatchesServed uint64 `json:"batches_served"`
	JobsReceived  uint64 `json:"jobs_received"`
	JobsOK        uint64 `json:"jobs_ok"`
	JobsFailed    uint64 `json:"jobs_failed"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	// JobsRetried and StoreQuarantined come from the worker's
	// bce_runner metrics: transient-failure retries inside the worker's
	// own pool, and result-store entries quarantined as undecodable.
	// Either climbing on one worker while the fleet stays flat is the
	// "sick host" signal the breaker acts on.
	JobsRetried      uint64 `json:"jobs_retried"`
	StoreQuarantined uint64 `json:"store_quarantined"`
	// Breaker is this worker's coordinator-side circuit breaker state
	// ("closed", "open", "half-open"), empty when no breaker source is
	// attached (fleet monitor running without a coordinator).
	Breaker string `json:"breaker,omitempty"`
	// Polls and Failures count this monitor's scrape attempts.
	Polls    uint64 `json:"polls"`
	Failures uint64 `json:"failures"`
}

// FleetSnapshot is the aggregated fleet view.
type FleetSnapshot struct {
	WorkersUp    int `json:"workers_up"`
	WorkersDown  int `json:"workers_down"`
	WorkersReady int `json:"workers_ready"`
	// JobsInFlight sums busy slots across reachable workers.
	JobsInFlight uint64 `json:"jobs_in_flight"`
	// PerWorker maps worker URL to its last-polled health.
	PerWorker map[string]WorkerHealth `json:"per_worker"`
}

// Fleet polls workers in the background. Start it with Start, read it
// with Snapshot, stop it by cancelling the context.
type Fleet struct {
	opts   FleetOptions
	client *http.Client
	log    *slog.Logger

	mu       sync.Mutex
	health   map[string]WorkerHealth
	breakers func() map[string]BreakerSnapshot

	wg sync.WaitGroup
}

// SetBreakerSource attaches a coordinator's breaker view (typically
// Coordinator.Breakers) so fleet snapshots carry each worker's breaker
// state alongside its scraped health. Call before Start.
func (f *Fleet) SetBreakerSource(src func() map[string]BreakerSnapshot) {
	f.mu.Lock()
	f.breakers = src
	f.mu.Unlock()
}

// NewFleet builds a Fleet monitor.
func NewFleet(opts FleetOptions) *Fleet {
	f := &Fleet{opts: opts, client: opts.Client, log: opts.Logger,
		health: make(map[string]WorkerHealth, len(opts.Workers))}
	if f.client == nil {
		f.client = &http.Client{Timeout: 5 * time.Second}
	}
	if f.log == nil {
		f.log = slog.Default()
	}
	if f.opts.Interval <= 0 {
		f.opts.Interval = 2 * time.Second
	}
	for _, url := range opts.Workers {
		f.health[url] = WorkerHealth{}
	}
	return f
}

// Start launches the poll loop; it polls every worker immediately,
// then on each interval tick until ctx is cancelled. Call Wait to
// block until the loop has fully stopped.
func (f *Fleet) Start(ctx context.Context) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		ticker := time.NewTicker(f.opts.Interval)
		defer ticker.Stop()
		for {
			f.pollAll(ctx)
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()
}

// Wait blocks until the poll loop started by Start has exited.
func (f *Fleet) Wait() { f.wg.Wait() }

func (f *Fleet) pollAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, url := range f.opts.Workers {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			f.poll(ctx, url)
		}(url)
	}
	wg.Wait()
}

// poll scrapes one worker and folds the result into the health map.
func (f *Fleet) poll(ctx context.Context, url string) {
	h := WorkerHealth{}
	m, err := f.scrapeMetrics(ctx, url)
	if err == nil {
		h.Up = true
		h.JobsInFlight = uint64(m.Value("bce_runner_busy_workers"))
		h.BatchesServed = uint64(m.Value("bce_dist_batches_served"))
		h.JobsReceived = uint64(m.Value("bce_dist_jobs_received"))
		h.JobsOK = uint64(m.Value("bce_dist_jobs_ok"))
		h.JobsFailed = uint64(m.Value("bce_dist_jobs_failed"))
		h.CacheHits = uint64(m.Value("bce_result_cache_hits"))
		h.CacheMisses = uint64(m.Value("bce_result_cache_misses"))
		h.JobsRetried = uint64(m.Value("bce_runner_jobs_retried"))
		h.StoreQuarantined = uint64(m.Value("bce_runner_store_quarantined"))
		h.Ready = f.probeReady(ctx, url)
	}

	f.mu.Lock()
	prev := f.health[url]
	h.Polls = prev.Polls + 1
	h.Failures = prev.Failures
	if !h.Up {
		h.Failures++
	}
	f.health[url] = h
	f.mu.Unlock()

	if prev.Up != h.Up && prev.Polls > 0 {
		if h.Up {
			f.log.Info("fleet: worker back up", "url", url)
		} else {
			f.log.Warn("fleet: worker unreachable", "url", url, "err", err)
		}
	}
}

func (f *Fleet) scrapeMetrics(ctx context.Context, url string) (*telemetry.PromMetrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &httpStatusError{url: url, status: resp.StatusCode}
	}
	return telemetry.ParsePromText(resp.Body)
}

func (f *Fleet) probeReady(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

type httpStatusError struct {
	url    string
	status int
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("fleet: %s: HTTP %d", e.url, e.status)
}

// Snapshot returns the aggregated fleet view. The per-worker map is a
// copy; mutate freely.
func (f *Fleet) Snapshot() FleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	var breakers map[string]BreakerSnapshot
	if f.breakers != nil {
		breakers = f.breakers()
	}
	snap := FleetSnapshot{PerWorker: make(map[string]WorkerHealth, len(f.health))}
	for url, h := range f.health {
		if bs, ok := breakers[url]; ok {
			h.Breaker = bs.State
		}
		snap.PerWorker[url] = h
		if h.Up {
			snap.WorkersUp++
			snap.JobsInFlight += h.JobsInFlight
		} else {
			snap.WorkersDown++
		}
		if h.Ready {
			snap.WorkersReady++
		}
	}
	return snap
}
