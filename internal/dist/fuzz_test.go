package dist

import (
	"fmt"
	"testing"

	"bce/internal/metrics"
)

// The wire decoders face bytes from the network; fuzz them for panics
// and for decode/encode/decode instability. Seed corpora cover the
// happy path, every validation branch, and a few JSON edge shapes.

func FuzzDecodeBatch(f *testing.F) {
	valid := sampleBatch()
	if data, err := EncodeBatch(valid); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"schema":1,"jobs":[{"key":"k","spec":{}}]}`))
	f.Add([]byte(`{"schema":0,"jobs":[]}`))
	f.Add([]byte(`{"schema":1,"jobs":[{"key":"","spec":{}}]}`))
	f.Add([]byte(`{"schema":1,"jobs":[{"key":"a","spec":{}},{"key":"a","spec":{}}]}`))
	f.Add([]byte(`{"schema":1,"job_timeout_ms":-5,"jobs":[{"key":"k","spec":{}}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte("{\"schema\":1e9}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// validated shape (idempotent normalization).
		out, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("decoded batch failed to encode: %v", err)
		}
		b2, err := DecodeBatch(out)
		if err != nil {
			t.Fatalf("re-decode of encoded batch failed: %v\npayload: %s", err, out)
		}
		if len(b2.Jobs) != len(b.Jobs) || b2.Schema != b.Schema {
			t.Fatalf("round trip drift: %+v -> %+v", b, b2)
		}
	})
}

func FuzzDecodeBatchResult(f *testing.F) {
	f.Add([]byte(`{"schema":1,"worker":"w","results":[{"key":"k","run":{}}]}`))
	f.Add([]byte(`{"schema":1,"results":[{"key":"k","err":"boom","transient":true}]}`))
	f.Add([]byte(`{"schema":1,"results":[{"key":"k"}]}`))
	f.Add([]byte(`{"schema":1,"results":[{"key":"k","run":{},"err":"x"}]}`))
	f.Add([]byte(`{"schema":2,"results":[]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeBatchResult(data)
		if err != nil {
			return
		}
		out, err := EncodeBatchResult(r)
		if err != nil {
			t.Fatalf("decoded result failed to encode: %v", err)
		}
		r2, err := DecodeBatchResult(out)
		if err != nil {
			t.Fatalf("re-decode of encoded result failed: %v\npayload: %s", err, out)
		}
		if len(r2.Results) != len(r.Results) || r2.Schema != r.Schema {
			t.Fatalf("round trip drift: %+v -> %+v", r, r2)
		}
	})
}

// FuzzHedgedMergeDedup drives the exactly-once merge guard with two
// replies for the same batch — the hedged-dispatch shape, where a
// primary and a hedge can both legally answer. Fuzzed per-job outcome
// masks and an optional unknown-key corruption must never produce a
// duplicate OnResult call, and a rejected reply must merge nothing.
func FuzzHedgedMergeDedup(f *testing.F) {
	f.Add(uint8(0b1111), uint8(0b1111), false)
	f.Add(uint8(0b1010), uint8(0b0101), false)
	f.Add(uint8(0), uint8(0b1111), false)
	f.Add(uint8(0b1111), uint8(0b1111), true)
	f.Add(uint8(0b0011), uint8(0b1100), true)
	f.Fuzz(func(t *testing.T, mask1, mask2 uint8, corruptSecond bool) {
		const njobs = 4
		batch := Batch{Schema: SchemaVersion, Jobs: make([]Job, njobs)}
		for i := range batch.Jobs {
			batch.Jobs[i].Key = fmt.Sprintf("k%d", i)
		}
		calls := map[string]int{}
		coord, err := NewCoordinator(Options{
			Workers:  []string{"http://unused"},
			OnResult: func(_ string, job Job, _ metrics.Run) { calls[job.Key]++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		coord.merged = map[string]struct{}{}

		reply := func(worker string, mask uint8) BatchResult {
			r := BatchResult{Schema: SchemaVersion, Worker: worker}
			for i, j := range batch.Jobs {
				if mask&(1<<i) != 0 {
					r.Results = append(r.Results, JobResult{Key: j.Key, Run: &metrics.Run{}})
				} else {
					r.Results = append(r.Results, JobResult{Key: j.Key, Err: "deadline", Transient: true})
				}
			}
			return r
		}
		tk := &task{batch: batch}
		r1 := reply("primary", mask1)
		r2 := reply("hedge", mask2)
		if corruptSecond {
			r2.Results[njobs-1].Key = "unknown-key"
		}

		okIn := func(mask uint8, i int) bool { return mask&(1<<i) != 0 }
		if _, err := coord.merge(tk, r1); err != nil {
			t.Fatalf("uncorrupted primary reply rejected: %v", err)
		}
		before := len(calls)
		_, err2 := coord.merge(tk, r2)
		if corruptSecond {
			if err2 == nil {
				t.Fatal("unknown-key reply accepted")
			}
			if len(calls) != before {
				t.Fatalf("rejected reply still merged %d jobs", len(calls)-before)
			}
		}
		for i, j := range batch.Jobs {
			want := 0
			if okIn(mask1, i) || (err2 == nil && okIn(mask2, i)) {
				want = 1
			}
			if calls[j.Key] > 1 {
				t.Fatalf("job %s merged %d times", j.Key, calls[j.Key])
			}
			if calls[j.Key] != want {
				t.Fatalf("job %s merged %d times, want %d (masks %b/%b corrupt=%v)",
					j.Key, calls[j.Key], want, mask1, mask2, corruptSecond)
			}
		}
	})
}
