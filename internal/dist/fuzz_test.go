package dist

import (
	"testing"
)

// The wire decoders face bytes from the network; fuzz them for panics
// and for decode/encode/decode instability. Seed corpora cover the
// happy path, every validation branch, and a few JSON edge shapes.

func FuzzDecodeBatch(f *testing.F) {
	valid := sampleBatch()
	if data, err := EncodeBatch(valid); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"schema":1,"jobs":[{"key":"k","spec":{}}]}`))
	f.Add([]byte(`{"schema":0,"jobs":[]}`))
	f.Add([]byte(`{"schema":1,"jobs":[{"key":"","spec":{}}]}`))
	f.Add([]byte(`{"schema":1,"jobs":[{"key":"a","spec":{}},{"key":"a","spec":{}}]}`))
	f.Add([]byte(`{"schema":1,"job_timeout_ms":-5,"jobs":[{"key":"k","spec":{}}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte("{\"schema\":1e9}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// validated shape (idempotent normalization).
		out, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("decoded batch failed to encode: %v", err)
		}
		b2, err := DecodeBatch(out)
		if err != nil {
			t.Fatalf("re-decode of encoded batch failed: %v\npayload: %s", err, out)
		}
		if len(b2.Jobs) != len(b.Jobs) || b2.Schema != b.Schema {
			t.Fatalf("round trip drift: %+v -> %+v", b, b2)
		}
	})
}

func FuzzDecodeBatchResult(f *testing.F) {
	f.Add([]byte(`{"schema":1,"worker":"w","results":[{"key":"k","run":{}}]}`))
	f.Add([]byte(`{"schema":1,"results":[{"key":"k","err":"boom","transient":true}]}`))
	f.Add([]byte(`{"schema":1,"results":[{"key":"k"}]}`))
	f.Add([]byte(`{"schema":1,"results":[{"key":"k","run":{},"err":"x"}]}`))
	f.Add([]byte(`{"schema":2,"results":[]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeBatchResult(data)
		if err != nil {
			return
		}
		out, err := EncodeBatchResult(r)
		if err != nil {
			t.Fatalf("decoded result failed to encode: %v", err)
		}
		r2, err := DecodeBatchResult(out)
		if err != nil {
			t.Fatalf("re-decode of encoded result failed: %v\npayload: %s", err, out)
		}
		if len(r2.Results) != len(r.Results) || r2.Schema != r.Schema {
			t.Fatalf("round trip drift: %+v -> %+v", r, r2)
		}
	})
}
