package dist

// integration_test.go is the multi-process conformance suite: real
// worker processes (this test binary re-executed in worker mode), real
// HTTP, real simulations, asserting the distributed sweep's defining
// property — byte-identity with single-process execution — including
// across worker death and coordinator crash/resume.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bce/internal/core"
	"bce/internal/faults/netproxy"
	"bce/internal/manifest"
	"bce/internal/metrics"
)

const (
	workerEnvName = "BCE_DIST_TEST_WORKER"
	workerEnvAddr = "BCE_DIST_TEST_ADDRFILE"
)

// TestMain doubles as the worker-process entry point: when the worker
// env vars are set, this test binary serves the dist worker API (with
// real core.ExecJob simulations) instead of running tests.
func TestMain(m *testing.M) {
	if name := os.Getenv(workerEnvName); name != "" {
		workerProcMain(name, os.Getenv(workerEnvAddr))
		return
	}
	os.Exit(m.Run())
}

func workerProcMain(name, addrFile string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	// Publish the picked port atomically: write-then-rename so the
	// parent never reads a half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	w := NewWorker(WorkerOptions{Name: name})
	if err := http.Serve(ln, w.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
}

// startWorkerProc launches one real worker process and waits until it
// is serving. The process is SIGKILLed at test cleanup.
func startWorkerProc(t *testing.T, name string) (string, *exec.Cmd) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), workerEnvName+"="+name, workerEnvAddr+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // may already be dead
		cmd.Wait()         //nolint:errcheck
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			url := "http://" + string(data)
			c, err := NewCoordinator(Options{
				Workers:  []string{url},
				OnResult: func(string, Job, metrics.Run) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Ping(context.Background()); err == nil {
				return url, cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s did not come up", name)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// integSizes keeps the multi-process sweeps fast: the byte-identity
// property does not depend on run length.
func integSizes() core.Sizes {
	return core.Sizes{Warmup: 1_000, Measure: 3_000, Segments: 1}
}

// renderTable4 runs the quick Table 4 sweep in-process and returns its
// rendered (stdout) form plus the result-cache miss delta — zero
// misses means every timing result was already on hand.
func renderTable4(t *testing.T, sz core.Sizes) (string, uint64) {
	t.Helper()
	_, missesBefore := core.ResultCacheStats()
	tbl, err := core.Table4(sz)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfter := core.ResultCacheStats()
	return tbl.String(), missesAfter - missesBefore
}

// planTable4 enumerates the Table 4 job space.
func planTable4(t *testing.T, sz core.Sizes) *core.Plan {
	t.Helper()
	plan, err := core.CollectJobs(func() error {
		_, err := core.Table4(sz)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// distributeTable4 plans and executes the Table 4 sweep against the
// given worker URLs, injecting every remote result into the local
// cache and recording manifest jobs, then renders the table locally.
// It returns the rendered table and the manifest's canonical job
// bytes (operational fields stripped).
func distributeTable4(t *testing.T, sz core.Sizes, urls []string, onMerge func(n int)) (string, []byte) {
	out, jobs, _ := distributeTable4Opts(t, sz, urls, onMerge, nil)
	return out, jobs
}

// distributeTable4Opts is distributeTable4 with an options hook (chaos
// legs tune timeouts/clients) and the finished manifest returned for
// record-level assertions.
func distributeTable4Opts(t *testing.T, sz core.Sizes, urls []string, onMerge func(n int), tweak func(*Options)) (string, []byte, *manifest.Manifest) {
	t.Helper()
	plan := planTable4(t, sz)
	if len(plan.Jobs) == 0 {
		t.Fatal("empty plan: nothing to distribute")
	}
	mb := manifest.NewBuilder("disttest", nil)
	var mu sync.Mutex
	merged := 0
	opts := Options{
		Workers:      urls,
		BatchSize:    4,
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
		OnResult: func(worker string, job Job, run metrics.Run) {
			core.InjectResult(job.Key, run)
			r := run
			mb.AddJob(manifest.Job{
				Key: job.Key, Kind: "timing", Bench: job.Spec.Bench,
				Worker: worker, Run: &r,
			})
			mu.Lock()
			merged++
			n := merged
			mu.Unlock()
			if onMerge != nil {
				onMerge(n)
			}
		},
	}
	if tweak != nil {
		tweak(&opts)
	}
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), plan.Jobs, plan.Keys); err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	out, misses := renderTable4(t, sz)
	if misses != 0 {
		t.Errorf("aggregation pass simulated %d jobs locally; every result should have come from the workers", misses)
	}
	m := mb.Finish(core.ResultCacheStats())
	return out, canonicalJobs(t, m.Jobs), m
}

// canonicalJobs strips the operational fields (which worker ran a job,
// cache counters) and marshals the rest: the comparable identity of a
// sweep's result set. Finish already sorted by key.
func canonicalJobs(t *testing.T, jobs []manifest.Job) []byte {
	t.Helper()
	c := make([]manifest.Job, len(jobs))
	copy(c, jobs)
	for i := range c {
		c[i].Worker = ""
		c[i].Cached = false
		c[i].Hits = 0
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDistributedByteIdentity is the conformance core: quick Table 4
// run single-process, with 1 worker, and with 3 workers must produce
// byte-identical rendered output, and the 1- vs 3-worker manifests
// must agree on every job result.
func TestDistributedByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep in -short mode")
	}
	sz := integSizes()

	core.ResetResultCache()
	single, misses := renderTable4(t, sz)
	if misses == 0 {
		t.Fatal("single-process pass did not simulate anything")
	}

	u1, _ := startWorkerProc(t, "w1")
	core.ResetResultCache()
	dist1, jobs1 := distributeTable4(t, sz, []string{u1}, nil)

	u2, _ := startWorkerProc(t, "w2")
	u3, _ := startWorkerProc(t, "w3")
	core.ResetResultCache()
	dist3, jobs3 := distributeTable4(t, sz, []string{u1, u2, u3}, nil)

	if dist1 != single {
		t.Errorf("1-worker distributed output differs from single-process:\n--- single ---\n%s\n--- distributed ---\n%s", single, dist1)
	}
	if dist3 != single {
		t.Errorf("3-worker distributed output differs from single-process:\n--- single ---\n%s\n--- distributed ---\n%s", single, dist3)
	}
	if string(jobs1) != string(jobs3) {
		t.Error("1-worker and 3-worker manifests disagree on job results")
	}
}

// TestDistributedWorkerSIGKILL is the chaos conformance test: one of
// three workers is SIGKILLed mid-sweep; the coordinator must reassign
// its unfinished shard and the final output must still be
// byte-identical to a single-process run.
func TestDistributedWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep in -short mode")
	}
	sz := integSizes()

	core.ResetResultCache()
	single, _ := renderTable4(t, sz)

	u1, victim := startWorkerProc(t, "victim")
	u2, _ := startWorkerProc(t, "s1")
	u3, _ := startWorkerProc(t, "s2")

	var once sync.Once
	core.ResetResultCache()
	dist, _ := distributeTable4(t, sz, []string{u1, u2, u3}, func(n int) {
		// Kill the victim early in the sweep, while its shard is still
		// mostly unfinished.
		if n >= 3 {
			once.Do(func() {
				victim.Process.Signal(syscall.SIGKILL) //nolint:errcheck
			})
		}
	})
	if dist != single {
		t.Errorf("post-SIGKILL distributed output differs from single-process:\n--- single ---\n%s\n--- distributed ---\n%s", single, dist)
	}
}

// TestDistributedByteIdentityThroughChaosProxy puts real worker
// processes behind the network chaos proxy — latency and jitter plus a
// reset window on one path, a flapping partition on the other — and
// asserts the defining invariant survives transport chaos: rendered
// output byte-identical to a clean run, manifests agreeing on every
// job, zero lost jobs, and exactly one record per job key.
func TestDistributedByteIdentityThroughChaosProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep in -short mode")
	}
	sz := integSizes()

	core.ResetResultCache()
	single, _ := renderTable4(t, sz)

	u1, _ := startWorkerProc(t, "w1")
	u2, _ := startWorkerProc(t, "w2")
	core.ResetResultCache()
	_, cleanJobs := distributeTable4(t, sz, []string{u1, u2}, nil)

	// Chaos leg: w1 behind latency+jitter with an early reset window,
	// w2 behind a 30ms partition that then heals. Deterministic
	// schedules; the worker processes themselves are untouched.
	lat, err := netproxy.Start(strings.TrimPrefix(u1, "http://"), netproxy.Schedule{
		Seed: 101,
		Rules: []netproxy.Rule{
			{ForMS: 100, LatencyMS: 2, JitterMS: 3, ResetProb: 0.1},
			{ForMS: 0, LatencyMS: 2, JitterMS: 3},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lat.Close()
	part, err := netproxy.Start(strings.TrimPrefix(u2, "http://"), netproxy.Schedule{
		Seed: 102,
		Rules: []netproxy.Rule{
			{ForMS: 30, Partition: true},
			{ForMS: 0, LatencyMS: 1},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer part.Close()

	ResetStats()
	core.ResetResultCache()
	chaos, chaosJobs, m := distributeTable4Opts(t, sz, []string{lat.URL(), part.URL()}, nil,
		func(o *Options) {
			o.Retries = 2
			o.Client = &http.Client{Timeout: 10 * time.Second}
		})

	if chaos != single {
		t.Errorf("chaos-proxied distributed output differs from single-process:\n--- single ---\n%s\n--- chaos ---\n%s", single, chaos)
	}
	if string(chaosJobs) != string(cleanJobs) {
		t.Error("chaos-proxied manifest disagrees with the clean distributed manifest")
	}
	// Exactly-one-record semantics: no duplicate keys (Finish sorts, so
	// duplicates would be adjacent) and no job recorded as re-requested.
	for i, j := range m.Jobs {
		if i > 0 && m.Jobs[i-1].Key == j.Key {
			t.Errorf("duplicate manifest record for key %s", j.Key)
		}
		if j.Hits != 0 {
			t.Errorf("job %s recorded %d duplicate merges; hedging/reassignment must stay invisible", j.Key, j.Hits)
		}
	}
}

// TestDistributedResumeSkipsStored covers the coordinator-crash path:
// a sweep interrupted mid-dispatch leaves its merged results in the
// checkpoint journal; a resumed plan must exclude them (no
// recomputation) and the finished output must be byte-identical.
func TestDistributedResumeSkipsStored(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process sweep in -short mode")
	}
	sz := integSizes()

	core.ResetResultCache()
	single, _ := renderTable4(t, sz)
	core.ResetResultCache()

	dir := t.TempDir()
	if err := core.SetResultCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		core.CloseCheckpoint(false) //nolint:errcheck
		core.SetResultCacheDir("")  //nolint:errcheck
		core.ResetResultCache()
	}()
	if _, err := core.SetCheckpoint(false); err != nil {
		t.Fatal(err)
	}

	url, _ := startWorkerProc(t, "w")
	plan := planTable4(t, sz)
	totalJobs := len(plan.Jobs)

	// First leg: cancel the coordinator partway through the sweep — a
	// coordinator crash with the journal intact.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	merged := 0
	coord, err := NewCoordinator(Options{
		Workers: []string{url}, BatchSize: 4,
		Retries: 1, RetryBackoff: 10 * time.Millisecond,
		OnResult: func(_ string, job Job, run metrics.Run) {
			core.InjectResult(job.Key, run)
			mu.Lock()
			merged++
			if merged == totalJobs/2 {
				cancel()
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(ctx, plan.Jobs, plan.Keys); err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	cancel()
	mu.Lock()
	checkpointed := merged
	mu.Unlock()
	if checkpointed == 0 {
		t.Fatal("nothing merged before the simulated crash")
	}

	// Simulated restart: drop the in-memory cache, replay the journal.
	if err := core.CloseCheckpoint(false); err != nil {
		t.Fatal(err)
	}
	core.ResetResultCache()
	replayed, err := core.SetCheckpoint(true)
	if err != nil {
		t.Fatal(err)
	}
	if replayed < checkpointed {
		t.Errorf("journal replayed %d records, want >= %d merged before crash", replayed, checkpointed)
	}

	// Resumed plan: checkpointed results must be excluded.
	plan2 := planTable4(t, sz)
	if plan2.Stored < checkpointed {
		t.Errorf("resumed plan skips %d stored jobs, want >= %d", plan2.Stored, checkpointed)
	}
	if len(plan2.Jobs)+plan2.Stored != totalJobs {
		t.Errorf("resumed plan: %d jobs + %d stored != %d total", len(plan2.Jobs), plan2.Stored, totalJobs)
	}

	// Second leg finishes only the missing work, then aggregate.
	coord2, err := NewCoordinator(Options{
		Workers: []string{url}, BatchSize: 4,
		Retries: 1, RetryBackoff: 10 * time.Millisecond,
		OnResult: func(_ string, job Job, run metrics.Run) {
			core.InjectResult(job.Key, run)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord2.Run(context.Background(), plan2.Jobs, plan2.Keys); err != nil {
		t.Fatal(err)
	}
	resumed, misses := renderTable4(t, sz)
	if misses != 0 {
		t.Errorf("aggregation after resume simulated %d jobs locally", misses)
	}
	if resumed != single {
		t.Errorf("resumed distributed output differs from single-process:\n--- single ---\n%s\n--- resumed ---\n%s", single, resumed)
	}
}
