package dist

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"bce/internal/prof"
)

// profile.go is the fleet side of continuous profiling: while a sweep
// is running, the coordinator process scrapes every worker's
// /debug/pprof/profile endpoint (served on the API port by
// Worker.Handler) and merges the results into one bundle whose
// samples carry a worker=<name> label — the whole fleet profiled as
// one system, still attributable per worker under pprof tag filters.

// maxProfileBody bounds one scraped profile; real worker CPU profiles
// are tens of KB.
const maxProfileBody = 64 << 20

// FleetProfile captures a CPU profile of duration seconds from every
// worker concurrently and merges them. Workers that fail to answer
// are skipped (their error is reported in the returned notes); the
// call only errors when no worker delivered a usable profile. The
// merged bundle's comments record per-worker provenance.
func FleetProfile(ctx context.Context, client *http.Client, workers []string, seconds int) (*prof.Profile, []string, error) {
	if seconds <= 0 {
		seconds = 1
	}
	if client == nil {
		client = http.DefaultClient
	}
	type scraped struct {
		worker string
		prof   *prof.Profile
		err    error
	}
	out := make([]scraped, len(workers))
	var wg sync.WaitGroup
	for i, base := range workers {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			name := workerLabel(base)
			p, err := scrapeProfile(ctx, client, base, seconds)
			out[i] = scraped{worker: name, prof: p, err: err}
		}(i, base)
	}
	wg.Wait()

	var (
		inputs []prof.LabeledProfile
		notes  []string
	)
	for _, s := range out {
		if s.err != nil {
			notes = append(notes, fmt.Sprintf("%s: %v", s.worker, s.err))
			continue
		}
		s.prof.Comments = append(s.prof.Comments, "worker="+s.worker)
		inputs = append(inputs, prof.LabeledProfile{
			Profile: s.prof,
			Labels:  map[string]string{"worker": s.worker},
		})
	}
	if len(inputs) == 0 {
		return nil, notes, fmt.Errorf("dist: fleet profile: no worker delivered a profile (%s)",
			strings.Join(notes, "; "))
	}
	merged, err := prof.Merge(inputs)
	if err != nil {
		return nil, notes, err
	}
	return merged, notes, nil
}

func scrapeProfile(ctx context.Context, client *http.Client, base string, seconds int) (*prof.Profile, error) {
	url := fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", strings.TrimSuffix(base, "/"), seconds)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProfileBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return prof.Parse(body)
}

// workerLabel derives a stable per-worker label from its base URL
// (host:port — the scheme adds no information inside one fleet).
func workerLabel(base string) string {
	s := strings.TrimSuffix(base, "/")
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	return s
}
