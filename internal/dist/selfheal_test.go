package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/telemetry"
)

// selfheal_test.go covers the coordinator's self-healing machinery:
// per-worker circuit breakers with half-open probing and re-admission,
// hedged batch dispatch, adaptive deadlines, exactly-once merging
// under partial/duplicated replies, and concurrent observability
// reads.

// slowExec wraps stubExec with a fixed per-job delay, stretching a
// sweep so background machinery (probes, hedges) has time to act.
func slowExec(d time.Duration) func(context.Context, core.JobSpec) (metrics.Run, error) {
	return func(ctx context.Context, j core.JobSpec) (metrics.Run, error) {
		select {
		case <-ctx.Done():
			return metrics.Run{}, ctx.Err()
		case <-time.After(d):
		}
		return stubExec(ctx, j)
	}
}

// tamperExecOnce wraps a worker handler, rewriting the first
// successful exec reply with tamper and restamping the content digest
// so only the tampered payload itself — not transport corruption — is
// what the coordinator sees.
func tamperExecOnce(inner http.Handler, tamper func([]byte) []byte) http.Handler {
	var done atomic.Bool
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path != PathExec || done.Load() {
			inner.ServeHTTP(rw, req)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, req)
		body := rec.Body.Bytes()
		if rec.Code == http.StatusOK && !done.Swap(true) {
			body = tamper(body)
		}
		for k, vs := range rec.Header() {
			if k == HeaderDigest {
				continue
			}
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.Header().Set(HeaderDigest, ContentDigest(body))
		rw.WriteHeader(rec.Code)
		rw.Write(body) //nolint:errcheck // test server
	})
}

// TestCoordinatorRejectsPartialReplyWithoutMerging is the duplicate-
// merge regression test: a reply whose final entry names an unknown key
// must be rejected wholesale BEFORE any of its valid entries reach
// OnResult. The old behavior merged the valid prefix, requeued the
// batch, and merged those jobs a second time on the healthy worker.
func TestCoordinatorRejectsPartialReplyWithoutMerging(t *testing.T) {
	ResetStats()
	poison := func(body []byte) []byte {
		var r BatchResult
		if err := json.Unmarshal(body, &r); err != nil || len(r.Results) == 0 {
			return body
		}
		r.Results[len(r.Results)-1].Key = "bogus-key-never-planned"
		out, err := EncodeBatchResult(r)
		if err != nil {
			return body
		}
		return out
	}
	w1 := httptest.NewServer(tamperExecOnce(
		NewWorker(WorkerOptions{Name: "w1", Exec: stubExec}).Handler(), poison))
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()

	jobs, keys := jobSet(t, 10)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{w1.URL, w2.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep must absorb one poisoned reply: %v", err)
	}
	if sink.len() != len(jobs) {
		t.Errorf("merged %d of %d jobs", sink.len(), len(jobs))
	}
	if sink.dups != 0 {
		t.Errorf("%d duplicate merges: the poisoned reply's valid prefix leaked into OnResult", sink.dups)
	}
	if got := Snapshot().DupsSuppressed; got != 0 {
		t.Errorf("DupsSuppressed = %d: valid prefix was merged before the reply was validated", got)
	}
}

// flappingWorker serves 503 on every endpoint while down, then recovers
// after recoverAfter failed pings — a worker mid-restart.
type flappingWorker struct {
	inner        http.Handler
	down         atomic.Bool
	failedPings  atomic.Int64
	recoverAfter int64
}

func (f *flappingWorker) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if f.down.Load() {
		if req.URL.Path == PathPing && f.failedPings.Add(1) >= f.recoverAfter {
			f.down.Store(false)
		}
		http.Error(rw, "restarting", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(rw, req)
}

// TestCoordinatorBreakerTripsAndReadmits drives a sweep with one
// healthy-but-slow worker and one that is down at sweep start and
// recovers during it. The breaker must trip, evict the flapping worker,
// probe it on cooldown, and re-admit it once a probe passes — all
// observable on the live counters and the Breakers snapshot.
func TestCoordinatorBreakerTripsAndReadmits(t *testing.T) {
	ResetStats()
	w1 := testWorkerServer("steady", slowExec(8*time.Millisecond))
	defer w1.Close()
	flap := &flappingWorker{
		inner:        NewWorker(WorkerOptions{Name: "flappy", Exec: stubExec}).Handler(),
		recoverAfter: 2,
	}
	flap.down.Store(true)
	w2 := httptest.NewServer(flap)
	defer w2.Close()

	jobs, keys := jobSet(t, 16)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{w1.URL, w2.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep must survive a flapping worker: %v", err)
	}
	if sink.len() != len(jobs) || sink.dups != 0 {
		t.Errorf("merged %d of %d jobs with %d dups", sink.len(), len(jobs), sink.dups)
	}
	s := Snapshot()
	if s.BreakerTrips == 0 {
		t.Error("breaker never tripped on the flapping worker")
	}
	if s.BreakerProbes < 2 {
		t.Errorf("BreakerProbes = %d, want >= 2 (recovery takes 2 failed pings)", s.BreakerProbes)
	}
	if s.BreakerReadmits == 0 {
		t.Error("flapping worker never re-admitted")
	}
	if s.WorkersLost == 0 {
		t.Error("WorkersLost not bumped on eviction")
	}
	if st := coord.Breakers()[w2.URL]; st.State != "closed" || st.Readmissions == 0 {
		t.Errorf("flapping worker's final breaker = %+v, want closed with readmissions", st)
	}
}

// TestPingToleratesUnreachableWorker: a worker partitioned away at
// sweep start must not abort the run — Ping trips its breaker, the
// live worker carries the sweep, and the half-open probe loop
// re-admits the stray when its network heals. Only schema skew (a
// build mismatch) or a fully unreachable fleet aborts.
func TestPingToleratesUnreachableWorker(t *testing.T) {
	ResetStats()
	w1 := testWorkerServer("steady", slowExec(3*time.Millisecond))
	defer w1.Close()
	flap := &flappingWorker{
		inner:        NewWorker(WorkerOptions{Name: "stray", Exec: stubExec}).Handler(),
		recoverAfter: 1,
	}
	flap.down.Store(true)
	w2 := httptest.NewServer(flap)
	defer w2.Close()

	jobs, keys := jobSet(t, 12)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{w1.URL, w2.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ping(context.Background()); err != nil {
		t.Fatalf("ping with one live worker must succeed, got: %v", err)
	}
	if st := coord.Breakers()[w2.URL]; st.State == "closed" {
		t.Error("unreachable worker's breaker not tripped by startup ping")
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatalf("sweep with a startup-partitioned worker failed: %v", err)
	}
	if sink.len() != len(jobs) || sink.dups != 0 {
		t.Errorf("merged %d of %d jobs with %d dups", sink.len(), len(jobs), sink.dups)
	}
}

func TestPingFailsWhenAllWorkersUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{url}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ping(context.Background()); err == nil {
		t.Error("ping with every worker unreachable must fail")
	}
}

// TestCoordinatorHedgesStragglers pins a straggler: the primary worker
// hangs forever on its last batch (after enough fast batches to arm
// the adaptive hedge threshold). The hedge must re-issue the batch to
// the healthy worker, take its result, and cancel the straggler — with
// every job still merged exactly once.
func TestCoordinatorHedgesStragglers(t *testing.T) {
	ResetStats()
	jobs, keys := jobSet(t, 36)
	// Round-robin sharding sends even sweep indices to worker 0; with
	// BatchSize 2 its 9th batch holds indices 32 and 34. Worker 0 hangs
	// on exactly those jobs — by then its own 8 completed batches have
	// armed the hedge threshold (hedgeMinSamples).
	hang := map[string]bool{keys[32]: true, keys[34]: true}
	hangingExec := func(ctx context.Context, j core.JobSpec) (metrics.Run, error) {
		key, err := j.Key()
		if err != nil {
			return metrics.Run{}, err
		}
		if hang[key] {
			<-ctx.Done()
			return metrics.Run{}, ctx.Err()
		}
		return stubExec(ctx, j)
	}
	w1 := testWorkerServer("straggler", hangingExec)
	defer w1.Close()
	w2 := testWorkerServer("rescuer", nil)
	defer w2.Close()

	sink := newMergeSink()
	opts := fastOpts([]string{w1.URL, w2.URL}, sink)
	opts.HedgeMinDelay = 5 * time.Millisecond
	opts.HedgeMaxDelay = 50 * time.Millisecond
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- coord.Run(context.Background(), jobs, keys) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sweep must hedge around the straggler: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep hung: the straggler batch was never hedged")
	}
	if sink.len() != len(jobs) || sink.dups != 0 {
		t.Errorf("merged %d of %d jobs with %d dups", sink.len(), len(jobs), sink.dups)
	}
	s := Snapshot()
	if s.HedgesIssued == 0 {
		t.Error("no hedges issued for a hung batch")
	}
	if s.HedgeWins == 0 {
		t.Error("hedge never won against a worker that hangs forever")
	}
}

// TestAdaptiveDeadlineDerivation checks deadlineFor's policy directly:
// fixed JobTimeout until a worker has latency history, then
// pN × multiplier clamped to the floor and ceiling.
func TestAdaptiveDeadlineDerivation(t *testing.T) {
	coord, err := NewCoordinator(Options{
		Workers:            []string{"http://a", "http://b", "http://c", "http://d"},
		JobTimeout:         7 * time.Second,
		AdaptiveDeadline:   true,
		DeadlineMultiplier: 4,
		DeadlineFloor:      time.Millisecond,
		DeadlineCeil:       2 * time.Second,
		OnResult:           func(string, Job, metrics.Run) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No history yet: the fixed timeout applies.
	if got := coord.deadlineFor(0); got != 7000 {
		t.Errorf("deadline with no history = %dms, want fixed 7000", got)
	}
	// Worker 0: ~50ms batches. The log2 histogram's p99 upper edge for
	// 50 is 63, times the multiplier = 252ms.
	for i := 0; i < deadlineMinSamples; i++ {
		coord.observeBatch(0, 0, 50*time.Millisecond)
	}
	if got := coord.deadlineFor(0); got != 252 {
		t.Errorf("deadline after 50ms history = %dms, want 252", got)
	}
	// Worker 1: sub-millisecond batches clamp to the floor.
	for i := 0; i < deadlineMinSamples; i++ {
		coord.observeBatch(0, 1, 0)
	}
	if got := coord.deadlineFor(1); got != 1 {
		t.Errorf("deadline for sub-ms history = %dms, want floor 1", got)
	}
	// Worker 2: slow batches clamp to the ceiling.
	for i := 0; i < deadlineMinSamples; i++ {
		coord.observeBatch(0, 2, 900*time.Millisecond)
	}
	if got := coord.deadlineFor(2); got != 2000 {
		t.Errorf("deadline for 900ms history = %dms, want ceiling 2000", got)
	}
	// Worker 3 has no history even though others do.
	if got := coord.deadlineFor(3); got != 7000 {
		t.Errorf("deadline for historyless worker = %dms, want fixed 7000", got)
	}
}

// TestConcurrentSnapshotsDuringChaoticSweep hammers every
// observability read path — coordinator stats, breaker snapshots, live
// counters, fleet snapshots with a breaker source — while a sweep is
// rebalancing around a flapping worker. Run under -race this is the
// data-race property test for the self-healing machinery.
func TestConcurrentSnapshotsDuringChaoticSweep(t *testing.T) {
	ResetStats()
	w1 := testWorkerServer("steady", slowExec(3*time.Millisecond))
	defer w1.Close()
	flap := &flappingWorker{
		inner:        NewWorker(WorkerOptions{Name: "flappy", Exec: stubExec}).Handler(),
		recoverAfter: 2,
	}
	flap.down.Store(true)
	w2 := httptest.NewServer(flap)
	defer w2.Close()

	jobs, keys := jobSet(t, 20)
	sink := newMergeSink()
	opts := fastOpts([]string{w1.URL, w2.URL}, sink)
	opts.HedgeMinDelay = 5 * time.Millisecond
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(FleetOptions{
		Workers:  []string{w1.URL, w2.URL},
		Interval: 2 * time.Millisecond,
	})
	fleet.SetBreakerSource(coord.Breakers)
	fctx, fcancel := context.WithCancel(context.Background())
	fleet.Start(fctx)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = coord.Stats()
				_ = coord.Breakers()
				_ = Snapshot()
				_ = fleet.Snapshot()
			}
		}()
	}
	err = coord.Run(context.Background(), jobs, keys)
	close(stop)
	readers.Wait()
	fcancel()
	fleet.Wait()
	if err != nil {
		t.Fatalf("sweep failed under concurrent observation: %v", err)
	}
	if sink.len() != len(jobs) || sink.dups != 0 {
		t.Errorf("merged %d of %d jobs with %d dups", sink.len(), len(jobs), sink.dups)
	}
}

// TestWorkerMetricsExposeRetryAndQuarantine validates — through the
// same Prometheus parser the fleet monitor uses — that a worker's
// /metrics page carries the runner's retry and store-quarantine
// counters the fleet scrapes for sick-host detection.
func TestWorkerMetricsExposeRetryAndQuarantine(t *testing.T) {
	w := testWorkerServer("w", nil)
	defer w.Close()
	resp, err := http.Get(w.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := telemetry.ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("worker /metrics is not parseable Prometheus text: %v", err)
	}
	for _, name := range []string{
		"bce_runner_jobs_retried",
		"bce_runner_store_quarantined",
		"bce_dist_batches_served",
		"bce_dist_jobs_failed",
	} {
		if _, ok := m.Get(name); !ok {
			t.Errorf("worker /metrics missing %s", name)
		}
	}
}

// TestFleetReportsBreakerStates checks that a fleet snapshot decorates
// each worker's scraped health with the coordinator-side breaker state
// and the scraped retry/quarantine counters.
func TestFleetReportsBreakerStates(t *testing.T) {
	w := testWorkerServer("w", nil)
	defer w.Close()
	fleet := NewFleet(FleetOptions{Workers: []string{w.URL}})
	fleet.SetBreakerSource(func() map[string]BreakerSnapshot {
		return map[string]BreakerSnapshot{w.URL: {State: "half-open", Trips: 3}}
	})
	fleet.pollAll(context.Background())
	snap := fleet.Snapshot()
	h, ok := snap.PerWorker[w.URL]
	if !ok || !h.Up {
		t.Fatalf("worker not polled up: %+v", snap)
	}
	if h.Breaker != "half-open" {
		t.Errorf("breaker state = %q, want half-open", h.Breaker)
	}
	// The scraped counters exist (zero on a fresh worker is fine); a
	// scrape that could not find them would also have failed the Up
	// check if the page were missing, so assert via the JSON shape.
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"jobs_retried", "store_quarantined", "breaker"} {
		if !json.Valid(data) || !containsField(data, field) {
			t.Errorf("fleet health JSON missing %q: %s", field, data)
		}
	}
}

func containsField(data []byte, field string) bool {
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[field]
	return ok
}

// TestWorkerAnswersCorruptionWith409 posts a valid batch under a
// mismatched content digest: the worker must answer 409 (transient to
// the coordinator) before parsing, and stamp its own reply digest.
func TestWorkerAnswersCorruptionWith409(t *testing.T) {
	w := NewWorker(WorkerOptions{Name: "w", Exec: stubExec})
	payload, err := EncodeBatch(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, PathExec, bytesReader(payload))
	req.Header.Set(HeaderDigest, ContentDigest([]byte("what was actually sent")))
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("digest mismatch answered %d, want 409", rec.Code)
	}
	if got := rec.Header().Get(HeaderDigest); got != ContentDigest(rec.Body.Bytes()) {
		t.Errorf("409 reply digest %q does not match its body", got)
	}
}

// TestWorkerStampsReplyDigest checks the success path carries a digest
// the coordinator can verify.
func TestWorkerStampsReplyDigest(t *testing.T) {
	w := NewWorker(WorkerOptions{Name: "w", Exec: stubExec})
	payload, err := EncodeBatch(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, PathExec, bytesReader(payload))
	req.Header.Set(HeaderDigest, ContentDigest(payload))
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("valid batch answered %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderDigest); got != ContentDigest(rec.Body.Bytes()) {
		t.Errorf("reply digest %q does not match reply body", got)
	}
	// Malformed batches are still deterministic 400s — stamped, so the
	// coordinator can tell them from transit damage.
	bad := []byte(`{"schema":1,"jobs":[]}`)
	req = httptest.NewRequest(http.MethodPost, PathExec, bytesReader(bad))
	req.Header.Set(HeaderDigest, ContentDigest(bad))
	rec = httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch answered %d, want 400", rec.Code)
	}
	if got := rec.Header().Get(HeaderDigest); got != ContentDigest(rec.Body.Bytes()) {
		t.Errorf("400 reply digest %q does not match its body", got)
	}
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
