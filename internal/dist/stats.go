package dist

import "sync/atomic"

// live is the process-wide distributed-sweep counter set, mirrored by
// the runner's liveCounters: every field is an atomic so a debug
// endpoint can snapshot mid-sweep without locks and race-clean.
// One process is either a coordinator or a worker, so the two halves
// never contend.
var live liveCounters

type liveCounters struct {
	// Worker side.
	batchesServed atomic.Uint64
	batchesFailed atomic.Uint64
	jobsReceived  atomic.Uint64
	jobsOK        atomic.Uint64
	jobsFailed    atomic.Uint64
	// Coordinator side.
	batchesSent    atomic.Uint64
	batchRetries   atomic.Uint64
	jobsDispatched atomic.Uint64
	jobsMerged     atomic.Uint64
	jobsRequeued   atomic.Uint64
	workersLost    atomic.Uint64
	// Coordinator self-healing (breakers, hedging, merge dedup).
	breakerTrips    atomic.Uint64
	breakerProbes   atomic.Uint64
	breakerReadmits atomic.Uint64
	hedgesIssued    atomic.Uint64
	hedgeWins       atomic.Uint64
	hedgeLosses     atomic.Uint64
	dupsSuppressed  atomic.Uint64
}

func (c *liveCounters) batchStart(jobs int) {
	c.jobsReceived.Add(uint64(jobs))
}

func (c *liveCounters) batchEnd(ok bool) {
	if ok {
		c.batchesServed.Add(1)
	} else {
		c.batchesFailed.Add(1)
	}
}

func (c *liveCounters) jobDone(ok bool) {
	if ok {
		c.jobsOK.Add(1)
	} else {
		c.jobsFailed.Add(1)
	}
}

// LiveStats is a point-in-time snapshot of the distributed-sweep
// counters. Worker fields count this process's batch service;
// coordinator fields count this process's dispatch. All zero for the
// role the process is not playing.
type LiveStats struct {
	// Worker side.
	BatchesServed uint64 `json:"batches_served"`
	BatchesFailed uint64 `json:"batches_failed"`
	JobsReceived  uint64 `json:"jobs_received"`
	JobsOK        uint64 `json:"jobs_ok"`
	JobsFailed    uint64 `json:"jobs_failed"`
	// Coordinator side.
	BatchesSent    uint64 `json:"batches_sent"`
	BatchRetries   uint64 `json:"batch_retries"`
	JobsDispatched uint64 `json:"jobs_dispatched"`
	JobsMerged     uint64 `json:"jobs_merged"`
	JobsRequeued   uint64 `json:"jobs_requeued"`
	WorkersLost    uint64 `json:"workers_lost"`
	// Coordinator self-healing: breaker lifecycle events, hedged
	// dispatches (wins = the hedge's result was used), and duplicate
	// job merges suppressed by the exactly-once merge guard.
	BreakerTrips    uint64 `json:"breaker_trips"`
	BreakerProbes   uint64 `json:"breaker_probes"`
	BreakerReadmits uint64 `json:"breaker_readmits"`
	HedgesIssued    uint64 `json:"hedges_issued"`
	HedgeWins       uint64 `json:"hedge_wins"`
	HedgeLosses     uint64 `json:"hedge_losses"`
	DupsSuppressed  uint64 `json:"dups_suppressed"`
}

// Snapshot returns the current counter values. Safe to call at any
// time from any goroutine; each field is individually consistent.
func Snapshot() LiveStats {
	return LiveStats{
		BatchesServed:  live.batchesServed.Load(),
		BatchesFailed:  live.batchesFailed.Load(),
		JobsReceived:   live.jobsReceived.Load(),
		JobsOK:         live.jobsOK.Load(),
		JobsFailed:     live.jobsFailed.Load(),
		BatchesSent:    live.batchesSent.Load(),
		BatchRetries:   live.batchRetries.Load(),
		JobsDispatched: live.jobsDispatched.Load(),
		JobsMerged:     live.jobsMerged.Load(),
		JobsRequeued:   live.jobsRequeued.Load(),
		WorkersLost:    live.workersLost.Load(),

		BreakerTrips:    live.breakerTrips.Load(),
		BreakerProbes:   live.breakerProbes.Load(),
		BreakerReadmits: live.breakerReadmits.Load(),
		HedgesIssued:    live.hedgesIssued.Load(),
		HedgeWins:       live.hedgeWins.Load(),
		HedgeLosses:     live.hedgeLosses.Load(),
		DupsSuppressed:  live.dupsSuppressed.Load(),
	}
}

// ResetStats zeroes every counter (tests).
func ResetStats() {
	live = liveCounters{}
}
