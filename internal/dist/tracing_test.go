package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bce/internal/metrics"
	"bce/internal/telemetry"
)

// TestBatchResultV1Compat pins wire compatibility in both directions
// across the tracing change. A v1 payload — the literal bytes an
// untraced (or pre-tracing) worker sends, no spans field — must decode
// under this build's strict decoder; and a reply carrying no spans must
// encode without a spans key, so a pre-tracing coordinator's
// DisallowUnknownFields decoder accepts it.
func TestBatchResultV1Compat(t *testing.T) {
	v1 := `{"schema":1,"worker":"old","results":[{"key":"k1","run":{}},{"key":"k2","err":"boom","transient":true}]}`
	got, err := DecodeBatchResult([]byte(v1))
	if err != nil {
		t.Fatalf("v1 payload (no spans) rejected: %v", err)
	}
	if got.Worker != "old" || len(got.Results) != 2 || got.Spans != nil {
		t.Errorf("v1 payload mangled: %+v", got)
	}

	run := metrics.Run{Retired: 1}
	data, err := EncodeBatchResult(BatchResult{
		Schema:  SchemaVersion,
		Worker:  "new",
		Results: []JobResult{{Key: "k", Run: &run}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "spans") {
		t.Errorf("span-free reply leaks a spans key (breaks old strict decoders): %s", data)
	}
}

func TestBatchResultSpansRoundTrip(t *testing.T) {
	run := metrics.Run{Retired: 7}
	want := BatchResult{
		Schema:  SchemaVersion,
		Worker:  "w1",
		Results: []JobResult{{Key: "k", Run: &run}},
		Spans: []telemetry.SpanData{
			{TraceID: "t1", SpanID: "s1", Name: "exec", Proc: "w1", Start: 100, Dur: 50},
			{TraceID: "t1", SpanID: "s2", Parent: "s1", Name: "job", Proc: "w1",
				Start: 110, Dur: 20, Attrs: map[string]string{"bench": "gzip"}},
		},
	}
	data, err := EncodeBatchResult(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 2 {
		t.Fatalf("spans mangled: %+v", got.Spans)
	}
	if got.Spans[1].Parent != "s1" || got.Spans[1].Attrs["bench"] != "gzip" {
		t.Errorf("span fields mangled: %+v", got.Spans[1])
	}
}

func TestDecodeBatchResultRejectsBadSpans(t *testing.T) {
	run := metrics.Run{Retired: 1}
	base := func() BatchResult {
		return BatchResult{Schema: SchemaVersion, Results: []JobResult{{Key: "k", Run: &run}}}
	}
	for _, tc := range []struct {
		name string
		span telemetry.SpanData
		want string
	}{
		{"no trace id", telemetry.SpanData{SpanID: "s", Name: "n"}, "span"},
		{"no span id", telemetry.SpanData{TraceID: "t", Name: "n"}, "span"},
		{"no name", telemetry.SpanData{TraceID: "t", SpanID: "s"}, "span"},
		{"negative dur", telemetry.SpanData{TraceID: "t", SpanID: "s", Name: "n", Dur: -1}, "negative"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := base()
			r.Spans = []telemetry.SpanData{tc.span}
			data, err := EncodeBatchResult(r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeBatchResult(data); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("DecodeBatchResult = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCoordinatorTracedSweep runs a real 2-worker sweep with a tracer
// attached and checks the merged span set: one trace id across both
// processes, worker job spans parented (transitively) on coordinator
// shard spans, and a span per job.
func TestCoordinatorTracedSweep(t *testing.T) {
	w1 := testWorkerServer("w1", nil)
	defer w1.Close()
	w2 := testWorkerServer("w2", nil)
	defer w2.Close()

	jobs, keys := jobSet(t, 9)
	sink := newMergeSink()
	tracer := telemetry.NewTracer("coordinator")
	opts := fastOpts([]string{w1.URL, w2.URL}, sink)
	opts.Tracer = tracer
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Drain()
	byID := make(map[string]telemetry.SpanData, len(spans))
	byName := make(map[string][]telemetry.SpanData)
	traceIDs := make(map[string]struct{})
	for _, sp := range spans {
		byID[sp.SpanID] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
		traceIDs[sp.TraceID] = struct{}{}
	}
	if len(traceIDs) != 1 {
		t.Fatalf("want one trace id across coordinator+workers, got %d: %v", len(traceIDs), traceIDs)
	}
	if n := len(byName["sweep"]); n != 1 {
		t.Fatalf("want exactly one sweep root span, got %d", n)
	}
	if n := len(byName["shard"]); n != 2 {
		t.Errorf("want one shard span per worker, got %d", n)
	}
	if n := len(byName["job"]); n != len(jobs) {
		t.Errorf("want one worker job span per job, got %d of %d", n, len(jobs))
	}
	if len(byName["exec"]) == 0 || len(byName["batch"]) == 0 {
		t.Errorf("missing exec/batch spans: %v", names(spans))
	}
	procs := map[string]bool{}
	for _, sp := range spans {
		procs[sp.Proc] = true
		if sp.Parent == "" {
			if sp.Name != "sweep" {
				t.Errorf("unexpected root span %q (proc %s)", sp.Name, sp.Proc)
			}
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("span %s (%q, proc %s) has unresolved parent %s", sp.SpanID, sp.Name, sp.Proc, sp.Parent)
		}
	}
	if !procs["coordinator"] || !procs["w1"] || !procs["w2"] {
		t.Errorf("want spans from coordinator and both workers, got procs %v", procs)
	}
	// Worker exec spans must parent onto coordinator batch spans: the
	// cross-process stitch.
	for _, ex := range byName["exec"] {
		parent, ok := byID[ex.Parent]
		if !ok || parent.Name != "batch" || parent.Proc != "coordinator" {
			t.Errorf("exec span parent = %+v, want a coordinator batch span", parent)
		}
	}
	started, ended := tracer.Counts()
	if started != ended {
		t.Errorf("span leak: started %d, ended %d", started, ended)
	}
}

func names(spans []telemetry.SpanData) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Proc + "/" + sp.Name
	}
	return out
}

// TestCoordinatorUntracedSendsNoHeaders pins the byte-identity side of
// propagation: without a tracer, exec requests carry no trace headers,
// so workers never attach spans.
func TestCoordinatorUntracedSendsNoHeaders(t *testing.T) {
	var sawHeader bool
	inner := NewWorker(WorkerOptions{Name: "w", Exec: stubExec}).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Header.Get(HeaderTraceID) != "" || req.Header.Get(HeaderSpanID) != "" {
			sawHeader = true
		}
		inner.ServeHTTP(rw, req)
	}))
	defer srv.Close()

	jobs, keys := jobSet(t, 4)
	sink := newMergeSink()
	coord, err := NewCoordinator(fastOpts([]string{srv.URL}, sink))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(context.Background(), jobs, keys); err != nil {
		t.Fatal(err)
	}
	if sawHeader {
		t.Error("untraced coordinator sent trace-context headers")
	}
}

// TestFleetPollsWorkers scrapes a real worker handler and a dead URL.
func TestFleetPollsWorkers(t *testing.T) {
	w := NewWorker(WorkerOptions{Name: "fw", Exec: stubExec})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	fleet := NewFleet(FleetOptions{
		Workers:  []string{srv.URL, deadURL},
		Interval: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	deadline := time.Now().Add(5 * time.Second)
	var snap FleetSnapshot
	for {
		snap = fleet.Snapshot()
		if snap.WorkersUp == 1 && snap.WorkersDown == 1 && snap.WorkersReady == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	fleet.Wait()

	h := snap.PerWorker[srv.URL]
	if !h.Up || !h.Ready || h.Polls == 0 {
		t.Errorf("live worker health: %+v", h)
	}
	if d := snap.PerWorker[deadURL]; d.Up || d.Failures == 0 {
		t.Errorf("dead worker health: %+v", d)
	}

	// Readiness flips propagate on the next poll.
	w.SetReady(false)
	deadline = time.Now().Add(5 * time.Second)
	fleet2 := NewFleet(FleetOptions{Workers: []string{srv.URL}, Interval: 10 * time.Millisecond})
	ctx2, cancel2 := context.WithCancel(context.Background())
	fleet2.Start(ctx2)
	for {
		s := fleet2.Snapshot()
		if s.WorkersUp == 1 && s.WorkersReady == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unready worker still reported ready: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel2()
	fleet2.Wait()
}
