// Package dist distributes a sweep's timing simulations across worker
// processes. The coordinator enumerates the job space with
// core.CollectJobs, shards it deterministically over N workers, ships
// batches over HTTP in the versioned JSON wire form defined here, and
// merges the results back into the local store under the same
// content-addressed cache keys the in-process path uses — which is what
// makes a distributed sweep byte-identical to a single-process one (see
// docs/distributed.md).
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/telemetry"
)

// Trace-context propagation headers. Trace identity rides HTTP headers,
// not message bodies, so the wire schema (and therefore v1 payload
// compatibility) is untouched: an old worker ignores the headers, an
// old coordinator never sends them. A worker attaches spans to its
// reply only when the request carried these headers, which keeps new
// workers compatible with old coordinators' strict decoders too.
const (
	HeaderTraceID = "Bce-Trace-Id"
	HeaderSpanID  = "Bce-Span-Id"
)

// HeaderDigest carries a sha256 content digest of the message body, in
// both directions. Its job is fault *classification*, not security: a
// body corrupted in transit (the network chaos suite injects byte
// flips) would otherwise surface as a malformed-JSON 400 — which the
// coordinator must treat as deterministic ("the worker understood the
// batch and said no") — and abort the sweep. With digests, the worker
// answers corruption with 409 before ever parsing, and the coordinator
// rejects a corrupted reply as transient, so in-flight damage is
// retried while genuinely bad batches still fail fast. Like the trace
// headers, the digest rides HTTP headers so the v1 wire schema is
// untouched.
const HeaderDigest = "Bce-Content-Digest"

// ContentDigest returns the hex sha256 of body, the HeaderDigest
// value.
func ContentDigest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// SchemaVersion is the wire-schema version stamped on every Batch and
// BatchResult. Workers reject batches from a newer coordinator (they
// could carry fields the worker would silently drop); coordinators
// reject replies from a mismatched worker. Bump on any change to the
// message shapes below or to the semantics of core.JobSpec fields.
const SchemaVersion = 1

// HTTP endpoints served by a worker. The version segment is the schema
// major version, so incompatible workers 404 instead of misparsing.
const (
	PathExec = "/dist/v1/exec"
	PathPing = "/dist/v1/ping"
)

// maxMessageBytes bounds a single decoded wire message. A full-fidelity
// sweep is a few thousand jobs of ~1KB each; 32 MiB is two orders of
// magnitude of headroom while keeping a hostile peer from ballooning
// memory.
const maxMessageBytes = 32 << 20

// ErrSchema marks a schema-version mismatch between coordinator and
// worker — a deterministic failure (retrying cannot fix version skew),
// distinguished so callers can report "upgrade the worker" rather than
// a generic decode error.
var ErrSchema = errors.New("dist: wire schema mismatch")

// Job is one timing simulation plus the cache key the coordinator filed
// it under. The key is redundant — workers recompute it from the spec —
// and that redundancy is the point: a recompute mismatch means the two
// processes disagree about key derivation (version skew, dirty build)
// and the result would be merged under the wrong identity, silently
// breaking byte-reproducibility. Workers fail such jobs instead.
type Job struct {
	Key  string       `json:"key"`
	Spec core.JobSpec `json:"spec"`
}

// Batch is one shard-sized unit of work sent to a worker.
type Batch struct {
	// Schema is the wire-schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Shard and Seq locate the batch in the sweep: shard index it was
	// cut from and sequence number within that shard. Diagnostic only —
	// results are keyed by cache key, never by position.
	Shard int `json:"shard"`
	Seq   int `json:"seq"`
	// JobTimeoutMS bounds each job's execution on the worker;
	// zero means no per-job deadline.
	JobTimeoutMS int64 `json:"job_timeout_ms,omitempty"`
	// Jobs is the work. Keys are unique within a batch.
	Jobs []Job `json:"jobs"`
}

// JobResult is one job's outcome. Exactly one of Run/Err is set.
type JobResult struct {
	// Key echoes the job's cache key.
	Key string `json:"key"`
	// Run is the simulation result on success.
	Run *metrics.Run `json:"run,omitempty"`
	// Err is the failure description on error.
	Err string `json:"err,omitempty"`
	// Transient marks a failed job as retryable (worker-side deadline
	// expiry, resource pressure) rather than deterministic (validation
	// or key-recompute mismatch, which would fail identically anywhere).
	Transient bool `json:"transient,omitempty"`
}

// BatchResult is a worker's reply to one Batch: a result per job, in
// any order, keyed by cache key.
type BatchResult struct {
	// Schema is the wire-schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Worker names the replying worker (Options.Name) for manifests and
	// logs.
	Worker string `json:"worker,omitempty"`
	// Results holds one entry per job in the batch.
	Results []JobResult `json:"results"`
	// Spans carries the worker's completed trace spans for this batch,
	// present only when the request carried trace-context headers. The
	// coordinator imports them into the sweep's tracer, which is how
	// one merged cross-process timeline exists at all.
	Spans []telemetry.SpanData `json:"spans,omitempty"`
}

// EncodeBatch serializes b to wire form.
func EncodeBatch(b Batch) ([]byte, error) { return json.Marshal(b) }

// EncodeBatchResult serializes r to wire form.
func EncodeBatchResult(r BatchResult) ([]byte, error) { return json.Marshal(r) }

// DecodeBatch parses and validates one Batch from wire bytes: strict
// JSON (unknown fields rejected), schema version in range, at least one
// job, non-empty and duplicate-free keys. Job specs themselves are NOT
// validated here — the worker validates each spec as part of executing
// it, so one malformed job fails that job, not the whole batch.
func DecodeBatch(data []byte) (Batch, error) {
	var b Batch
	if err := decodeStrict(data, &b); err != nil {
		return Batch{}, fmt.Errorf("dist: batch: %w", err)
	}
	if err := checkSchema(b.Schema); err != nil {
		return Batch{}, fmt.Errorf("dist: batch: %w", err)
	}
	if len(b.Jobs) == 0 {
		return Batch{}, errors.New("dist: batch: no jobs")
	}
	seen := make(map[string]struct{}, len(b.Jobs))
	for i, j := range b.Jobs {
		if j.Key == "" {
			return Batch{}, fmt.Errorf("dist: batch: job %d: empty key", i)
		}
		if _, dup := seen[j.Key]; dup {
			return Batch{}, fmt.Errorf("dist: batch: duplicate key %q", j.Key)
		}
		seen[j.Key] = struct{}{}
	}
	if b.JobTimeoutMS < 0 {
		return Batch{}, fmt.Errorf("dist: batch: negative job timeout %d", b.JobTimeoutMS)
	}
	return b, nil
}

// DecodeBatchResult parses and validates one BatchResult: strict JSON,
// schema version in range, non-empty duplicate-free keys, and exactly
// one of Run/Err per entry.
func DecodeBatchResult(data []byte) (BatchResult, error) {
	var r BatchResult
	if err := decodeStrict(data, &r); err != nil {
		return BatchResult{}, fmt.Errorf("dist: batch result: %w", err)
	}
	if err := checkSchema(r.Schema); err != nil {
		return BatchResult{}, fmt.Errorf("dist: batch result: %w", err)
	}
	seen := make(map[string]struct{}, len(r.Results))
	for i, jr := range r.Results {
		if jr.Key == "" {
			return BatchResult{}, fmt.Errorf("dist: batch result: entry %d: empty key", i)
		}
		if _, dup := seen[jr.Key]; dup {
			return BatchResult{}, fmt.Errorf("dist: batch result: duplicate key %q", jr.Key)
		}
		seen[jr.Key] = struct{}{}
		if (jr.Run == nil) == (jr.Err == "") {
			return BatchResult{}, fmt.Errorf("dist: batch result: entry %d: want exactly one of run/err", i)
		}
		if jr.Transient && jr.Err == "" {
			return BatchResult{}, fmt.Errorf("dist: batch result: entry %d: transient without error", i)
		}
	}
	for i, sp := range r.Spans {
		if sp.TraceID == "" || sp.SpanID == "" || sp.Name == "" {
			return BatchResult{}, fmt.Errorf("dist: batch result: span %d: missing trace_id/span_id/name", i)
		}
		if sp.Dur < 0 {
			return BatchResult{}, fmt.Errorf("dist: batch result: span %d: negative duration", i)
		}
	}
	return r, nil
}

// decodeStrict decodes exactly one JSON value with unknown fields
// rejected and trailing garbage refused.
func decodeStrict(data []byte, v any) error {
	if len(data) > maxMessageBytes {
		return fmt.Errorf("message of %d bytes exceeds %d-byte cap", len(data), maxMessageBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := checkEOF(dec); err != nil {
		return err
	}
	return nil
}

func checkEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after message")
	}
	return nil
}

func checkSchema(v int) error {
	if v != SchemaVersion {
		return fmt.Errorf("%w: got version %d, this build speaks %d", ErrSchema, v, SchemaVersion)
	}
	return nil
}

// readAllLimited reads a request/response body up to the message cap,
// failing loudly (rather than truncating) when the peer sends more.
func readAllLimited(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxMessageBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxMessageBytes {
		return nil, fmt.Errorf("dist: message exceeds %d-byte cap", maxMessageBytes)
	}
	return data, nil
}
