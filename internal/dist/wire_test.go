package dist

import (
	"errors"
	"strings"
	"testing"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/core"
	"bce/internal/metrics"
)

// sampleJob builds a valid wire job (key derived, spec validated).
// Shared with the fuzz seeds, so it panics instead of taking a *T.
func sampleJob(bench string, lambda int) Job {
	spec := core.JobSpec{
		Bench:     bench,
		Machine:   config.Baseline40x4(),
		Predictor: "bimodal-gshare",
		Estimator: confidence.SpecCIC(lambda),
		Sizes:     core.JobSizes{Warmup: 1000, Measure: 3000, Segments: 1},
	}
	key, err := spec.Key()
	if err != nil {
		panic("sample spec invalid: " + err.Error())
	}
	return Job{Key: key, Spec: spec}
}

func sampleBatch() Batch {
	return Batch{
		Schema:       SchemaVersion,
		Shard:        1,
		Seq:          2,
		JobTimeoutMS: 5000,
		Jobs:         []Job{sampleJob("gzip", 0), sampleJob("gcc", 25)},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := sampleBatch()
	data, err := EncodeBatch(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != want.Schema || got.Shard != want.Shard || got.Seq != want.Seq ||
		got.JobTimeoutMS != want.JobTimeoutMS || len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("round trip mangled batch: got %+v want %+v", got, want)
	}
	for i := range want.Jobs {
		if got.Jobs[i].Key != want.Jobs[i].Key {
			t.Errorf("job %d key: got %q want %q", i, got.Jobs[i].Key, want.Jobs[i].Key)
		}
		// The specs must survive well enough to re-derive the same key.
		rekey, err := got.Jobs[i].Spec.Key()
		if err != nil {
			t.Fatalf("job %d: re-derive key: %v", i, err)
		}
		if rekey != want.Jobs[i].Key {
			t.Errorf("job %d: key drifted across the wire: %q -> %q", i, want.Jobs[i].Key, rekey)
		}
	}
}

func TestBatchResultRoundTrip(t *testing.T) {
	run := metrics.Run{Retired: 1234, Cycles: 500}
	want := BatchResult{
		Schema: SchemaVersion,
		Worker: "w1",
		Results: []JobResult{
			{Key: "k1", Run: &run},
			{Key: "k2", Err: "deadline", Transient: true},
			{Key: "k3", Err: "bad spec"},
		},
	}
	data, err := EncodeBatchResult(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != "w1" || len(got.Results) != 3 {
		t.Fatalf("round trip mangled result: %+v", got)
	}
	if got.Results[0].Run == nil || got.Results[0].Run.Retired != 1234 {
		t.Errorf("run payload mangled: %+v", got.Results[0])
	}
	if !got.Results[1].Transient || got.Results[2].Transient {
		t.Errorf("transient flags mangled: %+v", got.Results)
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	valid := sampleBatch()
	cases := []struct {
		name string
		mut  func(b *Batch)
		want string
	}{
		{"schema zero", func(b *Batch) { b.Schema = 0 }, "schema"},
		{"schema future", func(b *Batch) { b.Schema = SchemaVersion + 1 }, "schema"},
		{"no jobs", func(b *Batch) { b.Jobs = nil }, "no jobs"},
		{"empty key", func(b *Batch) { b.Jobs[0].Key = "" }, "empty key"},
		{"duplicate key", func(b *Batch) { b.Jobs[1].Key = b.Jobs[0].Key }, "duplicate"},
		{"negative timeout", func(b *Batch) { b.JobTimeoutMS = -1 }, "timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := valid
			b.Jobs = append([]Job(nil), valid.Jobs...)
			tc.mut(&b)
			data, err := EncodeBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeBatch(data); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("DecodeBatch = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestDecodeBatchSchemaSkewIsErrSchema(t *testing.T) {
	b := sampleBatch()
	b.Schema = SchemaVersion + 3
	data, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeBatch(data)
	if !errors.Is(err, ErrSchema) {
		t.Errorf("future schema: err = %v, want ErrSchema", err)
	}
}

func TestDecodeBatchStrictness(t *testing.T) {
	for _, tc := range []struct {
		name, payload string
	}{
		{"unknown field", `{"schema":1,"surprise":true,"jobs":[{"key":"k","spec":{}}]}`},
		{"trailing garbage", `{"schema":1,"jobs":[{"key":"k","spec":{}}]} {"more":1}`},
		{"not json", `hello`},
		{"wrong type", `[1,2,3]`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBatch([]byte(tc.payload)); err == nil {
				t.Error("malformed payload decoded cleanly")
			}
		})
	}
}

func TestDecodeBatchResultRejects(t *testing.T) {
	run := metrics.Run{Retired: 1}
	for _, tc := range []struct {
		name string
		r    BatchResult
		want string
	}{
		{"schema", BatchResult{Schema: 99, Results: []JobResult{{Key: "k", Run: &run}}}, "schema"},
		{"empty key", BatchResult{Schema: 1, Results: []JobResult{{Run: &run}}}, "empty key"},
		{"duplicate key", BatchResult{Schema: 1, Results: []JobResult{{Key: "k", Run: &run}, {Key: "k", Run: &run}}}, "duplicate"},
		{"neither run nor err", BatchResult{Schema: 1, Results: []JobResult{{Key: "k"}}}, "exactly one"},
		{"both run and err", BatchResult{Schema: 1, Results: []JobResult{{Key: "k", Run: &run, Err: "x"}}}, "exactly one"},
		{"transient success", BatchResult{Schema: 1, Results: []JobResult{{Key: "k", Run: &run, Transient: true}}}, "transient"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := EncodeBatchResult(tc.r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeBatchResult(data); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("DecodeBatchResult = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	huge := make([]byte, maxMessageBytes+1)
	for i := range huge {
		huge[i] = ' '
	}
	if _, err := DecodeBatch(huge); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversize message: err = %v, want byte-cap error", err)
	}
}
