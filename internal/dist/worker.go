package dist

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/runner"
)

// WorkerOptions configures a batch-execution worker.
type WorkerOptions struct {
	// Name identifies the worker in replies, manifests and logs
	// (default "worker").
	Name string
	// Exec executes one job; nil means core.ExecJob, which runs the
	// simulation through the worker's local result cache (and any
	// attached store), so re-delivered jobs are served, not re-run.
	Exec func(ctx context.Context, j core.JobSpec) (metrics.Run, error)
	// Pool bounds batch-internal parallelism; nil means a default pool
	// at GOMAXPROCS.
	Pool *runner.Pool
}

// Worker executes job batches delivered over HTTP. It is stateless
// between batches apart from the result cache its Exec function
// maintains — killing a worker loses nothing but in-flight work.
type Worker struct {
	name string
	exec func(ctx context.Context, j core.JobSpec) (metrics.Run, error)
	pool *runner.Pool
}

// NewWorker builds a Worker from opts.
func NewWorker(opts WorkerOptions) *Worker {
	w := &Worker{name: opts.Name, exec: opts.Exec, pool: opts.Pool}
	if w.name == "" {
		w.name = "worker"
	}
	if w.exec == nil {
		w.exec = core.ExecJob
	}
	if w.pool == nil {
		w.pool = runner.New(runner.Options{})
	}
	return w
}

// Handler returns the worker's HTTP surface: PathExec (batch
// execution) and PathPing (liveness + schema handshake). Mount it on
// any mux; cmd/bceworker serves it alongside the debug endpoints.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathExec, w.handleExec)
	mux.HandleFunc(PathPing, w.handlePing)
	return mux
}

func (w *Worker) handlePing(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(rw, "ping is GET", http.StatusMethodNotAllowed)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(rw, `{"schema":%d,"worker":%q}`+"\n", SchemaVersion, w.name)
}

func (w *Worker) handleExec(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "exec is POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := readAllLimited(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := DecodeBatch(body)
	if err != nil {
		// A malformed or version-skewed batch is deterministic: the
		// coordinator must not retry it here.
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	live.batchStart(len(batch.Jobs))

	// Execute every job; per-job failures become per-job results, so
	// Map's fn never errors and the batch always completes (unless the
	// coordinator hangs up, cancelling req.Context()).
	results, err := runner.Map(req.Context(), w.pool, batch.Jobs,
		func(ctx context.Context, _ int, job Job) (JobResult, error) {
			return w.runJob(ctx, job, batch.JobTimeoutMS), nil
		})
	if err != nil {
		live.batchEnd(false)
		// Client gone; nothing useful to write.
		http.Error(rw, err.Error(), http.StatusServiceUnavailable)
		return
	}
	reply, err := EncodeBatchResult(BatchResult{
		Schema:  SchemaVersion,
		Worker:  w.name,
		Results: results,
	})
	if err != nil {
		live.batchEnd(false)
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	live.batchEnd(true)
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(reply) //nolint:errcheck // client hangup only
}

// runJob executes one job and folds any failure into the JobResult.
func (w *Worker) runJob(ctx context.Context, job Job, timeoutMS int64) JobResult {
	// Recompute the cache key from the spec. A mismatch means this
	// build derives different identities than the coordinator's —
	// merging the result would corrupt byte-reproducibility, so the job
	// fails deterministically instead.
	key, err := job.Spec.Key()
	if err != nil {
		live.jobDone(false)
		return JobResult{Key: job.Key, Err: fmt.Sprintf("invalid job spec: %v", err)}
	}
	if key != job.Key {
		live.jobDone(false)
		return JobResult{Key: job.Key, Err: fmt.Sprintf(
			"cache-key mismatch: coordinator sent %q, this worker derives %q (version skew?)", job.Key, key)}
	}
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}
	run, err := w.exec(ctx, job.Spec)
	if err != nil {
		live.jobDone(false)
		return JobResult{Key: job.Key, Err: err.Error(), Transient: runner.IsTransient(err)}
	}
	live.jobDone(true)
	return JobResult{Key: job.Key, Run: &run}
}
