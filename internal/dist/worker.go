package dist

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/runner"
	"bce/internal/telemetry"
)

// WorkerOptions configures a batch-execution worker.
type WorkerOptions struct {
	// Name identifies the worker in replies, manifests and logs
	// (default "worker").
	Name string
	// Exec executes one job; nil means core.ExecJob, which runs the
	// simulation through the worker's local result cache (and any
	// attached store), so re-delivered jobs are served, not re-run.
	Exec func(ctx context.Context, j core.JobSpec) (metrics.Run, error)
	// Pool bounds batch-internal parallelism; nil means a default pool
	// at GOMAXPROCS.
	Pool *runner.Pool
	// Logger receives structured request/shutdown logs; nil means
	// slog.Default().
	Logger *slog.Logger
}

// Worker executes job batches delivered over HTTP. It is stateless
// between batches apart from the result cache its Exec function
// maintains — killing a worker loses nothing but in-flight work.
type Worker struct {
	name  string
	exec  func(ctx context.Context, j core.JobSpec) (metrics.Run, error)
	pool  *runner.Pool
	log   *slog.Logger
	ready atomic.Bool

	// statsMu guards stats: the telemetry registry is unsynchronized
	// by design and handleExec runs concurrently.
	statsMu sync.Mutex
	stats   *telemetry.Registry
}

// NewWorker builds a Worker from opts.
func NewWorker(opts WorkerOptions) *Worker {
	w := &Worker{name: opts.Name, exec: opts.Exec, pool: opts.Pool, log: opts.Logger,
		stats: telemetry.NewRegistry()}
	// Register up front so /metrics carries the batch_ms gauges (count,
	// quantiles) from the first scrape, not the first batch.
	w.stats.Histogram("batch_ms")
	if w.name == "" {
		w.name = "worker"
	}
	if w.exec == nil {
		w.exec = core.ExecJob
	}
	if w.pool == nil {
		w.pool = runner.New(runner.Options{})
	}
	if w.log == nil {
		w.log = slog.Default()
	}
	w.ready.Store(true)
	return w
}

// SetReady flips the /readyz answer. cmd/bceworker marks the worker
// unready when shutdown begins, so a fleet monitor (or load balancer)
// stops handing it new sweeps while in-flight batches drain.
func (w *Worker) SetReady(ready bool) { w.ready.Store(ready) }

// Handler returns the worker's HTTP surface: PathExec (batch
// execution), PathPing (liveness + schema handshake), and — because
// the coordinator's fleet monitor knows only this base URL — /healthz,
// /readyz, and a Prometheus /metrics page. Mount it on any mux;
// cmd/bceworker serves it alongside the debug endpoints.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathExec, w.handleExec)
	mux.HandleFunc(PathPing, w.handlePing)
	mux.Handle("/healthz", telemetry.GetOnly(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	}))
	mux.Handle("/readyz", telemetry.GetOnly(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !w.ready.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(rw, "not ready")
			return
		}
		fmt.Fprintln(rw, "ok")
	}))
	mux.Handle("/metrics", telemetry.GetOnly(w.serveMetrics))
	// The Go pprof surface on the API port: the coordinator's
	// mid-sweep fleet scrape (FleetProfile) hits /debug/pprof/profile
	// on the base URL it already has, and /debug/pprof/{heap,mutex,
	// block,...} come along via the index handler. Mutex/block pages
	// are only populated when the worker was started with
	// -profile-mutex / -profile-block.
	mux.Handle("/debug/pprof/", telemetry.GetOnly(pprof.Index))
	mux.Handle("/debug/pprof/profile", telemetry.GetOnly(pprof.Profile))
	return mux
}

// observeBatch records one completed batch's wall time in the
// worker-side latency histogram.
func (w *Worker) observeBatch(d time.Duration) {
	w.statsMu.Lock()
	w.stats.Histogram("batch_ms").Observe(uint64(d.Milliseconds()))
	w.statsMu.Unlock()
}

// Stats snapshots the worker-side registry (batch latency histogram).
func (w *Worker) Stats() telemetry.Snapshot {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.stats.Snapshot()
}

// serveMetrics renders the worker's counters in Prometheus text form
// on the API port, so the fleet monitor scrapes the URL it already
// has instead of needing a second per-worker debug address.
func (w *Worker) serveMetrics(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WriteBuildInfo(rw)
	telemetry.WritePrometheus(rw, "bce_dist", Snapshot())
	telemetry.WritePrometheus(rw, "bce_worker", w.Stats())
	telemetry.WritePrometheus(rw, "bce_runner", runner.LiveSnapshot())
	hits, misses := core.ResultCacheStats()
	telemetry.WritePrometheus(rw, "bce_result_cache",
		map[string]uint64{"hits": hits, "misses": misses})
}

// replyError answers a request with a digest-stamped error body. The
// digest is what lets the coordinator classify the status: a 4xx whose
// digest verifies was really produced by this handler (deterministic),
// while a bare 4xx could be the HTTP machinery rejecting a request the
// network mangled (retryable).
func replyError(rw http.ResponseWriter, status int, msg string) {
	body := msg + "\n"
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rw.Header().Set(HeaderDigest, ContentDigest([]byte(body)))
	rw.WriteHeader(status)
	io.WriteString(rw, body) //nolint:errcheck // client hangup only
}

func (w *Worker) handlePing(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(rw, "ping is GET", http.StatusMethodNotAllowed)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(rw, `{"schema":%d,"worker":%q}`+"\n", SchemaVersion, w.name)
}

func (w *Worker) handleExec(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "exec is POST", http.StatusMethodNotAllowed)
		return
	}
	// Trace context, if the coordinator sent any, arrives as headers.
	// Only then does this request get a tracer — replies to untraced
	// (or pre-tracing) coordinators never grow a spans field.
	var tracer *telemetry.Tracer
	remote := telemetry.SpanContext{
		TraceID: req.Header.Get(HeaderTraceID),
		SpanID:  req.Header.Get(HeaderSpanID),
	}
	if remote.Valid() {
		tracer = telemetry.NewTracer(w.name)
	}
	execSpan := tracer.StartSpan("exec", remote)
	ctx := telemetry.ContextWithSpan(req.Context(), execSpan)

	decSpan := tracer.StartSpan("decode", execSpan.Context())
	body, err := readAllLimited(req.Body)
	if err != nil {
		decSpan.End()
		execSpan.End()
		replyError(rw, http.StatusBadRequest, err.Error())
		return
	}
	// Verify the coordinator's content digest before parsing anything:
	// a mismatch means the body was damaged in transit, which is the
	// network's fault, not the batch's — answered 409 so the
	// coordinator retries instead of aborting on a "malformed" batch.
	if want := req.Header.Get(HeaderDigest); want != "" && want != ContentDigest(body) {
		decSpan.End()
		execSpan.End()
		w.log.WarnContext(ctx, "batch corrupted in transit", "worker", w.name, "bytes", len(body))
		replyError(rw, http.StatusConflict, "dist: batch corrupted in transit (content digest mismatch)")
		return
	}
	batch, err := DecodeBatch(body)
	decSpan.End()
	if err != nil {
		// A malformed or version-skewed batch is deterministic: the
		// coordinator must not retry it here.
		execSpan.End()
		w.log.WarnContext(ctx, "rejected batch", "worker", w.name, "err", err)
		replyError(rw, http.StatusBadRequest, err.Error())
		return
	}
	execSpan.SetAttr("shard", fmt.Sprint(batch.Shard))
	execSpan.SetAttr("seq", fmt.Sprint(batch.Seq))
	execSpan.SetAttr("jobs", fmt.Sprint(len(batch.Jobs)))
	live.batchStart(len(batch.Jobs))
	batchT0 := time.Now()
	w.log.DebugContext(ctx, "batch accepted",
		"worker", w.name, "shard", batch.Shard, "seq", batch.Seq, "jobs", len(batch.Jobs))

	// Execute every job; per-job failures become per-job results, so
	// Map's fn never errors and the batch always completes (unless the
	// coordinator hangs up, cancelling req.Context()).
	results, err := runner.Map(ctx, w.pool, batch.Jobs,
		func(ctx context.Context, _ int, job Job) (JobResult, error) {
			jobSpan := tracer.StartSpan("job", execSpan.Context())
			jobSpan.SetAttr("key", job.Key)
			jobSpan.SetAttr("bench", job.Spec.Bench)
			r := w.runJob(telemetry.ContextWithSpan(ctx, jobSpan), job, batch.JobTimeoutMS)
			if r.Err != "" {
				jobSpan.SetAttr("err", r.Err)
			}
			jobSpan.End()
			return r, nil
		})
	if err != nil {
		live.batchEnd(false)
		execSpan.End()
		// Client gone; nothing useful to write.
		replyError(rw, http.StatusServiceUnavailable, err.Error())
		return
	}
	// The encode span times reply assembly; the final JSON marshal is
	// necessarily outside it (the span must be inside the bytes it is
	// shipped in).
	encSpan := tracer.StartSpan("encode", execSpan.Context())
	result := BatchResult{
		Schema:  SchemaVersion,
		Worker:  w.name,
		Results: results,
	}
	encSpan.End()
	execSpan.End()
	result.Spans = tracer.Drain()
	reply, err := EncodeBatchResult(result)
	if err != nil {
		live.batchEnd(false)
		replyError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	live.batchEnd(true)
	w.observeBatch(time.Since(batchT0))
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set(HeaderDigest, ContentDigest(reply))
	rw.Write(reply) //nolint:errcheck // client hangup only
}

// runJob executes one job and folds any failure into the JobResult.
func (w *Worker) runJob(ctx context.Context, job Job, timeoutMS int64) JobResult {
	// Recompute the cache key from the spec. A mismatch means this
	// build derives different identities than the coordinator's —
	// merging the result would corrupt byte-reproducibility, so the job
	// fails deterministically instead.
	key, err := job.Spec.Key()
	if err != nil {
		live.jobDone(false)
		return JobResult{Key: job.Key, Err: fmt.Sprintf("invalid job spec: %v", err)}
	}
	if key != job.Key {
		live.jobDone(false)
		return JobResult{Key: job.Key, Err: fmt.Sprintf(
			"cache-key mismatch: coordinator sent %q, this worker derives %q (version skew?)", job.Key, key)}
	}
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}
	run, err := w.exec(ctx, job.Spec)
	if err != nil {
		live.jobDone(false)
		w.log.DebugContext(ctx, "job failed",
			"worker", w.name, "key", job.Key, "transient", runner.IsTransient(err), "err", err)
		return JobResult{Key: job.Key, Err: err.Error(), Transient: runner.IsTransient(err)}
	}
	live.jobDone(true)
	return JobResult{Key: job.Key, Run: &run}
}
