package dist

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bce/internal/core"
	"bce/internal/metrics"
	"bce/internal/runner"
)

// stubExec returns a canned run without simulating, keyed by bench so
// results are distinguishable.
func stubExec(_ context.Context, j core.JobSpec) (metrics.Run, error) {
	return metrics.Run{Retired: uint64(len(j.Bench)), Cycles: 7, Segments: 1}, nil
}

func postBatch(t *testing.T, url string, b Batch) (*http.Response, []byte) {
	t.Helper()
	payload, err := EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+PathExec, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestWorkerExecutesBatch(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerOptions{Name: "wtest", Exec: stubExec}).Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv.URL, sampleBatch())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: HTTP %d: %s", resp.StatusCode, body)
	}
	reply, err := DecodeBatchResult(body)
	if err != nil {
		t.Fatalf("reply: %v\n%s", err, body)
	}
	if reply.Worker != "wtest" || reply.Schema != SchemaVersion {
		t.Errorf("reply header: %+v", reply)
	}
	if len(reply.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(reply.Results))
	}
	for _, jr := range reply.Results {
		if jr.Run == nil {
			t.Errorf("job %s failed: %s", jr.Key, jr.Err)
		}
	}
}

func TestWorkerRejectsKeyMismatch(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerOptions{Exec: stubExec}).Handler())
	defer srv.Close()

	b := sampleBatch()
	b.Jobs = b.Jobs[:1]
	b.Jobs[0].Key = b.Jobs[0].Key + "-tampered"
	resp, body := postBatch(t, srv.URL, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: HTTP %d: %s", resp.StatusCode, body)
	}
	reply, err := DecodeBatchResult(body)
	if err != nil {
		t.Fatal(err)
	}
	jr := reply.Results[0]
	if jr.Run != nil || !strings.Contains(jr.Err, "mismatch") {
		t.Errorf("tampered key: want deterministic mismatch error, got %+v", jr)
	}
	if jr.Transient {
		t.Error("key mismatch must not be retryable: it fails identically everywhere")
	}
}

func TestWorkerClassifiesFailures(t *testing.T) {
	exec := func(_ context.Context, j core.JobSpec) (metrics.Run, error) {
		switch j.Bench {
		case "gzip":
			return metrics.Run{}, runner.Transient(errors.New("flaky disk"))
		default:
			return metrics.Run{}, errors.New("bad simulation")
		}
	}
	srv := httptest.NewServer(NewWorker(WorkerOptions{Exec: exec}).Handler())
	defer srv.Close()

	resp, body := postBatch(t, srv.URL, sampleBatch()) // gzip + gcc
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: HTTP %d: %s", resp.StatusCode, body)
	}
	reply, err := DecodeBatchResult(body)
	if err != nil {
		t.Fatal(err)
	}
	byBench := map[string]JobResult{}
	for i, jr := range reply.Results {
		byBench[sampleBatch().Jobs[i].Spec.Bench] = jr
	}
	// Results come back in batch order (runner.Map preserves order).
	if jr := byBench["gzip"]; !jr.Transient || jr.Err == "" {
		t.Errorf("transient failure not flagged: %+v", jr)
	}
	if jr := byBench["gcc"]; jr.Transient || jr.Err == "" {
		t.Errorf("deterministic failure misflagged: %+v", jr)
	}
}

func TestWorkerJobTimeoutIsTransient(t *testing.T) {
	exec := func(ctx context.Context, _ core.JobSpec) (metrics.Run, error) {
		<-ctx.Done() // wedged simulation: only the deadline frees it
		return metrics.Run{}, ctx.Err()
	}
	srv := httptest.NewServer(NewWorker(WorkerOptions{Exec: exec}).Handler())
	defer srv.Close()

	b := sampleBatch()
	b.Jobs = b.Jobs[:1]
	b.JobTimeoutMS = 10
	resp, body := postBatch(t, srv.URL, b)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec: HTTP %d: %s", resp.StatusCode, body)
	}
	reply, err := DecodeBatchResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if jr := reply.Results[0]; !jr.Transient {
		t.Errorf("deadline expiry must be transient (retryable elsewhere): %+v", jr)
	}
}

func TestWorkerHTTPDiscipline(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerOptions{Exec: stubExec}).Handler())
	defer srv.Close()

	if resp, _ := http.Get(srv.URL + PathExec); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET exec: HTTP %d, want 405", resp.StatusCode)
	}
	if resp, err := http.Post(srv.URL+PathPing, "", nil); err != nil {
		t.Fatal(err)
	} else if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST ping: HTTP %d, want 405", resp.StatusCode)
	}
	resp, err := http.Post(srv.URL+PathExec, "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed batch: HTTP %d, want 400", resp.StatusCode)
	}
	// Version skew: a batch from the future must be refused outright.
	b := sampleBatch()
	b.Schema = SchemaVersion + 1
	if resp, body := postBatch(t, srv.URL, b); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("future schema: HTTP %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestWorkerPing(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerOptions{Name: "pingy", Exec: stubExec}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + PathPing)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var reply struct {
		Schema int    `json:"schema"`
		Worker string `json:"worker"`
	}
	if err := decodeStrict(body, &reply); err != nil {
		t.Fatalf("ping reply: %v\n%s", err, body)
	}
	if reply.Schema != SchemaVersion || reply.Worker != "pingy" {
		t.Errorf("ping = %+v", reply)
	}
}
