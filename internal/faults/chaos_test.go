package faults

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bce/internal/pipeline"
	"bce/internal/runner"
	"bce/internal/trace"
	"bce/internal/workload"
)

// encodeTrace builds a small valid trace stream.
func encodeTrace(t *testing.T, n int) []byte {
	t.Helper()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(prof)
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for i := 0; i < n; i++ {
		u, _ := gen.Next()
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drain(r *trace.Reader) error {
	for {
		if _, err := r.ReadUop(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// A single flipped payload bit anywhere in the stream must surface as
// trace.ErrCorrupt, never as silently wrong uops.
func TestChaosTraceBitFlip(t *testing.T) {
	raw := encodeTrace(t, 200)
	// Flip a bit in every eighth byte position past the header, one
	// trial per position: whole-stream coverage would be slow, this is
	// a dense sample.
	for off := int64(8); off < int64(len(raw)); off += 8 {
		r := trace.NewReader(NewFlipReader(bytes.NewReader(raw), off, 0x10))
		if err := drain(r); !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

// A stream cut short by a crash must read as ErrCorrupt (missing
// integrity footer), not as a shorter-but-valid trace.
func TestChaosTraceTruncation(t *testing.T) {
	raw := encodeTrace(t, 200)
	for _, cut := range []int64{int64(len(raw)) - 3, int64(len(raw)) / 2, 20} {
		tr := NewTruncateReader(bytes.NewReader(raw), cut)
		r := trace.NewReader(tr)
		err := drain(r)
		if !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("cut at %d: err = %v, want ErrCorrupt", cut, err)
		}
		if !tr.Truncated() {
			t.Fatalf("cut at %d never engaged", cut)
		}
		// The diagnostic must carry replay context.
		if !strings.Contains(err.Error(), "record ") || !strings.Contains(err.Error(), "byte offset") {
			t.Fatalf("cut at %d: diagnostic lacks context: %v", cut, err)
		}
	}
}

// A hung simulation inside a sweep must die by watchdog, and the
// sweep's error must expose the structured diagnostic through the
// panic-recovery chain: *runner.PanicError wrapping
// *pipeline.WatchdogError.
func TestChaosWatchdogThroughSweep(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p := runner.New(runner.Options{Workers: 2})
	_, err = runner.Map(context.Background(), p, []string{"hung-config"},
		func(ctx context.Context, i int, item string) (uint64, error) {
			s := pipeline.New(pipeline.Options{
				Hierarchy:        HangHierarchy(),
				WatchdogInterval: 4_000,
			}, workload.New(prof))
			r := s.Run(1_000_000)
			return r.Cycles, nil
		})
	if err == nil {
		t.Fatal("hung sweep completed")
	}
	var pe *runner.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != "hung-config" {
		t.Errorf("panic error names job %q", pe.Job)
	}
	var wde *pipeline.WatchdogError
	if !errors.As(err, &wde) {
		t.Fatalf("watchdog diagnostic not reachable through %v", err)
	}
	if wde.Head == nil || wde.Interval != 4_000 {
		t.Errorf("diagnostic incomplete: %+v", wde)
	}
}

// Injected transient failures must be retried to success and injected
// hangs reclaimed by the per-job deadline — the sweep completes with
// correct results either way.
func TestChaosRetryAndDeadline(t *testing.T) {
	failer := NewInjector(2)
	hanger := NewInjector(1)
	p := runner.New(runner.Options{
		Workers:      2,
		Retries:      3,
		RetryBackoff: time.Millisecond,
		JobTimeout:   50 * time.Millisecond,
	})
	out, err := runner.Map(context.Background(), p, []int{10, 20},
		func(ctx context.Context, i int, item int) (int, error) {
			if item == 10 {
				if err := failer.Fail(errors.New("injected I/O error")); err != nil {
					return 0, runner.Transient(err)
				}
			} else {
				hanger.Hang(ctx.Done())
				if ctx.Err() != nil {
					return 0, ctx.Err()
				}
			}
			return item * 2, nil
		})
	if err != nil {
		t.Fatalf("chaos sweep failed: %v", err)
	}
	if out[0] != 20 || out[1] != 40 {
		t.Errorf("out = %v, want [20 40]", out)
	}
	if failer.Remaining() != 0 || hanger.Remaining() != 0 {
		t.Errorf("injectors not exhausted: fail=%d hang=%d", failer.Remaining(), hanger.Remaining())
	}
}

// An injected panic must surface as a *PanicError naming the job, and
// must not be retried.
func TestChaosPanicInjection(t *testing.T) {
	boom := NewInjector(1)
	attempts := 0
	p := runner.New(runner.Options{Workers: 1, Retries: 5})
	_, err := runner.Map(context.Background(), p, []string{"victim"},
		func(ctx context.Context, i int, item string) (int, error) {
			attempts++
			boom.Panic("injected panic")
			return 1, nil
		})
	var pe *runner.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != "victim" || attempts != 1 {
		t.Errorf("job %q attempts %d, want victim/1", pe.Job, attempts)
	}
}

// simSweep runs a small two-point sweep through a cache backed by the
// given store and returns the results marshalled to canonical JSON.
func simSweep(t *testing.T, store runner.Store, cancelAfter int) ([]byte, error) {
	t.Helper()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	cache := runner.NewCache[uint64]()
	if store != nil {
		cache.SetStore(store,
			func(v uint64) ([]byte, error) { return json.Marshal(v) },
			func(b []byte) (uint64, error) { var v uint64; err := json.Unmarshal(b, &v); return v, err })
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var opts runner.Options
	opts.Workers = 1
	if cancelAfter > 0 {
		n := 0
		opts.Progress = func(pr runner.Progress) {
			n++
			if n >= cancelAfter {
				cancel() // simulated kill: sweep dies mid-flight
			}
		}
	}
	p := runner.New(opts)
	items := []uint64{2_000, 4_000, 6_000}
	out, err := runner.Map(ctx, p, items, func(ctx context.Context, i int, n uint64) (uint64, error) {
		return cache.Do(runner.KeyOf("chaos-sweep", n), func() (uint64, error) {
			s := pipeline.New(pipeline.Options{}, workload.New(prof))
			return s.Run(n).Cycles, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(out)
}

// Killing a sweep mid-flight and resuming against the checkpoint
// journal must produce byte-identical merged output, with the
// already-done work served from the journal instead of recomputed.
func TestChaosKillAndResume(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.journal")

	// Ground truth: one uninterrupted run, no persistence.
	want, err := simSweep(t, nil, 0)
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}

	// First attempt: journal-backed, killed after the first completed
	// job (context cancellation stands in for SIGKILL; the journal has
	// already fsynced the finished jobs either way).
	j, err := runner.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = simSweep(t, j, 1); err == nil {
		t.Fatal("killed sweep reported success")
	}
	j.Close()

	// Resume: reopen the journal; completed jobs replay, the rest
	// compute.
	j2, err := runner.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Replayed() == 0 {
		t.Fatal("journal lost the completed jobs")
	}
	got, err := simSweep(t, j2, 0)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed output diverged:\n  clean:   %s\n  resumed: %s", want, got)
	}
}

// A corrupted on-disk cache entry must be quarantined and recomputed;
// the sweep's results stay identical to a clean run.
func TestChaosStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := runner.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := simSweep(t, store, 0)
	if err != nil {
		t.Fatalf("populate: %v", err)
	}
	victim, err := CorruptDirEntry(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := simSweep(t, store, 0)
	if err != nil {
		t.Fatalf("post-corruption sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("corruption changed results:\n  clean: %s\n  after: %s", want, got)
	}
	if _, err := filepath.Glob(victim + ".bad"); err != nil {
		t.Fatal(err)
	}
	bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bad) != 1 {
		t.Errorf("quarantine files = %d, want 1", len(bad))
	}
	// The victim slot must have been recomputed and refiled.
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(matches) != 3 {
		t.Errorf("cache entries = %d, want 3 (victim refiled)", len(matches))
	}
}

// FlipReader and TruncateReader must behave as documented on plain
// byte streams (unit sanity for the harness itself).
func TestHarnessReaders(t *testing.T) {
	src := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := io.ReadAll(NewFlipReader(bytes.NewReader(src), 3, 0xFF))
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != 3^0xFF {
		t.Errorf("byte 3 = %#x, want %#x", out[3], 3^0xFF)
	}
	for i, b := range out {
		if i != 3 && b != src[i] {
			t.Errorf("byte %d collateral damage: %#x", i, b)
		}
	}

	trunc := NewTruncateReader(bytes.NewReader(src), 5)
	out, err = io.ReadAll(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || !trunc.Truncated() {
		t.Errorf("truncated read = %d bytes (engaged %v), want 5/true", len(out), trunc.Truncated())
	}

	inj := NewInjector(2)
	if err := inj.Fail(fmt.Errorf("x")); err == nil {
		t.Error("armed injector did not fail")
	}
	if !inj.Trip() {
		t.Error("second trip missing")
	}
	if inj.Trip() || inj.Fail(fmt.Errorf("x")) != nil {
		t.Error("exhausted injector still tripping")
	}
}
