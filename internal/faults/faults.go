// Package faults is the fault-injection harness behind the chaos test
// suite: deliberately broken io.Readers, cache-store corruptors, and
// countdown injectors for induced failures, panics and hangs. The
// production packages never import it; tests use it to prove the
// robustness machinery — trace CRC validation, store quarantine,
// bounded retry, per-job deadlines, the pipeline watchdog — actually
// degrades gracefully instead of merely existing.
package faults

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"bce/internal/cache"
)

// HangHierarchy returns a data-cache hierarchy whose memory level
// never answers within a simulation's lifetime (~10^15 cycles): the
// first L2-missing load wedges the ROB head, which is exactly the
// livelock the pipeline's forward-progress watchdog exists to catch.
func HangHierarchy() *cache.Hierarchy {
	return cache.NewHierarchy(cache.HierarchyConfig{
		Lat: cache.Latencies{L1: 3, L2: 16, Memory: 1 << 50},
	})
}

// FlipReader wraps r and flips the bits under mask in the single byte
// at offset (counting from the start of the stream). Everything else
// passes through untouched — the minimal corruption a checksum must
// catch.
type FlipReader struct {
	r      io.Reader
	offset int64
	mask   byte
	pos    int64
}

// NewFlipReader returns a reader that corrupts byte offset with mask.
// A zero mask defaults to 0x01 (a single bit flip).
func NewFlipReader(r io.Reader, offset int64, mask byte) *FlipReader {
	if mask == 0 {
		mask = 0x01
	}
	return &FlipReader{r: r, offset: offset, mask: mask}
}

// Read implements io.Reader.
func (f *FlipReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.offset >= f.pos && f.offset < f.pos+int64(n) {
		p[f.offset-f.pos] ^= f.mask
	}
	f.pos += int64(n)
	return n, err
}

// TruncateReader wraps r and reports a clean EOF after n bytes,
// simulating a file cut short by a crash or a full disk. Unlike
// io.LimitReader it is explicit about intent and keeps a Truncated
// flag for tests to assert the cut actually happened.
type TruncateReader struct {
	r         io.Reader
	remaining int64
	truncated bool
}

// NewTruncateReader returns a reader that ends the stream after n
// bytes.
func NewTruncateReader(r io.Reader, n int64) *TruncateReader {
	return &TruncateReader{r: r, remaining: n}
}

// Read implements io.Reader.
func (t *TruncateReader) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		t.truncated = true
		return 0, io.EOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.r.Read(p)
	t.remaining -= int64(n)
	if err == io.EOF && t.remaining > 0 {
		// The underlying stream was shorter than the cut; the
		// truncation never engaged.
		return n, err
	}
	return n, err
}

// Truncated reports whether the artificial cut was reached.
func (t *TruncateReader) Truncated() bool { return t.truncated }

// CorruptFile flips the bits under mask in the byte at offset of the
// file at path, in place. Offset is clamped to the file's last byte.
func CorruptFile(path string, offset int64, mask byte) error {
	if mask == 0 {
		mask = 0x01
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faults: %s is empty, nothing to corrupt", path)
	}
	if offset >= int64(len(data)) {
		offset = int64(len(data)) - 1
	}
	data[offset] ^= mask
	return os.WriteFile(path, data, 0o644)
}

// CorruptDirEntry corrupts one stored cache entry in a runner.DirStore
// directory by truncating it mid-JSON, returning the victim's path.
// It picks the first *.json entry (lexicographic) so tests are
// deterministic.
func CorruptDirEntry(dir string) (string, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return "", err
	}
	if len(entries) == 0 {
		return "", fmt.Errorf("faults: no cache entries in %s", dir)
	}
	victim := entries[0]
	data, err := os.ReadFile(victim)
	if err != nil {
		return "", err
	}
	cut := len(data) / 2
	if cut == 0 {
		cut = 1
	}
	if err := os.WriteFile(victim, data[:cut], 0o644); err != nil {
		return "", err
	}
	return victim, nil
}

// Injector trips a fault on each of its first N uses and then stands
// down, modeling transient environmental failures that succeed on
// retry. It is safe for concurrent use.
type Injector struct {
	left atomic.Int64
}

// NewInjector returns an injector armed for n trips.
func NewInjector(n int) *Injector {
	i := &Injector{}
	i.left.Store(int64(n))
	return i
}

// Trip reports whether this use should fault, consuming one armed
// trip if so.
func (i *Injector) Trip() bool {
	for {
		n := i.left.Load()
		if n <= 0 {
			return false
		}
		if i.left.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Remaining returns the number of trips still armed.
func (i *Injector) Remaining() int { return int(i.left.Load()) }

// Fail returns err on each of the injector's armed trips and nil
// afterwards.
func (i *Injector) Fail(err error) error {
	if i.Trip() {
		return err
	}
	return nil
}

// Panic panics with value on each armed trip.
func (i *Injector) Panic(value any) {
	if i.Trip() {
		panic(value)
	}
}

// Hang blocks until done is closed (or cancelled) on each armed trip,
// modeling a wedged job that only a per-job deadline can reclaim.
func (i *Injector) Hang(done <-chan struct{}) {
	if i.Trip() {
		<-done
	}
}
