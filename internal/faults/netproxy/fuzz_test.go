package netproxy

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// FuzzDecodeSchedule feeds arbitrary bytes through the strict schedule
// decoder and, for accepted schedules, exercises rule lookup across
// time and re-encodes for a round trip — no input may panic, and a
// schedule that decodes must re-decode to itself.
func FuzzDecodeSchedule(f *testing.F) {
	f.Add(`{"seed":1,"rules":[{"for_ms":10}]}`)
	f.Add(`{"seed":42,"repeat":true,"rules":[{"for_ms":100,"latency_ms":5,"jitter_ms":3},{"for_ms":50,"partition":true}]}`)
	f.Add(`{"seed":-7,"rules":[{"for_ms":10,"reset_prob":0.5,"drop_prob":0.25,"corrupt_prob":0.25,"bandwidth_bps":1024},{"for_ms":0}]}`)
	f.Add(`{"rules":[]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := DecodeSchedule(strings.NewReader(in))
		if err != nil {
			return
		}
		// Accepted schedules must survive rule lookup at arbitrary
		// elapsed times, including past the schedule's end.
		for _, d := range []time.Duration{0, time.Millisecond, time.Second, time.Hour, 30 * 24 * time.Hour} {
			r := s.ruleAt(d)
			if r.ResetProb < 0 || r.ResetProb > 1 {
				t.Fatalf("ruleAt(%v) returned invalid rule %+v", d, r)
			}
		}
		// Round trip: encode and re-decode to the same schedule.
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encoding accepted schedule: %v", err)
		}
		s2, err := DecodeSchedule(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("round trip rejected %s: %v", enc, err)
		}
		enc2, _ := json.Marshal(s2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed schedule: %s vs %s", enc, enc2)
		}
	})
}

// FuzzMutateReplay checks mutate for panics and for deterministic
// replay: the same rule, seed, and chunk sequence must yield identical
// fault decisions, and the output can never grow beyond the input.
func FuzzMutateReplay(f *testing.F) {
	f.Add(int64(1), 0.0, 0.0, 0.0, int64(0), int64(0), []byte("hello"))
	f.Add(int64(42), 0.5, 0.5, 0.5, int64(3), int64(7), []byte{0xff, 0x00, 0x7f})
	f.Add(int64(-9), 1.0, 1.0, 1.0, int64(0), int64(1), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, resetP, dropP, corruptP float64, latMS, jitMS int64, chunk []byte) {
		clamp := func(p float64) float64 {
			if p < 0 || p > 1 || p != p {
				return 0
			}
			return p
		}
		rule := Rule{
			ResetProb:   clamp(resetP),
			DropProb:    clamp(dropP),
			CorruptProb: clamp(corruptP),
			LatencyMS:   latMS & 0xff,
			JitterMS:    jitMS & 0xff,
		}
		run := func() mutation {
			rng := rand.New(rand.NewSource(seed))
			c := append([]byte(nil), chunk...)
			m := mutate(rule, rng, c)
			m.out = append([]byte(nil), m.out...)
			return m
		}
		a, b := run(), run()
		if !bytes.Equal(a.out, b.out) || a.reset != b.reset || a.delay != b.delay ||
			a.droppedBytes != b.droppedBytes || a.corruptedBytes != b.corruptedBytes {
			t.Fatalf("replay diverged: %+v vs %+v", a, b)
		}
		if len(a.out) > len(chunk) {
			t.Fatalf("mutation grew chunk: %d > %d", len(a.out), len(chunk))
		}
		if a.reset && len(a.out) != len(chunk) {
			t.Fatal("reset decision also mutated the chunk")
		}
	})
}
