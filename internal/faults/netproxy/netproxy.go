package netproxy

import (
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts what the proxy did to traffic. All fields are safe to
// read while the proxy is serving.
type Stats struct {
	// Accepted is connections admitted and piped to the target.
	Accepted uint64 `json:"accepted"`
	// Refused is connections closed immediately because a Partition
	// rule was active (or the target dial failed).
	Refused uint64 `json:"refused"`
	// Killed is established connections torn down by a Partition rule.
	Killed uint64 `json:"killed"`
	// Resets is connections torn down by a ResetProb decision.
	Resets uint64 `json:"resets"`
	// DroppedBytes and CorruptedBytes count byte-level mutations.
	DroppedBytes   uint64 `json:"dropped_bytes"`
	CorruptedBytes uint64 `json:"corrupted_bytes"`
	// ForwardedBytes counts bytes delivered (post-mutation), both
	// directions.
	ForwardedBytes uint64 `json:"forwarded_bytes"`
}

type liveStats struct {
	accepted, refused, killed, resets  atomic.Uint64
	dropped, corrupted, forwardedBytes atomic.Uint64
}

func (l *liveStats) snapshot() Stats {
	return Stats{
		Accepted:       l.accepted.Load(),
		Refused:        l.refused.Load(),
		Killed:         l.killed.Load(),
		Resets:         l.resets.Load(),
		DroppedBytes:   l.dropped.Load(),
		CorruptedBytes: l.corrupted.Load(),
		ForwardedBytes: l.forwardedBytes.Load(),
	}
}

// Proxy forwards TCP between a local listener and a fixed target
// address, degrading the stream per its Schedule. Construct with
// Start.
type Proxy struct {
	target string
	sched  Schedule
	ln     net.Listener
	logger *slog.Logger
	start  time.Time
	stats  liveStats

	mu     sync.Mutex
	conns  map[int64]*proxyConn
	nextID int64
	closed bool
	wg     sync.WaitGroup
}

type proxyConn struct {
	client, server net.Conn
	closeOnce      sync.Once
}

func (pc *proxyConn) close() {
	pc.closeOnce.Do(func() {
		pc.client.Close()
		pc.server.Close()
	})
}

// Start validates the schedule, binds a fresh 127.0.0.1 port, and
// begins proxying to target. logger may be nil.
func Start(target string, sched Schedule, logger *slog.Logger) (*Proxy, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netproxy: listen: %w", err)
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	p := &Proxy{
		target: target,
		sched:  sched,
		ln:     ln,
		logger: logger.With("proxy", ln.Addr().String(), "target", target),
		start:  time.Now(),
		conns:  make(map[int64]*proxyConn),
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.partitionLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's HTTP base URL, the form dist.Options.Workers
// expects.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Stats returns a snapshot of the proxy's fault counters.
func (p *Proxy) Stats() Stats { return p.stats.snapshot() }

// Close stops accepting and tears down every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*proxyConn, 0, len(p.conns))
	for _, pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, pc := range conns {
		pc.close()
	}
	p.wg.Wait()
	return err
}

// rule returns the schedule rule active right now.
func (p *Proxy) rule() Rule { return p.sched.ruleAt(time.Since(p.start)) }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if p.rule().Partition {
			p.stats.refused.Add(1)
			p.logger.Debug("refusing connection: partition active")
			client.Close()
			continue
		}
		server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			p.stats.refused.Add(1)
			p.logger.Debug("target dial failed", "err", err)
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		id := p.nextID
		p.nextID++
		pc := &proxyConn{client: client, server: server}
		p.conns[id] = pc
		p.mu.Unlock()
		p.stats.accepted.Add(1)

		var pipes sync.WaitGroup
		pipes.Add(2)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			pipes.Wait()
			pc.close()
			p.mu.Lock()
			delete(p.conns, id)
			p.mu.Unlock()
		}()
		// Each direction gets its own rng, derived from the schedule
		// seed, the connection id, and the direction, so fault decisions
		// replay identically for the same traffic shape.
		go func() {
			defer pipes.Done()
			p.pipe(pc, client, server, rand.New(rand.NewSource(p.sched.Seed^(id<<1))))
		}()
		go func() {
			defer pipes.Done()
			p.pipe(pc, server, client, rand.New(rand.NewSource(p.sched.Seed^(id<<1|1))))
		}()
	}
}

// partitionLoop kills established connections while a Partition rule
// is active, so an idle keep-alive connection does not ride out the
// outage.
func (p *Proxy) partitionLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		if !p.rule().Partition {
			p.mu.Unlock()
			continue
		}
		conns := make([]*proxyConn, 0, len(p.conns))
		for _, pc := range p.conns {
			conns = append(conns, pc)
		}
		p.mu.Unlock()
		for _, pc := range conns {
			p.stats.killed.Add(1)
			pc.close()
		}
	}
}

// pipe forwards src→dst chunk by chunk, consulting the active rule for
// each chunk and applying its faults via mutate.
func (p *Proxy) pipe(pc *proxyConn, src, dst net.Conn, rng *rand.Rand) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			rule := p.rule()
			if rule.Partition {
				p.stats.killed.Add(1)
				pc.close()
				return
			}
			m := mutate(rule, rng, buf[:n])
			p.stats.dropped.Add(m.droppedBytes)
			p.stats.corrupted.Add(m.corruptedBytes)
			if m.reset {
				p.stats.resets.Add(1)
				p.logger.Debug("injecting connection reset")
				pc.close()
				return
			}
			if m.delay > 0 {
				time.Sleep(m.delay)
			}
			if len(m.out) > 0 {
				if _, werr := dst.Write(m.out); werr != nil {
					pc.close()
					return
				}
				p.stats.forwardedBytes.Add(uint64(len(m.out)))
			}
		}
		if err != nil {
			// Half-close so a finished request still yields its reply.
			if cw, ok := dst.(interface{ CloseWrite() error }); ok {
				cw.CloseWrite() //nolint:errcheck // teardown path
			} else {
				pc.close()
			}
			return
		}
	}
}

// mutation is the deterministic outcome of applying one Rule to one
// chunk. Split from pipe so the fuzz suite can replay decisions
// without sockets.
type mutation struct {
	out            []byte
	reset          bool
	delay          time.Duration
	droppedBytes   uint64
	corruptedBytes uint64
}

// mutate applies rule to chunk using rng for every probabilistic
// decision. The returned out slice aliases chunk's backing array. The
// order of draws is fixed (reset, drop, corrupt) so a given rng state
// replays identically.
func mutate(rule Rule, rng *rand.Rand, chunk []byte) mutation {
	var m mutation
	m.out = chunk
	if rule.clean() {
		return m
	}
	if rule.ResetProb > 0 && rng.Float64() < rule.ResetProb {
		m.reset = true
		return m
	}
	if rule.DropProb > 0 && len(m.out) > 0 && rng.Float64() < rule.DropProb {
		i := rng.Intn(len(m.out))
		m.out = append(m.out[:i], m.out[i+1:]...)
		m.droppedBytes = 1
	}
	if rule.CorruptProb > 0 && len(m.out) > 0 && rng.Float64() < rule.CorruptProb {
		i := rng.Intn(len(m.out))
		bit := byte(1) << rng.Intn(8)
		m.out[i] ^= bit
		m.corruptedBytes = 1
	}
	if rule.LatencyMS > 0 || rule.JitterMS > 0 {
		d := time.Duration(rule.LatencyMS) * time.Millisecond
		if rule.JitterMS > 0 {
			d += time.Duration(rng.Int63n(rule.JitterMS+1)) * time.Millisecond
		}
		m.delay += d
	}
	if rule.BandwidthBPS > 0 && len(m.out) > 0 {
		m.delay += time.Duration(int64(len(m.out)) * int64(time.Second) / rule.BandwidthBPS)
	}
	return m
}
