package netproxy

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"
)

func TestDecodeScheduleRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty rules", `{"seed":1,"rules":[]}`},
		{"unknown field", `{"seed":1,"bogus":true,"rules":[{"for_ms":10}]}`},
		{"negative for_ms", `{"seed":1,"rules":[{"for_ms":-5}]}`},
		{"prob out of range", `{"seed":1,"rules":[{"for_ms":10,"reset_prob":1.5}]}`},
		{"negative bandwidth", `{"seed":1,"rules":[{"for_ms":10,"bandwidth_bps":-1}]}`},
		{"zero for_ms mid-schedule", `{"seed":1,"rules":[{"for_ms":0},{"for_ms":10}]}`},
		{"repeat with zero duration", `{"seed":1,"repeat":true,"rules":[{"for_ms":0}]}`},
		{"trailing data", `{"seed":1,"rules":[{"for_ms":10}]}{}`},
		{"not json", `chaos`},
	}
	for _, c := range cases {
		if _, err := DecodeSchedule(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: decode accepted %q", c.name, c.in)
		}
	}
}

func TestDecodeScheduleAcceptsValid(t *testing.T) {
	in := `{"seed":42,"repeat":true,"rules":[
		{"for_ms":100,"latency_ms":5,"jitter_ms":3},
		{"for_ms":50,"partition":true},
		{"for_ms":100,"reset_prob":0.1,"drop_prob":0.05,"corrupt_prob":0.05,"bandwidth_bps":65536}]}`
	s, err := DecodeSchedule(strings.NewReader(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if s.Seed != 42 || !s.Repeat || len(s.Rules) != 3 {
		t.Fatalf("decoded schedule = %+v", s)
	}
}

func TestRuleAtRotation(t *testing.T) {
	s := Schedule{Rules: []Rule{
		{ForMS: 10, LatencyMS: 1},
		{ForMS: 10, Partition: true},
	}}
	if r := s.ruleAt(5 * time.Millisecond); r.LatencyMS != 1 {
		t.Errorf("t=5ms rule = %+v, want latency rule", r)
	}
	if r := s.ruleAt(15 * time.Millisecond); !r.Partition {
		t.Errorf("t=15ms rule = %+v, want partition rule", r)
	}
	// Non-repeating schedule ends clean.
	if r := s.ruleAt(25 * time.Millisecond); !r.clean() {
		t.Errorf("t=25ms rule = %+v, want clean", r)
	}
	// Repeating schedule wraps.
	s.Repeat = true
	if r := s.ruleAt(25 * time.Millisecond); r.LatencyMS != 1 {
		t.Errorf("repeat t=25ms rule = %+v, want latency rule", r)
	}
	// Unbounded final rule sticks.
	u := Schedule{Rules: []Rule{{ForMS: 10}, {ForMS: 0, LatencyMS: 7}}}
	if r := u.ruleAt(time.Hour); r.LatencyMS != 7 {
		t.Errorf("unbounded final rule = %+v", r)
	}
}

// echoServer accepts one connection at a time and echoes bytes back.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c) //nolint:errcheck // test echo
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestProxyCleanPassThrough(t *testing.T) {
	ln := echoServer(t)
	p, err := Start(ln.Addr().String(), Schedule{Seed: 1, Rules: []Rule{{ForMS: 0}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("the quick brown fox")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo through clean proxy = %q, want %q", got, msg)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.ForwardedBytes == 0 || st.Resets != 0 || st.CorruptedBytes != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	ln := echoServer(t)
	p, err := Start(ln.Addr().String(),
		Schedule{Seed: 1, Rules: []Rule{{ForMS: 0, LatencyMS: 30}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	// Both directions pay 30ms, so the echo round trip is >= 60ms.
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("round trip took %v, want >= 60ms with 30ms per-direction latency", d)
	}
}

func TestProxyPartitionRefusesAndKills(t *testing.T) {
	ln := echoServer(t)
	p, err := Start(ln.Addr().String(),
		Schedule{Seed: 1, Rules: []Rule{{ForMS: 0, Partition: true}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err) // TCP connect may succeed before the proxy closes it
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("read through partition succeeded")
	}
	if st := p.Stats(); st.Refused == 0 {
		t.Errorf("stats = %+v, want Refused > 0", st)
	}
}

func TestProxyInjectsResets(t *testing.T) {
	ln := echoServer(t)
	p, err := Start(ln.Addr().String(),
		Schedule{Seed: 7, Rules: []Rule{{ForMS: 0, ResetProb: 1}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	conn.Write([]byte("doomed"))                      //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("read after certain reset succeeded")
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Errorf("stats = %+v, want Resets > 0", st)
	}
}

func TestProxyCorruptsBytes(t *testing.T) {
	ln := echoServer(t)
	p, err := Start(ln.Addr().String(),
		Schedule{Seed: 3, Rules: []Rule{{ForMS: 0, CorruptProb: 1}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("pristine payload bytes")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Error("payload survived CorruptProb=1 unmodified")
	}
	if st := p.Stats(); st.CorruptedBytes == 0 {
		t.Errorf("stats = %+v, want CorruptedBytes > 0", st)
	}
}

func TestMutateDeterministicFromSeed(t *testing.T) {
	rule := Rule{ResetProb: 0.2, DropProb: 0.3, CorruptProb: 0.3, LatencyMS: 2, JitterMS: 5}
	run := func() []mutation {
		rng := rand.New(rand.NewSource(99))
		var out []mutation
		for i := 0; i < 64; i++ {
			chunk := bytes.Repeat([]byte{byte(i)}, 16)
			m := mutate(rule, rng, chunk)
			m.out = append([]byte(nil), m.out...)
			out = append(out, m)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !bytes.Equal(a[i].out, b[i].out) || a[i].reset != b[i].reset || a[i].delay != b[i].delay {
			t.Fatalf("replay diverged at chunk %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
