// Package netproxy is an in-process TCP chaos proxy for the
// distributed-sweep fault suites. A Proxy sits between the coordinator
// and one worker and degrades the byte stream according to a timed
// Schedule: latency and jitter injection, bandwidth throttling,
// probabilistic connection resets, byte-level drops and corruption,
// and full partitions (new connections refused, established ones
// killed). All randomness derives from the schedule's seed, so a chaos
// run replays the same fault decisions for the same traffic shape.
//
// The proxy exists to prove the self-healing invariant: a sweep routed
// through any Schedule must produce stdout and merged manifests
// byte-identical to the clean run, with zero job loss. It degrades
// transport, never payload semantics — corrupted bytes are delivered
// (and caught by content digests downstream), not silently repaired.
package netproxy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Rule is one phase of a fault schedule. The zero Rule is a clean
// pass-through. Probabilities are per forwarded chunk (a single Read
// from one side of the proxied connection).
type Rule struct {
	// ForMS is how long this rule stays active, in milliseconds. Zero
	// is allowed only for a final rule, which then applies forever.
	ForMS int64 `json:"for_ms"`
	// LatencyMS delays each forwarded chunk by this many milliseconds.
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// JitterMS adds a uniform random 0..JitterMS milliseconds on top of
	// LatencyMS.
	JitterMS int64 `json:"jitter_ms,omitempty"`
	// BandwidthBPS throttles each direction to roughly this many bytes
	// per second. Zero means unthrottled.
	BandwidthBPS int64 `json:"bandwidth_bps,omitempty"`
	// ResetProb is the probability a chunk triggers an abrupt
	// connection teardown instead of being forwarded.
	ResetProb float64 `json:"reset_prob,omitempty"`
	// DropProb is the probability a chunk loses one random byte.
	DropProb float64 `json:"drop_prob,omitempty"`
	// CorruptProb is the probability a chunk has one random byte
	// flipped.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// Partition refuses new connections and kills established ones for
	// the rule's duration.
	Partition bool `json:"partition,omitempty"`
}

// clean reports whether the rule forwards traffic unmodified.
func (r Rule) clean() bool {
	return r.LatencyMS == 0 && r.JitterMS == 0 && r.BandwidthBPS == 0 &&
		r.ResetProb == 0 && r.DropProb == 0 && r.CorruptProb == 0 && !r.Partition
}

// Schedule is a seeded sequence of fault rules applied in order from
// proxy start. When Repeat is set the sequence loops; otherwise the
// schedule ends with its last rule (which applies forever if its ForMS
// is zero) or with a clean pass-through once every timed rule has
// elapsed.
type Schedule struct {
	// Seed drives every probabilistic decision the proxy makes.
	Seed int64 `json:"seed"`
	// Repeat loops the rule sequence instead of ending clean.
	Repeat bool `json:"repeat,omitempty"`
	// Rules are applied in order; see Rule.ForMS.
	Rules []Rule `json:"rules"`
}

// Validate checks the schedule for internal consistency.
func (s Schedule) Validate() error {
	if len(s.Rules) == 0 {
		return errors.New("netproxy: schedule has no rules")
	}
	var total int64
	for i, r := range s.Rules {
		if r.ForMS < 0 {
			return fmt.Errorf("netproxy: rule %d: negative for_ms %d", i, r.ForMS)
		}
		if r.ForMS == 0 && i != len(s.Rules)-1 {
			return fmt.Errorf("netproxy: rule %d: for_ms 0 only allowed on the final rule", i)
		}
		for _, p := range []struct {
			name string
			v    float64
		}{{"reset_prob", r.ResetProb}, {"drop_prob", r.DropProb}, {"corrupt_prob", r.CorruptProb}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("netproxy: rule %d: %s %v outside [0,1]", i, p.name, p.v)
			}
		}
		if r.BandwidthBPS < 0 {
			return fmt.Errorf("netproxy: rule %d: negative bandwidth_bps %d", i, r.BandwidthBPS)
		}
		if r.LatencyMS < 0 || r.JitterMS < 0 {
			return fmt.Errorf("netproxy: rule %d: negative latency/jitter", i)
		}
		total += r.ForMS
	}
	if s.Repeat {
		if total == 0 {
			return errors.New("netproxy: repeating schedule with zero total duration")
		}
		if last := s.Rules[len(s.Rules)-1]; last.ForMS == 0 {
			return errors.New("netproxy: repeating schedule cannot end with an unbounded rule")
		}
	}
	return nil
}

// DecodeSchedule parses a strict-JSON schedule (unknown fields
// rejected, like the dist wire schema) and validates it.
func DecodeSchedule(r io.Reader) (Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("netproxy: decoding schedule: %w", err)
	}
	if dec.More() {
		return Schedule{}, errors.New("netproxy: trailing data after schedule")
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// ruleAt returns the rule active after elapsed time since proxy start.
// Past the end of a non-repeating schedule it returns the final rule
// if that rule is unbounded (ForMS zero), else the clean zero Rule.
func (s Schedule) ruleAt(elapsed time.Duration) Rule {
	ms := elapsed.Milliseconds()
	var total int64
	for _, r := range s.Rules {
		total += r.ForMS
	}
	if s.Repeat && total > 0 {
		ms %= total
	}
	for _, r := range s.Rules {
		if r.ForMS == 0 {
			// Unbounded final rule.
			return r
		}
		if ms < r.ForMS {
			return r
		}
		ms -= r.ForMS
	}
	return Rule{}
}
