// Package gating implements the pipeline-gating controller of Manne et
// al. as used in the paper (§2.1, Figure 1): a counter of in-flight
// low-confidence branches that stalls fetch when it reaches the PL
// threshold, extended with the estimator-latency modeling of §5.4.2
// (a low-confidence branch only arms the counter some cycles after
// fetch, reflecting the time to compute the perceptron output).
package gating

import (
	"fmt"

	"bce/internal/telemetry"
)

// Policy configures pipeline gating.
type Policy struct {
	// Threshold is PL: fetch stalls while the armed low-confidence
	// branch count is >= Threshold. Zero disables gating.
	Threshold int
	// Latency is the estimator pipeline latency in cycles: a fetched
	// low-confidence branch increments the counter Latency cycles
	// later (§5.4.2 compares 1 vs 9). Zero means immediate.
	Latency int
}

// Disabled is the no-gating policy.
func Disabled() Policy { return Policy{} }

// PL returns a zero-latency policy with the given threshold, the
// paper's PL1/PL2/PL3 notation.
func PL(threshold int) Policy { return Policy{Threshold: threshold} }

// Controller tracks in-flight low-confidence branches. The zero value
// is unusable; construct with NewController.
type Controller struct {
	policy  Policy
	armed   map[uint64]bool // branch seq -> counted
	pending []pendingArm    // fetched, not yet counted (latency)
	count   int
	stalls  uint64
	events  uint64
	wasOn   bool

	sink      telemetry.Sink       // gate-on/gate-off events; nil = off
	episodes  *telemetry.Histogram // stall-episode lengths; nil = off
	episodeAt uint64               // cycle the current episode started
}

type pendingArm struct {
	seq   uint64
	armAt uint64
}

// NewController returns a controller for the policy.
func NewController(p Policy) *Controller {
	if p.Threshold < 0 || p.Latency < 0 {
		panic(fmt.Sprintf("gating: negative policy %+v", p))
	}
	return &Controller{policy: p, armed: make(map[uint64]bool)}
}

// SetTelemetry installs the telemetry hooks: sink receives gate-on /
// gate-off transition events, episodes records each stall episode's
// length in cycles. Either may be nil.
func (c *Controller) SetTelemetry(sink telemetry.Sink, episodes *telemetry.Histogram) {
	c.sink = sink
	c.episodes = episodes
}

// Enabled reports whether the policy can ever stall fetch.
func (c *Controller) Enabled() bool { return c.policy.Threshold > 0 }

// Policy returns the configured policy.
func (c *Controller) Policy() Policy { return c.policy }

// OnFetch records a low-confidence conditional branch fetched at the
// given cycle, identified by its pipeline sequence number.
func (c *Controller) OnFetch(seq uint64, cycle uint64) {
	if !c.Enabled() {
		return
	}
	if c.policy.Latency == 0 {
		c.armed[seq] = true
		c.count++
		return
	}
	c.pending = append(c.pending, pendingArm{seq: seq, armAt: cycle + uint64(c.policy.Latency)})
}

// OnResolve records that the branch resolved (executed) or was
// squashed; its contribution is removed whether armed or pending.
// Safe to call for branches never registered.
func (c *Controller) OnResolve(seq uint64) {
	if !c.Enabled() {
		return
	}
	if c.armed[seq] {
		delete(c.armed, seq)
		c.count--
		return
	}
	for i := range c.pending {
		if c.pending[i].seq == seq {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// Stalled reports whether fetch must stall this cycle, first arming
// any pending branches whose latency has elapsed. Call once per cycle
// (it also accumulates stall statistics).
func (c *Controller) Stalled(cycle uint64) bool {
	if !c.Enabled() {
		return false
	}
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.armAt <= cycle {
			c.armed[p.seq] = true
			c.count++
		} else {
			kept = append(kept, p)
		}
	}
	c.pending = kept
	on := c.count >= c.policy.Threshold
	if on {
		c.stalls++
		if !c.wasOn {
			c.events++
			c.episodeAt = cycle
			if c.sink != nil {
				c.sink.Emit(telemetry.Event{Kind: telemetry.EvGateOn, Cycle: cycle, N: uint64(c.count)})
			}
		}
	} else if c.wasOn {
		if c.episodes != nil {
			c.episodes.Observe(cycle - c.episodeAt)
		}
		if c.sink != nil {
			c.sink.Emit(telemetry.Event{Kind: telemetry.EvGateOff, Cycle: cycle, N: cycle - c.episodeAt})
		}
	}
	c.wasOn = on
	return on
}

// Count returns the current armed low-confidence branch count.
func (c *Controller) Count() int { return c.count }

// Stats returns total stalled cycles and distinct stall episodes.
func (c *Controller) Stats() (stalledCycles, episodes uint64) { return c.stalls, c.events }

// Reset clears branch tracking and statistics (between warmup and
// measurement the pipeline keeps its controller, so Reset only zeroes
// the *statistics*, not in-flight state).
func (c *Controller) ResetStats() { c.stalls, c.events = 0, 0 }
