package gating

import (
	"testing"
	"testing/quick"
)

func TestDisabled(t *testing.T) {
	c := NewController(Disabled())
	if c.Enabled() {
		t.Fatal("disabled policy enabled")
	}
	c.OnFetch(1, 0)
	if c.Stalled(5) {
		t.Fatal("disabled controller stalled")
	}
	if c.Count() != 0 {
		t.Fatal("disabled controller counted")
	}
}

func TestPL1ImmediateStall(t *testing.T) {
	c := NewController(PL(1))
	if c.Stalled(0) {
		t.Fatal("stalled with no branches")
	}
	c.OnFetch(10, 0)
	if !c.Stalled(0) {
		t.Fatal("PL1 not stalled with one low-conf branch")
	}
	c.OnResolve(10)
	if c.Stalled(1) {
		t.Fatal("stalled after resolve")
	}
}

func TestPL2NeedsTwo(t *testing.T) {
	c := NewController(PL(2))
	c.OnFetch(1, 0)
	if c.Stalled(0) {
		t.Fatal("PL2 stalled at count 1")
	}
	c.OnFetch(2, 0)
	if !c.Stalled(0) {
		t.Fatal("PL2 not stalled at count 2")
	}
	c.OnResolve(1)
	if c.Stalled(1) {
		t.Fatal("PL2 stalled at count 1 after resolve")
	}
}

func TestLatencyDelaysArming(t *testing.T) {
	c := NewController(Policy{Threshold: 1, Latency: 9})
	c.OnFetch(1, 100)
	if c.Stalled(100) || c.Stalled(108) {
		t.Fatal("stalled before latency elapsed")
	}
	if !c.Stalled(109) {
		t.Fatal("not stalled after latency elapsed")
	}
}

func TestResolveBeforeArming(t *testing.T) {
	// Branch resolves during the estimator latency window: it must
	// never arm.
	c := NewController(Policy{Threshold: 1, Latency: 9})
	c.OnFetch(1, 100)
	c.OnResolve(1)
	if c.Stalled(200) {
		t.Fatal("resolved-pending branch armed anyway")
	}
	if c.Count() != 0 {
		t.Fatal("count nonzero")
	}
}

func TestResolveUnknownSeqSafe(t *testing.T) {
	c := NewController(PL(1))
	c.OnResolve(999) // never fetched; must not go negative
	c.OnFetch(1, 0)
	if !c.Stalled(0) {
		t.Fatal("count corrupted by unknown resolve")
	}
}

func TestStats(t *testing.T) {
	c := NewController(PL(1))
	c.OnFetch(1, 0)
	c.Stalled(0)
	c.Stalled(1)
	c.OnResolve(1)
	c.Stalled(2)
	c.OnFetch(2, 3)
	c.Stalled(3)
	cycles, episodes := c.Stats()
	if cycles != 3 || episodes != 2 {
		t.Fatalf("stats = %d cycles, %d episodes; want 3, 2", cycles, episodes)
	}
	c.ResetStats()
	if cy, ep := c.Stats(); cy != 0 || ep != 0 {
		t.Fatal("ResetStats did not clear")
	}
	// In-flight state survives ResetStats.
	if !c.Stalled(4) {
		t.Fatal("in-flight branch lost by ResetStats")
	}
}

func TestPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative policy did not panic")
		}
	}()
	NewController(Policy{Threshold: -1})
}

// Property: count never goes negative and equals fetch-arms minus
// resolves of armed branches, for any interleaving.
func TestCounterQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewController(PL(2))
		live := map[uint64]bool{}
		var seq uint64
		cycle := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				seq++
				live[seq] = true
				c.OnFetch(seq, cycle)
			case 1:
				for s := range live {
					delete(live, s)
					c.OnResolve(s)
					break
				}
			case 2:
				cycle++
				c.Stalled(cycle)
			}
			if c.Count() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
