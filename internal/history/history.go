// Package history implements the branch-history registers shared by the
// predictors and confidence estimators: a global history register
// (GHR), per-branch local history (as used by PAs-style predictors and
// the Tyson pattern estimator), and a hashed path history.
//
// Bit convention: bit 0 is the most recent branch; 1 = taken. The
// perceptron code views the same bits as a ±1 input vector where
// taken = +1 and not-taken = -1 (paper §3).
package history

import "fmt"

// MaxBits is the widest history any register in this package tracks.
const MaxBits = 64

// Global is a global branch history register of up to MaxBits bits.
// The zero value is not ready for use; construct with NewGlobal.
type Global struct {
	bits uint64
	n    int
	mask uint64
}

// NewGlobal returns a GHR tracking n bits of history. It panics if
// n is outside [1, MaxBits]; history length is a design-time constant,
// so a bad value is a programming error, not an input error.
func NewGlobal(n int) *Global {
	if n < 1 || n > MaxBits {
		panic(fmt.Sprintf("history: length %d outside [1,%d]", n, MaxBits))
	}
	mask := ^uint64(0)
	if n < 64 {
		mask = (1 << uint(n)) - 1
	}
	return &Global{n: n, mask: mask}
}

// Len returns the number of history bits tracked.
func (g *Global) Len() int { return g.n }

// Bits returns the raw history; bit 0 is the most recent outcome.
func (g *Global) Bits() uint64 { return g.bits }

// Push shifts a new outcome into the history (speculative or
// committed — the caller chooses the update discipline).
func (g *Global) Push(taken bool) {
	g.bits <<= 1
	if taken {
		g.bits |= 1
	}
	g.bits &= g.mask
}

// Set overwrites the whole register, e.g. when restoring a checkpoint
// after a squash.
func (g *Global) Set(bits uint64) { g.bits = bits & g.mask }

// Bit returns history bit i (0 = most recent) as a bool.
func (g *Global) Bit(i int) bool { return g.bits>>uint(i)&1 == 1 }

// Signed returns history bit i as ±1 for perceptron input: +1 if the
// branch was taken, -1 otherwise.
func (g *Global) Signed(i int) int { return signed(g.bits, i) }

func signed(bits uint64, i int) int {
	if bits>>uint(i)&1 == 1 {
		return 1
	}
	return -1
}

// Fold XOR-folds the history down to n bits, for indexing tables whose
// size is smaller than the history length.
func (g *Global) Fold(n int) uint64 { return Fold(g.bits, g.n, n) }

// Fold XOR-folds the low `have` bits of bits into `want` bits.
func Fold(bits uint64, have, want int) uint64 {
	if want <= 0 {
		return 0
	}
	if want >= have {
		return bits & maskOf(have)
	}
	var out uint64
	for have > 0 {
		out ^= bits & maskOf(want)
		bits >>= uint(want)
		have -= want
	}
	return out & maskOf(want)
}

func maskOf(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// Local is a table of per-branch local history registers, indexed by a
// hash of the branch PC, as used by PAs predictors and the Tyson
// pattern confidence estimator.
type Local struct {
	regs []uint16
	n    int
	mask uint16
}

// NewLocal returns a table of `entries` local registers, each holding n
// bits (1..16). Entries is rounded up to a power of two.
func NewLocal(entries, n int) *Local {
	if n < 1 || n > 16 {
		panic(fmt.Sprintf("history: local length %d outside [1,16]", n))
	}
	if entries < 1 {
		panic("history: local table needs at least one entry")
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	return &Local{regs: make([]uint16, size), n: n, mask: uint16(1<<uint(n)) - 1}
}

// Len returns the per-entry history length in bits.
func (l *Local) Len() int { return l.n }

// Entries returns the number of history registers in the table.
func (l *Local) Entries() int { return len(l.regs) }

func (l *Local) index(pc uint64) int {
	return int((pc >> 2) & uint64(len(l.regs)-1))
}

// Get returns the local history register for pc.
func (l *Local) Get(pc uint64) uint16 { return l.regs[l.index(pc)] }

// Push shifts a new outcome into pc's local history.
func (l *Local) Push(pc uint64, taken bool) {
	i := l.index(pc)
	r := l.regs[i] << 1
	if taken {
		r |= 1
	}
	l.regs[i] = r & l.mask
}

// Path is a hashed path-history register: it mixes target addresses of
// recent branches rather than their directions. Some confidence work
// indexes with path history; we provide it for completeness and for
// the enhanced-JRS index variants.
type Path struct {
	hash uint64
	n    int
}

// NewPath returns a path register retaining roughly n branches of path
// information (n in [1, 32]).
func NewPath(n int) *Path {
	if n < 1 || n > 32 {
		panic(fmt.Sprintf("history: path length %d outside [1,32]", n))
	}
	return &Path{n: n}
}

// Push mixes the target of a taken control transfer into the path hash.
func (p *Path) Push(target uint64) {
	p.hash = (p.hash<<2 | p.hash>>(64-2)) ^ (target >> 2)
}

// Bits returns the current path hash.
func (p *Path) Bits() uint64 { return p.hash }

// Set overwrites the path hash (checkpoint restore).
func (p *Path) Set(h uint64) { p.hash = h }
