package history

import (
	"testing"
	"testing/quick"
)

func TestGlobalPushAndBits(t *testing.T) {
	g := NewGlobal(4)
	seq := []bool{true, false, true, true}
	for _, tk := range seq {
		g.Push(tk)
	}
	// Pushed T,N,T,T => bits (most recent = bit 0): T T N T = 1101b.
	if got := g.Bits(); got != 0b1011 {
		t.Errorf("Bits() = %04b, want 1011", got)
	}
	if !g.Bit(0) || !g.Bit(1) || g.Bit(2) || !g.Bit(3) {
		t.Errorf("Bit() disagrees with Bits(): %04b", g.Bits())
	}
	// Overflow drops the oldest bit.
	g.Push(false)
	if got := g.Bits(); got != 0b0110 {
		t.Errorf("after overflow Bits() = %04b, want 0110", got)
	}
	if g.Len() != 4 {
		t.Errorf("Len() = %d", g.Len())
	}
}

func TestGlobalSigned(t *testing.T) {
	g := NewGlobal(8)
	g.Push(true)
	g.Push(false)
	if g.Signed(0) != -1 {
		t.Errorf("Signed(0) = %d, want -1", g.Signed(0))
	}
	if g.Signed(1) != +1 {
		t.Errorf("Signed(1) = %d, want +1", g.Signed(1))
	}
	if g.Signed(7) != -1 {
		t.Errorf("Signed(7) (never pushed) = %d, want -1", g.Signed(7))
	}
}

func TestGlobalSetMasks(t *testing.T) {
	g := NewGlobal(8)
	g.Set(0xFFFF)
	if g.Bits() != 0xFF {
		t.Errorf("Set did not mask: %x", g.Bits())
	}
}

func TestGlobal64(t *testing.T) {
	g := NewGlobal(64)
	for i := 0; i < 64; i++ {
		g.Push(true)
	}
	if g.Bits() != ^uint64(0) {
		t.Errorf("64-bit GHR = %x", g.Bits())
	}
	g.Push(false)
	allButLow := ^uint64(0) - 1
	if g.Bits() != allButLow {
		t.Errorf("64-bit GHR after N = %x", g.Bits())
	}
}

func TestGlobalPanics(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGlobal(%d) did not panic", n)
				}
			}()
			NewGlobal(n)
		}()
	}
}

func TestFold(t *testing.T) {
	// Folding 16 bits to 8: low byte XOR high byte.
	got := Fold(0xAB12, 16, 8)
	if want := uint64(0xAB ^ 0x12); got != want {
		t.Errorf("Fold(0xAB12,16,8) = %x, want %x", got, want)
	}
	// want >= have is the identity on the masked bits.
	if got := Fold(0x3F, 6, 10); got != 0x3F {
		t.Errorf("Fold identity = %x", got)
	}
	if got := Fold(0xFFFF, 16, 0); got != 0 {
		t.Errorf("Fold to 0 bits = %x", got)
	}
}

// Property: Fold output always fits in `want` bits and is deterministic.
func TestFoldQuick(t *testing.T) {
	f := func(bits uint64, haveU, wantU uint8) bool {
		have := int(haveU%64) + 1
		want := int(wantU % 65)
		out := Fold(bits, have, want)
		if want < 64 && out >= 1<<uint(want) {
			return false
		}
		return out == Fold(bits, have, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pushing k outcomes into a GHR makes Bit(i) report the
// (k-1-i)-th outcome for i < k.
func TestGlobalPushQuick(t *testing.T) {
	f := func(outcomes []bool) bool {
		if len(outcomes) > 32 {
			outcomes = outcomes[:32]
		}
		g := NewGlobal(32)
		for _, o := range outcomes {
			g.Push(o)
		}
		for i := 0; i < len(outcomes); i++ {
			if g.Bit(i) != outcomes[len(outcomes)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocal(t *testing.T) {
	l := NewLocal(16, 4)
	if l.Entries() != 16 || l.Len() != 4 {
		t.Fatalf("Entries=%d Len=%d", l.Entries(), l.Len())
	}
	pcA, pcB := uint64(0x1000), uint64(0x1004) // different entries
	l.Push(pcA, true)
	l.Push(pcA, true)
	l.Push(pcB, false)
	l.Push(pcB, true)
	if got := l.Get(pcA); got != 0b11 {
		t.Errorf("Get(A) = %04b, want 0011", got)
	}
	if got := l.Get(pcB); got != 0b01 {
		t.Errorf("Get(B) = %04b, want 0001", got)
	}
	// Saturate the 4-bit register.
	for i := 0; i < 10; i++ {
		l.Push(pcA, true)
	}
	if got := l.Get(pcA); got != 0b1111 {
		t.Errorf("saturated Get(A) = %04b", got)
	}
}

func TestLocalRoundsUpEntries(t *testing.T) {
	l := NewLocal(100, 8)
	if l.Entries() != 128 {
		t.Errorf("Entries = %d, want 128", l.Entries())
	}
}

func TestLocalPanics(t *testing.T) {
	for _, tc := range []struct{ entries, n int }{{0, 4}, {16, 0}, {16, 17}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLocal(%d,%d) did not panic", tc.entries, tc.n)
				}
			}()
			NewLocal(tc.entries, tc.n)
		}()
	}
}

func TestPath(t *testing.T) {
	p := NewPath(16)
	p.Push(0x4000)
	h1 := p.Bits()
	if h1 == 0 {
		t.Error("path hash is zero after push")
	}
	p.Push(0x8000)
	if p.Bits() == h1 {
		t.Error("path hash unchanged by push")
	}
	p.Set(h1)
	if p.Bits() != h1 {
		t.Error("Set did not restore hash")
	}
	// Order matters.
	a := NewPath(16)
	a.Push(0x4000)
	a.Push(0x8000)
	b := NewPath(16)
	b.Push(0x8000)
	b.Push(0x4000)
	if a.Bits() == b.Bits() {
		t.Error("path hash is order-insensitive")
	}
}

func TestPathPanics(t *testing.T) {
	for _, n := range []int{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPath(%d) did not panic", n)
				}
			}()
			NewPath(n)
		}()
	}
}
