// Package manifest gives every sweep a canonical, machine-readable
// provenance record. A run manifest captures what was run (tool, args,
// experiment sizes, workload seeds), where (git revision, Go version,
// OS/arch), how long (wall and CPU time), and what came out (per-job
// simulation results, structured experiment results, runner live
// stats, cache hit rates) — the experiment-level analogue of the
// per-simulation telemetry layer. cmd/bcereport ingests manifests to
// render the paper-fidelity scorecard and to diff two runs for metric
// drift.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"sort"
	"strings"
	"sync"
	"time"

	"bce/internal/metrics"
	"bce/internal/prof"
	"bce/internal/runner"
)

// SchemaVersion is the manifest schema this package writes. Loaders
// reject manifests from a newer schema rather than misreading them.
const SchemaVersion = 1

// Manifest is one sweep's provenance record. Field order is the
// canonical JSON order.
type Manifest struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	// Args is the command line after the binary name.
	Args []string `json:"args,omitempty"`
	// GitRevision is the source revision the binary was built from
	// ("unknown" outside a git checkout without build info).
	GitRevision string `json:"git_revision"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	// Start is the sweep start time (RFC3339, UTC).
	Start string `json:"start"`
	// WallSeconds and CPUSeconds measure the whole invocation; CPU time
	// exceeding wall time indicates parallel speedup.
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	// ConfigFingerprint hashes tool, config, sizes and seeds: two
	// manifests with equal fingerprints measured the same
	// configuration, so their metric deltas are pure drift. Args are
	// deliberately excluded — they carry output paths and operational
	// flags (-workers, -progress) that do not change what is measured.
	ConfigFingerprint string `json:"config_fingerprint"`
	// Config holds the measurement-relevant settings the tool chose to
	// expose (experiment selection, benchmark, thresholds): the
	// fingerprint's input alongside Sizes and Seeds.
	Config map[string]string `json:"config,omitempty"`
	// Sizes records the experiment run lengths (timing sweeps).
	Sizes *Sizes `json:"sizes,omitempty"`
	// Seeds maps each workload to its deterministic base seed.
	Seeds map[string]int64 `json:"seeds,omitempty"`
	// Results holds structured experiment results keyed by experiment
	// name ("table2", "fig8", ...), marshaled by the producing tool.
	Results map[string]json.RawMessage `json:"results,omitempty"`
	// Jobs lists every simulation the sweep executed, sorted by key.
	Jobs []Job `json:"jobs,omitempty"`
	// Runner snapshots the process-wide execution counters at the end
	// of the run (retries, quarantines, cached jobs).
	Runner *runner.LiveStats `json:"runner,omitempty"`
	// Cache is the timing-result cache tally for the invocation.
	Cache *CacheStats `json:"cache,omitempty"`
	// Profiles lists the profiles captured during the run: per-window
	// digests into the content-addressed profile ring plus capture
	// metadata (see internal/prof). Operational provenance, like
	// Worker on jobs: it never feeds the config fingerprint, and
	// result comparisons ignore it — but `bcereport -compare` uses the
	// digests to attribute wall/CPU drift between two manifests when
	// handed the ring that holds them.
	Profiles []prof.Record `json:"profiles,omitempty"`
	// Notes carries small tool-specific annotations.
	Notes map[string]string `json:"notes,omitempty"`
}

// Sizes mirrors the experiment run lengths (core.Sizes) without
// importing the experiment engine.
type Sizes struct {
	Warmup      uint64 `json:"warmup"`
	Measure     uint64 `json:"measure"`
	FuncWarmup  uint64 `json:"func_warmup"`
	FuncMeasure uint64 `json:"func_measure"`
	Segments    int    `json:"segments"`
}

// CacheStats is the result-cache tally.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Job is one simulation's record: its canonical configuration key and
// its result. Exactly one of Run, Confusion or Extra is populated,
// according to the producing tool.
type Job struct {
	// Key canonicalizes the job's full configuration (the timing-cache
	// key for timing jobs).
	Key string `json:"key"`
	// Kind is "timing", "functional", or a tool-specific kind.
	Kind string `json:"kind"`
	// Bench is the benchmark (or input file) the job ran.
	Bench string `json:"bench,omitempty"`
	// Cached reports the result came from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Worker names the remote worker that executed the job, for
	// distributed sweeps (empty for in-process execution). Operational
	// provenance only: it never feeds the config fingerprint, and
	// result comparisons ignore it.
	Worker string `json:"worker,omitempty"`
	// Hits counts how many additional times the sweep requested this
	// key after the recorded execution (cache reuse within the run).
	Hits int `json:"hits,omitempty"`
	// Run is the timing-simulation result.
	Run *metrics.Run `json:"run,omitempty"`
	// Confusion is the functional-run confusion matrix.
	Confusion *metrics.Confusion `json:"confusion,omitempty"`
	// Extra holds scalar results for tool-specific job kinds.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Builder accumulates a manifest during a sweep. It is safe for
// concurrent use: sweep workers record jobs from many goroutines.
type Builder struct {
	mu    sync.Mutex
	m     Manifest
	start time.Time
	seen  map[string]int // job key -> index in m.Jobs
}

// NewBuilder starts a manifest for one tool invocation, stamping the
// environment (git revision, Go version, OS/arch) and the start time.
func NewBuilder(tool string, args []string) *Builder {
	return &Builder{
		m: Manifest{
			Schema:      SchemaVersion,
			Tool:        tool,
			Args:        args,
			GitRevision: GitRevision(),
			GoVersion:   runtime.Version(),
			OS:          runtime.GOOS,
			Arch:        runtime.GOARCH,
			Start:       time.Now().UTC().Format(time.RFC3339),
		},
		start: time.Now(),
		seen:  make(map[string]int),
	}
}

// SetSizes records the experiment run lengths.
func (b *Builder) SetSizes(s Sizes) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.Sizes = &s
}

// SetSeeds records the per-workload base seeds.
func (b *Builder) SetSeeds(seeds map[string]int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.Seeds = seeds
}

// SetConfig records one measurement-relevant setting; it feeds the
// config fingerprint (unlike Args and Notes).
func (b *Builder) SetConfig(key, value string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.m.Config == nil {
		b.m.Config = make(map[string]string)
	}
	b.m.Config[key] = value
}

// Note attaches one tool-specific annotation.
func (b *Builder) Note(key, value string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.m.Notes == nil {
		b.m.Notes = make(map[string]string)
	}
	b.m.Notes[key] = value
}

// AddJob records one completed simulation. A key seen before does not
// duplicate the job; it increments the recorded job's Hits tally (the
// sweep asked for the same configuration again and the cache served
// it). Safe for concurrent use.
func (b *Builder) AddJob(j Job) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i, ok := b.seen[j.Key]; ok {
		b.m.Jobs[i].Hits++
		return
	}
	b.seen[j.Key] = len(b.m.Jobs)
	b.m.Jobs = append(b.m.Jobs, j)
}

// AddResult stores one experiment's structured result under its name,
// marshaled to JSON. Later results under the same name replace earlier
// ones.
func (b *Builder) AddResult(name string, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("manifest: result %q: %w", name, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.m.Results == nil {
		b.m.Results = make(map[string]json.RawMessage)
	}
	b.m.Results[name] = buf
	return nil
}

// AddProfiles appends capture records from the continuous profiler.
// Call before Finish; records are kept in capture order.
func (b *Builder) AddProfiles(recs ...prof.Record) {
	if len(recs) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.Profiles = append(b.m.Profiles, recs...)
}

// Finish stamps timings, runner stats, the cache tally and the config
// fingerprint, sorts jobs by key for a deterministic layout, and
// returns the completed manifest. Call it once, after the sweep.
func (b *Builder) Finish(cacheHits, cacheMisses uint64) *Manifest {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.WallSeconds = time.Since(b.start).Seconds()
	b.m.CPUSeconds = processCPUSeconds()
	ls := runner.LiveSnapshot()
	b.m.Runner = &ls
	if cacheHits != 0 || cacheMisses != 0 {
		b.m.Cache = &CacheStats{Hits: cacheHits, Misses: cacheMisses}
	}
	sort.Slice(b.m.Jobs, func(i, j int) bool { return b.m.Jobs[i].Key < b.m.Jobs[j].Key })
	b.seen = nil // further AddJob calls would corrupt the sorted order
	b.m.ConfigFingerprint = fingerprint(b.m.Tool, b.m.Config, b.m.Sizes, b.m.Seeds)
	return &b.m
}

// WriteFile finishes the manifest and writes it as indented JSON.
func (b *Builder) WriteFile(path string, cacheHits, cacheMisses uint64) error {
	m := b.Finish(cacheHits, cacheMisses)
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// fingerprint hashes the configuration identity fields; 16 hex chars
// is plenty to compare two manifests' configurations. Go's JSON
// encoder sorts map keys, so the hash is insertion-order independent.
func fingerprint(tool string, config map[string]string, sizes *Sizes, seeds map[string]int64) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	enc.Encode(tool)   //nolint:errcheck // hash writes cannot fail
	enc.Encode(config) //nolint:errcheck
	enc.Encode(sizes)  //nolint:errcheck
	enc.Encode(seeds)  //nolint:errcheck
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the structural invariants a loaded manifest must
// satisfy before a report trusts it.
func (m *Manifest) Validate() error {
	if m.Schema < 1 || m.Schema > SchemaVersion {
		return fmt.Errorf("schema %d not in [1, %d] (regenerate the manifest or upgrade bcereport)", m.Schema, SchemaVersion)
	}
	if m.Tool == "" {
		return fmt.Errorf("missing tool")
	}
	seen := make(map[string]struct{}, len(m.Jobs))
	for i, j := range m.Jobs {
		if j.Key == "" {
			return fmt.Errorf("job %d: empty key", i)
		}
		if _, dup := seen[j.Key]; dup {
			return fmt.Errorf("job %d: duplicate key %q", i, j.Key)
		}
		seen[j.Key] = struct{}{}
		if j.Kind == "" {
			return fmt.Errorf("job %q: empty kind", j.Key)
		}
	}
	return nil
}

// Result unmarshals the named experiment result into out, reporting
// whether the manifest carries it.
func (m *Manifest) Result(name string, out any) (bool, error) {
	raw, ok := m.Results[name]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("manifest: result %q: %w", name, err)
	}
	return true, nil
}

// processCPUSeconds reads the process's total CPU time from the
// runtime metrics (user+system, all Ps). Zero if unavailable.
func processCPUSeconds() float64 {
	sample := []rtmetrics.Sample{{Name: "/cpu/classes/total:cpu-seconds"}}
	rtmetrics.Read(sample)
	if sample[0].Value.Kind() != rtmetrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

// GitRevision returns the current source revision: the VCS stamp from
// build info when present (go build in a git checkout), otherwise `git
// rev-parse HEAD` run in the working directory, otherwise "unknown".
func GitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				return rev + "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// ShortRevision returns GitRevision truncated to 12 characters, the
// form file names use (BENCH_<rev>.json).
func ShortRevision() string {
	rev := GitRevision()
	rev = strings.TrimSuffix(rev, "-dirty")
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev
}
