package manifest

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bce/internal/metrics"
)

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("bcetest", []string{"-exp", "table2"})
	b.SetSizes(Sizes{Warmup: 10, Measure: 20, FuncWarmup: 30, FuncMeasure: 40, Segments: 2})
	b.SetSeeds(map[string]int64{"gzip": 1, "vpr": 2})
	b.Note("quick", "true")
	b.AddJob(Job{Key: "k2", Kind: "timing", Bench: "vpr", Run: &metrics.Run{Cycles: 7}})
	b.AddJob(Job{Key: "k1", Kind: "timing", Bench: "gzip", Cached: true, Run: &metrics.Run{Cycles: 5}})
	b.AddJob(Job{Key: "k1", Kind: "timing", Bench: "gzip"}) // repeat: counts as a hit
	if err := b.AddResult("table2", map[string]float64{"avg": 3.5}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := b.WriteFile(path, 3, 4); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if m.Schema != SchemaVersion || m.Tool != "bcetest" {
		t.Errorf("header = %d/%q", m.Schema, m.Tool)
	}
	if m.GitRevision == "" || m.GoVersion == "" || m.Start == "" {
		t.Errorf("missing environment stamp: %+v", m)
	}
	if len(m.Jobs) != 2 || m.Jobs[0].Key != "k1" || m.Jobs[1].Key != "k2" {
		t.Fatalf("jobs not deduped+sorted: %+v", m.Jobs)
	}
	if m.Jobs[0].Hits != 1 || m.Jobs[1].Hits != 0 {
		t.Errorf("hits = %d, %d; want 1, 0", m.Jobs[0].Hits, m.Jobs[1].Hits)
	}
	if m.Jobs[0].Run == nil || m.Jobs[0].Run.Cycles != 5 {
		t.Errorf("job run lost: %+v", m.Jobs[0].Run)
	}
	if m.Cache == nil || m.Cache.Hits != 3 || m.Cache.Misses != 4 {
		t.Errorf("cache = %+v", m.Cache)
	}
	if m.ConfigFingerprint == "" || len(m.ConfigFingerprint) != 16 {
		t.Errorf("fingerprint = %q", m.ConfigFingerprint)
	}
	var table2 map[string]float64
	ok, err := m.Result("table2", &table2)
	if err != nil || !ok || table2["avg"] != 3.5 {
		t.Errorf("result table2 = %v %v %v", table2, ok, err)
	}
	if ok, _ := m.Result("absent", &table2); ok {
		t.Error("absent result reported present")
	}
}

// TestFingerprintTracksConfig checks equal configurations fingerprint
// equally and any config change moves the fingerprint.
func TestFingerprintTracksConfig(t *testing.T) {
	base := func(args ...string) *Builder {
		b := NewBuilder("tool", args)
		b.SetSizes(Sizes{Warmup: 1})
		b.SetSeeds(map[string]int64{"x": 1})
		b.SetConfig("exp", "table2")
		return b
	}
	f1 := base("-a").Finish(0, 0).ConfigFingerprint
	f2 := base("-a").Finish(0, 0).ConfigFingerprint
	if f1 != f2 {
		t.Errorf("identical configs fingerprint differently: %q vs %q", f1, f2)
	}
	// Args carry operational noise (output paths, -workers); they must
	// NOT move the fingerprint.
	if f := base("-manifest", "other.json").Finish(0, 0).ConfigFingerprint; f != f1 {
		t.Error("args changed the fingerprint (output paths are not configuration)")
	}
	b := base("-a")
	b.SetSizes(Sizes{Warmup: 2})
	if f3 := b.Finish(0, 0).ConfigFingerprint; f3 == f1 {
		t.Error("changed sizes did not change fingerprint")
	}
	b = base("-a")
	b.SetConfig("exp", "table3")
	if f4 := b.Finish(0, 0).ConfigFingerprint; f4 == f1 {
		t.Error("changed config did not change fingerprint")
	}
}

// TestFingerprintGolden pins the fingerprint algorithm itself. The
// hashes below are part of the manifest contract: bcereport compares
// fingerprints across runs from different builds, so an accidental
// change to the hash inputs or encoding would silently mark every
// historical manifest as "different configuration". If this test fails
// because the algorithm changed on purpose, bump the manifest
// SchemaVersion and regenerate the goldens.
func TestFingerprintGolden(t *testing.T) {
	cfg := map[string]string{"experiment": "table4", "bench": "all", "predictor": "bimodal-gshare"}
	sz := &Sizes{Warmup: 10000, Measure: 30000, FuncWarmup: 20000, FuncMeasure: 60000, Segments: 2}
	seeds := map[string]int64{"gzip": 42, "gcc": 43, "vortex": 44}

	if got, want := fingerprint("bcetables", cfg, sz, seeds), "ad928e4acb7e3e3a"; got != want {
		t.Errorf("fingerprint = %q, want golden %q", got, want)
	}
	if got, want := fingerprint("bcetables", nil, nil, nil), "c3c06b1cc94dae67"; got != want {
		t.Errorf("nil-field fingerprint = %q, want golden %q", got, want)
	}

	// Map insertion order must not matter (Go's JSON encoder sorts
	// keys; this pins that the implementation keeps relying on an
	// order-canonicalizing encoding).
	reordered := map[string]string{"predictor": "bimodal-gshare", "bench": "all", "experiment": "table4"}
	reseeds := map[string]int64{"vortex": 44, "gcc": 43, "gzip": 42}
	if got := fingerprint("bcetables", reordered, sz, reseeds); got != "ad928e4acb7e3e3a" {
		t.Errorf("field reordering moved the fingerprint: %q", got)
	}

	// Every identity field must feed the hash.
	if fingerprint("bcereport", cfg, sz, seeds) == "ad928e4acb7e3e3a" {
		t.Error("tool does not feed the fingerprint")
	}
	cfg2 := map[string]string{"experiment": "table4", "bench": "all", "predictor": "gshare-perceptron"}
	if fingerprint("bcetables", cfg2, sz, seeds) == "ad928e4acb7e3e3a" {
		t.Error("config does not feed the fingerprint")
	}
	sz2 := *sz
	sz2.Segments = 1
	if fingerprint("bcetables", cfg, &sz2, seeds) == "ad928e4acb7e3e3a" {
		t.Error("sizes do not feed the fingerprint")
	}
	seeds2 := map[string]int64{"gzip": 42, "gcc": 43, "vortex": 45}
	if fingerprint("bcetables", cfg, sz, seeds2) == "ad928e4acb7e3e3a" {
		t.Error("seeds do not feed the fingerprint")
	}
}

// TestFingerprintIgnoresOperationalFields: job-level provenance (the
// executing worker, cache flags) and invocation args describe how a
// sweep ran, not what it measured — two runs differing only there must
// fingerprint identically.
func TestFingerprintIgnoresOperationalFields(t *testing.T) {
	build := func(args []string, worker string) string {
		b := NewBuilder("tool", args)
		b.SetSizes(Sizes{Warmup: 100, Measure: 200})
		b.SetConfig("exp", "table4")
		b.AddJob(Job{Key: "k", Kind: "timing", Bench: "gzip", Worker: worker})
		return b.Finish(0, 0).ConfigFingerprint
	}
	local := build([]string{"-quick"}, "")
	remote := build([]string{"-quick", "-workers-remote", "http://a:1,http://b:2"}, "worker-1")
	if local != remote {
		t.Errorf("distributed execution moved the fingerprint: %q vs %q", local, remote)
	}
}

func TestBuilderConcurrentAddJob(t *testing.T) {
	b := NewBuilder("tool", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.AddJob(Job{Key: strings.Repeat("k", i%10+1), Kind: "timing"})
			}
		}(g)
	}
	wg.Wait()
	m := b.Finish(0, 0)
	if len(m.Jobs) != 10 {
		t.Fatalf("got %d unique jobs, want 10", len(m.Jobs))
	}
	hits := 0
	for _, j := range m.Jobs {
		hits += j.Hits
	}
	if hits != 8*100-10 {
		t.Errorf("total hits = %d, want %d", hits, 8*100-10)
	}
}

func TestValidateRejectsBadManifests(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
		want string
	}{
		{"future schema", Manifest{Schema: SchemaVersion + 1, Tool: "t"}, "schema"},
		{"zero schema", Manifest{Tool: "t"}, "schema"},
		{"no tool", Manifest{Schema: 1}, "tool"},
		{"empty key", Manifest{Schema: 1, Tool: "t", Jobs: []Job{{Kind: "timing"}}}, "empty key"},
		{"dup key", Manifest{Schema: 1, Tool: "t", Jobs: []Job{
			{Key: "k", Kind: "timing"}, {Key: "k", Kind: "timing"}}}, "duplicate"},
		{"no kind", Manifest{Schema: 1, Tool: "t", Jobs: []Job{{Key: "k"}}}, "kind"},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := Manifest{Schema: 1, Tool: "t", Jobs: []Job{{Key: "k", Kind: "timing"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

// TestManifestJSONDeterministic checks two manifests built from the
// same inputs marshal identically once volatile fields are cleared —
// the property the fidelity scorecard's byte-stability rests on.
func TestManifestJSONDeterministic(t *testing.T) {
	build := func() []byte {
		b := NewBuilder("tool", []string{"-exp", "all"})
		b.SetSeeds(map[string]int64{"gzip": 3, "mcf": 9, "vpr": 5})
		b.AddJob(Job{Key: "b", Kind: "timing", Bench: "mcf"})
		b.AddJob(Job{Key: "a", Kind: "timing", Bench: "gzip"})
		if err := b.AddResult("t", map[string]int{"z": 1, "a": 2}); err != nil {
			t.Fatal(err)
		}
		m := b.Finish(1, 2)
		m.Start, m.WallSeconds, m.CPUSeconds = "", 0, 0
		m.Runner = nil
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, bb := build(), build()
	if string(a) != string(bb) {
		t.Errorf("manifest JSON not deterministic:\n%s\n%s", a, bb)
	}
}
