package manifest

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bce/internal/metrics"
)

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("bcetest", []string{"-exp", "table2"})
	b.SetSizes(Sizes{Warmup: 10, Measure: 20, FuncWarmup: 30, FuncMeasure: 40, Segments: 2})
	b.SetSeeds(map[string]int64{"gzip": 1, "vpr": 2})
	b.Note("quick", "true")
	b.AddJob(Job{Key: "k2", Kind: "timing", Bench: "vpr", Run: &metrics.Run{Cycles: 7}})
	b.AddJob(Job{Key: "k1", Kind: "timing", Bench: "gzip", Cached: true, Run: &metrics.Run{Cycles: 5}})
	b.AddJob(Job{Key: "k1", Kind: "timing", Bench: "gzip"}) // repeat: counts as a hit
	if err := b.AddResult("table2", map[string]float64{"avg": 3.5}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := b.WriteFile(path, 3, 4); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if m.Schema != SchemaVersion || m.Tool != "bcetest" {
		t.Errorf("header = %d/%q", m.Schema, m.Tool)
	}
	if m.GitRevision == "" || m.GoVersion == "" || m.Start == "" {
		t.Errorf("missing environment stamp: %+v", m)
	}
	if len(m.Jobs) != 2 || m.Jobs[0].Key != "k1" || m.Jobs[1].Key != "k2" {
		t.Fatalf("jobs not deduped+sorted: %+v", m.Jobs)
	}
	if m.Jobs[0].Hits != 1 || m.Jobs[1].Hits != 0 {
		t.Errorf("hits = %d, %d; want 1, 0", m.Jobs[0].Hits, m.Jobs[1].Hits)
	}
	if m.Jobs[0].Run == nil || m.Jobs[0].Run.Cycles != 5 {
		t.Errorf("job run lost: %+v", m.Jobs[0].Run)
	}
	if m.Cache == nil || m.Cache.Hits != 3 || m.Cache.Misses != 4 {
		t.Errorf("cache = %+v", m.Cache)
	}
	if m.ConfigFingerprint == "" || len(m.ConfigFingerprint) != 16 {
		t.Errorf("fingerprint = %q", m.ConfigFingerprint)
	}
	var table2 map[string]float64
	ok, err := m.Result("table2", &table2)
	if err != nil || !ok || table2["avg"] != 3.5 {
		t.Errorf("result table2 = %v %v %v", table2, ok, err)
	}
	if ok, _ := m.Result("absent", &table2); ok {
		t.Error("absent result reported present")
	}
}

// TestFingerprintTracksConfig checks equal configurations fingerprint
// equally and any config change moves the fingerprint.
func TestFingerprintTracksConfig(t *testing.T) {
	base := func(args ...string) *Builder {
		b := NewBuilder("tool", args)
		b.SetSizes(Sizes{Warmup: 1})
		b.SetSeeds(map[string]int64{"x": 1})
		b.SetConfig("exp", "table2")
		return b
	}
	f1 := base("-a").Finish(0, 0).ConfigFingerprint
	f2 := base("-a").Finish(0, 0).ConfigFingerprint
	if f1 != f2 {
		t.Errorf("identical configs fingerprint differently: %q vs %q", f1, f2)
	}
	// Args carry operational noise (output paths, -workers); they must
	// NOT move the fingerprint.
	if f := base("-manifest", "other.json").Finish(0, 0).ConfigFingerprint; f != f1 {
		t.Error("args changed the fingerprint (output paths are not configuration)")
	}
	b := base("-a")
	b.SetSizes(Sizes{Warmup: 2})
	if f3 := b.Finish(0, 0).ConfigFingerprint; f3 == f1 {
		t.Error("changed sizes did not change fingerprint")
	}
	b = base("-a")
	b.SetConfig("exp", "table3")
	if f4 := b.Finish(0, 0).ConfigFingerprint; f4 == f1 {
		t.Error("changed config did not change fingerprint")
	}
}

func TestBuilderConcurrentAddJob(t *testing.T) {
	b := NewBuilder("tool", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.AddJob(Job{Key: strings.Repeat("k", i%10+1), Kind: "timing"})
			}
		}(g)
	}
	wg.Wait()
	m := b.Finish(0, 0)
	if len(m.Jobs) != 10 {
		t.Fatalf("got %d unique jobs, want 10", len(m.Jobs))
	}
	hits := 0
	for _, j := range m.Jobs {
		hits += j.Hits
	}
	if hits != 8*100-10 {
		t.Errorf("total hits = %d, want %d", hits, 8*100-10)
	}
}

func TestValidateRejectsBadManifests(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
		want string
	}{
		{"future schema", Manifest{Schema: SchemaVersion + 1, Tool: "t"}, "schema"},
		{"zero schema", Manifest{Tool: "t"}, "schema"},
		{"no tool", Manifest{Schema: 1}, "tool"},
		{"empty key", Manifest{Schema: 1, Tool: "t", Jobs: []Job{{Kind: "timing"}}}, "empty key"},
		{"dup key", Manifest{Schema: 1, Tool: "t", Jobs: []Job{
			{Key: "k", Kind: "timing"}, {Key: "k", Kind: "timing"}}}, "duplicate"},
		{"no kind", Manifest{Schema: 1, Tool: "t", Jobs: []Job{{Key: "k"}}}, "kind"},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := Manifest{Schema: 1, Tool: "t", Jobs: []Job{{Key: "k", Kind: "timing"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

// TestManifestJSONDeterministic checks two manifests built from the
// same inputs marshal identically once volatile fields are cleared —
// the property the fidelity scorecard's byte-stability rests on.
func TestManifestJSONDeterministic(t *testing.T) {
	build := func() []byte {
		b := NewBuilder("tool", []string{"-exp", "all"})
		b.SetSeeds(map[string]int64{"gzip": 3, "mcf": 9, "vpr": 5})
		b.AddJob(Job{Key: "b", Kind: "timing", Bench: "mcf"})
		b.AddJob(Job{Key: "a", Kind: "timing", Bench: "gzip"})
		if err := b.AddResult("t", map[string]int{"z": 1, "a": 2}); err != nil {
			t.Fatal(err)
		}
		m := b.Finish(1, 2)
		m.Start, m.WallSeconds, m.CPUSeconds = "", 0, 0
		m.Runner = nil
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, bb := build(), build()
	if string(a) != string(bb) {
		t.Errorf("manifest JSON not deterministic:\n%s\n%s", a, bb)
	}
}
