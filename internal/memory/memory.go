// Package memory models the off-chip side of the machine: a bandwidth-
// limited memory bus with queueing delay. The paper's simulator "fully
// models buses and bus contention" (§4); this is the corresponding
// piece of our substrate — requests that arrive while the bus is busy
// wait for it.
package memory

import "fmt"

// BusConfig parameterizes the bus.
type BusConfig struct {
	// OccupancyCycles is how long one cache-line transfer holds the
	// bus. Default 8 (64 bytes at 8 bytes/cycle).
	OccupancyCycles int
	// MaxQueue bounds the modeled backlog; beyond it, extra waiters
	// still serialize but the model stops growing the queue (keeps
	// pathological address streams from producing unbounded waits).
	// Default 64 entries.
	MaxQueue int
}

// Bus serializes line transfers. The zero value is unusable; call
// NewBus.
type Bus struct {
	nextFree  uint64
	occupancy uint64
	maxDepth  uint64
	transfers uint64
	waitTotal uint64
}

// NewBus returns a bus; zero config fields take defaults.
func NewBus(cfg BusConfig) *Bus {
	if cfg.OccupancyCycles == 0 {
		cfg.OccupancyCycles = 8
	}
	if cfg.OccupancyCycles < 1 {
		panic(fmt.Sprintf("memory: bus occupancy %d < 1", cfg.OccupancyCycles))
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxQueue < 1 {
		panic(fmt.Sprintf("memory: bus queue %d < 1", cfg.MaxQueue))
	}
	return &Bus{
		occupancy: uint64(cfg.OccupancyCycles),
		maxDepth:  uint64(cfg.MaxQueue) * uint64(cfg.OccupancyCycles),
	}
}

// Occupy schedules one line transfer issued at the given cycle and
// returns the queueing delay in cycles (0 when the bus is idle).
// Cycles must be non-decreasing across calls; a stale cycle is treated
// as the current front of the queue.
func (b *Bus) Occupy(cycle uint64) int {
	start := cycle
	if b.nextFree > start {
		start = b.nextFree
	}
	// Clamp runaway backlog.
	if start > cycle+b.maxDepth {
		start = cycle + b.maxDepth
	}
	wait := start - cycle
	b.nextFree = start + b.occupancy
	b.transfers++
	b.waitTotal += wait
	return int(wait)
}

// Stats returns the number of transfers and the cumulative queueing
// delay.
func (b *Bus) Stats() (transfers, waitCycles uint64) { return b.transfers, b.waitTotal }

// Reset clears bus state and statistics.
func (b *Bus) Reset() { *b = Bus{occupancy: b.occupancy, maxDepth: b.maxDepth} }
