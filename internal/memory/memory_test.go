package memory

import (
	"testing"
	"testing/quick"
)

func TestBusIdleNoWait(t *testing.T) {
	b := NewBus(BusConfig{})
	if w := b.Occupy(100); w != 0 {
		t.Errorf("idle bus wait = %d", w)
	}
	// Far-future request: still no wait.
	if w := b.Occupy(10000); w != 0 {
		t.Errorf("idle bus wait = %d", w)
	}
}

func TestBusContention(t *testing.T) {
	b := NewBus(BusConfig{OccupancyCycles: 8})
	b.Occupy(0)
	// Second transfer at cycle 0 waits for the first's occupancy.
	if w := b.Occupy(0); w != 8 {
		t.Errorf("back-to-back wait = %d, want 8", w)
	}
	if w := b.Occupy(0); w != 16 {
		t.Errorf("third wait = %d, want 16", w)
	}
	// A transfer after the backlog drains waits nothing.
	if w := b.Occupy(100); w != 0 {
		t.Errorf("post-drain wait = %d", w)
	}
}

func TestBusQueueClamp(t *testing.T) {
	b := NewBus(BusConfig{OccupancyCycles: 8, MaxQueue: 4})
	for i := 0; i < 100; i++ {
		if w := b.Occupy(0); w > 4*8 {
			t.Fatalf("wait %d exceeded clamp", w)
		}
	}
}

func TestBusStatsAndReset(t *testing.T) {
	b := NewBus(BusConfig{OccupancyCycles: 4})
	b.Occupy(0)
	b.Occupy(0)
	n, wait := b.Stats()
	if n != 2 || wait != 4 {
		t.Errorf("stats = %d/%d", n, wait)
	}
	b.Reset()
	if n, wait = b.Stats(); n != 0 || wait != 0 {
		t.Error("stats survived Reset")
	}
	if w := b.Occupy(0); w != 0 {
		t.Error("backlog survived Reset")
	}
}

func TestBusPanics(t *testing.T) {
	for _, cfg := range []BusConfig{{OccupancyCycles: -1}, {MaxQueue: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBus(%+v) did not panic", cfg)
				}
			}()
			NewBus(cfg)
		}()
	}
}

// Property: waits are always non-negative and bounded by the clamp,
// for any non-decreasing arrival sequence.
func TestBusQuick(t *testing.T) {
	f := func(gaps []uint8) bool {
		b := NewBus(BusConfig{OccupancyCycles: 8, MaxQueue: 16})
		cycle := uint64(0)
		for _, g := range gaps {
			cycle += uint64(g)
			w := b.Occupy(cycle)
			if w < 0 || w > 16*8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
