package metrics

// Result-key hashing for content-addressed experiment caching.
//
// Every experiment in this repository is a pure function of its
// configuration (machine, predictor, estimator, workload profile,
// gating policy, run sizes): rerunning the same configuration yields
// bit-identical counters. That makes results content-addressable — a
// stable hash of the canonical configuration string identifies the Run
// it produces, across goroutines, worker counts and process
// invocations alike. The runner package builds its cache keys and its
// deterministic per-job RNG seeds from these hashes.

// Fingerprint returns the 64-bit FNV-1a hash of the canonical key
// string. FNV-1a is stable across platforms and Go versions (unlike
// maphash), which on-disk cache filenames require.
func Fingerprint(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// SeedFrom derives a deterministic RNG seed from a canonical key
// string. Jobs that seed randomness this way produce bit-identical
// results regardless of worker count or scheduling order, because the
// seed depends only on the job's identity, never on execution order.
// The hash is folded to keep the seed non-negative (rand.NewSource
// accepts any int64, but non-negative seeds print legibly in logs).
func SeedFrom(key string) int64 {
	h := Fingerprint(key)
	return int64(h &^ (1 << 63))
}
