package metrics

import "testing"

func TestFingerprintKnownVectors(t *testing.T) {
	// FNV-1a 64-bit reference vectors; these must never change, or
	// every on-disk cache entry in the world silently invalidates.
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 14695981039346656037},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := Fingerprint(c.in); got != c.want {
			t.Errorf("Fingerprint(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	if Fingerprint("bench=gzip") == Fingerprint("bench=mcf") {
		t.Error("distinct keys collided")
	}
}

func TestSeedFromStableAndNonNegative(t *testing.T) {
	a := SeedFrom("timing|gzip|seg=0")
	if a != SeedFrom("timing|gzip|seg=0") {
		t.Error("seed not stable")
	}
	if a < 0 {
		t.Errorf("seed negative: %d", a)
	}
	if a == SeedFrom("timing|gzip|seg=1") {
		t.Error("segment change did not move seed")
	}
}
