package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

// walkCounters visits every numeric leaf field of a Run (recursing
// into nested structs like Confusion) and calls fn with a path label
// and an addressable reflect.Value. It fails the test on any field
// type it does not understand, so adding a non-counter field to Run
// forces a conscious decision about how Merge should treat it.
func walkCounters(t *testing.T, path string, v reflect.Value, fn func(path string, v reflect.Value)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			walkCounters(t, path+"."+f.Name, v.Field(i), fn)
		}
	case reflect.Uint64:
		fn(path, v)
	default:
		t.Fatalf("field %s has kind %s: teach walkCounters (and Run.Merge!) about it", path, v.Kind())
	}
}

// TestMergeEqualsFieldwiseSum checks that merging N segment Runs is
// exactly the field-wise sum over every counter, including the nested
// Confusion matrix — and, via walkCounters, that no Run field can be
// silently skipped by Merge when the struct grows.
func TestMergeEqualsFieldwiseSum(t *testing.T) {
	const n = 4
	// Give every field of every segment a distinct value so a dropped
	// or transposed field cannot cancel out.
	segs := make([]Run, n)
	for s := range segs {
		i := uint64(0)
		walkCounters(t, "Run", reflect.ValueOf(&segs[s]).Elem(), func(path string, v reflect.Value) {
			i++
			v.SetUint(uint64(s+1) * (100 + i))
		})
	}

	var merged Run
	for _, s := range segs {
		merged.Merge(s)
	}

	var want Run
	i := uint64(0)
	walkCounters(t, "Run", reflect.ValueOf(&want).Elem(), func(path string, v reflect.Value) {
		i++
		var sum uint64
		for s := 0; s < n; s++ {
			sum += uint64(s+1) * (100 + i)
		}
		v.SetUint(sum)
	})

	got := reflect.ValueOf(&merged).Elem()
	walkCounters(t, "Run", reflect.ValueOf(&want).Elem(), func(path string, v reflect.Value) {
		g := got
		for _, field := range splitPath(path) {
			g = g.FieldByName(field)
		}
		if g.Uint() != v.Uint() {
			t.Errorf("%s: merged %d, want field-wise sum %d (Merge dropped or miscombined it)",
				path, g.Uint(), v.Uint())
		}
	})
}

// TestRunJSONCoversEveryField checks that the canonical JSON encoding
// round-trips every counter field, including any added later: a field
// tagged `json:"-"` (or shadowed by a duplicate key) would silently
// drop out of run manifests and the on-disk result cache, and this
// test is what fails first.
func TestRunJSONCoversEveryField(t *testing.T) {
	var r Run
	i := uint64(0)
	walkCounters(t, "Run", reflect.ValueOf(&r).Elem(), func(path string, v reflect.Value) {
		i++
		v.SetUint(1000 + i)
	})
	buf, err := r.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("JSON round trip lost fields:\n  in  %+v\n  out %+v", r, back)
	}
}

func splitPath(path string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '.' {
			if seg := path[start:i]; seg != "" && seg != "Run" {
				out = append(out, seg)
			}
			start = i + 1
		}
	}
	return out
}

// TestMergeZeroIsIdentity checks merging a zero Run changes nothing.
func TestMergeZeroIsIdentity(t *testing.T) {
	r := Run{Cycles: 7, Executed: 9, Confusion: Confusion{WrongLow: 3}}
	want := r
	r.Merge(Run{})
	if r != want {
		t.Errorf("merge with zero changed run: %+v != %+v", r, want)
	}
}
