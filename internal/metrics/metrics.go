// Package metrics implements the measurement machinery the paper
// reports with: the confidence confusion matrix and its derived
// statistics (Spec, PVN, sensitivity, PVP — §2.2, after Grunwald et
// al.), output density functions for the perceptron estimators
// (Figures 4-7), and the uop/cycle accounting used for the pipeline
// gating results (Tables 2 and 4-6, Figures 8-9).
package metrics

import (
	"fmt"
	"strings"
)

// Confusion tallies confidence estimates against prediction outcomes
// for retired conditional branches. In Grunwald et al.'s terminology a
// low-confidence estimate is a "negative test" for the prediction.
type Confusion struct {
	// CorrectHigh counts correctly predicted branches estimated high
	// confidence (true positives of the "prediction is right" test).
	CorrectHigh uint64
	// CorrectLow counts correctly predicted branches estimated low
	// confidence (the false alarms that cause needless gating).
	CorrectLow uint64
	// WrongHigh counts mispredicted branches estimated high confidence
	// (missed coverage).
	WrongHigh uint64
	// WrongLow counts mispredicted branches estimated low confidence
	// (the wins).
	WrongLow uint64
}

// Add records one retired conditional branch.
func (c *Confusion) Add(mispredicted, lowConfidence bool) {
	switch {
	case mispredicted && lowConfidence:
		c.WrongLow++
	case mispredicted:
		c.WrongHigh++
	case lowConfidence:
		c.CorrectLow++
	default:
		c.CorrectHigh++
	}
}

// Merge accumulates another confusion matrix into c.
func (c *Confusion) Merge(o Confusion) {
	c.CorrectHigh += o.CorrectHigh
	c.CorrectLow += o.CorrectLow
	c.WrongHigh += o.WrongHigh
	c.WrongLow += o.WrongLow
}

// Branches returns the total branch count.
func (c Confusion) Branches() uint64 {
	return c.CorrectHigh + c.CorrectLow + c.WrongHigh + c.WrongLow
}

// Mispredicted returns the total mispredicted-branch count.
func (c Confusion) Mispredicted() uint64 { return c.WrongHigh + c.WrongLow }

// MispredictRate returns mispredicted / total branches.
func (c Confusion) MispredictRate() float64 {
	return ratio(c.Mispredicted(), c.Branches())
}

// PVN is the predictive value of a negative test: the probability a
// low-confidence estimate is correct, WrongLow/(WrongLow+CorrectLow).
// The paper calls this "accuracy".
func (c Confusion) PVN() float64 {
	return ratio(c.WrongLow, c.WrongLow+c.CorrectLow)
}

// Spec is specificity: the fraction of mispredicted branches flagged
// low confidence, WrongLow/(WrongLow+WrongHigh). The paper calls this
// "coverage".
func (c Confusion) Spec() float64 {
	return ratio(c.WrongLow, c.Mispredicted())
}

// Sens is sensitivity: the fraction of correctly predicted branches
// flagged high confidence.
func (c Confusion) Sens() float64 {
	return ratio(c.CorrectHigh, c.CorrectHigh+c.CorrectLow)
}

// PVP is the predictive value of a positive (high-confidence) test.
func (c Confusion) PVP() float64 {
	return ratio(c.CorrectHigh, c.CorrectHigh+c.WrongHigh)
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders the derived statistics compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("branches=%d misp=%.2f%% PVN=%.1f%% Spec=%.1f%% Sens=%.1f%% PVP=%.1f%%",
		c.Branches(), 100*c.MispredictRate(), 100*c.PVN(), 100*c.Spec(), 100*c.Sens(), 100*c.PVP())
}

// Histogram is a fixed-bin-width histogram over a signed integer
// domain, used for the perceptron output density functions.
type Histogram struct {
	bins       []uint64
	lo, hi     int // inclusive value range covered by bins
	width      int
	underflow  uint64
	overflow   uint64
	totalCount uint64
}

// NewHistogram covers [lo, hi] with bins of the given width. Values
// outside the range land in underflow/overflow tallies.
func NewHistogram(lo, hi, width int) *Histogram {
	if width < 1 {
		panic(fmt.Sprintf("metrics: histogram bin width %d < 1", width))
	}
	if hi < lo {
		panic(fmt.Sprintf("metrics: histogram range [%d,%d] inverted", lo, hi))
	}
	n := (hi-lo)/width + 1
	return &Histogram{bins: make([]uint64, n), lo: lo, hi: hi, width: width}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.totalCount++
	switch {
	case v < h.lo:
		h.underflow++
	case v > h.hi:
		h.overflow++
	default:
		h.bins[(v-h.lo)/h.width]++
	}
}

// Merge accumulates another histogram with identical geometry; it
// panics on a geometry mismatch (merging across experiments is a
// programming error).
func (h *Histogram) Merge(o *Histogram) {
	if o.lo != h.lo || o.hi != h.hi || o.width != h.width {
		panic(fmt.Sprintf("metrics: merging histograms [%d,%d]/%d and [%d,%d]/%d",
			h.lo, h.hi, h.width, o.lo, o.hi, o.width))
	}
	for i := range h.bins {
		h.bins[i] += o.bins[i]
	}
	h.underflow += o.underflow
	h.overflow += o.overflow
	h.totalCount += o.totalCount
}

// Total returns the number of observations including out-of-range.
func (h *Histogram) Total() uint64 { return h.totalCount }

// Bins returns the bin counts; bin i covers [BinLo(i), BinLo(i)+width).
func (h *Histogram) Bins() []uint64 { return h.bins }

// BinLo returns the inclusive lower edge of bin i.
func (h *Histogram) BinLo(i int) int { return h.lo + i*h.width }

// OutOfRange returns the underflow and overflow tallies.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.underflow, h.overflow }

// Count returns observations that fell inside [lo, hi], split at the
// given value: below (v < split) and at-or-above.
func (h *Histogram) Count(split int) (below, atOrAbove uint64) {
	for i, n := range h.bins {
		if h.BinLo(i)+h.width <= split {
			below += n
		} else if h.BinLo(i) >= split {
			atOrAbove += n
		} else {
			// Split falls inside this bin; apportion the whole bin to
			// the side holding the bin's lower edge (bins are narrow
			// in practice).
			below += n
		}
	}
	return below, atOrAbove
}

// CSV renders "bin_lo,count" lines, the regeneration format for the
// density figures.
func (h *Histogram) CSV() string {
	var b strings.Builder
	for i, n := range h.bins {
		fmt.Fprintf(&b, "%d,%d\n", h.BinLo(i), n)
	}
	return b.String()
}

// ASCII renders a quick side-scrolling plot: one row per bin, bar
// length proportional to count, for terminal inspection of the
// density functions.
func (h *Histogram) ASCII(maxWidth int) string {
	if maxWidth < 1 {
		maxWidth = 60
	}
	var peak uint64
	for _, n := range h.bins {
		if n > peak {
			peak = n
		}
	}
	if peak == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, n := range h.bins {
		bar := int(n * uint64(maxWidth) / peak)
		fmt.Fprintf(&b, "%6d |%s %d\n", h.BinLo(i), strings.Repeat("#", bar), n)
	}
	return b.String()
}
