package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConfusionDerived(t *testing.T) {
	var c Confusion
	// 10 mispredicted-low, 5 mispredicted-high, 10 correct-low, 75
	// correct-high.
	for i := 0; i < 10; i++ {
		c.Add(true, true)
	}
	for i := 0; i < 5; i++ {
		c.Add(true, false)
	}
	for i := 0; i < 10; i++ {
		c.Add(false, true)
	}
	for i := 0; i < 75; i++ {
		c.Add(false, false)
	}
	if c.Branches() != 100 || c.Mispredicted() != 15 {
		t.Fatalf("counts: %+v", c)
	}
	if !almost(c.PVN(), 0.5) {
		t.Errorf("PVN = %v, want 0.5", c.PVN())
	}
	if !almost(c.Spec(), 10.0/15) {
		t.Errorf("Spec = %v", c.Spec())
	}
	if !almost(c.Sens(), 75.0/85) {
		t.Errorf("Sens = %v", c.Sens())
	}
	if !almost(c.PVP(), 75.0/80) {
		t.Errorf("PVP = %v", c.PVP())
	}
	if !almost(c.MispredictRate(), 0.15) {
		t.Errorf("MispredictRate = %v", c.MispredictRate())
	}
	if !strings.Contains(c.String(), "PVN=50.0%") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	for _, v := range []float64{c.PVN(), c.Spec(), c.Sens(), c.PVP(), c.MispredictRate()} {
		if v != 0 {
			t.Error("empty confusion produced NaN-adjacent value")
		}
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{CorrectHigh: 1, CorrectLow: 2, WrongHigh: 3, WrongLow: 4}
	b := Confusion{CorrectHigh: 10, CorrectLow: 20, WrongHigh: 30, WrongLow: 40}
	a.Merge(b)
	if a.CorrectHigh != 11 || a.CorrectLow != 22 || a.WrongHigh != 33 || a.WrongLow != 44 {
		t.Fatalf("merged = %+v", a)
	}
}

// Property: the four cells always sum to the number of Adds, and every
// derived ratio stays in [0,1].
func TestConfusionQuick(t *testing.T) {
	f := func(events []bool, low []bool) bool {
		var c Confusion
		n := len(events)
		if len(low) < n {
			n = len(low)
		}
		for i := 0; i < n; i++ {
			c.Add(events[i], low[i])
		}
		if c.Branches() != uint64(n) {
			return false
		}
		for _, v := range []float64{c.PVN(), c.Spec(), c.Sens(), c.PVP()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(-10, 10, 5)
	// Bins: [-10,-5) [-5,0) [0,5) [5,10] — the last bin covers hi.
	for _, v := range []int{-10, -6, -5, 0, 4, 5, 10} {
		h.Add(v)
	}
	h.Add(-11) // underflow
	h.Add(11)  // overflow
	bins := h.Bins()
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0] != 2 || bins[1] != 1 || bins[2] != 2 || bins[3] != 1 || bins[4] != 1 {
		t.Errorf("bin counts = %v", bins)
	}
	u, o := h.OutOfRange()
	if u != 1 || o != 1 {
		t.Errorf("out of range = %d/%d", u, o)
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.BinLo(2) != 0 {
		t.Errorf("BinLo(2) = %d", h.BinLo(2))
	}
	below, above := h.Count(0)
	if below != 3 || above != 4 {
		t.Errorf("Count(0) = %d,%d", below, above)
	}
	if !strings.Contains(h.CSV(), "-10,2") {
		t.Errorf("CSV: %q", h.CSV())
	}
	if !strings.Contains(h.ASCII(40), "#") {
		t.Error("ASCII plot has no bars")
	}
}

func TestHistogramEmptyASCII(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	if !strings.Contains(h.ASCII(0), "empty") {
		t.Error("empty histogram ASCII")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, tc := range []struct{ lo, hi, w int }{{0, 10, 0}, {10, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%d,%d,%d) did not panic", tc.lo, tc.hi, tc.w)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.w)
		}()
	}
}

// Property: total in-range counts equal Total minus out-of-range.
func TestHistogramQuick(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHistogram(-100, 100, 7)
		for _, v := range vals {
			h.Add(int(v))
		}
		var inRange uint64
		for _, n := range h.Bins() {
			inRange += n
		}
		u, o := h.OutOfRange()
		return inRange+u+o == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunDerived(t *testing.T) {
	base := Run{Cycles: 1000, Retired: 2000, Executed: 3000}
	gated := Run{Cycles: 1100, Retired: 2000, Executed: 2400}
	if !almost(base.IPC(), 2.0) {
		t.Errorf("IPC = %v", base.IPC())
	}
	if u := gated.UopReductionPercent(base); !almost(u, 20) {
		t.Errorf("U = %v, want 20", u)
	}
	p := gated.PerfLossPercent(base)
	want := 100 * (1 - (2000.0/1100)/(2000.0/1000))
	if !almost(p, want) {
		t.Errorf("P = %v, want %v", p, want)
	}
	if s := gated.SpeedupPercent(base); !almost(s, -p) {
		t.Errorf("Speedup = %v", s)
	}
	r := Run{Retired: 100000, Mispredicts: 520}
	if !almost(r.MispredictsPer1KUops(), 5.2) {
		t.Errorf("misp/Kuop = %v", r.MispredictsPer1KUops())
	}
	w := Run{Executed: 1500}
	if !almost(w.WastePercent(1000), 50) {
		t.Errorf("WastePercent = %v", w.WastePercent(1000))
	}
}

func TestRunZeroSafety(t *testing.T) {
	var r, base Run
	for _, v := range []float64{
		r.IPC(), r.MispredictsPer1KUops(), r.WastePercent(0),
		r.UopReductionPercent(base), r.PerfLossPercent(base),
	} {
		if v != 0 || math.IsNaN(v) {
			t.Error("zero-run metric not 0")
		}
	}
}

func TestRunMerge(t *testing.T) {
	a := Run{Cycles: 10, Retired: 20, Executed: 30, Fetched: 40,
		WrongPathExecuted: 5, RetiredBranches: 6, Mispredicts: 7,
		Reversals: 1, ReversalsGood: 1, GatedCycles: 2, GateEvents: 1}
	b := a
	a.Merge(b)
	if a.Cycles != 20 || a.Retired != 40 || a.Mispredicts != 14 || a.GateEvents != 2 {
		t.Fatalf("merge: %+v", a)
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(-10, 10, 5)
	b := NewHistogram(-10, 10, 5)
	a.Add(0)
	a.Add(-20)
	b.Add(0)
	b.Add(7)
	b.Add(20)
	a.Merge(b)
	if a.Total() != 5 {
		t.Fatalf("Total = %d", a.Total())
	}
	u, o := a.OutOfRange()
	if u != 1 || o != 1 {
		t.Fatalf("out of range %d/%d", u, o)
	}
	below, above := a.Count(5)
	if below != 2 || above != 1 {
		t.Fatalf("Count = %d/%d", below, above)
	}
}

func TestHistogramMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch did not panic")
		}
	}()
	NewHistogram(-10, 10, 5).Merge(NewHistogram(-10, 10, 2))
}
