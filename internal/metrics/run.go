package metrics

import (
	"encoding/json"
	"fmt"
)

// Run accumulates the timing-simulation counters a single simulation
// produces; every paper table derives from pairs (or triples) of Runs.
type Run struct {
	// Cycles is the simulated cycle count to retire the configured
	// number of uops.
	Cycles uint64
	// Retired counts architecturally retired uops (correct path only).
	Retired uint64
	// Executed counts uops dispatched into the execution core
	// (renamed and allocated), including wrong-path uops later
	// squashed — the work pipeline gating exists to avoid. "Reduction
	// in total uops executed" (U) compares this across runs.
	Executed uint64
	// Fetched counts all uops fetched, right or wrong path.
	Fetched uint64
	// WrongPathExecuted counts Executed uops that were squashed.
	WrongPathExecuted uint64
	// RetiredBranches counts retired conditional branches.
	RetiredBranches uint64
	// Mispredicts counts retired conditional branches whose final
	// front-end direction (after any reversal) was wrong.
	Mispredicts uint64
	// Reversals counts branches whose prediction was reversed;
	// ReversalsGood counts reversals that corrected a would-be
	// misprediction.
	Reversals     uint64
	ReversalsGood uint64
	// GatedCycles counts cycles fetch was stalled by pipeline gating.
	GatedCycles uint64
	// GateEvents counts distinct fetch-stall episodes.
	GateEvents uint64
	// Segments counts the independently simulated trace segments merged
	// into this Run: 1 for a single simulation, summed by Merge. Run
	// manifests use it to tell a merged multi-segment result from a
	// single-segment one without out-of-band context.
	Segments uint64
	// Confusion is the confidence confusion matrix over retired
	// conditional branches (pre-reversal prediction vs estimate).
	Confusion Confusion
}

// IPC returns retired uops per cycle.
func (r Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// MispredictsPer1KUops returns the paper's Table 2 rate: mispredicted
// branches per 1000 retired uops.
func (r Run) MispredictsPer1KUops() float64 {
	if r.Retired == 0 {
		return 0
	}
	return 1000 * float64(r.Mispredicts) / float64(r.Retired)
}

// WastePercent returns the percentage increase in executed uops versus
// a mispredict-free run that executes exactly `perfect` uops:
// Table 2's "% increase in uops executed due to branch mispredictions".
func (r Run) WastePercent(perfect uint64) float64 {
	if perfect == 0 {
		return 0
	}
	return 100 * (float64(r.Executed)/float64(perfect) - 1)
}

// UopReductionPercent returns U: the percentage reduction in executed
// uops relative to a baseline (ungated) run of the same machine and
// workload.
func (r Run) UopReductionPercent(base Run) float64 {
	if base.Executed == 0 {
		return 0
	}
	return 100 * (1 - float64(r.Executed)/float64(base.Executed))
}

// PerfLossPercent returns P: the percentage performance loss versus a
// baseline run retiring the same uop count. Negative values are
// speedups (Figures 8-9 report speedup = -P).
func (r Run) PerfLossPercent(base Run) float64 {
	if base.Cycles == 0 || r.Cycles == 0 {
		return 0
	}
	baseIPC, ipc := base.IPC(), r.IPC()
	if baseIPC == 0 {
		return 0
	}
	return 100 * (1 - ipc/baseIPC)
}

// SpeedupPercent returns the percentage speedup versus base (the
// orientation Figures 8-9 plot).
func (r Run) SpeedupPercent(base Run) float64 { return -r.PerfLossPercent(base) }

// Canonical returns the run's deterministic byte encoding (JSON with
// struct field order). Two runs are byte-identical under Canonical iff
// every counter matches — the form the telemetry regression tests
// compare.
func (r Run) Canonical() ([]byte, error) { return json.Marshal(r) }

// Merge accumulates another run's counters (used to aggregate the two
// trace segments per benchmark, §4).
func (r *Run) Merge(o Run) {
	r.Cycles += o.Cycles
	r.Retired += o.Retired
	r.Executed += o.Executed
	r.Fetched += o.Fetched
	r.WrongPathExecuted += o.WrongPathExecuted
	r.RetiredBranches += o.RetiredBranches
	r.Mispredicts += o.Mispredicts
	r.Reversals += o.Reversals
	r.ReversalsGood += o.ReversalsGood
	r.GatedCycles += o.GatedCycles
	r.GateEvents += o.GateEvents
	r.Segments += o.Segments
	r.Confusion.Merge(o.Confusion)
}

// String summarizes the run.
func (r Run) String() string {
	return fmt.Sprintf("cycles=%d retired=%d executed=%d (wrong-path %d) IPC=%.3f misp/Kuop=%.2f gated=%d",
		r.Cycles, r.Retired, r.Executed, r.WrongPathExecuted, r.IPC(), r.MispredictsPer1KUops(), r.GatedCycles)
}
