package perceptron

import (
	"math/rand"
	"testing"
)

// batch_test.go holds the batched scoring/training API to the same
// standard as the single-call kernels: bit-exact agreement with the
// reference implementation under arbitrary interleavings of batch and
// single-call ops, zero steady-state allocations, and the panic
// contract on malformed requests.

// refTable mirrors a Table as independent reference perceptrons.
type refTable struct {
	tbl  *Table
	refs []*refPerceptron
}

func newRefTable(tbl *Table) *refTable {
	refs := make([]*refPerceptron, tbl.Entries())
	for i := range refs {
		refs[i] = newRefPerceptron(tbl.HistoryLen(), tbl.WeightBits())
	}
	return &refTable{tbl: tbl, refs: refs}
}

func (r *refTable) output(pc, hist uint64) int { return r.refs[r.tbl.Index(pc)].output(hist) }
func (r *refTable) train(pc, hist uint64, t int) {
	r.refs[r.tbl.Index(pc)].train(hist, t)
}

// checkWeights fails on the first divergence between the table's rows
// and the reference perceptrons.
func (r *refTable) checkWeights(t *testing.T) {
	t.Helper()
	for i := 0; i < r.tbl.Entries(); i++ {
		got := r.tbl.Lookup(uint64(i) << 2).Weights()
		for j, w := range got {
			if w != r.refs[i].w[j] {
				t.Fatalf("row %d weight %d: %d != reference %d", i, j, w, r.refs[i].w[j])
			}
		}
	}
}

// batchGeometries covers the AVX2 whole-block batch path (hlen ≡ 0 mod
// 8, including the paper default 32), the generic odd-geometry path,
// and the extremes.
var batchGeometries = []struct{ entries, hlen, bits int }{
	{16, 32, 8}, // paper default
	{8, 8, 6},   // single block
	{8, 16, 4},  // two blocks
	{4, 64, 15}, // maximum history, widest weights
	{8, 13, 5},  // odd geometry → generic row-by-row path
	{8, 1, 2},   // degenerate: bias + one weight
}

// TestBatchMatchesSingle proves OutputBatch/TrainBatch are
// observationally identical to the equivalent sequence of single
// calls: same outputs, same final weights, duplicate rows within one
// batch included (later requests must see earlier updates).
func TestBatchMatchesSingle(t *testing.T) {
	for _, geo := range batchGeometries {
		batched := NewTable(geo.entries, geo.hlen, geo.bits)
		single := NewTable(geo.entries, geo.hlen, geo.bits)
		rng := rand.New(rand.NewSource(int64(geo.hlen)*31 + int64(geo.bits)))
		var b Batch
		for round := 0; round < 100; round++ {
			n := 1 + rng.Intn(8)
			// A small PC range makes duplicate rows within one batch
			// routine rather than exceptional.
			b.Reset()
			for i := 0; i < n; i++ {
				b.Add(rng.Uint64()%uint64(4*geo.entries)<<2, rng.Uint64())
			}
			batched.OutputBatch(&b)
			for i := 0; i < n; i++ {
				if got, want := int(b.Out[i]), single.Output(b.PC[i], b.Hist[i]); got != want {
					t.Fatalf("%+v round %d: OutputBatch[%d] = %d, single Output %d",
						geo, round, i, got, want)
				}
			}
			b.Reset()
			for i := 0; i < n; i++ {
				b.AddTrain(rng.Uint64()%uint64(4*geo.entries)<<2, rng.Uint64(), 1-2*rng.Intn(2))
			}
			batched.TrainBatch(&b)
			for i := 0; i < n; i++ {
				single.Train(b.PC[i], b.Hist[i], int(b.Tgt[i]))
			}
		}
		for i := 0; i < batched.Entries(); i++ {
			bw := batched.Lookup(uint64(i) << 2).Weights()
			sw := single.Lookup(uint64(i) << 2).Weights()
			for j := range bw {
				if bw[j] != sw[j] {
					t.Fatalf("%+v row %d weight %d: batched %d, single %d",
						geo, i, j, bw[j], sw[j])
				}
			}
		}
	}
}

// TestBatchInterleavedMatchesReference interleaves OutputBatch,
// TrainBatch, single Output, and single Train on a lazily-materialized
// table — the first touch is a batch op — and requires the final table
// state to match the reference exactly.
func TestBatchInterleavedMatchesReference(t *testing.T) {
	for _, geo := range batchGeometries {
		tbl := NewTable(geo.entries, geo.hlen, geo.bits)
		ref := newRefTable(tbl)
		rng := rand.New(rand.NewSource(int64(geo.hlen)*7919 + int64(geo.bits)))
		pc := func() uint64 { return rng.Uint64() % uint64(4*geo.entries) << 2 }
		var b Batch

		// First touch through the batch path: OutputBatch must
		// materialize the backing array itself.
		b.Reset()
		b.Add(pc(), rng.Uint64())
		tbl.OutputBatch(&b)
		if got, want := int(b.Out[0]), ref.output(b.PC[0], b.Hist[0]); got != want {
			t.Fatalf("%+v: first-touch OutputBatch = %d, reference %d", geo, got, want)
		}

		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0:
				b.Reset()
				n := 1 + rng.Intn(6)
				for i := 0; i < n; i++ {
					b.Add(pc(), rng.Uint64())
				}
				tbl.OutputBatch(&b)
				for i := 0; i < n; i++ {
					if got, want := int(b.Out[i]), ref.output(b.PC[i], b.Hist[i]); got != want {
						t.Fatalf("%+v step %d: OutputBatch[%d] = %d, reference %d",
							geo, step, i, got, want)
					}
				}
			case 1:
				b.Reset()
				n := 1 + rng.Intn(6)
				for i := 0; i < n; i++ {
					tgt := 1 - 2*rng.Intn(2)
					p, h := pc(), rng.Uint64()
					b.AddTrain(p, h, tgt)
					ref.train(p, h, tgt)
				}
				tbl.TrainBatch(&b)
			case 2:
				p, h := pc(), rng.Uint64()
				if got, want := tbl.Output(p, h), ref.output(p, h); got != want {
					t.Fatalf("%+v step %d: Output = %d, reference %d", geo, step, got, want)
				}
			case 3:
				p, h := pc(), rng.Uint64()
				tgt := 1 - 2*rng.Intn(2)
				tbl.Train(p, h, tgt)
				ref.train(p, h, tgt)
			}
		}
		ref.checkWeights(t)
	}
}

// TestBatchAllocFree pins the steady-state contract the pipeline
// depends on: building and scoring/training a reused Batch allocates
// nothing once the columns have grown to their working size.
func TestBatchAllocFree(t *testing.T) {
	tbl := NewTable(128, 32, 8)
	var b Batch
	b.Reset()
	b.AddTrain(0, 0, 1)
	tbl.TrainBatch(&b) // materialize table and batch scratch
	var i uint64
	if n := testing.AllocsPerRun(200, func() {
		b.Reset()
		for j := uint64(0); j < 4; j++ {
			b.Add(i+j*4, i^j)
		}
		tbl.OutputBatch(&b)
		b.Reset()
		for j := uint64(0); j < 4; j++ {
			b.AddTrain(i+j*4, i^j, 1-2*int(j&1))
		}
		tbl.TrainBatch(&b)
		i += 16
	}); n != 0 {
		t.Errorf("batch cycle allocates %v times per run, want 0", n)
	}
}

// TestBatchValidation pins the panic contract on malformed requests.
func TestBatchValidation(t *testing.T) {
	tbl := NewTable(8, 32, 8)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddTrain(tgt=0)", func() {
		var b Batch
		b.AddTrain(0, 0, 0)
	})
	mustPanic("OutputBatch with mismatched Hist", func() {
		b := Batch{PC: []uint64{1, 2}, Hist: []uint64{3}}
		tbl.OutputBatch(&b)
	})
	mustPanic("TrainBatch with mismatched Tgt", func() {
		b := Batch{PC: []uint64{1}, Hist: []uint64{2}, Tgt: nil}
		tbl.TrainBatch(&b)
	})
}

// TestKernelTierKnown pins that the runtime-selected tier is one of
// the documented rungs.
func TestKernelTierKnown(t *testing.T) {
	switch tier := KernelTier(); tier {
	case "scalar", "sse2", "avx2":
	default:
		t.Fatalf("KernelTier() = %q, not a known tier", tier)
	}
}

// FuzzBatchBitExact is the fuzz form of the batch equivalence proof:
// arbitrary geometry, arbitrary interleavings of batch and single
// ops, exact agreement with the reference implementation throughout.
func FuzzBatchBitExact(f *testing.F) {
	f.Add(uint8(32), uint8(8), int64(1), []byte{0x00, 0x11, 0x22, 0xF3})
	f.Add(uint8(8), uint8(2), int64(2), []byte{0xFF, 0x80, 0x41})
	f.Add(uint8(13), uint8(5), int64(3), []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	f.Add(uint8(64), uint8(15), int64(4), []byte{0xAA, 0x55})
	f.Fuzz(func(t *testing.T, hlenU, bitsU uint8, seed int64, ops []byte) {
		hlen := 1 + int(hlenU)%64 // 1..64
		bits := 2 + int(bitsU)%14 // 2..15
		const entries = 8
		tbl := NewTable(entries, hlen, bits)
		ref := newRefTable(tbl)
		rng := rand.New(rand.NewSource(seed))
		pc := func() uint64 { return rng.Uint64() % (4 * entries) << 2 }
		var b Batch
		for step, op := range ops {
			n := 1 + int(op>>4) // batch size 1..16
			switch op & 3 {
			case 0, 2: // OutputBatch (twice the weight of each train op)
				b.Reset()
				for i := 0; i < n; i++ {
					b.Add(pc(), rng.Uint64())
				}
				tbl.OutputBatch(&b)
				for i := 0; i < n; i++ {
					if got, want := int(b.Out[i]), ref.output(b.PC[i], b.Hist[i]); got != want {
						t.Fatalf("hlen=%d bits=%d step=%d: OutputBatch[%d] = %d, reference %d",
							hlen, bits, step, i, got, want)
					}
				}
			case 1: // TrainBatch
				b.Reset()
				for i := 0; i < n; i++ {
					tgt := 1 - 2*rng.Intn(2)
					p, h := pc(), rng.Uint64()
					b.AddTrain(p, h, tgt)
					ref.train(p, h, tgt)
				}
				tbl.TrainBatch(&b)
			case 3: // single Train
				p, h := pc(), rng.Uint64()
				tgt := 1 - 2*rng.Intn(2)
				tbl.Train(p, h, tgt)
				ref.train(p, h, tgt)
			}
		}
		ref.checkWeights(t)
	})
}

// benchBatch8 builds the eight-branch request group the batched
// scoring benchmarks share with their single-call denominators, so
// both sides score identical rows against identical histories.
func benchBatch8(train bool) *Batch {
	var b Batch
	for j := uint64(0); j < 8; j++ {
		pc := 0x9E3779B97F4A7C15*j + j*4
		hist := 0xD1B54A32D192ED03 * (j + 1)
		if train {
			b.AddTrain(pc, hist, 1-2*int(j&1))
		} else {
			b.Add(pc, hist)
		}
	}
	return &b
}

// BenchmarkTableOutputSingle8 scores a fetch group of eight branches
// with eight single calls — the pre-batching pipeline pattern and the
// denominator of the batch speedup claim.
func BenchmarkTableOutputSingle8(b *testing.B) {
	tbl := NewTable(128, 32, 8)
	tbl.Output(0, 0)
	batch := benchBatch8(false)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			sink += tbl.Output(batch.PC[j], batch.Hist[j])
		}
	}
	_ = sink
}

// BenchmarkTableOutputBatch8 scores the same eight branches through
// one OutputBatch call.
func BenchmarkTableOutputBatch8(b *testing.B) {
	tbl := NewTable(128, 32, 8)
	tbl.Output(0, 0)
	batch := benchBatch8(false)
	tbl.OutputBatch(batch)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		tbl.OutputBatch(batch)
		sink += int(batch.Out[7])
	}
	_ = sink
}

// BenchmarkTableTrainSingle8 trains eight branches with eight single
// calls, the denominator of the batched training speedup.
func BenchmarkTableTrainSingle8(b *testing.B) {
	tbl := NewTable(128, 32, 8)
	tbl.Output(0, 0)
	batch := benchBatch8(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			tbl.Train(batch.PC[j], batch.Hist[j], int(batch.Tgt[j]))
		}
	}
}

// BenchmarkTableTrainBatch8 trains the same eight branches through one
// TrainBatch call.
func BenchmarkTableTrainBatch8(b *testing.B) {
	tbl := NewTable(128, 32, 8)
	tbl.Output(0, 0)
	batch := benchBatch8(true)
	tbl.TrainBatch(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.TrainBatch(batch)
	}
}
