//go:build amd64

package perceptron

import (
	"os"
	"strings"
)

// cpu_amd64.go is the runtime CPU-feature detection behind the kernel
// dispatch ladder (scalar → SSE2 → AVX2). SSE2 is architectural on
// amd64, so only AVX2 needs probing: the CPUID feature bits say the
// core has the instructions, and XGETBV says the OS actually saves the
// ymm half of the register file across context switches — both must
// hold or a VEX.256 instruction faults (or worse, silently loses
// state). The stdlib's internal/cpu package does the same dance but is
// not importable, and adding x/sys/cpu would be a new dependency, so
// the two leaf instructions live in cpuid_amd64.s.
//
// The ladder honours the same GODEBUG knobs the runtime uses —
// `GODEBUG=cpu.avx2=off` drops to SSE2, `cpu.sse2=off` (or `cpu.all=off`)
// all the way to the portable scalar kernels — so CI can exercise every
// tier on an AVX2 host and a bad kernel can be ruled out in the field
// without rebuilding. See docs/performance.md.

// cpuid executes the CPUID instruction for the given leaf and subleaf.
// Implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0), which reports the
// register state the OS saves on context switch. Implemented in
// cpuid_amd64.s.
func xgetbv() (eax, edx uint32)

// useSSE2 and useAVX2 select the kernel tier. They are written once at
// init and only lowered afterwards (by tests forcing a tier), never
// raised, so no kernel can run on silicon that lacks it.
var (
	useSSE2 = true
	useAVX2 bool
)

func init() {
	useAVX2 = cpuHasAVX2()
	for _, kv := range strings.Split(os.Getenv("GODEBUG"), ",") {
		switch strings.TrimSpace(kv) {
		case "cpu.avx2=off":
			useAVX2 = false
		case "cpu.sse2=off", "cpu.all=off":
			useAVX2, useSSE2 = false, false
		}
	}
}

// cpuHasAVX2 reports whether AVX2 kernels are safe to execute: the CPU
// advertises AVX2 and the OS saves xmm+ymm state.
func cpuHasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches the full
	// ymm register file.
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// KernelTier names the kernel tier the dispatch ladder selected:
// "avx2", "sse2", or "scalar". Informational (logs, bench reports).
func KernelTier() string {
	switch {
	case useAVX2:
		return "avx2"
	case useSSE2:
		return "sse2"
	default:
		return "scalar"
	}
}

// setKernelTier forces the dispatch ladder to at most the given tier
// and returns a func restoring the detected one. Test-only: it lets
// the bit-exactness harness drive every tier in one process. Callers
// must not request a tier the host cannot execute (the harness only
// ever lowers).
func setKernelTier(avx2, sse2 bool) (restore func()) {
	prevA, prevS := useAVX2, useSSE2
	useAVX2, useSSE2 = avx2, sse2
	return func() { useAVX2, useSSE2 = prevA, prevS }
}
