package perceptron

// kernel.go holds the branchless scalar dot-product and training
// kernels every perceptron in the repository runs on. The paper
// observes (§5.4.2) that perceptron hardware needs no multiplier
// because the inputs are ±1: each weight is added or subtracted. The
// software analogue is that no *branch* is needed either: the
// add/subtract select is computed with the two's-complement sign-mask
// identity
//
//	x = +w  when b = 1:  m = 0  → (w ^ 0)  - 0  =  w
//	x = -w  when b = 0:  m = -1 → (w ^ -1) - -1 = ^w + 1 = -w
//
// with m = int(b) - 1, unrolled 4-wide over a re-sliced window (the
// slice-advance form is what lets the compiler drop every bounds
// check) with independent accumulators so the adds do not serialize
// into one dependency chain.
//
// On amd64 these scalar kernels are only the tail path: full 8-weight
// blocks go through the SSE2 kernels in kernel_amd64.s (PMADDWD
// against a ±1 sign-vector table), which compute the identical exact
// integer results eight lanes at a time. kernel_generic.go routes
// everything through the scalar kernels on other architectures.
//
// The original per-bit branchy loops survive in reference.go as the
// executable specification; the fuzz and property tests in
// kernel_test.go hold every kernel here — scalar and SIMD — bit-exact
// against them.

// dotScalar computes w[0] + Σ w[i+1]·x[i] where x[i] = +1 if history
// bit i is set and -1 otherwise. w must hold the bias at w[0].
func dotScalar(w []Weight, hist uint64) int {
	y := int(w[0])
	x := w[1:]
	b := hist
	var y0, y1, y2, y3 int
	for len(x) >= 4 {
		m0 := int(b&1) - 1
		m1 := int(b>>1&1) - 1
		m2 := int(b>>2&1) - 1
		m3 := int(b>>3&1) - 1
		y0 += (int(x[0]) ^ m0) - m0
		y1 += (int(x[1]) ^ m1) - m1
		y2 += (int(x[2]) ^ m2) - m2
		y3 += (int(x[3]) ^ m3) - m3
		x = x[4:]
		b >>= 4
	}
	for i := range x {
		m := int(b&1) - 1
		y0 += (int(x[i]) ^ m) - m
		b >>= 1
	}
	return y + y0 + y1 + y2 + y3
}

// trainScalar applies one perceptron update toward target t (±1): the
// bias moves by t, and w[i+1] moves by t·x[i], saturating at
// [min, max]. The add/subtract select uses the same sign-mask identity
// as dotScalar; the saturation clamp is a pair of compare+select
// operations (CMOV on amd64), not a branch.
func trainScalar(w []Weight, hist uint64, t int, min, max Weight) {
	w[0] = sat(int(w[0])+t, min, max)
	x := w[1:]
	b := hist
	for len(x) >= 4 {
		m0 := int(b&1) - 1
		m1 := int(b>>1&1) - 1
		m2 := int(b>>2&1) - 1
		m3 := int(b>>3&1) - 1
		x[0] = sat(int(x[0])+((t^m0)-m0), min, max)
		x[1] = sat(int(x[1])+((t^m1)-m1), min, max)
		x[2] = sat(int(x[2])+((t^m2)-m2), min, max)
		x[3] = sat(int(x[3])+((t^m3)-m3), min, max)
		x = x[4:]
		b >>= 4
	}
	for i := range x {
		m := int(b&1) - 1
		x[i] = sat(int(x[i])+((t^m)-m), min, max)
		b >>= 1
	}
}

// sat clamps v to [min, max]. Written as two selects so the compiler
// emits conditional moves rather than branches.
func sat(v int, min, max Weight) Weight {
	if v > int(max) {
		v = int(max)
	}
	if v < int(min) {
		v = int(min)
	}
	return Weight(v)
}
