//go:build amd64

package perceptron

import "math/bits"

// kernel_amd64.go wires the Go-visible kernel entry points to the
// assembly dispatch ladder (scalar → SSE2 → AVX2; see cpu_amd64.go for
// how a tier is selected and kernel_amd64.s for the ladder itself).
// dotKernel and trainKernel handle every geometry — bias, whole
// 8-weight SIMD blocks, scalar tail — and pick the tier internally, so
// the wrappers here are a single call the compiler inlines into every
// caller: Table.Output in a sweep reaches vector code one CALL deep.
//
// The batched kernels behind Table.OutputBatch/TrainBatch
// (kernel_avx2_amd64.s) amortize even that call: one crossing scores
// or trains a whole struct-of-arrays request block. Every kernel at
// every tier computes bit-identical results to the scalar kernels in
// kernel.go, which the fuzz and property tests in kernel_test.go hold
// to exact agreement with the branchy reference in reference.go.

// signTable[0][b] holds the eight ±1 sign words for history byte b
// (+1 where the bit is set); signTable[1][b] is its negation, used as
// the per-weight delta when training toward t = -1. The assembly
// reaches signTable[1] as byte offset 4096 from signTable[0].
var signTable [2][256][8]int16

// satVecs[k] holds the PMAXSW/PMINSW operands for k-bit weights:
// lanes 0-7 the minimum, lanes 8-15 the maximum.
var satVecs [16][16]int16

func init() {
	for b := 0; b < 256; b++ {
		for i := 0; i < 8; i++ {
			s := int16(-1)
			if b>>uint(i)&1 == 1 {
				s = 1
			}
			signTable[0][b][i] = s
			signTable[1][b][i] = -s
		}
	}
	for wb := 2; wb <= 15; wb++ {
		max := int16(1<<(wb-1) - 1)
		min := -max - 1
		for i := 0; i < 8; i++ {
			satVecs[wb][i] = min
			satVecs[wb][i+8] = max
		}
	}
}

// dotKernel computes the full perceptron output — bias plus n-1
// history weights against the ±1 signs of hist — selecting the SIMD
// tier internally. Implemented in kernel_amd64.s.
//
//go:noescape
func dotKernel(w *Weight, n int, hist uint64) int32

// trainKernel applies one full training step toward target t (±1)
// with saturation bounds packed as packBounds(min, max), selecting the
// SIMD tier internally. Implemented in kernel_amd64.s.
//
//go:noescape
func trainKernel(w *Weight, n int, hist uint64, t, bounds int64)

// trainBadTarget reports a training target outside ±1. It is reached
// only from trainKernel's validation check and never returns. Keeping
// the check (two predicted-never compares) in the assembly rather than
// the Go wrappers is what lets Perceptron.Train inline.
func trainBadTarget() {
	panic("perceptron: train target not ±1")
}

// dotRowsAVX2 scores n whole-block rows of a flat table in one call,
// mapping each pcs[i] to its row with the same (pc>>2 & mask) * stride
// computation as Table.index; out[i] receives the full output.
// trainRowsAVX2 is its training-step counterpart, applying updates in
// request order. Implemented in kernel_avx2_amd64.s; only called when
// useAVX2 is set.
//
//go:noescape
func dotRowsAVX2(w *Weight, tbl *[256][8]int16, pcs, hist *uint64, out *int32, n, blocks int, mask uint64, stride int)

//go:noescape
func trainRowsAVX2(w *Weight, tbl *[2][256][8]int16, pcs, hist *uint64, tgt *int8, n, blocks int, mask uint64, stride int, sv *[16]int16)

// dot computes w[0] + Σ w[i+1]·x[i] with x[i] = ±1 from hist.
func dot(w []Weight, hist uint64) int {
	return int(dotKernel(&w[0], len(w), hist))
}

// trainStep applies one perceptron update toward target t (±1) with
// the saturation bounds packed by packBounds.
func trainStep(w []Weight, hist uint64, t int, bounds int64) {
	trainKernel(&w[0], len(w), hist, int64(t), bounds)
}

// outputBatch scores every request in b against table t. The AVX2
// batched kernel takes whole-block geometries — every default — in a
// single call; everything else goes row by row through the regular
// dispatch ladder.
func outputBatch(t *Table, w []Weight, b *Batch) {
	n := len(b.PC)
	if useAVX2 && t.hlen&7 == 0 {
		dotRowsAVX2(&w[0], &signTable[0], &b.PC[0], &b.Hist[0], &b.Out[0], n,
			t.hlen>>3, t.mask, t.stride)
		return
	}
	t.outputBatchGeneric(b)
}

// trainBatch applies every training request in b to table t, in
// request order (duplicate rows within a batch see earlier updates).
func trainBatch(t *Table, w []Weight, b *Batch) {
	n := len(b.PC)
	if useAVX2 && t.hlen&7 == 0 {
		trainRowsAVX2(&w[0], &signTable, &b.PC[0], &b.Hist[0], &b.Tgt[0], n,
			t.hlen>>3, t.mask, t.stride, &satVecs[bits.Len16(uint16(t.max)+1)])
		return
	}
	t.trainBatchGeneric(b)
}
