//go:build amd64

package perceptron

import "math/bits"

// kernel_amd64.go is the SSE2 fast path for the perceptron kernels.
// The ±1 input vector for eight history bits is a single table load
// (signTable, indexed by one history byte), so a full 8-weight block
// of the dot product is one PMADDWL — eight exact int16×(±1) products
// pairwise-summed into int32 lanes, no overflow at any supported
// weight width (64 weights × 2^14 < 2^31) — and a block of the
// training step is PADDW + PMAXSW/PMINSW against broadcast saturation
// bounds. Both asm kernels compute bit-identical results to the scalar
// kernels in kernel.go, which still handle the sub-8-weight tail and
// every other architecture; the fuzz tests in kernel_test.go hold all
// three implementations (asm, scalar, reference) to exact agreement.

// signTable[0][b] holds the eight ±1 sign words for history byte b
// (+1 where the bit is set); signTable[1][b] is its negation, used as
// the per-weight delta when training toward t = -1.
var signTable [2][256][8]int16

// satVecs[k] holds the PMAXSW/PMINSW operands for k-bit weights:
// lanes 0-7 the minimum, lanes 8-15 the maximum.
var satVecs [16][16]int16

func init() {
	for b := 0; b < 256; b++ {
		for i := 0; i < 8; i++ {
			s := int16(-1)
			if b>>uint(i)&1 == 1 {
				s = 1
			}
			signTable[0][b][i] = s
			signTable[1][b][i] = -s
		}
	}
	for wb := 2; wb <= 15; wb++ {
		max := int16(1<<(wb-1) - 1)
		min := -max - 1
		for i := 0; i < 8; i++ {
			satVecs[wb][i] = min
			satVecs[wb][i+8] = max
		}
	}
}

// dotBlocks sums blocks full 8-weight PMADDWL blocks of w against the
// sign vectors selected by successive bytes of hist. Implemented in
// kernel_amd64.s.
//
//go:noescape
func dotBlocks(w *Weight, tbl *[256][8]int16, hist uint64, blocks int) int32

// trainBlocks applies the ±1 deltas selected by successive bytes of
// hist to blocks full 8-weight blocks of w, saturating at the bounds
// in sv. Implemented in kernel_amd64.s.
//
//go:noescape
func trainBlocks(w *Weight, tbl *[256][8]int16, hist uint64, blocks int, sv *[16]int16)

// dot computes w[0] + Σ w[i+1]·x[i] with x[i] = ±1 from hist. The
// whole-block case (history length a multiple of 8 — every default
// geometry) stays small enough to inline, so the hot path is one call
// straight into the assembly; odd lengths take the outlined mixed
// SIMD+scalar path.
func dot(w []Weight, hist uint64) int {
	if n := len(w) - 1; n&7 == 0 && n > 0 {
		return int(w[0]) + int(dotBlocks(&w[1], &signTable[0], hist, n>>3))
	}
	return dotOdd(w, hist)
}

// dotOdd handles history lengths that are not a multiple of 8: full
// blocks in SIMD, the remainder through the scalar sign-mask tail.
func dotOdd(w []Weight, hist uint64) int {
	y := int(w[0])
	n := len(w) - 1
	full := n &^ 7
	if full > 0 {
		y += int(dotBlocks(&w[1], &signTable[0], hist, full>>3))
	}
	b := hist >> uint(full)
	for _, wv := range w[1+full:] {
		m := int(b&1) - 1
		y += (int(wv) ^ m) - m
		b >>= 1
	}
	return y
}

// trainStep applies one perceptron update toward target t (±1) with
// saturation at [min, max]: full 8-weight blocks in SIMD, the
// remainder through the scalar tail. The sign of t only selects which
// precomputed delta table the SIMD blocks add.
func trainStep(w []Weight, hist uint64, t int, min, max Weight) {
	if n := len(w) - 1; n&7 == 0 && n > 0 {
		w[0] = sat(int(w[0])+t, min, max)
		tbl := &signTable[0]
		if t < 0 {
			tbl = &signTable[1]
		}
		trainBlocks(&w[1], tbl, hist, n>>3, &satVecs[bits.Len16(uint16(max)+1)])
		return
	}
	trainOdd(w, hist, t, min, max)
}

// trainOdd is trainStep for history lengths that are not a multiple
// of 8.
func trainOdd(w []Weight, hist uint64, t int, min, max Weight) {
	w[0] = sat(int(w[0])+t, min, max)
	n := len(w) - 1
	full := n &^ 7
	if full > 0 {
		tbl := &signTable[0]
		if t < 0 {
			tbl = &signTable[1]
		}
		trainBlocks(&w[1], tbl, hist, full>>3, &satVecs[bits.Len16(uint16(max)+1)])
	}
	b := hist >> uint(full)
	x := w[1+full:]
	for i := range x {
		m := int(b&1) - 1
		x[i] = sat(int(x[i])+((t^m)-m), min, max)
		b >>= 1
	}
}
