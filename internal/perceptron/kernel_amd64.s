//go:build amd64

#include "textflag.h"

// func dotBlocks(w *Weight, tbl *[256][8]int16, hist uint64, blocks int) int32
//
// X0 accumulates four int32 partial sums; each iteration loads the
// eight ±1 sign words for the next history byte, multiply-adds them
// against eight weights (PMADDWL: exact int16 products pairwise summed
// into int32 lanes), and folds the lanes together at the end.
TEXT ·dotBlocks(SB), NOSPLIT, $0-36
	MOVQ w+0(FP), SI
	MOVQ tbl+8(FP), DI
	MOVQ hist+16(FP), CX
	MOVQ blocks+24(FP), BX
	PXOR X0, X0
	PXOR X7, X7

	// Two blocks per iteration into independent accumulators so the
	// PADDL chains do not serialize.
	SUBQ $2, BX
	JLT  dotsingle

dotloop:
	MOVWLZX CX, AX // next two history bytes
	MOVL    AX, R8
	ANDL    $255, AX
	SHRL    $8, R8
	SHLL    $4, AX // 16 bytes per sign-table row
	SHLL    $4, R8
	MOVOU   (DI)(AX*1), X1
	MOVOU   (SI), X2
	PMADDWL X1, X2
	PADDL   X2, X0
	MOVOU   (DI)(R8*1), X5
	MOVOU   16(SI), X6
	PMADDWL X5, X6
	PADDL   X6, X7
	ADDQ    $32, SI
	SHRQ    $16, CX
	SUBQ    $2, BX
	JGE     dotloop

dotsingle:
	ADDQ $2, BX
	JZ   dotsum

	// Odd leftover block.
	MOVBLZX CX, AX
	SHLL    $4, AX
	MOVOU   (DI)(AX*1), X1
	MOVOU   (SI), X2
	PMADDWL X1, X2
	PADDL   X2, X0

dotsum:
	// Horizontal sum: after the two shuffle+add rounds every lane
	// holds the total.
	PADDL  X7, X0
	PSHUFL $0x4E, X0, X1
	PADDL  X1, X0
	PSHUFL $0xB1, X0, X1
	PADDL  X1, X0
	MOVQ   X0, AX
	MOVL   AX, ret+32(FP)
	RET

// func trainBlocks(w *Weight, tbl *[256][8]int16, hist uint64, blocks int, sv *[16]int16)
//
// Adds the ±1 delta vector selected by each history byte to the
// corresponding 8-weight block, clamping to the saturation bounds
// broadcast in sv (lanes 0-7 min, 8-15 max).
TEXT ·trainBlocks(SB), NOSPLIT, $0-40
	MOVQ  w+0(FP), SI
	MOVQ  tbl+8(FP), DI
	MOVQ  hist+16(FP), CX
	MOVQ  blocks+24(FP), BX
	MOVQ  sv+32(FP), DX
	MOVOU (DX), X3   // min lanes
	MOVOU 16(DX), X4 // max lanes

trainloop:
	MOVQ CX, AX
	ANDQ $255, AX
	SHLQ $4, AX
	MOVOU (DI)(AX*1), X1
	MOVOU (SI), X2
	PADDW  X1, X2
	PMAXSW X3, X2
	PMINSW X4, X2
	MOVOU X2, (SI)
	ADDQ $16, SI
	SHRQ $8, CX
	DECQ BX
	JNZ  trainloop
	RET
