//go:build amd64

#include "textflag.h"

// kernel_amd64.s holds the complete kernel dispatch ladder for one
// perceptron row: dotKernel and trainKernel select the AVX2, SSE2, or
// scalar tier themselves by reading ·useAVX2/·useSSE2, so the Go
// wrappers in kernel_amd64.go are a single call the compiler inlines
// into every caller — the hot path from Table.Output to vector code is
// one CALL deep.
//
// The ±1 input vector for eight history bits is one 16-byte row of
// ·signTable indexed by a history byte. A dot-product block is then a
// single PMADDWD: eight exact int16×(±1) products pairwise-summed into
// int32 lanes, no overflow at any supported weight width (64 weights ×
// 2^14 < 2^31). A training block adds the ±1 delta row — ·signTable[1],
// at byte offset 4096, holds the negated rows for t = -1 — and clamps
// with PMAXSW/PMINSW against the bounds in ·satVecs. The AVX2 tier
// (VEX.256) runs 16 weights per instruction by merging two sign rows
// into one ymm; the paper-default 32-bit history gets a dedicated
// straight-line path with no loop control at all.
//
// Invariants:
//   - VEX.128 ops zero bits 255:128 of their destination, so the ymm
//     accumulator is folded to xmm BEFORE any odd 8-weight block.
//   - VZEROUPPER runs before leaving any VEX.256 path so surrounding
//     SSE-encoded Go code pays no AVX→SSE transition penalty.
//   - The scalar tail (history length mod 8, or the whole row when the
//     SIMD tiers are forced off) uses the same sign-mask identity as
//     kernel.go: m = bit-1, contribution = (w ^ m) - m.
//
// Every tier computes bit-identical results; kernel_test.go holds them
// all to exact agreement with the branchy reference in reference.go.

// func dotKernel(w *Weight, n int, hist uint64) int32
//
// w points at the bias; n counts the weights including it (hlen+1).
TEXT ·dotKernel(SB), NOSPLIT, $0-28
	MOVQ    w+0(FP), SI
	MOVQ    n+8(FP), BX
	MOVQ    hist+16(FP), CX
	MOVWLSX (SI), R11 // y = bias
	ADDQ    $2, SI
	DECQ    BX        // BX = hlen

	CMPB ·useAVX2(SB), $0
	JNE  avx2dot
	CMPB ·useSSE2(SB), $0
	JE   scalardot

	// ---- SSE2 tier: blocks two at a time, independent accumulators ----
	LEAQ ·signTable(SB), DI
	MOVQ BX, R12
	SHRQ $3, R12
	JZ   dottail
	PXOR X0, X0
	PXOR X7, X7
	SUBQ $2, R12
	JLT  ssedotsingle

ssedotloop:
	MOVWLZX CX, AX // next two history bytes
	MOVL    AX, R8
	ANDL    $255, AX
	SHRL    $8, R8
	SHLL    $4, AX // 16 bytes per sign-table row
	SHLL    $4, R8
	MOVOU   (DI)(AX*1), X1
	MOVOU   (SI), X2
	PMADDWL X1, X2
	PADDL   X2, X0
	MOVOU   (DI)(R8*1), X5
	MOVOU   16(SI), X6
	PMADDWL X5, X6
	PADDL   X6, X7
	ADDQ    $32, SI
	SHRQ    $16, CX
	SUBQ    $2, R12
	JGE     ssedotloop

ssedotsingle:
	ADDQ $2, R12
	JZ   ssedotsum

	// Odd leftover block.
	MOVBLZX CX, AX
	SHLL    $4, AX
	MOVOU   (DI)(AX*1), X1
	MOVOU   (SI), X2
	PMADDWL X1, X2
	PADDL   X2, X0
	ADDQ    $16, SI
	SHRQ    $8, CX

ssedotsum:
	// Horizontal sum: after two shuffle+add rounds every lane holds
	// the total.
	PADDL  X7, X0
	PSHUFL $0x4E, X0, X1
	PADDL  X1, X0
	PSHUFL $0xB1, X0, X1
	PADDL  X1, X0
	MOVQ   X0, AX
	ADDL   AX, R11
	JMP    dottail

	// ---- AVX2 tier ----
avx2dot:
	LEAQ ·signTable(SB), DI
	CMPQ BX, $32
	JEQ  dot32
	MOVQ BX, R12
	SHRQ $3, R12
	JZ   dottail
	VPXOR Y0, Y0, Y0
	SUBQ  $2, R12
	JLT   avxdotsingle

avxdotloop:
	// Two history bytes select two sign rows; merge into one ymm and
	// multiply-add against 16 weights.
	MOVWLZX     CX, AX
	MOVL        AX, R8
	ANDL        $255, AX
	SHRL        $8, R8
	SHLL        $4, AX
	SHLL        $4, R8
	VMOVDQU     (DI)(AX*1), X1
	VINSERTI128 $1, (DI)(R8*1), Y1, Y1
	VPMADDWD    (SI), Y1, Y1
	VPADDD      Y1, Y0, Y0
	ADDQ        $32, SI
	SHRQ        $16, CX
	SUBQ        $2, R12
	JGE         avxdotloop

avxdotsingle:
	// Fold the ymm accumulator down before the (128-bit) odd block.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	ADDQ         $2, R12
	JZ           avxdotsum

	MOVBLZX  CX, AX
	SHLL     $4, AX
	VMOVDQU  (DI)(AX*1), X1
	VPMADDWD (SI), X1, X1
	VPADDD   X1, X0, X0
	ADDQ     $16, SI
	SHRQ     $8, CX

avxdotsum:
	VPSHUFD $0x4E, X0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD  X1, X0, X0
	VMOVD   X0, AX
	ADDL    AX, R11
	VZEROUPPER
	JMP     dottail

	// Straight-line 32-weight dot: four history bytes, four sign rows
	// merged into two ymm vectors, two VPMADDWDs, no loop control.
dot32:
	MOVBLZX CX, AX
	MOVL    CX, R8
	SHRL    $8, R8
	MOVBLZX R8, R8
	MOVL    CX, R9
	SHRL    $16, R9
	MOVBLZX R9, R9
	MOVL    CX, R10
	SHRL    $24, R10
	SHLL    $4, AX
	SHLL    $4, R8
	SHLL    $4, R9
	SHLL    $4, R10
	VMOVDQU     (DI)(AX*1), X1
	VINSERTI128 $1, (DI)(R8*1), Y1, Y1
	VMOVDQU     (DI)(R9*1), X2
	VINSERTI128 $1, (DI)(R10*1), Y2, Y2
	VPMADDWD    (SI), Y1, Y1
	VPMADDWD    32(SI), Y2, Y2
	VPADDD      Y2, Y1, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD      X1, X0, X0
	VPSHUFD     $0x4E, X0, X1
	VPADDD      X1, X0, X0
	VPSHUFD     $0xB1, X0, X1
	VPADDD      X1, X0, X0
	VMOVD       X0, AX
	ADDL        AX, R11
	VZEROUPPER
	MOVL        R11, ret+24(FP)
	RET

	// ---- scalar tier (SIMD forced off) and the sub-8-weight tail ----
scalardot:
	TESTQ BX, BX
	JZ    dotdone
	JMP   dottailloop

dottail:
	ANDQ $7, BX
	JZ   dotdone

dottailloop:
	// Sign-mask identity: m = bit-1; (w ^ m) - m = ±w.
	MOVWLSX (SI), AX
	MOVL    CX, DX
	ANDL    $1, DX
	DECL    DX
	XORL    DX, AX
	SUBL    DX, AX
	ADDL    AX, R11
	ADDQ    $2, SI
	SHRQ    $1, CX
	DECQ    BX
	JNZ     dottailloop

dotdone:
	MOVL R11, ret+24(FP)
	RET

// func trainKernel(w *Weight, n int, hist uint64, t, bounds int64)
//
// One full training step toward target t (±1), saturating every
// weight at [min, max]. The ±1 delta table is selected by the sign of
// t; the SIMD clamp bounds come from ·satVecs, indexed in-line by the
// weight width recovered from max (BSR of max+1, i.e. bits.Len16).
TEXT ·trainKernel(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), SI
	MOVQ n+8(FP), BX
	MOVQ hist+16(FP), CX
	MOVQ t+24(FP), R9

	// Validate the target here rather than in the Go wrappers: two
	// predicted-never compares cost nothing, while a Go-side check
	// pushes the wrappers past the inlining budget.
	CMPQ R9, $1
	JE   tvalid
	CMPQ R9, $-1
	JNE  tbadtarget

tvalid:
	// Unpack bounds: min sign-extended in the low word, max above it.
	MOVQ    bounds+32(FP), R11
	MOVWQSX R11, R10
	SARQ    $16, R11

	// Bias: w[0] += t, clamped.
	MOVWLSX (SI), AX
	ADDL    R9, AX
	CMPL    AX, R11
	CMOVLGT R11, AX
	CMPL    AX, R10
	CMOVLLT R10, AX
	MOVW    AX, (SI)
	ADDQ    $2, SI
	DECQ    BX // BX = hlen

	CMPB ·useAVX2(SB), $0
	JNE  avx2train
	CMPB ·useSSE2(SB), $0
	JE   scalartrain

	// ---- SSE2 tier ----
	MOVQ BX, R12
	SHRQ $3, R12
	JZ   traintail

	// Delta table: ·signTable[0] for t = +1, its negation at byte
	// offset 4096 for t = -1.
	LEAQ    ·signTable(SB), DI
	LEAQ    4096(DI), DX
	TESTQ   R9, R9
	CMOVQLT DX, DI

	// Clamp bounds: ·satVecs[bits.Len16(max+1)], 32 bytes per entry,
	// lanes 0-7 the minimum and 8-15 the maximum.
	LEAL 1(R11), AX
	BSRL AX, AX
	INCL AX
	SHLL $5, AX
	LEAQ ·satVecs(SB), DX
	ADDQ AX, DX
	MOVOU (DX), X3
	MOVOU 16(DX), X4

ssetrainloop:
	MOVBLZX CX, AX
	SHLL    $4, AX
	MOVOU   (DI)(AX*1), X1
	MOVOU   (SI), X2
	PADDW   X1, X2
	PMAXSW  X3, X2
	PMINSW  X4, X2
	MOVOU   X2, (SI)
	ADDQ    $16, SI
	SHRQ    $8, CX
	DECQ    R12
	JNZ     ssetrainloop
	JMP     traintail

	// ---- AVX2 tier ----
avx2train:
	LEAQ    ·signTable(SB), DI
	LEAQ    4096(DI), DX
	TESTQ   R9, R9
	CMOVQLT DX, DI

	LEAL 1(R11), AX
	BSRL AX, AX
	INCL AX
	SHLL $5, AX
	LEAQ ·satVecs(SB), DX
	ADDQ AX, DX

	CMPQ BX, $32
	JEQ  train32

	MOVQ BX, R12
	SHRQ $3, R12
	JZ   traintail
	VBROADCASTI128 (DX), Y3   // min lanes
	VBROADCASTI128 16(DX), Y4 // max lanes
	SUBQ $2, R12
	JLT  avxtrainsingle

avxtrainloop:
	MOVWLZX     CX, AX
	MOVL        AX, R8
	ANDL        $255, AX
	SHRL        $8, R8
	SHLL        $4, AX
	SHLL        $4, R8
	VMOVDQU     (DI)(AX*1), X1
	VINSERTI128 $1, (DI)(R8*1), Y1, Y1
	VMOVDQU     (SI), Y2
	VPADDW      Y1, Y2, Y2
	VPMAXSW     Y3, Y2, Y2
	VPMINSW     Y4, Y2, Y2
	VMOVDQU     Y2, (SI)
	ADDQ        $32, SI
	SHRQ        $16, CX
	SUBQ        $2, R12
	JGE         avxtrainloop

avxtrainsingle:
	ADDQ $2, R12
	JZ   avxtraindone

	// Odd leftover block, 128-bit (X3/X4 are the low lanes of Y3/Y4).
	MOVBLZX CX, AX
	SHLL    $4, AX
	VMOVDQU (DI)(AX*1), X1
	VMOVDQU (SI), X2
	VPADDW  X1, X2, X2
	VPMAXSW X3, X2, X2
	VPMINSW X4, X2, X2
	VMOVDQU X2, (SI)
	ADDQ    $16, SI
	SHRQ    $8, CX

avxtraindone:
	VZEROUPPER
	JMP traintail

	// Straight-line 32-weight train.
train32:
	VBROADCASTI128 (DX), Y3
	VBROADCASTI128 16(DX), Y4
	MOVBLZX CX, AX
	MOVL    CX, R8
	SHRL    $8, R8
	MOVBLZX R8, R8
	MOVL    CX, R12
	SHRL    $16, R12
	MOVBLZX R12, R12
	MOVL    CX, R13
	SHRL    $24, R13
	SHLL    $4, AX
	SHLL    $4, R8
	SHLL    $4, R12
	SHLL    $4, R13
	VMOVDQU     (DI)(AX*1), X1
	VINSERTI128 $1, (DI)(R8*1), Y1, Y1
	VMOVDQU     (DI)(R12*1), X2
	VINSERTI128 $1, (DI)(R13*1), Y2, Y2
	VMOVDQU     (SI), Y5
	VMOVDQU     32(SI), Y6
	VPADDW      Y1, Y5, Y5
	VPADDW      Y2, Y6, Y6
	VPMAXSW     Y3, Y5, Y5
	VPMAXSW     Y3, Y6, Y6
	VPMINSW     Y4, Y5, Y5
	VPMINSW     Y4, Y6, Y6
	VMOVDQU     Y5, (SI)
	VMOVDQU     Y6, 32(SI)
	VZEROUPPER
	RET

	// ---- scalar tier and the sub-8-weight tail ----
scalartrain:
	TESTQ BX, BX
	JZ    traindone
	JMP   traintailloop

traintail:
	ANDQ $7, BX
	JZ   traindone

traintailloop:
	// d = (t ^ m) - m with m = bit-1, then clamp.
	MOVL    CX, DX
	ANDL    $1, DX
	DECL    DX
	MOVL    R9, AX
	XORL    DX, AX
	SUBL    DX, AX
	MOVWLSX (SI), DX
	ADDL    DX, AX
	CMPL    AX, R11
	CMOVLGT R11, AX
	CMPL    AX, R10
	CMOVLLT R10, AX
	MOVW    AX, (SI)
	ADDQ    $2, SI
	SHRQ    $1, CX
	DECQ    BX
	JNZ     traintailloop

traindone:
	RET

tbadtarget:
	CALL ·trainBadTarget(SB) // panics; never returns
	RET

