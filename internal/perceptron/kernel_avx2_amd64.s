//go:build amd64

#include "textflag.h"

// kernel_avx2_amd64.s holds the batched multi-row AVX2 kernels behind
// Table.OutputBatch/TrainBatch: one call scores or trains every
// request in a struct-of-arrays block, so a fetch group of branches
// costs one ABI crossing instead of N. Row addressing happens here
// too — each PC is mapped to its row offset with the same
// (pc>>2 & mask) * stride computation as Table.index, so the Go side
// passes the raw request columns and no per-request bookkeeping runs
// outside the loop below.
//
// The per-row recipe matches the AVX2 tier in kernel_amd64.s —
// VPMADDWD over 16 weights merged from two ·signTable rows per
// iteration for the dot, VPADDW plus VPMAXSW/VPMINSW saturation for
// the train — and the same two invariants hold: fold the ymm
// accumulator to xmm BEFORE any (VEX.128) odd block, and VZEROUPPER
// before returning. The paper-default geometry (32-bit history, 4
// whole blocks) gets dedicated straight-line row loops with no
// per-block branching.
//
// Rows are processed strictly in request order: a batch may hit the
// same row twice and the second update must observe the first,
// exactly as sequential Train calls would.

// func dotRowsAVX2(w *Weight, tbl *[256][8]int16, pcs, hist *uint64, out *int32, n, blocks int, mask uint64, stride int)
//
// out[i] receives the full perceptron output of pcs[i]'s row against
// hist[i], bias included. All rows share one whole-block geometry
// (blocks = hlen/8 ≥ 1).
TEXT ·dotRowsAVX2(SB), NOSPLIT, $0-72
	MOVQ w+0(FP), SI
	MOVQ tbl+8(FP), DI
	MOVQ pcs+16(FP), R9
	MOVQ hist+24(FP), R10
	MOVQ out+32(FP), R11
	MOVQ n+40(FP), R12
	MOVQ blocks+48(FP), R13
	MOVQ mask+56(FP), R15

	CMPQ R13, $4
	JEQ  drow4loop

drowloop:
	MOVQ  (R9), DX // row offset = index(pc) * stride, in weights
	SHRQ  $2, DX
	ANDQ  R15, DX
	IMULQ stride+64(FP), DX
	LEAQ  (SI)(DX*2), DX
	MOVQ  (R10), CX
	MOVWQSX (DX), BX // bias contributes +w[0]
	ADDQ  $2, DX
	VPXOR Y0, Y0, Y0
	MOVQ  R13, R14
	SUBQ  $2, R14
	JLT   drowsingle

drowpair:
	MOVWLZX     CX, AX
	MOVL        AX, R8
	ANDL        $255, AX
	SHRL        $8, R8
	SHLL        $4, AX
	SHLL        $4, R8
	VMOVDQU     (DI)(AX*1), X1
	VINSERTI128 $1, (DI)(R8*1), Y1, Y1
	VPMADDWD    (DX), Y1, Y1
	VPADDD      Y1, Y0, Y0
	ADDQ        $32, DX
	SHRQ        $16, CX
	SUBQ        $2, R14
	JGE         drowpair

drowsingle:
	// Fold before the 128-bit odd block (VEX.128 zeroes 255:128).
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	ADDQ         $2, R14
	JZ           drowsum

	MOVBLZX  CX, AX
	SHLL     $4, AX
	VMOVDQU  (DI)(AX*1), X1
	VPMADDWD (DX), X1, X1
	VPADDD   X1, X0, X0

drowsum:
	VPSHUFD $0x4E, X0, X1
	VPADDD  X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD  X1, X0, X0
	VMOVD   X0, AX
	ADDL    BX, AX
	MOVL    AX, (R11)

	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $4, R11
	DECQ R12
	JNZ  drowloop

	VZEROUPPER
	RET

	// Paper-default rows (32-bit history): four sign rows merged into
	// two ymm vectors, two VPMADDWDs, no per-block loop control.
drow4loop:
	MOVQ  (R9), DX
	SHRQ  $2, DX
	ANDQ  R15, DX
	IMULQ stride+64(FP), DX
	LEAQ  (SI)(DX*2), DX
	MOVQ  (R10), CX
	MOVWQSX (DX), BX
	ADDQ  $2, DX

	MOVBLZX     CX, AX
	MOVL        CX, R8
	SHRL        $8, R8
	MOVBLZX     R8, R8
	SHLL        $4, AX
	SHLL        $4, R8
	VMOVDQU     (DI)(AX*1), X1
	VINSERTI128 $1, (DI)(R8*1), Y1, Y1
	MOVL        CX, AX
	SHRL        $16, AX
	MOVBLZX     AX, AX
	SHRL        $24, CX
	SHLL        $4, AX
	SHLL        $4, CX
	VMOVDQU     (DI)(AX*1), X2
	VINSERTI128 $1, (DI)(CX*1), Y2, Y2
	VPMADDWD    (DX), Y1, Y1
	VPMADDWD    32(DX), Y2, Y2
	VPADDD      Y2, Y1, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD      X1, X0, X0
	VPSHUFD     $0x4E, X0, X1
	VPADDD      X1, X0, X0
	VPSHUFD     $0xB1, X0, X1
	VPADDD      X1, X0, X0
	VMOVD       X0, AX
	ADDL        BX, AX
	MOVL        AX, (R11)

	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $4, R11
	DECQ R12
	JNZ  drow4loop

	VZEROUPPER
	RET

// func trainRowsAVX2(w *Weight, tbl *[2][256][8]int16, pcs, hist *uint64, tgt *int8, n, blocks int, mask uint64, stride int, sv *[16]int16)
//
// Applies one full training step — saturating bias and history
// weights — to pcs[i]'s row toward target tgt[i] (±1), in request
// order. tgt selects between the two precomputed delta tables: tbl[0]
// for t = +1, its negation at byte offset 4096 for t = -1. sv holds
// the clamp bounds: lanes 0-7 the minimum, 8-15 the maximum.
TEXT ·trainRowsAVX2(SB), NOSPLIT, $0-80
	MOVQ w+0(FP), SI
	MOVQ tbl+8(FP), DI
	MOVQ pcs+16(FP), R9
	MOVQ hist+24(FP), R10
	MOVQ tgt+32(FP), R11
	MOVQ n+40(FP), R12
	MOVQ blocks+48(FP), R13
	MOVQ mask+56(FP), R15

	MOVQ sv+72(FP), DX
	VBROADCASTI128 (DX), Y3   // min lanes
	VBROADCASTI128 16(DX), Y4 // max lanes

	CMPQ R13, $4
	JEQ  trow4loop

trowloop:
	MOVQ  (R9), DX
	SHRQ  $2, DX
	ANDQ  R15, DX
	IMULQ stride+64(FP), DX
	LEAQ  (SI)(DX*2), DX
	MOVQ  (R10), CX
	MOVBQSX (R11), AX // target ±1

	// Select the delta table by the sign of the target.
	MOVQ    DI, BX
	LEAQ    4096(DI), R8
	TESTQ   AX, AX
	CMOVQLT R8, BX

	// Bias: w[0] += t, clamped against the bounds still in memory at
	// sv (word 0 the minimum, word 8 the maximum).
	MOVWLSX (DX), R8
	ADDL    AX, R8
	MOVQ    sv+72(FP), AX
	MOVWLSX 16(AX), R14
	CMPL    R8, R14
	CMOVLGT R14, R8
	MOVWLSX (AX), R14
	CMPL    R8, R14
	CMOVLLT R14, R8
	MOVW    R8, (DX)
	ADDQ    $2, DX

	MOVQ R13, R14
	SUBQ $2, R14
	JLT  trowsingle

trowpair:
	MOVWLZX     CX, AX
	MOVL        AX, R8
	ANDL        $255, AX
	SHRL        $8, R8
	SHLL        $4, AX
	SHLL        $4, R8
	VMOVDQU     (BX)(AX*1), X1
	VINSERTI128 $1, (BX)(R8*1), Y1, Y1
	VMOVDQU     (DX), Y2
	VPADDW      Y1, Y2, Y2
	VPMAXSW     Y3, Y2, Y2
	VPMINSW     Y4, Y2, Y2
	VMOVDQU     Y2, (DX)
	ADDQ        $32, DX
	SHRQ        $16, CX
	SUBQ        $2, R14
	JGE         trowpair

trowsingle:
	ADDQ $2, R14
	JZ   trownext

	// Odd leftover block, 128-bit (X3/X4 are the low lanes of Y3/Y4).
	MOVBLZX CX, AX
	SHLL    $4, AX
	VMOVDQU (BX)(AX*1), X1
	VMOVDQU (DX), X2
	VPADDW  X1, X2, X2
	VPMAXSW X3, X2, X2
	VPMINSW X4, X2, X2
	VMOVDQU X2, (DX)

trownext:
	ADDQ $8, R9
	ADDQ $8, R10
	INCQ R11
	DECQ R12
	JNZ  trowloop

	VZEROUPPER
	RET

	// Paper-default rows (32-bit history): two straight-line 16-weight
	// update blocks per row, no per-block loop control.
trow4loop:
	MOVQ  (R9), DX
	SHRQ  $2, DX
	ANDQ  R15, DX
	IMULQ stride+64(FP), DX
	LEAQ  (SI)(DX*2), DX
	MOVQ  (R10), CX
	MOVBQSX (R11), AX

	MOVQ    DI, BX
	LEAQ    4096(DI), R8
	TESTQ   AX, AX
	CMOVQLT R8, BX

	MOVWLSX (DX), R8
	ADDL    AX, R8
	MOVQ    sv+72(FP), AX
	MOVWLSX 16(AX), R14
	CMPL    R8, R14
	CMOVLGT R14, R8
	MOVWLSX (AX), R14
	CMPL    R8, R14
	CMOVLLT R14, R8
	MOVW    R8, (DX)
	ADDQ    $2, DX

	MOVBLZX     CX, AX
	MOVL        CX, R8
	SHRL        $8, R8
	MOVBLZX     R8, R8
	SHLL        $4, AX
	SHLL        $4, R8
	VMOVDQU     (BX)(AX*1), X1
	VINSERTI128 $1, (BX)(R8*1), Y1, Y1
	VMOVDQU     (DX), Y2
	VPADDW      Y1, Y2, Y2
	VPMAXSW     Y3, Y2, Y2
	VPMINSW     Y4, Y2, Y2
	VMOVDQU     Y2, (DX)

	MOVL        CX, AX
	SHRL        $16, AX
	MOVBLZX     AX, AX
	SHRL        $24, CX
	SHLL        $4, AX
	SHLL        $4, CX
	VMOVDQU     (BX)(AX*1), X1
	VINSERTI128 $1, (BX)(CX*1), Y1, Y1
	VMOVDQU     32(DX), Y2
	VPADDW      Y1, Y2, Y2
	VPMAXSW     Y3, Y2, Y2
	VPMINSW     Y4, Y2, Y2
	VMOVDQU     Y2, 32(DX)

	ADDQ $8, R9
	ADDQ $8, R10
	INCQ R11
	DECQ R12
	JNZ  trow4loop

	VZEROUPPER
	RET
