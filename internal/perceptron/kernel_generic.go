//go:build !amd64

package perceptron

// On architectures without an assembly fast path the branchless scalar
// kernels are the production kernels.

func dot(w []Weight, hist uint64) int { return dotScalar(w, hist) }

func trainStep(w []Weight, hist uint64, t int, min, max Weight) {
	trainScalar(w, hist, t, min, max)
}
