//go:build !amd64

package perceptron

// On architectures without an assembly fast path the branchless scalar
// kernels are the production kernels, and batches are scored row by
// row.

func dot(w []Weight, hist uint64) int { return dotScalar(w, hist) }

func trainStep(w []Weight, hist uint64, t int, bounds int64) {
	if t != 1 && t != -1 {
		panic("perceptron: train target not ±1")
	}
	trainScalar(w, hist, t, Weight(int16(bounds)), Weight(bounds>>16))
}

func outputBatch(t *Table, _ []Weight, b *Batch) { t.outputBatchGeneric(b) }

func trainBatch(t *Table, _ []Weight, b *Batch) { t.trainBatchGeneric(b) }

// KernelTier names the kernel tier in use; without assembly kernels it
// is always "scalar".
func KernelTier() string { return "scalar" }
