package perceptron

import (
	"math/rand"
	"testing"
)

// kernel_test.go proves the branchless kernels in kernel.go are
// bit-exact against the retained reference implementation in
// reference.go: same outputs and same weights after arbitrary
// interleaved Output/Train sequences, at every supported weight width
// and at history lengths that exercise every unroll tail.

// refPerceptron runs the reference kernels over its own weight copy.
type refPerceptron struct {
	w        []Weight
	max, min Weight
}

func newRefPerceptron(n, bits int) *refPerceptron {
	max, min := weightRange(bits)
	return &refPerceptron{w: make([]Weight, n+1), max: max, min: min}
}

func (r *refPerceptron) output(hist uint64) int { return referenceDot(r.w, hist) }
func (r *refPerceptron) train(hist uint64, t int) {
	referenceTrainStep(r.w, hist, t, r.min, r.max)
}

// checkAgainstReference drives the optimized perceptron and the
// reference through the same op sequence, failing on the first
// divergence in output or weight state.
func checkAgainstReference(t *testing.T, hlen, bits int, rng *rand.Rand, steps int) {
	t.Helper()
	p := New(hlen, bits)
	ref := newRefPerceptron(hlen, bits)
	for step := 0; step < steps; step++ {
		hist := rng.Uint64()
		if rng.Intn(2) == 0 {
			got, want := p.Output(hist), ref.output(hist)
			if got != want {
				t.Fatalf("hlen=%d bits=%d step=%d: Output(%#x) = %d, reference %d",
					hlen, bits, step, hist, got, want)
			}
		} else {
			tgt := 1 - 2*rng.Intn(2)
			p.Train(hist, tgt)
			ref.train(hist, tgt)
			for i, w := range p.Weights() {
				if w != ref.w[i] {
					t.Fatalf("hlen=%d bits=%d step=%d: weight[%d] = %d, reference %d",
						hlen, bits, step, i, w, ref.w[i])
				}
			}
		}
	}
}

// TestKernelBitExactAllWidths sweeps every weight width 2..15 and
// history lengths covering each unroll remainder (n mod 4 ∈ {0,1,2,3})
// plus the paper geometry and the 64-bit maximum.
func TestKernelBitExactAllWidths(t *testing.T) {
	hlens := []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33, 63, 64}
	for bits := 2; bits <= 15; bits++ {
		rng := rand.New(rand.NewSource(int64(bits) * 7919))
		for _, hlen := range hlens {
			checkAgainstReference(t, hlen, bits, rng, 300)
		}
	}
}

// TestScalarKernelBitExact holds the portable scalar kernels to the
// reference directly. On amd64 the Perceptron/Table paths above
// exercise the SIMD kernels, so without this the scalar fallback (the
// production kernel everywhere else, and the tail path on amd64) would
// only be covered for sub-8-weight tails.
func TestScalarKernelBitExact(t *testing.T) {
	hlens := []int{1, 3, 4, 7, 8, 13, 31, 32, 33, 64}
	for bits := 2; bits <= 15; bits++ {
		rng := rand.New(rand.NewSource(int64(bits) * 104729))
		for _, hlen := range hlens {
			opt := newRefPerceptron(hlen, bits)
			ref := newRefPerceptron(hlen, bits)
			for step := 0; step < 200; step++ {
				hist := rng.Uint64()
				if rng.Intn(2) == 0 {
					got, want := dotScalar(opt.w, hist), referenceDot(ref.w, hist)
					if got != want {
						t.Fatalf("hlen=%d bits=%d step=%d: dotScalar = %d, reference %d",
							hlen, bits, step, got, want)
					}
				} else {
					tgt := 1 - 2*rng.Intn(2)
					trainScalar(opt.w, hist, tgt, opt.min, opt.max)
					referenceTrainStep(ref.w, hist, tgt, ref.min, ref.max)
					for i, w := range opt.w {
						if w != ref.w[i] {
							t.Fatalf("hlen=%d bits=%d step=%d: weight[%d] = %d, reference %d",
								hlen, bits, step, i, w, ref.w[i])
						}
					}
				}
			}
		}
	}
}

// TestTableKernelMatchesReference drives a full Table through the fast
// Output/Train paths and mirrors every op into reference perceptrons,
// checking the flat rows stay bit-identical (including row isolation:
// training one PC must not disturb any other row).
func TestTableKernelMatchesReference(t *testing.T) {
	const entries, hlen, bits = 16, 13, 6
	tbl := NewTable(entries, hlen, bits)
	refs := make([]*refPerceptron, entries)
	for i := range refs {
		refs[i] = newRefPerceptron(hlen, bits)
	}
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 4000; step++ {
		pc := rng.Uint64()
		hist := rng.Uint64()
		row := tbl.Index(pc)
		if rng.Intn(2) == 0 {
			if got, want := tbl.Output(pc, hist), refs[row].output(hist); got != want {
				t.Fatalf("step %d: Output(pc=%#x) = %d, reference %d", step, pc, got, want)
			}
		} else {
			tgt := 1 - 2*rng.Intn(2)
			tbl.Train(pc, hist, tgt)
			refs[row].train(hist, tgt)
		}
	}
	for i := 0; i < entries; i++ {
		got := tbl.Lookup(uint64(i) << 2).Weights()
		for j, w := range got {
			if w != refs[i].w[j] {
				t.Fatalf("row %d weight %d: %d != reference %d", i, j, w, refs[i].w[j])
			}
		}
	}
}

// FuzzKernelBitExact is the fuzz form of the equivalence proof: the
// fuzzer picks the geometry and an arbitrary interleaving of Output and
// Train ops (with histories and targets derived from the op stream) and
// the optimized and reference implementations must agree exactly.
func FuzzKernelBitExact(f *testing.F) {
	f.Add(uint8(32), uint8(8), int64(1), []byte{0, 1, 2, 3, 255, 128})
	f.Add(uint8(1), uint8(2), int64(2), []byte{7})
	f.Add(uint8(64), uint8(15), int64(3), []byte{0xAA, 0x55, 0x00, 0xFF})
	f.Add(uint8(13), uint8(5), int64(4), []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, hlenU, bitsU uint8, seed int64, ops []byte) {
		hlen := 1 + int(hlenU)%64  // 1..64
		bits := 2 + int(bitsU)%14  // 2..15
		p := New(hlen, bits)
		ref := newRefPerceptron(hlen, bits)
		rng := rand.New(rand.NewSource(seed))
		for step, op := range ops {
			hist := rng.Uint64()
			if op&1 == 0 {
				got, want := p.Output(hist), ref.output(hist)
				if got != want {
					t.Fatalf("hlen=%d bits=%d step=%d: Output = %d, reference %d",
						hlen, bits, step, got, want)
				}
			} else {
				tgt := 1
				if op&2 != 0 {
					tgt = -1
				}
				p.Train(hist, tgt)
				ref.train(hist, tgt)
			}
		}
		for i, w := range p.Weights() {
			if w != ref.w[i] {
				t.Fatalf("hlen=%d bits=%d: final weight[%d] = %d, reference %d",
					hlen, bits, i, w, ref.w[i])
			}
		}
	})
}

// TestTableLazyAllocation pins the lazy-materialization contract: a
// fresh table answers every geometry query without allocating weight
// storage (sweep jobs derive cache keys by constructing estimators just
// to read Name/SizeBytes — on a cache hit that must stay table-free),
// and the first real access builds the flat array exactly once.
func TestTableLazyAllocation(t *testing.T) {
	tbl := NewTable(128, 32, 8)
	_ = tbl.Entries()
	_ = tbl.HistoryLen()
	_ = tbl.WeightBits()
	_ = tbl.SizeBytes()
	tbl.Reset()
	if tbl.w != nil {
		t.Fatal("geometry queries materialized the backing array")
	}
	if y := tbl.Output(0x40, 0); y != 0 {
		t.Fatalf("fresh table Output = %d, want 0", y)
	}
	if tbl.w == nil {
		t.Fatal("access did not materialize the backing array")
	}
	if len(tbl.w) != 128*33 {
		t.Fatalf("backing array holds %d weights, want %d", len(tbl.w), 128*33)
	}
}

// TestTableResetReusesBacking pins the drive-by guarantee: Reset is a
// single clear of the flat backing array — same array before and after,
// zero allocations.
func TestTableResetReusesBacking(t *testing.T) {
	tbl := NewTable(64, 16, 8)
	tbl.Train(0x1000, 0xF0F0, 1)
	before := &tbl.w[0]
	if n := testing.AllocsPerRun(100, tbl.Reset); n != 0 {
		t.Errorf("Reset allocates %v times per call, want 0", n)
	}
	if &tbl.w[0] != before {
		t.Error("Reset replaced the backing array instead of clearing it")
	}
	if y := tbl.Output(0x1000, 0xF0F0); y != 0 {
		t.Errorf("Output after Reset = %d, want 0", y)
	}
}

// TestTableHotPathAllocFree pins the steady-state allocation contract
// of the simulation hot path: once materialized, Output and Train never
// allocate.
func TestTableHotPathAllocFree(t *testing.T) {
	tbl := NewTable(128, 32, 8)
	tbl.Output(0, 0) // materialize
	var pc uint64
	if n := testing.AllocsPerRun(200, func() {
		tbl.Output(pc, pc*0x9E3779B97F4A7C15)
		tbl.Train(pc, pc, 1)
		pc += 4
	}); n != 0 {
		t.Errorf("Output+Train allocate %v times per call, want 0", n)
	}
}
