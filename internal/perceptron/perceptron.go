// Package perceptron implements the single-layer perceptron used by
// both the confidence estimator (the paper's contribution, §3) and the
// Jimenez/Lin perceptron branch predictor (used as a baseline predictor
// in §5.2 and as the perceptron_tnt confidence baseline in §5.3).
//
// A perceptron is a vector of small signed saturating-integer weights
// w[0..n]; w[0] is the bias weight with an implicit always-1 input.
// The inputs x[1..n] are the global branch history bits mapped to ±1
// (taken = +1). The output is the dot product
//
//	y = w[0] + Σ w[i]·x[i]
//
// Because inputs are ±1 no multiplier is needed: each weight is added
// or subtracted (paper §5.4.2).
package perceptron

import "fmt"

// Weight is the storage type for perceptron weights. int16 comfortably
// holds any configured width up to 15 bits plus sign.
type Weight = int16

// Perceptron is one weight vector. Construct with New; the zero value
// has no weights and is unusable.
type Perceptron struct {
	// w[0] is the bias weight; w[1..n] pair with history bits 0..n-1.
	w        []Weight
	max, min Weight
}

// New returns a perceptron with n history inputs (n+1 weights, all
// zero) and `bits`-bit saturating weights (2..15). With bits = 8 the
// weights saturate at [-128, 127], the paper's default.
func New(n, bits int) *Perceptron {
	if n < 1 {
		panic(fmt.Sprintf("perceptron: need at least 1 input, got %d", n))
	}
	if bits < 2 || bits > 15 {
		panic(fmt.Sprintf("perceptron: weight bits %d outside [2,15]", bits))
	}
	max := Weight(1<<(bits-1) - 1)
	return &Perceptron{w: make([]Weight, n+1), max: max, min: -max - 1}
}

// Inputs returns the number of history inputs n.
func (p *Perceptron) Inputs() int { return len(p.w) - 1 }

// WeightRange returns the saturation bounds [min, max].
func (p *Perceptron) WeightRange() (min, max Weight) { return p.min, p.max }

// Weights exposes the raw weight vector (w[0] is the bias). The slice
// aliases the perceptron's storage; callers must not modify it.
func (p *Perceptron) Weights() []Weight { return p.w }

// Output computes the dot product of the weights with the ±1 inputs
// derived from hist: history bit i (0 = most recent branch, 1 = taken)
// contributes +w[i+1] when set and -w[i+1] when clear. The bias w[0]
// always contributes positively.
func (p *Perceptron) Output(hist uint64) int {
	y := int(p.w[0])
	for i := 1; i < len(p.w); i++ {
		if hist>>(uint(i)-1)&1 == 1 {
			y += int(p.w[i])
		} else {
			y -= int(p.w[i])
		}
	}
	return y
}

// Train adjusts the weights toward target t (±1) for the given history:
// w[i] += t·x[i] with saturation, where x[0] = 1 and x[i] = ±1 from
// hist. The caller decides *whether* to train (the threshold tests
// differ between the predictor and the confidence estimator).
func (p *Perceptron) Train(hist uint64, t int) {
	if t != 1 && t != -1 {
		panic(fmt.Sprintf("perceptron: train target %d not ±1", t))
	}
	p.w[0] = p.sat(int(p.w[0]) + t)
	for i := 1; i < len(p.w); i++ {
		d := t
		if hist>>(uint(i)-1)&1 == 0 {
			d = -t
		}
		p.w[i] = p.sat(int(p.w[i]) + d)
	}
}

func (p *Perceptron) sat(v int) Weight {
	if v > int(p.max) {
		return p.max
	}
	if v < int(p.min) {
		return p.min
	}
	return Weight(v)
}

// Reset zeroes all weights.
func (p *Perceptron) Reset() {
	for i := range p.w {
		p.w[i] = 0
	}
}

// Table is an array of perceptrons indexed by branch address, "just
// like in a regular branch predictor" (paper §3, Figure 3).
type Table struct {
	ps   []Perceptron
	bits int
	hlen int
}

// NewTable returns a table of `entries` perceptrons (rounded up to a
// power of two), each with hlen history inputs and bits-bit weights.
// The paper's default estimator is 128 entries × 32 history × 8 bits
// = 4 KB + bias weights.
func NewTable(entries, hlen, bits int) *Table {
	if entries < 1 {
		panic("perceptron: table needs at least one entry")
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	t := &Table{ps: make([]Perceptron, size), bits: bits, hlen: hlen}
	for i := range t.ps {
		t.ps[i] = *New(hlen, bits)
	}
	return t
}

// Entries returns the number of perceptrons.
func (t *Table) Entries() int { return len(t.ps) }

// HistoryLen returns the history inputs per perceptron.
func (t *Table) HistoryLen() int { return t.hlen }

// WeightBits returns the configured weight width.
func (t *Table) WeightBits() int { return t.bits }

// SizeBytes returns the storage the table would occupy in hardware:
// entries × (hlen+1) weights × bits, rounded up to whole bytes. Used to
// build the equal-budget comparisons of Table 6.
func (t *Table) SizeBytes() int {
	totalBits := len(t.ps) * (t.hlen + 1) * t.bits
	return (totalBits + 7) / 8
}

// Lookup returns the perceptron for a branch address.
func (t *Table) Lookup(pc uint64) *Perceptron {
	return &t.ps[(pc>>2)&uint64(len(t.ps)-1)]
}

// Reset zeroes every perceptron in the table.
func (t *Table) Reset() {
	for i := range t.ps {
		t.ps[i].Reset()
	}
}
