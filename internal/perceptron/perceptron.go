// Package perceptron implements the single-layer perceptron used by
// both the confidence estimator (the paper's contribution, §3) and the
// Jimenez/Lin perceptron branch predictor (used as a baseline predictor
// in §5.2 and as the perceptron_tnt confidence baseline in §5.3).
//
// A perceptron is a vector of small signed saturating-integer weights
// w[0..n]; w[0] is the bias weight with an implicit always-1 input.
// The inputs x[1..n] are the global branch history bits mapped to ±1
// (taken = +1). The output is the dot product
//
//	y = w[0] + Σ w[i]·x[i]
//
// Because inputs are ±1 no multiplier is needed: each weight is added
// or subtracted (paper §5.4.2). The add/subtract select is computed
// branchlessly with a sign mask (see kernel.go); the original branchy
// loops survive in reference.go as the executable specification the
// kernels are fuzzed against.
package perceptron

import "fmt"

// Weight is the storage type for perceptron weights. int16 comfortably
// holds any configured width up to 15 bits plus sign.
type Weight = int16

// Perceptron is one standalone weight vector. Construct with New; the
// zero value has no weights and is unusable. Table-resident perceptrons
// live in a Table's flat backing array and are reached with Lookup or
// the Table.Output/Table.Train fast paths.
type Perceptron struct {
	// w[0] is the bias weight; w[1..n] pair with history bits 0..n-1.
	w        []Weight
	max, min Weight
	bounds   int64 // packBounds(min, max), preformatted for trainStep
}

// New returns a perceptron with n history inputs (n+1 weights, all
// zero) and `bits`-bit saturating weights (2..15). With bits = 8 the
// weights saturate at [-128, 127], the paper's default.
func New(n, bits int) *Perceptron {
	if n < 1 {
		panic(fmt.Sprintf("perceptron: need at least 1 input, got %d", n))
	}
	max, min := weightRange(bits)
	return &Perceptron{w: make([]Weight, n+1), max: max, min: min, bounds: packBounds(min, max)}
}

// packBounds formats the saturation bounds as the single word
// trainStep takes: min in the low 16 bits, max sign-extended above.
// One packed argument instead of two keeps the Train wrappers inside
// the inlining budget, which is what keeps the train hot path a single
// call deep.
func packBounds(min, max Weight) int64 {
	return int64(max)<<16 | int64(uint16(min))
}

// weightRange returns the saturation bounds for a bits-bit weight,
// validating the width.
func weightRange(bits int) (max, min Weight) {
	if bits < 2 || bits > 15 {
		panic(fmt.Sprintf("perceptron: weight bits %d outside [2,15]", bits))
	}
	max = Weight(1<<(bits-1) - 1)
	return max, -max - 1
}

// Inputs returns the number of history inputs n.
func (p *Perceptron) Inputs() int { return len(p.w) - 1 }

// WeightRange returns the saturation bounds [min, max].
func (p *Perceptron) WeightRange() (min, max Weight) { return p.min, p.max }

// Weights exposes the raw weight vector (w[0] is the bias). The slice
// aliases the perceptron's storage; callers must not modify it.
func (p *Perceptron) Weights() []Weight { return p.w }

// Output computes the dot product of the weights with the ±1 inputs
// derived from hist: history bit i (0 = most recent branch, 1 = taken)
// contributes +w[i+1] when set and -w[i+1] when clear. The bias w[0]
// always contributes positively.
func (p *Perceptron) Output(hist uint64) int {
	return dot(p.w, hist)
}

// Train adjusts the weights toward target t (±1) for the given history:
// w[i] += t·x[i] with saturation, where x[0] = 1 and x[i] = ±1 from
// hist. The caller decides *whether* to train (the threshold tests
// differ between the predictor and the confidence estimator).
// Target validation lives inside trainStep (the assembly kernel checks
// and panics on a non-±1 target): a Go-side check would push this
// wrapper past the inlining budget and cost the hot path a second
// call level.
func (p *Perceptron) Train(hist uint64, t int) {
	trainStep(p.w, hist, t, p.bounds)
}

// Reset zeroes all weights.
func (p *Perceptron) Reset() {
	clear(p.w)
}

// Table is an array of perceptrons indexed by branch address, "just
// like in a regular branch predictor" (paper §3, Figure 3).
//
// The storage is struct-of-arrays: one contiguous []Weight backing
// array holding every row back to back, with no per-entry slice
// headers. A lookup is an offset computation into that array, rows
// shared by nearby branches stay in the same cache lines, and Reset is
// a single clear of the backing array. The array is materialized
// lazily on first access, so constructing a Table only to read its
// geometry — the result-cache key derivation does this for every
// estimator on every sweep job, hits included — allocates no weight
// storage at all.
type Table struct {
	// w is the flat backing array, entries × stride weights, row i at
	// w[i*stride : (i+1)*stride]. Nil until the first access.
	w        []Weight
	entries  int
	stride   int // hlen + 1 (bias first, then one weight per history bit)
	hlen     int
	bits     int
	max, min Weight
	bounds   int64  // packBounds(min, max), preformatted for trainStep
	mask     uint64 // entries - 1; entries is always a power of two
}

// NewTable returns a table of `entries` perceptrons, each with hlen
// history inputs and bits-bit weights. The paper's default estimator is
// 128 entries × 32 history × 8 bits = 4 KB + bias weights.
//
// Hardware tables are power-of-two indexed, so entries is rounded UP to
// the next power of two: NewTable(96, ...) builds a 128-entry table.
// Every observable property reflects the rounded size — Entries
// returns it and SizeBytes charges for it — so an equal-budget
// comparison (Table 6) that asks for a non-power-of-two entry count is
// silently comparing against the next size up. Pick power-of-two entry
// counts when the storage budget is the point of the experiment.
func NewTable(entries, hlen, bits int) *Table {
	if entries < 1 {
		panic("perceptron: table needs at least one entry")
	}
	if hlen < 1 {
		panic(fmt.Sprintf("perceptron: table needs at least 1 history input, got %d", hlen))
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	max, min := weightRange(bits)
	return &Table{
		entries: size,
		stride:  hlen + 1,
		hlen:    hlen,
		bits:    bits,
		max:     max,
		min:     min,
		bounds:  packBounds(min, max),
		mask:    uint64(size - 1),
	}
}

// Entries returns the number of perceptrons actually built — the
// requested count rounded up to a power of two (see NewTable).
func (t *Table) Entries() int { return t.entries }

// HistoryLen returns the history inputs per perceptron.
func (t *Table) HistoryLen() int { return t.hlen }

// WeightBits returns the configured weight width.
func (t *Table) WeightBits() int { return t.bits }

// SizeBytes returns the storage the table would occupy in hardware:
// entries × (hlen+1) weights × bits, rounded up to whole bytes. The
// entry count is the rounded power-of-two size, not the count NewTable
// was asked for — the Table 6 equal-budget comparisons depend on the
// charge matching the table that actually runs.
func (t *Table) SizeBytes() int {
	totalBits := t.entries * t.stride * t.bits
	return (totalBits + 7) / 8
}

// index maps a branch address to a row number.
func (t *Table) index(pc uint64) int { return int((pc >> 2) & t.mask) }

// row returns pc's row of the backing array, materializing the array on
// first use. The three-index slice caps the row so the kernels' bounds
// checks fold into the one computed here.
func (t *Table) row(pc uint64) []Weight {
	w := t.w
	if w == nil {
		w = t.materialize()
	}
	off := t.index(pc) * t.stride
	return w[off : off+t.stride : off+t.stride]
}

// materialize allocates the flat backing array: one allocation for the
// whole table, kept out of row so the hot path stays inlineable.
func (t *Table) materialize() []Weight {
	t.w = make([]Weight, t.entries*t.stride)
	return t.w
}

// Output computes pc's perceptron output against hist. This is the
// predictor/estimator hot path: an offset computation plus the
// branchless dot-product kernel, no intermediate views.
func (t *Table) Output(pc, hist uint64) int {
	return dot(t.row(pc), hist)
}

// Train applies one training step toward target tgt (±1) to pc's
// perceptron for the given history snapshot.
func (t *Table) Train(pc, hist uint64, tgt int) {
	trainStep(t.row(pc), hist, tgt, t.bounds) // trainStep validates tgt
}

// Batch is a struct-of-arrays block of scoring or training requests
// against one Table: request i is (PC[i], Hist[i]) plus, for training,
// the ±1 target Tgt[i]. OutputBatch fills Out with the perceptron
// outputs. The zero value is ready to use; Reset re-slices every
// column to length zero so a Batch can be reused cycle after cycle
// without allocating. The layout is deliberately flat — parallel
// slices, no per-request structs — so the batched SIMD kernels walk it
// with nothing but pointer increments.
type Batch struct {
	PC   []uint64
	Hist []uint64
	Out  []int32 // filled by OutputBatch, one output per request
	Tgt  []int8  // ±1 training targets, parallel to PC (TrainBatch only)
}

// Reset empties the batch, retaining every column's capacity.
func (b *Batch) Reset() {
	b.PC, b.Hist, b.Out, b.Tgt = b.PC[:0], b.Hist[:0], b.Out[:0], b.Tgt[:0]
}

// Len returns the number of requests in the batch.
func (b *Batch) Len() int { return len(b.PC) }

// Add appends one scoring request.
func (b *Batch) Add(pc, hist uint64) {
	b.PC = append(b.PC, pc)
	b.Hist = append(b.Hist, hist)
}

// AddTrain appends one training request toward target tgt (±1).
func (b *Batch) AddTrain(pc, hist uint64, tgt int) {
	if tgt != 1 && tgt != -1 {
		panic(fmt.Sprintf("perceptron: train target %d not ±1", tgt))
	}
	b.PC = append(b.PC, pc)
	b.Hist = append(b.Hist, hist)
	b.Tgt = append(b.Tgt, int8(tgt))
}

// OutputBatch computes every request's perceptron output in one pass,
// filling b.Out (resized in place, reusing its capacity). Results are
// bit-identical to calling Output per request; on whole-block
// geometries with the AVX2 tier the entire batch is a single kernel
// call, which is how the pipeline scores a fetch group of branches at
// once instead of paying the dispatch overhead N times.
func (t *Table) OutputBatch(b *Batch) {
	n := len(b.PC)
	if len(b.Hist) != n {
		panic(fmt.Sprintf("perceptron: batch has %d PCs but %d histories", n, len(b.Hist)))
	}
	if cap(b.Out) < n {
		b.Out = make([]int32, n)
	}
	b.Out = b.Out[:n]
	if n == 0 {
		return
	}
	w := t.w
	if w == nil {
		w = t.materialize()
	}
	outputBatch(t, w, b)
}

// TrainBatch applies every training request in one pass, in request
// order: duplicate rows within a batch observe earlier updates exactly
// as a sequence of Train calls would. Results are bit-identical to
// calling Train per request.
func (t *Table) TrainBatch(b *Batch) {
	n := len(b.PC)
	if len(b.Hist) != n || len(b.Tgt) != n {
		panic(fmt.Sprintf("perceptron: batch has %d PCs but %d histories, %d targets",
			n, len(b.Hist), len(b.Tgt)))
	}
	if n == 0 {
		return
	}
	w := t.w
	if w == nil {
		w = t.materialize()
	}
	trainBatch(t, w, b)
}

// outputBatchGeneric scores the batch row by row through the regular
// dispatch ladder: the portable fallback and the odd-geometry path.
func (t *Table) outputBatchGeneric(b *Batch) {
	for i, pc := range b.PC {
		b.Out[i] = int32(dot(t.row(pc), b.Hist[i]))
	}
}

// trainBatchGeneric applies the batch row by row, in request order.
func (t *Table) trainBatchGeneric(b *Batch) {
	for i, pc := range b.PC {
		trainStep(t.row(pc), b.Hist[i], int(b.Tgt[i]), t.bounds)
	}
}

// Row is a view of one table entry, aliasing the table's backing array.
// It exists for inspection and tests; the simulation hot paths go
// through Table.Output and Table.Train directly.
type Row struct {
	w        []Weight
	max, min Weight
	bounds   int64
}

// Lookup returns a view of the perceptron for a branch address.
func (t *Table) Lookup(pc uint64) Row {
	return Row{w: t.row(pc), max: t.max, min: t.min, bounds: t.bounds}
}

// Index returns the table row number a branch address maps to.
func (t *Table) Index(pc uint64) int { return t.index(pc) }

// Output computes the row's perceptron output for hist.
func (r Row) Output(hist uint64) int { return dot(r.w, hist) }

// Train applies one training step toward target t (±1).
func (r Row) Train(hist uint64, t int) {
	trainStep(r.w, hist, t, r.bounds) // trainStep validates t
}

// Weights exposes the row's weight vector (bias first), aliasing the
// table's storage; callers must not modify it.
func (r Row) Weights() []Weight { return r.w }

// Reset zeroes every perceptron in the table: one clear of the flat
// backing array, reusing it in place (no re-allocation, so sweep loops
// that reset between segments generate no garbage). A table that was
// never accessed has nothing to clear.
func (t *Table) Reset() {
	clear(t.w)
}
