package perceptron

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	p := New(32, 8)
	if p.Inputs() != 32 {
		t.Errorf("Inputs() = %d", p.Inputs())
	}
	min, max := p.WeightRange()
	if min != -128 || max != 127 {
		t.Errorf("WeightRange() = [%d,%d], want [-128,127]", min, max)
	}
	if len(p.Weights()) != 33 {
		t.Errorf("len(Weights()) = %d, want 33", len(p.Weights()))
	}
	if y := p.Output(0xFFFFFFFF); y != 0 {
		t.Errorf("fresh perceptron Output = %d, want 0", y)
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct{ n, bits int }{{0, 8}, {8, 1}, {8, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.n, tc.bits)
				}
			}()
			New(tc.n, tc.bits)
		}()
	}
}

func TestTrainPanicsOnBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Train(0) did not panic")
		}
	}()
	New(4, 8).Train(0, 0)
}

func TestOutputMatchesManualDot(t *testing.T) {
	p := New(4, 8)
	w := p.Weights()
	w[0], w[1], w[2], w[3], w[4] = 3, -2, 5, 0, 7
	// hist = 0b1010: bit0=0(-1), bit1=1(+1), bit2=0(-1), bit3=1(+1)
	want := 3 + (-1)*(-2) + (1)*5 + (-1)*0 + (1)*7
	if y := p.Output(0b1010); y != want {
		t.Errorf("Output = %d, want %d", y, want)
	}
}

func TestTrainMovesOutputTowardTarget(t *testing.T) {
	p := New(8, 8)
	hist := uint64(0b10110010)
	before := p.Output(hist)
	p.Train(hist, 1)
	after := p.Output(hist)
	// Each of the 9 weights moves the dot product by +1 in target
	// direction for this exact history.
	if after != before+9 {
		t.Errorf("after positive train: %d -> %d, want +9", before, after)
	}
	p.Train(hist, -1)
	if y := p.Output(hist); y != before {
		t.Errorf("train +1 then -1 is not inverse: %d != %d", y, before)
	}
}

func TestSaturation(t *testing.T) {
	p := New(2, 4) // weights in [-8, 7]
	hist := uint64(0b11)
	for i := 0; i < 100; i++ {
		p.Train(hist, 1)
	}
	for _, w := range p.Weights() {
		if w != 7 {
			t.Fatalf("weight %d not saturated at 7", w)
		}
	}
	for i := 0; i < 200; i++ {
		p.Train(hist, -1)
	}
	for _, w := range p.Weights() {
		if w != -8 {
			t.Fatalf("weight %d not saturated at -8", w)
		}
	}
}

// Property: weights always stay within the saturation bounds no matter
// the training sequence.
func TestSaturationQuick(t *testing.T) {
	f := func(seed int64, bitsU uint8, steps uint16) bool {
		bits := 2 + int(bitsU)%7 // 2..8
		p := New(16, bits)
		min, max := p.WeightRange()
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < int(steps)%500; i++ {
			tgt := 1
			if r.Intn(2) == 0 {
				tgt = -1
			}
			p.Train(r.Uint64(), tgt)
			for _, w := range p.Weights() {
				if w < min || w > max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Output is linear in the weights — flipping one history bit
// changes the output by exactly ±2·w[i+1].
func TestOutputFlipQuick(t *testing.T) {
	f := func(seed int64, hist uint64, bitU uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := New(16, 8)
		for i := 0; i < 50; i++ {
			tgt := 1
			if r.Intn(2) == 0 {
				tgt = -1
			}
			p.Train(r.Uint64(), tgt)
		}
		bit := int(bitU) % 16
		y0 := p.Output(hist)
		y1 := p.Output(hist ^ (1 << uint(bit)))
		w := int(p.Weights()[bit+1])
		diff := y1 - y0
		if hist>>uint(bit)&1 == 1 {
			return diff == -2*w
		}
		return diff == 2*w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A perceptron must learn any linearly separable function of the
// history; check a few: single-bit copy, inverted bit, majority.
func TestLearnsLinearlySeparable(t *testing.T) {
	cases := []struct {
		name string
		f    func(hist uint64) bool
	}{
		{"copy-bit3", func(h uint64) bool { return h>>3&1 == 1 }},
		{"not-bit5", func(h uint64) bool { return h>>5&1 == 0 }},
		{"majority-0,1,2", func(h uint64) bool {
			n := int(h&1) + int(h>>1&1) + int(h>>2&1)
			return n >= 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(8, 8)
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 2000; i++ {
				h := r.Uint64() & 0xFF
				tgt := -1
				if tc.f(h) {
					tgt = 1
				}
				y := p.Output(h)
				if (y >= 0) != tc.f(h) || abs(y) < 16 {
					p.Train(h, tgt)
				}
			}
			errs := 0
			for i := 0; i < 500; i++ {
				h := r.Uint64() & 0xFF
				if (p.Output(h) >= 0) != tc.f(h) {
					errs++
				}
			}
			if errs > 10 {
				t.Errorf("%d/500 errors after training", errs)
			}
		})
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestReset(t *testing.T) {
	p := New(4, 8)
	p.Train(0b1010, 1)
	p.Reset()
	for _, w := range p.Weights() {
		if w != 0 {
			t.Fatal("Reset left nonzero weight")
		}
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable(128, 32, 8)
	if tbl.Entries() != 128 || tbl.HistoryLen() != 32 || tbl.WeightBits() != 8 {
		t.Fatalf("table geometry: %d/%d/%d", tbl.Entries(), tbl.HistoryLen(), tbl.WeightBits())
	}
	// Paper: 128 entries × 33 weights × 8 bits = 4224 B ≈ 4 KB.
	if got := tbl.SizeBytes(); got != 128*33 {
		t.Errorf("SizeBytes = %d, want %d", got, 128*33)
	}
	a := tbl.Lookup(0x1000)
	b := tbl.Lookup(0x1000)
	if &a.Weights()[0] != &b.Weights()[0] {
		t.Error("Lookup not stable for same PC")
	}
	c := tbl.Lookup(0x1004)
	if &a.Weights()[0] == &c.Weights()[0] {
		t.Error("adjacent PCs alias to the same perceptron")
	}
	a.Train(0, 1)
	tbl.Reset()
	if a.Output(0) != 0 {
		t.Error("table Reset did not clear perceptron")
	}
}

// TestTableRoundsUp pins the power-of-two rounding contract the Table 6
// equal-budget comparisons depend on: a requested entry count rounds UP
// to the next power of two, and both Entries and SizeBytes report the
// table that actually runs — never the requested count.
func TestTableRoundsUp(t *testing.T) {
	cases := []struct {
		requested, entries int
	}{
		{1, 1}, {2, 2}, {3, 4}, {96, 128}, {128, 128}, {129, 256}, {1000, 1024},
	}
	const hlen, bits = 8, 8
	for _, tc := range cases {
		tbl := NewTable(tc.requested, hlen, bits)
		if tbl.Entries() != tc.entries {
			t.Errorf("NewTable(%d): Entries = %d, want %d", tc.requested, tbl.Entries(), tc.entries)
		}
		// The hardware budget is charged for the rounded size.
		wantBytes := (tc.entries*(hlen+1)*bits + 7) / 8
		if got := tbl.SizeBytes(); got != wantBytes {
			t.Errorf("NewTable(%d): SizeBytes = %d, want %d (charged for %d entries)",
				tc.requested, got, wantBytes, tc.entries)
		}
	}
}

func TestTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(0,...) did not panic")
		}
	}()
	NewTable(0, 8, 8)
}

func BenchmarkOutput32(b *testing.B) {
	p := New(32, 8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		p.Train(r.Uint64(), 1-2*(i&1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += p.Output(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}

// BenchmarkOutputReference32 measures the retained branchy reference
// kernel, the denominator of the branchless kernel's speedup claim.
func BenchmarkOutputReference32(b *testing.B) {
	p := New(32, 8)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		p.Train(r.Uint64(), 1-2*(i&1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += referenceDot(p.w, uint64(i)*0x9E3779B97F4A7C15)
	}
	_ = sink
}

func BenchmarkTrain32(b *testing.B) {
	p := New(32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Train(uint64(i)*0x9E3779B97F4A7C15, 1-2*(i&1))
	}
}

// BenchmarkTrainReference32 is the branchy baseline for Train.
func BenchmarkTrainReference32(b *testing.B) {
	p := New(32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		referenceTrainStep(p.w, uint64(i)*0x9E3779B97F4A7C15, 1-2*(i&1), p.min, p.max)
	}
}

// BenchmarkTableLookup measures the full table fast path — index,
// row slice, dot product — over a PC stream touching every entry.
func BenchmarkTableLookup(b *testing.B) {
	tbl := NewTable(128, 32, 8)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1024; i++ {
		tbl.Train(r.Uint64(), r.Uint64(), 1-2*(i&1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		pc := uint64(i) * 0x9E3779B97F4A7C15
		sink += tbl.Output(pc, pc^uint64(i))
	}
	_ = sink
}

// BenchmarkTableReset measures the flat-array clear.
func BenchmarkTableReset(b *testing.B) {
	tbl := NewTable(128, 32, 8)
	tbl.Train(0, ^uint64(0), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Reset()
	}
}
