package perceptron

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests for the perceptron invariants the estimator and
// predictor lean on: weights never escape their saturation bounds,
// training moves the output monotonically toward the target, and a
// linearly separable history is learned to perfect classification.

// TestWeightsStayInBoundsProperty trains a perceptron with arbitrary
// (history, target) sequences and checks every weight stays inside
// [min, max] at every step, for every configured width.
func TestWeightsStayInBoundsProperty(t *testing.T) {
	for _, bits := range []int{2, 4, 8, 15} {
		prop := func(hists []uint64, targets []bool) bool {
			p := New(16, bits)
			min, max := p.WeightRange()
			for i, h := range hists {
				tgt := -1
				if i < len(targets) && targets[i] {
					tgt = 1
				}
				p.Train(h, tgt)
				for _, w := range p.Weights() {
					if w < min || w > max {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{
			MaxCount: 200,
			Rand:     rand.New(rand.NewSource(int64(bits))),
		}); err != nil {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}

// TestOutputBoundedByWeights checks |Output| can never exceed the sum
// of |w_i|, itself bounded by (n+1)·|min| — the bound the estimator's
// band thresholds implicitly rely on.
func TestOutputBoundedByWeights(t *testing.T) {
	prop := func(hist uint64, seqs []uint64) bool {
		p := New(24, 8)
		for i, h := range seqs {
			tgt := 1
			if i%2 == 0 {
				tgt = -1
			}
			p.Train(h, tgt)
		}
		min, _ := p.WeightRange()
		bound := (p.Inputs() + 1) * int(-min)
		y := p.Output(hist)
		return y >= -bound && y <= bound
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(1)),
	}); err != nil {
		t.Error(err)
	}
}

// TestTrainingMovesOutputTowardTarget checks the core perceptron
// property: one training step at (hist, t) changes Output(hist) by
// exactly +t per non-saturated weight, so while any weight has
// headroom the output strictly moves toward the target, and it never
// moves away.
func TestTrainingMovesOutputTowardTarget(t *testing.T) {
	prop := func(hist uint64, tgtBit bool, warm []uint64) bool {
		p := New(12, 6)
		for i, h := range warm {
			w := 1
			if i%3 == 0 {
				w = -1
			}
			p.Train(h, w)
		}
		tgt := -1
		if tgtBit {
			tgt = 1
		}
		before := p.Output(hist)
		p.Train(hist, tgt)
		after := p.Output(hist)
		diff := after - before
		if tgt > 0 {
			// Move up by up to n+1 (saturated weights contribute 0),
			// never down.
			return diff >= 0 && diff <= p.Inputs()+1
		}
		return diff <= 0 && diff >= -(p.Inputs()+1)
	}
	if err := quick.Check(prop, &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(2)),
	}); err != nil {
		t.Error(err)
	}
}

// TestLearnsLinearlySeparableSequence trains on a function that is
// linearly separable in the history bits (the sign of one chosen bit)
// and requires perfect classification after a modest number of passes
// — the convergence theorem made concrete.
func TestLearnsLinearlySeparableSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, bit := range []uint{0, 3, 7} {
		p := New(8, 8)
		label := func(h uint64) int {
			if h>>bit&1 == 1 {
				return 1
			}
			return -1
		}
		hists := make([]uint64, 64)
		for i := range hists {
			hists[i] = rng.Uint64() & 0xFF
		}
		for pass := 0; pass < 20; pass++ {
			for _, h := range hists {
				// Perceptron rule: train only on mistakes (or zero
				// output, which classifies as neither side).
				if y := p.Output(h); (y > 0) != (label(h) > 0) || y == 0 {
					p.Train(h, label(h))
				}
			}
		}
		for _, h := range hists {
			y := p.Output(h)
			if (y > 0) != (label(h) > 0) {
				t.Errorf("bit=%d: misclassified hist %#x: output %d, want sign %d",
					bit, h, y, label(h))
			}
		}
	}
}
