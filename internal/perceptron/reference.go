package perceptron

// reference.go retains the original per-bit branchy kernels as the
// executable specification of the branchless ones in kernel.go. They
// are deliberately never called from production code: the fuzz and
// property tests (kernel_test.go) interleave arbitrary Output/Train
// sequences through both implementations at every weight width and
// require bit-identical weights and outputs, and the microbenchmarks
// keep the speedup of the shipping kernel measurable against them.
// Change these only when the perceptron semantics themselves change.

// referenceDot is the branchy specification of dot: history bit i
// (0 = most recent branch, 1 = taken) contributes +w[i+1] when set and
// -w[i+1] when clear; the bias w[0] always contributes positively.
func referenceDot(w []Weight, hist uint64) int {
	y := int(w[0])
	for i := 1; i < len(w); i++ {
		if hist>>(uint(i)-1)&1 == 1 {
			y += int(w[i])
		} else {
			y -= int(w[i])
		}
	}
	return y
}

// referenceTrainStep is the branchy specification of trainStep:
// w[i] += t·x[i] with saturation, where x[0] = 1 and x[i] = ±1 from
// hist.
func referenceTrainStep(w []Weight, hist uint64, t int, min, max Weight) {
	w[0] = referenceSat(int(w[0])+t, min, max)
	for i := 1; i < len(w); i++ {
		d := t
		if hist>>(uint(i)-1)&1 == 0 {
			d = -t
		}
		w[i] = referenceSat(int(w[i])+d, min, max)
	}
}

func referenceSat(v int, min, max Weight) Weight {
	if v > int(max) {
		return max
	}
	if v < int(min) {
		return min
	}
	return Weight(v)
}
