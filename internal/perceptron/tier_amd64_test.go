package perceptron

import (
	"math/rand"
	"testing"
)

// tier_amd64_test.go forces each rung of the kernel dispatch ladder in
// process — scalar, SSE2, AVX2 — and holds every rung to bit-exact
// agreement with the reference implementation. CI additionally runs
// the whole package under GODEBUG=cpu.avx2=off (and cpu.sse2=off) so
// the lower tiers are also covered as the *detected* configuration;
// these tests cover them on AVX2 hardware in a single run.

// availableTiers lists the (avx2, sse2) flag combinations the host can
// actually execute, lowest first. Tiers above the detected one would
// SIGILL, so they are never forced.
func availableTiers() [][2]bool {
	tiers := [][2]bool{{false, false}}
	if useSSE2 {
		tiers = append(tiers, [2]bool{false, true})
	}
	if useAVX2 {
		tiers = append(tiers, [2]bool{true, true})
	}
	return tiers
}

func tierName(tier [2]bool) string {
	switch {
	case tier[0]:
		return "avx2"
	case tier[1]:
		return "sse2"
	default:
		return "scalar"
	}
}

// TestKernelAllTiersBitExact runs the single-call equivalence proof at
// every executable tier.
func TestKernelAllTiersBitExact(t *testing.T) {
	hlens := []int{1, 3, 8, 13, 16, 31, 32, 33, 64}
	for _, tier := range availableTiers() {
		t.Run(tierName(tier), func(t *testing.T) {
			restore := setKernelTier(tier[0], tier[1])
			defer restore()
			for _, bits := range []int{2, 8, 15} {
				rng := rand.New(rand.NewSource(int64(bits) * 1299709))
				for _, hlen := range hlens {
					checkAgainstReference(t, hlen, bits, rng, 200)
				}
			}
		})
	}
}

// TestBatchAllTiersMatchesReference runs the interleaved batch/single
// equivalence proof at every executable tier, covering both the AVX2
// batched kernels and the generic row-by-row fallback the lower tiers
// dispatch to.
func TestBatchAllTiersMatchesReference(t *testing.T) {
	for _, tier := range availableTiers() {
		t.Run(tierName(tier), func(t *testing.T) {
			restore := setKernelTier(tier[0], tier[1])
			defer restore()
			for _, geo := range batchGeometries {
				tbl := NewTable(geo.entries, geo.hlen, geo.bits)
				ref := newRefTable(tbl)
				rng := rand.New(rand.NewSource(int64(geo.hlen)*31 + int64(geo.bits)))
				pc := func() uint64 { return rng.Uint64() % uint64(4*geo.entries) << 2 }
				var b Batch
				for step := 0; step < 150; step++ {
					if step%2 == 0 {
						b.Reset()
						n := 1 + rng.Intn(6)
						for i := 0; i < n; i++ {
							b.Add(pc(), rng.Uint64())
						}
						tbl.OutputBatch(&b)
						for i := 0; i < n; i++ {
							if got, want := int(b.Out[i]), ref.output(b.PC[i], b.Hist[i]); got != want {
								t.Fatalf("%+v step %d: OutputBatch[%d] = %d, reference %d",
									geo, step, i, got, want)
							}
						}
					} else {
						b.Reset()
						n := 1 + rng.Intn(6)
						for i := 0; i < n; i++ {
							tgt := 1 - 2*rng.Intn(2)
							p, h := pc(), rng.Uint64()
							b.AddTrain(p, h, tgt)
							ref.train(p, h, tgt)
						}
						tbl.TrainBatch(&b)
					}
				}
				ref.checkWeights(t)
			}
		})
	}
}

// TestKernelTierMatchesFlags pins KernelTier's naming to the dispatch
// flags the assembly actually reads.
func TestKernelTierMatchesFlags(t *testing.T) {
	for _, tier := range availableTiers() {
		restore := setKernelTier(tier[0], tier[1])
		if got, want := KernelTier(), tierName(tier); got != want {
			restore()
			t.Fatalf("KernelTier() = %q with flags %v, want %q", got, tier, want)
		}
		restore()
	}
}

// FuzzKernelTiersBitExact fuzzes the op-sequence equivalence proof
// across every executable tier at once: the same geometry and op
// stream must produce identical outputs and final weights at each
// rung, and each rung must match the reference.
func FuzzKernelTiersBitExact(f *testing.F) {
	f.Add(uint8(32), uint8(8), int64(1), []byte{0, 1, 2, 3, 255, 128})
	f.Add(uint8(1), uint8(2), int64(2), []byte{7})
	f.Add(uint8(64), uint8(15), int64(3), []byte{0xAA, 0x55, 0x00, 0xFF})
	f.Fuzz(func(t *testing.T, hlenU, bitsU uint8, seed int64, ops []byte) {
		hlen := 1 + int(hlenU)%64
		bits := 2 + int(bitsU)%14
		for _, tier := range availableTiers() {
			restore := setKernelTier(tier[0], tier[1])
			p := New(hlen, bits)
			ref := newRefPerceptron(hlen, bits)
			rng := rand.New(rand.NewSource(seed))
			for step, op := range ops {
				hist := rng.Uint64()
				if op&1 == 0 {
					if got, want := p.Output(hist), ref.output(hist); got != want {
						restore()
						t.Fatalf("%s hlen=%d bits=%d step=%d: Output = %d, reference %d",
							tierName(tier), hlen, bits, step, got, want)
					}
				} else {
					tgt := 1
					if op&2 != 0 {
						tgt = -1
					}
					p.Train(hist, tgt)
					ref.train(hist, tgt)
				}
			}
			for i, w := range p.Weights() {
				if w != ref.w[i] {
					restore()
					t.Fatalf("%s hlen=%d bits=%d: final weight[%d] = %d, reference %d",
						tierName(tier), hlen, bits, i, w, ref.w[i])
				}
			}
			restore()
		}
	})
}
