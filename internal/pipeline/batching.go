package pipeline

import (
	"bce/internal/config"
	"bce/internal/confidence"
)

// batching.go decides when the simulator may hand the confidence
// estimator a whole cycle's branches in one call (the SIMD-batched
// table kernels score a fetch group per crossing) and applies the
// deferred results. Batching is a pure execution-strategy change: it
// is enabled only when it is provably observation-identical to the
// sequential Estimate/Train protocol, so simulation results never
// depend on whether the estimator implements the batch interfaces.
//
// Retire-side training batches whenever the estimator supports it,
// telemetry is off and training happens at retirement: within
// retire() nothing reads estimator state between the Train calls of
// one cycle, so deferring them to one in-order TrainBatch at the end
// of the stage is exact (BatchTrainer's contract).
//
// Fetch-side estimation additionally requires reversal to be off and
// the estimator not to be a TraceOracle. With reversal off, nothing in
// the remainder of the fetch cycle depends on the token: the final
// direction is the prediction, so misprediction recovery and the
// wrong-path switch are decided without it, and the only token
// consumers — the gating arm and retire-time training — tolerate
// deferral to the end of the stage. The gating controller is only read
// at the top of fetch (Stalled) and resolved in complete, so arming in
// fetch order at the end of fetch leaves its state evolution
// untouched. A TraceOracle must be fed ground truth immediately before
// each Estimate, which is inherently sequential.

// initBatching resolves the batch eligibility rules against the
// estimator's capabilities and preallocates the per-cycle request
// columns. Telemetry disables batching outright: the Instrument
// wrapper emits one event per call, which batched calls would not
// reproduce (and the wrapper hides the batch interfaces anyway).
func (s *Sim) initBatching(m config.Machine) {
	if s.sink != nil || s.opt.SpeculativeCETrain {
		return
	}
	if bt, ok := s.est.(confidence.BatchTrainer); ok {
		s.trainBatcher = bt
		s.trainReqs = make([]confidence.TrainReq, 0, m.RetireWidth)
	}
	_, oracle := s.est.(confidence.TraceOracle)
	if be, ok := s.est.(confidence.BatchEstimator); ok && !oracle && !s.opt.Reversal {
		s.estBatcher = be
		s.estPCs = make([]uint64, 0, m.BranchPerCycle)
		s.estPred = make([]bool, 0, m.BranchPerCycle)
		s.estToks = make([]confidence.Token, m.BranchPerCycle)
		s.estIdx = make([]int32, 0, m.BranchPerCycle)
	}
}

// deferEstimate queues one fetched conditional branch for the
// end-of-fetch batched estimate. Only called on the estBatcher path,
// so the cycle's control flow past this point is prediction-only.
func (s *Sim) deferEstimate(e *inflight, idx int32) {
	s.estPCs = append(s.estPCs, e.u.PC)
	s.estPred = append(s.estPred, e.predTaken)
	s.estIdx = append(s.estIdx, idx)
}

// applyEstimates scores the cycle's deferred fetch group in one
// estimator call, stores each token with its branch and arms the
// gating counter for low-confidence estimates, in fetch order.
func (s *Sim) applyEstimates() {
	n := len(s.estIdx)
	s.estBatcher.EstimateBatch(s.estPCs, s.estPred, s.estToks[:n])
	armable := s.gate.Enabled()
	for i, idx := range s.estIdx {
		e := &s.pool[idx]
		e.tok = s.estToks[i]
		// Reversal is off on this path, so every low band gates.
		if armable && e.tok.Band.Low() {
			s.gate.OnFetch(e.seq, s.cycle)
			e.gated = true
		}
	}
	s.estPCs = s.estPCs[:0]
	s.estPred = s.estPred[:0]
	s.estIdx = s.estIdx[:0]
}

// applyTrains hands the cycle's retire group to the estimator in one
// in-order call.
func (s *Sim) applyTrains() {
	s.trainBatcher.TrainBatch(s.trainReqs)
	s.trainReqs = s.trainReqs[:0]
}
