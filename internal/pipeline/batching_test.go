package pipeline

import (
	"bytes"
	"testing"

	"bce/internal/confidence"
	"bce/internal/gating"
	"bce/internal/workload"
)

// batching_test.go proves the batched-estimator fast path is an
// execution-strategy change only: a simulation whose estimator batches
// fetch groups and retire groups produces byte-identical results to
// one forced through the sequential Estimate/Train protocol.

// sequentialOnly hides an estimator's batch interfaces, forcing the
// simulator onto the sequential protocol. Embedding the bare interface
// means the wrapper satisfies Estimator and nothing else.
type sequentialOnly struct{ confidence.Estimator }

func runEstimator(t *testing.T, workloadName string, opts Options, n uint64) []byte {
	t.Helper()
	prof, err := workload.ByName(workloadName)
	if err != nil {
		t.Fatal(err)
	}
	sim := New(opts, workload.New(prof))
	r := sim.Run(n)
	b, err := r.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchedEstimatorByteIdentical compares batched against
// sequential execution over configurations covering both batch tiers:
// gating-only (estimate and train batching both active) and reversal
// (train batching only — reversal needs the token mid-fetch, so the
// eligibility rules must keep estimation sequential and still agree).
func TestBatchedEstimatorByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		opts func(e confidence.Estimator) Options
	}{
		{"gating", func(e confidence.Estimator) Options {
			return Options{Estimator: e, Gating: gating.PL(1)}
		}},
		{"plain", func(e confidence.Estimator) Options {
			return Options{Estimator: e}
		}},
		{"reversal", func(e confidence.Estimator) Options {
			return Options{Estimator: e, Gating: gating.PL(2), Reversal: true}
		}},
	}
	cic := func() confidence.Estimator {
		return confidence.NewCICWith(confidence.CICConfig{Lambda: -25, Reversal: 50})
	}
	for _, tc := range cases {
		for _, wl := range []string{"gzip", "mcf"} {
			batched := runEstimator(t, wl, tc.opts(cic()), 60_000)
			sequential := runEstimator(t, wl, tc.opts(sequentialOnly{cic()}), 60_000)
			if !bytes.Equal(batched, sequential) {
				t.Errorf("%s/%s: batched run diverged from sequential run\nbatched:    %s\nsequential: %s",
					tc.name, wl, batched, sequential)
			}
		}
	}
}

// TestBatchedSimUsesBatchPath guards the eligibility rules themselves:
// the canonical gating configuration must actually select both batch
// tiers (otherwise the equivalence test above compares sequential with
// sequential), reversal must deselect estimate batching, and a live
// sink or speculative training must deselect everything.
func TestBatchedSimUsesBatchPath(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(opts Options) *Sim { return New(opts, workload.New(prof)) }
	cic := confidence.NewCIC(0)

	s := mk(Options{Estimator: cic, Gating: gating.PL(1)})
	if s.estBatcher == nil || s.trainBatcher == nil {
		t.Errorf("gating config: estBatcher=%v trainBatcher=%v, want both active",
			s.estBatcher != nil, s.trainBatcher != nil)
	}
	s = mk(Options{Estimator: cic, Reversal: true})
	if s.estBatcher != nil || s.trainBatcher == nil {
		t.Errorf("reversal config: estBatcher=%v trainBatcher=%v, want train-only",
			s.estBatcher != nil, s.trainBatcher != nil)
	}
	s = mk(Options{Estimator: cic, SpeculativeCETrain: true})
	if s.estBatcher != nil || s.trainBatcher != nil {
		t.Error("speculative-train config selected a batch path")
	}
	s = mk(Options{Estimator: sequentialOnly{cic}})
	if s.estBatcher != nil || s.trainBatcher != nil {
		t.Error("sequential-only estimator selected a batch path")
	}
	s = mk(Options{Estimator: confidence.NewOracle()})
	if s.estBatcher != nil {
		t.Error("trace-oracle estimator selected estimate batching")
	}
}

// TestBatchedRunAllocFree pins the fully-batched hot path: with both
// batch tiers active (gating, no reversal, nil sink), a warmed-up Run
// allocates nothing — the request columns are preallocated to the
// per-cycle caps and the kernels reuse the estimator's scratch block.
func TestBatchedRunAllocFree(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	sim := New(Options{Estimator: confidence.NewCIC(0), Gating: gating.PL(1)}, workload.New(prof))
	if sim.estBatcher == nil || sim.trainBatcher == nil {
		t.Fatal("configuration did not select the batch path")
	}
	sim.Run(20_000) // warmup: materialize tables, grow any lazy buffers
	if n := testing.AllocsPerRun(3, func() { sim.Run(2_000) }); n > 0 {
		t.Errorf("batched Run allocates %v times per call, want 0", n)
	}
}

// BenchmarkRunBatchedCIC / BenchmarkRunSequentialCIC quantify the
// fetch/retire hot-path win from batched estimation: same workload,
// same estimator configuration, batch interfaces visible vs hidden.
// Compare with:
//
//	go test ./internal/pipeline -bench 'Run(Batched|Sequential)CIC' -count 10 | benchstat
func BenchmarkRunBatchedCIC(b *testing.B) {
	benchmarkRunCIC(b, confidence.NewCIC(0))
}

func BenchmarkRunSequentialCIC(b *testing.B) {
	benchmarkRunCIC(b, sequentialOnly{confidence.NewCIC(0)})
}

func benchmarkRunCIC(b *testing.B, est confidence.Estimator) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	sim := New(Options{Estimator: est, Gating: gating.PL(1)}, workload.New(prof))
	sim.Run(10_000) // warmup
	b.ReportAllocs()
	b.ResetTimer()
	start := sim.Cycle()
	for i := 0; i < b.N; i++ {
		sim.Run(10_000)
	}
	b.StopTimer()
	if cycles := sim.Cycle() - start; cycles > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/sec")
	}
}
