package pipeline

import (
	"math/rand"
	"testing"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/workload"
)

// checkInvariants asserts the structural invariants that must hold at
// any cycle boundary.
func checkInvariants(t *testing.T, s *Sim) {
	t.Helper()
	m := s.opt.Machine
	if s.rob.len() > m.ROB {
		t.Fatalf("ROB occupancy %d > %d", s.rob.len(), m.ROB)
	}
	for cl, used := range s.windowUsed {
		if used < 0 || used > s.windowCap[cl] {
			t.Fatalf("window %d occupancy %d outside [0,%d]", cl, used, s.windowCap[cl])
		}
	}
	if s.loadsUsed < 0 || s.loadsUsed > m.LoadBufs {
		t.Fatalf("load buffer occupancy %d outside [0,%d]", s.loadsUsed, m.LoadBufs)
	}
	if s.storesUsed < 0 || s.storesUsed > m.StoreBufs {
		t.Fatalf("store buffer occupancy %d outside [0,%d]", s.storesUsed, m.StoreBufs)
	}
	if s.gate.Count() < 0 {
		t.Fatalf("gating counter negative")
	}
	// Pool conservation: free + fetchQ + rob == capacity.
	if got := len(s.free) + s.fetchQ.len() + s.rob.len(); got != len(s.pool) {
		t.Fatalf("pool leak: free %d + fetchq %d + rob %d != %d",
			len(s.free), s.fetchQ.len(), s.rob.len(), len(s.pool))
	}
	// Program order in the ROB.
	var prev uint64
	for i := 0; i < s.rob.len(); i++ {
		e := &s.pool[s.rob.at(i)]
		if e.seq <= prev {
			t.Fatalf("ROB order violated at %d: %d after %d", i, e.seq, prev)
		}
		prev = e.seq
	}
	// Scheduler-list consistency: every dispatched-not-issued uop in
	// the ROB has exactly one live waiting ref, every issued-not-done
	// uop exactly one live pending ref, and live refs never point at
	// anything else. Stale refs (seq mismatch) are allowed — squash
	// invalidates lazily — but double-entry is not.
	liveWaiting := make(map[int32]int)
	for _, ref := range s.waiting {
		if e := &s.pool[ref.idx]; e.seq == ref.seq {
			if e.state != sDispatched {
				t.Fatalf("live waiting ref to state %d (idx %d seq %d)", e.state, ref.idx, ref.seq)
			}
			liveWaiting[ref.idx]++
		}
	}
	livePending := make(map[int32]int)
	for _, ref := range s.pending {
		if e := &s.pool[ref.idx]; e.seq == ref.seq {
			if e.state != sIssued {
				t.Fatalf("live pending ref to state %d (idx %d seq %d)", e.state, ref.idx, ref.seq)
			}
			livePending[ref.idx]++
		}
	}
	for i := 0; i < s.rob.len(); i++ {
		idx := s.rob.at(i)
		e := &s.pool[idx]
		switch e.state {
		case sDispatched:
			if liveWaiting[idx] != 1 {
				t.Fatalf("dispatched uop seq %d has %d waiting refs, want 1", e.seq, liveWaiting[idx])
			}
		case sIssued:
			if livePending[idx] != 1 {
				t.Fatalf("issued uop seq %d has %d pending refs, want 1", e.seq, livePending[idx])
			}
		}
	}
	for idx, n := range liveWaiting {
		if n > 1 {
			t.Fatalf("pool slot %d has %d waiting refs", idx, n)
		}
	}
	for idx, n := range livePending {
		if n > 1 {
			t.Fatalf("pool slot %d has %d pending refs", idx, n)
		}
	}
}

// Randomized machine shapes must preserve the structural invariants
// every step and still retire everything asked of them.
func TestInvariantsUnderRandomMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		m := config.Baseline40x4()
		m.Name = "fuzz"
		m.FetchWidth = 1 + rng.Intn(8)
		m.DispatchWidth = 1 + rng.Intn(8)
		m.IssueWidth = 1 + rng.Intn(12)
		m.RetireWidth = 1 + rng.Intn(8)
		m.FrontendDepth = 2 + rng.Intn(18)
		m.BranchResolveExtra = rng.Intn(40)
		m.Depth = m.FrontendDepth + m.BranchResolveExtra + 5
		m.BranchPerCycle = 1 + rng.Intn(3)
		m.ROB = 16 << rng.Intn(4) // 16..128
		m.LoadBufs = 4 + rng.Intn(48)
		m.StoreBufs = 4 + rng.Intn(32)
		m.IntSched = 8 + rng.Intn(48)
		m.MemSched = 4 + rng.Intn(24)
		m.FPSched = 4 + rng.Intn(56)
		m.IntUnits = 1 + rng.Intn(4)
		m.MemUnits = 1 + rng.Intn(3)
		m.FPUnits = 1 + rng.Intn(2)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid machine: %v", trial, err)
		}
		bench := workload.Names()[rng.Intn(12)]
		var est confidence.Estimator
		pol := gating.Policy{}
		switch rng.Intn(3) {
		case 1:
			est = confidence.NewCIC(0)
			pol = gating.PL(1 + rng.Intn(3))
		case 2:
			est = confidence.NewEnhancedJRS(7)
			pol = gating.Policy{Threshold: 2, Latency: rng.Intn(10)}
		}
		s := New(Options{Machine: m, Estimator: est, Gating: pol}, gen(t, bench))
		target := uint64(4000)
		start := s.ctr.retired.Value()
		_ = start
		for steps := 0; s.ctr.retired.Value() < target; steps++ {
			s.step()
			if steps%512 == 0 {
				checkInvariants(t, s)
			}
			if steps > 5_000_000 {
				t.Fatalf("trial %d (%s on %dx%d): no forward progress", trial, bench,
					m.FetchWidth, m.Depth)
			}
		}
		checkInvariants(t, s)
	}
}

// Reversal plus gating plus estimator latency together must preserve
// the invariants and the retired-uop contract.
func TestInvariantsCombinedMechanisms(t *testing.T) {
	est := confidence.NewCICWith(confidence.CICConfig{Lambda: -75, Reversal: 50})
	s := New(Options{
		Estimator: est,
		Gating:    gating.Policy{Threshold: 2, Latency: 9},
		Reversal:  true,
	}, gen(t, "twolf"))
	for s.ctr.retired.Value() < 30_000 {
		s.step()
		if s.cycle%1024 == 0 {
			checkInvariants(t, s)
		}
	}
	checkInvariants(t, s)
}

// Two interleavings of Run() calls must be equivalent to one long run:
// warmup/measure splitting cannot change simulated behavior.
func TestRunSplitEquivalence(t *testing.T) {
	a := New(Options{Estimator: confidence.NewCIC(0), Gating: gating.PL(1)}, gen(t, "gzip"))
	ra1 := a.Run(10_000)
	ra2 := a.Run(10_000)
	ra3 := a.Run(10_000)

	b := New(Options{Estimator: confidence.NewCIC(0), Gating: gating.PL(1)}, gen(t, "gzip"))
	rb := b.Run(30_000)

	sum := ra1.Retired + ra2.Retired + ra3.Retired
	if sum != rb.Retired {
		t.Errorf("retired: split %d vs whole %d", sum, rb.Retired)
	}
	if got, want := ra1.Cycles+ra2.Cycles+ra3.Cycles, rb.Cycles; got != want {
		t.Errorf("cycles: split %d vs whole %d", got, want)
	}
	if got, want := ra1.Executed+ra2.Executed+ra3.Executed, rb.Executed; got != want {
		t.Errorf("executed: split %d vs whole %d", got, want)
	}
}
