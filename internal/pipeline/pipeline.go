// Package pipeline implements the cycle-driven out-of-order superscalar
// timing model the paper's experiments run on (§4, Table 1): a deep
// front end feeding a renamed ROB with per-class scheduling windows and
// execution units, a trace cache, load/store buffers, a data-cache
// hierarchy, speculative wrong-path execution with squash/recovery, and
// the pipeline-gating + branch-reversal machinery under study.
//
// The model is trace-driven: the workload generator supplies the
// correct path, and a WrongPath synthesizer supplies the uops fetched
// past a mispredicted branch until it resolves (see DESIGN.md,
// substitution 3).
//
// Update disciplines: the branch predictor predicts and trains at
// fetch in program order (standard trace-driven practice; wrong-path
// branches are predicted but never trained). The confidence estimator
// estimates at fetch and trains at retirement, as in the paper; each
// estimate carries its history snapshot so training replays exactly
// what the front end saw.
package pipeline

import (

	"bce/internal/cache"
	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
	"bce/internal/predictor"
	"bce/internal/telemetry"
	"bce/internal/trace"
	"bce/internal/workload"
)

// Options configures a simulation.
type Options struct {
	// Machine is the timing model; zero value means Baseline40x4.
	Machine config.Machine
	// Predictor is the branch predictor; nil means the Table 1
	// bimodal-gshare hybrid. Ignored when Perfect is set.
	Predictor predictor.Predictor
	// Estimator is the confidence estimator; nil means AlwaysHigh
	// (no confidence machinery).
	Estimator confidence.Estimator
	// Gating is the pipeline-gating policy (zero = disabled).
	Gating gating.Policy
	// Reversal reverses the direction of branches estimated strongly
	// low confident (§5.5). Only meaningful with an estimator that
	// produces StrongLow (PerceptronCIC with a reversal threshold, or
	// the oracle).
	Reversal bool
	// Perfect uses oracle branch prediction (no mispredictions); the
	// mispredict-free executed-uop counts of Table 2 come from this.
	Perfect bool
	// SpeculativeCETrain trains the confidence estimator at fetch
	// instead of retirement — an ablation of the paper's §3 argument
	// that training must wait until the branch is known to be on the
	// correct path. Wrong-path branches still never train (the trace
	// knows the path), so the ablation isolates the *timeliness*
	// effect from wrong-path pollution.
	SpeculativeCETrain bool
	// Hierarchy is the data-cache hierarchy; nil means the Table 1
	// baseline hierarchy.
	Hierarchy *cache.Hierarchy
	// Sink receives telemetry events (stage transitions, squashes,
	// gating, confidence estimates/training) as they happen. Nil means
	// telemetry is off; the simulation then never constructs an event,
	// so timing results and benchmark numbers are unaffected.
	Sink telemetry.Sink
	// WatchdogInterval is the forward-progress watchdog's patience: if
	// no uop retires for this many consecutive cycles, Run aborts by
	// panicking with a structured *WatchdogError instead of spinning
	// forever on a scheduler livelock. Zero means
	// DefaultWatchdogInterval; it cannot be disabled, only widened.
	WatchdogInterval uint64
}

const (
	sFetched uint8 = iota
	sDispatched
	sIssued
	sDone
)

const (
	clInt uint8 = iota
	clMem
	clFP
)

type renameEntry struct {
	idx int32
	seq uint64
}

// schedRef names a pool entry at a point in time: the slot index plus
// the seq it held when the reference was taken. Seqs are globally
// unique and release zeroes the slot's seq, so a stale reference (the
// uop was squashed, and the slot possibly reallocated) is detected by
// a single comparison — squash never has to search the scheduler
// lists.
type schedRef struct {
	idx int32
	seq uint64
}

type inflight struct {
	u         trace.Uop
	seq       uint64
	state     uint8
	class     uint8
	wrongPath bool

	dispatchAt uint64 // earliest dispatch cycle (fetch + frontend depth)
	doneAt     uint64

	// Producer tracking, resolved at dispatch (rename). A slot is
	// live while the referenced pool entry still holds the same seq
	// and is not Done; anything else means the operand is ready.
	src1Idx, src2Idx int32
	src1Seq, src2Seq uint64

	// Conditional-branch state.
	isBranch     bool
	predTaken    bool // raw predictor direction
	finalTaken   bool // after any reversal
	actualTaken  bool
	mispredOrig  bool // predTaken != actual (trains the estimator)
	mispredFinal bool // finalTaken != actual (what performance sees)
	reversed     bool
	gated        bool // armed the gating counter
	diverge      bool // correct-path branch that sends fetch down the wrong path
	tok          confidence.Token
}

// Sim is one simulation instance. Construct with New; Run may be
// called repeatedly (warmup then measurement) — state persists across
// calls, statistics do not.
type Sim struct {
	opt   Options
	gen   trace.Source
	wrong workload.PathSource
	pred  predictor.Predictor
	est   confidence.Estimator
	gate  *gating.Controller
	hier  *cache.Hierarchy
	tc    *cache.Cache
	sink  telemetry.Sink

	pool   []inflight
	free   []int32
	fetchQ ring // fetch order, awaiting dispatch
	rob    ring // program order, dispatched
	rename [trace.NumRegs]renameEntry
	ckpt   [trace.NumRegs]renameEntry // rename snapshot at the diverge branch

	// Scheduler fast-path lists: per-cycle work is proportional to the
	// uops actually moving, not to the ROB size. waiting holds
	// dispatched-not-issued refs in program order; pending holds
	// issued-not-done refs in issue order; due is complete()'s scratch
	// for the current cycle. Squashes invalidate refs lazily via seq.
	waiting []schedRef
	pending []schedRef
	due     []schedRef

	windowUsed [3]int
	windowCap  [3]int
	unitCap    [3]int
	loadsUsed  int
	storesUsed int

	// Batched-estimator fast path (see batching.go). Non-nil only when
	// handing a whole fetch group (estBatcher) or retire group
	// (trainBatcher) to the estimator in one call is provably identical
	// to the sequential protocol. The slices are preallocated to the
	// per-cycle caps, so the hot loop never allocates.
	estBatcher   confidence.BatchEstimator
	trainBatcher confidence.BatchTrainer
	estPCs       []uint64
	estPred      []bool
	estToks      []confidence.Token
	estIdx       []int32
	trainReqs    []confidence.TrainReq

	cycle      uint64
	seq        uint64
	stallUntil uint64

	peeked      trace.Uop
	peekedValid bool
	peekedWrong bool

	ctr          *runCounters
	lastRetireAt uint64
	divergeSeq   uint64
}

// New builds a simulation over a synthetic workload generator, wiring
// its CFG-walking wrong-path synthesizer. It panics on invalid machine
// configurations (experiment definitions are code, not user input).
func New(opt Options, gen *workload.Generator) *Sim {
	return NewFromSource(opt, gen, workload.NewWrongPath(gen))
}

// NewFromSource builds a simulation over any correct-path uop source
// and wrong-path synthesizer — e.g. a recorded trace replayed through
// workload.NewReplay. The source must be infinite relative to the
// requested run length.
func NewFromSource(opt Options, gen trace.Source, wrong workload.PathSource) *Sim {
	if gen == nil || wrong == nil {
		panic("pipeline: nil workload source")
	}
	if opt.Machine.Name == "" {
		opt.Machine = config.Baseline40x4()
	}
	if err := opt.Machine.Validate(); err != nil {
		panic(err)
	}
	m := opt.Machine
	s := &Sim{
		opt:   opt,
		gen:   gen,
		wrong: wrong,
		est:   opt.Estimator,
		gate:  gating.NewController(opt.Gating),
		hier:  opt.Hierarchy,
		sink:  opt.Sink,
		ctr:   newRunCounters(),
	}
	if s.est == nil {
		s.est = confidence.AlwaysHigh{}
	}
	if s.sink != nil {
		// Estimate/Train events come from inside the estimator wrapper,
		// so every caller of the estimator (retire-time training,
		// speculative-training ablations) is covered by one hook.
		s.est = confidence.Instrument(s.est, s.sink, func() uint64 { return s.cycle })
	}
	s.gate.SetTelemetry(s.sink, s.ctr.gateEpisode)
	if s.hier == nil {
		s.hier = cache.NewBaselineHierarchy()
	}
	if opt.Perfect {
		// Perfect mode bypasses prediction entirely in fetchBranch;
		// no predictor state is needed.
		s.pred = predictor.NewOracle()
	} else if opt.Predictor != nil {
		s.pred = opt.Predictor
	} else {
		s.pred = predictor.NewBaselineHybrid()
	}
	// Trace cache: capacity in uops at 4 bytes each, organized in
	// 64-byte (16-uop) lines.
	s.tc = cache.New(cache.Config{
		SizeBytes: m.TraceCacheUops * 4,
		Assoc:     m.TraceCacheAssoc,
		LineBytes: 64,
	})
	// Deep machines keep large instruction buffers ahead of dispatch
	// (§5.4.2); size the fetch queue to hold a full resolution shadow.
	fetchQCap := (m.FrontendDepth + m.BranchResolveExtra + 8) * m.FetchWidth
	poolCap := m.ROB + fetchQCap + 8
	s.pool = make([]inflight, poolCap)
	s.free = make([]int32, poolCap)
	for i := range s.free {
		s.free[i] = int32(poolCap - 1 - i)
	}
	s.fetchQ = newRing(fetchQCap)
	s.rob = newRing(m.ROB)
	// Steady-state bounds: waiting ≤ live window occupancy plus at most
	// one squash's worth of stale refs (compacted away next issue);
	// pending likewise relative to the ROB. Preallocate so the
	// scheduler never grows a list mid-run.
	windowSum := m.IntSched + m.MemSched + m.FPSched
	s.waiting = make([]schedRef, 0, 2*windowSum+m.DispatchWidth)
	s.pending = make([]schedRef, 0, 2*m.ROB)
	s.due = make([]schedRef, 0, m.ROB)
	s.windowCap = [3]int{m.IntSched, m.MemSched, m.FPSched}
	s.unitCap = [3]int{m.IntUnits, m.MemUnits, m.FPUnits}
	for r := range s.rename {
		s.rename[r] = renameEntry{idx: -1}
	}
	s.initBatching(m)
	return s
}

// Machine returns the simulated machine configuration.
func (s *Sim) Machine() config.Machine { return s.opt.Machine }

// Cycle returns the current simulated cycle.
func (s *Sim) Cycle() uint64 { return s.cycle }

// Hierarchy exposes the data-cache hierarchy (for statistics).
func (s *Sim) Hierarchy() *cache.Hierarchy { return s.hier }

func classOf(k trace.Kind) uint8 {
	switch {
	case k.IsMem():
		return clMem
	case k.IsFP():
		return clFP
	default:
		return clInt
	}
}

func (s *Sim) latency(u trace.Uop) uint64 {
	switch u.Kind {
	case trace.Store:
		// Stores probe and fill the hierarchy (they bring lines in and
		// occupy the bus) but the store buffer hides their latency.
		s.hier.Access(u.Addr, s.cycle)
		return 1
	case trace.CondBranch:
		// Resolution happens at the end of the execution pipeline;
		// until then younger wrong-path work keeps flowing.
		return 1 + uint64(s.opt.Machine.BranchResolveExtra)
	case trace.ALU, trace.Nop, trace.Jump, trace.Call, trace.Ret:
		return 1
	case trace.Mul:
		return 3
	case trace.Div:
		return 20
	case trace.FP:
		return 4
	case trace.FPDiv:
		return 24
	case trace.Load:
		return uint64(s.hier.Access(u.Addr, s.cycle))
	default:
		return 1
	}
}

func (s *Sim) alloc() int32 {
	n := len(s.free)
	if n == 0 {
		return -1
	}
	idx := s.free[n-1]
	s.free = s.free[:n-1]
	s.pool[idx] = inflight{src1Idx: -1, src2Idx: -1}
	return idx
}

func (s *Sim) release(idx int32) {
	s.pool[idx].seq = 0
	s.free = append(s.free, idx)
}

// Run advances the simulation until n more uops retire and returns the
// statistics for exactly that span. Call once with a warmup count
// (discard the result), then with the measurement count.
//
// Run is guarded by the forward-progress watchdog: if no uop retires
// for Options.WatchdogInterval cycles, it panics with a structured
// *WatchdogError describing the wedged machine state (the diagnostic
// is also emitted to the telemetry sink and counted in the registry)
// rather than spinning forever.
func (s *Sim) Run(n uint64) metrics.Run {
	s.ctr.reg.Reset()
	s.gate.ResetStats()
	s.lastRetireAt = s.cycle
	start := s.cycle
	retired := s.ctr.retired
	wd := s.opt.WatchdogInterval
	if wd == 0 {
		wd = DefaultWatchdogInterval
	}
	for retired.Value() < n {
		s.step()
		if s.cycle-s.lastRetireAt > wd {
			err := s.watchdogError(wd)
			s.ctr.watchdogAborts.Inc()
			if s.sink != nil {
				s.sink.Emit(telemetry.Event{Kind: telemetry.EvWatchdog, Cycle: s.cycle,
					Seq: s.divergeSeq, N: uint64(s.rob.len())})
			}
			panic(err)
		}
	}
	gc, ge := s.gate.Stats()
	return s.ctr.snapshot(s.cycle-start, gc, ge)
}

// step advances one cycle: retire, complete, issue, dispatch, fetch.
func (s *Sim) step() {
	s.retire()
	s.complete()
	s.issue()
	s.dispatch()
	s.fetch()
	s.cycle++
}
