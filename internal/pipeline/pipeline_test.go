package pipeline

import (
	"bytes"
	"testing"

	"bce/internal/confidence"
	"bce/internal/config"
	"bce/internal/gating"
	"bce/internal/metrics"
	"bce/internal/trace"
	"bce/internal/workload"
)

func gen(t testing.TB, name string) *workload.Generator {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return workload.New(p)
}

func run(t testing.TB, opt Options, bench string, warm, measure uint64) metrics.Run {
	t.Helper()
	s := New(opt, gen(t, bench))
	s.Run(warm)
	return s.Run(measure)
}

func TestPerfectRunHasNoWrongPath(t *testing.T) {
	r := run(t, Options{Perfect: true}, "gzip", 5000, 20000)
	if r.WrongPathExecuted != 0 {
		t.Errorf("perfect run executed %d wrong-path uops", r.WrongPathExecuted)
	}
	if r.Mispredicts != 0 {
		t.Errorf("perfect run mispredicted %d branches", r.Mispredicts)
	}
	if r.IPC() <= 0.3 {
		t.Errorf("perfect IPC = %.3f, suspiciously low", r.IPC())
	}
	if r.Retired < 20000 {
		t.Errorf("retired %d < requested", r.Retired)
	}
	// Executed can exceed retired only by in-flight uops at the
	// boundary, not by squashed work.
	if r.Executed > r.Retired+512 {
		t.Errorf("perfect run executed %d >> retired %d", r.Executed, r.Retired)
	}
}

func TestRealPredictorWastesWork(t *testing.T) {
	r := run(t, Options{}, "gzip", 10000, 40000)
	if r.Mispredicts == 0 {
		t.Fatal("no mispredicts with real predictor")
	}
	if r.WrongPathExecuted == 0 {
		t.Fatal("mispredicts but no wrong-path execution")
	}
	if r.Executed <= r.Retired {
		t.Errorf("executed %d <= retired %d despite mispredicts", r.Executed, r.Retired)
	}
	if r.MispredictsPer1KUops() < 1 || r.MispredictsPer1KUops() > 40 {
		t.Errorf("gzip mispredicts/Kuop = %.2f, implausible", r.MispredictsPer1KUops())
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, Options{}, "vpr", 5000, 20000)
	b := run(t, Options{}, "vpr", 5000, 20000)
	if a != b {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestGatingWithAlwaysHighMatchesBaseline(t *testing.T) {
	base := run(t, Options{}, "gzip", 5000, 20000)
	g := run(t, Options{
		Estimator: confidence.AlwaysHigh{},
		Gating:    gating.PL(1),
	}, "gzip", 5000, 20000)
	if base.Cycles != g.Cycles || base.Executed != g.Executed {
		t.Errorf("always-high gating changed timing: base %v vs %v", base, g)
	}
	if g.GatedCycles != 0 {
		t.Errorf("always-high gated %d cycles", g.GatedCycles)
	}
}

func TestGatingWithOracleEstimator(t *testing.T) {
	// The pipeline feeds ground truth to TraceOracle estimators right
	// before each Estimate, so the confidence oracle is exact.
	base := run(t, Options{}, "twolf", 5000, 30000)
	r := run(t, Options{
		Estimator: confidence.NewOracle(),
		Gating:    gating.PL(1),
	}, "twolf", 5000, 30000)

	if u := r.UopReductionPercent(base); u <= 3 {
		t.Errorf("oracle gating reduced uops by only %.1f%%", u)
	}
	// Oracle gating is not quite free: wrong-path execution warms the
	// trace cache and data caches (the paper's "there could be some
	// prefetch benefits" footnote), and gating forgoes that.
	p := r.PerfLossPercent(base)
	if p > 3 {
		t.Errorf("oracle gating lost %.1f%% performance; should be near-free", p)
	}
	if r.Confusion.PVN() < 0.99 {
		t.Errorf("oracle PVN = %.3f", r.Confusion.PVN())
	}
	if r.Confusion.Spec() < 0.99 {
		t.Errorf("oracle Spec = %.3f", r.Confusion.Spec())
	}
}

func TestReversalWithOracleFixesMispredicts(t *testing.T) {
	base := run(t, Options{}, "twolf", 5000, 30000)
	r := run(t, Options{
		Estimator: confidence.NewOracle(),
		Reversal:  true,
	}, "twolf", 5000, 30000)
	if r.Reversals == 0 {
		t.Fatal("no reversals happened")
	}
	if r.ReversalsGood != r.Reversals {
		t.Errorf("%d/%d reversals were good; oracle should be perfect",
			r.ReversalsGood, r.Reversals)
	}
	if r.Mispredicts != 0 {
		t.Errorf("oracle reversal left %d mispredicts (base %d)", r.Mispredicts, base.Mispredicts)
	}
	if s := r.SpeedupPercent(base); s <= 0 {
		t.Errorf("oracle reversal speedup = %.1f%%", s)
	}
}

func TestGatingReducesWrongPathWork(t *testing.T) {
	// Even an imperfect real estimator (CIC) must reduce executed
	// uops when gating, at some performance cost bounded well below
	// the reduction.
	base := run(t, Options{}, "mcf", 10000, 30000)
	g := run(t, Options{
		Estimator: confidence.NewCIC(0),
		Gating:    gating.PL(1),
	}, "mcf", 10000, 30000)
	if g.Executed >= base.Executed {
		t.Errorf("gating did not reduce executed uops: %d >= %d", g.Executed, base.Executed)
	}
	if g.GatedCycles == 0 {
		t.Error("no gated cycles recorded")
	}
}

func TestConfusionTotalsMatchRetiredBranches(t *testing.T) {
	r := run(t, Options{Estimator: confidence.NewCIC(0)}, "gcc", 5000, 30000)
	if r.Confusion.Branches() != r.RetiredBranches {
		t.Errorf("confusion counts %d != retired branches %d",
			r.Confusion.Branches(), r.RetiredBranches)
	}
	if r.RetiredBranches == 0 {
		t.Fatal("no branches retired")
	}
}

func TestAllMachinesAllBenchmarksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke sweep skipped in -short")
	}
	machines := []config.Machine{config.Baseline40x4(), config.Mid20x4(), config.Wide20x8()}
	for _, m := range machines {
		for _, name := range workload.Names() {
			r := run(t, Options{Machine: m}, name, 2000, 10000)
			if r.Retired < 10000 {
				t.Errorf("%s/%s: retired %d", m.Name, name, r.Retired)
			}
			if r.IPC() <= 0 || r.IPC() > float64(m.IssueWidth) {
				t.Errorf("%s/%s: IPC %.2f out of range", m.Name, name, r.IPC())
			}
		}
	}
}

func TestDeeperPipelineWastesMore(t *testing.T) {
	deep := run(t, Options{Machine: config.Baseline40x4()}, "vpr", 10000, 30000)
	shallow := run(t, Options{Machine: config.Mid20x4()}, "vpr", 10000, 30000)
	wasteDeep := float64(deep.WrongPathExecuted) / float64(deep.Retired)
	wasteShallow := float64(shallow.WrongPathExecuted) / float64(shallow.Retired)
	if wasteDeep <= wasteShallow {
		t.Errorf("deep pipeline waste %.3f <= shallow %.3f", wasteDeep, wasteShallow)
	}
}

func TestEstimatorLatencyDelaysGating(t *testing.T) {
	fast := run(t, Options{
		Estimator: confidence.NewCIC(0),
		Gating:    gating.Policy{Threshold: 1, Latency: 1},
	}, "mcf", 10000, 30000)
	slow := run(t, Options{
		Estimator: confidence.NewCIC(0),
		Gating:    gating.Policy{Threshold: 1, Latency: 9},
	}, "mcf", 10000, 30000)
	// Slower estimation gates later, so it saves (weakly) fewer uops.
	if slow.Executed < fast.Executed {
		t.Errorf("9-cycle estimator saved more than 1-cycle: %d < %d",
			slow.Executed, fast.Executed)
	}
}

func TestRunPanicsOnInvalidMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid machine did not panic")
		}
	}()
	m := config.Baseline40x4()
	m.ROB = 0
	New(Options{Machine: m}, gen(t, "gzip"))
}

func TestAccessors(t *testing.T) {
	s := New(Options{}, gen(t, "gzip"))
	if s.Machine().Name != "40c4w" {
		t.Error("default machine")
	}
	if s.Hierarchy() == nil {
		t.Error("nil hierarchy")
	}
	s.Run(100)
	if s.Cycle() == 0 {
		t.Error("cycle did not advance")
	}
}

func BenchmarkPipeline40c4w(b *testing.B) {
	s := New(Options{Estimator: confidence.NewCIC(0), Gating: gating.PL(1)}, gen(b, "gzip"))
	s.Run(5000)
	b.ResetTimer()
	s.Run(uint64(b.N))
}

func TestReplayedTraceSimulation(t *testing.T) {
	// Record a trace, replay it through the pipeline via the generic
	// source interface, and compare against the live-generator run.
	g := gen(t, "gzip")
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for i := 0; i < 120_000; i++ {
		u, _ := g.Next()
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	replay := workload.NewReplay(trace.NewReader(bytes.NewReader(buf.Bytes())))
	sim := NewFromSource(Options{Estimator: confidence.NewCIC(0), Gating: gating.PL(1)},
		replay, replay.WrongPath(1))
	sim.Run(20_000)
	r := sim.Run(60_000)
	if r.Retired < 60_000 {
		t.Fatalf("retired %d", r.Retired)
	}
	if r.Mispredicts == 0 || r.WrongPathExecuted == 0 {
		t.Fatalf("replayed run missing speculation: %+v", r)
	}

	// The same span simulated from the live generator must agree on
	// correct-path statistics (wrong-path differs: different
	// synthesizer).
	live := run(t, Options{Estimator: confidence.NewCIC(0), Gating: gating.PL(1)}, "gzip", 20_000, 60_000)
	if live.Retired != r.Retired || live.RetiredBranches != r.RetiredBranches {
		t.Errorf("correct-path divergence: live %d/%d vs replay %d/%d",
			live.Retired, live.RetiredBranches, r.Retired, r.RetiredBranches)
	}
}

func TestNewFromSourceNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil source did not panic")
		}
	}()
	NewFromSource(Options{}, nil, nil)
}
