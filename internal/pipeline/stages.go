package pipeline

import (
	"fmt"

	"bce/internal/confidence"
	"bce/internal/telemetry"
	"bce/internal/trace"
)

// ring is a fixed-capacity FIFO of pool indices. Index arithmetic
// wraps with a compare instead of %: the modulo was a measurable cost
// in the per-cycle walks, and capacities are not powers of two.
type ring struct {
	buf  []int32
	head int
	n    int
}

func newRing(capacity int) ring {
	return ring{buf: make([]int32, capacity)}
}

func (r *ring) len() int   { return r.n }
func (r *ring) full() bool { return r.n == len(r.buf) }

func (r *ring) push(v int32) {
	if r.full() {
		panic("pipeline: ring overflow")
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
}

func (r *ring) at(i int) int32 {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

func (r *ring) pop() int32 {
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return v
}

// truncate keeps the first keep entries, dropping the tail.
func (r *ring) truncate(keep int) { r.n = keep }

func (r *ring) clear() { r.n = 0 }

// retire drains completed uops in program order, training the
// confidence estimator and accumulating branch statistics. On the
// batched-estimator path the cycle's Train calls accumulate in
// retireCycle and are applied here as one in-order TrainBatch.
func (s *Sim) retire() {
	s.retireCycle()
	if s.trainBatcher != nil && len(s.trainReqs) > 0 {
		s.applyTrains()
	}
}

func (s *Sim) retireCycle() {
	m := s.opt.Machine
	for retired := 0; retired < m.RetireWidth && s.rob.len() > 0; retired++ {
		idx := s.rob.at(0)
		e := &s.pool[idx]
		if e.state != sDone {
			return
		}
		if e.wrongPath {
			panic(fmt.Sprintf("pipeline: wrong-path uop %d reached retirement", e.seq))
		}
		s.rob.pop()
		switch e.u.Kind {
		case trace.Load:
			s.loadsUsed--
		case trace.Store:
			s.storesUsed--
		}
		if e.isBranch {
			if s.trainBatcher != nil {
				s.trainReqs = append(s.trainReqs, confidence.TrainReq{
					PC: e.u.PC, Tok: e.tok, Mispredicted: e.mispredOrig, Taken: e.actualTaken})
			} else if !s.opt.SpeculativeCETrain {
				s.est.Train(e.u.PC, e.tok, e.mispredOrig, e.actualTaken)
			}
			s.ctr.retiredBranches.Inc()
			s.ctr.observeConfusion(e.mispredOrig, e.tok.Band.Low())
			if e.mispredFinal {
				s.ctr.mispredicts.Inc()
			}
			if e.reversed {
				s.ctr.reversals.Inc()
				if e.mispredOrig && !e.mispredFinal {
					s.ctr.reversalsGood.Inc()
				}
			}
			// dispatchAt is fetch cycle + front-end depth, so this is
			// the branch's full fetch-to-retire latency.
			s.ctr.resolveLatency.Observe(s.cycle - (e.dispatchAt - uint64(m.FrontendDepth)))
		}
		s.ctr.retired.Inc()
		s.lastRetireAt = s.cycle
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvRetire, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC})
		}
		s.release(idx)
	}
}

// complete marks issued uops whose latency elapsed as done, resolves
// branches for the gating counter and triggers misprediction recovery.
//
// Instead of walking the whole ROB it walks the pending list — only
// the uops actually in flight in an execution unit. Squashed entries
// are dropped lazily by the seq check (squash never edits the list),
// and the due set is processed in seq order, which is exactly the
// program order the full ROB scan used, so event order and recovery
// timing are unchanged.
func (s *Sim) complete() {
	pending := s.pending
	due := s.due[:0]
	keep := 0
	for _, ref := range pending {
		e := &s.pool[ref.idx]
		if e.seq != ref.seq || e.state != sIssued {
			continue // squashed (slot freed or reallocated) — drop
		}
		if e.doneAt > s.cycle {
			pending[keep] = ref
			keep++
			continue
		}
		due = append(due, ref)
	}
	s.pending = pending[:keep]
	// The pending list is in issue order, not program order; restore
	// seq order with an insertion sort (the due set is tiny — bounded
	// by the execution units draining in one cycle — and nearly sorted
	// already, and sort.Slice would allocate).
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j-1].seq > due[j].seq; j-- {
			due[j-1], due[j] = due[j], due[j-1]
		}
	}
	s.due = due
	divergeDone := false
	for _, ref := range due {
		e := &s.pool[ref.idx]
		e.state = sDone
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvComplete, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC, WrongPath: e.wrongPath})
		}
		if e.isBranch {
			if e.gated {
				s.gate.OnResolve(e.seq)
			}
			if e.diverge {
				divergeDone = true
			}
		}
	}
	if divergeDone {
		s.recover()
	}
}

// recover squashes everything younger than the resolved diverging
// branch, restores the rename checkpoint and redirects fetch to the
// correct path.
func (s *Sim) recover() {
	var squashed uint64
	// The ROB tail younger than divergeSeq is all wrong-path.
	keep := s.rob.len()
	for keep > 0 {
		e := &s.pool[s.rob.at(keep-1)]
		if e.seq <= s.divergeSeq {
			break
		}
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvSquashUop, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC})
		}
		s.squashEntry(e, s.rob.at(keep-1))
		squashed++
		keep--
	}
	s.rob.truncate(keep)
	// Everything still in the fetch queue is younger too.
	for i := 0; i < s.fetchQ.len(); i++ {
		idx := s.fetchQ.at(i)
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvSquashUop, Cycle: s.cycle, Seq: s.pool[idx].seq, PC: s.pool[idx].u.PC})
		}
		s.squashEntry(&s.pool[idx], idx)
		squashed++
	}
	s.fetchQ.clear()
	s.ctr.squashDepth.Observe(squashed)
	if s.sink != nil {
		s.sink.Emit(telemetry.Event{Kind: telemetry.EvSquash, Cycle: s.cycle, Seq: s.divergeSeq, N: squashed})
	}
	if s.peekedValid && s.peekedWrong {
		s.peekedValid = false
	}
	s.rename = s.ckpt
	s.wrong.Stop()
	if s.stallUntil < s.cycle+1 {
		s.stallUntil = s.cycle + 1 // redirect bubble
	}
}

// squashEntry releases an entry's resources and returns it to the
// pool. The caller removes it from whatever queue held it.
func (s *Sim) squashEntry(e *inflight, idx int32) {
	if e.state == sDispatched {
		s.windowUsed[e.class]--
	}
	if e.state != sFetched {
		switch e.u.Kind {
		case trace.Load:
			s.loadsUsed--
		case trace.Store:
			s.storesUsed--
		}
	}
	if e.gated {
		s.gate.OnResolve(e.seq)
	}
	s.release(idx)
}

// ready reports whether an entry's operands are available: a producer
// slot is outstanding only while the referenced pool entry still holds
// the same seq and has not completed.
func (s *Sim) ready(e *inflight) bool {
	if e.src1Idx >= 0 {
		p := &s.pool[e.src1Idx]
		if p.seq == e.src1Seq && p.state != sDone {
			return false
		}
		e.src1Idx = -1
	}
	if e.src2Idx >= 0 {
		p := &s.pool[e.src2Idx]
		if p.seq == e.src2Seq && p.state != sDone {
			return false
		}
		e.src2Idx = -1
	}
	return true
}

// issue selects ready uops oldest-first, subject to the global issue
// width and per-class execution-unit limits.
//
// The candidates live in the waiting list — only dispatched-not-issued
// uops, appended in dispatch order, which is program order, so
// oldest-first selection is a front-to-back walk rather than a full
// ROB scan. The walk compacts the list in place: issued uops move to
// the pending list and squashed ones (seq mismatch) drop out.
func (s *Sim) issue() {
	m := s.opt.Machine
	issued := 0
	var unitUsed [3]int
	w := s.waiting
	keep := 0
	for _, ref := range w {
		e := &s.pool[ref.idx]
		if e.seq != ref.seq || e.state != sDispatched {
			continue // squashed — drop
		}
		if issued >= m.IssueWidth {
			w[keep] = ref
			keep++
			continue
		}
		cl := e.class
		if unitUsed[cl] >= s.unitCap[cl] || !s.ready(e) {
			w[keep] = ref
			keep++
			continue
		}
		e.state = sIssued
		e.doneAt = s.cycle + s.latency(e.u)
		s.windowUsed[cl]--
		unitUsed[cl]++
		issued++
		s.pending = append(s.pending, ref)
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvIssue, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC, WrongPath: e.wrongPath})
		}
	}
	s.waiting = w[:keep]
}

// dispatch renames and inserts fetched uops into the ROB and
// scheduling windows, in order, as resources allow.
func (s *Sim) dispatch() {
	m := s.opt.Machine
	for n := 0; n < m.DispatchWidth && s.fetchQ.len() > 0; n++ {
		idx := s.fetchQ.at(0)
		e := &s.pool[idx]
		if e.dispatchAt > s.cycle || s.rob.full() {
			return
		}
		cl := e.class
		if s.windowUsed[cl] >= s.windowCap[cl] {
			return
		}
		switch e.u.Kind {
		case trace.Load:
			if s.loadsUsed >= m.LoadBufs {
				return
			}
		case trace.Store:
			if s.storesUsed >= m.StoreBufs {
				return
			}
		}
		s.fetchQ.pop()
		s.rob.push(idx)
		s.windowUsed[cl]++
		switch e.u.Kind {
		case trace.Load:
			s.loadsUsed++
		case trace.Store:
			s.storesUsed++
		}
		s.ctr.executed.Inc()
		if e.wrongPath {
			s.ctr.wrongPathExecuted.Inc()
		}
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvDispatch, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC, WrongPath: e.wrongPath})
		}
		s.renameSources(e)
		if e.u.Dst != trace.NoReg {
			s.rename[e.u.Dst] = renameEntry{idx: idx, seq: e.seq}
		}
		if e.diverge {
			s.ckpt = s.rename
		}
		e.state = sDispatched
		s.waiting = append(s.waiting, schedRef{idx: idx, seq: e.seq})
	}
}

func (s *Sim) renameSources(e *inflight) {
	e.src1Idx, e.src2Idx = -1, -1
	if r := e.u.Src1; r != trace.NoReg {
		if re := s.rename[r]; re.idx >= 0 {
			if p := &s.pool[re.idx]; p.seq == re.seq && p.state != sDone {
				e.src1Idx, e.src1Seq = re.idx, re.seq
			}
		}
	}
	if r := e.u.Src2; r != trace.NoReg {
		if re := s.rename[r]; re.idx >= 0 {
			if p := &s.pool[re.idx]; p.seq == re.seq && p.state != sDone {
				e.src2Idx, e.src2Seq = re.idx, re.seq
			}
		}
	}
}

// fetch pulls uops from the active path (correct or wrong), predicting
// and confidence-estimating conditional branches, honoring trace-cache
// misses, pipeline gating and redirect bubbles. On the
// batched-estimator path the cycle's fetch group of branches is
// estimated in one call after the fetch loop, whatever made it stop.
func (s *Sim) fetch() {
	s.fetchCycle()
	if s.estBatcher != nil && len(s.estIdx) > 0 {
		s.applyEstimates()
	}
}

func (s *Sim) fetchCycle() {
	if s.cycle < s.stallUntil {
		return
	}
	if s.gate.Stalled(s.cycle) {
		return
	}
	m := s.opt.Machine
	brBudget := m.BranchPerCycle
	for budget := m.FetchWidth; budget > 0; budget-- {
		if s.fetchQ.full() {
			return
		}
		if !s.peekedValid {
			if s.wrong.Active() {
				u, ok := s.wrong.Next()
				if !ok {
					panic("pipeline: active wrong path yielded nothing")
				}
				s.peeked, s.peekedWrong = u, true
			} else {
				u, ok := s.gen.Next()
				if !ok {
					panic("pipeline: workload stream ended")
				}
				s.peeked, s.peekedWrong = u, false
			}
			s.peekedValid = true
		}
		u := s.peeked
		// Trace-cache probe at line granularity.
		if !s.tc.Access(u.PC &^ 63) {
			s.stallUntil = s.cycle + uint64(m.TCMissPenalty)
			return
		}
		if u.Kind.IsConditional() {
			if brBudget == 0 {
				return
			}
			brBudget--
		}
		idx := s.alloc()
		if idx < 0 {
			return
		}
		s.seq++
		e := &s.pool[idx]
		e.u = u
		e.seq = s.seq
		e.class = classOf(u.Kind)
		e.wrongPath = s.peekedWrong
		e.dispatchAt = s.cycle + uint64(m.FrontendDepth)
		e.state = sFetched
		if u.Kind.IsConditional() {
			s.fetchBranch(e, idx)
		}
		s.fetchQ.push(idx)
		s.peekedValid = false
		s.ctr.fetched.Inc()
		if s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvFetch, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC, WrongPath: e.wrongPath})
		}
		// A diverging branch switches the fetch source; the rest of
		// this cycle's slots fill from the wrong path.
	}
}

// fetchBranch runs prediction, confidence estimation, reversal and
// gating for one fetched conditional branch. On the batched-estimator
// path the estimate is deferred to the end of the fetch stage; with
// reversal off (a precondition of that path) everything below the
// deferral point is prediction-only.
func (s *Sim) fetchBranch(e *inflight, idx int32) {
	e.isBranch = true
	e.actualTaken = e.u.Taken
	switch {
	case s.opt.Perfect:
		e.predTaken = e.actualTaken
	case e.wrongPath:
		// Predicted (it consumes prediction/estimation bandwidth and
		// can arm the gating counter) but never trained.
		e.predTaken = s.pred.Predict(e.u.PC)
	default:
		e.predTaken = s.pred.Predict(e.u.PC)
		s.pred.Update(e.u.PC, e.actualTaken)
	}
	if s.sink != nil {
		s.sink.Emit(telemetry.Event{Kind: telemetry.EvPredict, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC,
			Taken: e.predTaken, WrongPath: e.wrongPath})
	}
	if s.estBatcher != nil {
		e.finalTaken = e.predTaken
		e.mispredOrig = e.predTaken != e.actualTaken
		e.mispredFinal = e.mispredOrig
		s.deferEstimate(e, idx)
	} else {
		if or, ok := s.est.(confidence.TraceOracle); ok {
			or.ObserveNext(e.predTaken != e.actualTaken)
		}
		e.tok = s.est.Estimate(e.u.PC, e.predTaken)
		e.finalTaken = e.predTaken
		if s.opt.Reversal && e.tok.Band == confidence.StrongLow {
			e.finalTaken = !e.predTaken
			e.reversed = true
		}
		e.mispredOrig = e.predTaken != e.actualTaken
		e.mispredFinal = e.finalTaken != e.actualTaken
		if e.reversed && s.sink != nil {
			s.sink.Emit(telemetry.Event{Kind: telemetry.EvReversal, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC,
				Taken: e.finalTaken, Mispred: e.mispredOrig && !e.mispredFinal, WrongPath: e.wrongPath})
		}
		gateIt := e.tok.Band == confidence.WeakLow ||
			(e.tok.Band == confidence.StrongLow && !s.opt.Reversal)
		if gateIt && s.gate.Enabled() {
			s.gate.OnFetch(e.seq, s.cycle)
			e.gated = true
			if s.sink != nil {
				s.sink.Emit(telemetry.Event{Kind: telemetry.EvGateArm, Cycle: s.cycle, Seq: e.seq, PC: e.u.PC,
					WrongPath: e.wrongPath})
			}
		}
		if s.opt.SpeculativeCETrain && !e.wrongPath && !s.opt.Perfect {
			s.est.Train(e.u.PC, e.tok, e.mispredOrig, e.actualTaken)
		}
	}
	if e.mispredFinal && !e.wrongPath && !s.opt.Perfect {
		e.diverge = true
		s.divergeSeq = e.seq
		target := e.u.PC + 4
		if e.finalTaken {
			target = e.u.Target
		}
		s.wrong.Restart(target)
	}
}
