package pipeline

import (
	"bce/internal/metrics"
	"bce/internal/telemetry"
)

// runCounters is the simulation's statistics store: every tally the
// old code kept as an ad-hoc metrics.Run field increment now lives in
// a telemetry.Registry, pre-resolved into direct counter pointers so
// the hot path pays a pointer-chased increment — the same cost as the
// struct field it replaced. The registry view (Sim.Telemetry) adds the
// distribution statistics a flat Run cannot carry: squash depths,
// branch resolution latencies, gating episode lengths.
type runCounters struct {
	reg *telemetry.Registry

	retired           *telemetry.Counter
	executed          *telemetry.Counter
	fetched           *telemetry.Counter
	wrongPathExecuted *telemetry.Counter
	retiredBranches   *telemetry.Counter
	mispredicts       *telemetry.Counter
	reversals         *telemetry.Counter
	reversalsGood     *telemetry.Counter
	watchdogAborts    *telemetry.Counter

	confCorrectHigh *telemetry.Counter
	confCorrectLow  *telemetry.Counter
	confWrongHigh   *telemetry.Counter
	confWrongLow    *telemetry.Counter

	squashDepth    *telemetry.Histogram
	resolveLatency *telemetry.Histogram
	gateEpisode    *telemetry.Histogram
}

func newRunCounters() *runCounters {
	reg := telemetry.NewRegistry()
	return &runCounters{
		reg:               reg,
		retired:           reg.Counter("retired_uops"),
		executed:          reg.Counter("executed_uops"),
		fetched:           reg.Counter("fetched_uops"),
		wrongPathExecuted: reg.Counter("wrong_path_executed_uops"),
		retiredBranches:   reg.Counter("retired_branches"),
		mispredicts:       reg.Counter("mispredicts"),
		reversals:         reg.Counter("reversals"),
		reversalsGood:     reg.Counter("reversals_good"),
		watchdogAborts:    reg.Counter("watchdog_aborts"),
		confCorrectHigh:   reg.Counter("conf_correct_high"),
		confCorrectLow:    reg.Counter("conf_correct_low"),
		confWrongHigh:     reg.Counter("conf_wrong_high"),
		confWrongLow:      reg.Counter("conf_wrong_low"),
		squashDepth:       reg.Histogram("squash_depth_uops"),
		resolveLatency:    reg.Histogram("branch_resolve_cycles"),
		gateEpisode:       reg.Histogram("gate_episode_cycles"),
	}
}

// observeConfusion records one retired conditional branch in the
// confusion counters (the registry form of metrics.Confusion.Add).
func (c *runCounters) observeConfusion(mispredicted, lowConfidence bool) {
	switch {
	case mispredicted && lowConfidence:
		c.confWrongLow.Inc()
	case mispredicted:
		c.confWrongHigh.Inc()
	case lowConfidence:
		c.confCorrectLow.Inc()
	default:
		c.confCorrectHigh.Inc()
	}
}

// snapshot assembles the metrics.Run the tables consume from the
// registry counters. Cycle and gating totals come from the caller
// (they are owned by the simulation loop and the gating controller).
func (c *runCounters) snapshot(cycles, gatedCycles, gateEvents uint64) metrics.Run {
	return metrics.Run{
		Cycles:            cycles,
		Retired:           c.retired.Value(),
		Executed:          c.executed.Value(),
		Fetched:           c.fetched.Value(),
		WrongPathExecuted: c.wrongPathExecuted.Value(),
		RetiredBranches:   c.retiredBranches.Value(),
		Mispredicts:       c.mispredicts.Value(),
		Reversals:         c.reversals.Value(),
		ReversalsGood:     c.reversalsGood.Value(),
		GatedCycles:       gatedCycles,
		GateEvents:        gateEvents,
		Segments:          1,
		Confusion: metrics.Confusion{
			CorrectHigh: c.confCorrectHigh.Value(),
			CorrectLow:  c.confCorrectLow.Value(),
			WrongHigh:   c.confWrongHigh.Value(),
			WrongLow:    c.confWrongLow.Value(),
		},
	}
}

// Telemetry returns a snapshot of the simulation's metric registry for
// the span measured by the last Run call (counters reset when a run
// starts, like the Run statistics themselves).
func (s *Sim) Telemetry() telemetry.Snapshot { return s.ctr.reg.Snapshot() }
