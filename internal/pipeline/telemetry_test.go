package pipeline

import (
	"bytes"
	"io"
	"testing"

	"bce/internal/confidence"
	"bce/internal/gating"
	"bce/internal/metrics"
	"bce/internal/telemetry"
	"bce/internal/workload"
)

// tracedOptions is a configuration exercising every telemetry emission
// site: estimator, gating, reversal, squashes.
func tracedOptions(sink telemetry.Sink) Options {
	return Options{
		Estimator: confidence.NewCICWith(confidence.CICConfig{Lambda: -75, Reversal: 50}),
		Gating:    gating.PL(1),
		Reversal:  true,
		Sink:      sink,
	}
}

func runWithSink(t *testing.T, sink telemetry.Sink, n uint64) metrics.Run {
	t.Helper()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	sim := New(tracedOptions(sink), workload.New(prof))
	// No warmup: the sink observes exactly the measured span, so event
	// counts can be compared 1:1 against the Run counters.
	return sim.Run(n)
}

// TestTracedRunByteIdentical is the telemetry regression guarantee:
// attaching sinks must not move a single counter. Both runs flow
// through the same registry, so any divergence means an emission site
// has a side effect.
func TestTracedRunByteIdentical(t *testing.T) {
	const n = 30_000
	plain := runWithSink(t, nil, n)

	counting := &telemetry.CountingSink{}
	audit := telemetry.NewAudit()
	chrome := telemetry.NewChromeTrace(io.Discard)
	traced := runWithSink(t, telemetry.Multi(counting, audit, chrome), n)
	if err := chrome.Close(); err != nil {
		t.Fatal(err)
	}

	pb, err := plain.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := traced.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, tb) {
		t.Errorf("traced run diverged from untraced run:\nuntraced: %s\ntraced:   %s", pb, tb)
	}

	// The sinks must actually have seen the run.
	if counting.Count(telemetry.EvRetire) != traced.Retired {
		t.Errorf("EvRetire count %d != retired %d", counting.Count(telemetry.EvRetire), traced.Retired)
	}
	if counting.Count(telemetry.EvFetch) != traced.Fetched {
		t.Errorf("EvFetch count %d != fetched %d", counting.Count(telemetry.EvFetch), traced.Fetched)
	}
	if counting.Count(telemetry.EvEstimate) == 0 {
		t.Error("no estimate events")
	}
	if counting.Count(telemetry.EvTrain) == 0 {
		t.Error("no training events")
	}
	if audit.Branches() == 0 {
		t.Error("audit saw no branches")
	}
}

// TestTelemetrySnapshotMatchesRun checks the registry snapshot agrees
// with the Run assembled from the same counters.
func TestTelemetrySnapshotMatchesRun(t *testing.T) {
	prof, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	sim := New(tracedOptions(nil), workload.New(prof))
	r := sim.Run(20_000)
	snap := sim.Telemetry()
	for name, want := range map[string]uint64{
		"retired_uops":     r.Retired,
		"executed_uops":    r.Executed,
		"fetched_uops":     r.Fetched,
		"retired_branches": r.RetiredBranches,
		"mispredicts":      r.Mispredicts,
		"reversals":        r.Reversals,
	} {
		got, ok := snap.Counter(name)
		if !ok {
			t.Errorf("snapshot missing %q", name)
			continue
		}
		if got != want {
			t.Errorf("snapshot %s = %d, run says %d", name, got, want)
		}
	}
}

// BenchmarkRun measures the telemetry overhead claim: the nil-sink
// path must be within noise (<1%) of the pre-telemetry simulator, and
// the benchmark pair quantifies the cost of a live sink. Compare with:
//
//	go test ./internal/pipeline -bench 'Run(NilSink|CountingSink)' -count 10 | benchstat
func BenchmarkRunNilSink(b *testing.B)      { benchmarkRun(b, nil) }
func BenchmarkRunCountingSink(b *testing.B) { benchmarkRun(b, &telemetry.CountingSink{}) }

func benchmarkRun(b *testing.B, sink telemetry.Sink) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	sim := New(tracedOptions(sink), workload.New(prof))
	sim.Run(10_000) // warmup
	b.ReportAllocs()
	b.ResetTimer()
	start := sim.Cycle()
	for i := 0; i < b.N; i++ {
		sim.Run(10_000)
	}
	b.StopTimer()
	if cycles := sim.Cycle() - start; cycles > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/sec")
	}
}

// TestRunNilSinkAllocFree pins the scheduler + telemetry fast path:
// once warmed up, a nil-sink simulation allocates nothing per cycle —
// no events are constructed, the scheduler lists never grow, and the
// perceptron tables are fully materialized.
func TestRunNilSinkAllocFree(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	sim := New(tracedOptions(nil), workload.New(prof))
	sim.Run(20_000) // warmup: materialize tables, grow any lazy buffers
	if n := testing.AllocsPerRun(3, func() { sim.Run(2_000) }); n > 0 {
		t.Errorf("nil-sink Run allocates %v times per call, want 0", n)
	}
}
