package pipeline

import (
	"fmt"

	"bce/internal/trace"
)

// DefaultWatchdogInterval is the forward-progress watchdog's default
// patience: the number of consecutive cycles without a retirement
// after which Run aborts. It is orders of magnitude beyond any legal
// stall in the modeled machines (the longest is a full ROB of
// serialized memory-latency loads, tens of thousands of cycles).
const DefaultWatchdogInterval = 200_000

// HeadState is the ROB head's situation at watchdog time — the uop
// the whole machine is waiting on.
type HeadState struct {
	// Seq and PC identify the uop; Kind is its operation class.
	Seq, PC uint64
	Kind    trace.Kind
	// State is the pipeline stage name (fetched, dispatched, issued,
	// done).
	State string
	// WrongPath marks a uop that should have been squashed — a
	// wrong-path uop at the ROB head is itself an invariant violation.
	WrongPath bool
	// DispatchAt is the earliest dispatch cycle; DoneAt the scheduled
	// completion cycle (0 until issued). A DoneAt far in the future
	// points at a latency-modeling fault.
	DispatchAt, DoneAt uint64
	// WaitingOn counts unresolved source operands.
	WaitingOn int
}

// WatchdogError is the forward-progress watchdog's structured
// diagnostic: the simulator retired nothing for Interval cycles, and
// this is what the machine looked like when it was declared wedged.
// Run panics with it; runners recover the panic into a *PanicError
// whose Unwrap exposes this error, so sweeps can classify watchdog
// aborts with errors.As.
type WatchdogError struct {
	// Cycle is the abort cycle; LastRetire the last cycle a uop
	// retired; Interval the configured patience.
	Cycle, LastRetire, Interval uint64
	// ROB, FetchQ, Waiting and Pending are the occupancy of the
	// reorder buffer, the fetch queue and the scheduler's
	// waiting/pending lists (list lengths include lazily-invalidated
	// squashed refs). FreeSlots is the uop pool's free-list size.
	ROB, FetchQ, Waiting, Pending, FreeSlots int
	// Head describes the ROB head uop (nil when the ROB is empty — a
	// front-end livelock rather than a scheduling one).
	Head *HeadState
	// LastSquashSeq is the seq of the most recent diverging branch,
	// the prime suspect after a lazy-squash-invalidation bug.
	LastSquashSeq uint64
	// GateStalled reports whether pipeline gating was holding fetch;
	// StallUntil is the current fetch-stall deadline (trace-cache miss
	// or redirect bubble).
	GateStalled bool
	StallUntil  uint64
}

// Error implements error.
func (e *WatchdogError) Error() string {
	head := "rob empty (front-end livelock)"
	if e.Head != nil {
		head = fmt.Sprintf("head seq %d pc %#x %s state=%s waitingOn=%d dispatchAt=%d doneAt=%d wrongPath=%v",
			e.Head.Seq, e.Head.PC, e.Head.Kind, e.Head.State,
			e.Head.WaitingOn, e.Head.DispatchAt, e.Head.DoneAt, e.Head.WrongPath)
	}
	return fmt.Sprintf("pipeline: watchdog: no retirement for %d cycles at cycle %d (last retire %d): "+
		"rob=%d fetchq=%d waiting=%d pending=%d free=%d lastSquashSeq=%d gateStalled=%v stallUntil=%d; %s",
		e.Interval, e.Cycle, e.LastRetire,
		e.ROB, e.FetchQ, e.Waiting, e.Pending, e.FreeSlots,
		e.LastSquashSeq, e.GateStalled, e.StallUntil, head)
}

var stateNames = [...]string{sFetched: "fetched", sDispatched: "dispatched", sIssued: "issued", sDone: "done"}

// waitingOn counts an entry's unresolved source operands without
// mutating the entry (unlike ready, which clears resolved slots).
func (s *Sim) waitingOn(e *inflight) int {
	n := 0
	if e.src1Idx >= 0 {
		if p := &s.pool[e.src1Idx]; p.seq == e.src1Seq && p.state != sDone {
			n++
		}
	}
	if e.src2Idx >= 0 {
		if p := &s.pool[e.src2Idx]; p.seq == e.src2Seq && p.state != sDone {
			n++
		}
	}
	return n
}

// watchdogError assembles the structured no-forward-progress
// diagnostic from the simulator's current state.
func (s *Sim) watchdogError(interval uint64) *WatchdogError {
	e := &WatchdogError{
		Cycle:         s.cycle,
		LastRetire:    s.lastRetireAt,
		Interval:      interval,
		ROB:           s.rob.len(),
		FetchQ:        s.fetchQ.len(),
		Waiting:       len(s.waiting),
		Pending:       len(s.pending),
		FreeSlots:     len(s.free),
		LastSquashSeq: s.divergeSeq,
		GateStalled:   s.gate.Stalled(s.cycle),
		StallUntil:    s.stallUntil,
	}
	if s.rob.len() > 0 {
		h := &s.pool[s.rob.at(0)]
		e.Head = &HeadState{
			Seq:        h.seq,
			PC:         h.u.PC,
			Kind:       h.u.Kind,
			State:      stateNames[h.state],
			WrongPath:  h.wrongPath,
			DispatchAt: h.dispatchAt,
			DoneAt:     h.doneAt,
			WaitingOn:  s.waitingOn(h),
		}
	}
	return e
}
