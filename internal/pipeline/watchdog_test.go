package pipeline

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"bce/internal/cache"
	"bce/internal/confidence"
	"bce/internal/gating"
	"bce/internal/telemetry"
)

// hangHierarchy builds a data-cache hierarchy whose memory never
// answers within a simulation's lifetime: every L2 miss schedules its
// load's completion ~10^15 cycles out, so the first missing load
// wedges the ROB head and the watchdog must catch it.
func hangHierarchy() *cache.Hierarchy {
	return cache.NewHierarchy(cache.HierarchyConfig{
		Lat: cache.Latencies{L1: 3, L2: 16, Memory: 1 << 50},
	})
}

// The watchdog must convert a genuine livelock (a load that never
// completes) into a structured *WatchdogError panic with a populated
// machine-state diagnostic, a registry counter, and a telemetry event.
func TestWatchdogTripsOnHang(t *testing.T) {
	sink := &telemetry.CountingSink{}
	s := New(Options{
		Hierarchy:        hangHierarchy(),
		WatchdogInterval: 5_000,
		Sink:             sink,
	}, gen(t, "gzip"))

	var wde *WatchdogError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("run completed against a hung memory")
			}
			err, ok := r.(error)
			if !ok {
				t.Fatalf("panic value %T is not an error", r)
			}
			if !errors.As(err, &wde) {
				t.Fatalf("panic error %v is not a *WatchdogError", err)
			}
		}()
		s.Run(1_000_000)
	}()

	if wde.Interval != 5_000 {
		t.Errorf("Interval = %d, want 5000", wde.Interval)
	}
	if wde.Cycle-wde.LastRetire <= wde.Interval {
		t.Errorf("cycle %d - last retire %d not past interval %d",
			wde.Cycle, wde.LastRetire, wde.Interval)
	}
	if wde.Head == nil {
		t.Fatal("diagnostic has no ROB head; expected a wedged load")
	}
	if wde.Head.State != "issued" && wde.Head.State != "dispatched" {
		t.Errorf("head state %q, want issued or dispatched", wde.Head.State)
	}
	if wde.ROB == 0 {
		t.Error("ROB occupancy 0 in a back-end livelock")
	}
	if s.ctr.watchdogAborts.Value() != 1 {
		t.Errorf("watchdog_aborts = %d, want 1", s.ctr.watchdogAborts.Value())
	}
	if sink.Count(telemetry.EvWatchdog) != 1 {
		t.Errorf("EvWatchdog count = %d, want 1", sink.Count(telemetry.EvWatchdog))
	}
	msg := wde.Error()
	for _, want := range []string{"watchdog", "no retirement", "rob=", "head seq"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

// A healthy run — even a slow one with gating, reversal and a real
// memory hierarchy — must never trip the watchdog at its default
// patience.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	est := confidence.NewCICWith(confidence.CICConfig{Lambda: -75, Reversal: 50})
	s := New(Options{
		Estimator: est,
		Gating:    gating.Policy{Threshold: 1, Latency: 9},
		Reversal:  true,
	}, gen(t, "twolf"))
	s.Run(50_000)
	if got := s.ctr.watchdogAborts.Value(); got != 0 {
		t.Errorf("watchdog_aborts = %d on a healthy run", got)
	}
}

// The empty-ROB diagnostic path must not dereference a head.
func TestWatchdogErrorEmptyROB(t *testing.T) {
	s := New(Options{}, gen(t, "gzip"))
	e := s.watchdogError(100)
	if e.Head != nil {
		t.Fatalf("fresh sim reported head %+v", e.Head)
	}
	if !strings.Contains(e.Error(), "rob empty") {
		t.Errorf("Error() = %q missing empty-ROB note", e.Error())
	}
}

// chaosEstimator assigns random confidence bands, decoupled from any
// actual branch behavior. With Reversal on, random StrongLow bands
// reverse correct predictions into mispredicts, manufacturing dense
// squash/recovery storms far beyond what a real estimator produces.
type chaosEstimator struct {
	rng *rand.Rand
}

func (c *chaosEstimator) Estimate(pc uint64, predictedTaken bool) confidence.Token {
	band := confidence.Class(c.rng.Intn(3))
	return confidence.Token{Band: band, PredTaken: predictedTaken}
}

func (c *chaosEstimator) Train(pc uint64, tok confidence.Token, mispredicted, taken bool) {}

func (c *chaosEstimator) Name() string { return "chaos" }

// Squash/flush storms driven by a randomly-reversing estimator must
// preserve every structural invariant at every cycle and must not
// starve retirement long enough to trip the watchdog.
func TestInvariantsUnderSquashStorm(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		est := &chaosEstimator{rng: rand.New(rand.NewSource(seed))}
		s := New(Options{
			Estimator:        est,
			Gating:           gating.Policy{Threshold: 1, Latency: 3},
			Reversal:         true,
			WatchdogInterval: DefaultWatchdogInterval,
		}, gen(t, "gcc"))
		target := uint64(20_000)
		for steps := 0; s.ctr.retired.Value() < target; steps++ {
			s.step()
			checkInvariants(t, s)
			if s.cycle-s.lastRetireAt > DefaultWatchdogInterval {
				t.Fatalf("seed %d: watchdog window exceeded under squash storm at cycle %d",
					seed, s.cycle)
			}
			if steps > 5_000_000 {
				t.Fatalf("seed %d: no forward progress", seed)
			}
		}
		if s.ctr.reversals.Value() == 0 {
			t.Fatalf("seed %d: chaos estimator produced no reversals; storm never happened", seed)
		}
		checkInvariants(t, s)
	}
}
