package predictor

import "fmt"

// Hybrid combines two component predictors with a meta (chooser) table,
// McFarling-style. The baseline machine's "Combined: 16K bimodal, 64K
// gshare, 64K Meta" predictor (Table 1) is NewBaselineHybrid.
type Hybrid struct {
	a, b Predictor // meta selects: low half of chooser -> a, high -> b
	meta []SatCounter
	ghr  uint64
	hlen int
	mask uint64
	name string

	lastA, lastB bool // component predictions from the last Predict
	lastValid    bool
}

// NewHybrid combines predictors a and b with a metaEntries-entry
// chooser indexed gshare-style (PC ⊕ GHR).
func NewHybrid(name string, a, b Predictor, metaEntries int) *Hybrid {
	size := pow2(metaEntries)
	hlen := 0
	for 1<<uint(hlen+1) <= size && hlen < 16 {
		hlen++
	}
	h := &Hybrid{
		a: a, b: b,
		meta: make([]SatCounter, size),
		hlen: hlen,
		mask: uint64(size - 1),
		name: name,
	}
	for i := range h.meta {
		h.meta[i] = NewSatCounter(2)
	}
	return h
}

// NewBaselineHybrid returns the paper's baseline branch predictor:
// 16K-entry bimodal + 64K-entry gshare with a 64K-entry meta chooser.
func NewBaselineHybrid() *Hybrid {
	return NewHybrid("bimodal-gshare", NewBimodal(16*1024), NewGshare(64*1024), 64*1024)
}

// NewGsharePerceptronHybrid returns the better baseline predictor of
// §5.2: gshare combined with a Jimenez/Lin perceptron predictor
// (trained on taken/not-taken) under a meta chooser.
func NewGsharePerceptronHybrid() *Hybrid {
	return NewHybrid("gshare-perceptron",
		NewGshare(64*1024),
		NewPerceptron(512, 32, 8),
		64*1024)
}

// metaIndex indexes the chooser by PC alone. A history-hashed chooser
// spreads each branch's selection state over thousands of entries that
// each train too rarely to leave the initialization bias; per-branch
// indexing concentrates the training (McFarling's chooser is likewise
// PC-indexed).
func (h *Hybrid) metaIndex(pc uint64) int {
	return int((pc >> 2) & h.mask)
}

// Predict implements Predictor: the chooser selects between the two
// component predictions.
func (h *Hybrid) Predict(pc uint64) bool {
	h.lastA = h.a.Predict(pc)
	h.lastB = h.b.Predict(pc)
	h.lastValid = true
	if h.meta[h.metaIndex(pc)].Taken() {
		return h.lastB
	}
	return h.lastA
}

// Update implements Predictor. Both components train on every branch;
// the chooser trains toward the component that was correct when they
// disagreed. Update must follow the matching Predict in program order
// (the usual trace-driven discipline); if it does not, component
// predictions are recomputed.
func (h *Hybrid) Update(pc uint64, taken bool) {
	pa, pb := h.lastA, h.lastB
	if !h.lastValid {
		pa, pb = h.a.Predict(pc), h.b.Predict(pc)
	}
	h.lastValid = false
	if pa != pb {
		h.meta[h.metaIndex(pc)].Train(pb == taken)
	}
	h.a.Update(pc, taken)
	h.b.Update(pc, taken)
	h.ghr <<= 1
	if taken {
		h.ghr |= 1
	}
	h.ghr &= (1 << uint(h.hlen)) - 1
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return h.name }

// SelectedCounter returns the 2-bit counter backing the component the
// chooser selects for pc, when that component is counter-based; ok is
// false otherwise. This is what Smith's self-confidence estimator
// inspects (§2.3).
func (h *Hybrid) SelectedCounter(pc uint64) (ctr SatCounter, ok bool) {
	var sel Predictor = h.a
	if h.meta[h.metaIndex(pc)].Taken() {
		sel = h.b
	}
	switch p := sel.(type) {
	case *Bimodal:
		return *p.Counter(pc), true
	case *Gshare:
		return *p.Counter(pc), true
	default:
		return SatCounter{}, false
	}
}

// Components returns the two component predictors (a, b).
func (h *Hybrid) Components() (Predictor, Predictor) { return h.a, h.b }

var _ Predictor = (*Hybrid)(nil)

// Oracle is a perfect predictor used to measure speculation waste
// (Table 2 compares real-predictor runs against mispredict-free runs).
// The trace-driven simulator tells it each branch's outcome before
// asking for a prediction.
type Oracle struct {
	next map[uint64]bool
}

// NewOracle returns a perfect predictor.
func NewOracle() *Oracle { return &Oracle{next: make(map[uint64]bool)} }

// Observe records the resolved direction the next Predict(pc) must
// return.
func (o *Oracle) Observe(pc uint64, taken bool) { o.next[pc] = taken }

// Predict implements Predictor; it returns the last Observed outcome.
func (o *Oracle) Predict(pc uint64) bool { return o.next[pc] }

// Update implements Predictor (no state to train).
func (o *Oracle) Update(pc uint64, taken bool) {}

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

var _ Predictor = (*Oracle)(nil)

// Static always predicts one direction; a degenerate baseline useful in
// tests and sanity experiments.
type Static struct{ Taken bool }

// Predict implements Predictor.
func (s Static) Predict(pc uint64) bool { return s.Taken }

// Update implements Predictor.
func (s Static) Update(pc uint64, taken bool) {}

// Name implements Predictor.
func (s Static) Name() string {
	if s.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

var _ Predictor = Static{}

// String returns a short description for error messages.
func (h *Hybrid) String() string {
	return fmt.Sprintf("hybrid(%s: %s + %s, meta %d)", h.name, h.a.Name(), h.b.Name(), len(h.meta))
}
