package predictor

import (
	"fmt"

	"bce/internal/perceptron"
)

// Perceptron is the Jimenez/Lin perceptron branch predictor: an array
// of perceptrons indexed by PC, trained on taken/not-taken outcomes.
// It serves as a component of the gshare-perceptron hybrid baseline
// (§5.2), and its output magnitude |y| is what the perceptron_tnt
// confidence baseline thresholds (§5.3).
type Perceptron struct {
	tbl   *perceptron.Table
	ghr   uint64
	hlen  int
	theta int

	lastY     int
	lastValid bool
}

// NewPerceptron returns a perceptron predictor with the given table
// geometry. The training threshold follows Jimenez & Lin's empirical
// formula θ = ⌊1.93·h + 14⌋.
func NewPerceptron(entries, hlen, weightBits int) *Perceptron {
	return &Perceptron{
		tbl:   perceptron.NewTable(entries, hlen, weightBits),
		hlen:  hlen,
		theta: int(1.93*float64(hlen) + 14),
	}
}

// Theta returns the training threshold.
func (p *Perceptron) Theta() int { return p.theta }

// History returns the current global history register value.
func (p *Perceptron) History() uint64 { return p.ghr }

// Output computes the raw perceptron output y for pc against the
// current history. Positive y predicts taken.
func (p *Perceptron) Output(pc uint64) int {
	return p.tbl.Output(pc, p.ghr)
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool {
	p.lastY = p.Output(pc)
	p.lastValid = true
	return p.lastY >= 0
}

// LastOutput returns the y computed by the most recent Predict; valid
// only between a Predict and its matching Update.
func (p *Perceptron) LastOutput() (y int, ok bool) { return p.lastY, p.lastValid }

// Update implements Predictor: train when the prediction was wrong or
// the output magnitude was below θ, then shift the outcome into the
// history register.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.lastY
	if !p.lastValid {
		y = p.Output(pc)
	}
	p.lastValid = false
	mispredicted := (y >= 0) != taken
	if mispredicted || abs(y) <= p.theta {
		t := -1
		if taken {
			t = 1
		}
		p.tbl.Train(pc, p.ghr, t)
	}
	p.ghr <<= 1
	if taken {
		p.ghr |= 1
	}
	if p.hlen < 64 {
		p.ghr &= (1 << uint(p.hlen)) - 1
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string {
	return fmt.Sprintf("perceptron-%dx%dx%d", p.tbl.Entries(), p.tbl.HistoryLen(), p.tbl.WeightBits())
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var _ Predictor = (*Perceptron)(nil)
