// Package predictor implements the dynamic branch predictors the paper
// uses: the baseline bimodal/gshare/meta hybrid (Table 1), the
// Jimenez/Lin perceptron predictor, and the gshare-perceptron hybrid of
// §5.2, plus the simple components they are built from.
//
// All predictors follow the same discipline: Predict is called in
// program order at fetch for each conditional branch, and Update is
// called in program order with the resolved direction. Global history
// is maintained inside each predictor and updated with the *actual*
// outcome on Update, which models a front end whose speculative history
// is repaired on mispredictions.
package predictor

import "fmt"

// Predictor is a dynamic conditional-branch direction predictor.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// SatCounter is an n-bit saturating counter. The zero value is a
// counter at 0 with Max 0; construct via NewSatCounter or embed the
// value range manually.
type SatCounter struct {
	V   uint8
	Max uint8
}

// NewSatCounter returns a counter with the given bit width, initialized
// to the weakly-taken midpoint.
func NewSatCounter(bits int) SatCounter {
	max := uint8(1<<uint(bits) - 1)
	return SatCounter{V: max/2 + 1, Max: max}
}

// Inc increments with saturation.
func (c *SatCounter) Inc() {
	if c.V < c.Max {
		c.V++
	}
}

// Dec decrements with saturation.
func (c *SatCounter) Dec() {
	if c.V > 0 {
		c.V--
	}
}

// Taken reports the predicted direction (counter in upper half).
func (c *SatCounter) Taken() bool { return c.V > c.Max/2 }

// Strong reports whether the counter is at either extreme; Smith's
// self-confidence estimator classifies extreme counters as high
// confidence (§2.3).
func (c *SatCounter) Strong() bool { return c.V == 0 || c.V == c.Max }

// Train moves the counter toward the outcome.
func (c *SatCounter) Train(taken bool) {
	if taken {
		c.Inc()
	} else {
		c.Dec()
	}
}

func pow2(entries int) int {
	if entries < 1 {
		panic(fmt.Sprintf("predictor: table entries %d < 1", entries))
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	return size
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	ctrs []SatCounter
}

// NewBimodal returns a bimodal predictor with the given number of
// 2-bit counters (rounded up to a power of two).
func NewBimodal(entries int) *Bimodal {
	b := &Bimodal{ctrs: make([]SatCounter, pow2(entries))}
	for i := range b.ctrs {
		b.ctrs[i] = NewSatCounter(2)
	}
	return b
}

func (b *Bimodal) index(pc uint64) int { return int((pc >> 2) & uint64(len(b.ctrs)-1)) }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.ctrs[b.index(pc)].Taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) { b.ctrs[b.index(pc)].Train(taken) }

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%dK", len(b.ctrs)/1024) }

// Counter exposes the counter selected for pc, for Smith-style
// self-confidence estimation.
func (b *Bimodal) Counter(pc uint64) *SatCounter { return &b.ctrs[b.index(pc)] }

// Gshare XORs the PC with global history to index a table of 2-bit
// counters (McFarling).
type Gshare struct {
	ctrs []SatCounter
	ghr  uint64
	hlen int
	mask uint64
}

// NewGshare returns a gshare predictor with the given number of 2-bit
// counters; history length defaults to log2(entries) capped at 16.
func NewGshare(entries int) *Gshare {
	size := pow2(entries)
	hlen := 0
	for 1<<uint(hlen+1) <= size && hlen < 16 {
		hlen++
	}
	g := &Gshare{ctrs: make([]SatCounter, size), hlen: hlen, mask: uint64(size - 1)}
	for i := range g.ctrs {
		g.ctrs[i] = NewSatCounter(2)
	}
	return g
}

// HistoryLen returns the global history length used in the index.
func (g *Gshare) HistoryLen() int { return g.hlen }

func (g *Gshare) index(pc uint64) int {
	return int(((pc >> 2) ^ g.ghr) & g.mask)
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.ctrs[g.index(pc)].Taken() }

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	g.ctrs[g.index(pc)].Train(taken)
	g.pushHistory(taken)
}

func (g *Gshare) pushHistory(taken bool) {
	g.ghr <<= 1
	if taken {
		g.ghr |= 1
	}
	g.ghr &= (1 << uint(g.hlen)) - 1
}

// Counter exposes the currently selected counter (Smith estimator).
func (g *Gshare) Counter(pc uint64) *SatCounter { return &g.ctrs[g.index(pc)] }

// Name implements Predictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%dK", len(g.ctrs)/1024) }

// Local is a PAs-style two-level predictor: a table of per-branch local
// histories selects a pattern counter. Used by the Tyson pattern
// confidence baseline and available as a predictor component.
type Local struct {
	hist []uint16
	ctrs []SatCounter
	hlen int
}

// NewLocal returns a local predictor with histEntries local history
// registers of hlen bits and a 2^hlen-entry pattern table.
func NewLocal(histEntries, hlen int) *Local {
	if hlen < 1 || hlen > 14 {
		panic(fmt.Sprintf("predictor: local history length %d outside [1,14]", hlen))
	}
	l := &Local{
		hist: make([]uint16, pow2(histEntries)),
		ctrs: make([]SatCounter, 1<<uint(hlen)),
		hlen: hlen,
	}
	for i := range l.ctrs {
		l.ctrs[i] = NewSatCounter(2)
	}
	return l
}

func (l *Local) hindex(pc uint64) int { return int((pc >> 2) & uint64(len(l.hist)-1)) }

// Pattern returns pc's current local-history pattern.
func (l *Local) Pattern(pc uint64) uint16 { return l.hist[l.hindex(pc)] }

// HistoryLen returns the local history length.
func (l *Local) HistoryLen() int { return l.hlen }

// Predict implements Predictor.
func (l *Local) Predict(pc uint64) bool {
	return l.ctrs[l.Pattern(pc)].Taken()
}

// Update implements Predictor.
func (l *Local) Update(pc uint64, taken bool) {
	hi := l.hindex(pc)
	pat := l.hist[hi]
	l.ctrs[pat].Train(taken)
	pat <<= 1
	if taken {
		pat |= 1
	}
	l.hist[hi] = pat & uint16(1<<uint(l.hlen)-1)
}

// Name implements Predictor.
func (l *Local) Name() string { return fmt.Sprintf("local-%d/%d", len(l.hist), l.hlen) }
