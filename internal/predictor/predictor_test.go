package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// drive feeds n branch outcomes for one static branch through p and
// returns the misprediction count.
func drive(p Predictor, pc uint64, outcomes []bool) int {
	miss := 0
	for _, taken := range outcomes {
		if p.Predict(pc) != taken {
			miss++
		}
		p.Update(pc, taken)
	}
	return miss
}

func repeat(pattern []bool, n int) []bool {
	out := make([]bool, 0, n)
	for len(out) < n {
		out = append(out, pattern...)
	}
	return out[:n]
}

func TestSatCounter(t *testing.T) {
	c := NewSatCounter(2)
	if c.V != 2 || c.Max != 3 {
		t.Fatalf("NewSatCounter(2) = %+v", c)
	}
	if !c.Taken() {
		t.Error("midpoint+1 should predict taken")
	}
	c.Inc()
	c.Inc() // saturate at 3
	if c.V != 3 || !c.Strong() {
		t.Errorf("V=%d Strong=%v", c.V, c.Strong())
	}
	for i := 0; i < 5; i++ {
		c.Dec()
	}
	if c.V != 0 || !c.Strong() || c.Taken() {
		t.Errorf("V=%d Strong=%v Taken=%v", c.V, c.Strong(), c.Taken())
	}
	c.Train(true)
	if c.V != 1 || c.Strong() {
		t.Errorf("after Train(true): V=%d", c.V)
	}
}

// Property: counter value stays within [0, Max] for any training
// sequence.
func TestSatCounterQuick(t *testing.T) {
	f := func(bitsU uint8, seq []bool) bool {
		bits := 1 + int(bitsU)%4
		c := NewSatCounter(bits)
		for _, taken := range seq {
			c.Train(taken)
			if c.V > c.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	miss := drive(b, 0x4000, repeat([]bool{true}, 100))
	if miss > 2 {
		t.Errorf("bimodal missed %d/100 on always-taken", miss)
	}
	miss = drive(b, 0x4004, repeat([]bool{false}, 100))
	if miss > 3 {
		t.Errorf("bimodal missed %d/100 on always-not-taken", miss)
	}
}

func TestBimodalCannotLearnAlternating(t *testing.T) {
	b := NewBimodal(1024)
	miss := drive(b, 0x4000, repeat([]bool{true, false}, 200))
	if miss < 80 {
		t.Errorf("bimodal missed only %d/200 on alternating; suspicious", miss)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	g := NewGshare(4096)
	miss := drive(g, 0x4000, repeat([]bool{true, false}, 400))
	// After warmup the T,N,T,N pattern is perfectly predictable from
	// history.
	if miss > 40 {
		t.Errorf("gshare missed %d/400 on alternating", miss)
	}
}

func TestGshareHistoryLen(t *testing.T) {
	if got := NewGshare(64 * 1024).HistoryLen(); got != 16 {
		t.Errorf("64K gshare history = %d, want 16", got)
	}
	if got := NewGshare(256).HistoryLen(); got != 8 {
		t.Errorf("256-entry gshare history = %d, want 8", got)
	}
}

func TestLocalLearnsShortLoop(t *testing.T) {
	l := NewLocal(1024, 10)
	// Loop branch: taken 4 times, then not taken, repeating.
	pattern := []bool{true, true, true, true, false}
	miss := drive(l, 0x4000, repeat(pattern, 600))
	if miss > 60 {
		t.Errorf("local missed %d/600 on loop pattern", miss)
	}
}

func TestHybridTracksBetterComponent(t *testing.T) {
	h := NewBaselineHybrid()
	// Alternating pattern: gshare learns it, bimodal cannot. The
	// hybrid must converge to gshare's accuracy.
	outcomes := repeat([]bool{true, false}, 1000)
	miss := drive(h, 0x4000, outcomes)
	if miss > 100 {
		t.Errorf("hybrid missed %d/1000 on alternating", miss)
	}
	// Pure bias: everyone learns it.
	miss = drive(h, 0x8000, repeat([]bool{true}, 200))
	if miss > 5 {
		t.Errorf("hybrid missed %d/200 on always-taken", miss)
	}
}

func TestHybridUpdateWithoutPredict(t *testing.T) {
	h := NewBaselineHybrid()
	// Must not panic or corrupt state when Update arrives without a
	// preceding Predict (the recompute path).
	h.Update(0x4000, true)
	h.Predict(0x4000)
	h.Update(0x4000, true)
}

func TestHybridSelectedCounter(t *testing.T) {
	h := NewBaselineHybrid()
	for i := 0; i < 50; i++ {
		h.Predict(0x4000)
		h.Update(0x4000, true)
	}
	ctr, ok := h.SelectedCounter(0x4000)
	if !ok {
		t.Fatal("SelectedCounter not ok for counter-based components")
	}
	if !ctr.Strong() || !ctr.Taken() {
		t.Errorf("after 50 taken: ctr=%+v", ctr)
	}
	a, b := h.Components()
	if a == nil || b == nil {
		t.Fatal("Components returned nil")
	}
}

func TestPerceptronPredictorLearnsHistoryFunction(t *testing.T) {
	p := NewPerceptron(64, 16, 8)
	r := rand.New(rand.NewSource(3))
	// Outcome = direction of the branch 3 steps ago (history bit 2):
	// linearly separable, so the perceptron must learn it.
	miss := 0
	var hist []bool
	for i := 0; i < 3000; i++ {
		taken := r.Intn(2) == 0
		if len(hist) >= 3 {
			taken = hist[len(hist)-3]
		}
		got := p.Predict(0x4000)
		if i > 1000 && got != taken {
			miss++
		}
		p.Update(0x4000, taken)
		hist = append(hist, taken)
	}
	if miss > 200 {
		t.Errorf("perceptron missed %d/2000 on history-copy function", miss)
	}
}

func TestPerceptronTheta(t *testing.T) {
	p := NewPerceptron(128, 32, 8)
	if p.Theta() != 75 { // floor(1.93*32 + 14)
		t.Errorf("Theta = %d", p.Theta())
	}
}

func TestPerceptronLastOutput(t *testing.T) {
	p := NewPerceptron(64, 8, 8)
	if _, ok := p.LastOutput(); ok {
		t.Error("LastOutput valid before any Predict")
	}
	p.Predict(0x4000)
	if _, ok := p.LastOutput(); !ok {
		t.Error("LastOutput invalid after Predict")
	}
	p.Update(0x4000, true)
	if _, ok := p.LastOutput(); ok {
		t.Error("LastOutput still valid after Update")
	}
}

func TestPerceptronUpdateWithoutPredict(t *testing.T) {
	p := NewPerceptron(64, 8, 8)
	p.Update(0x4000, true) // recompute path must not panic
	if p.History()&1 != 1 {
		t.Error("history not updated")
	}
}

func TestGsharePerceptronHybrid(t *testing.T) {
	h := NewGsharePerceptronHybrid()
	if h.Name() != "gshare-perceptron" {
		t.Errorf("Name = %q", h.Name())
	}
	miss := drive(h, 0x4000, repeat([]bool{true, true, false}, 900))
	if miss > 120 {
		t.Errorf("gshare-perceptron missed %d/900 on period-3 pattern", miss)
	}
	if _, ok := h.SelectedCounter(0x4000); ok {
		// Selected component may be the perceptron, which has no
		// counter; ok=false is acceptable. When gshare is selected
		// ok=true. Either way, no panic. Nothing to assert here.
		_ = ok
	}
}

func TestOracle(t *testing.T) {
	o := NewOracle()
	outcomes := []bool{true, false, true, true, false}
	for _, taken := range outcomes {
		o.Observe(0x4000, taken)
		if o.Predict(0x4000) != taken {
			t.Fatal("oracle mispredicted")
		}
		o.Update(0x4000, taken)
	}
}

func TestStatic(t *testing.T) {
	at := Static{Taken: true}
	if !at.Predict(0) || at.Name() != "always-taken" {
		t.Error("always-taken misbehaves")
	}
	ant := Static{Taken: false}
	if ant.Predict(0) || ant.Name() != "always-not-taken" {
		t.Error("always-not-taken misbehaves")
	}
	ant.Update(0, true) // no-op, must not panic
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{
		NewBimodal(16 * 1024),
		NewGshare(64 * 1024),
		NewLocal(1024, 10),
		NewBaselineHybrid(),
		NewPerceptron(128, 32, 8),
		NewOracle(),
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
	h := NewBaselineHybrid()
	if h.String() == "" {
		t.Error("hybrid String empty")
	}
}

// Determinism: the same outcome stream produces the same prediction
// stream.
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		h := NewBaselineHybrid()
		r := rand.New(rand.NewSource(42))
		var preds []bool
		for i := 0; i < 2000; i++ {
			pc := uint64(0x4000 + (r.Intn(16) << 2))
			taken := r.Intn(3) > 0
			preds = append(preds, h.Predict(pc))
			h.Update(pc, taken)
		}
		return preds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func BenchmarkBaselineHybrid(b *testing.B) {
	h := NewBaselineHybrid()
	r := rand.New(rand.NewSource(1))
	pcs := make([]uint64, 256)
	outs := make([]bool, 256)
	for i := range pcs {
		pcs[i] = uint64(0x4000 + i<<2)
		outs[i] = r.Intn(2) == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 255
		h.Predict(pcs[j])
		h.Update(pcs[j], outs[j])
	}
}

func BenchmarkPerceptronPredictor(b *testing.B) {
	p := NewPerceptron(512, 32, 8)
	for i := 0; i < b.N; i++ {
		pc := uint64(0x4000 + (i&255)<<2)
		p.Predict(pc)
		p.Update(pc, i&3 != 0)
	}
}
