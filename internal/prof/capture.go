package prof

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"bce/internal/telemetry"
)

// capture.go is the in-process capture side: a Capturer opens
// phase-scoped capture windows (one per sweep, per bench suite, or
// per worker batch), records a CPU profile across each window plus
// point-in-time heap/mutex/block profiles at its close, stores the
// bytes in the ring, and remembers a Record per profile for the
// manifest.
//
// Two invariants the rest of the stack depends on:
//
//   - Profiling is out-of-band: nothing here writes to stdout, so
//     simulator output stays byte-identical with profiling on. CI
//     asserts this.
//   - Overhead is governed: the synchronous cost the capturer adds
//     (start/stop/serialize/hash/write) is metered against wall time
//     since the capturer was created, and once the spent fraction
//     exceeds Options.Budget further windows are skipped (counted in
//     Overhead().Skipped). The *sampling* cost is not metered — it is
//     bounded by the sampling rate itself (~0.5% at the default
//     100 Hz) and is the price of continuous profiling.

// DefaultBudget is the default governed-overhead budget: 3% of wall
// time, matching the repo's acceptance bar for profiling a quick
// Table-4 sweep.
const DefaultBudget = 0.03

// Options configures a Capturer.
type Options struct {
	// Dir is the ring directory (required).
	Dir string
	// RateHz is the CPU sampling rate; 0 means the runtime default
	// (100 Hz). Non-default rates make the Go runtime print one
	// advisory line to stderr per window; stdout is untouched.
	RateHz int
	// MaxEntries/MaxBytes bound the ring (0 = package defaults).
	MaxEntries int
	MaxBytes   int64
	// Budget is the governed-overhead fraction (0 = DefaultBudget;
	// negative disables the governor).
	Budget float64
	// Heap additionally snapshots the heap profile at each window
	// close.
	Heap bool
	// MutexFraction enables mutex profiling via
	// runtime.SetMutexProfileFraction and snapshots the mutex profile
	// at each window close (0 = off).
	MutexFraction int
	// BlockRate enables block profiling via
	// runtime.SetBlockProfileRate (nanoseconds; 0 = off) and
	// snapshots the block profile at each window close.
	BlockRate int
	// Logger receives capture failures (nil = slog.Default).
	Logger *slog.Logger
}

// Record is the capture metadata for one stored profile; manifests
// embed these so any later run can pull the bytes from a ring by
// digest and attribute them to the sweep/shard/batch span that
// produced them.
type Record struct {
	// Phase names the capture window ("sweep(jobs=128)#3", "process",
	// "suite(kernel)", "fleet"). The "#n" suffix is the capturer's
	// window sequence number, so repeated phases stay distinct and
	// deterministic run-to-run.
	Phase string `json:"phase"`
	// Kind is the profile kind: "cpu", "heap", "mutex", "block".
	Kind string `json:"kind"`
	// Digest is the ring content address of the profile bytes.
	Digest string `json:"digest"`
	// Bytes is the stored (compressed) size.
	Bytes int64 `json:"bytes"`
	// DurationSeconds is the capture window's wall duration.
	DurationSeconds float64 `json:"duration_seconds"`
	// RateHz is the CPU sampling rate for cpu records (0 for others).
	RateHz int `json:"rate_hz,omitempty"`
	// TraceID/SpanID tie the window to the distributed-tracing span
	// active when it opened (empty outside a traced sweep).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	// Worker labels fleet-scraped bundles ("" for local captures).
	Worker string `json:"worker,omitempty"`
}

// Overhead is the governor's self-accounting.
type Overhead struct {
	// Captures is the number of profiles stored.
	Captures int `json:"captures"`
	// Skipped counts windows refused by the governor or by window
	// overlap (only one CPU profile can run per process).
	Skipped int `json:"skipped"`
	// SpentSeconds is the cumulative governed cost.
	SpentSeconds float64 `json:"spent_seconds"`
	// WallSeconds is wall time since the capturer was created.
	WallSeconds float64 `json:"wall_seconds"`
	// Fraction is SpentSeconds/WallSeconds.
	Fraction float64 `json:"fraction"`
}

// Capturer owns a ring plus the process-wide profiling configuration.
// All methods are safe for concurrent use; a nil *Capturer is a
// functional no-op, so call sites never need enablement checks.
type Capturer struct {
	ring *Ring
	opts Options
	log  *slog.Logger

	mu      sync.Mutex
	born    time.Time
	active  bool
	seq     int
	spent   time.Duration
	skipped int
	records []Record
}

// NewCapturer opens the ring and applies the process-wide mutex/block
// profiling rates.
func NewCapturer(o Options) (*Capturer, error) {
	ring, err := OpenRing(o.Dir, o.MaxEntries, o.MaxBytes)
	if err != nil {
		return nil, err
	}
	if o.Budget == 0 {
		o.Budget = DefaultBudget
	}
	logger := o.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if o.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(o.MutexFraction)
	}
	if o.BlockRate > 0 {
		runtime.SetBlockProfileRate(o.BlockRate)
	}
	return &Capturer{ring: ring, opts: o, log: logger, born: time.Now()}, nil
}

// Ring exposes the underlying store (for readers like bcebench's
// attribution path).
func (c *Capturer) Ring() *Ring {
	if c == nil {
		return nil
	}
	return c.ring
}

// Phase is one open capture window. A nil *Phase is a no-op, which is
// what StartPhase returns when capture is disabled, skipped, or
// already running.
type Phase struct {
	c       *Capturer
	name    string
	sc      telemetry.SpanContext
	started time.Time
	buf     bytes.Buffer
	done    bool
}

// StartPhase opens a capture window named phase, tagging it with the
// span identity carried by ctx (if any). Only one window may be open
// per process — the Go runtime supports a single CPU profile — so a
// nested or concurrent StartPhase returns nil (recorded as skipped)
// rather than blocking the caller.
func (c *Capturer) StartPhase(ctx context.Context, phase string) *Phase {
	if c == nil {
		return nil
	}
	t0 := time.Now()
	c.mu.Lock()
	if c.active {
		c.skipped++
		c.mu.Unlock()
		return nil
	}
	if c.opts.Budget > 0 {
		wall := t0.Sub(c.born)
		if c.spent > 0 && float64(c.spent) > c.opts.Budget*float64(wall) {
			c.skipped++
			c.mu.Unlock()
			return nil
		}
	}
	c.seq++
	p := &Phase{c: c, name: fmt.Sprintf("%s#%d", phase, c.seq), started: t0}
	if sc, ok := telemetry.SpanContextFrom(ctx); ok {
		p.sc = sc
	}
	if c.opts.RateHz > 0 && c.opts.RateHz != 100 {
		runtime.SetCPUProfileRate(c.opts.RateHz)
	}
	if err := pprof.StartCPUProfile(&p.buf); err != nil {
		// Someone else (e.g. go test -cpuprofile) owns the CPU
		// profiler; skip rather than fight over it.
		c.skipped++
		c.spent += time.Since(t0)
		c.mu.Unlock()
		c.log.Debug("profile capture skipped", "phase", phase, "err", err)
		return nil
	}
	c.active = true
	c.spent += time.Since(t0)
	c.mu.Unlock()
	return p
}

// End closes the window: stops the CPU profile, snapshots the
// configured point-in-time profiles, stores everything in the ring,
// and files Records. Idempotent and nil-safe.
func (p *Phase) End() {
	if p == nil || p.done {
		return
	}
	p.done = true
	c := p.c
	t0 := time.Now()
	pprof.StopCPUProfile()
	dur := t0.Sub(p.started).Seconds()

	type captured struct {
		kind string
		data []byte
		rate int
	}
	caps := []captured{{kind: "cpu", data: p.buf.Bytes(), rate: c.cpuRate()}}
	for _, lk := range p.pointInTime() {
		var buf bytes.Buffer
		prof := pprof.Lookup(lk)
		if prof == nil {
			continue
		}
		// debug=0 emits the gzipped protobuf form.
		if err := prof.WriteTo(&buf, 0); err != nil {
			c.log.Warn("profile snapshot failed", "kind", lk, "err", err)
			continue
		}
		kind := lk
		if lk == "allocs" {
			kind = "heap"
		}
		caps = append(caps, captured{kind: kind, data: buf.Bytes()})
	}

	var recs []Record
	for _, cp := range caps {
		if len(cp.data) == 0 {
			continue
		}
		digest, err := c.ring.Put(cp.data)
		if err != nil {
			c.log.Warn("profile store failed", "phase", p.name, "kind", cp.kind, "err", err)
			continue
		}
		recs = append(recs, Record{
			Phase: p.name, Kind: cp.kind, Digest: digest,
			Bytes: int64(len(cp.data)), DurationSeconds: dur, RateHz: cp.rate,
			TraceID: p.sc.TraceID, SpanID: p.sc.SpanID,
		})
	}

	c.mu.Lock()
	c.active = false
	c.records = append(c.records, recs...)
	c.spent += time.Since(t0)
	c.mu.Unlock()
}

// pointInTime lists the pprof.Lookup profiles to snapshot at window
// close under the capturer's options.
func (p *Phase) pointInTime() []string {
	var out []string
	if p.c.opts.Heap {
		out = append(out, "heap")
	}
	if p.c.opts.MutexFraction > 0 {
		out = append(out, "mutex")
	}
	if p.c.opts.BlockRate > 0 {
		out = append(out, "block")
	}
	return out
}

func (c *Capturer) cpuRate() int {
	if c.opts.RateHz > 0 {
		return c.opts.RateHz
	}
	return 100
}

// Store files an externally produced profile (e.g. the merged fleet
// bundle scraped from workers) into the ring with a Record. The cost
// is metered against the governor's budget but never refused — the
// caller already paid to produce the bytes.
func (c *Capturer) Store(phase, kind, worker string, durationSeconds float64, data []byte) (Record, error) {
	if c == nil {
		return Record{}, fmt.Errorf("prof: nil capturer")
	}
	t0 := time.Now()
	digest, err := c.ring.Put(data)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Phase: phase, Kind: kind, Digest: digest, Bytes: int64(len(data)),
		DurationSeconds: durationSeconds, Worker: worker,
	}
	c.mu.Lock()
	c.records = append(c.records, rec)
	c.spent += time.Since(t0)
	c.mu.Unlock()
	return rec, nil
}

// Records returns a copy of all capture records so far, in capture
// order.
func (c *Capturer) Records() []Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}

// Overhead reports the governor's accounting.
func (c *Capturer) Overhead() Overhead {
	if c == nil {
		return Overhead{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	o := Overhead{
		Captures:     len(c.records),
		Skipped:      c.skipped,
		SpentSeconds: c.spent.Seconds(),
		WallSeconds:  time.Since(c.born).Seconds(),
	}
	if o.WallSeconds > 0 {
		o.Fraction = o.SpentSeconds / o.WallSeconds
	}
	return o
}
