package prof

import (
	"context"
	"testing"
	"time"

	"bce/internal/telemetry"
)

func TestCapturerPhaseLifecycle(t *testing.T) {
	c, err := NewCapturer(Options{Dir: t.TempDir(), Heap: true, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	p := c.StartPhase(context.Background(), "sweep(jobs=4)")
	if p == nil {
		t.Skip("CPU profiler unavailable (owned by the test harness?)")
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		burnSink = burnCPU(1 << 14)
	}
	p.End()
	p.End() // idempotent

	recs := c.Records()
	kinds := map[string]Record{}
	for _, r := range recs {
		kinds[r.Kind] = r
	}
	cpu, ok := kinds["cpu"]
	if !ok {
		t.Fatalf("no cpu record in %+v", recs)
	}
	if cpu.Phase != "sweep(jobs=4)#1" {
		t.Errorf("cpu phase = %q, want sweep(jobs=4)#1", cpu.Phase)
	}
	if cpu.DurationSeconds <= 0 || cpu.RateHz != 100 {
		t.Errorf("cpu record = %+v, want positive duration and 100 Hz", cpu)
	}
	if _, ok := kinds["heap"]; !ok {
		t.Errorf("no heap record in %+v", recs)
	}
	for _, r := range recs {
		if !c.Ring().Has(r.Digest) {
			t.Errorf("record %s/%s digest %s missing from ring", r.Phase, r.Kind, r.Digest)
		}
		data, err := c.Ring().Get(r.Digest)
		if err != nil {
			t.Errorf("Get(%s): %v", r.Digest, err)
			continue
		}
		if _, err := Parse(data); err != nil {
			t.Errorf("stored %s profile does not parse: %v", r.Kind, err)
		}
	}
	ov := c.Overhead()
	if ov.Captures != len(recs) || ov.SpentSeconds <= 0 || ov.WallSeconds <= 0 {
		t.Errorf("Overhead = %+v", ov)
	}
}

func TestStartPhaseRejectsNesting(t *testing.T) {
	c, err := NewCapturer(Options{Dir: t.TempDir(), Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	p := c.StartPhase(context.Background(), "outer")
	if p == nil {
		t.Skip("CPU profiler unavailable")
	}
	defer p.End()
	if inner := c.StartPhase(context.Background(), "inner"); inner != nil {
		inner.End()
		t.Fatal("nested StartPhase returned a live window")
	}
	if ov := c.Overhead(); ov.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", ov.Skipped)
	}
}

func TestGovernorSkipsOverBudget(t *testing.T) {
	c, err := NewCapturer(Options{Dir: t.TempDir(), Budget: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// First window is always admitted (nothing spent yet).
	p := c.StartPhase(context.Background(), "first")
	if p == nil {
		t.Skip("CPU profiler unavailable")
	}
	p.End()
	// Its cost now dwarfs the 1e-12 budget, so the next window is
	// refused.
	if p2 := c.StartPhase(context.Background(), "second"); p2 != nil {
		p2.End()
		t.Fatal("governor admitted a window over budget")
	}
	if ov := c.Overhead(); ov.Skipped == 0 {
		t.Errorf("Skipped = 0, want > 0; overhead %+v", ov)
	}
}

func TestPhaseCarriesSpanIdentity(t *testing.T) {
	c, err := NewCapturer(Options{Dir: t.TempDir(), Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer("test")
	span := tr.StartTrace("sweep")
	ctx := telemetry.ContextWithSpan(context.Background(), span)
	p := c.StartPhase(ctx, "sweep(jobs=1)")
	if p == nil {
		t.Skip("CPU profiler unavailable")
	}
	p.End()
	span.End()
	recs := c.Records()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	sc := span.Context()
	for _, r := range recs {
		if r.TraceID != sc.TraceID || r.SpanID != sc.SpanID {
			t.Errorf("record %s/%s span = (%s, %s), want (%s, %s)",
				r.Phase, r.Kind, r.TraceID, r.SpanID, sc.TraceID, sc.SpanID)
		}
	}
}

func TestStoreExternalProfile(t *testing.T) {
	c, err := NewCapturer(Options{Dir: t.TempDir(), Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := testProfile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.Store("fleet", "cpu", "127.0.0.1:8371", 1.0, data)
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	if rec.Worker != "127.0.0.1:8371" || rec.Phase != "fleet" || rec.Kind != "cpu" {
		t.Errorf("record = %+v", rec)
	}
	if !c.Ring().Has(rec.Digest) {
		t.Error("stored bytes missing from ring")
	}
	if got := c.Records(); len(got) != 1 || got[0].Digest != rec.Digest {
		t.Errorf("Records = %+v", got)
	}
}

func TestNilCapturerIsSafe(t *testing.T) {
	var c *Capturer
	if p := c.StartPhase(context.Background(), "x"); p != nil {
		t.Error("nil capturer returned a live phase")
	}
	var p *Phase
	p.End()
	if recs := c.Records(); recs != nil {
		t.Errorf("nil Records = %v", recs)
	}
	if ov := c.Overhead(); ov != (Overhead{}) {
		t.Errorf("nil Overhead = %+v", ov)
	}
	if c.Ring() != nil {
		t.Error("nil Ring != nil")
	}
	if v := c.DebugVar()(); v != (Overhead{}) {
		t.Errorf("nil DebugVar = %+v", v)
	}
	if _, err := c.Store("p", "cpu", "", 0, nil); err == nil {
		t.Error("nil Store succeeded")
	}
}
