package prof

import (
	"bytes"
	"compress/gzip"
	"reflect"
	"runtime/pprof"
	"testing"
	"time"
)

// testProfile builds a small two-sample CPU profile exercising every
// model field the encoder serializes.
func testProfile() *Profile {
	return &Profile{
		SampleTypes:       []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		DefaultSampleType: "cpu",
		Samples: []Sample{
			{
				Stack: []Frame{
					{Function: "bce/internal/perceptron.dotGeneric", File: "dot.go", Line: 42},
					{Function: "bce/internal/core.(*Simulator).Step", File: "sim.go", Line: 310},
				},
				Values: []int64{3, 30_000_000},
				Labels: map[string]string{"worker": "w0"},
			},
			{
				Stack:     []Frame{{Function: "runtime.mallocgc", File: "malloc.go", Line: 1}},
				Values:    []int64{1, 10_000_000},
				NumLabels: map[string]int64{"bytes": 4096},
			},
		},
		TimeNanos:     1_700_000_000_000_000_000,
		DurationNanos: 2_000_000_000,
		PeriodType:    ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:        10_000_000,
		Comments:      []string{"worker=w0"},
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	want := testProfile()
	data, err := want.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !IsGzipped(data) {
		t.Fatalf("Encode output is not gzipped")
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got.SampleTypes, want.SampleTypes) {
		t.Errorf("SampleTypes = %+v, want %+v", got.SampleTypes, want.SampleTypes)
	}
	if got.DefaultSampleType != want.DefaultSampleType {
		t.Errorf("DefaultSampleType = %q, want %q", got.DefaultSampleType, want.DefaultSampleType)
	}
	if got.TimeNanos != want.TimeNanos || got.DurationNanos != want.DurationNanos {
		t.Errorf("times = (%d, %d), want (%d, %d)",
			got.TimeNanos, got.DurationNanos, want.TimeNanos, want.DurationNanos)
	}
	if got.PeriodType != want.PeriodType || got.Period != want.Period {
		t.Errorf("period = (%+v, %d), want (%+v, %d)", got.PeriodType, got.Period, want.PeriodType, want.Period)
	}
	if !reflect.DeepEqual(got.Comments, want.Comments) {
		t.Errorf("Comments = %v, want %v", got.Comments, want.Comments)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("got %d samples, want %d", len(got.Samples), len(want.Samples))
	}
	for i := range want.Samples {
		g, w := got.Samples[i], want.Samples[i]
		if !reflect.DeepEqual(g.Stack, w.Stack) {
			t.Errorf("sample %d stack = %+v, want %+v", i, g.Stack, w.Stack)
		}
		if !reflect.DeepEqual(g.Values, w.Values) {
			t.Errorf("sample %d values = %v, want %v", i, g.Values, w.Values)
		}
		if !reflect.DeepEqual(g.Labels, w.Labels) {
			t.Errorf("sample %d labels = %v, want %v", i, g.Labels, w.Labels)
		}
		if !reflect.DeepEqual(g.NumLabels, w.NumLabels) {
			t.Errorf("sample %d num labels = %v, want %v", i, g.NumLabels, w.NumLabels)
		}
	}
	if got.Total() != 40_000_000 {
		t.Errorf("Total = %d, want 40000000", got.Total())
	}
	if got.Unit() != "nanoseconds" {
		t.Errorf("Unit = %q, want nanoseconds", got.Unit())
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := testProfile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testProfile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same profile differ")
	}
}

func TestEncodeRejectsValueCountMismatch(t *testing.T) {
	p := testProfile()
	p.Samples[0].Values = []int64{1}
	if _, err := p.Encode(); err == nil {
		t.Error("Encode accepted a sample whose value count disagrees with SampleTypes")
	}
}

// burnCPU gives the sampling profiler something attributable; the
// result defeats dead-code elimination.
func burnCPU(iters int) float64 {
	x := 1.0
	for i := 0; i < iters; i++ {
		x = x*1.000000001 + float64(i%7)
	}
	return x
}

var burnSink float64

func TestParseRealCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		burnSink = burnCPU(1 << 16)
	}
	pprof.StopCPUProfile()

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse(real cpu profile): %v", err)
	}
	var hasCPU bool
	for _, st := range p.SampleTypes {
		if st.Type == "cpu" && st.Unit == "nanoseconds" {
			hasCPU = true
		}
	}
	if !hasCPU {
		t.Errorf("sample types %+v missing cpu/nanoseconds", p.SampleTypes)
	}
	if p.Period <= 0 {
		t.Errorf("Period = %d, want > 0", p.Period)
	}
	// 300ms of spinning at 100Hz yields samples on any but a absurdly
	// overloaded machine; verify the stacks symbolized.
	if len(p.Samples) == 0 {
		t.Skip("no samples collected (machine too loaded?); symbol check skipped")
	}
	found := false
	for _, s := range p.Samples {
		for _, f := range s.Stack {
			if f.Function == "bce/internal/prof.burnCPU" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no sample stack contains bce/internal/prof.burnCPU")
	}
}

func TestParseRealHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap WriteTo: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse(real heap profile): %v", err)
	}
	var hasInuse bool
	for _, st := range p.SampleTypes {
		if st.Type == "inuse_space" && st.Unit == "bytes" {
			hasInuse = true
		}
	}
	if !hasInuse {
		t.Errorf("sample types %+v missing inuse_space/bytes", p.SampleTypes)
	}
	if p.Unit() != "bytes" {
		t.Errorf("Unit = %q, want bytes (heap default column)", p.Unit())
	}
}

func TestParseMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":           nil,
		"garbage":         []byte("not a profile at all"),
		"truncated gzip":  {0x1f, 0x8b, 0x08, 0x00, 0x01},
		"bad wire type":   {0x0f, 0x01},
		"truncated field": {0x0a, 0x7f, 0x01},
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("Parse(%s) succeeded, want error", name)
		}
	}
	// Valid gzip wrapping garbage must also fail cleanly.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(bytes.Repeat([]byte{0xff}, 64)) //nolint:errcheck
	zw.Close()
	if _, err := Parse(buf.Bytes()); err == nil {
		t.Error("Parse(gzipped garbage) succeeded, want error")
	}
}

func TestIsGzipped(t *testing.T) {
	if IsGzipped([]byte{0x0a, 0x00}) {
		t.Error("raw protobuf misdetected as gzip")
	}
	if !IsGzipped([]byte{0x1f, 0x8b, 0x08}) {
		t.Error("gzip magic not detected")
	}
}
