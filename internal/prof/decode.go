package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// decode.go hand-decodes the pprof protobuf wire format
// (github.com/google/pprof/proto/profile.proto). Only the field
// numbers below are load-bearing; they are frozen by the pprof
// project, so pinning them here is as stable as linking a generated
// parser and costs zero dependencies.
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 10 duration_nanos,
//	          11 period_type, 12 period, 13 comment,
//	          14 default_sample_type
//	Sample:   1 location_id (packed), 2 value (packed), 3 label
//	Label:    1 key, 2 str, 3 num
//	Location: 1 id, 3 address, 4 line
//	Line:     1 function_id, 2 line
//	Function: 1 id, 2 name, 4 filename
//	ValueType: 1 type, 2 unit
//
// Mappings (field 3) are skipped: every profile in this repo comes
// from a Go binary we built, so symbolization is already in the
// function table and address-to-mapping bookkeeping buys nothing.

// Decode limits: a hostile or corrupt profile must fail fast, not
// allocate unboundedly. Real profiles here are 10KB-2MB.
const (
	maxProfileBytes = 256 << 20 // decompressed
	maxStringTable  = 1 << 22   // entries
	maxSamples      = 1 << 22
)

// wire types used by profile.proto.
const (
	wireVarint = 0
	wireI64    = 1
	wireLen    = 2
	wireI32    = 5
)

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) done() bool { return d.pos >= len(d.data) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, io.ErrUnexpectedEOF
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint overflows 64 bits")
}

// tag reads one field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytesField reads one length-delimited payload.
func (d *decoder) bytesField() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.data)-d.pos) {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *decoder) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireI64:
		if len(d.data)-d.pos < 8 {
			return io.ErrUnexpectedEOF
		}
		d.pos += 8
		return nil
	case wireLen:
		_, err := d.bytesField()
		return err
	case wireI32:
		if len(d.data)-d.pos < 4 {
			return io.ErrUnexpectedEOF
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("unsupported wire type %d", wire)
	}
}

// intField reads a numeric field that may be either a bare varint or
// (for repeated fields) a packed run; the callback receives each
// value. profile.proto's int64 fields use plain two's-complement
// varints, not zigzag.
func (d *decoder) intField(wire int, fn func(uint64)) error {
	switch wire {
	case wireVarint:
		v, err := d.varint()
		if err != nil {
			return err
		}
		fn(v)
		return nil
	case wireLen:
		b, err := d.bytesField()
		if err != nil {
			return err
		}
		sub := decoder{data: b}
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return err
			}
			fn(v)
		}
		return nil
	default:
		return fmt.Errorf("numeric field with wire type %d", wire)
	}
}

// Raw (unresolved) structures, mirroring profile.proto references by
// table index / id.

type rawValueType struct{ typeIdx, unitIdx int64 }

type rawLabel struct {
	keyIdx, strIdx int64
	num            int64
	hasNum         bool
}

type rawSample struct {
	locIDs []uint64
	values []int64
	labels []rawLabel
}

type rawLine struct {
	funcID uint64
	line   int64
}

type rawLocation struct {
	id      uint64
	address uint64
	lines   []rawLine
}

type rawFunction struct {
	id               uint64
	nameIdx, fileIdx int64
}

// IsGzipped reports whether data starts with the gzip magic.
func IsGzipped(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b
}

// Parse decodes a pprof profile from data, transparently gunzipping
// (the Go runtime always emits gzip-compressed profiles).
func Parse(data []byte) (*Profile, error) {
	if IsGzipped(data) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxProfileBytes+1))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if len(raw) > maxProfileBytes {
			return nil, fmt.Errorf("prof: decompressed profile exceeds %d bytes", maxProfileBytes)
		}
		data = raw
	}
	p, err := parseUncompressed(data)
	if err != nil {
		return nil, fmt.Errorf("prof: parse: %w", err)
	}
	// profile.proto requires at least one sample_type; its absence
	// means the bytes were empty or not a profile at all.
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("prof: parse: no sample types (not a pprof profile?)")
	}
	return p, nil
}

func parseUncompressed(data []byte) (*Profile, error) {
	var (
		strtab      []string
		sampleTypes []rawValueType
		samples     []rawSample
		locs        []rawLocation
		funcs       []rawFunction
		periodType  rawValueType
		period      int64
		timeNanos   int64
		durNanos    int64
		comments    []int64
		defType     int64
	)
	d := decoder{data: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1, 11: // sample_type, period_type
			b, err := expectLen(&d, wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(b)
			if err != nil {
				return nil, err
			}
			if field == 1 {
				sampleTypes = append(sampleTypes, vt)
			} else {
				periodType = vt
			}
		case 2: // sample
			b, err := expectLen(&d, wire)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(b)
			if err != nil {
				return nil, err
			}
			if len(samples) >= maxSamples {
				return nil, fmt.Errorf("more than %d samples", maxSamples)
			}
			samples = append(samples, s)
		case 4: // location
			b, err := expectLen(&d, wire)
			if err != nil {
				return nil, err
			}
			l, err := parseLocation(b)
			if err != nil {
				return nil, err
			}
			locs = append(locs, l)
		case 5: // function
			b, err := expectLen(&d, wire)
			if err != nil {
				return nil, err
			}
			f, err := parseFunction(b)
			if err != nil {
				return nil, err
			}
			funcs = append(funcs, f)
		case 6: // string_table
			b, err := expectLen(&d, wire)
			if err != nil {
				return nil, err
			}
			if len(strtab) >= maxStringTable {
				return nil, fmt.Errorf("string table exceeds %d entries", maxStringTable)
			}
			strtab = append(strtab, string(b))
		case 9:
			if err := d.intField(wire, func(v uint64) { timeNanos = int64(v) }); err != nil {
				return nil, err
			}
		case 10:
			if err := d.intField(wire, func(v uint64) { durNanos = int64(v) }); err != nil {
				return nil, err
			}
		case 12:
			if err := d.intField(wire, func(v uint64) { period = int64(v) }); err != nil {
				return nil, err
			}
		case 13:
			if err := d.intField(wire, func(v uint64) { comments = append(comments, int64(v)) }); err != nil {
				return nil, err
			}
		case 14:
			if err := d.intField(wire, func(v uint64) { defType = int64(v) }); err != nil {
				return nil, err
			}
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(idx int64) (string, error) {
		if idx == 0 {
			return "", nil
		}
		if idx < 0 || idx >= int64(len(strtab)) {
			return "", fmt.Errorf("string index %d out of range (table has %d)", idx, len(strtab))
		}
		return strtab[idx], nil
	}

	p := &Profile{TimeNanos: timeNanos, DurationNanos: durNanos, Period: period}
	var err error
	if p.DefaultSampleType, err = str(defType); err != nil {
		return nil, err
	}
	if p.PeriodType.Type, err = str(periodType.typeIdx); err != nil {
		return nil, err
	}
	if p.PeriodType.Unit, err = str(periodType.unitIdx); err != nil {
		return nil, err
	}
	for _, c := range comments {
		s, err := str(c)
		if err != nil {
			return nil, err
		}
		p.Comments = append(p.Comments, s)
	}
	for _, vt := range sampleTypes {
		t, err := str(vt.typeIdx)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unitIdx)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: t, Unit: u})
	}

	// Resolve locations to frame slices up front; samples then just
	// concatenate them.
	funcByID := make(map[uint64]rawFunction, len(funcs))
	for _, f := range funcs {
		funcByID[f.id] = f
	}
	framesByLoc := make(map[uint64][]Frame, len(locs))
	for _, l := range locs {
		var frames []Frame
		for _, ln := range l.lines {
			f, ok := funcByID[ln.funcID]
			if !ok {
				return nil, fmt.Errorf("location %d references unknown function %d", l.id, ln.funcID)
			}
			name, err := str(f.nameIdx)
			if err != nil {
				return nil, err
			}
			file, err := str(f.fileIdx)
			if err != nil {
				return nil, err
			}
			frames = append(frames, Frame{Function: name, File: file, Line: ln.line})
		}
		if len(frames) == 0 {
			// Unsymbolized: keep the address so stacks stay intact.
			frames = []Frame{{Function: fmt.Sprintf("0x%x", l.address)}}
		}
		framesByLoc[l.id] = frames
	}

	p.Samples = make([]Sample, 0, len(samples))
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, id := range rs.locIDs {
			frames, ok := framesByLoc[id]
			if !ok {
				return nil, fmt.Errorf("sample references unknown location %d", id)
			}
			s.Stack = append(s.Stack, frames...)
		}
		for _, lb := range rs.labels {
			key, err := str(lb.keyIdx)
			if err != nil {
				return nil, err
			}
			if lb.hasNum {
				if s.NumLabels == nil {
					s.NumLabels = map[string]int64{}
				}
				s.NumLabels[key] = lb.num
			} else {
				val, err := str(lb.strIdx)
				if err != nil {
					return nil, err
				}
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[key] = val
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func expectLen(d *decoder, wire int) ([]byte, error) {
	if wire != wireLen {
		return nil, fmt.Errorf("expected length-delimited field, got wire type %d", wire)
	}
	return d.bytesField()
}

func parseValueType(b []byte) (rawValueType, error) {
	var vt rawValueType
	d := decoder{data: b}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch field {
		case 1:
			err = d.intField(wire, func(v uint64) { vt.typeIdx = int64(v) })
		case 2:
			err = d.intField(wire, func(v uint64) { vt.unitIdx = int64(v) })
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return vt, err
		}
	}
	return vt, nil
}

func parseSample(b []byte) (rawSample, error) {
	var s rawSample
	d := decoder{data: b}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1:
			err = d.intField(wire, func(v uint64) { s.locIDs = append(s.locIDs, v) })
		case 2:
			err = d.intField(wire, func(v uint64) { s.values = append(s.values, int64(v)) })
		case 3:
			var lb []byte
			if lb, err = expectLen(&d, wire); err == nil {
				var l rawLabel
				if l, err = parseLabel(lb); err == nil {
					s.labels = append(s.labels, l)
				}
			}
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseLabel(b []byte) (rawLabel, error) {
	var l rawLabel
	d := decoder{data: b}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return l, err
		}
		switch field {
		case 1:
			err = d.intField(wire, func(v uint64) { l.keyIdx = int64(v) })
		case 2:
			err = d.intField(wire, func(v uint64) { l.strIdx = int64(v) })
		case 3:
			err = d.intField(wire, func(v uint64) { l.num = int64(v); l.hasNum = true })
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return l, err
		}
	}
	return l, nil
}

func parseLocation(b []byte) (rawLocation, error) {
	var loc rawLocation
	d := decoder{data: b}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return loc, err
		}
		switch field {
		case 1:
			err = d.intField(wire, func(v uint64) { loc.id = v })
		case 3:
			err = d.intField(wire, func(v uint64) { loc.address = v })
		case 4:
			var lb []byte
			if lb, err = expectLen(&d, wire); err == nil {
				var ln rawLine
				if ln, err = parseLine(lb); err == nil {
					loc.lines = append(loc.lines, ln)
				}
			}
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return loc, err
		}
	}
	return loc, nil
}

func parseLine(b []byte) (rawLine, error) {
	var ln rawLine
	d := decoder{data: b}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return ln, err
		}
		switch field {
		case 1:
			err = d.intField(wire, func(v uint64) { ln.funcID = v })
		case 2:
			err = d.intField(wire, func(v uint64) { ln.line = int64(v) })
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return ln, err
		}
	}
	return ln, nil
}

func parseFunction(b []byte) (rawFunction, error) {
	var f rawFunction
	d := decoder{data: b}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return f, err
		}
		switch field {
		case 1:
			err = d.intField(wire, func(v uint64) { f.id = v })
		case 2:
			err = d.intField(wire, func(v uint64) { f.nameIdx = int64(v) })
		case 4:
			err = d.intField(wire, func(v uint64) { f.fileIdx = int64(v) })
		default:
			err = d.skip(wire)
		}
		if err != nil {
			return f, err
		}
	}
	return f, nil
}
