package prof

import (
	"fmt"
	"sort"
	"strings"
)

// delta.go is the attribution engine: given two profiles of the same
// kind, it aggregates each into per-function flat/cum totals and
// diffs them, so "the kernel suite got 40% slower" becomes "the time
// went into perceptron.dotGeneric". Flat is the value attributed to
// samples whose *leaf* is the function; Cum counts a sample once for
// every function appearing anywhere in its stack (each function at
// most once per sample, so recursion doesn't double-count).

// FuncStats is one function's aggregate within a single profile.
type FuncStats struct {
	Flat int64 `json:"flat"`
	Cum  int64 `json:"cum"`
}

// Aggregate folds a profile's samples into per-function stats over
// the attributed value column (see Profile.sampleIndex).
func Aggregate(p *Profile) map[string]FuncStats {
	idx := p.sampleIndex()
	out := map[string]FuncStats{}
	if idx < 0 {
		return out
	}
	seen := map[string]bool{}
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		v := s.Values[idx]
		if len(s.Stack) > 0 {
			st := out[s.Stack[0].Function]
			st.Flat += v
			out[s.Stack[0].Function] = st
		}
		clear(seen)
		for _, f := range s.Stack {
			if seen[f.Function] {
				continue
			}
			seen[f.Function] = true
			st := out[f.Function]
			st.Cum += v
			out[f.Function] = st
		}
	}
	return out
}

// DeltaLine is one function's base-vs-candidate comparison.
type DeltaLine struct {
	Function  string `json:"function"`
	BaseFlat  int64  `json:"base_flat"`
	CandFlat  int64  `json:"cand_flat"`
	FlatDelta int64  `json:"flat_delta"`
	BaseCum   int64  `json:"base_cum"`
	CandCum   int64  `json:"cand_cum"`
	CumDelta  int64  `json:"cum_delta"`
}

// Delta is the full per-function diff of two profiles.
type Delta struct {
	// Kind names the attributed dimension ("cpu", "inuse_space", ...).
	Kind string `json:"kind"`
	// Unit is the dimension's unit ("nanoseconds", "bytes", ...).
	Unit      string      `json:"unit"`
	BaseTotal int64       `json:"base_total"`
	CandTotal int64       `json:"cand_total"`
	Lines     []DeltaLine `json:"lines"`
}

// Diff computes the per-function delta from base to cand. The two
// profiles must attribute the same unit (sample counts/rates may
// differ; absolute values are compared as-is, which is correct for
// cpu-nanoseconds and byte dimensions).
func Diff(base, cand *Profile) (*Delta, error) {
	bi, ci := base.sampleIndex(), cand.sampleIndex()
	if bi < 0 || ci < 0 {
		return nil, fmt.Errorf("prof: diff: profile has no sample types")
	}
	bt, ct := base.SampleTypes[bi], cand.SampleTypes[ci]
	if bt.Unit != ct.Unit {
		return nil, fmt.Errorf("prof: diff: unit mismatch %q vs %q", bt.Unit, ct.Unit)
	}
	bStats, cStats := Aggregate(base), Aggregate(cand)
	names := map[string]bool{}
	for n := range bStats {
		names[n] = true
	}
	for n := range cStats {
		names[n] = true
	}
	d := &Delta{Kind: ct.Type, Unit: ct.Unit, BaseTotal: base.Total(), CandTotal: cand.Total()}
	for n := range names {
		b, c := bStats[n], cStats[n]
		if b == (FuncStats{}) && c == (FuncStats{}) {
			continue
		}
		d.Lines = append(d.Lines, DeltaLine{
			Function: n,
			BaseFlat: b.Flat, CandFlat: c.Flat, FlatDelta: c.Flat - b.Flat,
			BaseCum: b.Cum, CandCum: c.Cum, CumDelta: c.Cum - b.Cum,
		})
	}
	// Largest absolute flat movement first; ties broken by cum then
	// name so the table is deterministic.
	sort.Slice(d.Lines, func(i, j int) bool {
		a, b := d.Lines[i], d.Lines[j]
		if abs(a.FlatDelta) != abs(b.FlatDelta) {
			return abs(a.FlatDelta) > abs(b.FlatDelta)
		}
		if abs(a.CumDelta) != abs(b.CumDelta) {
			return abs(a.CumDelta) > abs(b.CumDelta)
		}
		return a.Function < b.Function
	})
	return d, nil
}

// Top returns the n largest-movement lines (all lines if n <= 0 or
// exceeds the count).
func (d *Delta) Top(n int) []DeltaLine {
	if n <= 0 || n > len(d.Lines) {
		n = len(d.Lines)
	}
	return d.Lines[:n]
}

// Table renders the top-n delta as an aligned text table, the form
// bcebench and bcereport print under a failed gate:
//
//	profile delta (cpu, nanoseconds): total 1.20s -> 1.86s (+55.0%)
//	     base flat     cand flat         delta   function
//	       450.0ms       980.0ms      +530.0ms   bce/internal/perceptron.dotGeneric
func (d *Delta) Table(n int) string {
	var b strings.Builder
	pct := "n/a"
	if d.BaseTotal != 0 {
		pct = fmt.Sprintf("%+.1f%%", 100*float64(d.CandTotal-d.BaseTotal)/float64(d.BaseTotal))
	}
	fmt.Fprintf(&b, "profile delta (%s, %s): total %s -> %s (%s)\n",
		d.Kind, d.Unit, formatValue(d.BaseTotal, d.Unit), formatValue(d.CandTotal, d.Unit), pct)
	fmt.Fprintf(&b, "%14s %14s %14s   %s\n", "base flat", "cand flat", "delta", "function")
	for _, l := range d.Top(n) {
		fmt.Fprintf(&b, "%14s %14s %14s   %s\n",
			formatValue(l.BaseFlat, d.Unit),
			formatValue(l.CandFlat, d.Unit),
			formatSigned(l.FlatDelta, d.Unit),
			l.Function)
	}
	return b.String()
}

// formatValue renders v in a human unit: nanoseconds as seconds or
// milliseconds, bytes as KiB/MiB/GiB, anything else raw.
func formatValue(v int64, unit string) string {
	neg := ""
	u := v
	if u < 0 {
		neg, u = "-", -u
	}
	switch unit {
	case "nanoseconds":
		switch {
		case u >= 1_000_000_000:
			return fmt.Sprintf("%s%.2fs", neg, float64(u)/1e9)
		case u >= 1_000_000:
			return fmt.Sprintf("%s%.1fms", neg, float64(u)/1e6)
		case u >= 1_000:
			return fmt.Sprintf("%s%.1fµs", neg, float64(u)/1e3)
		default:
			return fmt.Sprintf("%s%dns", neg, u)
		}
	case "bytes":
		switch {
		case u >= 1<<30:
			return fmt.Sprintf("%s%.2fGiB", neg, float64(u)/(1<<30))
		case u >= 1<<20:
			return fmt.Sprintf("%s%.2fMiB", neg, float64(u)/(1<<20))
		case u >= 1<<10:
			return fmt.Sprintf("%s%.1fKiB", neg, float64(u)/(1<<10))
		default:
			return fmt.Sprintf("%s%dB", neg, u)
		}
	default:
		return fmt.Sprintf("%s%d", neg, u)
	}
}

func formatSigned(v int64, unit string) string {
	if v >= 0 {
		return "+" + formatValue(v, unit)
	}
	return formatValue(v, unit)
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
