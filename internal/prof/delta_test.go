package prof

import (
	"strings"
	"testing"
)

// cpuProfile builds a single-column cpu/nanoseconds profile from
// (leaf-first stack, value) pairs.
func cpuProfile(samples ...Sample) *Profile {
	return &Profile{
		SampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Samples:     samples,
	}
}

func stack(fns ...string) []Frame {
	out := make([]Frame, len(fns))
	for i, fn := range fns {
		out[i] = Frame{Function: fn}
	}
	return out
}

func TestAggregateFlatCum(t *testing.T) {
	p := cpuProfile(
		Sample{Stack: stack("leaf", "mid", "root"), Values: []int64{10}},
		Sample{Stack: stack("mid", "root"), Values: []int64{5}},
		// Recursive stack: "rec" appears twice but must be cum-counted
		// once for this sample.
		Sample{Stack: stack("rec", "rec", "root"), Values: []int64{7}},
	)
	got := Aggregate(p)
	want := map[string]FuncStats{
		"leaf": {Flat: 10, Cum: 10},
		"mid":  {Flat: 5, Cum: 15},
		"root": {Flat: 0, Cum: 22},
		"rec":  {Flat: 7, Cum: 7},
	}
	for fn, w := range want {
		if got[fn] != w {
			t.Errorf("Aggregate[%q] = %+v, want %+v", fn, got[fn], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("Aggregate has %d functions, want %d: %+v", len(got), len(want), got)
	}
}

func TestDiff(t *testing.T) {
	base := cpuProfile(
		Sample{Stack: stack("kernel", "sweep"), Values: []int64{100}},
		Sample{Stack: stack("parse", "sweep"), Values: []int64{50}},
	)
	cand := cpuProfile(
		Sample{Stack: stack("kernel", "sweep"), Values: []int64{400}},
		Sample{Stack: stack("parse", "sweep"), Values: []int64{60}},
	)
	d, err := Diff(base, cand)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if d.Kind != "cpu" || d.Unit != "nanoseconds" {
		t.Errorf("Kind/Unit = %q/%q", d.Kind, d.Unit)
	}
	if d.BaseTotal != 150 || d.CandTotal != 460 {
		t.Errorf("totals = %d -> %d, want 150 -> 460", d.BaseTotal, d.CandTotal)
	}
	if len(d.Lines) != 3 {
		t.Fatalf("got %d lines, want 3 (kernel, sweep, parse)", len(d.Lines))
	}
	// Sorted by |flat delta| desc: kernel (+300), parse (+10), then
	// sweep (flat 0, cum +310).
	if d.Lines[0].Function != "kernel" || d.Lines[0].FlatDelta != 300 {
		t.Errorf("line 0 = %+v, want kernel +300", d.Lines[0])
	}
	if d.Lines[1].Function != "parse" || d.Lines[1].FlatDelta != 10 {
		t.Errorf("line 1 = %+v, want parse +10", d.Lines[1])
	}
	if d.Lines[2].Function != "sweep" || d.Lines[2].CumDelta != 310 {
		t.Errorf("line 2 = %+v, want sweep cum +310", d.Lines[2])
	}
	if top := d.Top(1); len(top) != 1 || top[0].Function != "kernel" {
		t.Errorf("Top(1) = %+v", top)
	}
	if top := d.Top(0); len(top) != 3 {
		t.Errorf("Top(0) returned %d lines, want all 3", len(top))
	}
}

func TestDiffFunctionOnlyInOneSide(t *testing.T) {
	base := cpuProfile(Sample{Stack: stack("gone"), Values: []int64{80}})
	cand := cpuProfile(Sample{Stack: stack("new"), Values: []int64{20}})
	d, err := Diff(base, cand)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DeltaLine{}
	for _, l := range d.Lines {
		byName[l.Function] = l
	}
	if l := byName["gone"]; l.FlatDelta != -80 || l.CandFlat != 0 {
		t.Errorf("gone = %+v, want flat delta -80", l)
	}
	if l := byName["new"]; l.FlatDelta != 20 || l.BaseFlat != 0 {
		t.Errorf("new = %+v, want flat delta +20", l)
	}
}

func TestDiffUnitMismatch(t *testing.T) {
	base := cpuProfile(Sample{Stack: stack("f"), Values: []int64{1}})
	cand := &Profile{
		SampleTypes: []ValueType{{Type: "inuse_space", Unit: "bytes"}},
		Samples:     []Sample{{Stack: stack("f"), Values: []int64{1}}},
	}
	if _, err := Diff(base, cand); err == nil {
		t.Error("Diff accepted nanoseconds vs bytes")
	}
	if _, err := Diff(&Profile{}, cand); err == nil {
		t.Error("Diff accepted a profile with no sample types")
	}
}

func TestTable(t *testing.T) {
	base := cpuProfile(Sample{Stack: stack("bce/internal/perceptron.dotGeneric"), Values: []int64{450_000_000}})
	cand := cpuProfile(Sample{Stack: stack("bce/internal/perceptron.dotGeneric"), Values: []int64{980_000_000}})
	d, err := Diff(base, cand)
	if err != nil {
		t.Fatal(err)
	}
	tbl := d.Table(10)
	for _, want := range []string{
		"profile delta (cpu, nanoseconds)",
		"450.0ms", "980.0ms", "+530.0ms",
		"bce/internal/perceptron.dotGeneric",
		"+117.8%",
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table missing %q:\n%s", want, tbl)
		}
	}
}

func TestTableZeroBase(t *testing.T) {
	d, err := Diff(cpuProfile(), cpuProfile(Sample{Stack: stack("f"), Values: []int64{5}}))
	if err != nil {
		t.Fatal(err)
	}
	if tbl := d.Table(5); !strings.Contains(tbl, "n/a") {
		t.Errorf("zero-base table should print n/a for the percent:\n%s", tbl)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    int64
		unit string
		want string
	}{
		{1_500_000_000, "nanoseconds", "1.50s"},
		{12_300_000, "nanoseconds", "12.3ms"},
		{4_500, "nanoseconds", "4.5µs"},
		{999, "nanoseconds", "999ns"},
		{-12_300_000, "nanoseconds", "-12.3ms"},
		{3 << 30, "bytes", "3.00GiB"},
		{5 << 20, "bytes", "5.00MiB"},
		{2 << 10, "bytes", "2.0KiB"},
		{512, "bytes", "512B"},
		{42, "count", "42"},
	}
	for _, c := range cases {
		if got := formatValue(c.v, c.unit); got != c.want {
			t.Errorf("formatValue(%d, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
	if got := formatSigned(500, "count"); got != "+500" {
		t.Errorf("formatSigned(500) = %q", got)
	}
	if got := formatSigned(-500, "count"); got != "-500" {
		t.Errorf("formatSigned(-500) = %q", got)
	}
}
