package prof

import (
	"context"
	"strings"
	"testing"
	"time"

	"bce/internal/runner"
)

func TestEnableDisabled(t *testing.T) {
	c, stop, err := Enable(EnableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Error("Enable with no dir returned a capturer")
	}
	stop() // must be a safe no-op
}

// sweepOnce runs one small runner.Map sweep and returns its results.
func sweepOnce(t *testing.T) []int {
	t.Helper()
	pool := runner.New(runner.Options{Workers: 2})
	out, err := runner.Map(context.Background(), pool, []int{1, 2, 3},
		func(ctx context.Context, i int, item int) (int, error) {
			deadline := time.Now().Add(30 * time.Millisecond)
			for time.Now().Before(deadline) {
				burnSink = burnCPU(1 << 12)
			}
			return item * item, nil
		})
	if err != nil {
		t.Fatalf("runner.Map: %v", err)
	}
	return out
}

func TestEnableSweepMode(t *testing.T) {
	c, stop, err := Enable(EnableOptions{Dir: t.TempDir(), Sweeps: true})
	if err != nil {
		t.Fatal(err)
	}
	got := sweepOnce(t)
	if got[0] != 1 || got[1] != 4 || got[2] != 9 {
		t.Errorf("sweep results corrupted under capture: %v", got)
	}
	stop()

	recs := c.Records()
	if len(recs) == 0 {
		t.Skip("no capture window opened (CPU profiler owned elsewhere)")
	}
	var sawSweepCPU bool
	for _, r := range recs {
		if r.Kind == "cpu" && strings.HasPrefix(r.Phase, "sweep(jobs=3)#") {
			sawSweepCPU = true
		}
	}
	if !sawSweepCPU {
		t.Errorf("no cpu record for phase sweep(jobs=3) in %+v", recs)
	}

	// stop() uninstalled the hook: further sweeps must not capture.
	before := len(c.Records())
	sweepOnce(t)
	if after := len(c.Records()); after != before {
		t.Errorf("capture hook still live after stop: %d -> %d records", before, after)
	}
}

func TestEnableProcessMode(t *testing.T) {
	c, stop, err := Enable(EnableOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		burnSink = burnCPU(1 << 12)
	}
	stop()
	recs := c.Records()
	if len(recs) == 0 {
		t.Skip("no capture window opened (CPU profiler owned elsewhere)")
	}
	for _, r := range recs {
		if !strings.HasPrefix(r.Phase, "process#") {
			t.Errorf("record phase = %q, want process#n", r.Phase)
		}
	}
}
