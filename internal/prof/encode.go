package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"sort"
)

// encode.go serializes a Profile back to gzipped pprof protobuf, so
// merged fleet bundles and test fixtures round-trip through `go tool
// pprof` and any other standard consumer. String/function/location
// tables are rebuilt from scratch: every distinct (function, file,
// line) triple becomes one location with one line, which loses inline
// nesting (already flattened into Frames at parse time) but preserves
// exact stacks, values, and labels — everything the delta engine and
// pprof's text views consume.

type encoder struct{ buf bytes.Buffer }

func (e *encoder) varint(v uint64) {
	for v >= 0x80 {
		e.buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	e.buf.WriteByte(byte(v))
}

func (e *encoder) tag(field, wire int) { e.varint(uint64(field)<<3 | uint64(wire)) }

func (e *encoder) intf(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(uint64(v))
}

func (e *encoder) uintf(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.varint(v)
}

func (e *encoder) bytesf(field int, b []byte) {
	e.tag(field, wireLen)
	e.varint(uint64(len(b)))
	e.buf.Write(b)
}

// packed emits a packed repeated varint field (profile.proto encodes
// repeated location_id/value this way).
func (e *encoder) packed(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var sub encoder
	for _, v := range vs {
		sub.varint(v)
	}
	e.bytesf(field, sub.buf.Bytes())
}

type strTable struct {
	index map[string]int64
	list  []string
}

func newStrTable() *strTable {
	return &strTable{index: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strTable) id(s string) int64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

// Encode serializes the profile as gzipped pprof protobuf.
func (p *Profile) Encode() ([]byte, error) {
	for i, s := range p.Samples {
		if len(s.Values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("prof: encode: sample %d has %d values, profile has %d sample types",
				i, len(s.Values), len(p.SampleTypes))
		}
	}

	strs := newStrTable()
	var (
		funcIDs = map[string]uint64{} // function name\x00file -> id
		locIDs  = map[string]uint64{} // name\x00file\x00line -> id
		funcs   encoder               // accumulated Function messages
		locs    encoder               // accumulated Location messages
	)
	locFor := func(f Frame) uint64 {
		lkey := fmt.Sprintf("%s\x00%s\x00%d", f.Function, f.File, f.Line)
		if id, ok := locIDs[lkey]; ok {
			return id
		}
		fkey := f.Function + "\x00" + f.File
		fid, ok := funcIDs[fkey]
		if !ok {
			fid = uint64(len(funcIDs) + 1)
			funcIDs[fkey] = fid
			var fe encoder
			fe.uintf(1, fid)
			fe.intf(2, strs.id(f.Function))
			fe.intf(4, strs.id(f.File))
			funcs.bytesf(5, fe.buf.Bytes())
		}
		lid := uint64(len(locIDs) + 1)
		locIDs[lkey] = lid
		var line encoder
		line.uintf(1, fid)
		line.intf(2, f.Line)
		var le encoder
		le.uintf(1, lid)
		le.bytesf(4, line.buf.Bytes())
		locs.bytesf(4, le.buf.Bytes())
		return lid
	}

	valueType := func(vt ValueType) []byte {
		var e encoder
		e.intf(1, strs.id(vt.Type))
		e.intf(2, strs.id(vt.Unit))
		return e.buf.Bytes()
	}

	var body encoder
	for _, st := range p.SampleTypes {
		body.bytesf(1, valueType(st))
	}
	for _, s := range p.Samples {
		var se encoder
		ids := make([]uint64, len(s.Stack))
		for i, f := range s.Stack {
			ids[i] = locFor(f)
		}
		se.packed(1, ids)
		vals := make([]uint64, len(s.Values))
		for i, v := range s.Values {
			vals[i] = uint64(v)
		}
		se.packed(2, vals)
		for _, k := range sortedKeys(s.Labels) {
			var le encoder
			le.intf(1, strs.id(k))
			le.intf(2, strs.id(s.Labels[k]))
			se.bytesf(3, le.buf.Bytes())
		}
		for _, k := range sortedKeys(s.NumLabels) {
			var le encoder
			le.intf(1, strs.id(k))
			le.intf(3, s.NumLabels[k])
			se.bytesf(3, le.buf.Bytes())
		}
		body.bytesf(2, se.buf.Bytes())
	}
	body.buf.Write(locs.buf.Bytes())
	body.buf.Write(funcs.buf.Bytes())
	body.intf(9, p.TimeNanos)
	body.intf(10, p.DurationNanos)
	if p.PeriodType != (ValueType{}) {
		body.bytesf(11, valueType(p.PeriodType))
	}
	body.intf(12, p.Period)
	for _, c := range p.Comments {
		body.intf(13, strs.id(c))
	}
	if p.DefaultSampleType != "" {
		body.intf(14, strs.id(p.DefaultSampleType))
	}
	// String table last in the buffer is fine (protobuf fields are
	// order-independent), but every index above must already be
	// interned, so emit it now that interning is done.
	var out encoder
	for _, s := range strs.list {
		out.bytesf(6, []byte(s))
	}
	out.buf.Write(body.buf.Bytes())

	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(out.buf.Bytes()); err != nil {
		return nil, fmt.Errorf("prof: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("prof: encode: %w", err)
	}
	return gz.Bytes(), nil
}

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
