package prof

import (
	"context"
	"flag"
	"log/slog"
	"runtime"

	"bce/internal/runner"
)

// flags.go is the one-stop wiring every binary uses: RegisterFlags
// defines the shared -profile-* flag set, and Enable turns the parsed
// values into a running Capturer in one of two modes:
//
//   - sweep mode (Sweeps: true): installs the runner capture hook, so
//     every runner.Map sweep becomes its own capture window tagged
//     with the sweep's span identity. Used by the sweep drivers
//     (bcetables, bcecal, bceworker, bcebench).
//   - process mode: opens a single window spanning the whole process,
//     closed by the returned stop function. Used by the binaries
//     whose interesting unit of work is the process itself (bcesim,
//     bcereport, bcetrace, bcenetproxy).

// Flags holds the registered -profile-* flag values.
type Flags struct {
	Dir   *string
	Rate  *int
	Mutex *int
	Block *int
}

// RegisterFlags defines -profile-dir, -profile-rate, -profile-mutex
// and -profile-block on fs (flag.CommandLine if nil).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &Flags{
		Dir:   fs.String("profile-dir", "", "capture CPU+heap profiles into a content-addressed ring store in this directory (empty = profiling off)"),
		Rate:  fs.Int("profile-rate", 0, "CPU profile sampling rate in Hz (0 = runtime default, 100)"),
		Mutex: fs.Int("profile-mutex", 0, "mutex profile fraction, runtime.SetMutexProfileFraction (0 = off)"),
		Block: fs.Int("profile-block", 0, "block profile rate in ns, runtime.SetBlockProfileRate (0 = off)"),
	}
}

// Options converts the parsed flags to EnableOptions.
func (f *Flags) Options() EnableOptions {
	return EnableOptions{
		Dir:           *f.Dir,
		RateHz:        *f.Rate,
		MutexFraction: *f.Mutex,
		BlockRate:     *f.Block,
	}
}

// EnableOptions configures Enable.
type EnableOptions struct {
	Dir           string
	RateHz        int
	MutexFraction int
	BlockRate     int
	// Sweeps selects sweep mode (runner hook) instead of one
	// process-wide window.
	Sweeps bool
	Logger *slog.Logger
}

// Enable starts profiling per o. The returned stop function must be
// called before process exit (it closes the open window, uninstalls
// the runner hook, and logs a capture summary); the returned
// *Capturer is nil when -profile-dir was empty, and every Capturer
// method is nil-safe, so callers can thread it through
// unconditionally.
//
// With an empty Dir, mutex/block rates are still applied process-wide
// when requested — that is what lights up /debug/pprof/mutex and
// /debug/pprof/block on the debug endpoint without any local capture.
func Enable(o EnableOptions) (*Capturer, func(), error) {
	logger := o.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if o.Dir == "" {
		if o.MutexFraction > 0 {
			runtime.SetMutexProfileFraction(o.MutexFraction)
		}
		if o.BlockRate > 0 {
			runtime.SetBlockProfileRate(o.BlockRate)
		}
		return nil, func() {}, nil
	}
	c, err := NewCapturer(Options{
		Dir:           o.Dir,
		RateHz:        o.RateHz,
		Heap:          true,
		MutexFraction: o.MutexFraction,
		BlockRate:     o.BlockRate,
		Logger:        logger,
	})
	if err != nil {
		return nil, nil, err
	}
	var procPhase *Phase
	if o.Sweeps {
		runner.SetCaptureHook(func(ctx context.Context, phase string) func() {
			p := c.StartPhase(ctx, phase)
			return p.End
		})
	} else {
		procPhase = c.StartPhase(context.Background(), "process")
	}
	stop := func() {
		if o.Sweeps {
			runner.SetCaptureHook(nil)
		}
		procPhase.End()
		ov := c.Overhead()
		logger.Info("profiling summary",
			"dir", o.Dir,
			"profiles", ov.Captures,
			"skipped", ov.Skipped,
			"overhead_frac", ov.Fraction)
	}
	return c, stop, nil
}

// DebugVar returns a closure for the debug endpoint's vars map
// exposing the capturer's live overhead accounting (nil-safe: a nil
// capturer reports zeros).
func (c *Capturer) DebugVar() func() any {
	return func() any { return c.Overhead() }
}
