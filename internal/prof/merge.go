package prof

import "fmt"

// LabeledProfile pairs a parsed profile with the labels to stamp on
// every one of its samples when merging — the fleet scrape uses
// {"worker": <name>} so a merged bundle still attributes cost
// per-worker under pprof's tag filters.
type LabeledProfile struct {
	Profile *Profile
	Labels  map[string]string
}

// Merge combines several profiles of the same shape (identical
// sample-type lists) into one, stamping each input's extra labels
// onto its samples. Sample stacks are kept as-is rather than
// re-aggregated: pprof consumers and the delta engine both aggregate
// on demand, and keeping samples verbatim preserves per-input labels.
//
// TimeNanos of the merge is the earliest input capture time;
// DurationNanos is the sum (total sampled machine time across the
// fleet).
func Merge(inputs []LabeledProfile) (*Profile, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("prof: merge: no profiles")
	}
	base := inputs[0].Profile
	if base == nil {
		return nil, fmt.Errorf("prof: merge: input 0 is nil")
	}
	out := &Profile{
		SampleTypes:       append([]ValueType(nil), base.SampleTypes...),
		DefaultSampleType: base.DefaultSampleType,
		PeriodType:        base.PeriodType,
		Period:            base.Period,
	}
	for i, in := range inputs {
		p := in.Profile
		if p == nil {
			return nil, fmt.Errorf("prof: merge: input %d is nil", i)
		}
		if !sameShape(base.SampleTypes, p.SampleTypes) {
			return nil, fmt.Errorf("prof: merge: input %d sample types %v incompatible with %v",
				i, p.SampleTypes, base.SampleTypes)
		}
		if p.TimeNanos != 0 && (out.TimeNanos == 0 || p.TimeNanos < out.TimeNanos) {
			out.TimeNanos = p.TimeNanos
		}
		out.DurationNanos += p.DurationNanos
		out.Comments = append(out.Comments, p.Comments...)
		for _, s := range p.Samples {
			ns := Sample{Stack: s.Stack, Values: s.Values, NumLabels: s.NumLabels}
			if len(s.Labels)+len(in.Labels) > 0 {
				ns.Labels = make(map[string]string, len(s.Labels)+len(in.Labels))
				for k, v := range s.Labels {
					ns.Labels[k] = v
				}
				for k, v := range in.Labels {
					ns.Labels[k] = v
				}
			}
			out.Samples = append(out.Samples, ns)
		}
	}
	return out, nil
}

func sameShape(a, b []ValueType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
