package prof

import (
	"testing"
)

func TestMergeStampsWorkerLabels(t *testing.T) {
	w0 := cpuProfile(Sample{Stack: stack("kernel"), Values: []int64{100}})
	w0.TimeNanos, w0.DurationNanos = 2000, 10
	w0.Comments = []string{"worker=w0"}
	w1 := cpuProfile(Sample{Stack: stack("kernel"), Values: []int64{50}})
	w1.TimeNanos, w1.DurationNanos = 1000, 20
	w1.Comments = []string{"worker=w1"}

	m, err := Merge([]LabeledProfile{
		{Profile: w0, Labels: map[string]string{"worker": "w0"}},
		{Profile: w1, Labels: map[string]string{"worker": "w1"}},
	})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(m.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(m.Samples))
	}
	if m.Samples[0].Labels["worker"] != "w0" || m.Samples[1].Labels["worker"] != "w1" {
		t.Errorf("worker labels = %v, %v", m.Samples[0].Labels, m.Samples[1].Labels)
	}
	if m.TimeNanos != 1000 {
		t.Errorf("TimeNanos = %d, want earliest (1000)", m.TimeNanos)
	}
	if m.DurationNanos != 30 {
		t.Errorf("DurationNanos = %d, want summed (30)", m.DurationNanos)
	}
	if len(m.Comments) != 2 {
		t.Errorf("Comments = %v, want both workers' provenance", m.Comments)
	}
	if m.Total() != 150 {
		t.Errorf("Total = %d, want 150", m.Total())
	}
	// A merged bundle must survive the wire: encode and re-parse.
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode(merged): %v", err)
	}
	rt, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse(merged): %v", err)
	}
	if rt.Total() != 150 || rt.Samples[0].Labels["worker"] != "w0" {
		t.Errorf("round-trip lost data: total %d labels %v", rt.Total(), rt.Samples[0].Labels)
	}
}

func TestMergeRejectsShapeMismatch(t *testing.T) {
	cpu := cpuProfile(Sample{Stack: stack("f"), Values: []int64{1}})
	heap := &Profile{
		SampleTypes: []ValueType{{Type: "inuse_space", Unit: "bytes"}},
		Samples:     []Sample{{Stack: stack("f"), Values: []int64{1}}},
	}
	if _, err := Merge([]LabeledProfile{{Profile: cpu}, {Profile: heap}}); err == nil {
		t.Error("Merge accepted cpu + heap")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("Merge accepted zero inputs")
	}
	if _, err := Merge([]LabeledProfile{{Profile: nil}}); err == nil {
		t.Error("Merge accepted a nil profile")
	}
}
