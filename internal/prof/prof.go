// Package prof is the continuous-profiling subsystem: it captures
// sampled CPU/heap/mutex/block profiles around sweep and bench phases
// with a bounded overhead budget, stores them in a content-addressed
// ring next to the runner cache, and — the part the rest of the stack
// leans on — parses the pprof protobuf format and diffs two profiles
// into per-function flat/cum deltas so a benchmark or manifest
// regression can name the symbols responsible.
//
// The package is dependency-free by construction: the pprof wire
// format is hand-decoded (decode.go) and hand-encoded (encode.go)
// against the stable profile.proto field numbers, so no protobuf
// runtime is linked. The in-memory model below is deliberately
// simpler than profile.proto — locations are resolved to symbolized
// frames at parse time, and mappings are dropped (all profiles here
// come from Go binaries the repo built itself).
//
// Layering: prof sits above telemetry (span identity) and below the
// runner/bench/dist wiring. runner does NOT import prof — the
// phase-capture hook is injected as a function value
// (runner.SetCaptureHook) so the dependency points the right way.
package prof

// ValueType describes one sample-value dimension, e.g.
// {Type: "cpu", Unit: "nanoseconds"} or {Type: "inuse_space",
// Unit: "bytes"}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Frame is one resolved stack frame. Unsymbolized locations (no
// function record) carry the hex address in Function and a zero Line.
type Frame struct {
	// Function is the fully qualified function name
	// ("bce/internal/perceptron.dotAVX2").
	Function string `json:"function"`
	// File is the source file path, if known.
	File string `json:"file,omitempty"`
	// Line is the source line, if known.
	Line int64 `json:"line,omitempty"`
}

// Sample is one weighted stack. Stack[0] is the leaf (innermost)
// frame, matching pprof's location ordering; within one location's
// inline expansion the deepest inlined call also comes first.
type Sample struct {
	Stack  []Frame `json:"stack"`
	Values []int64 `json:"values"`
	// Labels holds the string-valued pprof labels (e.g. worker="w0"
	// after a fleet merge).
	Labels map[string]string `json:"labels,omitempty"`
	// NumLabels holds the numeric pprof labels (e.g. bytes=4096 on
	// heap profiles).
	NumLabels map[string]int64 `json:"num_labels,omitempty"`
}

// Profile is the resolved in-memory form of one pprof profile.
type Profile struct {
	// SampleTypes describes Values[i] of every sample, in order.
	SampleTypes []ValueType `json:"sample_types"`
	// DefaultSampleType names the preferred display dimension, if the
	// producer set one ("" otherwise).
	DefaultSampleType string   `json:"default_sample_type,omitempty"`
	Samples           []Sample `json:"samples"`
	// TimeNanos is the capture start time (UnixNano), 0 if unset.
	TimeNanos int64 `json:"time_nanos,omitempty"`
	// DurationNanos is the capture duration, 0 if unset.
	DurationNanos int64 `json:"duration_nanos,omitempty"`
	// PeriodType/Period describe the sampling period (e.g. cpu
	// nanoseconds per sample).
	PeriodType ValueType `json:"period_type,omitempty"`
	Period     int64     `json:"period,omitempty"`
	// Comments carries the profile's free-form comment strings; the
	// fleet merge records per-worker provenance here.
	Comments []string `json:"comments,omitempty"`
}

// sampleIndex picks which Values column to attribute: the
// DefaultSampleType if present, else a type named "cpu", else the
// last column (pprof's own convention for e.g. heap profiles, where
// the last type is inuse_space).
func (p *Profile) sampleIndex() int {
	if len(p.SampleTypes) == 0 {
		return -1
	}
	if p.DefaultSampleType != "" {
		for i, st := range p.SampleTypes {
			if st.Type == p.DefaultSampleType {
				return i
			}
		}
	}
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// Total sums the attributed value column over all samples.
func (p *Profile) Total() int64 {
	idx := p.sampleIndex()
	if idx < 0 {
		return 0
	}
	var t int64
	for _, s := range p.Samples {
		if idx < len(s.Values) {
			t += s.Values[idx]
		}
	}
	return t
}

// Unit returns the unit of the attributed value column ("" if the
// profile has no sample types).
func (p *Profile) Unit() string {
	idx := p.sampleIndex()
	if idx < 0 {
		return ""
	}
	return p.SampleTypes[idx].Unit
}
