package prof

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ring.go is the content-addressed profile store: each profile is one
// file named by the sha256 of its bytes, bounded by entry-count and
// total-byte caps with oldest-first eviction — the same
// write-then-rename, digest-named discipline as the runner's result
// cache, so the two can live side by side (bcecal uses
// <cache>/profiles). Content addressing is what makes cross-run
// attribution cheap: a manifest or bench report records only digests,
// and any ring holding those digests can serve the bytes.

const ringSuffix = ".pprof"

// Ring is an open profile ring directory.
type Ring struct {
	dir        string
	maxEntries int
	maxBytes   int64
}

// DefaultRingEntries and DefaultRingBytes bound a ring when the
// caller passes zero: enough for weeks of sweep history at typical
// 10KB-200KB per profile.
const (
	DefaultRingEntries = 512
	DefaultRingBytes   = 256 << 20
)

// OpenRing opens (creating if needed) a ring at dir. maxEntries and
// maxBytes of zero select the defaults; negative values disable that
// bound.
func OpenRing(dir string, maxEntries int, maxBytes int64) (*Ring, error) {
	if dir == "" {
		return nil, fmt.Errorf("prof: ring: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: ring: %w", err)
	}
	if maxEntries == 0 {
		maxEntries = DefaultRingEntries
	}
	if maxBytes == 0 {
		maxBytes = DefaultRingBytes
	}
	return &Ring{dir: dir, maxEntries: maxEntries, maxBytes: maxBytes}, nil
}

// Dir returns the ring's directory.
func (r *Ring) Dir() string { return r.dir }

// Digest returns the content address of data: "sha256:<hex>".
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// fileFor maps a digest to its path inside the ring, rejecting
// anything that isn't a well-formed digest (defense against path
// escape via a doctored manifest).
func (r *Ring) fileFor(digest string) (string, error) {
	hexpart, ok := strings.CutPrefix(digest, "sha256:")
	if !ok || len(hexpart) != 64 {
		return "", fmt.Errorf("prof: ring: malformed digest %q", digest)
	}
	if _, err := hex.DecodeString(hexpart); err != nil {
		return "", fmt.Errorf("prof: ring: malformed digest %q", digest)
	}
	return filepath.Join(r.dir, hexpart+ringSuffix), nil
}

// Put stores data, returning its digest. Writing is
// write-then-rename so a concurrent reader never sees a torn file;
// storing bytes that already exist is a no-op (content addressing
// makes it idempotent). Eviction runs after every put.
func (r *Ring) Put(data []byte) (string, error) {
	digest := Digest(data)
	path, err := r.fileFor(digest)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("prof: ring: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("prof: ring: %w", err)
	}
	r.evict(digest)
	return digest, nil
}

// Get returns the stored bytes for digest, verifying content
// integrity on the way out.
func (r *Ring) Get(digest string) ([]byte, error) {
	path, err := r.fileFor(digest)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("prof: ring: %w", err)
	}
	if got := Digest(data); got != digest {
		return nil, fmt.Errorf("prof: ring: %s corrupt (content hashes to %s)", digest, got)
	}
	return data, nil
}

// Has reports whether digest is present.
func (r *Ring) Has(digest string) bool {
	path, err := r.fileFor(digest)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// RingEntry describes one stored profile.
type RingEntry struct {
	Digest  string `json:"digest"`
	Bytes   int64  `json:"bytes"`
	ModUnix int64  `json:"mod_unix"`
}

// List returns the ring's entries, oldest first.
func (r *Ring) List() ([]RingEntry, error) {
	des, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("prof: ring: %w", err)
	}
	var out []RingEntry
	for _, de := range des {
		name := de.Name()
		hexpart, ok := strings.CutSuffix(name, ringSuffix)
		if !ok || len(hexpart) != 64 {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, RingEntry{
			Digest:  "sha256:" + hexpart,
			Bytes:   info.Size(),
			ModUnix: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ModUnix != out[j].ModUnix {
			return out[i].ModUnix < out[j].ModUnix
		}
		return out[i].Digest < out[j].Digest
	})
	return out, nil
}

// evict drops oldest entries until both bounds hold, never dropping
// keep (the entry just written).
func (r *Ring) evict(keep string) {
	if r.maxEntries < 0 && r.maxBytes < 0 {
		return
	}
	entries, err := r.List()
	if err != nil {
		return
	}
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	count := len(entries)
	for _, e := range entries {
		over := (r.maxEntries >= 0 && count > r.maxEntries) ||
			(r.maxBytes >= 0 && total > r.maxBytes)
		if !over {
			break
		}
		if e.Digest == keep {
			continue
		}
		if path, err := r.fileFor(e.Digest); err == nil {
			if os.Remove(path) == nil {
				count--
				total -= e.Bytes
			}
		}
	}
}
