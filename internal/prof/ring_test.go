package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRingPutGet(t *testing.T) {
	r, err := OpenRing(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("profile bytes")
	digest, err := r.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if digest != Digest(data) {
		t.Errorf("Put digest %q != Digest %q", digest, Digest(data))
	}
	if !strings.HasPrefix(digest, "sha256:") || len(digest) != len("sha256:")+64 {
		t.Errorf("malformed digest %q", digest)
	}
	if !r.Has(digest) {
		t.Error("Has = false after Put")
	}
	got, err := r.Get(digest)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != string(data) {
		t.Errorf("Get = %q, want %q", got, data)
	}
	// Idempotent re-put.
	if d2, err := r.Put(data); err != nil || d2 != digest {
		t.Errorf("second Put = (%q, %v)", d2, err)
	}
	if entries, err := r.List(); err != nil || len(entries) != 1 {
		t.Errorf("List = (%d entries, %v), want 1", len(entries), err)
	}
}

func TestRingRejectsMalformedDigests(t *testing.T) {
	r, err := OpenRing(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"",
		"deadbeef",
		"sha256:short",
		"sha256:../../../../etc/passwd0000000000000000000000000000000000000000",
		"sha256:zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",
	} {
		if _, err := r.Get(bad); err == nil {
			t.Errorf("Get(%q) succeeded, want malformed-digest error", bad)
		}
		if r.Has(bad) {
			t.Errorf("Has(%q) = true", bad)
		}
	}
}

func TestRingDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRing(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := r.Put([]byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, strings.TrimPrefix(digest, "sha256:")+".pprof")
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(digest); err == nil {
		t.Error("Get returned tampered bytes without error")
	}
}

func TestRingEvictsByEntryCount(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRing(dir, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	var digests []string
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		data := []byte(fmt.Sprintf("profile-%d", i))
		d, err := r.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
		// Pin distinct mtimes so "oldest" is unambiguous regardless of
		// filesystem timestamp resolution.
		path := filepath.Join(dir, strings.TrimPrefix(d, "sha256:")+".pprof")
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// The third Put ran eviction before we re-stamped its mtime, so the
	// oldest of the first two is already gone; one more Put re-runs
	// eviction against the pinned stamps.
	d, err := r.Put([]byte("profile-3"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has(d) {
		t.Error("just-written entry was evicted")
	}
	entries, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Errorf("ring holds %d entries, want <= 2", len(entries))
	}
	if r.Has(digests[0]) {
		t.Error("oldest entry survived eviction")
	}
}

func TestRingEvictsByBytes(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRing(dir, -1, 100)
	if err != nil {
		t.Fatal(err)
	}
	old, err := r.Put(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Hour)
	path := filepath.Join(dir, strings.TrimPrefix(old, "sha256:")+".pprof")
	if err := os.Chtimes(path, past, past); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.Put(append(make([]byte, 80), 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Has(old) {
		t.Error("old entry survived byte-bound eviction")
	}
	if !r.Has(fresh) {
		t.Error("fresh entry was evicted")
	}
}

func TestOpenRingEmptyDir(t *testing.T) {
	if _, err := OpenRing("", 0, 0); err == nil {
		t.Error("OpenRing(\"\") succeeded")
	}
}
