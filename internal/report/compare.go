package report

import (
	"fmt"
	"math"
	"strings"

	"bce/internal/manifest"
)

// Drift is one metric whose measured value moved between two runs
// beyond the tolerance, or a metric present in only one of them.
type Drift struct {
	Metric string  `json:"metric"` // "experiment/metric"
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Delta  float64 `json:"delta"`
	// Missing marks a metric that exists in only one run ("old" or
	// "new"); Old/New carry the side that has it.
	Missing string `json:"missing,omitempty"`
}

// CompareScorecards diffs the measured values of two scorecards,
// returning every metric that drifted more than tol (absolute, in the
// metric's own unit) or disappeared/appeared. The simulator is
// deterministic, so on identical configurations any drift at all is a
// behavior change; tol exists for cross-configuration comparisons.
func CompareScorecards(old, new *Scorecard, tol float64) []Drift {
	type key struct{ exp, metric string }
	oldRows := make(map[key]Row, len(old.Rows))
	for _, r := range old.Rows {
		oldRows[key{r.Experiment, r.Metric}] = r
	}
	var drifts []Drift
	seen := make(map[key]bool, len(new.Rows))
	for _, r := range new.Rows {
		k := key{r.Experiment, r.Metric}
		seen[k] = true
		o, ok := oldRows[k]
		if !ok {
			drifts = append(drifts, Drift{Metric: k.exp + "/" + k.metric, New: r.Measured, Missing: "old"})
			continue
		}
		if d := r.Measured - o.Measured; math.Abs(d) > tol {
			drifts = append(drifts, Drift{
				Metric: k.exp + "/" + k.metric,
				Old:    o.Measured, New: r.Measured, Delta: round4(d),
			})
		}
	}
	for _, r := range old.Rows {
		k := key{r.Experiment, r.Metric}
		if !seen[k] {
			drifts = append(drifts, Drift{Metric: k.exp + "/" + k.metric, Old: r.Measured, Missing: "new"})
		}
	}
	return drifts
}

// CompareManifests builds a scorecard from each manifest and diffs
// them, prefixing the report with a configuration-identity note when
// the fingerprints differ (drift between different configurations is
// expected, not a regression).
func CompareManifests(old, new *manifest.Manifest, tol float64) (drifts []Drift, notes []string, err error) {
	so, err := Build(old)
	if err != nil {
		return nil, nil, fmt.Errorf("old manifest: %w", err)
	}
	sn, err := Build(new)
	if err != nil {
		return nil, nil, fmt.Errorf("new manifest: %w", err)
	}
	if old.ConfigFingerprint != new.ConfigFingerprint {
		notes = append(notes, fmt.Sprintf(
			"configurations differ (old %s, new %s): deltas reflect the config change, not drift",
			old.ConfigFingerprint, new.ConfigFingerprint))
	}
	if lo, ln := len(old.Jobs), len(new.Jobs); lo != ln {
		notes = append(notes, fmt.Sprintf("job counts differ: old ran %d simulations, new %d", lo, ln))
	}
	return CompareScorecards(so, sn, tol), notes, nil
}

// RenderDrift formats a drift list for the terminal; empty input
// renders the all-clear line.
func RenderDrift(drifts []Drift, tol float64) string {
	if len(drifts) == 0 {
		return fmt.Sprintf("no metric drift beyond ±%g\n", tol)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d metric(s) drifted beyond ±%g:\n", len(drifts), tol)
	for _, d := range drifts {
		switch d.Missing {
		case "old":
			fmt.Fprintf(&b, "  %-36s only in new run (%.4f)\n", d.Metric, d.New)
		case "new":
			fmt.Fprintf(&b, "  %-36s only in old run (%.4f)\n", d.Metric, d.Old)
		default:
			fmt.Fprintf(&b, "  %-36s %.4f -> %.4f (%+.4f)\n", d.Metric, d.Old, d.New, d.Delta)
		}
	}
	return b.String()
}
