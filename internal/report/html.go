package report

import (
	"fmt"
	"html"
	"math"
	"strings"

	"bce/internal/manifest"
)

// html.go renders the scorecard as a single self-contained HTML file:
// stat tiles, the PVN/coverage curve (Table 3), the gating trade-off
// curve (Table 4), and the full scorecard table. No external assets or
// scripts — the file works offline and in CI artifact viewers.
//
// Chart conventions: color identifies the estimator (fixed assignment,
// never cycled), line style identifies the source — measured solid,
// paper dashed — and every point carries a <title> tooltip. Series
// colors are CSS custom properties with a prefers-color-scheme dark
// variant, validated against both surfaces.

// chartPoint is one mark on a chart.
type chartPoint struct {
	X, Y  float64
	Label string
}

// chartSeries is one line+markers series. Color is a palette slot
// (1-4); Dashed marks paper reference series.
type chartSeries struct {
	Name   string
	Color  int
	Dashed bool
	Points []chartPoint
}

// WriteHTML renders the dashboard. The manifests supply the curve
// data (Table 3 and Table 4 results); charts whose experiment is
// absent are omitted.
func WriteHTML(sc *Scorecard, manifests ...*manifest.Manifest) string {
	var b strings.Builder
	b.WriteString(htmlHead)
	b.WriteString("<h1>Paper-fidelity scorecard</h1>\n")
	fmt.Fprintf(&b, "<p class=\"sub\">Reproduction vs. <em>Perceptron-Based Branch Confidence Estimation</em> (HPCA 2004)")
	for _, s := range sc.Sources {
		fmt.Fprintf(&b, " &middot; %s <code>%s</code>", html.EscapeString(s.Tool), html.EscapeString(s.Fingerprint))
	}
	b.WriteString("</p>\n")

	// Headline tiles.
	b.WriteString("<div class=\"tiles\">\n")
	tile := func(value, label string) {
		fmt.Fprintf(&b, "<div class=\"tile\"><div class=\"v\">%s</div><div class=\"l\">%s</div></div>\n",
			value, html.EscapeString(label))
	}
	tile(fmt.Sprintf("%d", sc.Summary.Rows), "metrics scored")
	tile(fmt.Sprintf("%.3f", sc.Summary.MeanAbsRelErr), "mean |relative error|")
	tile(fmt.Sprintf("%.3f", sc.Summary.WorstRelErr), "worst: "+sc.Summary.WorstMetric)
	b.WriteString("</div>\n")

	if s := pvnCoverageSeries(manifests); len(s) > 0 {
		b.WriteString(svgChart("PVN vs. coverage (Table 3)",
			"Spec — fraction of branches flagged low-confidence (%)", "PVN — flag accuracy (%)", s))
	}
	if s := gatingSeries(manifests); len(s) > 0 {
		b.WriteString(svgChart("Gating trade-off (Table 4, 40c4w)",
			"U — uop reduction (%)", "P — performance loss (%)", s))
	}

	// Table view (the accessible fallback for every chart).
	b.WriteString("<h2>All metrics</h2>\n<table>\n<tr><th>experiment</th><th>metric</th><th class=\"n\">measured</th><th class=\"n\">paper</th><th class=\"n\">delta</th><th class=\"n\">rel err</th><th>95% CI</th></tr>\n")
	for _, r := range sc.Rows {
		ci := ""
		if r.CILo != nil && r.CIHi != nil {
			ci = fmt.Sprintf("[%.2f, %.2f]", *r.CILo, *r.CIHi)
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td class=\"n\">%.2f</td><td class=\"n\">%.2f</td><td class=\"n\">%+.2f</td><td class=\"n\">%.3f</td><td>%s</td></tr>\n",
			html.EscapeString(r.Experiment), html.EscapeString(r.Metric),
			r.Measured, r.Paper, r.Delta, r.RelErr, ci)
	}
	b.WriteString("</table>\n</body>\n</html>\n")
	return b.String()
}

// pvnCoverageSeries extracts the Table 3 curves: measured and paper
// (PVN, Spec) trajectories for both estimators. X is Spec (coverage),
// Y is PVN.
func pvnCoverageSeries(manifests []*manifest.Manifest) []chartSeries {
	var t table3Result
	if !findResult(manifests, "table3", &t) {
		return nil
	}
	var out []chartSeries
	mk := func(name string, color int, dashed bool) chartSeries {
		return chartSeries{Name: name, Color: color, Dashed: dashed}
	}
	jrs, cic := mk("JRS measured", 1, false), mk("Perceptron measured", 2, false)
	for _, r := range t.JRS {
		jrs.Points = append(jrs.Points, chartPoint{X: r.Spec, Y: r.PVN,
			Label: fmt.Sprintf("JRS λ=%d: PVN %.0f%%, Spec %.0f%%", r.Lambda, r.PVN, r.Spec)})
	}
	for _, r := range t.Perceptron {
		cic.Points = append(cic.Points, chartPoint{X: r.Spec, Y: r.PVN,
			Label: fmt.Sprintf("Perceptron λ=%d: PVN %.0f%%, Spec %.0f%%", r.Lambda, r.PVN, r.Spec)})
	}
	jrsP, cicP := mk("JRS paper", 1, true), mk("Perceptron paper", 2, true)
	for _, r := range paperTable3JRS {
		jrsP.Points = append(jrsP.Points, chartPoint{X: r.Spec, Y: r.PVN,
			Label: fmt.Sprintf("paper JRS λ=%d: PVN %.0f%%, Spec %.0f%%", r.Lambda, r.PVN, r.Spec)})
	}
	for _, r := range paperTable3Perceptron {
		cicP.Points = append(cicP.Points, chartPoint{X: r.Spec, Y: r.PVN,
			Label: fmt.Sprintf("paper perceptron λ=%d: PVN %.0f%%, Spec %.0f%%", r.Lambda, r.PVN, r.Spec)})
	}
	return append(out, jrs, jrsP, cic, cicP)
}

// gatingSeries extracts the Table 4 PL1 trade-off curves (U, P) for
// both estimators, measured and paper.
func gatingSeries(manifests []*manifest.Manifest) []chartSeries {
	var t table4Result
	if !findResult(manifests, "table4", &t) {
		return nil
	}
	curve := func(name string, color int, dashed bool, rows []gatingRow, match string) chartSeries {
		s := chartSeries{Name: name, Color: color, Dashed: dashed}
		for _, r := range rows {
			if match != "" && !strings.Contains(r.Label, match) {
				continue
			}
			s.Points = append(s.Points, chartPoint{X: r.U, Y: r.P,
				Label: fmt.Sprintf("%s: U %.1f%%, P %.1f%%", r.Label, r.U, r.P)})
		}
		return s
	}
	paperRows := func(refs []paperUP) []gatingRow {
		out := make([]gatingRow, len(refs))
		for i, r := range refs {
			out[i] = gatingRow{Label: r.Label, U: r.U, P: r.P}
		}
		return out
	}
	series := []chartSeries{
		curve("JRS PL1 measured", 1, false, t.JRS, "PL1"),
		curve("JRS PL1 paper", 1, true, paperRows(paperTable4JRS), "PL1"),
		curve("Perceptron PL1 measured", 2, false, t.Perceptron, "PL1"),
		curve("Perceptron PL1 paper", 2, true, paperRows(paperTable4Perceptron), "PL1"),
	}
	var out []chartSeries
	for _, s := range series {
		if len(s.Points) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// findResult decodes the named result from the first manifest that
// carries it (searching last-to-first, matching Build's later-wins
// merge).
func findResult(manifests []*manifest.Manifest, name string, out any) bool {
	for i := len(manifests) - 1; i >= 0; i-- {
		if ok, err := manifests[i].Result(name, out); ok && err == nil {
			return true
		}
	}
	return false
}

// Chart geometry (viewBox units).
const (
	chartW, chartH                     = 640, 360
	marginL, marginR, marginT, marginB = 56, 16, 20, 48
)

// svgChart renders one line+marker chart with grid, ticks, a legend
// and per-point tooltips.
func svgChart(title, xLabel, yLabel string, series []chartSeries) string {
	xmin, xmax, ymin, ymax := math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			ymin, ymax = math.Min(ymin, p.Y), math.Max(ymax, p.Y)
		}
	}
	if xmin > xmax {
		return ""
	}
	xmin, xmax = pad(xmin, xmax)
	ymin, ymax = pad(ymin, ymax)
	px := func(x float64) float64 {
		return marginL + (x-xmin)/(xmax-xmin)*(chartW-marginL-marginR)
	}
	py := func(y float64) float64 {
		return chartH - marginB - (y-ymin)/(ymax-ymin)*(chartH-marginT-marginB)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "<figure>\n<figcaption>%s</figcaption>\n", html.EscapeString(title))
	fmt.Fprintf(&b, "<svg viewBox=\"0 0 %d %d\" role=\"img\" aria-label=\"%s\">\n",
		chartW, chartH, html.EscapeString(title))

	// Grid and ticks (recessive), axis labels in text ink.
	for _, t := range ticks(xmin, xmax) {
		x := px(t)
		fmt.Fprintf(&b, "<line class=\"grid\" x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\"/>\n",
			x, marginT, x, chartH-marginB)
		fmt.Fprintf(&b, "<text class=\"tick\" x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%g</text>\n",
			x, chartH-marginB+16, t)
	}
	for _, t := range ticks(ymin, ymax) {
		y := py(t)
		fmt.Fprintf(&b, "<line class=\"grid\" x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\"/>\n",
			marginL, y, chartW-marginR, y)
		fmt.Fprintf(&b, "<text class=\"tick\" x=\"%d\" y=\"%.1f\" text-anchor=\"end\">%g</text>\n",
			marginL-6, y+4, t)
	}
	fmt.Fprintf(&b, "<text class=\"axis\" x=\"%d\" y=\"%d\" text-anchor=\"middle\">%s</text>\n",
		(marginL+chartW-marginR)/2, chartH-10, html.EscapeString(xLabel))
	fmt.Fprintf(&b, "<text class=\"axis\" transform=\"rotate(-90)\" x=\"%d\" y=\"14\" text-anchor=\"middle\">%s</text>\n",
		-(marginT+chartH-marginB)/2, html.EscapeString(yLabel))

	for _, s := range series {
		stroke := fmt.Sprintf("var(--s%d)", s.Color)
		dash := ""
		if s.Dashed {
			dash = " stroke-dasharray=\"6 4\""
		}
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p.X), py(p.Y)))
		}
		fmt.Fprintf(&b, "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"2\"%s points=\"%s\"/>\n",
			stroke, dash, strings.Join(pts, " "))
		for _, p := range s.Points {
			// The 2px surface ring separates overlapping markers.
			fmt.Fprintf(&b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"%s\" stroke=\"var(--surface)\" stroke-width=\"2\"><title>%s</title></circle>\n",
				px(p.X), py(p.Y), stroke, html.EscapeString(p.Label))
		}
	}
	b.WriteString("</svg>\n<div class=\"legend\">\n")
	for _, s := range series {
		cls := "sw"
		if s.Dashed {
			cls = "sw dash"
		}
		fmt.Fprintf(&b, "<span><svg viewBox=\"0 0 22 10\" class=\"%s\"><line x1=\"1\" y1=\"5\" x2=\"21\" y2=\"5\" stroke=\"var(--s%d)\" stroke-width=\"2\"%s/></svg>%s</span>\n",
			cls, s.Color, map[bool]string{true: " stroke-dasharray=\"4 3\""}[s.Dashed], html.EscapeString(s.Name))
	}
	b.WriteString("</div>\n</figure>\n")
	return b.String()
}

// pad widens a degenerate or tight range by 5% so marks never sit on
// the chart frame.
func pad(lo, hi float64) (float64, float64) {
	if lo == hi {
		return lo - 1, hi + 1
	}
	d := (hi - lo) * 0.05
	return lo - d, hi + d
}

// ticks returns ~5 round tick positions covering [lo, hi].
func ticks(lo, hi float64) []float64 {
	step := niceStep((hi - lo) / 5)
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+step/1e6; t += step {
		out = append(out, math.Round(t*1e6)/1e6)
	}
	return out
}

func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag >= 5:
		return 10 * mag
	case raw/mag >= 2:
		return 5 * mag
	default:
		return 2 * mag
	}
}

// htmlHead carries the page scaffold: palette slots as CSS custom
// properties (series 1-4, surface, inks, grid) with a
// prefers-color-scheme dark variant — both validated against their
// surfaces.
const htmlHead = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Paper-fidelity scorecard</title>
<style>
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f3f2ef; --ink2: #b5b3ac; --muted: #898781;
    --grid: #3a3936;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif; max-width: 720px; margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.4rem; margin-bottom: .2rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
.sub { color: var(--ink2); margin-top: 0; }
code { color: var(--ink2); }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1.2rem 0; }
.tile { border: 1px solid var(--grid); border-radius: 8px; padding: .7rem 1rem; min-width: 9rem; }
.tile .v { font-size: 1.5rem; font-variant-numeric: tabular-nums; }
.tile .l { color: var(--ink2); font-size: .82rem; }
figure { margin: 2rem 0 1rem; }
figcaption { font-weight: 600; margin-bottom: .4rem; }
svg { width: 100%; height: auto; }
.grid { stroke: var(--grid); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 11px; }
.axis { fill: var(--ink2); font-size: 12px; }
.legend { display: flex; gap: 1.2rem; flex-wrap: wrap; color: var(--ink2); font-size: .85rem; }
.legend .sw { width: 22px; height: 10px; vertical-align: middle; margin-right: .35rem; }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid var(--grid); }
th.n, td.n { text-align: right; }
th { color: var(--ink2); font-weight: 600; }
</style>
</head>
<body>
`
