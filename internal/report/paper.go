// Package report turns run manifests into the paper-fidelity
// scorecard: every reproduced metric next to its published HPCA 2004
// value, with bootstrap confidence intervals where per-benchmark
// samples exist, rendered as text, canonical JSON and a self-contained
// HTML dashboard. It also diffs two runs for metric drift (the CI
// fidelity gate).
//
// The package reads manifests only — it never imports the experiment
// engine. Result payloads are decoded through mirror structs that
// match core's exported field names, so the report stays a pure
// consumer of the JSON contract.
package report

// paper.go pins the published numbers this reproduction is scored
// against: "Perceptron-Based Branch Confidence Estimation" (Akkary,
// Srinivasan, Koltur, Patil, Refaai; HPCA 2004). Values are
// transcribed from the paper's tables; they are the fixed axis the
// scorecard measures drift against and must never be regenerated from
// simulation output.

// paperTable2MispPerKuop is Table 2's per-benchmark branch
// mispredictions per 1000 uops (baseline 40c4w machine).
var paperTable2MispPerKuop = map[string]float64{
	"gzip":    5.2,
	"vpr":     6.6,
	"gcc":     2.3,
	"mcf":     16,
	"crafty":  3.4,
	"link":    4.6,
	"eon":     0.5,
	"perlbmk": 0.7,
	"gap":     1.7,
	"vortex":  0.2,
	"bzip":    1.1,
	"twolf":   6.3,
}

// paperTable2AvgMisp is Table 2's average misp/Kuop row.
const paperTable2AvgMisp = 4.1

// paperPVNSpec is one (PVN, Spec) pair from Table 3, in percent.
type paperPVNSpec struct {
	Lambda    int
	PVN, Spec float64
}

// paperTable3JRS and paperTable3Perceptron are Table 3's two halves:
// the enhanced JRS estimator swept over λ∈{3,7,11,15} and the
// perceptron (CIC) estimator over λ∈{25,0,-25,-50}.
var (
	paperTable3JRS = []paperPVNSpec{
		{3, 36, 85}, {7, 28, 92}, {11, 24, 94}, {15, 22, 96},
	}
	paperTable3Perceptron = []paperPVNSpec{
		{25, 77, 34}, {0, 74, 43}, {-25, 69, 54}, {-50, 61, 66},
	}
)

// paperUP is one (U, P) gating measurement in percent: uop reduction
// and performance loss.
type paperUP struct {
	Label string
	U, P  float64
}

// paperTable4JRS is Table 4's JRS half: λ∈{3,7,11,15} at pipeline
// gating thresholds PL1..PL3, labels matching core's GatingResult.
var paperTable4JRS = []paperUP{
	{"jrs λ=3 PL1", 26, 17}, {"jrs λ=7 PL1", 29, 25}, {"jrs λ=11 PL1", 31, 29}, {"jrs λ=15 PL1", 31, 32},
	{"jrs λ=3 PL2", 14, 4}, {"jrs λ=7 PL2", 19, 9}, {"jrs λ=11 PL2", 21, 12}, {"jrs λ=15 PL2", 22, 14},
	{"jrs λ=3 PL3", 9, 2}, {"jrs λ=7 PL3", 13, 4}, {"jrs λ=11 PL3", 14, 5}, {"jrs λ=15 PL3", 15, 7},
}

// paperTable4Perceptron is Table 4's CIC half (PL1).
var paperTable4Perceptron = []paperUP{
	{"cic λ=25 PL1", 8, 0}, {"cic λ=0 PL1", 11, 1}, {"cic λ=-25 PL1", 14, 2}, {"cic λ=-50 PL1", 18, 3},
}

// paperTable5BimodalGshare and paperTable5GsharePerceptron are Table
// 5: CIC gating (PL1) on the two baseline predictors.
var (
	paperTable5BimodalGshare = []paperUP{
		{"bimodal-gshare λ=25", 8, 0}, {"bimodal-gshare λ=0", 11, 1},
		{"bimodal-gshare λ=-25", 14, 2}, {"bimodal-gshare λ=-50", 18, 3},
	}
	paperTable5GsharePerceptron = []paperUP{
		{"gshare-perceptron λ=0", 4, 0}, {"gshare-perceptron λ=-25", 8, 1},
		{"gshare-perceptron λ=-50", 12, 2}, {"gshare-perceptron λ=-60", 14, 3},
	}
)

// paperTable6 is Table 6's size-sensitivity sweep (CIC λ=0, PL1),
// geometries from 4 KB down to 2 KB.
var paperTable6 = []paperUP{
	{"P128W8H32", 11, 1}, {"P96W8H32", 11, 1}, {"P128W6H32", 10, 2},
	{"P128W8H24", 10, 1}, {"P64W8H32", 10, 1}, {"P128W4H32", 8, 6},
	{"P128W8H16", 8, 1},
}

// paperFig8AvgUopReduction and paperFig9AvgUopReduction are the
// headline averages of Figures 8 and 9: combined gating + reversal
// cuts executed uops ~10% on the 40c4w machine and ~7% on 20c8w, at
// approximately zero average performance loss (paperCombinedSpeedup).
const (
	paperFig8AvgUopReduction = 10.0
	paperFig9AvgUopReduction = 7.0
	paperCombinedSpeedup     = 0.0
)
