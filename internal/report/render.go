package report

import (
	"fmt"
	"strings"
)

// String renders the scorecard as an aligned terminal table grouped by
// experiment, with the summary line last.
func (sc *Scorecard) String() string {
	var b strings.Builder
	b.WriteString("Paper-fidelity scorecard (HPCA 2004 reference values)\n")
	for _, s := range sc.Sources {
		fmt.Fprintf(&b, "  source: %s (config %s)\n", s.Tool, s.Fingerprint)
	}
	if len(sc.Rows) == 0 {
		b.WriteString("  no scored experiments in the ingested manifests\n")
		return b.String()
	}
	width := 0
	for _, r := range sc.Rows {
		if len(r.Metric) > width {
			width = len(r.Metric)
		}
	}
	fmt.Fprintf(&b, "\n%-8s %-*s %9s %9s %9s %8s  %s\n",
		"exper.", width, "metric", "measured", "paper", "delta", "relerr", "95% CI")
	prev := ""
	for _, r := range sc.Rows {
		if r.Experiment != prev && prev != "" {
			b.WriteString("\n")
		}
		prev = r.Experiment
		ci := ""
		if r.CILo != nil && r.CIHi != nil {
			ci = fmt.Sprintf("[%.2f, %.2f]", *r.CILo, *r.CIHi)
		}
		fmt.Fprintf(&b, "%-8s %-*s %9.2f %9.2f %+9.2f %8.3f  %s\n",
			r.Experiment, width, r.Metric, r.Measured, r.Paper, r.Delta, r.RelErr, ci)
	}
	fmt.Fprintf(&b, "\n%d metrics; mean |rel err| %.3f; worst %s (%.3f)\n",
		sc.Summary.Rows, sc.Summary.MeanAbsRelErr, sc.Summary.WorstMetric, sc.Summary.WorstRelErr)
	return b.String()
}
