package report

import (
	"strings"
	"testing"

	"bce/internal/manifest"
)

// fixtureManifest builds a manifest carrying small table2/table3/
// table4/fig8 results in core's JSON shapes.
func fixtureManifest(t *testing.T) *manifest.Manifest {
	t.Helper()
	b := manifest.NewBuilder("bcetables", []string{"-exp", "fidelity"})
	add := func(name string, v any) {
		if err := b.AddResult(name, v); err != nil {
			t.Fatal(err)
		}
	}
	type t2row struct {
		Bench                     string
		MispPer1K, PaperMispPer1K float64
	}
	add("table2", map[string]any{
		"Rows": []t2row{
			{Bench: "gzip", MispPer1K: 5.0, PaperMispPer1K: 5.2},
			{Bench: "mcf", MispPer1K: 14.5, PaperMispPer1K: 16},
			{Bench: "notinpaper", MispPer1K: 3.0},
		},
		"AvgMispPer1K": 4.3,
	})
	type t3row struct {
		Estimator string
		Lambda    int
		PVN, Spec float64
	}
	add("table3", map[string]any{
		"JRS": []t3row{
			{"jrs", 3, 35, 84}, {"jrs", 7, 27, 91}, {"jrs", 11, 25, 95}, {"jrs", 15, 21, 97},
		},
		"Perceptron": []t3row{
			{"perceptron", 25, 75, 33}, {"perceptron", 0, 73, 44},
			{"perceptron", -25, 70, 53}, {"perceptron", -50, 60, 65},
		},
	})
	add("table4", map[string]any{
		"JRS": []gatingRow{
			{Label: "jrs λ=3 PL1", U: 25, P: 16},
			{Label: "jrs λ=3 PL2", U: 13, P: 3.5},
		},
		"Perceptron": []gatingRow{
			{Label: "cic λ=0 PL1", U: 10.5, P: 1.2},
			{Label: "cic λ=-50 PL1", U: 17, P: 2.8},
		},
	})
	add("fig8", map[string]any{
		"Machine": "40c4w",
		"Rows": []map[string]any{
			{"Bench": "gzip", "SpeedupPct": 0.5, "UopReductionPct": 9.0},
			{"Bench": "mcf", "SpeedupPct": -0.5, "UopReductionPct": 12.0},
			{"Bench": "gcc", "SpeedupPct": 0.1, "UopReductionPct": 8.5},
		},
		"AvgSpeedupPct":   0.0333,
		"AvgUopReduction": 9.8333,
	})
	return b.Finish(0, 0)
}

func findRow(t *testing.T, sc *Scorecard, exp, metric string) Row {
	t.Helper()
	for _, r := range sc.Rows {
		if r.Experiment == exp && r.Metric == metric {
			return r
		}
	}
	t.Fatalf("scorecard has no row %s/%s; rows: %+v", exp, metric, sc.Rows)
	return Row{}
}

func TestBuildScorecard(t *testing.T) {
	sc, err := Build(fixtureManifest(t))
	if err != nil {
		t.Fatal(err)
	}

	r := findRow(t, sc, "table2", "gzip_misp_per_kuop")
	if r.Paper != 5.2 || r.Measured != 5.0 || r.Delta != -0.2 {
		t.Errorf("gzip row = %+v", r)
	}
	// Benchmarks absent from the paper's table are not scored.
	for _, row := range sc.Rows {
		if strings.Contains(row.Metric, "notinpaper") {
			t.Errorf("unreferenced benchmark scored: %+v", row)
		}
	}
	avg := findRow(t, sc, "table2", "avg_misp_per_kuop")
	if avg.CILo == nil || avg.CIHi == nil {
		t.Fatal("table2 average has no bootstrap CI")
	}
	// The CI resamples every benchmark the average includes (also ones
	// the paper's table omits), so it is bounded by the sample extremes.
	if *avg.CILo > *avg.CIHi || *avg.CILo < 3.0 || *avg.CIHi > 14.5 {
		t.Errorf("CI [%v, %v] outside sample range", *avg.CILo, *avg.CIHi)
	}

	r = findRow(t, sc, "table3", "cic_lm50_pvn")
	if r.Paper != 61 || r.Measured != 60 {
		t.Errorf("cic λ=-50 PVN row = %+v", r)
	}
	r = findRow(t, sc, "table4", "jrs_l3_pl2_p")
	if r.Paper != 4 || r.Measured != 3.5 {
		t.Errorf("jrs PL2 P row = %+v", r)
	}
	r = findRow(t, sc, "fig8", "avg_uop_reduction_pct")
	if r.Paper != 10 || r.CILo == nil {
		t.Errorf("fig8 row = %+v", r)
	}

	if sc.Summary.Rows != len(sc.Rows) || sc.Summary.WorstMetric == "" {
		t.Errorf("summary = %+v", sc.Summary)
	}

	text := sc.String()
	for _, want := range []string{"gzip_misp_per_kuop", "mean |rel err|", "bcetables"} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

// TestScorecardByteStable: the same manifest content must produce
// byte-identical canonical JSON, regardless of wall-clock fields.
func TestScorecardByteStable(t *testing.T) {
	build := func() []byte {
		sc, err := Build(fixtureManifest(t))
		if err != nil {
			t.Fatal(err)
		}
		buf, err := sc.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Errorf("canonical scorecard JSON not byte-stable:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "wall_seconds") || strings.Contains(string(a), "git_revision") {
		t.Error("scorecard JSON leaked volatile manifest fields")
	}
}

func TestCompareScorecards(t *testing.T) {
	m := fixtureManifest(t)
	a, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if drifts := CompareScorecards(a, a, 0); len(drifts) != 0 {
		t.Errorf("self-comparison drifted: %+v", drifts)
	}

	b, _ := Build(m)
	for i := range b.Rows {
		if b.Rows[i].Metric == "gzip_misp_per_kuop" {
			b.Rows[i].Measured += 0.5
		}
	}
	b.Rows = b.Rows[:len(b.Rows)-1] // drop one metric entirely
	drifts := CompareScorecards(a, b, 0.1)
	var moved, missing bool
	for _, d := range drifts {
		if d.Metric == "table2/gzip_misp_per_kuop" && d.Delta == 0.5 {
			moved = true
		}
		if d.Missing == "new" {
			missing = true
		}
	}
	if !moved || !missing {
		t.Errorf("drifts = %+v; want a moved metric and a missing one", drifts)
	}
	// The same change stays silent under a loose tolerance, but the
	// missing metric is always reported.
	loose := CompareScorecards(a, b, 1.0)
	if len(loose) != 1 || loose[0].Missing != "new" {
		t.Errorf("loose tolerance drifts = %+v", loose)
	}

	out := RenderDrift(drifts, 0.1)
	if !strings.Contains(out, "gzip_misp_per_kuop") {
		t.Errorf("drift rendering missing metric:\n%s", out)
	}
	if RenderDrift(nil, 0.1) == "" {
		t.Error("empty drift list renders nothing")
	}
}

func TestWriteHTML(t *testing.T) {
	m := fixtureManifest(t)
	sc, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	page := WriteHTML(sc, m)
	for _, want := range []string{
		"<!doctype html>",
		"PVN vs. coverage",           // table3 curve rendered
		"Gating trade-off",           // table4 curve rendered
		"stroke-dasharray",           // paper series dashed
		"<title>JRS λ=3: PVN 35%",    // point tooltip
		"prefers-color-scheme: dark", // dark palette present
		"gzip_misp_per_kuop",         // table view
		"class=\"legend\"",           // legend for multi-series charts
	} {
		if !strings.Contains(page, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Contains(page, "<script") {
		t.Error("dashboard must be script-free (self-contained static artifact)")
	}
}
