package report

// results.go mirrors the experiment-result shapes core marshals into
// run manifests. The mirrors list only the fields the scorecard
// consumes; Go's JSON decoding by field name tolerates extra fields,
// so core can grow results without breaking older reports.

// table2Result mirrors core.Table2Result.
type table2Result struct {
	Rows []struct {
		Bench          string
		MispPer1K      float64
		PaperMispPer1K float64
	}
	AvgMispPer1K float64
}

// table3Result mirrors core.Table3Result.
type table3Result struct {
	JRS, Perceptron []struct {
		Estimator string
		Lambda    int
		PVN, Spec float64
	}
}

// gatingRow mirrors core.GatingResult.
type gatingRow struct {
	Label string
	U, P  float64
}

// table4Result mirrors core.Table4Result.
type table4Result struct {
	JRS        []gatingRow
	Perceptron []gatingRow
}

// table5Result mirrors core.Table5Result.
type table5Result struct {
	BimodalGshare    []gatingRow
	GsharePerceptron []gatingRow
}

// table6Result mirrors core.Table6Result.
type table6Result struct {
	Rows []gatingRow
}

// combinedResult mirrors core.CombinedResult (Figures 8 and 9).
type combinedResult struct {
	Machine string
	Rows    []struct {
		Bench           string
		SpeedupPct      float64
		UopReductionPct float64
	}
	AvgSpeedupPct   float64
	AvgUopReduction float64
}
