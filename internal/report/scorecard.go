package report

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"bce/internal/manifest"
	"bce/internal/stats"
)

// Bootstrap parameters for the per-benchmark confidence intervals.
// Fixed (not flags) so the scorecard JSON is byte-stable across runs
// and machines — the property the CI drift gate depends on.
const (
	bootstrapLevel  = 0.95
	bootstrapRounds = 1000
	bootstrapSeed   = 1
)

// ScorecardSchema versions the scorecard JSON layout.
const ScorecardSchema = 1

// Row is one metric of the fidelity scorecard: the reproduced value
// beside its published one.
type Row struct {
	// Experiment names the producing experiment ("table2", "fig8", ...).
	Experiment string `json:"experiment"`
	// Metric names the measurement within the experiment.
	Metric string `json:"metric"`
	// Measured is this reproduction's value; Paper the published one.
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper"`
	// Delta is Measured − Paper in the metric's own unit.
	Delta float64 `json:"delta"`
	// RelErr is |Delta| / max(|Paper|, 1): the 1-floor keeps
	// near-zero paper values (e.g. "no performance loss") from
	// exploding the ratio, at the price of reading as absolute error
	// there. Units are percentage points or misp/Kuop throughout, so
	// the floor is one unit of the metric.
	RelErr float64 `json:"rel_err"`
	// CILo/CIHi bound the measured mean at 95% (percentile bootstrap
	// over per-benchmark values) for metrics that average over the
	// benchmark suite; nil when no per-benchmark samples exist.
	CILo *float64 `json:"ci_lo,omitempty"`
	CIHi *float64 `json:"ci_hi,omitempty"`
}

// Source identifies one ingested manifest.
type Source struct {
	Tool        string `json:"tool"`
	Fingerprint string `json:"config_fingerprint"`
}

// Summary aggregates the scorecard.
type Summary struct {
	Rows int `json:"rows"`
	// MeanAbsRelErr averages RelErr over all rows; the single headline
	// fidelity number.
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	// WorstMetric is the row with the largest RelErr.
	WorstMetric string  `json:"worst_metric"`
	WorstRelErr float64 `json:"worst_rel_err"`
}

// Scorecard is the full fidelity report. Its JSON encoding is
// canonical: rows sorted, floats rounded to 4 decimals, no
// timestamps or revisions — two identical sweeps marshal to identical
// bytes.
type Scorecard struct {
	Schema  int      `json:"schema"`
	Sources []Source `json:"sources"`
	Rows    []Row    `json:"rows"`
	Summary Summary  `json:"summary"`
}

// Build assembles the scorecard from one or more run manifests. Later
// manifests win when two carry the same experiment. Manifests with no
// scored experiments contribute nothing but still appear in Sources.
func Build(manifests ...*manifest.Manifest) (*Scorecard, error) {
	if len(manifests) == 0 {
		return nil, fmt.Errorf("report: no manifests")
	}
	sc := &Scorecard{Schema: ScorecardSchema}
	merged := make(map[string]json.RawMessage)
	for _, m := range manifests {
		sc.Sources = append(sc.Sources, Source{Tool: m.Tool, Fingerprint: m.ConfigFingerprint})
		for name, raw := range m.Results {
			merged[name] = raw
		}
	}
	sort.Slice(sc.Sources, func(i, j int) bool {
		if sc.Sources[i].Tool != sc.Sources[j].Tool {
			return sc.Sources[i].Tool < sc.Sources[j].Tool
		}
		return sc.Sources[i].Fingerprint < sc.Sources[j].Fingerprint
	})

	decode := func(name string, out any) (bool, error) {
		raw, ok := merged[name]
		if !ok {
			return false, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return false, fmt.Errorf("report: result %q: %w", name, err)
		}
		return true, nil
	}

	if err := scoreTable2(decode, sc); err != nil {
		return nil, err
	}
	if err := scoreTable3(decode, sc); err != nil {
		return nil, err
	}
	if err := scoreGating(decode, sc, "table4", func(t *table4Result) [][2]any {
		return [][2]any{{t.JRS, paperTable4JRS}, {t.Perceptron, paperTable4Perceptron}}
	}); err != nil {
		return nil, err
	}
	if err := scoreGating(decode, sc, "table5", func(t *table5Result) [][2]any {
		return [][2]any{
			{t.BimodalGshare, paperTable5BimodalGshare},
			{t.GsharePerceptron, paperTable5GsharePerceptron},
		}
	}); err != nil {
		return nil, err
	}
	if err := scoreTable6(decode, sc); err != nil {
		return nil, err
	}
	for _, fig := range []struct {
		name   string
		paperU float64
	}{{"fig8", paperFig8AvgUopReduction}, {"fig9", paperFig9AvgUopReduction}} {
		if err := scoreCombined(decode, sc, fig.name, fig.paperU); err != nil {
			return nil, err
		}
	}

	sort.Slice(sc.Rows, func(i, j int) bool {
		if sc.Rows[i].Experiment != sc.Rows[j].Experiment {
			return sc.Rows[i].Experiment < sc.Rows[j].Experiment
		}
		return sc.Rows[i].Metric < sc.Rows[j].Metric
	})
	summarize(sc)
	return sc, nil
}

func scoreTable2(decode func(string, any) (bool, error), sc *Scorecard) error {
	var t table2Result
	ok, err := decode("table2", &t)
	if !ok || err != nil {
		return err
	}
	var misps []float64
	for _, r := range t.Rows {
		misps = append(misps, r.MispPer1K)
		paper, known := paperTable2MispPerKuop[r.Bench]
		if !known {
			// A benchmark the paper does not list (suite extension):
			// no reference to score against.
			continue
		}
		sc.Rows = append(sc.Rows, newRow("table2", r.Bench+"_misp_per_kuop", r.MispPer1K, paper))
	}
	row := newRow("table2", "avg_misp_per_kuop", t.AvgMispPer1K, paperTable2AvgMisp)
	row.CILo, row.CIHi = bootstrapCI(misps)
	sc.Rows = append(sc.Rows, row)
	return nil
}

func scoreTable3(decode func(string, any) (bool, error), sc *Scorecard) error {
	var t table3Result
	ok, err := decode("table3", &t)
	if !ok || err != nil {
		return err
	}
	score := func(rows []struct {
		Estimator string
		Lambda    int
		PVN, Spec float64
	}, refs []paperPVNSpec, prefix string) {
		for i, r := range rows {
			if i >= len(refs) || r.Lambda != refs[i].Lambda {
				continue // sweep shape changed; nothing to score against
			}
			name := prefix + "_" + lambdaName(r.Lambda)
			sc.Rows = append(sc.Rows,
				newRow("table3", name+"_pvn", r.PVN, refs[i].PVN),
				newRow("table3", name+"_spec", r.Spec, refs[i].Spec))
		}
	}
	score(t.JRS, paperTable3JRS, "jrs")
	score(t.Perceptron, paperTable3Perceptron, "cic")
	return nil
}

// scoreGating scores label-matched (U, P) sweeps; pairs returns
// ([]gatingRow, []paperUP) tuples.
func scoreGating[T any](decode func(string, any) (bool, error), sc *Scorecard, exp string, pairs func(*T) [][2]any) error {
	var t T
	ok, err := decode(exp, &t)
	if !ok || err != nil {
		return err
	}
	for _, pair := range pairs(&t) {
		rows := pair[0].([]gatingRow)
		refs := pair[1].([]paperUP)
		byLabel := make(map[string]paperUP, len(refs))
		for _, ref := range refs {
			byLabel[ref.Label] = ref
		}
		for _, r := range rows {
			ref, known := byLabel[r.Label]
			if !known {
				continue
			}
			name := metricName(r.Label)
			sc.Rows = append(sc.Rows,
				newRow(exp, name+"_u", r.U, ref.U),
				newRow(exp, name+"_p", r.P, ref.P))
		}
	}
	return nil
}

func scoreTable6(decode func(string, any) (bool, error), sc *Scorecard) error {
	return scoreGating(decode, sc, "table6", func(t *table6Result) [][2]any {
		return [][2]any{{t.Rows, paperTable6}}
	})
}

func scoreCombined(decode func(string, any) (bool, error), sc *Scorecard, name string, paperU float64) error {
	var c combinedResult
	ok, err := decode(name, &c)
	if !ok || err != nil {
		return err
	}
	var us, sps []float64
	for _, r := range c.Rows {
		us = append(us, r.UopReductionPct)
		sps = append(sps, r.SpeedupPct)
	}
	u := newRow(name, "avg_uop_reduction_pct", c.AvgUopReduction, paperU)
	u.CILo, u.CIHi = bootstrapCI(us)
	s := newRow(name, "avg_speedup_pct", c.AvgSpeedupPct, paperCombinedSpeedup)
	s.CILo, s.CIHi = bootstrapCI(sps)
	sc.Rows = append(sc.Rows, u, s)
	return nil
}

func newRow(exp, metric string, measured, paper float64) Row {
	delta := measured - paper
	denom := math.Abs(paper)
	if denom < 1 {
		denom = 1
	}
	return Row{
		Experiment: exp, Metric: metric,
		Measured: round4(measured), Paper: paper,
		Delta: round4(delta), RelErr: round4(math.Abs(delta) / denom),
	}
}

func bootstrapCI(xs []float64) (lo, hi *float64) {
	if len(xs) < 2 {
		return nil, nil
	}
	iv := stats.BootstrapMeanCI(xs, bootstrapLevel, bootstrapRounds, bootstrapSeed)
	l, h := round4(iv.Lo), round4(iv.Hi)
	return &l, &h
}

func summarize(sc *Scorecard) {
	sc.Summary.Rows = len(sc.Rows)
	var sum float64
	for _, r := range sc.Rows {
		sum += r.RelErr
		if r.RelErr > sc.Summary.WorstRelErr {
			sc.Summary.WorstRelErr = r.RelErr
			sc.Summary.WorstMetric = r.Experiment + "/" + r.Metric
		}
	}
	if len(sc.Rows) > 0 {
		sc.Summary.MeanAbsRelErr = round4(sum / float64(len(sc.Rows)))
	}
}

// Canonical returns the scorecard's canonical JSON encoding (indented,
// trailing newline). Identical sweeps produce identical bytes.
func (sc *Scorecard) Canonical() ([]byte, error) {
	buf, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// LoadScorecard reads a scorecard JSON file (the committed fidelity
// baseline).
func LoadScorecard(path string) (*Scorecard, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scorecard
	if err := json.Unmarshal(buf, &sc); err != nil {
		return nil, fmt.Errorf("scorecard %s: %w", path, err)
	}
	if sc.Schema < 1 || sc.Schema > ScorecardSchema {
		return nil, fmt.Errorf("scorecard %s: schema %d not in [1, %d]", path, sc.Schema, ScorecardSchema)
	}
	return &sc, nil
}

// round4 rounds to 4 decimals — enough resolution for percentages and
// rates, coarse enough that the canonical JSON never prints
// float-noise digits.
func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

// lambdaName renders a λ threshold as a metric-name fragment: l3,
// l25, lm25 (m for minus — '-' would read as a range in a metric id).
func lambdaName(lambda int) string {
	if lambda < 0 {
		return fmt.Sprintf("lm%d", -lambda)
	}
	return fmt.Sprintf("l%d", lambda)
}

// metricName flattens a gating label ("jrs λ=3 PL1") into a metric
// identifier ("jrs_l3_pl1").
func metricName(label string) string {
	out := make([]rune, 0, len(label))
	lastUnderscore := true
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
			lastUnderscore = false
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
			lastUnderscore = false
		case r == 'λ':
			out = append(out, 'l')
			lastUnderscore = false
		case r == '-':
			out = append(out, 'm') // λ=-25 → lm25: '-' would read as a range
			lastUnderscore = false
		case r == '=':
			// λ=3 → l3: the joint is readable without a separator.
		default:
			if !lastUnderscore {
				out = append(out, '_')
				lastUnderscore = true
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}
