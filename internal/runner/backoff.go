package runner

import "time"

// Backoff computes capped exponential retry delays. It unifies the
// backoff arithmetic the coordinator's in-place batch retries, the
// pool's transient-job retries, and the dist circuit breakers' probe
// cooldowns all share, so "how fast do we hammer a struggling
// resource" is one policy, not three.
//
// The zero value is usable: Delay falls back to 100ms initial, 30s
// cap, factor 2.
type Backoff struct {
	// Initial is the delay before the first retry (attempt 0).
	Initial time.Duration
	// Max caps the grown delay; zero means 30s.
	Max time.Duration
	// Factor multiplies the delay per attempt; values below 1 mean 2.
	Factor float64
}

// Delay returns the wait before retry number attempt (0-based). The
// growth is computed iteratively with an early cap check, so large
// attempt counts cannot overflow time.Duration.
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Initial
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 30 * time.Second
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	for ; attempt > 0; attempt-- {
		if d >= max {
			return max
		}
		d = time.Duration(float64(d) * f)
	}
	if d > max {
		return max
	}
	return d
}
