package runner

import (
	"testing"
	"time"
)

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffDoublesFromInitial(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond}
	if got := b.Delay(0); got != 10*time.Millisecond {
		t.Errorf("Delay(0) = %v, want 10ms", got)
	}
	if got := b.Delay(3); got != 80*time.Millisecond {
		t.Errorf("Delay(3) = %v, want 80ms", got)
	}
}

func TestBackoffCaps(t *testing.T) {
	b := Backoff{Initial: time.Second, Max: 5 * time.Second}
	if got := b.Delay(10); got != 5*time.Second {
		t.Errorf("Delay(10) = %v, want cap 5s", got)
	}
	// Huge attempt counts must terminate quickly and not overflow.
	if got := b.Delay(1 << 20); got != 5*time.Second {
		t.Errorf("Delay(1<<20) = %v, want cap 5s", got)
	}
}

func TestBackoffCustomFactor(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Factor: 3}
	if got := b.Delay(2); got != 90*time.Millisecond {
		t.Errorf("Delay(2) = %v, want 90ms", got)
	}
}
