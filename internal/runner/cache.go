package runner

import (
	"sync"

	"bce/internal/metrics"
)

// Cache is an in-process content-addressed result cache with
// singleflight deduplication: the first caller of a key computes, and
// concurrent callers of the same key wait for that computation instead
// of repeating it. Errors are cached too — every computation in this
// repository is deterministic, so a failed key fails again.
//
// An optional Store persists results across process invocations;
// install one with SetStore.
type Cache[V any] struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry[V]
	hits   uint64
	misses uint64

	store  Store
	encode func(V) ([]byte, error)
	decode func([]byte) (V, error)
}

type cacheEntry[V any] struct {
	ready chan struct{} // closed once val/err are set
	val   V
	err   error
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{m: make(map[string]*cacheEntry[V])}
}

// SetStore installs a persistent backing store with the codec that
// (de)serializes values. A nil store detaches. Store reads count as
// cache hits; successful fresh computations are written through.
func (c *Cache[V]) SetStore(s Store, encode func(V) ([]byte, error), decode func([]byte) (V, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
	c.encode = encode
	c.decode = decode
}

// Do returns the cached value for key, computing it with compute on
// first use. Concurrent calls with the same key share one computation.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &cacheEntry[V]{ready: make(chan struct{})}
	c.m[key] = e
	store, encode, decode := c.store, c.encode, c.decode
	c.mu.Unlock()

	defer close(e.ready) // release waiters even if compute panics
	if store != nil && decode != nil {
		if data, ok := store.Load(key); ok {
			if v, err := decode(data); err == nil {
				e.val = v
				c.bump(&c.hits)
				return e.val, nil
			}
		}
	}
	c.bump(&c.misses)
	e.val, e.err = compute()
	if e.err == nil && store != nil && encode != nil {
		if data, err := encode(e.val); err == nil {
			store.Save(key, data)
		}
	}
	return e.val, e.err
}

func (c *Cache[V]) bump(ctr *uint64) {
	c.mu.Lock()
	*ctr++
	c.mu.Unlock()
}

// Stats returns the hit and miss counters. A hit is a result served
// from memory (including joins on an in-flight computation) or from
// the store; a miss is a fresh computation.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset drops all cached entries and zeroes the counters. The backing
// store, if any, is left untouched.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*cacheEntry[V])
	c.hits, c.misses = 0, 0
}

// Contains reports whether key is present in memory (computed, being
// computed, or injected) without touching the hit/miss counters or the
// backing store.
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[key]
	return ok
}

// Len returns the number of cached keys.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Fingerprint returns the stable 64-bit content hash of a key, the
// address under which stores file it.
func Fingerprint(key string) uint64 { return metrics.Fingerprint(key) }
