package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheComputesOnce(t *testing.T) {
	c := NewCache[int]()
	var computes atomic.Int32
	for i := 0; i < 5; i++ {
		v, err := c.Do("k", func() (int, error) {
			computes.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("v=%d err=%v", v, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times", n)
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 4/1", hits, misses)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int]()
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, err := c.Do("shared", func() (int, error) {
				computes.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("v=%d err=%v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d concurrent computations for one key", n)
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache[int]()
	boom := errors.New("boom")
	var computes int
	for i := 0; i < 3; i++ {
		if _, err := c.Do("bad", func() (int, error) {
			computes++
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if computes != 1 {
		t.Fatalf("failed computation reran %d times (deterministic jobs fail identically)", computes)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache[int]()
	c.Do("k", func() (int, error) { return 1, nil })
	if c.Len() != 1 {
		t.Fatal("len")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset did not drop entries")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("counters survived reset: %d/%d", h, m)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(map[string]int{"cycles": 123})
	s.Save("bench=gzip|machine=40c4w", payload)
	got, ok := s.Load("bench=gzip|machine=40c4w")
	if !ok {
		t.Fatal("saved entry not loadable")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mutated: %s", got)
	}
	if _, ok := s.Load("bench=mcf|machine=40c4w"); ok {
		t.Fatal("phantom entry for unknown key")
	}
}

func TestDirStoreRejectsKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "the-key"
	s.Save(key, json.RawMessage(`{"v":1}`))
	// Corrupt the envelope's key in place, simulating a filename
	// collision between two distinct keys.
	path := filepath.Join(dir, filenameFor(key))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(raw), "the-key", "not-key", 1)
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("mismatched envelope key accepted")
	}
}

func filenameFor(key string) string {
	s := &DirStore{}
	return filepath.Base(s.path(key))
}

func TestCacheWithStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(v int) ([]byte, error) { return json.Marshal(v) }
	dec := func(b []byte) (int, error) {
		var v int
		err := json.Unmarshal(b, &v)
		return v, err
	}

	c1 := NewCache[int]()
	c1.SetStore(s, enc, dec)
	if v, err := c1.Do("k", func() (int, error) { return 99, nil }); err != nil || v != 99 {
		t.Fatalf("v=%d err=%v", v, err)
	}

	// A fresh cache (new process) must serve the result from disk
	// without recomputing.
	c2 := NewCache[int]()
	c2.SetStore(s, enc, dec)
	v, err := c2.Do("k", func() (int, error) {
		t.Error("recomputed despite disk cache")
		return 0, nil
	})
	if err != nil || v != 99 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if hits, misses := c2.Stats(); hits != 1 || misses != 0 {
		t.Errorf("store hit not counted: hits=%d misses=%d", hits, misses)
	}
}
