package runner

import (
	"context"
	"sync/atomic"
)

// capture.go is the runner side of continuous profiling. The runner
// deliberately does not import internal/prof — the profiler is
// injected as a function value by whichever main enabled it
// (prof.Enable), keeping the dependency arrow pointing from the
// profiling subsystem toward the execution core and never back.

// CaptureHook opens a capture window for one sweep and returns the
// function that closes it. The ctx carries the sweep's span identity
// (telemetry.ContextWithSpan) so captured profiles attribute to the
// same sweep→shard→batch tree as traces. A nil return is a no-op
// window.
type CaptureHook func(ctx context.Context, phase string) (stop func())

var captureHook atomic.Value // of CaptureHook

// SetCaptureHook installs (or, with nil, removes) the process-wide
// sweep capture hook. Pool.Map invokes it once per sweep, around the
// whole sweep.
func SetCaptureHook(h CaptureHook) {
	captureHook.Store(h)
}

// startCapture opens a window via the installed hook, if any.
func startCapture(ctx context.Context, phase string) func() {
	h, _ := captureHook.Load().(CaptureHook)
	if h == nil {
		return nil
	}
	return h(ctx, phase)
}
