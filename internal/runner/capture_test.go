package runner

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestMapInvokesCaptureHook(t *testing.T) {
	defer SetCaptureHook(nil)

	var opened, closed atomic.Int32
	var gotPhase atomic.Value
	SetCaptureHook(func(ctx context.Context, phase string) func() {
		opened.Add(1)
		gotPhase.Store(phase)
		return func() { closed.Add(1) }
	})

	p := New(Options{Workers: 2})
	out, err := Map(context.Background(), p, []int{10, 20, 30, 40},
		func(ctx context.Context, i int, item int) (int, error) { return item + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != 41 {
		t.Errorf("out = %v", out)
	}
	if opened.Load() != 1 || closed.Load() != 1 {
		t.Errorf("hook opened %d / closed %d windows, want 1/1", opened.Load(), closed.Load())
	}
	if ph := gotPhase.Load(); ph != "sweep(jobs=4)" {
		t.Errorf("phase = %v, want sweep(jobs=4)", ph)
	}

	// A hook returning nil means "no window"; Map must tolerate it.
	SetCaptureHook(func(ctx context.Context, phase string) func() { return nil })
	if _, err := Map(context.Background(), p, []int{1}, func(ctx context.Context, i int, item int) (int, error) {
		return item, nil
	}); err != nil {
		t.Fatal(err)
	}

	// Uninstalling stops further invocations.
	SetCaptureHook(nil)
	before := opened.Load()
	if _, err := Map(context.Background(), p, []int{1}, func(ctx context.Context, i int, item int) (int, error) {
		return item, nil
	}); err != nil {
		t.Fatal(err)
	}
	if opened.Load() != before {
		t.Error("hook invoked after SetCaptureHook(nil)")
	}
}
