package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Save("alpha", []byte(`{"ipc":1.5}`))
	j.Save("beta", []byte(`[1,2,3]`))
	j.Save("alpha", []byte(`{"ipc":2.5}`)) // overwrite: last record wins
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replayed(); got != 3 {
		t.Errorf("Replayed = %d, want 3", got)
	}
	if got := j2.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	data, ok := j2.Load("alpha")
	if !ok || string(data) != `{"ipc":2.5}` {
		t.Errorf("alpha = %q, %v; want last-written value", data, ok)
	}
	if _, ok := j2.Load("gamma"); ok {
		t.Error("phantom key gamma")
	}
}

// A crash mid-append leaves a torn final line. Reopen must keep every
// complete record, drop the tail, and keep accepting appends.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Save("a", []byte(`1`))
	j.Save("b", []byte(`2`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: half a record at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","da`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if got := j2.Replayed(); got != 2 {
		t.Errorf("Replayed = %d, want 2", got)
	}
	if _, ok := j2.Load("c"); ok {
		t.Error("torn record resurrected")
	}
	// The journal must still be appendable and the append must survive
	// another reopen (the torn bytes were truncated away).
	j2.Save("d", []byte(`4`))
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Replayed(); got != 3 {
		t.Errorf("after torn-tail truncate+append: Replayed = %d, want 3", got)
	}
	if data, ok := j3.Load("d"); !ok || string(data) != `4` {
		t.Errorf("d = %q, %v", data, ok)
	}
}

// TestJournalTornTailAtRecordBoundary covers the two boundary shapes a
// crash can leave: a file ending exactly after a complete record's
// newline (nothing may be lost, the truncate is a no-op), and a final
// record whose bytes are complete JSON but whose newline never made it
// to disk (must be treated as torn — replaying it and then appending
// would glue two records onto one line and corrupt both).
func TestJournalTornTailAtRecordBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Save("a", []byte(`1`))
	j.Save("b", []byte(`2`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	sizeBefore := fileSize(t, path)

	// Clean boundary: reopen must keep everything and change nothing.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Replayed(); got != 2 {
		t.Errorf("clean-boundary Replayed = %d, want 2", got)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := fileSize(t, path); got != sizeBefore {
		t.Errorf("clean reopen changed file size %d -> %d", sizeBefore, got)
	}

	// Unterminated boundary: a complete record whose '\n' was lost.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","data":3}`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := j3.Replayed(); got != 2 {
		t.Errorf("unterminated tail Replayed = %d, want 2 (torn record dropped)", got)
	}
	if _, ok := j3.Load("c"); ok {
		t.Error("unterminated record resurrected")
	}
	// The append that would previously have glued onto c's line.
	j3.Save("d", []byte(`4`))
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	j4, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if got := j4.Replayed(); got != 3 {
		t.Errorf("after truncate+append: Replayed = %d, want 3", got)
	}
	if data, ok := j4.Load("d"); !ok || string(data) != `4` {
		t.Errorf("d = %q, %v (append landed on a corrupted line?)", data, ok)
	}
}

// TestJournalDuplicateKeyResume: duplicate keys across resume cycles
// keep last-write-wins semantics — Replayed counts raw records, Len
// counts distinct keys, and a post-resume overwrite survives the next
// resume.
func TestJournalDuplicateKeyResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Save("k", []byte(`"first"`))
	j.Save("k", []byte(`"second"`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Replayed() != 2 || j2.Len() != 1 {
		t.Errorf("Replayed/Len = %d/%d, want 2/1", j2.Replayed(), j2.Len())
	}
	if data, _ := j2.Load("k"); string(data) != `"second"` {
		t.Errorf("k = %q, want last-written value", data)
	}
	j2.Save("k", []byte(`"third"`)) // overwrite on the resumed journal
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Replayed() != 3 || j3.Len() != 1 {
		t.Errorf("second resume Replayed/Len = %d/%d, want 3/1", j3.Replayed(), j3.Len())
	}
	if data, _ := j3.Load("k"); string(data) != `"third"` {
		t.Errorf("k = %q after second resume", data)
	}
}

// TestJournalEmptyResume: resuming from an empty or whitespace-only
// journal (a sweep killed before its first checkpoint) must succeed
// and accept appends.
func TestJournalEmptyResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // zero Saves
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("empty-journal resume: %v", err)
	}
	if j2.Replayed() != 0 || j2.Len() != 0 {
		t.Errorf("empty journal Replayed/Len = %d/%d, want 0/0", j2.Replayed(), j2.Len())
	}
	j2.Save("first", []byte(`1`))
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Whitespace-only content (e.g. an editor or tool touched the file).
	blank := filepath.Join(t.TempDir(), "blank.journal")
	if err := os.WriteFile(blank, []byte("\n\n  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(blank)
	if err != nil {
		t.Fatalf("whitespace-only resume: %v", err)
	}
	defer j3.Close()
	if j3.Replayed() != 0 {
		t.Errorf("whitespace lines replayed as records: %d", j3.Replayed())
	}
	j3.Save("x", []byte(`true`))
	if data, ok := j3.Load("x"); !ok || string(data) != `true` {
		t.Errorf("x = %q, %v", data, ok)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

type mapStore map[string][]byte

func (m mapStore) Load(key string) ([]byte, bool) { d, ok := m[key]; return d, ok }
func (m mapStore) Save(key string, data []byte)   { m[key] = data }

func TestTieredStore(t *testing.T) {
	front, back := mapStore{}, mapStore{}
	back["old"] = []byte(`1`)
	ts := Tiered(front, nil, back)
	if data, ok := ts.Load("old"); !ok || string(data) != `1` {
		t.Errorf("back-tier load = %q, %v", data, ok)
	}
	ts.Save("new", []byte(`2`))
	if string(front["new"]) != `2` || string(back["new"]) != `2` {
		t.Errorf("write-through missed a tier: front=%q back=%q", front["new"], back["new"])
	}
	front["both"] = []byte(`front`)
	back["both"] = []byte(`back`)
	if data, _ := ts.Load("both"); string(data) != `front` {
		t.Errorf("tier order violated: got %q", data)
	}
	if Tiered(nil, nil) != nil {
		t.Error("Tiered of nils should be nil")
	}
	if Tiered(front) == nil {
		t.Error("Tiered of one store should be that store")
	}
}

// Transient failures retry up to the bound and can succeed; the retry
// counter advances.
func TestRetryTransient(t *testing.T) {
	before := LiveSnapshot().JobsRetried
	attempts := 0
	p := New(Options{Workers: 1, Retries: 3, RetryBackoff: time.Microsecond})
	out, err := Map(context.Background(), p, []int{7}, func(ctx context.Context, i, item int) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, Transient(fmt.Errorf("flaky attempt %d", attempts))
		}
		return item * 2, nil
	})
	if err != nil {
		t.Fatalf("retryable job failed: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if out[0] != 14 {
		t.Errorf("out = %d, want 14", out[0])
	}
	if got := LiveSnapshot().JobsRetried - before; got != 2 {
		t.Errorf("JobsRetried advanced by %d, want 2", got)
	}
}

// Retries are bounded: a job that never stops failing transiently
// reports its last error after Retries+1 attempts.
func TestRetryExhaustion(t *testing.T) {
	attempts := 0
	p := New(Options{Workers: 1, Retries: 2})
	_, err := Map(context.Background(), p, []int{1}, func(ctx context.Context, i, item int) (int, error) {
		attempts++
		return 0, Transient(errors.New("always flaky"))
	})
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
	if !IsTransient(err) {
		t.Error("exhausted error lost its transient classification")
	}
}

// Deterministic errors and panics must not burn retries — they would
// fail identically every time.
func TestNoRetryDeterministic(t *testing.T) {
	attempts := 0
	p := New(Options{Workers: 1, Retries: 5})
	_, err := Map(context.Background(), p, []int{1}, func(ctx context.Context, i, item int) (int, error) {
		attempts++
		return 0, errors.New("deterministic failure")
	})
	if err == nil || attempts != 1 {
		t.Errorf("deterministic error: attempts = %d (err %v), want 1", attempts, err)
	}

	attempts = 0
	_, err = Map(context.Background(), p, []int{1}, func(ctx context.Context, i, item int) (int, error) {
		attempts++
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || attempts != 1 {
		t.Errorf("panic: attempts = %d (err %v), want 1 *PanicError", attempts, err)
	}
}

// JobTimeout bounds each attempt; a job that honors its context
// returns the deadline error, which is transient and so retryable.
func TestJobTimeout(t *testing.T) {
	slow := true
	p := New(Options{Workers: 1, JobTimeout: 10 * time.Millisecond, Retries: 1})
	out, err := Map(context.Background(), p, []int{1}, func(ctx context.Context, i, item int) (int, error) {
		if slow {
			slow = false
			<-ctx.Done() // first attempt hangs until the deadline
			return 0, ctx.Err()
		}
		return item, nil
	})
	if err != nil {
		t.Fatalf("timed-out attempt did not retry: %v", err)
	}
	if out[0] != 1 {
		t.Errorf("out = %d", out[0])
	}

	// Without retries the deadline surfaces.
	p = New(Options{Workers: 1, JobTimeout: 5 * time.Millisecond})
	_, err = Map(context.Background(), p, []int{1}, func(ctx context.Context, i, item int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("structured abort")
	p := New(Options{Workers: 1})
	_, err := Map(context.Background(), p, []int{1}, func(ctx context.Context, i, item int) (int, error) {
		panic(fmt.Errorf("wrapped: %w", sentinel))
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is through PanicError failed: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("not a PanicError: %v", err)
	}
	if (&PanicError{Value: "not an error"}).Unwrap() != nil {
		t.Error("non-error panic value should unwrap to nil")
	}
}

func TestDirStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := LiveSnapshot().StoreQuarantined

	// Corrupt entry: not JSON at all.
	key := "experiment-a"
	path := filepath.Join(dir, fmt.Sprintf("%016x.json", Fingerprint(key)))
	if err := os.WriteFile(path, []byte("\x00\xffgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(key); ok {
		t.Fatal("corrupt entry loaded")
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still shadowing its slot")
	}
	if got := LiveSnapshot().StoreQuarantined - before; got != 1 {
		t.Errorf("StoreQuarantined advanced by %d, want 1", got)
	}
	// The slot works again.
	s.Save(key, []byte(`{"ok":true}`))
	if data, ok := s.Load(key); !ok || !strings.Contains(string(data), "ok") {
		t.Errorf("post-quarantine save/load = %q, %v", data, ok)
	}

	// A valid envelope under the wrong key is a collision, not
	// corruption: plain miss, no quarantine.
	other := "experiment-b"
	otherPath := filepath.Join(dir, fmt.Sprintf("%016x.json", Fingerprint(other)))
	if err := os.WriteFile(otherPath, []byte(`{"key":"someone-else","data":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(other); ok {
		t.Error("collision loaded as hit")
	}
	if _, err := os.Stat(otherPath); err != nil {
		t.Error("collision entry was quarantined; it belongs to another key")
	}
}
