package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
)

// Journal is a crash-safe, append-only checkpoint log implementing
// Store. Every Save appends one JSONL record — the same
// {"key":...,"data":...} envelope DirStore files — and fsyncs, so a
// sweep killed at any instant loses at most the record being written.
// Open replays the existing log into memory, tolerating a torn tail:
// a final partial line (the record a crash interrupted) is ignored,
// and replay stops at the first undecodable line so garbage can never
// resurrect as results.
//
// Stack a Journal in front of the shared DirStore with Tiered to get
// kill-and-resume sweeps: completed jobs reload from the journal, the
// sweep recomputes only what is missing, and the merged output is
// bit-identical to an uninterrupted run because results are assembled
// in item order regardless of which jobs were replayed.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	entries map[string]json.RawMessage
	path    string
	replay  int
	closed  bool
}

// OpenJournal opens (or creates) the checkpoint journal at path and
// replays its records into memory.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j := &Journal{f: f, entries: make(map[string]json.RawMessage), path: path}
	end, err := j.replayLog()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate the torn tail (if any) so appends extend a well-formed
	// log instead of gluing onto half a record.
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// replayLog loads every complete, decodable record and returns the
// byte offset of the end of the last good line.
func (j *Journal) replayLog() (int64, error) {
	info, err := j.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("runner: journal: %w", err)
	}
	size := info.Size()
	terminated := size == 0
	if size > 0 {
		var last [1]byte
		if _, err := j.f.ReadAt(last[:], size-1); err != nil {
			return 0, fmt.Errorf("runner: journal: %w", err)
		}
		terminated = last[0] == '\n'
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return 0, fmt.Errorf("runner: journal: %w", err)
	}
	var end int64
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // +1 for the newline Scan strips
		// A final line missing its terminating newline is the record a
		// crash interrupted mid-write. Even when the bytes on disk
		// happen to decode, replaying it and appending after it would
		// glue the next record onto the same line — corrupting both at
		// the following replay — so treat it as torn and let Open
		// truncate it away.
		if !terminated && end+int64(len(line)) == size {
			break
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			end += lineLen
			continue
		}
		var env storeEnvelope
		if err := json.Unmarshal(trimmed, &env); err != nil {
			// Torn or corrupt record: stop replay here. Everything from
			// this point on is discarded (and truncated by Open).
			break
		}
		j.entries[env.Key] = env.Data
		j.replay++
		end += lineLen
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return 0, fmt.Errorf("runner: journal: replay: %w", err)
	}
	return end, nil
}

// Load implements Store.
func (j *Journal) Load(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.entries[key]
	return data, ok
}

// Save implements Store: append one record and fsync. Best-effort per
// the Store contract — an append failure degrades to a warning, the
// in-memory copy still serves this process.
func (j *Journal) Save(key string, data []byte) {
	raw, err := json.Marshal(storeEnvelope{Key: key, Data: json.RawMessage(data)})
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.entries[key] = json.RawMessage(data)
	if _, err := j.w.Write(append(raw, '\n')); err != nil {
		slog.Warn("journal append failed", "err", err)
		return
	}
	if err := j.w.Flush(); err != nil {
		slog.Warn("journal flush failed", "err", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		slog.Warn("journal sync failed", "err", err)
	}
}

// Len returns the number of distinct checkpointed keys.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Replayed returns how many records Open recovered from disk.
func (j *Journal) Replayed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replay
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file. Further Saves are
// dropped; Loads keep serving the in-memory entries.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// Remove closes the journal and deletes its file — call after a sweep
// completes and its results are merged into the durable store, so the
// next run starts from a clean checkpoint.
func (j *Journal) Remove() error {
	if err := j.Close(); err != nil {
		os.Remove(j.path)
		return err
	}
	return os.Remove(j.path)
}

var _ Store = (*Journal)(nil)
